// §3 of the paper discusses an alternative, non-constructive route to
// plans: compute the k-truncated accessible part by making *every possible
// access* (the plan P_k), then evaluate the query over what was retrieved.
// The paper dismisses it as "certainly not feasible". This example
// quantifies that: on Example 2's telephone schema, the proof-derived plan
// makes a handful of targeted source calls while the saturation baseline
// drowns in the cross-product of accessible values.
//
// Build & run:  ./build/examples/saturation_vs_proofplan

#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/baseline/saturation.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/workload/scenarios.h"

int main() {
  using namespace lcp;

  Scenario scenario = MakeTelephoneScenario().value();
  const Schema& schema = *scenario.schema;
  AccessibleSchema accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard).value();
  FoundPlan found = FindAnyPlan(accessible, scenario.query, 5).value();

  for (int entries : {5, 10, 20, 40}) {
    Instance instance(&schema);
    for (int i = 0; i < entries; ++i) {
      instance.AddFact("Direct1", {Value::Int(100 + i), Value::Int(7 + i),
                                   Value::Int(9000 + i)});
      instance.AddFact("Direct2", {Value::Int(100 + i), Value::Int(7 + i),
                                   Value::Int(5550000 + i)});
      instance.AddFact("Ids", {Value::Int(9000 + i)});
      instance.AddFact("Names", {Value::Int(100 + i)});
    }

    SimulatedSource plan_source(&schema, &instance);
    ExecutionResult run = ExecutePlan(found.plan, plan_source).value();

    SimulatedSource sat_source(&schema, &instance);
    SaturationOptions sat_options;
    sat_options.rounds = 2;
    sat_options.max_source_calls = 50000000;
    auto sat = RunSaturation(scenario.query, sat_source, sat_options);

    std::cout << "directory entries: " << entries << "\n"
              << "  proof-derived plan: " << run.source_calls
              << " source calls, " << run.output.size() << " answers\n";
    if (sat.ok()) {
      std::cout << "  saturation (P_2):   " << sat->source_calls
                << " source calls, " << sat->answers.size() << " answers\n";
    } else {
      std::cout << "  saturation (P_2):   " << sat.status() << "\n";
    }
  }
  return 0;
}
