// Quickstart: the paper's Example 1 end to end.
//
// A Profinfo table sits behind a web-form-like interface that requires an
// employee id; a Udirect table is freely accessible; a referential
// constraint links them. The query ("ids of faculty named smith") cannot be
// answered by accessing Profinfo directly — but the proof-driven planner
// finds a complete plan that walks through Udirect.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/query_eval.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/schema/parser.h"

int main() {
  using namespace lcp;

  // --- 1. Describe the querying scenario (§2 of the paper). ---------------
  Schema schema;
  RelationId profinfo = schema.AddRelation("Profinfo", 3).value();
  RelationId udirect = schema.AddRelation("Udirect", 2).value();
  // Profinfo(eid, onum, lname): the web form requires the eid field.
  schema.AddAccessMethod("mt_profinfo", profinfo, {0}).value();
  // Udirect(eid, lname): unrestricted access.
  schema.AddAccessMethod("mt_udirect", udirect, {}).value();
  schema.AddConstant(Value::Str("smith"));
  schema.AddConstraint(
      ParseTgd(schema, "Profinfo(e, o, l) -> Udirect(e, l)").value());

  ConjunctiveQuery query =
      ParseQuery(schema, "Q(eid) :- Profinfo(eid, onum, \"smith\")").value();
  std::cout << "Query: " << schema.QueryToString(query) << "\n\n";

  // --- 2. Build the accessible schema and search proofs for plans. --------
  AccessibleSchema accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard).value();
  SimpleCostFunction cost(&schema);
  ProofSearch search(&accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 3;
  options.collect_exploration_log = true;
  SearchOutcome outcome = search.Run(query, options).value();

  std::cout << "Proof exploration:\n";
  for (const std::string& line : outcome.exploration_log) {
    std::cout << "  " << line << "\n";
  }
  if (!outcome.best.has_value()) {
    std::cout << "no complete plan exists within the access budget\n";
    return 1;
  }
  std::cout << "\nBest plan (cost " << outcome.best->cost << ", "
            << PlanLanguageName(outcome.best->plan.Language()) << "):\n"
            << outcome.best->plan.ToString(schema) << "\n";

  // --- 3. Execute the plan against a simulated restricted source. ---------
  Instance instance(&schema);
  instance.AddFact("Profinfo",
                   {Value::Int(1), Value::Int(101), Value::Str("smith")});
  instance.AddFact("Profinfo",
                   {Value::Int(2), Value::Int(102), Value::Str("jones")});
  instance.AddFact("Profinfo",
                   {Value::Int(4), Value::Int(104), Value::Str("smith")});
  instance.AddFact("Udirect", {Value::Int(1), Value::Str("smith")});
  instance.AddFact("Udirect", {Value::Int(2), Value::Str("jones")});
  instance.AddFact("Udirect", {Value::Int(3), Value::Str("smith")});
  instance.AddFact("Udirect", {Value::Int(4), Value::Str("smith")});

  SimulatedSource source(&schema, &instance);
  ExecutionResult run = ExecutePlan(outcome.best->plan, source).value();
  std::cout << "Plan output (" << run.source_calls << " source calls, "
            << run.access_commands << " access commands):\n"
            << run.output.ToString() << "\n";

  std::cout << "Oracle (direct evaluation, ignoring access limits):\n";
  for (const Tuple& row : EvaluateQuery(query, instance)) {
    std::cout << "  " << row[0] << "\n";
  }
  return 0;
}
