// Theorems 3 and 7: plans beyond positive SPJ. The AcSch¬ axiom system
// lets proofs assume a fact holds once all its values are accessible
// ("negative accessibility firings"); the backward-induction algorithm of
// §4 turns such proofs into executable FO queries with ∀-guarded accesses,
// which compile to USPJ¬ plans (difference restricted to source checks).
//
// This example builds an executable query with a universal access by hand,
// shows its evaluation semantics (including vacuous truth), compiles it to
// a USPJ¬ plan, and runs the AcSch¬ proof search on the Example 1 schema.
//
// Build & run:  ./build/examples/negation_plans

#include <iostream>

#include "lcp/planner/executable_query.h"
#include "lcp/planner/negation_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/workload/scenarios.h"

int main() {
  using namespace lcp;

  // --- A hand-built executable query with a universal access. -------------
  Schema schema;
  RelationId employees = schema.AddRelation("Employees", 1).value();
  RelationId flagged = schema.AddRelation("Flagged", 1).value();
  RelationId cleared = schema.AddRelation("Cleared", 1).value();
  AccessMethodId mt_employees =
      schema.AddAccessMethod("mt_employees", employees, {}).value();
  AccessMethodId mt_flagged =
      schema.AddAccessMethod("mt_flagged", flagged, {0}).value();
  AccessMethodId mt_cleared =
      schema.AddAccessMethod("mt_cleared", cleared, {0}).value();

  TermArena arena;
  ChaseTermId x = arena.NewNull("x", 0);
  // ∃x Employees(x) ∧ (∀ access: Flagged(x) → Cleared(x)).
  ExecutableQueryPtr query = ExecutableQuery::Exists(
      mt_employees, {x},
      ExecutableQuery::Forall(
          mt_flagged, {x},
          ExecutableQuery::Exists(mt_cleared, {x}, ExecutableQuery::True())));
  std::cout << "executable query: " << query->ToString(schema, arena)
            << "\n\n";

  auto run_case = [&](const char* label, std::vector<int> emp,
                      std::vector<int> flag, std::vector<int> clear) {
    Instance instance(&schema);
    for (int v : emp) instance.AddFact(employees, {Value::Int(v)});
    for (int v : flag) instance.AddFact(flagged, {Value::Int(v)});
    for (int v : clear) instance.AddFact(cleared, {Value::Int(v)});
    SimulatedSource source(&schema, &instance);
    bool direct = EvaluateExecutable(*query, source, arena).value();
    Plan plan = CompileExecutable(*query, schema, arena).value();
    SimulatedSource source2(&schema, &instance);
    bool via_plan = !ExecutePlan(plan, source2).value().output.empty();
    std::cout << label << ": direct=" << (direct ? "true" : "false")
              << ", compiled " << PlanLanguageName(plan.Language())
              << " plan=" << (via_plan ? "true" : "false") << "\n";
  };
  run_case("emp {1}, flagged {}, cleared {}        (vacuous forall) ",
           {1}, {}, {});
  run_case("emp {1}, flagged {1}, cleared {1}      (checked)        ",
           {1}, {1}, {1});
  run_case("emp {1}, flagged {1}, cleared {}       (violates)       ",
           {1}, {1}, {});
  run_case("emp {1,2}, flagged {1}, cleared {}     (2 escapes)      ",
           {1, 2}, {1}, {});

  // --- The compiled plan, for inspection. ----------------------------------
  Plan plan = CompileExecutable(*query, schema, arena).value();
  std::cout << "\ncompiled USPJ^neg plan:\n" << plan.ToString(schema);

  // --- AcSch¬ proof search on the paper's Example 1 schema. ----------------
  Scenario scenario = MakeProfinfoScenario(/*boolean_query=*/true).value();
  auto accessible = AccessibleSchema::Build(*scenario.schema,
                                            AccessibleVariant::kNegative)
                        .value();
  TermArena proof_arena;
  NegSearchOptions options;
  options.max_steps = 3;
  auto outcome =
      FindNegativeProof(accessible, scenario.query, options, proof_arena);
  if (outcome.ok()) {
    std::cout << "\nAcSch-neg proof for Example 4 ("
              << outcome->steps.size() << " firings):\n  "
              << outcome->query->ToString(*scenario.schema, proof_arena)
              << "\n";
  } else {
    std::cout << "\nno AcSch-neg proof: " << outcome.status() << "\n";
  }
  return 0;
}
