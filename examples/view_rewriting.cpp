// Theorem 6 of the paper: answering queries using views. The base
// relations are not accessible at all; materialized views over them are.
// The chase over the accessible schema terminates (view constraints are
// weakly acyclic), and the proof search either produces a conjunctive
// rewriting over the views or correctly reports that none exists.
//
// Also runs the classical bucket-algorithm baseline (Levy et al.) on the
// same input and shows both agree.
//
// Build & run:  ./build/examples/view_rewriting

#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/baseline/bucket.h"
#include "lcp/planner/proof_search.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace {

void TryScenario(const lcp::Scenario& scenario,
                 const std::vector<lcp::ViewDefinition>& views) {
  using namespace lcp;
  const Schema& schema = *scenario.schema;
  std::cout << "Query: " << schema.QueryToString(scenario.query) << "\n";

  AccessibleSchema accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard).value();
  auto found = FindAnyPlan(accessible, scenario.query,
                           /*max_access_commands=*/6);
  if (found.ok()) {
    std::cout << "proof-driven planner: rewritable; plan:\n"
              << found->plan.ToString(schema);
  } else {
    std::cout << "proof-driven planner: no rewriting over the views\n";
  }

  BucketStats stats;
  auto bucket = BucketRewrite(schema, scenario.query, views, &stats);
  if (bucket.ok() && bucket->has_value()) {
    std::cout << "bucket baseline:      rewritable; "
              << schema.QueryToString(**bucket) << "  (checked "
              << stats.candidates_checked << " candidates)\n";
  } else {
    std::cout << "bucket baseline:      no rewriting (checked "
              << stats.candidates_checked << " candidates)\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace lcp;

  // Rewritable case: non-overlapping pair views covering a path query.
  {
    Scenario scenario = MakeViewScenario(2).value();
    const Schema& schema = *scenario.schema;
    std::vector<ViewDefinition> views;
    for (int i = 0; i < 2; ++i) {
      ViewDefinition view;
      view.view = schema.RelationByName("V" + std::to_string(i)).value();
      view.definition =
          ParseQuery(schema, "V(x, z) :- B" + std::to_string(2 * i) +
                                 "(x, y), B" + std::to_string(2 * i + 1) +
                                 "(y, z)")
              .value();
      views.push_back(std::move(view));
    }
    std::cout << "--- disjoint pair views (rewritable) ---\n";
    TryScenario(scenario, views);
  }

  // Non-rewritable case: overlapping views V0 = B0⋈B1, V1 = B1⋈B2 do not
  // compose into the length-3 path.
  {
    auto schema = std::make_unique<Schema>();
    for (int i = 0; i < 3; ++i) {
      schema->AddRelation("B" + std::to_string(i), 2).value();
    }
    std::vector<ViewDefinition> views;
    for (int i = 0; i < 2; ++i) {
      RelationId v = schema->AddRelation("V" + std::to_string(i), 2).value();
      schema->AddAccessMethod("mt_V" + std::to_string(i), v, {}).value();
      std::string def_text = "V(x, z) :- B" + std::to_string(i) +
                             "(x, y), B" + std::to_string(i + 1) + "(y, z)";
      schema
          ->AddConstraint(ParseTgd(*schema, "B" + std::to_string(i) +
                                                 "(x, y) & B" +
                                                 std::to_string(i + 1) +
                                                 "(y, z) -> V" +
                                                 std::to_string(i) + "(x, z)")
                              .value())
          .ok();
      schema
          ->AddConstraint(ParseTgd(*schema, "V" + std::to_string(i) +
                                                 "(x, z) -> B" +
                                                 std::to_string(i) +
                                                 "(x, y) & B" +
                                                 std::to_string(i + 1) +
                                                 "(y, z)")
                              .value())
          .ok();
      ViewDefinition view;
      view.view = v;
      view.definition = ParseQuery(*schema, def_text).value();
      views.push_back(std::move(view));
    }
    Scenario scenario;
    scenario.name = "overlapping_views";
    scenario.query =
        ParseQuery(*schema,
                   "Q(y0, y3) :- B0(y0, y1), B1(y1, y2), B2(y2, y3)")
            .value();
    scenario.schema = std::move(schema);
    std::cout << "--- overlapping pair views (not rewritable) ---\n";
    TryScenario(scenario, views);
  }
  return 0;
}
