// Example 2 of the paper: two overlapping telephone directories with
// chained referential constraints. Answering "all phone numbers in the
// second directory" requires a four-step plan: harvest ids and names from
// the free side tables, drive them through Direct1, then use the resulting
// (uname, addr) pairs to unlock Direct2.
//
// Build & run:  ./build/examples/telephone_directories

#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/query_eval.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/workload/scenarios.h"

int main() {
  using namespace lcp;

  Scenario scenario = MakeTelephoneScenario().value();
  const Schema& schema = *scenario.schema;
  std::cout << "Query: " << schema.QueryToString(scenario.query) << "\n";
  std::cout << "Constraints:\n";
  for (const Tgd& tgd : schema.constraints()) {
    std::cout << "  " << schema.TgdToString(tgd) << "\n";
  }

  AccessibleSchema accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard).value();
  SimpleCostFunction cost(&schema);
  ProofSearch search(&accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 5;
  SearchOutcome outcome = search.Run(scenario.query, options).value();
  if (!outcome.best.has_value()) {
    std::cout << "no plan found\n";
    return 1;
  }
  std::cout << "\nBest plan (cost " << outcome.best->cost << "):\n"
            << outcome.best->plan.ToString(schema) << "\n";

  // Populate the two directories with overlapping data.
  Instance instance(&schema);
  auto entry = [&](int64_t uname, int64_t addr, int64_t uid, int64_t phone) {
    instance.AddFact("Direct1",
                     {Value::Int(uname), Value::Int(addr), Value::Int(uid)});
    instance.AddFact("Direct2",
                     {Value::Int(uname), Value::Int(addr), Value::Int(phone)});
    instance.AddFact("Ids", {Value::Int(uid)});
    instance.AddFact("Names", {Value::Int(uname)});
  };
  entry(100, 7, 9001, 5550001);
  entry(101, 8, 9002, 5550002);
  entry(102, 9, 9003, 5550003);
  entry(103, 9, 9004, 5550004);
  if (!SatisfiesConstraints(instance)) {
    std::cout << "instance violates constraints — demo bug\n";
    return 1;
  }

  SimulatedSource source(&schema, &instance);
  ExecutionResult run = ExecutePlan(outcome.best->plan, source).value();
  std::cout << "Plan output (" << run.source_calls << " source calls):\n"
            << run.output.ToString();

  std::cout << "\nOracle answers: ";
  for (const Tuple& row : EvaluateQuery(scenario.query, instance)) {
    std::cout << row[0] << " ";
  }
  std::cout << "\n";
  return 0;
}
