// Example 5 / Figure 1 of the paper: three overlapping directory sources
// with different access costs. The planner explores the space of proofs —
// each proof yields a different physical plan (use one directory, use two
// and intersect, use all three...) — and returns the cheapest complete
// plan. Re-running with different cost assignments changes the winner,
// which is the paper's point: these plans are not algebraic variants of one
// another, so only proof-space exploration finds them all.
//
// Build & run:  ./build/examples/multisource_cost

#include <iomanip>
#include <map>
#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/planner/proof_search.h"
#include "lcp/workload/scenarios.h"

namespace {

void Explore(const char* label, const double source_costs[3]) {
  using namespace lcp;
  Scenario scenario =
      MakeMultiSourceScenario(3, source_costs, /*profinfo_cost=*/1.0).value();
  const Schema& schema = *scenario.schema;
  AccessibleSchema accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard).value();
  SimpleCostFunction cost(&schema);
  ProofSearch search(&accessible, &cost);

  // Pass 1: exhaustive enumeration (no pruning) — the full spectrum of
  // complete plans, which are NOT algebraic variants of one another.
  SearchOptions exhaustive;
  exhaustive.max_access_commands = 4;
  exhaustive.keep_all_plans = true;
  exhaustive.prune_by_cost = false;
  exhaustive.prune_by_dominance = false;
  exhaustive.candidate_order = CandidateOrder::kFreeAccessFirst;
  SearchOutcome all = search.Run(scenario.query, exhaustive).value();

  // Pass 2: Algorithm 1 with both prunings — same optimum, far less work.
  SearchOptions pruned = exhaustive;
  pruned.keep_all_plans = false;
  pruned.prune_by_cost = true;
  pruned.prune_by_dominance = true;
  SearchOutcome best = search.Run(scenario.query, pruned).value();

  std::cout << "=== " << label << " (directory costs " << source_costs[0]
            << ", " << source_costs[1] << ", " << source_costs[2] << ")\n";
  std::cout << "exhaustive: " << all.stats.nodes_created
            << " proof nodes, " << all.all_plans.size()
            << " distinct complete plans:\n";
  std::map<double, int> by_cost;
  for (const FoundPlan& found : all.all_plans) {
    std::cout << "  cost " << std::setw(4) << found.cost << " : ";
    bool first = true;
    for (const Command& cmd : found.plan.commands) {
      if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
        std::cout << (first ? "" : " -> ")
                  << schema.access_method(access->method).name;
        first = false;
      }
    }
    std::cout << "\n";
  }
  std::cout << "pruned search: " << best.stats.nodes_created << " nodes ("
            << best.stats.pruned_cost << " cost-pruned, "
            << best.stats.pruned_dominance
            << " dominance-pruned), same optimum: cost " << best.best->cost
            << "\n";
  std::cout << "best plan:\n" << best.best->plan.ToString(schema) << "\n";
}

}  // namespace

int main() {
  const double uniform[3] = {1.0, 1.0, 1.0};
  const double skewed[3] = {5.0, 1.0, 3.0};
  const double expensive_check[3] = {1.0, 1.0, 1.0};

  Explore("uniform costs", uniform);
  Explore("skewed costs", skewed);

  // With a very expensive Profinfo check, intersecting directories first
  // would pay off under a cardinality-aware cost model; under the simple
  // (per-command) model the single cheapest directory still wins, which is
  // exactly the distinction §2 draws between cost functions.
  Explore("uniform again (see EXPERIMENTS.md for the cardinality-aware run)",
          expensive_check);
  return 0;
}
