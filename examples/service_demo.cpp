// Service demo: the concurrent query service layer over Example 1.
//
// A QueryService owns a worker pool and a canonicalizing plan cache: the
// first request for a query shape pays a full proof search; every
// α-equivalent request afterwards — same shape, renamed variables — costs
// one fingerprint and one cache probe. Schema edits advance an epoch that
// invalidates cached plans. The service also hardens the request lifecycle
// (DESIGN.md §7): bounded admission, end-to-end deadlines, cancellation
// tickets, and edge validation — the tail of this demo shows each refusal.
//
// Build & run:  ./build/examples/service_demo

#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/runtime/source.h"
#include "lcp/schema/parser.h"
#include "lcp/service/service.h"

int main() {
  using namespace lcp;

  // --- 1. Example 1's scenario: restricted Profinfo, free Udirect. --------
  Schema schema;
  RelationId profinfo = schema.AddRelation("Profinfo", 3).value();
  RelationId udirect = schema.AddRelation("Udirect", 2).value();
  schema.AddAccessMethod("mt_profinfo", profinfo, {0}).value();
  schema.AddAccessMethod("mt_udirect", udirect, {}).value();
  schema.AddConstant(Value::Str("smith"));
  schema.AddConstraint(
      ParseTgd(schema, "Profinfo(e, o, l) -> Udirect(e, l)").value());

  Instance instance(&schema);
  instance.AddFact("Profinfo",
                   {Value::Int(1), Value::Int(101), Value::Str("smith")});
  instance.AddFact("Profinfo",
                   {Value::Int(2), Value::Int(102), Value::Str("jones")});
  instance.AddFact("Profinfo",
                   {Value::Int(4), Value::Int(104), Value::Str("smith")});
  instance.AddFact("Udirect", {Value::Int(1), Value::Str("smith")});
  instance.AddFact("Udirect", {Value::Int(2), Value::Str("jones")});
  instance.AddFact("Udirect", {Value::Int(4), Value::Str("smith")});

  // --- 2. Stand up the service: 4 workers, each with its own source. ------
  AccessibleSchema accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard).value();
  SimpleCostFunction cost(&schema);
  ServiceOptions options;
  options.num_workers = 4;
  // Admission control: at most 64 queued requests; when full, fast-fail the
  // newcomer with kResourceExhausted instead of queueing without bound.
  options.max_queue_depth = 64;
  options.shed_policy = ShedPolicy::kRejectNew;
  QueryService service(
      &accessible, &cost,
      [&] { return std::make_unique<SimulatedSource>(&schema, &instance); },
      options);

  auto report = [&](const char* label, const QueryResponse& response) {
    std::cout << label << ": " << (response.cache_hit ? "cache HIT" : "MISS")
              << ", epoch " << response.epoch << ", "
              << response.execution.output.size() << " rows, plan+exec "
              << (response.plan_micros + response.exec_micros) << "us\n";
  };

  // --- 3. First request plans; α-renamed repeats only probe the cache. ----
  QueryRequest request;
  request.query =
      ParseQuery(schema, "Q(eid) :- Profinfo(eid, onum, \"smith\")").value();
  QueryResponse first = service.Call(request);
  if (!first.status.ok()) {
    std::cout << "request failed: " << first.status.ToString() << "\n";
    return 1;
  }
  report("first request  ", first);
  std::cout << "served rows:\n" << first.execution.output.ToString();

  QueryRequest renamed;
  renamed.query =
      ParseQuery(schema, "Q(person) :- Profinfo(person, room, \"smith\")")
          .value();
  report("renamed request", service.Call(renamed));

  // --- 4. A schema edit advances the epoch and invalidates the cache. -----
  schema.AddConstant(Value::Str("jones"));
  std::cout << "schema edited; epoch now " << service.RefreshSchema() << "\n";
  report("after edit     ", service.Call(request));
  report("steady state   ", service.Call(renamed));

  // --- 5. The lifecycle edges: deadlines, cancellation, validation. -------
  QueryRequest hopeless = request;
  hopeless.deadline_micros = 0;  // already expired at Submit
  std::cout << "\nzero deadline   -> "
            << service.Call(hopeless).status.ToString() << "\n";

  // Cancellation is inherently a race from the caller's side: the cancel
  // may catch the request queued (kCancelled immediately), in flight
  // (kCancelled at the next poll), or already served (OK). All are valid;
  // the guarantee is only that the future resolves exactly once.
  SubmitHandle ticketed = service.Submit(request);
  service.Cancel(ticketed.ticket);
  std::cout << "cancel raced    -> "
            << ticketed.future.get().status.ToString() << "\n";

  QueryRequest malformed;
  malformed.query = request.query;
  malformed.query.free_variables.push_back("unbound");
  std::cout << "malformed query -> "
            << service.Call(malformed).status.ToString() << "\n";

  ServiceStats stats = service.SnapshotStats();
  std::cout << "\nservice stats: " << stats.submitted << " submitted = "
            << stats.completed << " completed + " << stats.rejected
            << " rejected + " << stats.shed << " shed + " << stats.cancelled
            << " cancelled; " << stats.searches << " proof searches, "
            << stats.cache_hits << " cache hits (hit rate "
            << stats.CacheHitRate() << "), queue high-water "
            << stats.queue_depth_high_water << "\n";
  return 0;
}
