// Service demo: the concurrent query service layer over Example 1.
//
// A QueryService owns a worker pool and a canonicalizing plan cache: the
// first request for a query shape pays a full proof search; every
// α-equivalent request afterwards — same shape, renamed variables — costs
// one fingerprint and one cache probe. Schema edits advance an epoch that
// invalidates cached plans. The service also hardens the request lifecycle
// (DESIGN.md §7): bounded admission, end-to-end deadlines, cancellation
// tickets, and edge validation — the tail of this demo shows each refusal.
//
// Build & run:  ./build/examples/service_demo

#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/plan/opt/pass_manager.h"
#include "lcp/runtime/executor.h"
#include "lcp/runtime/faults.h"
#include "lcp/runtime/source.h"
#include "lcp/schema/parser.h"
#include "lcp/service/service.h"

int main() {
  using namespace lcp;

  // --- 1. Example 1's scenario: restricted Profinfo, free Udirect. --------
  Schema schema;
  RelationId profinfo = schema.AddRelation("Profinfo", 3).value();
  RelationId udirect = schema.AddRelation("Udirect", 2).value();
  schema.AddAccessMethod("mt_profinfo", profinfo, {0}).value();
  schema.AddAccessMethod("mt_udirect", udirect, {}).value();
  schema.AddConstant(Value::Str("smith"));
  schema.AddConstraint(
      ParseTgd(schema, "Profinfo(e, o, l) -> Udirect(e, l)").value());

  Instance instance(&schema);
  instance.AddFact("Profinfo",
                   {Value::Int(1), Value::Int(101), Value::Str("smith")});
  instance.AddFact("Profinfo",
                   {Value::Int(2), Value::Int(102), Value::Str("jones")});
  instance.AddFact("Profinfo",
                   {Value::Int(4), Value::Int(104), Value::Str("smith")});
  instance.AddFact("Udirect", {Value::Int(1), Value::Str("smith")});
  instance.AddFact("Udirect", {Value::Int(2), Value::Str("jones")});
  instance.AddFact("Udirect", {Value::Int(4), Value::Str("smith")});

  // --- 2. Stand up the service: 4 workers, each with its own source. ------
  AccessibleSchema accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard).value();
  SimpleCostFunction cost(&schema);
  ServiceOptions options;
  options.num_workers = 4;
  // Admission control: at most 64 queued requests; when full, fast-fail the
  // newcomer with kResourceExhausted instead of queueing without bound.
  options.max_queue_depth = 64;
  options.shed_policy = ShedPolicy::kRejectNew;
  QueryService service(
      &accessible, &cost,
      [&] { return std::make_unique<SimulatedSource>(&schema, &instance); },
      options);

  auto report = [&](const char* label, const QueryResponse& response) {
    std::cout << label << ": " << (response.cache_hit ? "cache HIT" : "MISS")
              << ", epoch " << response.epoch << ", "
              << response.execution.output.size() << " rows, plan+exec "
              << (response.plan_micros + response.exec_micros) << "us\n";
  };

  // --- 3. First request plans; α-renamed repeats only probe the cache. ----
  QueryRequest request;
  request.query =
      ParseQuery(schema, "Q(eid) :- Profinfo(eid, onum, \"smith\")").value();
  QueryResponse first = service.Call(request);
  if (!first.status.ok()) {
    std::cout << "request failed: " << first.status.ToString() << "\n";
    return 1;
  }
  report("first request  ", first);
  std::cout << "served rows:\n" << first.execution.output.ToString();

  QueryRequest renamed;
  renamed.query =
      ParseQuery(schema, "Q(person) :- Profinfo(person, room, \"smith\")")
          .value();
  report("renamed request", service.Call(renamed));

  // --- 4. A schema edit advances the epoch and invalidates the cache. -----
  schema.AddConstant(Value::Str("jones"));
  std::cout << "schema edited; epoch now " << service.RefreshSchema() << "\n";
  report("after edit     ", service.Call(request));
  report("steady state   ", service.Call(renamed));

  // --- 5. The lifecycle edges: deadlines, cancellation, validation. -------
  QueryRequest hopeless = request;
  hopeless.deadline_micros = 0;  // already expired at Submit
  std::cout << "\nzero deadline   -> "
            << service.Call(hopeless).status.ToString() << "\n";

  // Cancellation is inherently a race from the caller's side: the cancel
  // may catch the request queued (kCancelled immediately), in flight
  // (kCancelled at the next poll), or already served (OK). All are valid;
  // the guarantee is only that the future resolves exactly once.
  SubmitHandle ticketed = service.Submit(request);
  service.Cancel(ticketed.ticket);
  std::cout << "cancel raced    -> "
            << ticketed.future.get().status.ToString() << "\n";

  QueryRequest malformed;
  malformed.query = request.query;
  malformed.query.free_variables.push_back("unbound");
  std::cout << "malformed query -> "
            << service.Call(malformed).status.ToString() << "\n";

  ServiceStats stats = service.SnapshotStats();
  std::cout << "\nservice stats: " << stats.submitted << " submitted = "
            << stats.completed << " completed + " << stats.rejected
            << " rejected + " << stats.shed << " shed + " << stats.cancelled
            << " cancelled; " << stats.searches << " proof searches, "
            << stats.cache_hits << " cache hits (hit rate "
            << stats.CacheHitRate() << "), queue high-water "
            << stats.queue_depth_high_water << "\n";

  // --- 6. Source health: outage -> failover -> probe -> recovery. ---------
  // A relation with a cheap primary method and an expensive fallback; the
  // primary suffers a scheduled outage on a virtual clock. The service
  // quarantines the dead method, re-plans around it in-request (responses
  // are marked degraded: exact answers, pricier plan), probes it when the
  // quarantine window expires, and restores the cheap plan after the heal.
  Schema schema2;
  RelationId rel = schema2.AddRelation("R", 2).value();
  AccessMethodId fast = schema2.AddAccessMethod("mt_fast", rel, {}, 1.0).value();
  schema2.AddAccessMethod("mt_slow", rel, {}, 20.0).value();
  Instance data2(&schema2);
  for (int i = 0; i < 3; ++i) {
    data2.AddFact("R", {Value::Int(i), Value::Int(i * 10)});
  }
  AccessibleSchema accessible2 =
      AccessibleSchema::Build(schema2, AccessibleVariant::kStandard).value();
  SimpleCostFunction cost2(&schema2);

  SharedVirtualClock vclock;
  SimulatedSource base2(&schema2, &data2);  // one worker => one factory call
  ServiceOptions failover_options;
  failover_options.num_workers = 1;
  failover_options.clock = &vclock;
  failover_options.execution.retry.max_attempts = 1;
  failover_options.health.quarantine_after_consecutive = 1;
  failover_options.health.quarantine_micros = 50000;
  QueryService failover_service(
      &accessible2, &cost2,
      [&] {
        auto source = std::make_unique<FaultInjectingSource>(
            &base2, FaultProfile{}, /*seed=*/1, &vclock);
        source->FailFrom(fast, 10000);    // outage begins at t=10ms
        source->RecoverAt(fast, 100000);  // source heals at t=100ms
        return source;
      },
      failover_options);

  QueryRequest redundant;
  redundant.query = ParseQuery(schema2, "Q(x, y) :- R(x, y)").value();
  auto show = [&](const char* label) {
    QueryResponse response = failover_service.Call(redundant);
    std::cout << label << " -> " << response.status.ToString()
              << ", plan cost " << (response.plan ? response.plan->cost : 0.0)
              << (response.failed_over ? " [failed over]" : "")
              << (response.degraded ? " [degraded]" : "") << "\n";
  };
  std::cout << "\n--- source health and failover (virtual time) ---\n";
  show("healthy       ");
  vclock.Advance(10000);  // into the outage
  show("during outage ");
  vclock.Advance(50000);  // quarantine window expires; probe fails
  show("probe fails   ");
  vclock.Advance(100000);  // past the heal and the backed-off window
  show("after recovery");

  ServiceStats fstats = failover_service.SnapshotStats();
  std::cout << "failover stats: " << fstats.failovers << " failovers, "
            << fstats.degraded_responses << " degraded responses, "
            << fstats.quarantines << " quarantines, " << fstats.probes_sent
            << " probes (" << fstats.probes_failed << " failed, "
            << fstats.recoveries << " recovered), "
            << fstats.methods_quarantined
            << " currently quarantined, availability epoch "
            << fstats.availability_epoch << "\n";

  // --- 7. Plan optimizer: a redundant-access plan, before and after. ------
  // The serving path optimizes every freshly-searched plan before cache
  // admission (ServiceOptions::optimize_plans, on by default; §6 above ran
  // it too). To see the passes at work, hand the PassManager the kind of
  // plan a naive planner emits: the same access issued three times, a
  // selection left hanging above a scan — then print the per-pass stats.
  std::cout << "\n--- plan optimizer (DESIGN.md §11) ---\n";
  Plan wasteful;
  for (int i = 0; i < 3; ++i) {
    AccessCommand access;
    access.method = fast;
    access.output_table = "t" + std::to_string(i);
    access.output_columns = {{"x", 0}, {"y", 1}};
    wasteful.commands.push_back(std::move(access));
  }
  wasteful.commands.push_back(QueryCommand{
      "merged",
      RaExpr::Union(RaExpr::Union(RaExpr::TempScan("t0"), RaExpr::TempScan("t1")),
                    RaExpr::TempScan("t2"))});
  wasteful.commands.push_back(QueryCommand{
      "picked", RaExpr::Select(RaExpr::TempScan("merged"),
                               {RaExpr::Condition::AttrEqConst(
                                   "x", Value::Int(1))})});
  wasteful.output_table = "picked";
  wasteful.output_attrs = {"x", "y"};

  plan_opt::PassManager optimizer;
  plan_opt::OptimizeStats opt_stats;
  Plan optimized =
      optimizer.Optimize(wasteful, schema2, cost2, &opt_stats).value();
  std::cout << opt_stats.ToString();

  SimulatedSource demo_source(&schema2, &data2);
  ExecutionResult before = ExecutePlan(wasteful, demo_source).value();
  ExecutionResult after = ExecutePlan(optimized, demo_source).value();
  std::cout << "unoptimized: " << before.access_commands
            << " access commands, " << before.source_calls
            << " source calls; optimized: " << after.access_commands
            << " access commands, " << after.source_calls
            << " source calls; both return " << after.output.size()
            << " row(s)\n";
  return 0;
}
