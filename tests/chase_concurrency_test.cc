// Regression tests for ChaseConfig's thread-safety contract: const probes
// (FactsWith / TermsAt), which lazily catch up the positional index, must be
// safe from many threads on a shared configuration — the QueryService worker
// pool runs concurrent read-only proof searches over shared chase state.
// Run under TSan in CI to catch index-build races.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lcp/chase/config.h"

namespace lcp {
namespace {

constexpr int kThreads = 8;
constexpr int kChainLength = 64;

/// A chain i -> i+1 over relation 0 plus a unary marker per term: enough
/// facts that every probe exercises both indexes with known answers.
ChaseConfig MakeChainConfig() {
  ChaseConfig config;
  for (int i = 1; i <= kChainLength; ++i) {
    config.Add(Fact(0, {i, i + 1}));
    config.Add(Fact(1, {i}));
  }
  return config;
}

/// Probes the shared config from one thread and counts mismatches (EXPECTs
/// are not thread-safe enough to fail from workers; the main thread
/// asserts).
int ProbeChain(const ChaseConfig& config, int rounds) {
  int errors = 0;
  for (int round = 0; round < rounds; ++round) {
    for (int i = 1; i <= kChainLength; ++i) {
      // Fact(0, {i, i+1}) sits at index 2*(i-1); Fact(1, {i}) right after.
      const std::vector<int>& heads = config.FactsWith(0, 0, i);
      if (heads.size() != 1 || heads[0] != 2 * (i - 1)) ++errors;
      const std::vector<int>& markers = config.FactsWith(1, 0, i);
      if (markers.size() != 1 || markers[0] != 2 * (i - 1) + 1) ++errors;
    }
    if (config.TermsAt(0, 0).size() != kChainLength) ++errors;
    if (config.TermsAt(1, 0).size() != kChainLength) ++errors;
    if (!config.FactsWith(0, 0, kChainLength + 5).empty()) ++errors;
  }
  return errors;
}

TEST(ChaseConcurrencyTest, ColdIndexBuiltUnderConcurrentProbes) {
  // The first probes race straight into the lazy index build: all threads
  // start on an unindexed config and must agree on the result.
  for (int repeat = 0; repeat < 10; ++repeat) {
    ChaseConfig config = MakeChainConfig();
    std::atomic<int> total_errors{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&config, &total_errors] {
        total_errors.fetch_add(ProbeChain(config, /*rounds=*/3),
                               std::memory_order_relaxed);
      });
    }
    for (std::thread& thread : threads) thread.join();
    ASSERT_EQ(total_errors.load(), 0) << "repeat " << repeat;
  }
}

TEST(ChaseConcurrencyTest, PrepareForConcurrentReadsFrontLoadsTheBuild) {
  ChaseConfig config = MakeChainConfig();
  config.PrepareForConcurrentReads();
  config.PrepareForConcurrentReads();  // idempotent

  std::atomic<int> total_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&config, &total_errors] {
      total_errors.fetch_add(ProbeChain(config, /*rounds=*/5),
                             std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(total_errors.load(), 0);
}

TEST(ChaseConcurrencyTest, CopiesProbeIndependentlyAcrossThreads) {
  // Copying drops the positional index (it rebuilds lazily); each thread
  // owns a private copy and additionally probes the shared original —
  // concurrent builds of distinct configs plus a shared one.
  ChaseConfig original = MakeChainConfig();
  std::atomic<int> total_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&original, &total_errors, t] {
      ChaseConfig copy = original;  // value-type branch, as in node expansion
      copy.Add(Fact(2, {100 + t}));
      int errors = ProbeChain(copy, /*rounds=*/2);
      errors += ProbeChain(original, /*rounds=*/2);
      const std::vector<int>& mine = copy.FactsWith(2, 0, 100 + t);
      if (mine.size() != 1) ++errors;
      if (!original.FactsWith(2, 0, 100 + t).empty()) ++errors;
      total_errors.fetch_add(errors, std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(total_errors.load(), 0);
}

TEST(ChaseConcurrencyTest, ProbesInterleaveWithExclusiveAddPhases) {
  // Alternate exclusive mutation phases with concurrent read phases: the
  // watermark must catch up exactly once per phase and never expose a
  // partially built index.
  ChaseConfig config;
  int next = 1;
  for (int phase = 0; phase < 4; ++phase) {
    for (int i = 0; i < 16; ++i) {
      config.Add(Fact(0, {next, next + 1}));
      ++next;
    }
    const int high_water = next - 1;
    std::atomic<int> total_errors{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&config, &total_errors, high_water] {
        int errors = 0;
        for (int i = 1; i <= high_water; ++i) {
          if (config.FactsWith(0, 0, i).size() != 1) ++errors;
        }
        if (static_cast<int>(config.TermsAt(0, 0).size()) != high_water) {
          ++errors;
        }
        total_errors.fetch_add(errors, std::memory_order_relaxed);
      });
    }
    for (std::thread& thread : threads) thread.join();
    ASSERT_EQ(total_errors.load(), 0) << "phase " << phase;
  }
}

}  // namespace
}  // namespace lcp
