// Differential tests for the vectorized execution engine: for randomized
// schemas, instances, and plans, the vectorized engine must be
// bit-identical to the row oracle — same output rows in the same order,
// same completeness/degradation accounting, and the same statuses — both
// against a plain simulated source and under seeded fault injection.
// LCP_EXEC_STRESS_ITERS scales the number of seeds (CI stress job).
// Scenario machinery lives in exec_scenario.h, shared with
// exec_parallel_test.cc.

#include <gtest/gtest.h>

#include <string>

#include "exec_scenario.h"
#include "lcp/base/clock.h"
#include "lcp/runtime/executor.h"
#include "lcp/runtime/faults.h"

namespace lcp {
namespace {

using exec_testing::ExpectIdentical;
using exec_testing::ScenarioBuilder;
using exec_testing::StressIters;

TEST(ExecVectorizedDifferentialTest, FaultFreeRunsAreBitIdentical) {
  const int iters = StressIters(40);
  for (int seed = 0; seed < iters; ++seed) {
    ScenarioBuilder builder(static_cast<uint64_t>(seed) * 131 + 1);
    Schema schema;
    builder.BuildSchema(schema);
    Instance instance = builder.BuildInstance(schema);
    Plan plan = builder.BuildPlan();

    SimulatedSource row_source(&schema, &instance);
    ExecutionOptions row_opts;
    row_opts.engine = ExecutionEngine::kRowOracle;
    auto row = ExecutePlan(plan, row_source, row_opts);

    SimulatedSource vec_source(&schema, &instance);
    ExecutionOptions vec_opts;
    vec_opts.engine = ExecutionEngine::kVectorized;
    auto vec = ExecutePlan(plan, vec_source, vec_opts);

    ASSERT_EQ(row.ok(), vec.ok())
        << "seed " << seed << ": row=" << row.status().message()
        << " vec=" << vec.status().message();
    if (!row.ok()) {
      EXPECT_EQ(row.status().code(), vec.status().code()) << "seed " << seed;
      EXPECT_EQ(row.status().message(), vec.status().message())
          << "seed " << seed;
      continue;
    }
    ExpectIdentical(*row, *vec, seed);
    // Identical access sequences: same number of source hits and the same
    // distinct (method, binding) set.
    EXPECT_EQ(row_source.total_calls(), vec_source.total_calls())
        << "seed " << seed;
    EXPECT_EQ(row_source.distinct_pairs().size(),
              vec_source.distinct_pairs().size())
        << "seed " << seed;
  }
}

TEST(ExecVectorizedDifferentialTest, SeededFaultRunsAreBitIdentical) {
  const int iters = StressIters(30);
  for (int seed = 0; seed < iters; ++seed) {
    ScenarioBuilder builder(static_cast<uint64_t>(seed) * 977 + 3);
    Schema schema;
    builder.BuildSchema(schema);
    Instance instance = builder.BuildInstance(schema);
    Plan plan = builder.BuildPlan();

    FaultProfile profile;
    profile.defaults.transient_failure_rate = 0.3;
    profile.defaults.latency_base_micros = 5;
    if (seed % 2 == 1) profile.defaults.truncation_rate = 0.15;
    if (seed % 5 == 0) {
      // Some scenarios cannot recover: one method hard-down.
      profile.permanent_outages.insert(schema.num_access_methods() - 1);
    }

    ExecutionOptions opts;
    opts.retry.max_attempts = (seed % 3 == 0) ? 2 : 16;
    opts.retry.initial_backoff_micros = 10;
    opts.retry.jitter_fraction = 0.4;
    opts.retry.jitter_seed = static_cast<uint64_t>(seed);
    opts.retry.best_effort = (seed % 2 == 0);

    auto run_engine = [&](ExecutionEngine engine, FaultStats* fstats) {
      SimulatedSource base(&schema, &instance);
      VirtualClock clock;
      FaultInjectingSource faulty(&base, profile,
                                  static_cast<uint64_t>(seed) * 17 + 5, &clock);
      ExecutionOptions o = opts;
      o.clock = &clock;
      o.engine = engine;
      auto run = ExecutePlan(plan, faulty, o);
      *fstats = faulty.stats();
      return run;
    };

    FaultStats row_fs, vec_fs;
    auto row = run_engine(ExecutionEngine::kRowOracle, &row_fs);
    auto vec = run_engine(ExecutionEngine::kVectorized, &vec_fs);

    ASSERT_EQ(row.ok(), vec.ok())
        << "seed " << seed << ": row=" << row.status().message()
        << " vec=" << vec.status().message();
    // Identical seeded fault schedules: the engines issued the same access
    // sequence, so the injector drew the same numbers.
    EXPECT_EQ(row_fs.attempts, vec_fs.attempts) << "seed " << seed;
    EXPECT_EQ(row_fs.injected_failures, vec_fs.injected_failures)
        << "seed " << seed;
    EXPECT_EQ(row_fs.truncations, vec_fs.truncations) << "seed " << seed;
    EXPECT_EQ(row_fs.simulated_latency_micros, vec_fs.simulated_latency_micros)
        << "seed " << seed;
    if (!row.ok()) {
      EXPECT_EQ(row.status().code(), vec.status().code()) << "seed " << seed;
      EXPECT_EQ(row.status().message(), vec.status().message())
          << "seed " << seed;
      continue;
    }
    ExpectIdentical(*row, *vec, seed);
  }
}

TEST(ExecVectorizedDifferentialTest, BreakerScenariosStayIdentical) {
  // Breaker armed → both engines fall back to sequential dispatch; the
  // differential contract must hold there too.
  const int iters = StressIters(10);
  for (int seed = 0; seed < iters; ++seed) {
    ScenarioBuilder builder(static_cast<uint64_t>(seed) * 53 + 11);
    Schema schema;
    builder.BuildSchema(schema);
    Instance instance = builder.BuildInstance(schema);
    Plan plan = builder.BuildPlan();

    FaultProfile profile;
    profile.permanent_outages.insert(schema.num_access_methods() - 1);

    auto run_engine = [&](ExecutionEngine engine) {
      SimulatedSource base(&schema, &instance);
      FaultInjectingSource faulty(&base, profile, 3);
      ExecutionOptions o;
      o.retry.max_attempts = 2;
      o.retry.initial_backoff_micros = 0;
      o.retry.breaker_threshold = 3;
      o.retry.best_effort = true;
      o.engine = engine;
      return ExecutePlan(plan, faulty, o);
    };

    auto row = run_engine(ExecutionEngine::kRowOracle);
    auto vec = run_engine(ExecutionEngine::kVectorized);
    ASSERT_EQ(row.ok(), vec.ok()) << "seed " << seed;
    if (!row.ok()) {
      EXPECT_EQ(row.status().code(), vec.status().code()) << "seed " << seed;
      continue;
    }
    ExpectIdentical(*row, *vec, seed);
    EXPECT_EQ(row->retry.breaker_trips, vec->retry.breaker_trips)
        << "seed " << seed;
    EXPECT_EQ(row->retry.breaker_short_circuits,
              vec->retry.breaker_short_circuits)
        << "seed " << seed;
  }
}

TEST(ExecVectorizedTest, ExecStatsAreReported) {
  // Fixed two-access join plan: the vectorized engine must report batched
  // dispatch and operator batch counters.
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  RelationId s = schema.AddRelation("S", 2).value();
  schema.AddAccessMethod("mt_r_free", r, {}, 2.0).value();
  schema.AddAccessMethod("mt_s_by0", s, {0}, 5.0).value();
  Instance instance(&schema);
  for (int i = 0; i < 8; ++i) {
    instance.AddFact(0, Tuple{Value::Int(i), Value::Int(i % 4)});
    instance.AddFact(1, Tuple{Value::Int(i % 4), Value::Int(i * 10)});
  }
  SimulatedSource source(&schema, &instance);

  Plan plan;
  AccessCommand first;
  first.method = 0;
  first.output_table = "t0";
  first.output_columns = {{"a", 0}, {"b", 1}};
  plan.commands.push_back(first);
  AccessCommand second;
  second.method = 1;
  second.input = RaExpr::Project(RaExpr::TempScan("t0"), {"b"});
  second.input_binding = {{"b", 0}};
  second.output_table = "t1";
  second.output_columns = {{"b", 0}, {"c", 1}};
  plan.commands.push_back(second);
  plan.commands.push_back(QueryCommand{
      "t2", RaExpr::Join(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.output_table = "t2";
  plan.output_attrs = {"a", "c"};

  ExecutionOptions options;  // vectorized by default
  auto result = ExecutePlan(plan, source, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->exec.access_batches, 2u);   // one per access command
  EXPECT_EQ(result->exec.access_bindings, 5u);  // 1 free + 4 distinct keys
  EXPECT_GT(result->exec.batches, 0u);
  EXPECT_GT(result->exec.probe_hits, 0u);
  EXPECT_GT(result->exec.rows_out, 0u);
}

}  // namespace
}  // namespace lcp
