// Tests for the resilience layer: deterministic fault injection, retry /
// backoff / circuit breakers, deadlines, and the fault/no-fault differential
// contract (a run that reports `complete` must produce exactly the fault-free
// output table).

#include "lcp/runtime/faults.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "lcp/base/clock.h"
#include "lcp/runtime/executor.h"

namespace lcp {
namespace {

Schema MakeSchema() {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  RelationId s = schema.AddRelation("S", 2).value();
  schema.AddAccessMethod("mt_r_free", r, {}, 2.0).value();
  schema.AddAccessMethod("mt_s_by0", s, {0}, 5.0).value();
  return schema;
}

/// Pseudo-random instance: R rows feed their second column into S's input
/// position, with hit/miss mix and multi-row S answers.
Instance MakeInstance(const Schema& schema, uint64_t seed, int n) {
  Instance instance(&schema);
  std::mt19937_64 prng(seed);
  for (int i = 0; i < n; ++i) {
    int64_t key = static_cast<int64_t>(prng() % (n * 2));
    instance.AddFact(0, Tuple{Value::Int(i), Value::Int(key)});
    if (prng() % 3 != 0) {
      instance.AddFact(1, Tuple{Value::Int(key), Value::Int(i * 100)});
      if (prng() % 2 == 0) {
        instance.AddFact(1, Tuple{Value::Int(key), Value::Int(i * 100 + 1)});
      }
    }
  }
  return instance;
}

/// The two-access join plan from the runtime tests: free scan of R, keyed
/// probe of S, join, project.
Plan MakeJoinPlan() {
  Plan plan;
  AccessCommand first;
  first.method = 0;
  first.output_table = "t0";
  first.output_columns = {{"a", 0}, {"b", 1}};
  plan.commands.push_back(first);
  AccessCommand second;
  second.method = 1;
  second.input = RaExpr::Project(RaExpr::TempScan("t0"), {"b"});
  second.input_binding = {{"b", 0}};
  second.output_table = "t1";
  second.output_columns = {{"b", 0}, {"c", 1}};
  plan.commands.push_back(second);
  plan.commands.push_back(QueryCommand{
      "t2", RaExpr::Join(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.output_table = "t2";
  plan.output_attrs = {"a", "c"};
  return plan;
}

bool SameRows(const Table& a, const Table& b) {
  if (a.size() != b.size()) return false;
  for (const Tuple& row : a.rows()) {
    if (!b.ContainsRow(row)) return false;
  }
  return true;
}

TEST(FaultInjectingSourceTest, ZeroProfileIsTransparent) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 1, 8);
  SimulatedSource base(&schema, &instance);
  VirtualClock clock;
  FaultInjectingSource faulty(&base, FaultProfile{}, 42, &clock);

  auto outcome = faulty.TryAccess(0, {});
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->truncated);
  EXPECT_EQ(outcome->tuples->size(), instance.relation(0).tuples().size());
  EXPECT_EQ(faulty.stats().injected_failures, 0u);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(FaultInjectingSourceTest, AlwaysFailingMethodInjectsUnavailable) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 1, 8);
  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.defaults.transient_failure_rate = 1.0;
  FaultInjectingSource faulty(&base, profile, 42);

  for (int i = 0; i < 5; ++i) {
    auto outcome = faulty.TryAccess(0, {});
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(faulty.stats().injected_failures, 5u);
  // Failed attempts never reach the base source.
  EXPECT_EQ(base.total_calls(), 0u);
}

TEST(FaultInjectingSourceTest, PermanentOutageRejectsEveryCall) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 1, 8);
  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.permanent_outages.insert(1);
  FaultInjectingSource faulty(&base, profile, 7);

  EXPECT_TRUE(faulty.TryAccess(0, {}).ok());
  auto outcome = faulty.TryAccess(1, {Value::Int(3)});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(faulty.stats().outage_rejections, 1u);
}

TEST(FaultInjectingSourceTest, OutageScheduleFollowsTheClock) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 1, 8);
  SimulatedSource base(&schema, &instance);
  VirtualClock clock;
  FaultInjectingSource faulty(&base, FaultProfile{}, 42, &clock);
  faulty.FailFrom(0, 1000);
  faulty.RecoverAt(0, 5000);

  EXPECT_TRUE(faulty.TryAccess(0, {}).ok());  // before the outage begins
  clock.Advance(1000);
  auto down = faulty.TryAccess(0, {});
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.status().code(), StatusCode::kUnavailable);
  clock.Advance(3999);  // now = 4999: one tick short of recovery
  EXPECT_FALSE(faulty.TryAccess(0, {}).ok());
  clock.Advance(1);  // now = 5000: healed
  EXPECT_TRUE(faulty.TryAccess(0, {}).ok());
  EXPECT_EQ(faulty.stats().outage_rejections, 2u);
  // The schedule is pure clock arithmetic — no PRNG draws — so the fault
  // schedule of other methods is untouched (determinism contract).
  EXPECT_EQ(faulty.stats().injected_failures, 0u);
}

TEST(FaultInjectingSourceTest, RecoverAtHealsAProfilePermanentOutage) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 1, 8);
  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.permanent_outages.insert(1);
  VirtualClock clock;
  FaultInjectingSource faulty(&base, profile, 7, &clock);
  faulty.RecoverAt(1, 2000);

  EXPECT_FALSE(faulty.TryAccess(1, {Value::Int(3)}).ok());
  clock.Advance(2000);
  EXPECT_TRUE(faulty.TryAccess(1, {Value::Int(3)}).ok());
}

TEST(FaultInjectingSourceTest, LatencyIsChargedToTheClock) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 1, 8);
  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.defaults.latency_base_micros = 250;
  VirtualClock clock;
  FaultInjectingSource faulty(&base, profile, 42, &clock);

  ASSERT_TRUE(faulty.TryAccess(0, {}).ok());
  ASSERT_TRUE(faulty.TryAccess(0, {}).ok());
  EXPECT_EQ(clock.NowMicros(), 500);
  EXPECT_EQ(faulty.stats().simulated_latency_micros, 500);
}

TEST(FaultInjectingSourceTest, TruncationReturnsFlaggedPrefix) {
  Schema schema = MakeSchema();
  Instance instance(&schema);
  for (int i = 0; i < 10; ++i) {
    instance.AddFact(1, Tuple{Value::Int(1), Value::Int(i)});
  }
  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.defaults.truncation_rate = 1.0;
  profile.defaults.truncation_keep_fraction = 0.5;
  FaultInjectingSource faulty(&base, profile, 9);

  auto outcome = faulty.TryAccess(1, {Value::Int(1)});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->truncated);
  EXPECT_EQ(outcome->tuples->size(), 5u);
  EXPECT_EQ(faulty.stats().truncations, 1u);
  // A truncated result is a strict prefix of the full answer.
  EXPECT_EQ((*outcome->tuples)[0], (Tuple{Value::Int(1), Value::Int(0)}));
}

TEST(ExecutorRetryTest, RetriesRecoverFromTransientFaults) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 3, 16);
  SimulatedSource direct(&schema, &instance);
  auto exact = ExecutePlan(MakeJoinPlan(), direct);
  ASSERT_TRUE(exact.ok());

  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.defaults.transient_failure_rate = 0.4;
  VirtualClock clock;
  FaultInjectingSource faulty(&base, profile, 2024, &clock);
  ExecutionOptions options;
  options.retry.max_attempts = 64;  // enough to make success overwhelming
  options.clock = &clock;
  auto run = ExecutePlan(MakeJoinPlan(), faulty, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete);
  EXPECT_TRUE(SameRows(run->output, exact->output));
  EXPECT_GT(run->retry.failures, 0u);
  EXPECT_EQ(run->retry.retries, run->retry.failures);
  EXPECT_GT(run->retry.backoff_micros, 0);
  // Backoff waits were charged to the virtual clock, not real time.
  EXPECT_EQ(clock.NowMicros(), run->retry.backoff_micros);
}

TEST(ExecutorRetryTest, BackoffGrowsExponentiallyAndClamps) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 3, 4);
  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.defaults.transient_failure_rate = 1.0;
  VirtualClock clock;
  FaultInjectingSource faulty(&base, profile, 1, &clock);
  ExecutionOptions options;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff_micros = 100;
  options.retry.backoff_multiplier = 2.0;
  options.retry.max_backoff_micros = 400;
  options.clock = &clock;
  auto run = ExecutePlan(MakeJoinPlan(), faulty, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
}

TEST(ExecutorRetryTest, BreakerTripsAndShortCircuits) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 3, 16);
  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.permanent_outages.insert(1);  // S is down; R works
  FaultInjectingSource faulty(&base, profile, 5);
  ExecutionOptions options;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_micros = 0;
  options.retry.breaker_threshold = 3;
  options.retry.best_effort = true;
  auto run = ExecutePlan(MakeJoinPlan(), faulty, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run->complete);
  EXPECT_GT(run->degraded_accesses, 0);
  EXPECT_EQ(run->retry.breaker_trips, 1u);
  EXPECT_GT(run->retry.breaker_short_circuits, 0u);
  // Once the breaker opened, the outage method was no longer hammered: total
  // attempts stay well below bindings * max_attempts.
  EXPECT_LE(faulty.stats().outage_rejections, 3u);
  // The join over a fully-degraded S probe is empty but well-formed.
  EXPECT_TRUE(run->output.empty());
}

TEST(ExecutorRetryTest, StrictModeSurfacesUnavailable) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 3, 16);
  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.permanent_outages.insert(1);
  FaultInjectingSource faulty(&base, profile, 5);
  ExecutionOptions options;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_micros = 0;
  auto run = ExecutePlan(MakeJoinPlan(), faulty, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
}

TEST(ExecutorRetryTest, PlanDeadlineAbandonsUnderLatency) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 3, 16);
  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.defaults.latency_base_micros = 1000;  // 1ms per access
  VirtualClock clock;
  FaultInjectingSource faulty(&base, profile, 5, &clock);
  ExecutionOptions options;
  options.retry.plan_deadline_micros = 3500;  // only ~3 accesses fit
  options.clock = &clock;
  auto strict = ExecutePlan(MakeJoinPlan(), faulty, options);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDeadlineExceeded);

  // Best-effort: the same deadline yields a degraded-but-usable result.
  VirtualClock clock2;
  FaultInjectingSource faulty2(&base, profile, 5, &clock2);
  options.clock = &clock2;
  options.retry.best_effort = true;
  auto degraded = ExecutePlan(MakeJoinPlan(), faulty2, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_FALSE(degraded->complete);
  EXPECT_GT(degraded->retry.deadline_abandons, 0u);
}

TEST(ExecutorRetryTest, TruncatedOutcomesMarkResultIncomplete) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 3, 16);
  SimulatedSource base(&schema, &instance);
  FaultProfile profile;
  profile.defaults.truncation_rate = 1.0;
  FaultInjectingSource faulty(&base, profile, 11);
  auto run = ExecutePlan(MakeJoinPlan(), faulty, ExecutionOptions{});
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run->complete);
  EXPECT_GT(run->degraded_accesses, 0);
}

TEST(ExecutorRetryTest, IdenticalSeedsGiveByteIdenticalSchedules) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema, 3, 32);

  auto run_once = [&](ExecutionResult* out, FaultStats* fstats) {
    SimulatedSource base(&schema, &instance);
    FaultProfile profile;
    profile.defaults.transient_failure_rate = 0.5;
    profile.defaults.latency_base_micros = 10;
    profile.defaults.latency_jitter_micros = 90;
    VirtualClock clock;
    FaultInjectingSource faulty(&base, profile, 777, &clock);
    ExecutionOptions options;
    options.retry.max_attempts = 32;
    options.retry.jitter_fraction = 0.5;
    options.retry.jitter_seed = 99;
    options.clock = &clock;
    auto run = ExecutePlan(MakeJoinPlan(), faulty, options);
    ASSERT_TRUE(run.ok()) << run.status();
    *out = std::move(*run);
    *fstats = faulty.stats();
  };

  ExecutionResult a, b;
  FaultStats fa, fb;
  run_once(&a, &fa);
  run_once(&b, &fb);

  // Byte-identical retry schedules and stats.
  EXPECT_EQ(a.retry.backoff_schedule, b.retry.backoff_schedule);
  EXPECT_EQ(a.retry.attempts, b.retry.attempts);
  EXPECT_EQ(a.retry.failures, b.retry.failures);
  EXPECT_EQ(a.retry.backoff_micros, b.retry.backoff_micros);
  EXPECT_EQ(fa.injected_failures, fb.injected_failures);
  EXPECT_EQ(fa.simulated_latency_micros, fb.simulated_latency_micros);
  // Identical output tables, row for row.
  ASSERT_EQ(a.output.size(), b.output.size());
  EXPECT_EQ(a.output.rows(), b.output.rows());
  EXPECT_TRUE(a.complete);
  EXPECT_TRUE(b.complete);
}

/// The differential contract (see ISSUE/DESIGN): for any seed, executing
/// with fault rate > 0 and retries enabled must yield the same output table
/// as the fault-free run whenever the executor reports `complete`.
/// LCP_FAULT_STRESS_ITERS scales the number of seeds (CI stress job).
TEST(ExecutorRetryTest, FaultyCompleteRunsMatchFaultFreeDifferential) {
  int iters = 40;
  if (const char* env = std::getenv("LCP_FAULT_STRESS_ITERS")) {
    iters = std::max(1, std::atoi(env));
  }
  Schema schema = MakeSchema();
  Plan plan = MakeJoinPlan();
  int complete_runs = 0;
  for (int seed = 0; seed < iters; ++seed) {
    Instance instance = MakeInstance(schema, seed, 12 + seed % 9);
    SimulatedSource direct(&schema, &instance);
    auto exact = ExecutePlan(plan, direct);
    ASSERT_TRUE(exact.ok());

    SimulatedSource base(&schema, &instance);
    FaultProfile profile;
    profile.defaults.transient_failure_rate = 0.3;
    profile.defaults.latency_base_micros = 5;
    // Every other seed also injects truncations, which must force
    // complete=false whenever they land.
    if (seed % 2 == 1) profile.defaults.truncation_rate = 0.1;
    VirtualClock clock;
    FaultInjectingSource faulty(&base, profile, seed * 31 + 7, &clock);
    ExecutionOptions options;
    options.retry.max_attempts = 24;
    options.retry.jitter_fraction = 0.3;
    options.retry.jitter_seed = seed;
    options.retry.best_effort = true;
    options.clock = &clock;
    auto run = ExecutePlan(plan, faulty, options);
    ASSERT_TRUE(run.ok()) << "seed " << seed << ": " << run.status();
    if (run->complete) {
      ++complete_runs;
      EXPECT_TRUE(SameRows(run->output, exact->output)) << "seed " << seed;
      EXPECT_EQ(run->degraded_accesses, 0) << "seed " << seed;
    } else {
      // Degraded output never invents rows: it stays a subset of exact.
      for (const Tuple& row : run->output.rows()) {
        EXPECT_TRUE(exact->output.ContainsRow(row)) << "seed " << seed;
      }
    }
  }
  // With 24 attempts at rate 0.3, abandonment is essentially impossible:
  // most runs must come back complete.
  EXPECT_GT(complete_runs, iters / 2);
}

}  // namespace
}  // namespace lcp
