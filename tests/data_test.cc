#include "lcp/data/instance.h"

#include <gtest/gtest.h>

#include "lcp/data/generator.h"
#include "lcp/data/query_eval.h"
#include "lcp/schema/parser.h"

namespace lcp {
namespace {

Schema TwoRelationSchema() {
  Schema schema;
  schema.AddRelation("R", 2).value();
  schema.AddRelation("S", 1).value();
  return schema;
}

TEST(InstanceTest, InsertDeduplicates) {
  Schema schema = TwoRelationSchema();
  Instance instance(&schema);
  EXPECT_TRUE(instance.AddFact("R", {Value::Int(1), Value::Int(2)}).ok());
  EXPECT_TRUE(instance.AddFact("R", {Value::Int(1), Value::Int(2)}).ok());
  EXPECT_EQ(instance.relation(0).size(), 1u);
  EXPECT_TRUE(instance.relation(0).Contains({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(instance.relation(0).Contains({Value::Int(2), Value::Int(1)}));
  EXPECT_EQ(instance.TotalFacts(), 1u);
}

TEST(InstanceTest, AddFactChecksArity) {
  Schema schema = TwoRelationSchema();
  Instance instance(&schema);
  EXPECT_FALSE(instance.AddFact("R", {Value::Int(1)}).ok());
  EXPECT_FALSE(instance.AddFact("T", {Value::Int(1)}).ok());
}

TEST(QueryEvalTest, JoinWithConstantsAndRepeats) {
  Schema schema = TwoRelationSchema();
  Instance instance(&schema);
  instance.AddFact(0, Tuple{Value::Int(1), Value::Int(1)});
  instance.AddFact(0, Tuple{Value::Int(1), Value::Int(2)});
  instance.AddFact(0, Tuple{Value::Int(2), Value::Int(3)});
  instance.AddFact(1, Tuple{Value::Int(2)});

  // Self-loop query R(x, x).
  auto loops = EvaluateQuery(*ParseQuery(schema, "Q(x) :- R(x, x)"),
                             instance);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0][0], Value::Int(1));

  // Join R(x, y), S(y).
  auto joined =
      EvaluateQuery(*ParseQuery(schema, "Q(x, y) :- R(x, y), S(y)"),
                    instance);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], (Tuple{Value::Int(1), Value::Int(2)}));

  // Constant selection.
  auto with_const =
      EvaluateQuery(*ParseQuery(schema, "Q(y) :- R(2, y)"), instance);
  ASSERT_EQ(with_const.size(), 1u);
  EXPECT_EQ(with_const[0][0], Value::Int(3));
}

TEST(QueryEvalTest, BooleanQueries) {
  Schema schema = TwoRelationSchema();
  Instance instance(&schema);
  auto q = *ParseQuery(schema, "Q() :- S(x)");
  EXPECT_TRUE(EvaluateQuery(q, instance).empty());
  instance.AddFact(1, Tuple{Value::Int(5)});
  auto result = EvaluateQuery(q, instance);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result[0].empty());
}

TEST(QueryEvalTest, AnswersAreDistinct) {
  Schema schema = TwoRelationSchema();
  Instance instance(&schema);
  instance.AddFact(0, Tuple{Value::Int(1), Value::Int(2)});
  instance.AddFact(0, Tuple{Value::Int(1), Value::Int(3)});
  auto result =
      EvaluateQuery(*ParseQuery(schema, "Q(x) :- R(x, y)"), instance);
  EXPECT_EQ(result.size(), 1u);
}

TEST(ConstraintCheckTest, DetectsViolationAndSatisfaction) {
  Schema schema = TwoRelationSchema();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "R(x, y) -> S(y)")).ok());
  Instance instance(&schema);
  instance.AddFact(0, Tuple{Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(SatisfiesConstraints(instance));
  EXPECT_EQ(ViolatedConstraints(instance).size(), 1u);
  instance.AddFact(1, Tuple{Value::Int(2)});
  EXPECT_TRUE(SatisfiesConstraints(instance));
}

TEST(ConstraintCheckTest, ExistentialHeadWitness) {
  Schema schema;
  schema.AddRelation("R", 1).value();
  schema.AddRelation("S", 2).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "R(x) -> S(x, y)")).ok());
  Instance instance(&schema);
  instance.AddFact(0, Tuple{Value::Int(1)});
  instance.AddFact(1, Tuple{Value::Int(1), Value::Int(99)});
  EXPECT_TRUE(SatisfiesConstraints(instance));
  instance.AddFact(0, Tuple{Value::Int(2)});
  EXPECT_FALSE(SatisfiesConstraints(instance));
}

TEST(GeneratorTest, RepairMakesConstraintsHold) {
  Schema schema;
  schema.AddRelation("A", 2).value();
  schema.AddRelation("B", 2).value();
  schema.AddRelation("C", 1).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "A(x, y) -> B(y, z)")).ok());
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "B(x, y) -> C(x)")).ok());
  GeneratorOptions options;
  options.facts_per_relation = 15;
  options.domain_size = 10;
  options.seed = 7;
  auto instance = GenerateInstance(schema, options);
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_TRUE(SatisfiesConstraints(*instance));
  // 15 random facts per relation minus duplicates, plus repair facts.
  EXPECT_GE(instance->TotalFacts(), 30u);
}

TEST(GeneratorTest, DeterministicWithSeed) {
  Schema schema = TwoRelationSchema();
  GeneratorOptions options;
  options.seed = 99;
  auto a = GenerateInstance(schema, options);
  auto b = GenerateInstance(schema, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->relation(0).tuples(), b->relation(0).tuples());
}

TEST(GeneratorTest, NonTerminatingRepairHitsCap) {
  // R(x, y) -> R(y, z) chases forever from any seed fact.
  Schema schema;
  schema.AddRelation("R", 2).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "R(x, y) -> R(y, z)")).ok());
  GeneratorOptions options;
  options.facts_per_relation = 1;
  options.domain_size = 1000000;  // Make an R(v, v) self-loop implausible.
  options.max_repair_facts = 50;
  auto instance = GenerateInstance(schema, options);
  EXPECT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace lcp
