// Tests for the shared execution budget: Clock/VirtualClock, Budget caps and
// deadlines, cooperative cancellation in the chase, and the anytime contract
// of ProofSearch (deadline or node-cap exhaustion returns the best plan found
// so far instead of an error).

#include "lcp/base/budget.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "lcp/base/clock.h"
#include "lcp/chase/engine.h"
#include "lcp/planner/proof_search.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

TEST(VirtualClockTest, AdvanceSleepAndAutoAdvance) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SleepMicros(25);
  EXPECT_EQ(clock.NowMicros(), 175);
  clock.set_auto_advance(10);
  EXPECT_EQ(clock.NowMicros(), 175);  // reads the value, then advances
  EXPECT_EQ(clock.NowMicros(), 185);
}

TEST(SharedVirtualClockTest, ThreadSafeAdvanceAndSleep) {
  SharedVirtualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  clock.SleepMicros(25);  // a sleep just advances virtual time
  EXPECT_EQ(clock.NowMicros(), 175);
  clock.SleepMicros(-5);  // non-positive waits are no-ops
  clock.Advance(-5);
  EXPECT_EQ(clock.NowMicros(), 175);
  // Advances from other threads are visible (the multi-worker chaos shape).
  std::thread advancer([&clock] { clock.Advance(25); });
  advancer.join();
  EXPECT_EQ(clock.NowMicros(), 200);
}

TEST(SystemClockTest, MonotoneAndSingleton) {
  Clock* clock = SystemClock::Instance();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
  EXPECT_EQ(clock, SystemClock::Instance());
}

TEST(BudgetTest, UnlimitedBudgetAlwaysPasses) {
  Budget budget;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(budget.ChargeNode().ok());
    EXPECT_TRUE(budget.ChargeFiring().ok());
    EXPECT_TRUE(budget.Check().ok());
  }
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.stats().nodes_charged, 100);
  EXPECT_EQ(budget.stats().firings_charged, 100);
  // No deadline armed: Check never consults a clock.
  EXPECT_EQ(budget.stats().deadline_checks, 0);
}

TEST(BudgetTest, NodeCapLatchesResourceExhausted) {
  Budget budget;
  budget.set_node_cap(3);
  EXPECT_TRUE(budget.ChargeNode().ok());
  EXPECT_TRUE(budget.ChargeNode().ok());
  EXPECT_TRUE(budget.ChargeNode().ok());
  Status s = budget.ChargeNode();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_TRUE(budget.stats().node_cap_hit);
  // Latched: even a plain Check now fails with the same status.
  EXPECT_EQ(budget.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.Check().message(), s.message());
}

TEST(BudgetTest, FiringCapIsIndependentOfNodeCap) {
  Budget budget;
  budget.set_firing_cap(2);
  EXPECT_TRUE(budget.ChargeNode().ok());
  EXPECT_TRUE(budget.ChargeFiring().ok());
  EXPECT_TRUE(budget.ChargeFiring().ok());
  EXPECT_EQ(budget.ChargeFiring().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(budget.stats().firing_cap_hit);
  EXPECT_FALSE(budget.stats().node_cap_hit);
}

TEST(BudgetTest, DeadlineOnVirtualClock) {
  VirtualClock clock;
  Budget budget;
  budget.SetDeadline(&clock, 1000);
  EXPECT_TRUE(budget.Check().ok());
  clock.Advance(999);
  EXPECT_TRUE(budget.Check().ok());
  clock.Advance(1);
  EXPECT_EQ(budget.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(budget.stats().deadline_hit);
  EXPECT_GE(budget.stats().deadline_checks, 3);
  // Latched: later checks do not re-read the clock.
  long long checks = budget.stats().deadline_checks;
  EXPECT_EQ(budget.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(budget.stats().deadline_checks, checks);
}

TEST(BudgetTest, NegativeDeadlineMeansAlreadyExpired) {
  VirtualClock clock;  // starts at 0
  Budget budget;
  budget.SetDeadline(&clock, -1);
  EXPECT_EQ(budget.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(BudgetTest, CancelLatchesCallerStatus) {
  Budget budget;
  budget.Cancel(UnavailableError("caller gave up"));
  EXPECT_TRUE(budget.exhausted());
  EXPECT_TRUE(budget.stats().cancelled);
  EXPECT_EQ(budget.Check().code(), StatusCode::kUnavailable);
  // First latch wins: a later cancel does not overwrite it.
  budget.Cancel(DeadlineExceededError("too late"));
  EXPECT_EQ(budget.Check().code(), StatusCode::kUnavailable);
}

TEST(CancelTokenTest, FirstCancelWinsAndLatches) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();  // defaults to kCancelled
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.code(), StatusCode::kCancelled);
  token.Cancel(StatusCode::kUnavailable);  // too late: first trip sticks
  EXPECT_EQ(token.code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, TrippedTokenExhaustsTheBudget) {
  CancelToken token;
  Budget budget;
  budget.set_cancel_token(&token);
  EXPECT_TRUE(budget.Check().ok()) << "untripped token never fires";

  token.Cancel(StatusCode::kUnavailable);
  EXPECT_EQ(budget.Check().code(), StatusCode::kUnavailable)
      << "the budget reports the token's code";
  EXPECT_TRUE(budget.exhausted());
  EXPECT_TRUE(budget.stats().cancelled);
}

TEST(CancelTokenTest, CrossThreadCancelStopsAPolledBudget) {
  // The service's in-flight cancellation shape: one thread polls the budget
  // (as proof search and the chase do), another trips the shared token.
  CancelToken token;
  Budget budget;
  budget.set_cancel_token(&token);
  std::thread canceller([&token] { token.Cancel(); });
  Status last = Status::Ok();
  while (last.ok()) last = budget.Check();
  canceller.join();
  EXPECT_EQ(last.code(), StatusCode::kCancelled);
  EXPECT_EQ(budget.Check().code(), StatusCode::kCancelled) << "latched";
}

TEST(ChaseBudgetTest, ExpiredDeadlineStopsTheChase) {
  Schema schema;
  schema.AddRelation("R", 2).value();
  ASSERT_TRUE(
      schema.AddConstraint(*ParseTgd(schema, "R(x, y) -> R(y, z)")).ok());
  auto query = ParseQuery(schema, "Q() :- R(a, b)");
  TermArena arena;
  ChaseEngine engine(&schema, &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(*query, arena);

  VirtualClock clock;
  Budget budget;
  budget.SetDeadline(&clock, 0);  // expires immediately
  ChaseOptions options;
  options.budget = &budget;
  auto stats = engine.Run(schema.constraints(), options, canonical.config);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  // The chase stopped before firing anything: only the canonical database's
  // two query-variable nulls exist, no invented existential witnesses.
  EXPECT_EQ(arena.num_nulls(), 2u);
}

TEST(ChaseBudgetTest, FiringCapStopsTheChaseWithSoundPrefix) {
  Schema schema;
  schema.AddRelation("A", 1).value();
  schema.AddRelation("B", 1).value();
  schema.AddRelation("C", 1).value();
  schema.AddRelation("D", 1).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "A(x) -> B(x)")).ok());
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "B(x) -> C(x)")).ok());
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "C(x) -> D(x)")).ok());
  auto query = ParseQuery(schema, "Q() :- A(u)");
  TermArena arena;
  ChaseEngine engine(&schema, &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(*query, arena);

  Budget budget;
  budget.set_firing_cap(2);
  ChaseOptions options;
  options.budget = &budget;
  auto stats = engine.Run(schema.constraints(), options, canonical.config);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.stats().firings_charged, 3);  // third charge tripped
  // The facts derived before exhaustion are still present and sound:
  // A(u) plus at most the two fired heads.
  EXPECT_GE(canonical.config.size(), 2u);
  EXPECT_LE(canonical.config.size(), 3u);
}

TEST(AnytimeSearchTest, NodeCapReturnsBestSoFar) {
  auto scenario = MakeMultiSourceScenario(4);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto accessible =
      AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();
  SimpleCostFunction cost(scenario->schema.get());
  ProofSearch search(&*accessible, &cost);

  // Unbudgeted baseline: full exploration.
  SearchOptions base_options;
  base_options.max_access_commands = 3;
  auto full = search.Run(scenario->query, base_options);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(full->best.has_value());
  EXPECT_TRUE(full->exhaustion.ok());
  const int full_nodes = full->stats.nodes_created;
  ASSERT_GT(full_nodes, 2);

  // Scan node caps upward: every capped run must be a sound prefix (never an
  // error, never a worse-than-baseline claim of optimality), and at least one
  // cap must land in the anytime regime — budget exhausted with a usable
  // best-so-far plan.
  bool saw_anytime_with_plan = false;
  for (int cap = 1; cap < full_nodes; ++cap) {
    Budget budget;
    budget.set_node_cap(cap);
    SearchOptions options;
    options.max_access_commands = 3;
    options.budget = &budget;
    auto outcome = search.Run(scenario->query, options);
    ASSERT_TRUE(outcome.ok()) << "cap " << cap << ": " << outcome.status();
    if (!outcome->exhaustion.ok()) {
      EXPECT_EQ(outcome->exhaustion.code(), StatusCode::kResourceExhausted)
          << "cap " << cap;
      if (outcome->best.has_value()) {
        saw_anytime_with_plan = true;
        // Best-so-far can never beat the true optimum.
        EXPECT_GE(outcome->best->cost, full->best->cost) << "cap " << cap;
      }
    } else {
      // Budget never tripped: the outcome must match the full search.
      ASSERT_TRUE(outcome->best.has_value());
      EXPECT_DOUBLE_EQ(outcome->best->cost, full->best->cost);
    }
  }
  EXPECT_TRUE(saw_anytime_with_plan)
      << "no node cap produced a budget-exhausted outcome carrying a plan";
}

TEST(AnytimeSearchTest, DeadlineReturnsBestSoFarOnVirtualTime) {
  auto scenario = MakeMultiSourceScenario(4);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto accessible =
      AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();
  SimpleCostFunction cost(scenario->schema.get());
  ProofSearch search(&*accessible, &cost);

  SearchOptions base_options;
  base_options.max_access_commands = 3;
  auto full = search.Run(scenario->query, base_options);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(full->best.has_value());

  // Virtual time advances by 1µs per deadline check, so the deadline value
  // directly selects how many budget checks the search survives. First run
  // with an effectively infinite deadline to learn the total check count N,
  // then sweep ~256 evenly spaced deadlines across [1, N] — every run is
  // deterministic, so the sweep exercises the whole anytime spectrum.
  int64_t total_checks = 0;
  {
    VirtualClock clock;
    clock.set_auto_advance(1);
    Budget budget;
    budget.SetDeadline(&clock, int64_t{1} << 40);
    SearchOptions options;
    options.max_access_commands = 3;
    options.budget = &budget;
    auto outcome = search.Run(scenario->query, options);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_TRUE(outcome->exhaustion.ok());
    ASSERT_TRUE(outcome->best.has_value());
    EXPECT_DOUBLE_EQ(outcome->best->cost, full->best->cost);
    total_checks = budget.stats().deadline_checks;
    ASSERT_GT(total_checks, 2);
  }

  bool saw_deadline_with_plan = false;
  bool saw_completion = false;
  const int64_t step = std::max<int64_t>(1, total_checks / 256);
  for (int64_t deadline = 1; deadline <= total_checks + step;
       deadline += step) {
    VirtualClock clock;
    clock.set_auto_advance(1);
    Budget budget;
    budget.SetDeadline(&clock, deadline);
    SearchOptions options;
    options.max_access_commands = 3;
    options.budget = &budget;
    auto outcome = search.Run(scenario->query, options);
    ASSERT_TRUE(outcome.ok()) << "deadline " << deadline << ": "
                              << outcome.status();
    if (!outcome->exhaustion.ok()) {
      EXPECT_EQ(outcome->exhaustion.code(), StatusCode::kDeadlineExceeded)
          << "deadline " << deadline;
      EXPECT_TRUE(budget.stats().deadline_hit);
      if (outcome->best.has_value()) {
        saw_deadline_with_plan = true;
        EXPECT_GE(outcome->best->cost, full->best->cost);
      }
    } else {
      saw_completion = true;
      ASSERT_TRUE(outcome->best.has_value());
      EXPECT_DOUBLE_EQ(outcome->best->cost, full->best->cost);
    }
  }
  EXPECT_TRUE(saw_deadline_with_plan)
      << "no deadline produced a budget-exhausted outcome carrying a plan";
  EXPECT_TRUE(saw_completion)
      << "search never ran to completion within the deadline sweep";
}

TEST(AnytimeSearchTest, SharedBudgetCountsChaseFirings) {
  auto scenario = MakeProfinfoScenario(/*boolean_query=*/true);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto accessible =
      AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();
  SimpleCostFunction cost(scenario->schema.get());
  ProofSearch search(&*accessible, &cost);

  Budget budget;  // unlimited, just accounting
  SearchOptions options;
  options.max_access_commands = 3;
  options.budget = &budget;
  auto outcome = search.Run(scenario->query, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->best.has_value());
  EXPECT_TRUE(outcome->exhaustion.ok());
  // One budget pool observed the whole episode: search nodes and the
  // firings of every chase closure the search ran.
  EXPECT_EQ(budget.stats().nodes_charged, outcome->stats.nodes_created);
  EXPECT_GT(budget.stats().firings_charged, 0);
}

TEST(BudgetConcurrencyTest, ConcurrentChargesAllCounted) {
  // Budget is shared by every worker of a parallel proof search; charges
  // from concurrent threads must not be lost.
  Budget budget;
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget] {
      for (int i = 0; i < kChargesPerThread; ++i) {
        ASSERT_TRUE(budget.ChargeNode().ok());
        ASSERT_TRUE(budget.ChargeFiring().ok());
        ASSERT_TRUE(budget.Check().ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(budget.stats().nodes_charged, kThreads * kChargesPerThread);
  EXPECT_EQ(budget.stats().firings_charged, kThreads * kChargesPerThread);
}

TEST(BudgetConcurrencyTest, FirstLatchWinsUnderContention) {
  // Concurrent cancellations racing a cap trip: exactly one status latches,
  // and every later check reports that same status.
  Budget budget;
  budget.set_node_cap(50);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget, t] {
      if (t == 0) {
        budget.Cancel(CancelledError("racing cancel"));
      } else {
        for (int i = 0; i < 100; ++i) (void)budget.ChargeNode();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(budget.exhausted());
  Status latched = budget.exhaustion();
  EXPECT_TRUE(latched.code() == StatusCode::kCancelled ||
              latched.code() == StatusCode::kResourceExhausted)
      << latched;
  // Stable: later checks return the identical latched status.
  EXPECT_EQ(budget.Check().code(), latched.code());
  EXPECT_EQ(budget.ChargeNode().code(), latched.code());
  EXPECT_EQ(budget.exhaustion().code(), latched.code());
  EXPECT_TRUE(budget.stats().cancelled);
}

TEST(BudgetConcurrencyTest, CancelTokenTripsConcurrentChargers) {
  CancelToken token;
  Budget budget;
  budget.set_cancel_token(&token);
  std::atomic<bool> done{false};
  std::thread charger([&budget, &done] {
    while (budget.ChargeNode().ok()) {
    }
    done.store(true);
  });
  token.Cancel(StatusCode::kUnavailable);
  charger.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(budget.exhaustion().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace lcp
