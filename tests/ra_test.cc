#include "lcp/ra/eval.h"

#include <gtest/gtest.h>

#include "lcp/ra/expr.h"
#include "lcp/ra/table.h"

namespace lcp {
namespace {

Table MakeTable(std::vector<std::string> attrs,
                std::vector<std::vector<int64_t>> rows) {
  Table table(std::move(attrs));
  for (const auto& row : rows) {
    Tuple tuple;
    for (int64_t v : row) tuple.push_back(Value::Int(v));
    table.Insert(std::move(tuple));
  }
  return table;
}

TEST(TableTest, InsertDedupAndAttrIndex) {
  Table t = MakeTable({"a", "b"}, {{1, 2}, {1, 2}, {3, 4}});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.AttrIndex("b"), 1);
  EXPECT_EQ(t.AttrIndex("z"), -1);
  EXPECT_TRUE(t.ContainsRow({Value::Int(3), Value::Int(4)}));
}

TEST(RaEvalTest, TempScanAndMissingTable) {
  TableEnv env;
  env["t"] = MakeTable({"a"}, {{1}});
  auto ok = EvaluateRa(*RaExpr::TempScan("t"), env);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 1u);
  EXPECT_FALSE(EvaluateRa(*RaExpr::TempScan("missing"), env).ok());
}

TEST(RaEvalTest, SingletonIsNullaryWithOneRow) {
  TableEnv env;
  auto result = EvaluateRa(*RaExpr::Singleton(), env);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->attrs().empty());
  EXPECT_EQ(result->size(), 1u);
}

TEST(RaEvalTest, ProjectReordersAndDeduplicates) {
  TableEnv env;
  env["t"] = MakeTable({"a", "b"}, {{1, 7}, {2, 7}});
  auto result =
      EvaluateRa(*RaExpr::Project(RaExpr::TempScan("t"), {"b"}), env);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);  // both rows project to (7)
  EXPECT_EQ(result->attrs(), (std::vector<std::string>{"b"}));

  EXPECT_FALSE(
      EvaluateRa(*RaExpr::Project(RaExpr::TempScan("t"), {"zz"}), env).ok());
}

TEST(RaEvalTest, ProjectToNullary) {
  TableEnv env;
  env["t"] = MakeTable({"a"}, {{1}, {2}});
  auto result = EvaluateRa(*RaExpr::Project(RaExpr::TempScan("t"), {}), env);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);  // non-empty input -> one empty row
}

TEST(RaEvalTest, SelectAttrEqAttrAndConst) {
  TableEnv env;
  env["t"] = MakeTable({"a", "b"}, {{1, 1}, {1, 2}, {3, 3}});
  auto eq = EvaluateRa(
      *RaExpr::Select(RaExpr::TempScan("t"),
                      {RaExpr::Condition::AttrEqAttr("a", "b")}),
      env);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->size(), 2u);

  auto constant = EvaluateRa(
      *RaExpr::Select(RaExpr::TempScan("t"),
                      {RaExpr::Condition::AttrEqConst("a", Value::Int(1))}),
      env);
  ASSERT_TRUE(constant.ok());
  EXPECT_EQ(constant->size(), 2u);

  auto both = EvaluateRa(
      *RaExpr::Select(RaExpr::TempScan("t"),
                      {RaExpr::Condition::AttrEqAttr("a", "b"),
                       RaExpr::Condition::AttrEqConst("a", Value::Int(3))}),
      env);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->size(), 1u);
}

TEST(RaEvalTest, NaturalJoinOnSharedAttrs) {
  TableEnv env;
  env["l"] = MakeTable({"a", "b"}, {{1, 2}, {3, 4}});
  env["r"] = MakeTable({"b", "c"}, {{2, 10}, {2, 11}, {5, 12}});
  auto result = EvaluateRa(
      *RaExpr::Join(RaExpr::TempScan("l"), RaExpr::TempScan("r")), env);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->attrs(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(result->size(), 2u);
}

TEST(RaEvalTest, JoinWithoutSharedAttrsIsCrossProduct) {
  TableEnv env;
  env["l"] = MakeTable({"a"}, {{1}, {2}});
  env["r"] = MakeTable({"b"}, {{8}, {9}});
  auto result = EvaluateRa(
      *RaExpr::Join(RaExpr::TempScan("l"), RaExpr::TempScan("r")), env);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);
}

TEST(RaEvalTest, JoinWithNullaryActsAsGate) {
  TableEnv env;
  env["data"] = MakeTable({"a"}, {{1}, {2}});
  env["open"] = MakeTable({}, {});
  env["open"].Insert(Tuple{});
  env["closed"] = MakeTable({}, {});
  auto open = EvaluateRa(
      *RaExpr::Join(RaExpr::TempScan("data"), RaExpr::TempScan("open")), env);
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->size(), 2u);
  auto closed = EvaluateRa(
      *RaExpr::Join(RaExpr::TempScan("data"), RaExpr::TempScan("closed")),
      env);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed->empty());
}

TEST(RaEvalTest, UnionAlignsByName) {
  TableEnv env;
  env["l"] = MakeTable({"a", "b"}, {{1, 2}});
  env["r"] = MakeTable({"b", "a"}, {{2, 1}, {9, 8}});
  auto result = EvaluateRa(
      *RaExpr::Union(RaExpr::TempScan("l"), RaExpr::TempScan("r")), env);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);  // (1,2) deduplicated across operands
  EXPECT_TRUE(result->ContainsRow({Value::Int(8), Value::Int(9)}));
}

TEST(RaEvalTest, UnionRejectsMismatchedAttrs) {
  TableEnv env;
  env["l"] = MakeTable({"a"}, {{1}});
  env["r"] = MakeTable({"b"}, {{1}});
  EXPECT_FALSE(
      EvaluateRa(*RaExpr::Union(RaExpr::TempScan("l"), RaExpr::TempScan("r")),
                 env)
          .ok());
}

TEST(RaEvalTest, DifferenceAlignsByName) {
  TableEnv env;
  env["l"] = MakeTable({"a", "b"}, {{1, 2}, {3, 4}});
  env["r"] = MakeTable({"b", "a"}, {{2, 1}});
  auto result = EvaluateRa(
      *RaExpr::Difference(RaExpr::TempScan("l"), RaExpr::TempScan("r")), env);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->ContainsRow({Value::Int(3), Value::Int(4)}));
}

TEST(RaEvalTest, RenameChangesAttrs) {
  TableEnv env;
  env["t"] = MakeTable({"a", "b"}, {{1, 2}});
  auto result = EvaluateRa(
      *RaExpr::Rename(RaExpr::TempScan("t"), {{"a", "x"}}), env);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->attrs(), (std::vector<std::string>{"x", "b"}));
  EXPECT_FALSE(
      EvaluateRa(*RaExpr::Rename(RaExpr::TempScan("t"), {{"zz", "x"}}), env)
          .ok());
}

TEST(RaExprTest, UsesAndReferencedTables) {
  RaExprPtr expr = RaExpr::Union(
      RaExpr::Project(RaExpr::TempScan("t1"), {"a"}),
      RaExpr::Join(RaExpr::TempScan("t2"), RaExpr::TempScan("t3")));
  EXPECT_TRUE(expr->Uses(RaExpr::Op::kUnion));
  EXPECT_TRUE(expr->Uses(RaExpr::Op::kJoin));
  EXPECT_FALSE(expr->Uses(RaExpr::Op::kDifference));
  EXPECT_EQ(expr->ReferencedTables(),
            (std::vector<std::string>{"t1", "t2", "t3"}));
}

TEST(RaExprTest, ToStringSmoke) {
  RaExprPtr expr = RaExpr::Select(
      RaExpr::TempScan("t"),
      {RaExpr::Condition::AttrEqConst("a", Value::Str("smith"))});
  EXPECT_EQ(expr->ToString(), "select[a=\"smith\"](scan(t))");
}

}  // namespace
}  // namespace lcp
