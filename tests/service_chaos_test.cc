// Deterministic chaos harness for the QueryService request lifecycle.
//
// Each iteration derives a full scenario from one seed: pool size, admission
// bounds and shed policy, fault profile (transient failures, simulated
// latency, truncation, permanent outages), workload mix (queries, deadlines,
// plan-only and skip-cache requests), and a driver schedule of overload
// bursts, random cancellations, epoch bumps, and virtual-clock advances,
// finished by a randomly chosen drain or abort shutdown. Simulated time runs
// on a SharedVirtualClock, so fault latency and backoff waits are instant in
// real time but visible to deadlines.
//
// The invariants checked are scheduling-independent:
//   * every submitted future resolves exactly once with a definite status
//     (in particular, never the kInternal dropped-promise backstop);
//   * submitted == completed + rejected + shed + cancelled;
//   * Shutdown() returning implies nothing is left unresolved (no deadlock,
//     no worker still holding a job).
//
// LCP_CHAOS_ITERS scales the number of seeds (default 25; CI's nightly
// sanitizer jobs run 200). LCP_CHAOS_SEED offsets the seed base so distinct
// nightly runs explore distinct schedules.

#include "lcp/service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/generator.h"
#include "lcp/runtime/faults.h"
#include "lcp/runtime/source.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// Owns a SimulatedSource plus the fault wrapper around it, so a worker's
/// source can be handed out as one object from the factory.
class ChaosSource : public AccessSource {
 public:
  ChaosSource(const Schema* schema, const Instance* instance,
              FaultProfile profile, uint64_t seed, Clock* clock)
      : base_(schema, instance),
        faulty_(&base_, std::move(profile), seed, clock) {}

  Result<AccessOutcome> TryAccess(AccessMethodId method,
                                  const Tuple& inputs) override {
    return faulty_.TryAccess(method, inputs);
  }
  const Schema& schema() const override { return faulty_.schema(); }

 private:
  SimulatedSource base_;
  FaultInjectingSource faulty_;
};

/// Shared read-only world: schema, accessible schema, cost function,
/// instance, and the query mix. Built once; every iteration's service reads
/// from it concurrently but never mutates it.
struct ChaosWorld {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<AccessibleSchema> accessible;
  std::unique_ptr<SimpleCostFunction> cost;
  std::unique_ptr<Instance> instance;
  std::vector<ConjunctiveQuery> queries;
};

ChaosWorld MakeWorld() {
  auto scenario = MakeProfinfoScenario(false);
  EXPECT_TRUE(scenario.ok()) << scenario.status();
  ChaosWorld world;
  world.schema = std::move(scenario->schema);
  world.queries.push_back(std::move(scenario->query));
  auto accessible =
      AccessibleSchema::Build(*world.schema, AccessibleVariant::kStandard);
  EXPECT_TRUE(accessible.ok()) << accessible.status();
  world.accessible =
      std::make_unique<AccessibleSchema>(std::move(accessible).value());
  world.cost = std::make_unique<SimpleCostFunction>(world.schema.get());
  GeneratorOptions gen;
  gen.seed = 7;
  gen.facts_per_relation = 12;
  gen.domain_size = 15;
  auto instance = GenerateInstance(*world.schema, gen);
  EXPECT_TRUE(instance.ok()) << instance.status();
  world.instance = std::make_unique<Instance>(std::move(instance).value());
  for (const char* text :
       {"Q(p) :- Profinfo(p, r, \"smith\")", "Q(e, l) :- Udirect(e, l)",
        "Q(l) :- Udirect(e, l)", "Q() :- Profinfo(eid, onum, lname)"}) {
    auto query = ParseQuery(*world.schema, text);
    EXPECT_TRUE(query.ok()) << text << ": " << query.status();
    if (query.ok()) world.queries.push_back(std::move(query).value());
  }
  return world;
}

/// One seeded scenario end to end. Returns the number of requests submitted,
/// so the caller can report coverage.
size_t RunScenario(const ChaosWorld& world, uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&rng](int bound) {
    return static_cast<int>(rng() % static_cast<uint64_t>(bound));
  };
  auto unit = [&rng] {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  };

  SharedVirtualClock clock;

  // --- scenario shape, all derived from the seed --------------------------
  FaultProfile profile;
  profile.defaults.transient_failure_rate = 0.2 * pick(3);  // 0, .2, .4
  if (pick(2) == 0) {
    profile.defaults.latency_base_micros = 50 + pick(200);
    profile.defaults.latency_jitter_micros = pick(100);
  }
  profile.defaults.truncation_rate = pick(4) == 0 ? 0.15 : 0.0;
  if (pick(4) == 0) {
    // A hard outage of one method: plans touching it keep failing after
    // retries; circuit breakers (when enabled below) short-circuit it.
    profile.permanent_outages.insert(static_cast<AccessMethodId>(
        pick(static_cast<int>(world.schema->num_access_methods()))));
  }

  ServiceOptions options;
  options.num_workers = 1 + pick(4);
  options.max_queue_depth = static_cast<size_t>(
      pick(3) == 0 ? 0 : 2 + pick(7));  // unbounded / 2..8
  options.shed_policy =
      pick(2) == 0 ? ShedPolicy::kRejectNew : ShedPolicy::kDropOldest;
  options.cache.num_shards = 1 + pick(4);
  options.cache_enabled = pick(8) != 0;
  options.clock = &clock;
  options.execution.retry.max_attempts = 1 + pick(3);
  options.execution.retry.breaker_threshold = pick(2) == 0 ? 0 : 3;
  options.execution.retry.best_effort = pick(2) == 0;
  options.execution.retry.jitter_fraction = 0.5;
  options.execution.retry.jitter_seed = rng();
  if (pick(3) == 0) options.planning_budget_micros = 1000 + pick(50000);

  const Schema* schema = world.schema.get();
  const Instance* instance = world.instance.get();
  std::atomic<uint64_t> source_seed{seed * 977u + 1};
  auto factory = [schema, instance, profile, &source_seed, &clock] {
    return std::make_unique<ChaosSource>(
        schema, instance, profile,
        source_seed.fetch_add(1, std::memory_order_relaxed), &clock);
  };

  QueryService service(world.accessible.get(), world.cost.get(), factory,
                       options);

  // --- driver: bursts, cancels, bumps, clock advances ---------------------
  std::vector<SubmitHandle> handles;
  const int bursts = 3 + pick(4);
  for (int burst = 0; burst < bursts; ++burst) {
    const int size = 1 + pick(12);
    for (int i = 0; i < size; ++i) {
      QueryRequest request;
      request.query = world.queries[static_cast<size_t>(pick(
          static_cast<int>(world.queries.size())))];
      request.execute = unit() < 0.7;
      request.skip_cache = unit() < 0.15;
      if (unit() < 0.5) request.deadline_micros = 500 + pick(50000);
      handles.push_back(service.Submit(std::move(request)));
    }
    // Interleave chaos between bursts.
    const int actions = pick(4);
    for (int a = 0; a < actions; ++a) {
      switch (pick(4)) {
        case 0:
          clock.Advance(pick(20000));
          break;
        case 1:
          if (!handles.empty()) {
            service.Cancel(
                handles[static_cast<size_t>(pick(
                            static_cast<int>(handles.size())))]
                    .ticket);
          }
          break;
        case 2:
          service.BumpEpoch();
          break;
        default:
          (void)service.QueueDepth();
          (void)service.SnapshotStats();
          break;
      }
    }
    // A sliver of real time so workers make progress between bursts; the
    // invariants below never depend on how much they got.
    if (pick(2) == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  const bool abort = pick(3) == 0;
  service.Shutdown(abort ? ShutdownMode::kAbort : ShutdownMode::kDrain);

  // A post-shutdown submit must fast-fail and still be accounted for.
  QueryRequest late;
  late.query = world.queries[0];
  late.execute = false;
  handles.push_back(service.Submit(std::move(late)));

  // --- invariants ---------------------------------------------------------
  for (SubmitHandle& handle : handles) {
    if (handle.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ADD_FAILURE() << "seed " << seed
                    << ": a future is unresolved after Shutdown";
      continue;  // .get() would block forever; skip it
    }
    const QueryResponse response = handle.future.get();
    const StatusCode code = response.status.code();
    EXPECT_NE(code, StatusCode::kInternal)
        << "seed " << seed
        << ": dropped-promise backstop fired: " << response.status;
    const bool definite =
        code == StatusCode::kOk || code == StatusCode::kNotFound ||
        code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kCancelled ||
        code == StatusCode::kResourceExhausted ||
        code == StatusCode::kUnavailable ||
        code == StatusCode::kFailedPrecondition;
    EXPECT_TRUE(definite) << "seed " << seed << ": unexpected terminal status "
                          << response.status;
  }

  const ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.submitted, handles.size()) << "seed " << seed;
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.rejected + stats.shed + stats.cancelled)
      << "seed " << seed << ": lifecycle conservation violated";
  if (options.max_queue_depth > 0) {
    EXPECT_LE(stats.queue_depth_high_water, options.max_queue_depth)
        << "seed " << seed << ": admission bound was not enforced";
  }
  return handles.size();
}

TEST(ServiceChaosTest, SeededLifecycleScenariosHoldInvariants) {
  const ChaosWorld world = MakeWorld();
  const int iters = EnvInt("LCP_CHAOS_ITERS", 25);
  const uint64_t base = static_cast<uint64_t>(EnvInt("LCP_CHAOS_SEED", 1));
  size_t total = 0;
  for (int i = 0; i < iters; ++i) {
    total += RunScenario(world, base + static_cast<uint64_t>(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Sanity: the harness exercised a non-trivial number of requests.
  EXPECT_GT(total, static_cast<size_t>(iters));
}

}  // namespace
}  // namespace lcp
