// Deterministic chaos harness for the QueryService request lifecycle.
//
// Each iteration derives a full scenario from one seed: pool size, admission
// bounds and shed policy, fault profile (transient failures, simulated
// latency, truncation, permanent outages), workload mix (queries, deadlines,
// plan-only and skip-cache requests), and a driver schedule of overload
// bursts, random cancellations, epoch bumps, and virtual-clock advances,
// finished by a randomly chosen drain or abort shutdown. Simulated time runs
// on a SharedVirtualClock, so fault latency and backoff waits are instant in
// real time but visible to deadlines.
//
// The invariants checked are scheduling-independent:
//   * every submitted future resolves exactly once with a definite status
//     (in particular, never the kInternal dropped-promise backstop);
//   * submitted == completed + rejected + shed + cancelled;
//   * Shutdown() returning implies nothing is left unresolved (no deadlock,
//     no worker still holding a job).
//
// LCP_CHAOS_ITERS scales the number of seeds (default 25; CI's nightly
// sanitizer jobs run 200). LCP_CHAOS_SEED offsets the seed base so distinct
// nightly runs explore distinct schedules.

#include "lcp/service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/generator.h"
#include "lcp/runtime/faults.h"
#include "lcp/runtime/source.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// One entry of a deterministic outage schedule: `method` goes dark at
/// `fail_at` on the virtual clock and (when `recover_at` >= 0) heals at
/// `recover_at`. Applied to every source a factory builds, so all workers
/// observe the same world.
struct OutageEvent {
  AccessMethodId method = kInvalidAccessMethod;
  int64_t fail_at = 0;
  int64_t recover_at = -1;
};

/// Owns a SimulatedSource plus the fault wrapper around it, so a worker's
/// source can be handed out as one object from the factory.
class ChaosSource : public AccessSource {
 public:
  ChaosSource(const Schema* schema, const Instance* instance,
              FaultProfile profile, uint64_t seed, Clock* clock,
              const std::vector<OutageEvent>& outages = {})
      : base_(schema, instance),
        faulty_(&base_, std::move(profile), seed, clock) {
    for (const OutageEvent& outage : outages) {
      faulty_.FailFrom(outage.method, outage.fail_at);
      if (outage.recover_at >= 0) {
        faulty_.RecoverAt(outage.method, outage.recover_at);
      }
    }
  }

  Result<AccessOutcome> TryAccess(AccessMethodId method,
                                  const Tuple& inputs) override {
    return faulty_.TryAccess(method, inputs);
  }
  const Schema& schema() const override { return faulty_.schema(); }

 private:
  SimulatedSource base_;
  FaultInjectingSource faulty_;
};

/// Shared read-only world: schema, accessible schema, cost function,
/// instance, and the query mix. Built once; every iteration's service reads
/// from it concurrently but never mutates it.
struct ChaosWorld {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<AccessibleSchema> accessible;
  std::unique_ptr<SimpleCostFunction> cost;
  std::unique_ptr<Instance> instance;
  std::vector<ConjunctiveQuery> queries;
};

ChaosWorld MakeWorld() {
  auto scenario = MakeProfinfoScenario(false);
  EXPECT_TRUE(scenario.ok()) << scenario.status();
  ChaosWorld world;
  world.schema = std::move(scenario->schema);
  world.queries.push_back(std::move(scenario->query));
  auto accessible =
      AccessibleSchema::Build(*world.schema, AccessibleVariant::kStandard);
  EXPECT_TRUE(accessible.ok()) << accessible.status();
  world.accessible =
      std::make_unique<AccessibleSchema>(std::move(accessible).value());
  world.cost = std::make_unique<SimpleCostFunction>(world.schema.get());
  GeneratorOptions gen;
  gen.seed = 7;
  gen.facts_per_relation = 12;
  gen.domain_size = 15;
  auto instance = GenerateInstance(*world.schema, gen);
  EXPECT_TRUE(instance.ok()) << instance.status();
  world.instance = std::make_unique<Instance>(std::move(instance).value());
  for (const char* text :
       {"Q(p) :- Profinfo(p, r, \"smith\")", "Q(e, l) :- Udirect(e, l)",
        "Q(l) :- Udirect(e, l)", "Q() :- Profinfo(eid, onum, lname)"}) {
    auto query = ParseQuery(*world.schema, text);
    EXPECT_TRUE(query.ok()) << text << ": " << query.status();
    if (query.ok()) world.queries.push_back(std::move(query).value());
  }
  return world;
}

/// One seeded scenario end to end. Returns the number of requests submitted,
/// so the caller can report coverage.
size_t RunScenario(const ChaosWorld& world, uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&rng](int bound) {
    return static_cast<int>(rng() % static_cast<uint64_t>(bound));
  };
  auto unit = [&rng] {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  };

  SharedVirtualClock clock;

  // --- scenario shape, all derived from the seed --------------------------
  FaultProfile profile;
  profile.defaults.transient_failure_rate = 0.2 * pick(3);  // 0, .2, .4
  if (pick(2) == 0) {
    profile.defaults.latency_base_micros = 50 + pick(200);
    profile.defaults.latency_jitter_micros = pick(100);
  }
  profile.defaults.truncation_rate = pick(4) == 0 ? 0.15 : 0.0;
  if (pick(4) == 0) {
    // A hard outage of one method: plans touching it keep failing after
    // retries; circuit breakers (when enabled below) short-circuit it.
    profile.permanent_outages.insert(static_cast<AccessMethodId>(
        pick(static_cast<int>(world.schema->num_access_methods()))));
  }
  // A mid-run scheduled outage (sometimes healing later) exercises the
  // health registry's quarantine -> failover -> probe -> recovery cycle
  // under the full chaos mix.
  std::vector<OutageEvent> outages;
  if (pick(3) == 0) {
    OutageEvent outage;
    outage.method = static_cast<AccessMethodId>(
        pick(static_cast<int>(world.schema->num_access_methods())));
    outage.fail_at = pick(40000);
    if (pick(2) == 0) outage.recover_at = outage.fail_at + 5000 + pick(60000);
    outages.push_back(outage);
  }

  ServiceOptions options;
  options.num_workers = 1 + pick(4);
  options.max_queue_depth = static_cast<size_t>(
      pick(3) == 0 ? 0 : 2 + pick(7));  // unbounded / 2..8
  options.shed_policy =
      pick(2) == 0 ? ShedPolicy::kRejectNew : ShedPolicy::kDropOldest;
  options.cache.num_shards = 1 + pick(4);
  options.cache_enabled = pick(8) != 0;
  options.clock = &clock;
  options.execution.retry.max_attempts = 1 + pick(3);
  options.execution.retry.breaker_threshold = pick(2) == 0 ? 0 : 3;
  options.execution.retry.best_effort = pick(2) == 0;
  options.execution.retry.jitter_fraction = 0.5;
  options.execution.retry.jitter_seed = rng();
  if (pick(3) == 0) options.planning_budget_micros = 1000 + pick(50000);
  options.failover_enabled = pick(4) != 0;
  options.health.quarantine_after_consecutive = 1 + pick(3);
  options.health.quarantine_micros = 1000 + pick(30000);

  const Schema* schema = world.schema.get();
  const Instance* instance = world.instance.get();
  std::atomic<uint64_t> source_seed{seed * 977u + 1};
  auto factory = [schema, instance, profile, outages, &source_seed, &clock] {
    return std::make_unique<ChaosSource>(
        schema, instance, profile,
        source_seed.fetch_add(1, std::memory_order_relaxed), &clock, outages);
  };

  QueryService service(world.accessible.get(), world.cost.get(), factory,
                       options);

  // --- driver: bursts, cancels, bumps, clock advances ---------------------
  std::vector<SubmitHandle> handles;
  const int bursts = 3 + pick(4);
  for (int burst = 0; burst < bursts; ++burst) {
    const int size = 1 + pick(12);
    for (int i = 0; i < size; ++i) {
      QueryRequest request;
      request.query = world.queries[static_cast<size_t>(pick(
          static_cast<int>(world.queries.size())))];
      request.execute = unit() < 0.7;
      request.skip_cache = unit() < 0.15;
      if (unit() < 0.5) request.deadline_micros = 500 + pick(50000);
      handles.push_back(service.Submit(std::move(request)));
    }
    // Interleave chaos between bursts.
    const int actions = pick(4);
    for (int a = 0; a < actions; ++a) {
      switch (pick(4)) {
        case 0:
          clock.Advance(pick(20000));
          break;
        case 1:
          if (!handles.empty()) {
            service.Cancel(
                handles[static_cast<size_t>(pick(
                            static_cast<int>(handles.size())))]
                    .ticket);
          }
          break;
        case 2:
          service.BumpEpoch();
          break;
        default:
          (void)service.QueueDepth();
          (void)service.SnapshotStats();
          break;
      }
    }
    // A sliver of real time so workers make progress between bursts; the
    // invariants below never depend on how much they got.
    if (pick(2) == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  const bool abort = pick(3) == 0;
  service.Shutdown(abort ? ShutdownMode::kAbort : ShutdownMode::kDrain);

  // A post-shutdown submit must fast-fail and still be accounted for.
  QueryRequest late;
  late.query = world.queries[0];
  late.execute = false;
  handles.push_back(service.Submit(std::move(late)));

  // --- invariants ---------------------------------------------------------
  for (SubmitHandle& handle : handles) {
    if (handle.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ADD_FAILURE() << "seed " << seed
                    << ": a future is unresolved after Shutdown";
      continue;  // .get() would block forever; skip it
    }
    const QueryResponse response = handle.future.get();
    const StatusCode code = response.status.code();
    EXPECT_NE(code, StatusCode::kInternal)
        << "seed " << seed
        << ": dropped-promise backstop fired: " << response.status;
    const bool definite =
        code == StatusCode::kOk || code == StatusCode::kNotFound ||
        code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kCancelled ||
        code == StatusCode::kResourceExhausted ||
        code == StatusCode::kUnavailable ||
        code == StatusCode::kFailedPrecondition;
    EXPECT_TRUE(definite) << "seed " << seed << ": unexpected terminal status "
                          << response.status;
  }

  const ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.submitted, handles.size()) << "seed " << seed;
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.rejected + stats.shed + stats.cancelled)
      << "seed " << seed << ": lifecycle conservation violated";
  if (options.max_queue_depth > 0) {
    EXPECT_LE(stats.queue_depth_high_water, options.max_queue_depth)
        << "seed " << seed << ": admission bound was not enforced";
  }
  // Health conservation: every probe resolves at most once, and degraded
  // responses are a subset of completions.
  EXPECT_LE(stats.probes_failed + stats.recoveries, stats.probes_sent)
      << "seed " << seed;
  EXPECT_LE(stats.degraded_responses, stats.completed) << "seed " << seed;
  if (!options.failover_enabled) {
    EXPECT_EQ(stats.failovers, 0u) << "seed " << seed;
    EXPECT_EQ(stats.quarantines, 0u) << "seed " << seed;
  }
  return handles.size();
}

/// Coalescing-focused chaos: duplicate-heavy bursts race many identical
/// requests through the single-flight path while cancels and epoch bumps
/// try to break coalitions mid-flight. Faults, failover, deadlines,
/// skip_cache, and admission shedding are all disabled, so the proof-search
/// count obeys a crisp scheduling-independent bound:
///
///   searches <= distinct_keys * (1 + epoch_bumps) + cancels
///
/// Per (key, epoch band) at most one search completes — coalescing and the
/// leader's post-join cache re-check close every resolve-vs-join race — and
/// each cancel can add at most one extra attempt (a cancelled leader's
/// aborted search, redone by the promoted follower). Seeds that happen to
/// schedule no cancels and no bumps therefore collapse to the strongest
/// form: searches <= distinct_keys.
size_t RunCoalescingScenario(const ChaosWorld& world, uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&rng](int bound) {
    return static_cast<int>(rng() % static_cast<uint64_t>(bound));
  };
  auto unit = [&rng] {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  };

  SharedVirtualClock clock;
  ServiceOptions options;
  options.num_workers = 2 + pick(7);
  options.max_queue_depth = 0;  // unbounded: no shedding noise in the bound
  options.cache.num_shards = 1 + pick(4);
  options.clock = &clock;
  options.failover_enabled = false;

  const Schema* schema = world.schema.get();
  const Instance* instance = world.instance.get();
  std::atomic<uint64_t> source_seed{seed * 733u + 1};
  auto factory = [schema, instance, &source_seed, &clock] {
    return std::make_unique<ChaosSource>(
        schema, instance, FaultProfile{},
        source_seed.fetch_add(1, std::memory_order_relaxed), &clock);
  };
  QueryService service(world.accessible.get(), world.cost.get(), factory,
                       options);

  std::vector<SubmitHandle> handles;
  std::set<size_t> distinct;
  uint64_t bumps = 0;
  uint64_t cancels = 0;
  const int bursts = 3 + pick(4);
  for (int burst = 0; burst < bursts; ++burst) {
    const int size = 4 + pick(13);
    for (int i = 0; i < size; ++i) {
      QueryRequest request;
      // Zipf-flavoured duplicates: most of a burst lands on query 0, the
      // rest spread uniformly — exactly the mix coalescing exists for.
      const size_t which =
          unit() < 0.7 ? 0
                       : static_cast<size_t>(
                             pick(static_cast<int>(world.queries.size())));
      distinct.insert(which);
      request.query = world.queries[which];
      request.execute = unit() < 0.7;
      handles.push_back(service.Submit(std::move(request)));
    }
    const int actions = pick(4);
    for (int a = 0; a < actions; ++a) {
      switch (pick(3)) {
        case 0:
          if (!handles.empty() &&
              service.Cancel(handles[static_cast<size_t>(pick(
                                         static_cast<int>(handles.size())))]
                                 .ticket)) {
            ++cancels;
          }
          break;
        case 1:
          service.BumpEpoch();
          ++bumps;
          break;
        default:
          (void)service.SnapshotStats();
          break;
      }
    }
    if (pick(2) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  // Always drain: an abort cancels in-flight leaders outside the counted
  // cancel schedule, which would loosen the search bound.
  service.Shutdown(ShutdownMode::kDrain);

  for (SubmitHandle& handle : handles) {
    if (handle.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ADD_FAILURE() << "seed " << seed
                    << ": a future is unresolved after Shutdown";
      continue;
    }
    const QueryResponse response = handle.future.get();
    const StatusCode code = response.status.code();
    EXPECT_TRUE(code == StatusCode::kOk || code == StatusCode::kCancelled)
        << "seed " << seed << ": unexpected terminal status "
        << response.status;
  }

  const ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.submitted, handles.size()) << "seed " << seed;
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.rejected + stats.shed + stats.cancelled)
      << "seed " << seed << ": lifecycle conservation violated";
  EXPECT_LE(stats.searches,
            static_cast<uint64_t>(distinct.size()) * (1 + bumps) + cancels)
      << "seed " << seed << ": coalescing failed to bound proof searches ("
      << distinct.size() << " distinct keys, " << bumps << " bumps, "
      << cancels << " cancels)";
  if (bumps == 0 && cancels == 0) {
    EXPECT_LE(stats.searches, static_cast<uint64_t>(distinct.size()))
        << "seed " << seed;
  }
  // Request-level accounting: every completed request was fed by exactly one
  // of the cache, its own search, or a coalition leader's search.
  EXPECT_LE(stats.coalesced_followers, stats.completed) << "seed " << seed;
  EXPECT_EQ(stats.coalesced_waiting, 0u)
      << "seed " << seed << ": followers still parked after Shutdown";
  return handles.size();
}

TEST(ServiceCoalescingChaosTest, DuplicateHeavyBurstsShareSearches) {
  const ChaosWorld world = MakeWorld();
  const int iters = EnvInt("LCP_CHAOS_ITERS", 25);
  const uint64_t base =
      static_cast<uint64_t>(EnvInt("LCP_CHAOS_SEED", 1)) + 0x5eed;
  size_t total = 0;
  for (int i = 0; i < iters; ++i) {
    total += RunCoalescingScenario(world, base + static_cast<uint64_t>(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(total, static_cast<size_t>(iters));
}

TEST(ServiceChaosTest, SeededLifecycleScenariosHoldInvariants) {
  const ChaosWorld world = MakeWorld();
  const int iters = EnvInt("LCP_CHAOS_ITERS", 25);
  const uint64_t base = static_cast<uint64_t>(EnvInt("LCP_CHAOS_SEED", 1));
  size_t total = 0;
  for (int i = 0; i < iters; ++i) {
    total += RunScenario(world, base + static_cast<uint64_t>(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Sanity: the harness exercised a non-trivial number of requests.
  EXPECT_GT(total, static_cast<size_t>(iters));
}

/// Deterministic end-to-end failover scenario (the PR's acceptance check):
/// a relation with a cheap and an expensive access method; the cheap one
/// suffers a scheduled permanent outage mid-run and heals later. With one
/// worker and sequential calls on a virtual clock, every transition is
/// exactly scripted:
///   * before the outage: cheap primary plan, not degraded;
///   * first request in the outage: one in-request failover re-plan, then
///     every subsequent request is OK + degraded (never kUnavailable);
///   * while the outage lasts: recovery probes fail and back off, service
///     keeps answering from the detour plan;
///   * after the heal: the next probe succeeds, the availability epoch
///     bumps, and the cheap primary plan wins its cache slot back.
TEST(ServiceFailoverTest, OutageFailoverAndRecoveryAreDeterministic) {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  const AccessMethodId cheap =
      schema.AddAccessMethod("mt_r_cheap", r, {}, 1.0).value();
  schema.AddAccessMethod("mt_r_expensive", r, {}, 25.0).value();
  auto accessible = AccessibleSchema::Build(schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();
  SimpleCostFunction cost(&schema);
  Instance instance(&schema);
  for (int i = 0; i < 4; ++i) {
    instance.AddFact(r, Tuple{Value::Int(i), Value::Int(i * 10)});
  }
  auto query = ParseQuery(schema, "Q(x, y) :- R(x, y)");
  ASSERT_TRUE(query.ok()) << query.status();

  SharedVirtualClock clock;
  ServiceOptions options;
  options.num_workers = 1;  // sequential Calls => a fully scripted schedule
  options.clock = &clock;
  options.execution.retry.max_attempts = 1;  // first failure is final
  options.health.quarantine_after_consecutive = 1;
  options.health.quarantine_micros = 50000;
  options.health.quarantine_backoff = 2.0;
  options.health.max_quarantine_micros = 100000;

  // The outage is scheduled at source-construction time, so there is no race
  // between the test thread and the worker's factory call.
  auto factory = [&schema, &instance, &clock, cheap] {
    std::vector<OutageEvent> outages;
    outages.push_back(OutageEvent{cheap, 10000, 200000});
    return std::make_unique<ChaosSource>(&schema, &instance, FaultProfile{},
                                         /*seed=*/1, &clock, outages);
  };
  QueryService service(&accessible.value(), &cost, factory, options);
  auto call = [&] {
    QueryRequest request;
    request.query = *query;
    return service.Call(std::move(request));
  };

  // Phase 1 (t=0): healthy world, cheap primary plan.
  QueryResponse r1 = call();
  ASSERT_TRUE(r1.status.ok()) << r1.status;
  EXPECT_FALSE(r1.degraded);
  EXPECT_FALSE(r1.failed_over);
  ASSERT_NE(r1.plan, nullptr);
  const double cheap_cost = r1.plan->cost;
  EXPECT_EQ(r1.execution.output.size(), 4u);

  // Phase 2 (t=10ms): the cheap method goes dark. The first request fails
  // over in-request: quarantine, one re-plan around the dead method, served
  // from the detour.
  clock.Advance(10000);
  QueryResponse r2 = call();
  ASSERT_TRUE(r2.status.ok()) << r2.status;
  EXPECT_TRUE(r2.failed_over);
  EXPECT_TRUE(r2.degraded);
  ASSERT_NE(r2.plan, nullptr);
  EXPECT_GT(r2.plan->cost, cheap_cost);
  EXPECT_EQ(r2.execution.output.size(), 4u);  // exact answer, pricier plan

  // Once the detour plan exists, no client ever sees kUnavailable again:
  // requests hit the detour entry in the cache.
  for (int i = 0; i < 3; ++i) {
    QueryResponse response = call();
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_TRUE(response.degraded);
    EXPECT_FALSE(response.failed_over);
    EXPECT_TRUE(response.cache_hit);
  }

  // Phase 3 (t=60ms): the quarantine window expires; the next request sends
  // a recovery probe, which fails (the outage heals only at t=200ms) and
  // doubles the window. Service keeps serving degraded answers throughout.
  clock.Advance(50000);
  QueryResponse r3 = call();
  ASSERT_TRUE(r3.status.ok()) << r3.status;
  EXPECT_TRUE(r3.degraded);
  {
    ServiceStats stats = service.SnapshotStats();
    EXPECT_EQ(stats.probes_sent, 1u);
    EXPECT_EQ(stats.probes_failed, 1u);
    EXPECT_EQ(stats.recoveries, 0u);
    EXPECT_EQ(stats.methods_quarantined, 1u);
  }

  // Phase 4 (t=160ms): second probe, still down (window now at the 100ms
  // cap).
  clock.Advance(100000);
  QueryResponse r4 = call();
  ASSERT_TRUE(r4.status.ok()) << r4.status;
  EXPECT_TRUE(r4.degraded);

  // Phase 5 (t=260ms): the outage healed at t=200ms; the pending probe
  // succeeds, the method is re-admitted, the availability epoch bumps, and
  // the same request is already served by the cheap primary plan again.
  clock.Advance(100000);
  QueryResponse r5 = call();
  ASSERT_TRUE(r5.status.ok()) << r5.status;
  EXPECT_FALSE(r5.degraded);
  EXPECT_FALSE(r5.cache_hit);  // detour entry unreachable under the new epoch
  ASSERT_NE(r5.plan, nullptr);
  EXPECT_EQ(r5.plan->cost, cheap_cost);

  // And the recovered plan is cached for everyone after.
  QueryResponse r6 = call();
  ASSERT_TRUE(r6.status.ok()) << r6.status;
  EXPECT_TRUE(r6.cache_hit);
  EXPECT_FALSE(r6.degraded);

  service.Shutdown();
  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.degraded_responses, 6u);  // r2, three cache hits, r3, r4
  EXPECT_EQ(stats.probes_sent, 3u);
  EXPECT_EQ(stats.probes_failed, 2u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.quarantines, 3u);  // initial + two failed probes
  EXPECT_EQ(stats.methods_quarantined, 0u);
  EXPECT_EQ(stats.failed, 0u);  // no client-visible error in the whole run
  const MethodHealthSnapshot snapshot = service.health()->Snapshot(cheap);
  EXPECT_EQ(snapshot.state, MethodHealth::kHealthy);
}

}  // namespace
}  // namespace lcp
