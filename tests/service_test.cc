#include "lcp/service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/generator.h"
#include "lcp/data/query_eval.h"
#include "lcp/runtime/source.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

/// Everything a QueryService needs for the profinfo scenario: schema,
/// accessible schema, cost function, a constraint-satisfying instance, and a
/// factory handing each worker its own SimulatedSource over that instance.
struct ServiceFixture {
  std::unique_ptr<Schema> schema;
  ConjunctiveQuery query;
  std::unique_ptr<AccessibleSchema> accessible;
  std::unique_ptr<SimpleCostFunction> cost;
  std::unique_ptr<Instance> instance;

  QueryService::SourceFactory Factory() const {
    const Schema* s = schema.get();
    const Instance* inst = instance.get();
    return [s, inst] { return std::make_unique<SimulatedSource>(s, inst); };
  }
};

ServiceFixture MakeProfinfoFixture(uint64_t seed = 42) {
  auto scenario = MakeProfinfoScenario(false);
  EXPECT_TRUE(scenario.ok()) << scenario.status();
  ServiceFixture fx;
  fx.schema = std::move(scenario->schema);
  fx.query = std::move(scenario->query);
  auto accessible =
      AccessibleSchema::Build(*fx.schema, AccessibleVariant::kStandard);
  EXPECT_TRUE(accessible.ok()) << accessible.status();
  fx.accessible =
      std::make_unique<AccessibleSchema>(std::move(accessible).value());
  fx.cost = std::make_unique<SimpleCostFunction>(fx.schema.get());
  GeneratorOptions gen;
  gen.seed = seed;
  gen.facts_per_relation = 12;
  gen.domain_size = 15;
  auto instance = GenerateInstance(*fx.schema, gen);
  EXPECT_TRUE(instance.ok()) << instance.status();
  fx.instance = std::make_unique<Instance>(std::move(instance).value());
  return fx;
}

std::set<Tuple> Rows(const QueryResponse& response) {
  return std::set<Tuple>(response.execution.output.rows().begin(),
                         response.execution.output.rows().end());
}

std::set<Tuple> Oracle(const ConjunctiveQuery& query,
                       const Instance& instance) {
  std::vector<Tuple> rows = EvaluateQuery(query, instance);
  return std::set<Tuple>(rows.begin(), rows.end());
}

TEST(ServiceTest, EndToEndMatchesOracle) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});

  QueryRequest request;
  request.query = fx.query;
  QueryResponse response = service.Call(request);
  ASSERT_TRUE(response.status.ok()) << response.status;
  ASSERT_TRUE(response.executed);
  ASSERT_NE(response.plan, nullptr);
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(response.epoch, 1u);
  EXPECT_EQ(Rows(response), Oracle(fx.query, *fx.instance));
}

TEST(ServiceTest, RepeatAndRenamedQueriesHitTheCache) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});

  QueryRequest request;
  request.query = fx.query;
  QueryResponse first = service.Call(request);
  ASSERT_TRUE(first.status.ok()) << first.status;
  EXPECT_FALSE(first.cache_hit);

  QueryResponse second = service.Call(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);

  // An α-renamed copy of the same query is the same cache entry.
  auto renamed =
      ParseQuery(*fx.schema, "Q(person) :- Profinfo(person, room, \"smith\")");
  ASSERT_TRUE(renamed.ok()) << renamed.status();
  QueryRequest renamed_request;
  renamed_request.query = *renamed;
  QueryResponse third = service.Call(renamed_request);
  ASSERT_TRUE(third.status.ok());
  EXPECT_TRUE(third.cache_hit);
  EXPECT_EQ(Rows(third), Oracle(fx.query, *fx.instance));

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.searches, 1u) << "one proof search amortized over 3 calls";
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GT(stats.CacheHitRate(), 0.5);
}

TEST(ServiceTest, BumpEpochInvalidatesCachedPlans) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});
  QueryRequest request;
  request.query = fx.query;
  ASSERT_TRUE(service.Call(request).status.ok());
  ASSERT_TRUE(service.Call(request).cache_hit);

  EXPECT_EQ(service.BumpEpoch(), 2u);
  EXPECT_EQ(service.cache().size(), 0u) << "bump evicts eagerly";

  QueryResponse after = service.Call(request);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit) << "old-epoch plan must not be served";
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_TRUE(service.Call(request).cache_hit) << "re-cached at new epoch";
}

TEST(ServiceTest, RefreshSchemaOnlyBumpsOnRealChange) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});
  const uint64_t fingerprint = service.schema_fingerprint();
  EXPECT_EQ(service.RefreshSchema(), 1u) << "unchanged schema: same epoch";
  EXPECT_EQ(service.schema_fingerprint(), fingerprint);

  // A real edit (new constant) advances the epoch exactly once.
  fx.schema->AddConstant(Value::Int(777));
  EXPECT_EQ(service.RefreshSchema(), 2u);
  EXPECT_NE(service.schema_fingerprint(), fingerprint);
  EXPECT_EQ(service.RefreshSchema(), 2u) << "idempotent until the next edit";
}

TEST(ServiceTest, PlanOnlyRequestsNeedNoSourceFactory) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), nullptr,
                       ServiceOptions{});
  QueryRequest request;
  request.query = fx.query;
  request.execute = false;
  QueryResponse response = service.Call(request);
  ASSERT_TRUE(response.status.ok()) << response.status;
  ASSERT_NE(response.plan, nullptr);
  EXPECT_FALSE(response.executed);
  EXPECT_GT(response.plan->plan.NumAccessCommands(), 0);

  // But asking such a service to execute is a caller error.
  request.execute = true;
  EXPECT_EQ(service.Call(request).status.code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, UnanswerableQueryReturnsNotFound) {
  // R(x) reachable only through an input-requiring method, and nothing
  // supplies the input: provably no plan.
  auto schema = std::make_unique<Schema>();
  RelationId r = *schema->AddRelation("R", 1);
  ASSERT_TRUE(schema->AddAccessMethod("m_r", r, {0}).ok());
  auto accessible =
      AccessibleSchema::Build(*schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  SimpleCostFunction cost(schema.get());
  QueryService service(&*accessible, &cost, nullptr, ServiceOptions{});

  QueryRequest request;
  auto query = ParseQuery(*schema, "Q(x) :- R(x)");
  ASSERT_TRUE(query.ok());
  request.query = *query;
  request.execute = false;
  QueryResponse response = service.Call(request);
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(response.plan, nullptr);
  EXPECT_EQ(service.SnapshotStats().failed, 1u);
}

TEST(ServiceTest, SkipCacheReplansButStillOffersTheResult) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});
  QueryRequest skip;
  skip.query = fx.query;
  skip.skip_cache = true;
  EXPECT_FALSE(service.Call(skip).cache_hit);
  EXPECT_FALSE(service.Call(skip).cache_hit) << "skip_cache always re-plans";
  EXPECT_EQ(service.SnapshotStats().searches, 2u);

  QueryRequest normal;
  normal.query = fx.query;
  EXPECT_TRUE(service.Call(normal).cache_hit)
      << "skip_cache results are still offered to the cache";
}

TEST(ServiceTest, DisabledCacheAlwaysPlans) {
  ServiceFixture fx = MakeProfinfoFixture();
  ServiceOptions options;
  options.cache_enabled = false;
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       options);
  QueryRequest request;
  request.query = fx.query;
  for (int i = 0; i < 2; ++i) {
    QueryResponse response = service.Call(request);
    ASSERT_TRUE(response.status.ok());
    EXPECT_FALSE(response.cache_hit);
    ASSERT_NE(response.plan, nullptr);
    EXPECT_EQ(Rows(response), Oracle(fx.query, *fx.instance));
  }
  EXPECT_EQ(service.SnapshotStats().searches, 2u);
  EXPECT_EQ(service.cache().size(), 0u);
}

TEST(ServiceTest, SubmitAfterShutdownFailsFast) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});
  service.Shutdown();
  QueryRequest request;
  request.query = fx.query;
  EXPECT_EQ(service.Call(request).status.code(),
            StatusCode::kFailedPrecondition);
  service.Shutdown();  // idempotent
}

TEST(ServiceTest, ShutdownDrainsQueuedRequests) {
  ServiceFixture fx = MakeProfinfoFixture();
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       options);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 16; ++i) {
    QueryRequest request;
    request.query = fx.query;
    futures.push_back(service.Submit(std::move(request)).future);
  }
  service.Shutdown();
  for (auto& future : futures) {
    QueryResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status;
  }
}

// --- request lifecycle: admission, deadlines, cancellation, shutdown -------

/// A manual gate: workers block in Pass() until Open(). Used to hold the
/// (single) worker inside an execution while a test arranges queue states,
/// advances a virtual clock, or cancels requests.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> arrivals{0};

  void Pass() {
    arrivals.fetch_add(1, std::memory_order_release);
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  /// Spins (real time) until some worker has reached the gate.
  void AwaitArrival() {
    while (arrivals.load(std::memory_order_acquire) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

/// A SimulatedSource whose every access first waits at the gate.
class GatedSource : public AccessSource {
 public:
  GatedSource(const Schema* schema, const Instance* instance, Gate* gate)
      : base_(schema, instance), gate_(gate) {}
  Result<AccessOutcome> TryAccess(AccessMethodId method,
                                  const Tuple& inputs) override {
    gate_->Pass();
    return base_.TryAccess(method, inputs);
  }
  const Schema& schema() const override { return base_.schema(); }

 private:
  SimulatedSource base_;
  Gate* gate_;
};

QueryService::SourceFactory GatedFactory(const ServiceFixture& fx,
                                         Gate* gate) {
  const Schema* schema = fx.schema.get();
  const Instance* instance = fx.instance.get();
  return [schema, instance, gate] {
    return std::make_unique<GatedSource>(schema, instance, gate);
  };
}

/// The lifecycle conservation invariant (see ServiceStats).
void ExpectConservation(const ServiceStats& s) {
  EXPECT_EQ(s.submitted, s.completed + s.rejected + s.shed + s.cancelled);
}

bool Ready(const std::future<QueryResponse>& future) {
  return future.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

TEST(ServiceLifecycleTest, RejectNewFastFailsWhenQueueFull) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 2;  // default policy: kRejectNew
  QueryService service(fx.accessible.get(), fx.cost.get(),
                       GatedFactory(fx, &gate), options);

  QueryRequest busy;
  busy.query = fx.query;  // execute = true: blocks at the gate
  SubmitHandle a = service.Submit(busy);
  gate.AwaitArrival();  // the worker is stuck mid-execution; queue is empty

  QueryRequest plan_only;
  plan_only.query = fx.query;
  plan_only.execute = false;
  SubmitHandle b = service.Submit(plan_only);
  SubmitHandle c = service.Submit(plan_only);
  EXPECT_NE(b.ticket, 0u);
  EXPECT_NE(c.ticket, 0u);
  EXPECT_EQ(service.QueueDepth(), 2u);

  SubmitHandle d = service.Submit(plan_only);
  EXPECT_EQ(d.ticket, 0u) << "rejected at the edge, never queued";
  ASSERT_TRUE(Ready(d.future)) << "fast-fail must not wait for a worker";
  EXPECT_EQ(d.future.get().status.code(), StatusCode::kResourceExhausted);

  gate.Open();
  service.Shutdown();  // drain: B and C still get served
  EXPECT_TRUE(a.future.get().status.ok());
  EXPECT_TRUE(b.future.get().status.ok());
  EXPECT_TRUE(c.future.get().status.ok());

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queue_depth_high_water, 2u);
  ExpectConservation(stats);
}

TEST(ServiceLifecycleTest, DropOldestEvictsTheOldestQueuedRequest) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 2;
  options.shed_policy = ShedPolicy::kDropOldest;
  QueryService service(fx.accessible.get(), fx.cost.get(),
                       GatedFactory(fx, &gate), options);

  QueryRequest busy;
  busy.query = fx.query;
  SubmitHandle a = service.Submit(busy);
  gate.AwaitArrival();

  QueryRequest plan_only;
  plan_only.query = fx.query;
  plan_only.execute = false;
  SubmitHandle b = service.Submit(plan_only);
  SubmitHandle c = service.Submit(plan_only);
  SubmitHandle d = service.Submit(plan_only);  // evicts B, admits D
  EXPECT_NE(d.ticket, 0u) << "drop-oldest admits the new request";
  EXPECT_EQ(service.QueueDepth(), 2u);

  ASSERT_TRUE(Ready(b.future)) << "the evicted request resolves immediately";
  EXPECT_EQ(b.future.get().status.code(), StatusCode::kResourceExhausted);

  gate.Open();
  service.Shutdown();
  EXPECT_TRUE(a.future.get().status.ok());
  EXPECT_TRUE(c.future.get().status.ok());
  EXPECT_TRUE(d.future.get().status.ok());

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.shed, 1u);
  ExpectConservation(stats);
}

TEST(ServiceLifecycleTest, DeadlineExpiredInQueueIsShedWithoutPlanning) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  SharedVirtualClock clock;
  ServiceOptions options;
  options.num_workers = 1;
  options.clock = &clock;
  QueryService service(fx.accessible.get(), fx.cost.get(),
                       GatedFactory(fx, &gate), options);

  QueryRequest busy;
  busy.query = fx.query;
  SubmitHandle a = service.Submit(busy);
  gate.AwaitArrival();
  ASSERT_EQ(service.SnapshotStats().searches, 1u);

  QueryRequest hurried;
  hurried.query = fx.query;
  hurried.execute = false;
  hurried.skip_cache = true;  // a search would be observable if one ran
  hurried.deadline_micros = 5'000;
  SubmitHandle b = service.Submit(hurried);

  clock.Advance(10'000);  // the deadline passes while B is still queued
  gate.Open();
  service.Shutdown();

  QueryResponse response = b.future.get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.queue_micros, 10'000);
  EXPECT_TRUE(a.future.get().status.ok());

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.searches, 1u)
      << "an expired request must be shed before proof search";
  EXPECT_EQ(stats.shed, 1u);
  ExpectConservation(stats);
}

TEST(ServiceLifecycleTest, QueueWaitShrinksThePlanningBudget) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  SharedVirtualClock clock;
  ServiceOptions options;
  options.num_workers = 1;
  options.clock = &clock;
  QueryService service(fx.accessible.get(), fx.cost.get(),
                       GatedFactory(fx, &gate), options);

  QueryRequest busy;
  busy.query = fx.query;
  SubmitHandle a = service.Submit(busy);
  gate.AwaitArrival();

  QueryRequest tight;
  tight.query = fx.query;
  tight.execute = false;
  tight.skip_cache = true;  // force a real search so a budget is granted
  tight.deadline_micros = 50'000;
  SubmitHandle b = service.Submit(tight);

  clock.Advance(40'000);  // 40ms of queue wait against a 50ms deadline
  gate.Open();
  service.Shutdown();

  QueryResponse response = b.future.get();
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.queue_micros, 40'000);
  EXPECT_EQ(response.planning_budget_micros, 10'000)
      << "only the time remaining after queue wait may be granted";
  EXPECT_TRUE(a.future.get().status.ok());
}

TEST(ServiceLifecycleTest, CancelQueuedRequestResolvesImmediately) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(fx.accessible.get(), fx.cost.get(),
                       GatedFactory(fx, &gate), options);

  QueryRequest busy;
  busy.query = fx.query;
  SubmitHandle a = service.Submit(busy);
  gate.AwaitArrival();

  QueryRequest queued;
  queued.query = fx.query;
  queued.execute = false;
  SubmitHandle b = service.Submit(queued);
  ASSERT_NE(b.ticket, 0u);

  EXPECT_TRUE(service.Cancel(b.ticket));
  ASSERT_TRUE(Ready(b.future)) << "a queued cancel must not wait for a worker";
  EXPECT_EQ(b.future.get().status.code(), StatusCode::kCancelled);
  EXPECT_FALSE(service.Cancel(b.ticket)) << "already resolved";
  EXPECT_FALSE(service.Cancel(0));
  EXPECT_FALSE(service.Cancel(123456)) << "unknown ticket";

  gate.Open();
  service.Shutdown();
  EXPECT_TRUE(a.future.get().status.ok());

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.searches, 1u) << "the cancelled request never planned";
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);
  ExpectConservation(stats);
}

TEST(ServiceLifecycleTest, CancelInFlightRequestAbortsExecution) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(fx.accessible.get(), fx.cost.get(),
                       GatedFactory(fx, &gate), options);

  QueryRequest busy;
  busy.query = fx.query;
  SubmitHandle a = service.Submit(busy);
  gate.AwaitArrival();  // A is mid-execution, blocked at the gate

  EXPECT_TRUE(service.Cancel(a.ticket)) << "in flight: trips the token";
  gate.Open();
  QueryResponse response = a.future.get();
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
  EXPECT_FALSE(response.executed);
  service.Shutdown();

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.completed, 1u)
      << "an in-flight cancel completes on the worker";
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.cancelled, 0u) << "`cancelled` counts queued cancels only";
  ExpectConservation(stats);
}

TEST(ServiceLifecycleTest, AbortShutdownFailsQueuedAndCancelsInFlight) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(fx.accessible.get(), fx.cost.get(),
                       GatedFactory(fx, &gate), options);

  QueryRequest busy;
  busy.query = fx.query;
  SubmitHandle a = service.Submit(busy);
  gate.AwaitArrival();

  QueryRequest queued;
  queued.query = fx.query;
  queued.execute = false;
  SubmitHandle b = service.Submit(queued);
  SubmitHandle c = service.Submit(queued);

  std::thread aborter([&] { service.Shutdown(ShutdownMode::kAbort); });
  // Queued requests are failed before the join, so these resolve even while
  // the in-flight request is still blocked at the gate.
  EXPECT_EQ(b.future.get().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(c.future.get().status.code(), StatusCode::kUnavailable);
  gate.Open();
  aborter.join();
  EXPECT_EQ(a.future.get().status.code(), StatusCode::kUnavailable)
      << "abort trips the in-flight token with kUnavailable";

  QueryRequest late;
  late.query = fx.query;
  late.execute = false;
  SubmitHandle d = service.Submit(late);
  EXPECT_EQ(d.ticket, 0u);
  EXPECT_EQ(d.future.get().status.code(), StatusCode::kFailedPrecondition);

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  ExpectConservation(stats);
}

TEST(ServiceLifecycleTest, ConcurrentShutdownJoinsExactlyOnce) {
  ServiceFixture fx = MakeProfinfoFixture();
  ServiceOptions options;
  options.num_workers = 2;
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       options);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    QueryRequest request;
    request.query = fx.query;
    futures.push_back(service.Submit(std::move(request)).future);
  }
  // Two threads race Shutdown: historically this double-joined the worker
  // threads (undefined behavior). Exactly one may join; the other must block
  // until the join is done, so either returning implies a quiesced service.
  std::thread first([&] { service.Shutdown(); });
  std::thread second([&] { service.Shutdown(); });
  first.join();
  second.join();
  for (auto& future : futures) {
    ASSERT_TRUE(Ready(future)) << "shutdown returned with work unresolved";
    EXPECT_TRUE(future.get().status.ok());
  }
  ExpectConservation(service.SnapshotStats());
}

TEST(ServiceLifecycleTest, MalformedQueriesAreRejectedAtTheEdge) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});

  auto expect_rejected = [&](ConjunctiveQuery query, const char* what) {
    QueryRequest request;
    request.query = std::move(query);
    SubmitHandle handle = service.Submit(std::move(request));
    EXPECT_EQ(handle.ticket, 0u) << what;
    ASSERT_TRUE(Ready(handle.future)) << what;
    EXPECT_EQ(handle.future.get().status.code(), StatusCode::kInvalidArgument)
        << what;
  };

  ConjunctiveQuery unknown = fx.query;
  unknown.atoms[0].relation = static_cast<RelationId>(9999);
  expect_rejected(std::move(unknown), "unknown relation");

  ConjunctiveQuery bad_arity = fx.query;
  bad_arity.atoms[0].terms.pop_back();
  expect_rejected(std::move(bad_arity), "arity mismatch");

  ConjunctiveQuery unsafe = fx.query;
  unsafe.free_variables.push_back("never_bound");
  expect_rejected(std::move(unsafe), "unsafe head variable");

  ConjunctiveQuery empty;
  expect_rejected(std::move(empty), "empty body");

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.rejected, 4u);
  EXPECT_EQ(stats.searches, 0u)
      << "rejected requests never reach the planner";
  ExpectConservation(stats);
}

// --- concurrent stress: mixed queries + mid-run epoch bumps ----------------
//
// 8 client threads fire α-equivalent and distinct queries (some skip_cache)
// at an 8-worker service while a ninth thread repeatedly bumps the epoch.
// Every response must still be correct; counters must balance. Run under
// TSan in CI (see .github/workflows/ci.yml); LCP_SERVICE_STRESS_ITERS scales
// the per-thread iteration count.

int StressIters() {
  const char* env = std::getenv("LCP_SERVICE_STRESS_ITERS");
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 40;
}

TEST(ServiceStressTest, ConcurrentMixedQueriesWithEpochBumps) {
  ServiceFixture fx = MakeProfinfoFixture();
  ServiceOptions options;
  options.num_workers = 8;
  options.cache.num_shards = 4;
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       options);

  // Query mix over the same schema: the scenario query, two α-renamings of
  // it (same cache entry), a projection over the free-access relation, and
  // the boolean variant — each with its oracle answer.
  std::vector<ConjunctiveQuery> queries = {fx.query};
  for (const char* text :
       {"Q(p) :- Profinfo(p, r, \"smith\")",
        "Q(who) :- Profinfo(who, office, \"smith\")",
        "Q(e, l) :- Udirect(e, l)", "Q(l) :- Udirect(e, l)",
        "Q() :- Profinfo(eid, onum, lname)"}) {
    auto query = ParseQuery(*fx.schema, text);
    ASSERT_TRUE(query.ok()) << text << ": " << query.status();
    queries.push_back(std::move(query).value());
  }
  std::vector<std::set<Tuple>> oracles;
  for (const ConjunctiveQuery& query : queries) {
    oracles.push_back(Oracle(query, *fx.instance));
  }

  const int iters = StressIters();
  constexpr int kClientThreads = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> wrong_answers{0};

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        size_t which = static_cast<size_t>(t + i) % queries.size();
        QueryRequest request;
        request.query = queries[which];
        request.skip_cache = (t + i) % 7 == 0;
        QueryResponse response = service.Call(request);
        if (!response.status.ok() || Rows(response) != oracles[which]) {
          wrong_answers.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread bumper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      service.BumpEpoch();
      service.RefreshSchema();  // no schema edit: must be a no-op
      std::this_thread::yield();
    }
  });

  for (std::thread& client : clients) client.join();
  stop.store(true, std::memory_order_release);
  bumper.join();
  service.Shutdown();

  EXPECT_EQ(wrong_answers.load(), 0);
  ServiceStats stats = service.SnapshotStats();
  const uint64_t total =
      static_cast<uint64_t>(kClientThreads) * static_cast<uint64_t>(iters);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.cache_hits + stats.searches + stats.coalesced_followers,
            total)
      << "every request either hit the cache, ran a proof search, or was "
         "fed by a coalition leader's search";
  EXPECT_GE(stats.epoch_bumps, 1u);
  EXPECT_EQ(service.epoch(), stats.epoch_bumps + 1);
}

// --- single-flight coalescing ----------------------------------------------

/// A cost function whose every Cost() call first waits at the gate: holds a
/// worker *inside its proof search* (rather than inside execution, where
/// GatedSource blocks), so a test can pile identical requests onto a search
/// that is provably still in flight.
class GatedCostFunction : public CostFunction {
 public:
  GatedCostFunction(const Schema* schema, Gate* gate)
      : base_(schema), gate_(gate) {}
  double Cost(const Plan& plan) const override {
    gate_->Pass();
    return base_.Cost(plan);
  }

 private:
  SimpleCostFunction base_;
  Gate* gate_;
};

/// Spins (real time) until `predicate` holds. The surrounding ctest timeout
/// bounds a wedged spin.
template <typename Predicate>
void SpinUntil(Predicate predicate) {
  while (!predicate()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ServiceCoalescingTest, ConcurrentIdenticalSubmitsShareOneSearch) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  GatedCostFunction cost(fx.schema.get(), &gate);
  ServiceOptions options;
  options.num_workers = 4;
  QueryService service(fx.accessible.get(), &cost, fx.Factory(), options);

  QueryRequest request;
  request.query = fx.query;
  // The first submit provably leads: it is inside its proof search (blocked
  // at the gate) before any other request exists.
  auto leader = service.Submit(QueryRequest(request));
  gate.AwaitArrival();
  std::vector<std::future<QueryResponse>> followers;
  for (int i = 0; i < 3; ++i) {
    followers.push_back(service.Submit(QueryRequest(request)).future);
  }
  // All three are parked on the leader's flight before the search finishes.
  SpinUntil([&] { return service.SnapshotStats().coalesced_waiting == 3; });
  gate.Open();

  std::set<Tuple> oracle = Oracle(fx.query, *fx.instance);
  QueryResponse led = leader.future.get();
  ASSERT_TRUE(led.status.ok()) << led.status;
  EXPECT_EQ(Rows(led), oracle);
  for (auto& future : followers) {
    QueryResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_FALSE(response.cache_hit);
    EXPECT_EQ(Rows(response), oracle);
  }

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.searches, 1u) << "one proof search fed all four requests";
  EXPECT_EQ(stats.coalesced_leaders, 1u);
  EXPECT_EQ(stats.coalesced_followers, 3u);
  EXPECT_EQ(stats.coalition_handoffs, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.coalesced_waiting, 0u);

  // The coalition's plan landed in the cache: the next request hits it.
  QueryResponse after = service.Call(QueryRequest(request));
  ASSERT_TRUE(after.status.ok());
  EXPECT_TRUE(after.cache_hit);
  service.Shutdown();
  ExpectConservation(service.SnapshotStats());
}

TEST(ServiceCoalescingTest, FollowerCancelDetachesOnlyThatFollower) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  GatedCostFunction cost(fx.schema.get(), &gate);
  ServiceOptions options;
  options.num_workers = 3;
  QueryService service(fx.accessible.get(), &cost, fx.Factory(), options);

  QueryRequest request;
  request.query = fx.query;
  auto leader = service.Submit(QueryRequest(request));
  gate.AwaitArrival();
  auto doomed = service.Submit(QueryRequest(request));
  auto survivor = service.Submit(QueryRequest(request));
  SpinUntil([&] { return service.SnapshotStats().coalesced_waiting == 2; });

  // Cancelling a parked follower detaches it without touching the search.
  EXPECT_TRUE(service.Cancel(doomed.ticket));
  QueryResponse detached = doomed.future.get();
  EXPECT_EQ(detached.status.code(), StatusCode::kCancelled);
  SpinUntil([&] { return service.SnapshotStats().coalesced_waiting == 1; });

  gate.Open();
  std::set<Tuple> oracle = Oracle(fx.query, *fx.instance);
  QueryResponse led = leader.future.get();
  ASSERT_TRUE(led.status.ok()) << led.status;
  EXPECT_EQ(Rows(led), oracle);
  QueryResponse served = survivor.future.get();
  ASSERT_TRUE(served.status.ok()) << served.status;
  EXPECT_EQ(Rows(served), oracle);

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.searches, 1u);
  EXPECT_EQ(stats.coalesced_leaders, 1u);
  EXPECT_EQ(stats.coalesced_followers, 1u)
      << "only the surviving follower was fed by the leader's search";
  EXPECT_EQ(stats.coalition_handoffs, 0u);
  service.Shutdown();
  ExpectConservation(service.SnapshotStats());
}

TEST(ServiceCoalescingTest, LeaderCancelHandsTheSearchToAFollower) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  GatedCostFunction cost(fx.schema.get(), &gate);
  ServiceOptions options;
  options.num_workers = 3;
  QueryService service(fx.accessible.get(), &cost, fx.Factory(), options);

  QueryRequest request;
  request.query = fx.query;
  auto leader = service.Submit(QueryRequest(request));
  gate.AwaitArrival();
  std::vector<std::future<QueryResponse>> followers;
  followers.push_back(service.Submit(QueryRequest(request)).future);
  followers.push_back(service.Submit(QueryRequest(request)).future);
  SpinUntil([&] { return service.SnapshotStats().coalesced_waiting == 2; });

  // Cancel the leader *before* releasing the gate: when its search winds
  // down it must abandon the flight, and exactly one follower is promoted
  // to run the search itself (the gate is open by then).
  EXPECT_TRUE(service.Cancel(leader.ticket));
  gate.Open();

  QueryResponse led = leader.future.get();
  EXPECT_EQ(led.status.code(), StatusCode::kCancelled);
  std::set<Tuple> oracle = Oracle(fx.query, *fx.instance);
  for (auto& future : followers) {
    QueryResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(Rows(response), oracle);
  }

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.coalition_handoffs, 1u);
  EXPECT_EQ(stats.searches, 2u)
      << "the cancelled leader's aborted search plus the promotee's";
  EXPECT_EQ(stats.coalesced_leaders, 2u)
      << "the original leader and the promoted follower both led a search";
  EXPECT_EQ(stats.coalesced_followers, 1u);
  EXPECT_EQ(stats.cancelled + stats.completed, 3u);
  service.Shutdown();
  ExpectConservation(service.SnapshotStats());
}

TEST(ServiceCoalescingTest, EpochBumpInvalidatesTheCoalitionMidFlight) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  GatedCostFunction cost(fx.schema.get(), &gate);
  ServiceOptions options;
  options.num_workers = 3;
  QueryService service(fx.accessible.get(), &cost, fx.Factory(), options);

  QueryRequest request;
  request.query = fx.query;
  auto old_leader = service.Submit(QueryRequest(request));
  gate.AwaitArrival();
  std::vector<std::future<QueryResponse>> followers;
  followers.push_back(service.Submit(QueryRequest(request)).future);
  followers.push_back(service.Submit(QueryRequest(request)).future);
  SpinUntil([&] { return service.SnapshotStats().coalesced_waiting == 2; });

  // The bump invalidates the in-flight coalition: both followers wake,
  // re-resolve the epoch, and form a *new* coalition — one promotes itself
  // to lead a fresh search (and blocks at the still-closed gate), the other
  // parks on the new flight.
  service.BumpEpoch();
  SpinUntil([&] { return gate.arrivals.load(std::memory_order_acquire) >= 2; });
  SpinUntil([&] { return service.SnapshotStats().coalesced_waiting == 1; });
  gate.Open();

  std::set<Tuple> oracle = Oracle(fx.query, *fx.instance);
  QueryResponse led = old_leader.future.get();
  ASSERT_TRUE(led.status.ok()) << led.status;
  EXPECT_EQ(Rows(led), oracle) << "the old leader still serves its caller";
  for (auto& future : followers) {
    QueryResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(Rows(response), oracle);
  }

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.searches, 2u)
      << "one search per epoch band: the old leader's and the new leader's";
  EXPECT_EQ(stats.coalesced_leaders, 2u);
  EXPECT_EQ(stats.coalesced_followers, 1u);
  EXPECT_EQ(stats.coalition_handoffs, 0u);
  EXPECT_EQ(stats.epoch_bumps, 1u);
  service.Shutdown();
  ExpectConservation(service.SnapshotStats());
}

TEST(ServiceCoalescingTest, DisabledCoalescingPlansEveryRequestSolo) {
  ServiceFixture fx = MakeProfinfoFixture();
  Gate gate;
  GatedCostFunction cost(fx.schema.get(), &gate);
  ServiceOptions options;
  options.num_workers = 3;
  options.coalescing_enabled = false;
  QueryService service(fx.accessible.get(), &cost, fx.Factory(), options);

  QueryRequest request;
  request.query = fx.query;
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.Submit(QueryRequest(request)).future);
  }
  // All three run their own search: three workers reach the gate.
  SpinUntil([&] { return gate.arrivals.load(std::memory_order_acquire) >= 3; });
  gate.Open();

  std::set<Tuple> oracle = Oracle(fx.query, *fx.instance);
  for (auto& future : futures) {
    QueryResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(Rows(response), oracle);
  }
  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.searches, 3u);
  EXPECT_EQ(stats.coalesced_leaders, 0u);
  EXPECT_EQ(stats.coalesced_followers, 0u);
  service.Shutdown();
}

}  // namespace
}  // namespace lcp
