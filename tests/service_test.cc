#include "lcp/service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/generator.h"
#include "lcp/data/query_eval.h"
#include "lcp/runtime/source.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

/// Everything a QueryService needs for the profinfo scenario: schema,
/// accessible schema, cost function, a constraint-satisfying instance, and a
/// factory handing each worker its own SimulatedSource over that instance.
struct ServiceFixture {
  std::unique_ptr<Schema> schema;
  ConjunctiveQuery query;
  std::unique_ptr<AccessibleSchema> accessible;
  std::unique_ptr<SimpleCostFunction> cost;
  std::unique_ptr<Instance> instance;

  QueryService::SourceFactory Factory() const {
    const Schema* s = schema.get();
    const Instance* inst = instance.get();
    return [s, inst] { return std::make_unique<SimulatedSource>(s, inst); };
  }
};

ServiceFixture MakeProfinfoFixture(uint64_t seed = 42) {
  auto scenario = MakeProfinfoScenario(false);
  EXPECT_TRUE(scenario.ok()) << scenario.status();
  ServiceFixture fx;
  fx.schema = std::move(scenario->schema);
  fx.query = std::move(scenario->query);
  auto accessible =
      AccessibleSchema::Build(*fx.schema, AccessibleVariant::kStandard);
  EXPECT_TRUE(accessible.ok()) << accessible.status();
  fx.accessible =
      std::make_unique<AccessibleSchema>(std::move(accessible).value());
  fx.cost = std::make_unique<SimpleCostFunction>(fx.schema.get());
  GeneratorOptions gen;
  gen.seed = seed;
  gen.facts_per_relation = 12;
  gen.domain_size = 15;
  auto instance = GenerateInstance(*fx.schema, gen);
  EXPECT_TRUE(instance.ok()) << instance.status();
  fx.instance = std::make_unique<Instance>(std::move(instance).value());
  return fx;
}

std::set<Tuple> Rows(const QueryResponse& response) {
  return std::set<Tuple>(response.execution.output.rows().begin(),
                         response.execution.output.rows().end());
}

std::set<Tuple> Oracle(const ConjunctiveQuery& query,
                       const Instance& instance) {
  std::vector<Tuple> rows = EvaluateQuery(query, instance);
  return std::set<Tuple>(rows.begin(), rows.end());
}

TEST(ServiceTest, EndToEndMatchesOracle) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});

  QueryRequest request;
  request.query = fx.query;
  QueryResponse response = service.Call(request);
  ASSERT_TRUE(response.status.ok()) << response.status;
  ASSERT_TRUE(response.executed);
  ASSERT_NE(response.plan, nullptr);
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(response.epoch, 1u);
  EXPECT_EQ(Rows(response), Oracle(fx.query, *fx.instance));
}

TEST(ServiceTest, RepeatAndRenamedQueriesHitTheCache) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});

  QueryRequest request;
  request.query = fx.query;
  QueryResponse first = service.Call(request);
  ASSERT_TRUE(first.status.ok()) << first.status;
  EXPECT_FALSE(first.cache_hit);

  QueryResponse second = service.Call(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);

  // An α-renamed copy of the same query is the same cache entry.
  auto renamed =
      ParseQuery(*fx.schema, "Q(person) :- Profinfo(person, room, \"smith\")");
  ASSERT_TRUE(renamed.ok()) << renamed.status();
  QueryRequest renamed_request;
  renamed_request.query = *renamed;
  QueryResponse third = service.Call(renamed_request);
  ASSERT_TRUE(third.status.ok());
  EXPECT_TRUE(third.cache_hit);
  EXPECT_EQ(Rows(third), Oracle(fx.query, *fx.instance));

  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.searches, 1u) << "one proof search amortized over 3 calls";
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GT(stats.CacheHitRate(), 0.5);
}

TEST(ServiceTest, BumpEpochInvalidatesCachedPlans) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});
  QueryRequest request;
  request.query = fx.query;
  ASSERT_TRUE(service.Call(request).status.ok());
  ASSERT_TRUE(service.Call(request).cache_hit);

  EXPECT_EQ(service.BumpEpoch(), 2u);
  EXPECT_EQ(service.cache().size(), 0u) << "bump evicts eagerly";

  QueryResponse after = service.Call(request);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit) << "old-epoch plan must not be served";
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_TRUE(service.Call(request).cache_hit) << "re-cached at new epoch";
}

TEST(ServiceTest, RefreshSchemaOnlyBumpsOnRealChange) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});
  const uint64_t fingerprint = service.schema_fingerprint();
  EXPECT_EQ(service.RefreshSchema(), 1u) << "unchanged schema: same epoch";
  EXPECT_EQ(service.schema_fingerprint(), fingerprint);

  // A real edit (new constant) advances the epoch exactly once.
  fx.schema->AddConstant(Value::Int(777));
  EXPECT_EQ(service.RefreshSchema(), 2u);
  EXPECT_NE(service.schema_fingerprint(), fingerprint);
  EXPECT_EQ(service.RefreshSchema(), 2u) << "idempotent until the next edit";
}

TEST(ServiceTest, PlanOnlyRequestsNeedNoSourceFactory) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), nullptr,
                       ServiceOptions{});
  QueryRequest request;
  request.query = fx.query;
  request.execute = false;
  QueryResponse response = service.Call(request);
  ASSERT_TRUE(response.status.ok()) << response.status;
  ASSERT_NE(response.plan, nullptr);
  EXPECT_FALSE(response.executed);
  EXPECT_GT(response.plan->plan.NumAccessCommands(), 0);

  // But asking such a service to execute is a caller error.
  request.execute = true;
  EXPECT_EQ(service.Call(request).status.code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, UnanswerableQueryReturnsNotFound) {
  // R(x) reachable only through an input-requiring method, and nothing
  // supplies the input: provably no plan.
  auto schema = std::make_unique<Schema>();
  RelationId r = *schema->AddRelation("R", 1);
  ASSERT_TRUE(schema->AddAccessMethod("m_r", r, {0}).ok());
  auto accessible =
      AccessibleSchema::Build(*schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  SimpleCostFunction cost(schema.get());
  QueryService service(&*accessible, &cost, nullptr, ServiceOptions{});

  QueryRequest request;
  auto query = ParseQuery(*schema, "Q(x) :- R(x)");
  ASSERT_TRUE(query.ok());
  request.query = *query;
  request.execute = false;
  QueryResponse response = service.Call(request);
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(response.plan, nullptr);
  EXPECT_EQ(service.SnapshotStats().failed, 1u);
}

TEST(ServiceTest, SkipCacheReplansButStillOffersTheResult) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});
  QueryRequest skip;
  skip.query = fx.query;
  skip.skip_cache = true;
  EXPECT_FALSE(service.Call(skip).cache_hit);
  EXPECT_FALSE(service.Call(skip).cache_hit) << "skip_cache always re-plans";
  EXPECT_EQ(service.SnapshotStats().searches, 2u);

  QueryRequest normal;
  normal.query = fx.query;
  EXPECT_TRUE(service.Call(normal).cache_hit)
      << "skip_cache results are still offered to the cache";
}

TEST(ServiceTest, DisabledCacheAlwaysPlans) {
  ServiceFixture fx = MakeProfinfoFixture();
  ServiceOptions options;
  options.cache_enabled = false;
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       options);
  QueryRequest request;
  request.query = fx.query;
  for (int i = 0; i < 2; ++i) {
    QueryResponse response = service.Call(request);
    ASSERT_TRUE(response.status.ok());
    EXPECT_FALSE(response.cache_hit);
    ASSERT_NE(response.plan, nullptr);
    EXPECT_EQ(Rows(response), Oracle(fx.query, *fx.instance));
  }
  EXPECT_EQ(service.SnapshotStats().searches, 2u);
  EXPECT_EQ(service.cache().size(), 0u);
}

TEST(ServiceTest, SubmitAfterShutdownFailsFast) {
  ServiceFixture fx = MakeProfinfoFixture();
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       ServiceOptions{});
  service.Shutdown();
  QueryRequest request;
  request.query = fx.query;
  EXPECT_EQ(service.Call(request).status.code(),
            StatusCode::kFailedPrecondition);
  service.Shutdown();  // idempotent
}

TEST(ServiceTest, ShutdownDrainsQueuedRequests) {
  ServiceFixture fx = MakeProfinfoFixture();
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       options);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 16; ++i) {
    QueryRequest request;
    request.query = fx.query;
    futures.push_back(service.Submit(std::move(request)));
  }
  service.Shutdown();
  for (auto& future : futures) {
    QueryResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status;
  }
}

// --- concurrent stress: mixed queries + mid-run epoch bumps ----------------
//
// 8 client threads fire α-equivalent and distinct queries (some skip_cache)
// at an 8-worker service while a ninth thread repeatedly bumps the epoch.
// Every response must still be correct; counters must balance. Run under
// TSan in CI (see .github/workflows/ci.yml); LCP_SERVICE_STRESS_ITERS scales
// the per-thread iteration count.

int StressIters() {
  const char* env = std::getenv("LCP_SERVICE_STRESS_ITERS");
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 40;
}

TEST(ServiceStressTest, ConcurrentMixedQueriesWithEpochBumps) {
  ServiceFixture fx = MakeProfinfoFixture();
  ServiceOptions options;
  options.num_workers = 8;
  options.cache.num_shards = 4;
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       options);

  // Query mix over the same schema: the scenario query, two α-renamings of
  // it (same cache entry), a projection over the free-access relation, and
  // the boolean variant — each with its oracle answer.
  std::vector<ConjunctiveQuery> queries = {fx.query};
  for (const char* text :
       {"Q(p) :- Profinfo(p, r, \"smith\")",
        "Q(who) :- Profinfo(who, office, \"smith\")",
        "Q(e, l) :- Udirect(e, l)", "Q(l) :- Udirect(e, l)",
        "Q() :- Profinfo(eid, onum, lname)"}) {
    auto query = ParseQuery(*fx.schema, text);
    ASSERT_TRUE(query.ok()) << text << ": " << query.status();
    queries.push_back(std::move(query).value());
  }
  std::vector<std::set<Tuple>> oracles;
  for (const ConjunctiveQuery& query : queries) {
    oracles.push_back(Oracle(query, *fx.instance));
  }

  const int iters = StressIters();
  constexpr int kClientThreads = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> wrong_answers{0};

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        size_t which = static_cast<size_t>(t + i) % queries.size();
        QueryRequest request;
        request.query = queries[which];
        request.skip_cache = (t + i) % 7 == 0;
        QueryResponse response = service.Call(request);
        if (!response.status.ok() || Rows(response) != oracles[which]) {
          wrong_answers.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread bumper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      service.BumpEpoch();
      service.RefreshSchema();  // no schema edit: must be a no-op
      std::this_thread::yield();
    }
  });

  for (std::thread& client : clients) client.join();
  stop.store(true, std::memory_order_release);
  bumper.join();
  service.Shutdown();

  EXPECT_EQ(wrong_answers.load(), 0);
  ServiceStats stats = service.SnapshotStats();
  const uint64_t total =
      static_cast<uint64_t>(kClientThreads) * static_cast<uint64_t>(iters);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.cache_hits + stats.searches, total)
      << "every request either hit the cache or ran a proof search";
  EXPECT_GE(stats.epoch_bumps, 1u);
  EXPECT_EQ(service.epoch(), stats.epoch_bumps + 1);
}

}  // namespace
}  // namespace lcp
