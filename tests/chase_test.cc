#include "lcp/chase/engine.h"

#include <gtest/gtest.h>

#include "lcp/chase/matcher.h"
#include "lcp/schema/parser.h"

namespace lcp {
namespace {

TEST(TermArenaTest, ConstantsInterned) {
  TermArena arena;
  ChaseTermId a = arena.InternConstant(Value::Int(1));
  ChaseTermId b = arena.InternConstant(Value::Int(1));
  ChaseTermId c = arena.InternConstant(Value::Str("1"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(TermArena::IsConstant(a));
  EXPECT_FALSE(TermArena::IsNull(a));
  EXPECT_EQ(arena.ConstantOf(a), Value::Int(1));
}

TEST(TermArenaTest, NullsHaveUniqueDisplayNamesAndDepth) {
  TermArena arena;
  ChaseTermId a = arena.NewNull("x", 0);
  ChaseTermId b = arena.NewNull("x", 3);
  EXPECT_TRUE(TermArena::IsNull(a));
  EXPECT_NE(arena.DisplayName(a), arena.DisplayName(b));
  EXPECT_EQ(arena.DepthOf(a), 0);
  EXPECT_EQ(arena.DepthOf(b), 3);
  EXPECT_EQ(arena.num_nulls(), 2u);
}

TEST(ChaseConfigTest, AddContainsAndIndex) {
  ChaseConfig config;
  Fact f(0, {1, 2});
  EXPECT_TRUE(config.Add(f));
  EXPECT_FALSE(config.Add(f));
  EXPECT_TRUE(config.Contains(f));
  EXPECT_FALSE(config.Contains(Fact(0, {2, 1})));
  EXPECT_EQ(config.FactsOf(0).size(), 1u);
  EXPECT_TRUE(config.FactsOf(7).empty());
  config.Add(Fact(0, {1, 5}));
  EXPECT_EQ(config.TermsAt(0, 0), (std::vector<ChaseTermId>{1}));
  EXPECT_EQ(config.TermsAt(0, 1), (std::vector<ChaseTermId>{2, 5}));
}

TEST(ChaseConfigTest, PositionalIndex) {
  ChaseConfig config;
  config.Add(Fact(0, {1, 2}));
  config.Add(Fact(0, {1, 5}));
  config.Add(Fact(0, {3, 2}));
  config.Add(Fact(1, {1}));
  EXPECT_EQ(config.FactsWith(0, 0, 1), (std::vector<int>{0, 1}));
  EXPECT_EQ(config.FactsWith(0, 1, 2), (std::vector<int>{0, 2}));
  EXPECT_EQ(config.FactsWith(0, 0, 3), (std::vector<int>{2}));
  EXPECT_TRUE(config.FactsWith(0, 0, 9).empty());
  EXPECT_TRUE(config.FactsWith(7, 0, 1).empty());
  EXPECT_EQ(config.FactsWith(1, 0, 1), (std::vector<int>{3}));
  // Duplicate adds leave the index untouched.
  EXPECT_FALSE(config.Add(Fact(0, {1, 2})));
  EXPECT_EQ(config.FactsWith(0, 0, 1), (std::vector<int>{0, 1}));
  // Copies rebuild the positional index lazily and stay independent.
  ChaseConfig copy = config;
  copy.Add(Fact(0, {1, 7}));
  EXPECT_EQ(copy.FactsWith(0, 0, 1), (std::vector<int>{0, 1, 4}));
  EXPECT_EQ(config.FactsWith(0, 0, 1), (std::vector<int>{0, 1}));
  config = copy;
  EXPECT_EQ(config.FactsWith(0, 0, 1), (std::vector<int>{0, 1, 4}));
}

TEST(MatcherTest, FactWindowsRestrictMatches) {
  // A 9-fact chain i -> i+1 over R (above kIndexProbeThreshold, so the
  // matcher seeds from the positional index); windows restrict which fact
  // indexes an atom may use.
  ChaseConfig config;
  for (int i = 1; i <= 9; ++i) {
    config.Add(Fact(0, {i, i + 1}));  // index i - 1
  }
  std::vector<Atom> atoms = {
      Atom(0, {Term::Var("x"), Term::Var("y")}),
      Atom(0, {Term::Var("y"), Term::Var("z")}),
  };
  TermArena arena;
  VariableTable vars;
  auto pattern = CompileAtoms(atoms, vars, arena);
  // Unconstrained: chains (0,1), (1,2), ..., (7,8).
  std::vector<ChaseTermId> assignment(vars.size(), kUnboundTerm);
  int count = 0;
  EnumerateHomomorphisms(pattern, config, assignment,
                         [&](const std::vector<ChaseTermId>&) {
                           ++count;
                           return true;
                         });
  EXPECT_EQ(count, 8);
  // Pin the first atom to the "delta" [7, 9): only chain (7,8) survives.
  std::vector<FactWindow> windows = {FactWindow{7, 9}, FactWindow{0, 9}};
  MatchStats stats;
  MatchOptions options{windows.data(), &stats};
  count = 0;
  EnumerateHomomorphisms(
      pattern, config, assignment,
      [&](const std::vector<ChaseTermId>& full) {
        ++count;
        EXPECT_EQ(full[vars.IndexOf("x")], 8);
        return true;
      },
      options);
  EXPECT_EQ(count, 1);
  EXPECT_GT(stats.index_probes, 0);
}

TEST(MatcherTest, EnumeratesAllHomomorphisms) {
  // Pattern R(x, y), R(y, z) over facts 1->2, 2->3, 2->4.
  ChaseConfig config;
  config.Add(Fact(0, {1, 2}));
  config.Add(Fact(0, {2, 3}));
  config.Add(Fact(0, {2, 4}));
  std::vector<Atom> atoms = {
      Atom(0, {Term::Var("x"), Term::Var("y")}),
      Atom(0, {Term::Var("y"), Term::Var("z")}),
  };
  TermArena arena;
  VariableTable vars;
  auto pattern = CompileAtoms(atoms, vars, arena);
  std::vector<ChaseTermId> assignment(vars.size(), kUnboundTerm);
  int count = 0;
  EnumerateHomomorphisms(pattern, config, assignment,
                         [&](const std::vector<ChaseTermId>&) {
                           ++count;
                           return true;
                         });
  // 1->2->3, 1->2->4, 2->3?no, 2->4?no ... also y->z with (2,3),(3,?) no.
  EXPECT_EQ(count, 2);
  // Assignment restored afterwards.
  for (ChaseTermId t : assignment) EXPECT_EQ(t, kUnboundTerm);
}

TEST(MatcherTest, PreboundAssignmentRestricts) {
  ChaseConfig config;
  config.Add(Fact(0, {1, 2}));
  config.Add(Fact(0, {3, 4}));
  std::vector<Atom> atoms = {Atom(0, {Term::Var("x"), Term::Var("y")})};
  TermArena arena;
  VariableTable vars;
  auto pattern = CompileAtoms(atoms, vars, arena);
  std::vector<ChaseTermId> assignment(vars.size(), kUnboundTerm);
  assignment[vars.IndexOf("x")] = 3;
  EXPECT_TRUE(HasHomomorphism(pattern, config, assignment));
  assignment[vars.IndexOf("x")] = 9;
  EXPECT_FALSE(HasHomomorphism(pattern, config, assignment));
}

TEST(MatcherTest, ConstantSlots) {
  TermArena arena;
  ChaseTermId c = arena.InternConstant(Value::Str("smith"));
  ChaseConfig config;
  config.Add(Fact(0, {1, c}));
  std::vector<Atom> atoms = {Atom(0, {Term::Var("x"), Term::Const("smith")})};
  VariableTable vars;
  auto pattern = CompileAtoms(atoms, vars, arena);
  std::vector<ChaseTermId> assignment(vars.size(), kUnboundTerm);
  EXPECT_TRUE(HasHomomorphism(pattern, config, assignment));

  std::vector<Atom> wrong = {Atom(0, {Term::Var("x"), Term::Const("jones")})};
  VariableTable vars2;
  auto pattern2 = CompileAtoms(wrong, vars2, arena);
  std::vector<ChaseTermId> assignment2(vars2.size(), kUnboundTerm);
  EXPECT_FALSE(HasHomomorphism(pattern2, config, assignment2));
}

TEST(CanonicalDatabaseTest, OneNullPerVariableOneFactPerAtom) {
  Schema schema;
  schema.AddRelation("R", 2).value();
  auto query = ParseQuery(schema, "Q(x) :- R(x, y), R(y, x)");
  ASSERT_TRUE(query.ok());
  TermArena arena;
  CanonicalDatabase canonical = BuildCanonicalDatabase(*query, arena);
  EXPECT_EQ(canonical.config.size(), 2u);
  EXPECT_EQ(canonical.var_to_term.size(), 2u);
  EXPECT_NE(canonical.var_to_term.at("x"), canonical.var_to_term.at("y"));
}

TEST(ChaseEngineTest, RestrictedChaseDoesNotRefireSatisfiedHeads) {
  Schema schema;
  schema.AddRelation("R", 2).value();
  schema.AddRelation("S", 2).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "R(x, y) -> S(x, z)")).ok());
  auto query = ParseQuery(schema, "Q() :- R(a, b), S(a, c)");
  TermArena arena;
  ChaseEngine engine(&schema, &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(*query, arena);
  ChaseOptions options;
  auto stats = engine.Run(schema.constraints(), options, canonical.config);
  ASSERT_TRUE(stats.ok());
  // The head S(a, _) is already witnessed by the canonical S(a, c): no firing.
  EXPECT_EQ(stats->firings, 0);
  EXPECT_TRUE(stats->reached_fixpoint);
}

TEST(ChaseEngineTest, ChainFiresOncePerLink) {
  Schema schema;
  schema.AddRelation("A", 1).value();
  schema.AddRelation("B", 1).value();
  schema.AddRelation("C", 1).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "A(x) -> B(x)")).ok());
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "B(x) -> C(x)")).ok());
  auto query = ParseQuery(schema, "Q() :- A(u)");
  TermArena arena;
  ChaseEngine engine(&schema, &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(*query, arena);
  ChaseOptions options;
  auto stats = engine.Run(schema.constraints(), options, canonical.config);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->firings, 2);
  EXPECT_EQ(canonical.config.size(), 3u);
  // No nulls invented: the constraints are full TGDs.
  EXPECT_EQ(arena.num_nulls(), 1u);
}

TEST(ChaseEngineTest, ExistentialsInventNullsWithDepth) {
  Schema schema;
  schema.AddRelation("R", 2).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "R(x, y) -> R(y, z)")).ok());
  auto query = ParseQuery(schema, "Q() :- R(a, b)");
  TermArena arena;
  ChaseEngine engine(&schema, &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(*query, arena);
  ChaseOptions options;
  options.max_null_depth = 3;
  auto stats = engine.Run(schema.constraints(), options, canonical.config);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->reached_fixpoint);
  EXPECT_EQ(stats->firings, 3);  // depths 1, 2, 3 then capped
  EXPECT_GT(stats->depth_capped_triggers, 0);
}

TEST(ChaseEngineTest, FiringCapRespected) {
  Schema schema;
  schema.AddRelation("R", 2).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "R(x, y) -> R(y, z)")).ok());
  auto query = ParseQuery(schema, "Q() :- R(a, b)");
  TermArena arena;
  ChaseEngine engine(&schema, &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(*query, arena);
  ChaseOptions options;
  options.max_firings = 5;
  options.fail_on_firing_cap = true;
  auto stats = engine.Run(schema.constraints(), options, canonical.config);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);

  TermArena arena2;
  ChaseEngine engine2(&schema, &arena2);
  CanonicalDatabase canonical2 = BuildCanonicalDatabase(*query, arena2);
  options.fail_on_firing_cap = false;
  auto stats2 = engine2.Run(schema.constraints(), options, canonical2.config);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->firings, 5);
  EXPECT_FALSE(stats2->reached_fixpoint);
}

TEST(ChaseEngineTest, GuardedBlockingTerminatesCyclicSet) {
  Schema schema;
  schema.AddRelation("R", 2).value();
  schema.AddRelation("S", 2).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "R(x, y) -> S(y, z)")).ok());
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "S(x, y) -> R(y, z)")).ok());
  auto query = ParseQuery(schema, "Q() :- R(a, b)");
  TermArena arena;
  ChaseEngine engine(&schema, &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(*query, arena);
  ChaseOptions options;
  options.use_guarded_blocking = true;
  options.max_firings = 10000;
  auto stats = engine.Run(schema.constraints(), options, canonical.config);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->reached_fixpoint);
  EXPECT_LT(stats->firings, 10);
  EXPECT_GT(stats->blocked_triggers, 0);
}

TEST(ChaseEngineTest, TgdWithConstantsInHead) {
  Schema schema;
  schema.AddRelation("R", 1).value();
  schema.AddRelation("Tagged", 2).value();
  ASSERT_TRUE(
      schema.AddConstraint(*ParseTgd(schema, "R(x) -> Tagged(x, \"hot\")"))
          .ok());
  auto query = ParseQuery(schema, "Q() :- R(a)");
  TermArena arena;
  ChaseEngine engine(&schema, &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(*query, arena);
  ChaseOptions options;
  auto stats = engine.Run(schema.constraints(), options, canonical.config);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->firings, 1);
  // The Tagged fact carries the interned constant.
  ChaseTermId hot = arena.InternConstant(Value::Str("hot"));
  bool found = false;
  for (const Fact& fact : canonical.config.facts()) {
    if (fact.relation == 1 && fact.terms[1] == hot) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace lcp
