#include "lcp/accessible/accessible_schema.h"

#include <gtest/gtest.h>

#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

Schema BaseSchema() {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  RelationId s = schema.AddRelation("S", 1).value();
  schema.AddAccessMethod("mt_r", r, {0}).value();
  schema.AddAccessMethod("mt_s", s, {}).value();
  schema.AddConstant(Value::Str("smith"));
  schema.AddConstraint(*ParseTgd(schema, "R(x, y) -> S(y)"));
  return schema;
}

TEST(AccessibleSchemaTest, RelationLayoutAndKinds) {
  Schema base = BaseSchema();
  auto acc = AccessibleSchema::Build(base, AccessibleVariant::kStandard);
  ASSERT_TRUE(acc.ok()) << acc.status();
  // 2 base + 2 accessed + 2 inferred + accessible = 7 relations.
  EXPECT_EQ(acc->schema().num_relations(), 7);
  // Base relation ids are preserved.
  EXPECT_EQ(acc->schema().relation(0).name, "R");
  EXPECT_EQ(acc->KindOf(0), AccessibleRelationKind::kBase);
  RelationId accessed_r = acc->AccessedOf(0);
  EXPECT_EQ(acc->schema().relation(accessed_r).name, "AccessedR");
  EXPECT_EQ(acc->KindOf(accessed_r), AccessibleRelationKind::kAccessed);
  EXPECT_EQ(acc->BaseOf(accessed_r), 0);
  RelationId inferred_s = acc->InferredOf(1);
  EXPECT_EQ(acc->schema().relation(inferred_s).name, "InferredAccS");
  EXPECT_EQ(acc->KindOf(inferred_s), AccessibleRelationKind::kInferred);
  EXPECT_EQ(acc->schema().relation(acc->accessible_relation()).arity, 1);
  EXPECT_EQ(acc->KindOf(acc->accessible_relation()),
            AccessibleRelationKind::kAccessible);
  // Constants carried over.
  EXPECT_TRUE(acc->schema().IsSchemaConstant(Value::Str("smith")));
}

TEST(AccessibleSchemaTest, AxiomCounts) {
  Schema base = BaseSchema();
  auto acc = AccessibleSchema::Build(base, AccessibleVariant::kStandard);
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(acc->original_constraints().size(), 1u);
  EXPECT_EQ(acc->inferred_constraints().size(), 1u);
  // One defining axiom per position: R has 2, S has 1.
  EXPECT_EQ(acc->defining_axioms().size(), 3u);
  // One accessibility axiom per method.
  EXPECT_EQ(acc->accessibility_axioms().size(), 2u);
  EXPECT_TRUE(acc->negative_axioms().empty());
  EXPECT_TRUE(acc->bidirectional_axioms().empty());
  EXPECT_EQ(acc->AllAxioms().size(), 7u);
}

TEST(AccessibleSchemaTest, InferredConstraintIsRelocatedCopy) {
  Schema base = BaseSchema();
  auto acc = AccessibleSchema::Build(base, AccessibleVariant::kStandard);
  ASSERT_TRUE(acc.ok());
  const Tgd& copy = acc->inferred_constraints()[0];
  EXPECT_EQ(copy.body[0].relation, acc->InferredOf(0));
  EXPECT_EQ(copy.head[0].relation, acc->InferredOf(1));
  // Variables preserved.
  EXPECT_EQ(copy.body[0].terms, base.constraints()[0].body[0].terms);
}

TEST(AccessibleSchemaTest, AccessibilityAxiomShape) {
  Schema base = BaseSchema();
  auto acc = AccessibleSchema::Build(base, AccessibleVariant::kStandard);
  ASSERT_TRUE(acc.ok());
  // mt_r on R with input {0}: accessible(x0) & R(x0,x1) ->
  //   AccessedR(x0,x1) & InferredAccR(x0,x1).
  const Tgd& axiom = acc->accessibility_axioms()[0];
  ASSERT_EQ(axiom.body.size(), 2u);
  EXPECT_EQ(axiom.body[0].relation, acc->accessible_relation());
  EXPECT_EQ(axiom.body[1].relation, 0);
  ASSERT_EQ(axiom.head.size(), 2u);
  EXPECT_EQ(axiom.head[0].relation, acc->AccessedOf(0));
  EXPECT_EQ(axiom.head[1].relation, acc->InferredOf(0));
  // Free access on S: body is just S(x0).
  const Tgd& free_axiom = acc->accessibility_axioms()[1];
  EXPECT_EQ(free_axiom.body.size(), 1u);
}

TEST(AccessibleSchemaTest, NegativeVariantAxioms) {
  Schema base = BaseSchema();
  auto acc = AccessibleSchema::Build(base, AccessibleVariant::kNegative);
  ASSERT_TRUE(acc.ok());
  // Both R and S have methods, so both get a negative axiom requiring all
  // positions accessible.
  ASSERT_EQ(acc->negative_axioms().size(), 2u);
  const Tgd& neg_r = acc->negative_axioms()[0];
  // InferredAccR(x0,x1) & accessible(x0) & accessible(x1) ->
  //   AccessedR & R.
  EXPECT_EQ(neg_r.body.size(), 3u);
  EXPECT_EQ(neg_r.body[0].relation, acc->InferredOf(0));
  EXPECT_EQ(neg_r.head[1].relation, 0);
}

TEST(AccessibleSchemaTest, BidirectionalVariantAxioms) {
  Schema base = BaseSchema();
  auto acc = AccessibleSchema::Build(base, AccessibleVariant::kBidirectional);
  ASSERT_TRUE(acc.ok());
  // One per method.
  ASSERT_EQ(acc->bidirectional_axioms().size(), 2u);
  const Tgd& bi = acc->bidirectional_axioms()[0];
  EXPECT_EQ(bi.body.size(), 2u);  // InferredAccR + accessible(x0)
  EXPECT_EQ(bi.head[1].relation, 0);
}

TEST(AccessibleSchemaTest, InferredAccQueryAddsAccessibleAtoms) {
  Schema base = BaseSchema();
  auto acc = AccessibleSchema::Build(base, AccessibleVariant::kStandard);
  ASSERT_TRUE(acc.ok());
  auto query = ParseQuery(base, "Q(x) :- R(x, y)");
  ASSERT_TRUE(query.ok());
  ConjunctiveQuery inferred = acc->InferredAccQuery(*query);
  ASSERT_EQ(inferred.atoms.size(), 2u);
  EXPECT_EQ(inferred.atoms[0].relation, acc->InferredOf(0));
  EXPECT_EQ(inferred.atoms[1].relation, acc->accessible_relation());
  EXPECT_EQ(inferred.atoms[1].terms[0], Term::Var("x"));
  EXPECT_EQ(inferred.free_variables, query->free_variables);

  // Boolean query: no accessible atoms added.
  auto boolean = ParseQuery(base, "Q() :- S(v)");
  ConjunctiveQuery inferred_bool = acc->InferredAccQuery(*boolean);
  EXPECT_EQ(inferred_bool.atoms.size(), 1u);
}

TEST(AccessibleSchemaTest, Example3AxiomsFromThePaper) {
  // The accessible schema of Example 1 must contain exactly the rules the
  // paper's Example 3 lists (modulo the fused Accessed->InferredAcc step).
  Scenario scenario = MakeProfinfoScenario(false).value();
  auto acc = AccessibleSchema::Build(*scenario.schema,
                                     AccessibleVariant::kStandard);
  ASSERT_TRUE(acc.ok());
  // Profinfo -> Udirect (original), its InferredAcc copy, 3+2 defining
  // axioms, 2 accessibility axioms.
  EXPECT_EQ(acc->original_constraints().size(), 1u);
  EXPECT_EQ(acc->inferred_constraints().size(), 1u);
  EXPECT_EQ(acc->defining_axioms().size(), 5u);
  EXPECT_EQ(acc->accessibility_axioms().size(), 2u);
}

}  // namespace
}  // namespace lcp
