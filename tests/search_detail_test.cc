// Detailed proof-search behaviours: the §4 translation's deferred cases
// (schema constants as access inputs, repeated variables, several facts
// induced by one access), the Theorem 5 interpolation invariants, and the
// search limits (depth budget, node cap, first-plan mode).

#include <gtest/gtest.h>

#include <set>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/generator.h"
#include "lcp/data/query_eval.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

std::set<Tuple> RunPlanRows(const Plan& plan, const Schema& schema,
                            const Instance& instance) {
  SimulatedSource source(&schema, &instance);
  auto result = ExecutePlan(plan, source);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::set<Tuple>(result->output.rows().begin(),
                         result->output.rows().end());
}

TEST(SearchDetailTest, SchemaConstantAsAccessInput) {
  // Profinfo(eid, onum, lname) with a method keyed on lname; the query pins
  // lname to the schema constant "smith", so the very first access can be
  // made with a constant input — no free relation needed at all.
  Schema schema;
  RelationId profinfo = schema.AddRelation("Profinfo", 3).value();
  schema.AddAccessMethod("mt_by_lname", profinfo, {2}).value();
  schema.AddConstant(Value::Str("smith"));
  ConjunctiveQuery query =
      ParseQuery(schema, "Q(eid) :- Profinfo(eid, onum, \"smith\")").value();
  auto accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  auto found = FindAnyPlan(*accessible, query, 2);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_EQ(found->plan.NumAccessCommands(), 1);
  // The access command carries the constant input.
  const auto* access = std::get_if<AccessCommand>(&found->plan.commands[0]);
  ASSERT_NE(access, nullptr);
  ASSERT_EQ(access->constant_inputs.size(), 1u);
  EXPECT_EQ(access->constant_inputs[0].second, Value::Str("smith"));

  Instance instance(&schema);
  instance.AddFact("Profinfo",
                   {Value::Int(1), Value::Int(11), Value::Str("smith")});
  instance.AddFact("Profinfo",
                   {Value::Int(2), Value::Int(22), Value::Str("jones")});
  EXPECT_EQ(RunPlanRows(found->plan, schema, instance),
            (std::set<Tuple>{{Value::Int(1)}}));
}

TEST(SearchDetailTest, RepeatedVariableInQueryAtom) {
  // Q(x) :- R(x, x): the exposed fact has a repeated chase constant, which
  // the translation turns into a position-equality selection.
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  schema.AddAccessMethod("mt_r", r, {}).value();
  ConjunctiveQuery query = ParseQuery(schema, "Q(x) :- R(x, x)").value();
  auto accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  auto found = FindAnyPlan(*accessible, query, 2);
  ASSERT_TRUE(found.ok()) << found.status();

  Instance instance(&schema);
  instance.AddFact("R", {Value::Int(1), Value::Int(1)});
  instance.AddFact("R", {Value::Int(1), Value::Int(2)});
  instance.AddFact("R", {Value::Int(3), Value::Int(3)});
  EXPECT_EQ(RunPlanRows(found->plan, schema, instance),
            (std::set<Tuple>{{Value::Int(1)}, {Value::Int(3)}}));
}

TEST(SearchDetailTest, OneAccessExposesSeveralInducedFacts) {
  // Q(x, y) :- R(x), R(y): a single free access to R exposes both atoms;
  // the plan must produce the full cross product, via two renamed copies of
  // the same raw access table.
  Schema schema;
  RelationId r = schema.AddRelation("R", 1).value();
  schema.AddAccessMethod("mt_r", r, {}).value();
  ConjunctiveQuery query = ParseQuery(schema, "Q(x, y) :- R(x), R(y)").value();
  auto accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  auto found = FindAnyPlan(*accessible, query, 2);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_EQ(found->plan.NumAccessCommands(), 1);

  Instance instance(&schema);
  instance.AddFact("R", {Value::Int(1)});
  instance.AddFact("R", {Value::Int(2)});
  std::set<Tuple> expected;
  for (int a : {1, 2}) {
    for (int b : {1, 2}) {
      expected.insert({Value::Int(a), Value::Int(b)});
    }
  }
  EXPECT_EQ(RunPlanRows(found->plan, schema, instance), expected);
}

TEST(SearchDetailTest, Theorem5InterpolationInvariants) {
  // Theorem 5's proof invariants, checked empirically on Example 1:
  // (1) if Q(I) is non-empty then the plan's final table is non-empty;
  // (2) every plan output row is an actual answer of Q on I (containment
  //     in Accessed(F_j) instantiates to soundness of the output).
  Scenario scenario = MakeProfinfoScenario(false).value();
  auto accessible = AccessibleSchema::Build(*scenario.schema,
                                            AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  auto found = FindAnyPlan(*accessible, scenario.query, 3);
  ASSERT_TRUE(found.ok());

  for (uint64_t seed : {3u, 11u, 29u}) {
    GeneratorOptions options;
    options.seed = seed;
    options.facts_per_relation = 8;
    options.domain_size = 6;
    auto instance = GenerateInstance(*scenario.schema, options);
    ASSERT_TRUE(instance.ok());
    // Inject query-relevant facts so Q(I) is non-empty.
    ASSERT_TRUE(instance
                    ->AddFact("Profinfo",
                              {Value::Int(static_cast<int64_t>(seed)),
                               Value::Int(7), Value::Str("smith")})
                    .ok());
    ASSERT_TRUE(instance
                    ->AddFact("Udirect",
                              {Value::Int(static_cast<int64_t>(seed)),
                               Value::Str("smith")})
                    .ok());
    ASSERT_TRUE(RepairInstance(*instance, 10000).ok());
    ASSERT_TRUE(SatisfiesConstraints(*instance));

    std::vector<Tuple> oracle = EvaluateQuery(scenario.query, *instance);
    std::set<Tuple> oracle_set(oracle.begin(), oracle.end());
    std::set<Tuple> plan_rows =
        RunPlanRows(found->plan, *scenario.schema, *instance);
    ASSERT_FALSE(oracle_set.empty());
    EXPECT_FALSE(plan_rows.empty()) << "invariant (1), seed " << seed;
    for (const Tuple& row : plan_rows) {
      EXPECT_TRUE(oracle_set.count(row) > 0) << "invariant (2), seed " << seed;
    }
  }
}

TEST(SearchDetailTest, StopAtFirstPlanStopsEarly) {
  Scenario scenario = MakeMultiSourceScenario(4).value();
  auto accessible = AccessibleSchema::Build(*scenario.schema,
                                            AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  SimpleCostFunction cost(scenario.schema.get());
  ProofSearch search(&*accessible, &cost);
  SearchOptions first;
  first.max_access_commands = 5;
  first.stop_at_first_plan = true;
  auto one = search.Run(scenario.query, first);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(one->best.has_value());
  SearchOptions full = first;
  full.stop_at_first_plan = false;
  auto all = search.Run(scenario.query, full);
  ASSERT_TRUE(all.ok());
  EXPECT_LT(one->stats.nodes_created, all->stats.nodes_created);
  // The exhaustive run can only improve the cost.
  EXPECT_LE(all->best->cost, one->best->cost);
}

TEST(SearchDetailTest, NodeCapBoundsTheSearch) {
  Scenario scenario = MakeMultiSourceScenario(5).value();
  auto accessible = AccessibleSchema::Build(*scenario.schema,
                                            AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  SimpleCostFunction cost(scenario.schema.get());
  ProofSearch search(&*accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 6;
  options.prune_by_cost = false;
  options.prune_by_dominance = false;
  options.max_nodes = 10;
  auto outcome = search.Run(scenario.query, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome->stats.nodes_created, 11);
}

TEST(SearchDetailTest, DepthBudgetLimitsPlans) {
  Scenario scenario = MakeChainScenario(3).value();
  auto accessible = AccessibleSchema::Build(*scenario.schema,
                                            AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  SimpleCostFunction cost(scenario.schema.get());
  ProofSearch search(&*accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 2;  // Needs 4.
  auto outcome = search.Run(scenario.query, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->best.has_value());
  EXPECT_GT(outcome->stats.depth_limited, 0);
}

TEST(SearchDetailTest, ExplorationLogRecordsEveryNode) {
  Scenario scenario = MakeProfinfoScenario(false).value();
  auto accessible = AccessibleSchema::Build(*scenario.schema,
                                            AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  SimpleCostFunction cost(scenario.schema.get());
  ProofSearch search(&*accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 3;
  options.collect_exploration_log = true;
  auto outcome = search.Run(scenario.query, options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GE(outcome->exploration_log.size(),
            static_cast<size_t>(outcome->stats.nodes_created));
  EXPECT_NE(outcome->exploration_log[0].find("root"), std::string::npos);
  bool has_success = false;
  for (const std::string& line : outcome->exploration_log) {
    if (line.find("SUCCESS") != std::string::npos) has_success = true;
  }
  EXPECT_TRUE(has_success);
}

TEST(SearchDetailTest, WrongVariantRejected) {
  Scenario scenario = MakeProfinfoScenario(false).value();
  auto accessible = AccessibleSchema::Build(*scenario.schema,
                                            AccessibleVariant::kBidirectional);
  ASSERT_TRUE(accessible.ok());
  SimpleCostFunction cost(scenario.schema.get());
  ProofSearch search(&*accessible, &cost);
  auto outcome = search.Run(scenario.query, SearchOptions{});
  EXPECT_FALSE(outcome.ok());
}


TEST(SearchDetailTest, SameChaseConstantAtTwoInputPositions) {
  // Pairs(a, b) behind a method requiring both positions; Q() :- Pairs(x, x)
  // with the value supplied by a free Keys table. The access command binds
  // the same chase constant to both input positions.
  Schema schema;
  RelationId pairs = schema.AddRelation("Pairs", 2).value();
  RelationId keys = schema.AddRelation("Keys", 1).value();
  schema.AddAccessMethod("mt_pairs", pairs, {0, 1}).value();
  schema.AddAccessMethod("mt_keys", keys, {}).value();
  ASSERT_TRUE(
      schema.AddConstraint(*ParseTgd(schema, "Pairs(a, b) -> Keys(a)")).ok());
  ConjunctiveQuery query = ParseQuery(schema, "Q() :- Pairs(x, x)").value();
  auto accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  auto found = FindAnyPlan(*accessible, query, 2);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_EQ(found->plan.NumAccessCommands(), 2);

  Instance with_loop(&schema);
  ASSERT_TRUE(
      with_loop.AddFact("Pairs", {Value::Int(3), Value::Int(3)}).ok());
  ASSERT_TRUE(with_loop.AddFact("Keys", {Value::Int(3)}).ok());
  ASSERT_TRUE(SatisfiesConstraints(with_loop));
  EXPECT_EQ(RunPlanRows(found->plan, schema, with_loop).size(), 1u);

  Instance no_loop(&schema);
  ASSERT_TRUE(no_loop.AddFact("Pairs", {Value::Int(3), Value::Int(4)}).ok());
  ASSERT_TRUE(no_loop.AddFact("Keys", {Value::Int(3)}).ok());
  ASSERT_TRUE(SatisfiesConstraints(no_loop));
  EXPECT_TRUE(RunPlanRows(found->plan, schema, no_loop).empty());
}


TEST(SearchDetailTest, CandidateOrderDoesNotChangeTheOptimum) {
  // §5 leaves the candidate-selection policy open; any policy must reach
  // the same optimal cost (it only changes the exploration order).
  struct Case {
    Result<Scenario> (*make)();
    int budget;
  };
  auto profinfo = [] { return MakeProfinfoScenario(false); };
  auto telephone = [] { return MakeTelephoneScenario(); };
  auto multisource = [] { return MakeMultiSourceScenario(3); };
  const Case cases[] = {{+profinfo, 3}, {+telephone, 5}, {+multisource, 4}};
  for (const Case& c : cases) {
    auto scenario = c.make();
    ASSERT_TRUE(scenario.ok());
    auto accessible = AccessibleSchema::Build(*scenario->schema,
                                              AccessibleVariant::kStandard);
    ASSERT_TRUE(accessible.ok());
    SimpleCostFunction cost(scenario->schema.get());
    ProofSearch search(&*accessible, &cost);
    double costs[2];
    int i = 0;
    for (CandidateOrder order : {CandidateOrder::kDerivationDepth,
                                 CandidateOrder::kFreeAccessFirst}) {
      SearchOptions options;
      options.max_access_commands = c.budget;
      options.candidate_order = order;
      auto outcome = search.Run(scenario->query, options);
      ASSERT_TRUE(outcome.ok());
      ASSERT_TRUE(outcome->best.has_value());
      costs[i++] = outcome->best->cost;
    }
    EXPECT_DOUBLE_EQ(costs[0], costs[1]) << scenario->name;
  }
}

}  // namespace
}  // namespace lcp
