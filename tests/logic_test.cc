#include <gtest/gtest.h>

#include "lcp/logic/atom.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/logic/containment.h"
#include "lcp/logic/term.h"
#include "lcp/logic/tgd.h"
#include "lcp/logic/value.h"

namespace lcp {
namespace {

TEST(ValueTest, IntAndStringDistinct) {
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_EQ(Value::Int(7), Value::Int(7));
  EXPECT_LT(Value::Int(1), Value::Int(2));
}

TEST(ValueTest, ToStringQuotesStrings) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("smith").ToString(), "\"smith\"");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Str("ab").Hash(), Value::Str("ab").Hash());
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
}

TEST(TermTest, Kinds) {
  Term v = Term::Var("x");
  Term c = Term::Const("smith");
  EXPECT_TRUE(v.is_variable());
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(v.var(), "x");
  EXPECT_EQ(c.constant(), Value::Str("smith"));
  EXPECT_NE(v, c);
  EXPECT_EQ(Term::Var("x"), Term::Var("x"));
  EXPECT_NE(Term::Var("x"), Term::Var("y"));
}

TEST(AtomTest, CollectVariablesInOrderOfFirstOccurrence) {
  std::vector<Atom> atoms = {
      Atom(0, {Term::Var("b"), Term::Const(1), Term::Var("a")}),
      Atom(1, {Term::Var("a"), Term::Var("c")}),
  };
  EXPECT_EQ(CollectVariables(atoms),
            (std::vector<std::string>{"b", "a", "c"}));
}

TEST(ConjunctiveQueryTest, ValidateRejectsUnsafeFreeVariable) {
  ConjunctiveQuery query;
  query.free_variables = {"x"};
  query.atoms = {Atom(0, {Term::Var("y")})};
  EXPECT_FALSE(query.Validate().ok());
}

TEST(ConjunctiveQueryTest, ValidateRejectsRepeatedFreeVariable) {
  ConjunctiveQuery query;
  query.free_variables = {"x", "x"};
  query.atoms = {Atom(0, {Term::Var("x")})};
  EXPECT_FALSE(query.Validate().ok());
}

TEST(ConjunctiveQueryTest, AllVariablesFreeFirst) {
  ConjunctiveQuery query;
  query.free_variables = {"z"};
  query.atoms = {Atom(0, {Term::Var("a"), Term::Var("z")})};
  EXPECT_EQ(query.AllVariables(), (std::vector<std::string>{"z", "a"}));
}

TEST(TgdTest, FrontierAndExistentialVariables) {
  // R(x, y) -> S(y, z)
  Tgd tgd;
  tgd.body = {Atom(0, {Term::Var("x"), Term::Var("y")})};
  tgd.head = {Atom(1, {Term::Var("y"), Term::Var("z")})};
  EXPECT_EQ(tgd.FrontierVariables(), (std::vector<std::string>{"y"}));
  EXPECT_EQ(tgd.ExistentialVariables(), (std::vector<std::string>{"z"}));
}

TEST(TgdTest, GuardedDetection) {
  // Guarded: R(x, y, z) & S(x, y) -> T(z)
  Tgd guarded;
  guarded.body = {
      Atom(0, {Term::Var("x"), Term::Var("y"), Term::Var("z")}),
      Atom(1, {Term::Var("x"), Term::Var("y")})};
  guarded.head = {Atom(2, {Term::Var("z")})};
  EXPECT_TRUE(guarded.IsGuarded());

  // Not guarded: R(x, y) & S(y, z) -> T(x, z)
  Tgd unguarded;
  unguarded.body = {Atom(0, {Term::Var("x"), Term::Var("y")}),
                    Atom(1, {Term::Var("y"), Term::Var("z")})};
  unguarded.head = {Atom(2, {Term::Var("x"), Term::Var("z")})};
  EXPECT_FALSE(unguarded.IsGuarded());
}

TEST(TgdTest, InclusionDependencyDetection) {
  Tgd id;
  id.body = {Atom(0, {Term::Var("x"), Term::Var("y")})};
  id.head = {Atom(1, {Term::Var("y"), Term::Var("z")})};
  EXPECT_TRUE(id.IsInclusionDependency());

  Tgd repeated;
  repeated.body = {Atom(0, {Term::Var("x"), Term::Var("x")})};
  repeated.head = {Atom(1, {Term::Var("x")})};
  EXPECT_FALSE(repeated.IsInclusionDependency());

  Tgd with_constant;
  with_constant.body = {Atom(0, {Term::Var("x"), Term::Const(3)})};
  with_constant.head = {Atom(1, {Term::Var("x")})};
  EXPECT_FALSE(with_constant.IsInclusionDependency());
}

TEST(TgdTest, ValidateRequiresBodyAndHead) {
  Tgd empty_body;
  empty_body.head = {Atom(0, {Term::Var("x")})};
  EXPECT_FALSE(empty_body.Validate().ok());
  Tgd empty_head;
  empty_head.body = {Atom(0, {Term::Var("x")})};
  EXPECT_FALSE(empty_head.Validate().ok());
}

// --- CQ containment (Chandra-Merlin) --------------------------------------

ConjunctiveQuery Q(std::vector<std::string> free, std::vector<Atom> atoms) {
  ConjunctiveQuery query;
  query.free_variables = std::move(free);
  query.atoms = std::move(atoms);
  return query;
}

TEST(ContainmentTest, MoreConstrainedIsContained) {
  // q1(x) :- R(x, x)  is contained in  q2(x) :- R(x, y).
  ConjunctiveQuery q1 = Q({"x"}, {Atom(0, {Term::Var("x"), Term::Var("x")})});
  ConjunctiveQuery q2 = Q({"x"}, {Atom(0, {Term::Var("x"), Term::Var("y")})});
  EXPECT_TRUE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
  EXPECT_FALSE(AreEquivalent(q1, q2));
}

TEST(ContainmentTest, RedundantAtomEquivalent) {
  // R(x, y) ∧ R(x, y') is equivalent to R(x, y).
  ConjunctiveQuery q1 = Q({"x"}, {Atom(0, {Term::Var("x"), Term::Var("y")}),
                                  Atom(0, {Term::Var("x"), Term::Var("z")})});
  ConjunctiveQuery q2 = Q({"x"}, {Atom(0, {Term::Var("x"), Term::Var("y")})});
  EXPECT_TRUE(AreEquivalent(q1, q2));
}

TEST(ContainmentTest, ConstantsMustMatch) {
  ConjunctiveQuery q1 = Q({}, {Atom(0, {Term::Const(1)})});
  ConjunctiveQuery q2 = Q({}, {Atom(0, {Term::Const(2)})});
  EXPECT_FALSE(IsContainedIn(q1, q2));
  ConjunctiveQuery q3 = Q({}, {Atom(0, {Term::Var("x")})});
  EXPECT_TRUE(IsContainedIn(q1, q3));  // specific ⊆ general
  EXPECT_FALSE(IsContainedIn(q3, q1));
}

TEST(ContainmentTest, PathQueries) {
  // Longer path is contained in shorter path (over same start).
  auto path = [](int n) {
    std::vector<Atom> atoms;
    for (int i = 0; i < n; ++i) {
      atoms.push_back(Atom(0, {Term::Var("y" + std::to_string(i)),
                               Term::Var("y" + std::to_string(i + 1))}));
    }
    return Q({"y0"}, std::move(atoms));
  };
  EXPECT_TRUE(IsContainedIn(path(3), path(2)));
  EXPECT_FALSE(IsContainedIn(path(2), path(3)));
}

}  // namespace
}  // namespace lcp
