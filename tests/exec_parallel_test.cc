// Differential tests for the morsel-driven parallel executor: at every
// worker count the engine must be bit-identical to the single-threaded
// vectorized engine and to the row oracle — same tables in the same order,
// same statuses, and the same retry/fault accounting — because parallelism
// only changes who computes a morsel, never what is computed (DESIGN.md
// §13). Tiny morsel_rows settings force the parallel code paths on the
// small randomized scenarios. LCP_EXEC_STRESS_ITERS scales the seeds, and
// the CI thread-sanitize job runs this binary under TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "exec_scenario.h"
#include "lcp/base/budget.h"
#include "lcp/base/clock.h"
#include "lcp/ra/batch.h"
#include "lcp/runtime/executor.h"
#include "lcp/runtime/faults.h"

namespace lcp {
namespace {

using exec_testing::ExpectIdentical;
using exec_testing::ScenarioBuilder;
using exec_testing::StressIters;

constexpr size_t kTinyMorselRows = 4;  // forces parallel paths on ~30-row tables

/// Operator-level stats must also match across worker counts — everything
/// except the counters that *describe* the parallelism itself.
void ExpectExecStatsEqual(const ExecStats& a, const ExecStats& b, int seed) {
  EXPECT_EQ(a.batches, b.batches) << "seed " << seed;
  EXPECT_EQ(a.rows_in, b.rows_in) << "seed " << seed;
  EXPECT_EQ(a.rows_out, b.rows_out) << "seed " << seed;
  EXPECT_EQ(a.probe_hits, b.probe_hits) << "seed " << seed;
  EXPECT_EQ(a.dedup_drops, b.dedup_drops) << "seed " << seed;
  EXPECT_EQ(a.access_batches, b.access_batches) << "seed " << seed;
  EXPECT_EQ(a.access_bindings, b.access_bindings) << "seed " << seed;
  EXPECT_EQ(a.max_batch_rows, b.max_batch_rows) << "seed " << seed;
}

TEST(RowHashIndexTest, PartitionedBuildMatchesSequential) {
  // The partitioned parallel build must reproduce the sequential
  // Insert-in-row-order chain layout bit for bit, for every partitioning.
  std::mt19937_64 prng(42);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 1 + static_cast<size_t>(prng() % 300);
    std::vector<size_t> hashes(n);
    for (size_t& h : hashes) h = prng();  // full-width hashes, natural skew

    RowHashIndex sequential(n);
    for (size_t i = 0; i < n; ++i) {
      sequential.Insert(hashes[i], static_cast<uint32_t>(i));
    }

    for (size_t parts : {1, 2, 3, 4, 7}) {
      RowHashIndex partitioned(n);
      ASSERT_EQ(partitioned.bucket_count(), sequential.bucket_count());
      partitioned.PrepareDense(n);
      const size_t buckets = partitioned.bucket_count();
      for (size_t p = 0; p < parts; ++p) {
        partitioned.FillBucketRange(hashes, buckets * p / parts,
                                    buckets * (p + 1) / parts);
      }
      // Identical candidate chains (rows in the same order) for every hash.
      for (size_t i = 0; i < n; ++i) {
        std::vector<uint32_t> seq_chain, par_chain;
        sequential.ForEachCandidate(hashes[i], [&](uint32_t row) {
          seq_chain.push_back(row);
          return false;
        });
        partitioned.ForEachCandidate(hashes[i], [&](uint32_t row) {
          par_chain.push_back(row);
          return false;
        });
        ASSERT_EQ(seq_chain, par_chain)
            << "round " << round << " parts " << parts << " row " << i;
      }
    }
  }
}

TEST(ExecParallelDifferentialTest, FaultFreeRunsAreBitIdenticalAcrossWorkers) {
  const int iters = StressIters(25);
  for (int seed = 0; seed < iters; ++seed) {
    ScenarioBuilder builder(static_cast<uint64_t>(seed) * 131 + 1);
    Schema schema;
    builder.BuildSchema(schema);
    Instance instance = builder.BuildInstance(schema);
    Plan plan = builder.BuildPlan();

    auto run = [&](int workers) {
      SimulatedSource source(&schema, &instance);
      ExecutionOptions opts;
      opts.engine = ExecutionEngine::kVectorized;
      opts.exec_parallelism = workers;
      opts.morsel_rows = kTinyMorselRows;
      return ExecutePlan(plan, source, opts);
    };

    SimulatedSource row_source(&schema, &instance);
    ExecutionOptions row_opts;
    row_opts.engine = ExecutionEngine::kRowOracle;
    auto row = ExecutePlan(plan, row_source, row_opts);
    auto seq = run(1);
    for (int workers : {2, 4}) {
      auto par = run(workers);
      ASSERT_EQ(seq.ok(), par.ok())
          << "seed " << seed << " workers " << workers
          << ": seq=" << seq.status().message()
          << " par=" << par.status().message();
      ASSERT_EQ(row.ok(), par.ok()) << "seed " << seed;
      if (!seq.ok()) {
        EXPECT_EQ(seq.status().code(), par.status().code()) << "seed " << seed;
        EXPECT_EQ(seq.status().message(), par.status().message())
            << "seed " << seed;
        continue;
      }
      ExpectIdentical(*row, *par, seed);
      ExpectIdentical(*seq, *par, seed);
      ExpectExecStatsEqual(seq->exec, par->exec, seed);
      EXPECT_EQ(par->exec.exec_workers, static_cast<size_t>(workers))
          << "seed " << seed;
    }
  }
}

TEST(ExecParallelDifferentialTest, SeededFaultRunsAreBitIdenticalAcrossWorkers) {
  const int iters = StressIters(20);
  for (int seed = 0; seed < iters; ++seed) {
    ScenarioBuilder builder(static_cast<uint64_t>(seed) * 977 + 3);
    Schema schema;
    builder.BuildSchema(schema);
    Instance instance = builder.BuildInstance(schema);
    Plan plan = builder.BuildPlan();

    FaultProfile profile;
    profile.defaults.transient_failure_rate = 0.3;
    profile.defaults.latency_base_micros = 5;
    if (seed % 2 == 1) profile.defaults.truncation_rate = 0.15;
    if (seed % 5 == 0) {
      profile.permanent_outages.insert(schema.num_access_methods() - 1);
    }

    ExecutionOptions opts;
    opts.engine = ExecutionEngine::kVectorized;
    opts.morsel_rows = kTinyMorselRows;
    opts.retry.max_attempts = (seed % 3 == 0) ? 2 : 16;
    opts.retry.initial_backoff_micros = 10;
    opts.retry.jitter_fraction = 0.4;
    opts.retry.jitter_seed = static_cast<uint64_t>(seed);
    opts.retry.best_effort = (seed % 2 == 0);

    auto run = [&](int workers, FaultStats* fstats) {
      SimulatedSource base(&schema, &instance);
      VirtualClock clock;
      FaultInjectingSource faulty(&base, profile,
                                  static_cast<uint64_t>(seed) * 17 + 5, &clock);
      ExecutionOptions o = opts;
      o.clock = &clock;
      o.exec_parallelism = workers;
      auto result = ExecutePlan(plan, faulty, o);
      *fstats = faulty.stats();
      return result;
    };

    FaultStats seq_fs;
    auto seq = run(1, &seq_fs);
    for (int workers : {2, 4}) {
      FaultStats par_fs;
      auto par = run(workers, &par_fs);
      ASSERT_EQ(seq.ok(), par.ok())
          << "seed " << seed << " workers " << workers
          << ": seq=" << seq.status().message()
          << " par=" << par.status().message();
      // Identical seeded fault schedules: parallel dispatch must issue the
      // same access sequence, so the injector drew the same numbers.
      EXPECT_EQ(seq_fs.attempts, par_fs.attempts) << "seed " << seed;
      EXPECT_EQ(seq_fs.injected_failures, par_fs.injected_failures)
          << "seed " << seed;
      EXPECT_EQ(seq_fs.truncations, par_fs.truncations) << "seed " << seed;
      EXPECT_EQ(seq_fs.simulated_latency_micros,
                par_fs.simulated_latency_micros)
          << "seed " << seed;
      if (!seq.ok()) {
        EXPECT_EQ(seq.status().code(), par.status().code()) << "seed " << seed;
        EXPECT_EQ(seq.status().message(), par.status().message())
            << "seed " << seed;
        continue;
      }
      ExpectIdentical(*seq, *par, seed);
      ExpectExecStatsEqual(seq->exec, par->exec, seed);
    }
  }
}

TEST(ExecParallelDifferentialTest, BreakerScenariosStayIdenticalAcrossWorkers) {
  // Breaker armed → the executor degrades to per-binding dispatch; the
  // worker-count invariance must hold on that path too.
  const int iters = StressIters(8);
  for (int seed = 0; seed < iters; ++seed) {
    ScenarioBuilder builder(static_cast<uint64_t>(seed) * 53 + 11);
    Schema schema;
    builder.BuildSchema(schema);
    Instance instance = builder.BuildInstance(schema);
    Plan plan = builder.BuildPlan();

    FaultProfile profile;
    profile.permanent_outages.insert(schema.num_access_methods() - 1);

    auto run = [&](int workers) {
      SimulatedSource base(&schema, &instance);
      FaultInjectingSource faulty(&base, profile, 3);
      ExecutionOptions o;
      o.engine = ExecutionEngine::kVectorized;
      o.exec_parallelism = workers;
      o.morsel_rows = kTinyMorselRows;
      o.retry.max_attempts = 2;
      o.retry.initial_backoff_micros = 0;
      o.retry.breaker_threshold = 3;
      o.retry.best_effort = true;
      return ExecutePlan(plan, faulty, o);
    };

    auto seq = run(1);
    for (int workers : {2, 4}) {
      auto par = run(workers);
      ASSERT_EQ(seq.ok(), par.ok()) << "seed " << seed << " workers " << workers;
      if (!seq.ok()) {
        EXPECT_EQ(seq.status().code(), par.status().code()) << "seed " << seed;
        continue;
      }
      ExpectIdentical(*seq, *par, seed);
      EXPECT_EQ(seq->retry.breaker_trips, par->retry.breaker_trips)
          << "seed " << seed;
      EXPECT_EQ(seq->retry.breaker_short_circuits,
                par->retry.breaker_short_circuits)
          << "seed " << seed;
    }
  }
}

/// A fixed join-heavy plan big enough that morsel_rows=3 splits every
/// operator: 60 base facts, a self-join through a keyed access, dedup on
/// the union. The schema must be fully built before the Instance is
/// constructed, so facts are filled in separately (FillBigFixedFacts).
Plan BigFixedPlan(Schema& schema) {
  RelationId r = schema.AddRelation("R", 2).value();
  RelationId s = schema.AddRelation("S", 2).value();
  schema.AddAccessMethod("mt_r_free", r, {}, 2.0).value();
  schema.AddAccessMethod("mt_s_by0", s, {0}, 5.0).value();

  Plan plan;
  AccessCommand first;
  first.method = 0;
  first.output_table = "t0";
  first.output_columns = {{"a", 0}, {"b", 1}};
  plan.commands.push_back(first);
  AccessCommand second;
  second.method = 1;
  second.input = RaExpr::Project(RaExpr::TempScan("t0"), {"b"});
  second.input_binding = {{"b", 0}};
  second.output_table = "t1";
  second.output_columns = {{"b", 0}, {"c", 1}};
  plan.commands.push_back(second);
  plan.commands.push_back(QueryCommand{
      "t2", RaExpr::Join(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.commands.push_back(QueryCommand{
      "t3", RaExpr::Union(RaExpr::Project(RaExpr::TempScan("t2"), {"b", "c"}),
                          RaExpr::TempScan("t1"))});
  plan.output_table = "t3";
  plan.output_attrs = {"b", "c"};
  return plan;
}

void FillBigFixedFacts(Instance& instance) {
  for (int i = 0; i < 60; ++i) {
    instance.AddFact(0, Tuple{Value::Int(i), Value::Int(i % 6)});
    instance.AddFact(1, Tuple{Value::Int(i % 6), Value::Int(i % 9)});
  }
}

TEST(ExecParallelTest, TinyMorselsForceManyMorsels) {
  Schema schema;
  Plan plan = BigFixedPlan(schema);
  Instance instance(&schema);
  FillBigFixedFacts(instance);

  SimulatedSource seq_source(&schema, &instance);
  ExecutionOptions seq_opts;
  auto seq = ExecutePlan(plan, seq_source, seq_opts);
  ASSERT_TRUE(seq.ok()) << seq.status();

  SimulatedSource par_source(&schema, &instance);
  ExecutionOptions par_opts;
  par_opts.exec_parallelism = 4;
  par_opts.morsel_rows = 3;
  auto par = ExecutePlan(plan, par_source, par_opts);
  ASSERT_TRUE(par.ok()) << par.status();

  ExpectIdentical(*seq, *par, 0);
  ExpectExecStatsEqual(seq->exec, par->exec, 0);
  // Sequential runs report no parallel activity; the 4-worker run must
  // have split work into many morsels and partitioned its hash builds.
  EXPECT_EQ(seq->exec.morsels, 0u);
  EXPECT_EQ(seq->exec.parallel_build_partitions, 0u);
  EXPECT_EQ(seq->exec.exec_workers, 1u);
  EXPECT_GT(par->exec.morsels, 4u);
  EXPECT_GT(par->exec.parallel_build_partitions, 0u);
  EXPECT_EQ(par->exec.exec_workers, 4u);
}

TEST(ExecParallelTest, PreCancelledTokenAbortsIdentically) {
  // Cancellation is checked at command and morsel boundaries; a token that
  // is already tripped must abort with the same status at every worker
  // count, never a partial ok result.
  Schema schema;
  Plan plan = BigFixedPlan(schema);
  Instance instance(&schema);
  FillBigFixedFacts(instance);

  CancelToken token;
  token.Cancel(StatusCode::kCancelled);

  auto run = [&](int workers) {
    SimulatedSource source(&schema, &instance);
    ExecutionOptions opts;
    opts.exec_parallelism = workers;
    opts.morsel_rows = 3;
    opts.cancel = &token;
    return ExecutePlan(plan, source, opts);
  };

  auto seq = run(1);
  auto par = run(4);
  ASSERT_FALSE(seq.ok());
  ASSERT_FALSE(par.ok());
  EXPECT_EQ(seq.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(par.status().code(), seq.status().code());
  EXPECT_EQ(par.status().message(), seq.status().message());
  EXPECT_EQ(seq.status().message(), "plan execution cancelled between commands");
}

}  // namespace
}  // namespace lcp
