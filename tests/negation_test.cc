// Tests for the Theorem 7 machinery: executable queries with ∃/∀ access
// quantifiers, their direct evaluation, their compilation to USPJ¬ plans,
// and the AcSch¬ proof search they are read off from.

#include "lcp/planner/negation_search.h"

#include <gtest/gtest.h>

#include "lcp/data/query_eval.h"
#include "lcp/planner/executable_query.h"
#include "lcp/runtime/executor.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

/// Schema with one free relation U(x) and one checkable relation R(x).
struct MiniWorld {
  Schema schema;
  RelationId u, r;
  AccessMethodId mt_u, mt_r;
  MiniWorld() {
    u = schema.AddRelation("U", 1).value();
    r = schema.AddRelation("R", 1).value();
    mt_u = schema.AddAccessMethod("mt_u", u, {}).value();
    mt_r = schema.AddAccessMethod("mt_r", r, {0}).value();
  }
};

TEST(ExecutableQueryTest, ExistsChainSemantics) {
  MiniWorld world;
  TermArena arena;
  ChaseTermId x = arena.NewNull("x", 0);
  // ∃x U(x) ∧ R(x)?
  ExecutableQueryPtr query = ExecutableQuery::Exists(
      world.mt_u, {x},
      ExecutableQuery::Exists(world.mt_r, {x}, ExecutableQuery::True()));
  EXPECT_EQ(query->depth(), 2);
  EXPECT_FALSE(query->HasForall());

  Instance instance(&world.schema);
  instance.AddFact(world.u, {Value::Int(1)});
  instance.AddFact(world.u, {Value::Int(2)});
  instance.AddFact(world.r, {Value::Int(2)});
  SimulatedSource source(&world.schema, &instance);
  auto result = EvaluateExecutable(*query, source, arena);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(*result);

  // Without the witness, false.
  Instance no_witness(&world.schema);
  no_witness.AddFact(world.u, {Value::Int(1)});
  no_witness.AddFact(world.r, {Value::Int(9)});
  SimulatedSource source2(&world.schema, &no_witness);
  EXPECT_FALSE(*EvaluateExecutable(*query, source2, arena));
}

TEST(ExecutableQueryTest, ForallSemanticsIncludingVacuousTruth) {
  MiniWorld world;
  TermArena arena;
  ChaseTermId x = arena.NewNull("x", 0);
  // ∃x U(x) ∧ (∀ access R(x) → false): true iff some U-value is NOT in R.
  // "false" is encoded as an access to an always-empty relation via an
  // exists node that cannot match — here we instead test the vacuous case
  // directly with continuation True and an instance-level check.
  ExecutableQueryPtr vacuous = ExecutableQuery::Exists(
      world.mt_u, {x},
      ExecutableQuery::Forall(world.mt_r, {x}, ExecutableQuery::True()));

  Instance instance(&world.schema);
  instance.AddFact(world.u, {Value::Int(1)});
  SimulatedSource source(&world.schema, &instance);
  // R empty: the forall is vacuously true.
  EXPECT_TRUE(*EvaluateExecutable(*vacuous, source, arena));
}

TEST(ExecutableQueryTest, ForallRequiresContinuationWhenFactPresent) {
  MiniWorld world;
  Schema& schema = world.schema;
  RelationId s = schema.AddRelation("S", 1).value();
  AccessMethodId mt_s = schema.AddAccessMethod("mt_s", s, {0}).value();

  TermArena arena;
  ChaseTermId x = arena.NewNull("x", 0);
  // ∃x U(x) ∧ (∀ R(x) → ∃ S(x)): for the picked x, if x ∈ R then x must be
  // in S.
  ExecutableQueryPtr query = ExecutableQuery::Exists(
      world.mt_u, {x},
      ExecutableQuery::Forall(
          world.mt_r, {x},
          ExecutableQuery::Exists(mt_s, {x}, ExecutableQuery::True())));
  EXPECT_TRUE(query->HasForall());

  // Case 1: x=1 in R and in S: true.
  {
    Instance instance(&schema);
    instance.AddFact(world.u, {Value::Int(1)});
    instance.AddFact(world.r, {Value::Int(1)});
    instance.AddFact(s, {Value::Int(1)});
    SimulatedSource source(&schema, &instance);
    EXPECT_TRUE(*EvaluateExecutable(*query, source, arena));
  }
  // Case 2: x=1 in R but not in S: false.
  {
    Instance instance(&schema);
    instance.AddFact(world.u, {Value::Int(1)});
    instance.AddFact(world.r, {Value::Int(1)});
    SimulatedSource source(&schema, &instance);
    EXPECT_FALSE(*EvaluateExecutable(*query, source, arena));
  }
  // Case 3: x=1 not in R: vacuously true regardless of S.
  {
    Instance instance(&schema);
    instance.AddFact(world.u, {Value::Int(1)});
    SimulatedSource source(&schema, &instance);
    EXPECT_TRUE(*EvaluateExecutable(*query, source, arena));
  }
  // Case 4: two U values, one bad, one good: ∃ picks the good one.
  {
    Instance instance(&schema);
    instance.AddFact(world.u, {Value::Int(1)});  // in R, not in S: bad
    instance.AddFact(world.u, {Value::Int(2)});  // not in R: vacuous, good
    instance.AddFact(world.r, {Value::Int(1)});
    SimulatedSource source(&schema, &instance);
    EXPECT_TRUE(*EvaluateExecutable(*query, source, arena));
  }
}

/// The compiled plan must agree with direct evaluation on every instance.
class CompileAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CompileAgreementTest, CompiledPlanAgreesWithEvaluator) {
  MiniWorld world;
  Schema& schema = world.schema;
  RelationId s = schema.AddRelation("S", 1).value();
  AccessMethodId mt_s = schema.AddAccessMethod("mt_s", s, {0}).value();

  TermArena arena;
  ChaseTermId x = arena.NewNull("x", 0);
  ExecutableQueryPtr query = ExecutableQuery::Exists(
      world.mt_u, {x},
      ExecutableQuery::Forall(
          world.mt_r, {x},
          ExecutableQuery::Exists(mt_s, {x}, ExecutableQuery::True())));

  // Parameter selects which subsets of {U,R,S} hold value 1 and 2.
  int mask = GetParam();
  Instance instance(&schema);
  for (int v = 1; v <= 2; ++v) {
    int bits = (mask >> ((v - 1) * 3)) & 7;
    if (bits & 1) instance.AddFact(world.u, {Value::Int(v)});
    if (bits & 2) instance.AddFact(world.r, {Value::Int(v)});
    if (bits & 4) instance.AddFact(s, {Value::Int(v)});
  }

  SimulatedSource eval_source(&schema, &instance);
  bool direct = *EvaluateExecutable(*query, eval_source, arena);

  auto plan = CompileExecutable(*query, schema, arena);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->Language(), PlanLanguage::kUspjNeg);
  SimulatedSource plan_source(&schema, &instance);
  auto run = ExecutePlan(*plan, plan_source);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(!run->output.empty(), direct) << "mask " << mask;
}

INSTANTIATE_TEST_SUITE_P(AllRelationMasks, CompileAgreementTest,
                         ::testing::Range(0, 64));

TEST(NegationSearchTest, FindsPositiveProofOnProfinfoSchema) {
  Scenario scenario = MakeProfinfoScenario(/*boolean_query=*/true).value();
  auto accessible = AccessibleSchema::Build(*scenario.schema,
                                            AccessibleVariant::kNegative);
  ASSERT_TRUE(accessible.ok()) << accessible.status();
  TermArena arena;
  NegSearchOptions options;
  options.max_steps = 3;
  auto outcome =
      FindNegativeProof(*accessible, scenario.query, options, arena);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GE(outcome->steps.size(), 2u);
  ASSERT_NE(outcome->query, nullptr);

  // The executable query answers the boolean query correctly.
  Instance yes(scenario.schema.get());
  yes.AddFact("Profinfo", {Value::Int(1), Value::Int(9), Value::Str("smith")});
  yes.AddFact("Udirect", {Value::Int(1), Value::Str("smith")});
  SimulatedSource yes_source(scenario.schema.get(), &yes);
  EXPECT_TRUE(*EvaluateExecutable(*outcome->query, yes_source, arena));

  Instance no(scenario.schema.get());
  no.AddFact("Udirect", {Value::Int(3), Value::Str("smith")});
  SimulatedSource no_source(scenario.schema.get(), &no);
  EXPECT_FALSE(*EvaluateExecutable(*outcome->query, no_source, arena));

  // And the compiled plan agrees on both instances.
  auto plan = CompileExecutable(*outcome->query, *scenario.schema, arena);
  ASSERT_TRUE(plan.ok()) << plan.status();
  SimulatedSource yes2(scenario.schema.get(), &yes);
  SimulatedSource no2(scenario.schema.get(), &no);
  EXPECT_FALSE(ExecutePlan(*plan, yes2)->output.empty());
  EXPECT_TRUE(ExecutePlan(*plan, no2)->output.empty());
}

TEST(NegationSearchTest, RejectsNonBooleanAndWrongVariant) {
  Scenario scenario = MakeProfinfoScenario(/*boolean_query=*/false).value();
  auto negative = AccessibleSchema::Build(*scenario.schema,
                                          AccessibleVariant::kNegative);
  ASSERT_TRUE(negative.ok());
  TermArena arena;
  NegSearchOptions options;
  EXPECT_FALSE(
      FindNegativeProof(*negative, scenario.query, options, arena).ok());

  Scenario boolean = MakeProfinfoScenario(/*boolean_query=*/true).value();
  auto standard = AccessibleSchema::Build(*boolean.schema,
                                          AccessibleVariant::kStandard);
  ASSERT_TRUE(standard.ok());
  EXPECT_FALSE(
      FindNegativeProof(*standard, boolean.query, options, arena).ok());
}

TEST(NegationSearchTest, UnanswerableStaysUnanswerable) {
  // A single relation behind an input-requiring method with no side doors:
  // even with negative axioms, no proof exists.
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  schema.AddAccessMethod("mt_r", r, {0}).value();
  ConjunctiveQuery query = ParseQuery(schema, "Q() :- R(x, y)").value();
  auto accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kNegative);
  ASSERT_TRUE(accessible.ok());
  TermArena arena;
  NegSearchOptions options;
  options.max_steps = 4;
  auto outcome = FindNegativeProof(*accessible, query, options, arena);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
}

TEST(NegationSearchTest, NegativeStepDerivesBaseFactsThatUnlockTheProof) {
  // Constraints: C(y) -> A(y); A(x) -> B(x); B(x) -> D(x).
  // Access: A free; B has an all-input method; D has an all-input method;
  // C has an all-input method. Query: Q() :- C(y), D(y).
  // A positive-only proof exists (expose A, then C, then D) — but with a
  // small step budget forcing the negative route is not needed; here we
  // check that the kNegative search still finds a correct proof and that
  // the resulting executable query is sound on instances satisfying the
  // constraints.
  Schema schema;
  RelationId a = schema.AddRelation("A", 1).value();
  RelationId b = schema.AddRelation("B", 1).value();
  RelationId c = schema.AddRelation("C", 1).value();
  RelationId d = schema.AddRelation("D", 1).value();
  schema.AddAccessMethod("mt_a", a, {}).value();
  schema.AddAccessMethod("mt_b", b, {0}).value();
  schema.AddAccessMethod("mt_c", c, {0}).value();
  schema.AddAccessMethod("mt_d", d, {0}).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "C(y) -> A(y)")).ok());
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "A(x) -> B(x)")).ok());
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "B(x) -> D(x)")).ok());
  ConjunctiveQuery query = ParseQuery(schema, "Q() :- C(y), D(y)").value();

  auto accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kNegative);
  ASSERT_TRUE(accessible.ok());
  TermArena arena;
  NegSearchOptions options;
  options.max_steps = 4;
  auto outcome = FindNegativeProof(*accessible, query, options, arena);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  // Soundness on a constraint-satisfying instance.
  Instance instance(&schema);
  for (int v : {1, 2}) {
    instance.AddFact(a, {Value::Int(v)});
    instance.AddFact(b, {Value::Int(v)});
    instance.AddFact(d, {Value::Int(v)});
  }
  instance.AddFact(c, {Value::Int(1)});
  ASSERT_TRUE(SatisfiesConstraints(instance));
  SimulatedSource source(&schema, &instance);
  EXPECT_TRUE(*EvaluateExecutable(*outcome->query, source, arena));

  Instance empty(&schema);
  instance.AddFact(a, {Value::Int(5)});
  instance.AddFact(b, {Value::Int(5)});
  instance.AddFact(d, {Value::Int(5)});
  SimulatedSource empty_source(&schema, &empty);
  EXPECT_FALSE(*EvaluateExecutable(*outcome->query, empty_source, arena));
}


TEST(NegationSearchTest, BidirectionalVariantFindsProofs) {
  // Theorem 2's AcSch-bidirectional axioms: the same searches succeed, and
  // the resulting executable queries remain sound on instances satisfying
  // the constraints.
  Scenario scenario = MakeProfinfoScenario(/*boolean_query=*/true).value();
  auto accessible = AccessibleSchema::Build(*scenario.schema,
                                            AccessibleVariant::kBidirectional);
  ASSERT_TRUE(accessible.ok()) << accessible.status();
  TermArena arena;
  NegSearchOptions options;
  options.max_steps = 3;
  auto outcome =
      FindNegativeProof(*accessible, scenario.query, options, arena);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  Instance yes(scenario.schema.get());
  ASSERT_TRUE(yes.AddFact("Profinfo", {Value::Int(1), Value::Int(9),
                                       Value::Str("smith")})
                  .ok());
  ASSERT_TRUE(
      yes.AddFact("Udirect", {Value::Int(1), Value::Str("smith")}).ok());
  SimulatedSource yes_source(scenario.schema.get(), &yes);
  EXPECT_TRUE(*EvaluateExecutable(*outcome->query, yes_source, arena));

  Instance no(scenario.schema.get());
  SimulatedSource no_source(scenario.schema.get(), &no);
  EXPECT_FALSE(*EvaluateExecutable(*outcome->query, no_source, arena));
}

TEST(NegationSearchTest, StandardVariantRejected) {
  Scenario scenario = MakeProfinfoScenario(/*boolean_query=*/true).value();
  auto standard = AccessibleSchema::Build(*scenario.schema,
                                          AccessibleVariant::kStandard);
  ASSERT_TRUE(standard.ok());
  TermArena arena;
  NegSearchOptions options;
  EXPECT_FALSE(
      FindNegativeProof(*standard, scenario.query, options, arena).ok());
}

TEST(ExecutableQueryTest, CompileRejectsNonGroundForall) {
  // A ∀-access whose fact binds a fresh term: evaluable, not compilable.
  MiniWorld world;
  Schema& schema = world.schema;
  RelationId pairs = schema.AddRelation("Pairs", 2).value();
  AccessMethodId mt_pairs =
      schema.AddAccessMethod("mt_pairs", pairs, {0}).value();
  TermArena arena;
  ChaseTermId x = arena.NewNull("x", 0);
  ChaseTermId y = arena.NewNull("y", 0);
  ExecutableQueryPtr query = ExecutableQuery::Exists(
      world.mt_u, {x},
      ExecutableQuery::Forall(
          mt_pairs, {x, y},
          ExecutableQuery::Exists(world.mt_r, {y}, ExecutableQuery::True())));
  auto plan = CompileExecutable(*query, schema, arena);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnimplemented);

  // But direct evaluation handles it: every pair partner of x must be in R.
  Instance instance(&schema);
  instance.AddFact(world.u, {Value::Int(1)});
  instance.AddFact(pairs, {Value::Int(1), Value::Int(5)});
  instance.AddFact(pairs, {Value::Int(1), Value::Int(6)});
  instance.AddFact(world.r, {Value::Int(5)});
  SimulatedSource partial(&schema, &instance);
  EXPECT_FALSE(*EvaluateExecutable(*query, partial, arena));  // 6 not in R
  instance.AddFact(world.r, {Value::Int(6)});
  SimulatedSource full(&schema, &instance);
  EXPECT_TRUE(*EvaluateExecutable(*query, full, arena));
}

}  // namespace
}  // namespace lcp
