// Static plan validation, the cardinality-aware cost model, and the
// invariant that every proof-generated plan passes validation.

#include <gtest/gtest.h>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/plan/cardinality_cost.h"
#include "lcp/plan/validate.h"
#include "lcp/planner/proof_search.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

Schema MakeSchema() {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  RelationId s = schema.AddRelation("S", 2).value();
  schema.AddAccessMethod("mt_r", r, {}).value();
  schema.AddAccessMethod("mt_s", s, {0}).value();
  return schema;
}

Plan GoodPlan() {
  Plan plan;
  AccessCommand first;
  first.method = 0;
  first.output_table = "t0";
  first.output_columns = {{"a", 0}, {"b", 1}};
  plan.commands.push_back(first);
  AccessCommand second;
  second.method = 1;
  second.input = RaExpr::Project(RaExpr::TempScan("t0"), {"b"});
  second.input_binding = {{"b", 0}};
  second.output_table = "t1";
  second.output_columns = {{"b", 0}, {"c", 1}};
  plan.commands.push_back(second);
  plan.commands.push_back(QueryCommand{
      "t2", RaExpr::Join(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.output_table = "t2";
  plan.output_attrs = {"a", "c"};
  return plan;
}

TEST(ValidatePlanTest, AcceptsWellFormedPlan) {
  Schema schema = MakeSchema();
  EXPECT_TRUE(ValidatePlan(GoodPlan(), schema).ok());
}

TEST(ValidatePlanTest, RejectsScanOfUndefinedTable) {
  Schema schema = MakeSchema();
  Plan plan = GoodPlan();
  std::get<QueryCommand>(plan.commands[2]).expr =
      RaExpr::TempScan("nonexistent");
  EXPECT_FALSE(ValidatePlan(plan, schema).ok());
}

TEST(ValidatePlanTest, RejectsUnboundMethodInput) {
  Schema schema = MakeSchema();
  Plan plan = GoodPlan();
  std::get<AccessCommand>(plan.commands[1]).input_binding.clear();
  EXPECT_FALSE(ValidatePlan(plan, schema).ok());
}

TEST(ValidatePlanTest, RejectsBadOutputColumn) {
  Schema schema = MakeSchema();
  Plan plan = GoodPlan();
  std::get<AccessCommand>(plan.commands[0]).output_columns = {{"a", 7}};
  EXPECT_FALSE(ValidatePlan(plan, schema).ok());
}

TEST(ValidatePlanTest, RejectsDuplicateOutputAttribute) {
  Schema schema = MakeSchema();
  Plan plan = GoodPlan();
  std::get<AccessCommand>(plan.commands[0]).output_columns = {{"a", 0},
                                                              {"a", 1}};
  EXPECT_FALSE(ValidatePlan(plan, schema).ok());
}

TEST(ValidatePlanTest, RejectsMissingOutputAttribute) {
  Schema schema = MakeSchema();
  Plan plan = GoodPlan();
  plan.output_attrs = {"zz"};
  EXPECT_FALSE(ValidatePlan(plan, schema).ok());
}

TEST(ValidatePlanTest, RejectsUnionOverMismatchedAttrs) {
  Schema schema = MakeSchema();
  Plan plan = GoodPlan();
  plan.commands.push_back(QueryCommand{
      "t3", RaExpr::Union(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.output_table = "t3";
  plan.output_attrs.clear();
  EXPECT_FALSE(ValidatePlan(plan, schema).ok());
}

// The next four rejections close the holes the plan-IR optimizer's per-pass
// validation relies on (DESIGN.md §11): with unique output tables and
// single-bound input positions, every temp-table reference is unambiguous.

TEST(ValidatePlanTest, RejectsDuplicateOutputTable) {
  Schema schema = MakeSchema();
  Plan plan = GoodPlan();
  // A second producer of "t0" with identical shape: redefinition was
  // silently last-wins before, now it is an error.
  plan.commands.insert(plan.commands.begin() + 1, plan.commands[0]);
  EXPECT_FALSE(ValidatePlan(plan, schema).ok());
}

TEST(ValidatePlanTest, RejectsDuplicateOutputTableAcrossCommandKinds) {
  Schema schema = MakeSchema();
  Plan plan = GoodPlan();
  std::get<QueryCommand>(plan.commands[2]).output_table = "t1";
  plan.output_table = "t1";
  plan.output_attrs = {"a", "c"};
  EXPECT_FALSE(ValidatePlan(plan, schema).ok());
}

TEST(ValidatePlanTest, RejectsInputPositionBoundTwice) {
  Schema schema = MakeSchema();
  Plan plan = GoodPlan();
  auto& access = std::get<AccessCommand>(plan.commands[1]);
  access.input = RaExpr::TempScan("t0");
  access.input_binding = {{"a", 0}, {"b", 0}};  // position 0 bound twice
  EXPECT_FALSE(ValidatePlan(plan, schema).ok());
}

TEST(ValidatePlanTest, RejectsPositionBoundByColumnAndConstant) {
  Schema schema = MakeSchema();
  Plan plan = GoodPlan();
  auto& access = std::get<AccessCommand>(plan.commands[1]);
  // The executor would silently let the constant shadow the column; the
  // validator now refuses the ambiguity outright.
  access.constant_inputs = {{0, Value::Int(7)}};
  EXPECT_FALSE(ValidatePlan(plan, schema).ok());
}

/// Every plan the proof search produces must pass static validation — on
/// every scenario, for every complete plan found.
TEST(ValidatePlanTest, AllProofGeneratedPlansValidate) {
  struct Case {
    Result<Scenario> (*make)();
    int budget;
  };
  auto profinfo = [] { return MakeProfinfoScenario(false); };
  auto telephone = [] { return MakeTelephoneScenario(); };
  auto multisource = [] { return MakeMultiSourceScenario(3); };
  auto chain = [] { return MakeChainScenario(3); };
  const Case cases[] = {{+profinfo, 3}, {+telephone, 5},
                        {+multisource, 4}, {+chain, 4}};
  for (const Case& c : cases) {
    auto scenario = c.make();
    ASSERT_TRUE(scenario.ok());
    auto accessible = AccessibleSchema::Build(*scenario->schema,
                                              AccessibleVariant::kStandard);
    ASSERT_TRUE(accessible.ok());
    SimpleCostFunction cost(scenario->schema.get());
    ProofSearch search(&*accessible, &cost);
    SearchOptions options;
    options.max_access_commands = c.budget;
    options.keep_all_plans = true;
    options.prune_by_cost = false;
    auto outcome = search.Run(scenario->query, options);
    ASSERT_TRUE(outcome.ok());
    ASSERT_FALSE(outcome->all_plans.empty());
    for (const FoundPlan& found : outcome->all_plans) {
      EXPECT_TRUE(ValidatePlan(found.plan, *scenario->schema).ok())
          << scenario->name;
    }
  }
}

TEST(CardinalityCostTest, KeyedAccessCheaperThanScan) {
  Schema schema = MakeSchema();
  CardinalityEstimates estimates;
  estimates.cardinality[0] = 1000;  // R is big
  estimates.cardinality[1] = 1000;  // S is big
  CardinalityCostFunction cost(&schema, estimates);
  Plan plan = GoodPlan();
  // First access: 1 call; second: ~1000 estimated bindings from t0.
  double total = cost.Cost(plan);
  EXPECT_GT(total, 1000.0);
  auto tables = cost.EstimateTables(plan);
  EXPECT_DOUBLE_EQ(tables.at("t0"), 1000.0);
  // Keyed access returns at most one row per binding estimate.
  EXPECT_LE(tables.at("t1"), 1000.0);
}

TEST(CardinalityCostTest, MonotoneInAppendedAccessCommands) {
  Schema schema = MakeSchema();
  CardinalityCostFunction cost(&schema, CardinalityEstimates{});
  Plan plan;
  AccessCommand first;
  first.method = 0;
  first.output_table = "t0";
  first.output_columns = {{"a", 0}, {"b", 1}};
  plan.commands.push_back(first);
  plan.output_table = "t0";
  double one = cost.Cost(plan);
  AccessCommand second;
  second.method = 1;
  second.input = RaExpr::Project(RaExpr::TempScan("t0"), {"b"});
  second.input_binding = {{"b", 0}};
  second.output_table = "t1";
  second.output_columns = {{"c", 1}};
  plan.commands.push_back(second);
  double two = cost.Cost(plan);
  EXPECT_GT(two, one);
}

TEST(CardinalityCostTest, IntersectionShrinksEstimatedBindings) {
  // The Example 5 shape: joining two directory tables before the checking
  // access halves the estimated bindings (overlap 0.5).
  const double dir_costs[3] = {1.0, 1.0, 1.0};
  Scenario scenario =
      MakeMultiSourceScenario(3, dir_costs, /*profinfo_cost=*/10.0).value();
  auto accessible = AccessibleSchema::Build(*scenario.schema,
                                            AccessibleVariant::kStandard)
                        .value();
  CardinalityEstimates estimates;
  estimates.default_cardinality = 1000;
  estimates.join_overlap = 0.5;
  CardinalityCostFunction cardinality(scenario.schema.get(), estimates);
  ProofSearch search(&accessible, &cardinality);
  SearchOptions options;
  options.max_access_commands = 4;
  options.candidate_order = CandidateOrder::kFreeAccessFirst;
  auto outcome = search.Run(scenario.query, options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->best.has_value());
  // The winner uses more than one directory before the check.
  EXPECT_GT(outcome->best->plan.NumAccessCommands(), 2);

  // Under the simple cost model the single-directory plan wins instead.
  SimpleCostFunction simple(scenario.schema.get());
  ProofSearch simple_search(&accessible, &simple);
  auto simple_outcome = simple_search.Run(scenario.query, options);
  ASSERT_TRUE(simple_outcome.ok());
  EXPECT_EQ(simple_outcome->best->plan.NumAccessCommands(), 2);
}

}  // namespace
}  // namespace lcp
