// Sanity checks for the workload scenario builders: they must produce
// well-formed schemas whose queries validate, with the constraint/method
// structure DESIGN.md's experiment index relies on.

#include "lcp/workload/scenarios.h"

#include <gtest/gtest.h>

namespace lcp {
namespace {

TEST(ScenariosTest, ProfinfoShape) {
  auto s = MakeProfinfoScenario(false);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->schema->num_relations(), 2);
  EXPECT_EQ(s->schema->num_access_methods(), 2);
  EXPECT_EQ(s->schema->constraints().size(), 1u);
  EXPECT_TRUE(s->schema->IsSchemaConstant(Value::Str("smith")));
  EXPECT_TRUE(s->schema->ValidateQuery(s->query).ok());
  EXPECT_EQ(s->query.free_variables.size(), 1u);

  auto boolean = MakeProfinfoScenario(true);
  ASSERT_TRUE(boolean.ok());
  EXPECT_TRUE(boolean->query.is_boolean());
}

TEST(ScenariosTest, TelephoneShape) {
  auto s = MakeTelephoneScenario();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->schema->num_relations(), 4);
  EXPECT_EQ(s->schema->num_access_methods(), 4);
  EXPECT_EQ(s->schema->constraints().size(), 5u);
  // All constraints are inclusion-style guarded TGDs.
  EXPECT_TRUE(s->schema->AllConstraintsGuarded());
}

TEST(ScenariosTest, MultiSourceCostsApplied) {
  const double costs[] = {2.5, 7.0};
  auto s = MakeMultiSourceScenario(2, costs, 3.0);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->schema->num_relations(), 3);
  EXPECT_DOUBLE_EQ(
      s->schema->access_method(*s->schema->AccessMethodByName("mt_udirect1"))
          .cost,
      2.5);
  EXPECT_DOUBLE_EQ(
      s->schema->access_method(*s->schema->AccessMethodByName("mt_udirect2"))
          .cost,
      7.0);
  EXPECT_DOUBLE_EQ(
      s->schema->access_method(*s->schema->AccessMethodByName("mt_profinfo"))
          .cost,
      3.0);
  // Profinfo's method takes eid and lname — the positions the directories
  // expose (Figure 1's T3 attributes).
  EXPECT_EQ(
      s->schema->access_method(*s->schema->AccessMethodByName("mt_profinfo"))
          .input_positions,
      (std::vector<int>{0, 2}));
}

TEST(ScenariosTest, ChainStructure) {
  for (int len : {1, 2, 5}) {
    auto s = MakeChainScenario(len);
    ASSERT_TRUE(s.ok()) << len;
    EXPECT_EQ(s->schema->num_relations(), len + 1);
    EXPECT_EQ(static_cast<int>(s->schema->constraints().size()), len);
    // Exactly one free method: the end of the chain.
    int free_methods = 0;
    for (AccessMethodId m = 0; m < s->schema->num_access_methods(); ++m) {
      if (s->schema->access_method(m).is_free_access()) ++free_methods;
    }
    EXPECT_EQ(free_methods, 1);
  }
}

TEST(ScenariosTest, ViewScenarioHasBothInclusionDirections) {
  auto s = MakeViewScenario(3);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->schema->num_relations(), 9);  // 6 base + 3 views
  EXPECT_EQ(s->schema->constraints().size(), 6u);  // fwd + bwd per view
  EXPECT_EQ(s->query.atoms.size(), 6u);
  // Base relations have no methods; views are freely accessible.
  for (RelationId r = 0; r < s->schema->num_relations(); ++r) {
    bool is_view =
        s->schema->relation(r).name[0] == 'V';
    EXPECT_EQ(!s->schema->MethodsOnRelation(r).empty(), is_view)
        << s->schema->relation(r).name;
  }
}

TEST(ScenariosTest, CyclicGuardedIsActuallyCyclicAndGuarded) {
  auto s = MakeCyclicGuardedScenario();
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->schema->AllConstraintsGuarded());
  ASSERT_EQ(s->schema->constraints().size(), 2u);
  // Existential heads: the chase does not terminate without blocking.
  for (const Tgd& tgd : s->schema->constraints()) {
    EXPECT_FALSE(tgd.ExistentialVariables().empty());
  }
}

}  // namespace
}  // namespace lcp
