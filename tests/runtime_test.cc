#include "lcp/runtime/executor.h"

#include <gtest/gtest.h>

#include "lcp/plan/cost.h"
#include "lcp/runtime/source.h"

namespace lcp {
namespace {

Schema MakeSchema() {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  RelationId s = schema.AddRelation("S", 2).value();
  schema.AddAccessMethod("mt_r_free", r, {}, 2.0).value();
  schema.AddAccessMethod("mt_s_by0", s, {0}, 5.0).value();
  return schema;
}

Instance MakeInstance(const Schema& schema) {
  Instance instance(&schema);
  instance.AddFact(0, Tuple{Value::Int(1), Value::Int(10)});
  instance.AddFact(0, Tuple{Value::Int(2), Value::Int(20)});
  instance.AddFact(1, Tuple{Value::Int(10), Value::Int(100)});
  instance.AddFact(1, Tuple{Value::Int(10), Value::Int(101)});
  instance.AddFact(1, Tuple{Value::Int(30), Value::Int(300)});
  return instance;
}

TEST(SimulatedSourceTest, AccessRespectsBindingAndMeters) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema);
  SimulatedSource source(&schema, &instance);

  const auto& all = source.Access(0, {});
  EXPECT_EQ(all.size(), 2u);
  const auto& hits = source.Access(1, {Value::Int(10)});
  EXPECT_EQ(hits.size(), 2u);
  const auto& misses = source.Access(1, {Value::Int(99)});
  EXPECT_TRUE(misses.empty());
  // Repeated identical call counts again in total but not in distinct.
  source.Access(1, {Value::Int(10)});
  EXPECT_EQ(source.total_calls(), 4u);
  EXPECT_EQ(source.distinct_pairs().size(), 3u);
  EXPECT_DOUBLE_EQ(source.charged_cost(), 2.0 + 5.0 * 3);
  source.ResetAccounting();
  EXPECT_EQ(source.total_calls(), 0u);
}

TEST(ExecutorTest, AccessCommandWithInputExpression) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema);
  SimulatedSource source(&schema, &instance);

  Plan plan;
  // t0 <- mt_r_free; columns a (pos 0), b (pos 1).
  AccessCommand first;
  first.method = 0;
  first.output_table = "t0";
  first.output_columns = {{"a", 0}, {"b", 1}};
  plan.commands.push_back(first);
  // t1 <- mt_s_by0 <- project[b](t0); columns b (pos 0), c (pos 1).
  AccessCommand second;
  second.method = 1;
  second.input = RaExpr::Project(RaExpr::TempScan("t0"), {"b"});
  second.input_binding = {{"b", 0}};
  second.output_table = "t1";
  second.output_columns = {{"b", 0}, {"c", 1}};
  plan.commands.push_back(second);
  // t2 := t0 join t1.
  plan.commands.push_back(QueryCommand{
      "t2", RaExpr::Join(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.output_table = "t2";
  plan.output_attrs = {"a", "c"};

  auto result = ExecutePlan(plan, source);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->access_commands, 2);
  // 1 free access + 2 distinct bindings (10, 20).
  EXPECT_EQ(result->source_calls, 3u);
  EXPECT_EQ(result->output.size(), 2u);  // (1,100), (1,101)
  EXPECT_TRUE(result->output.ContainsRow({Value::Int(1), Value::Int(100)}));
  EXPECT_TRUE(result->output.ContainsRow({Value::Int(1), Value::Int(101)}));
}

TEST(ExecutorTest, ConstantInputsAndPositionSelections) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema);
  SimulatedSource source(&schema, &instance);

  Plan plan;
  AccessCommand access;
  access.method = 1;  // mt_s_by0
  access.constant_inputs = {{0, Value::Int(10)}};
  access.output_table = "t0";
  access.output_columns = {{"c", 1}};
  access.position_constants = {{1, Value::Int(101)}};
  plan.commands.push_back(access);
  plan.output_table = "t0";
  plan.output_attrs = {"c"};

  auto result = ExecutePlan(plan, source);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->output.size(), 1u);
  EXPECT_EQ(result->output.rows()[0][0], Value::Int(101));
}

TEST(ExecutorTest, PositionEqualitiesFilterTuples) {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  schema.AddAccessMethod("mt", r, {}).value();
  Instance instance(&schema);
  instance.AddFact(0, Tuple{Value::Int(5), Value::Int(5)});
  instance.AddFact(0, Tuple{Value::Int(5), Value::Int(6)});
  SimulatedSource source(&schema, &instance);

  Plan plan;
  AccessCommand access;
  access.method = 0;
  access.output_table = "t";
  access.output_columns = {{"x", 0}};
  access.position_equalities = {{0, 1}};
  plan.commands.push_back(access);
  plan.output_table = "t";
  plan.output_attrs = {"x"};
  auto result = ExecutePlan(plan, source);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.size(), 1u);
}

TEST(ExecutorTest, DuplicatedOutputColumns) {
  Schema schema;
  RelationId r = schema.AddRelation("R", 1).value();
  schema.AddAccessMethod("mt", r, {}).value();
  Instance instance(&schema);
  instance.AddFact(0, Tuple{Value::Int(3)});
  SimulatedSource source(&schema, &instance);

  Plan plan;
  AccessCommand access;
  access.method = 0;
  access.output_table = "t";
  access.output_columns = {{"x", 0}, {"x_again", 0}};
  plan.commands.push_back(access);
  plan.output_table = "t";
  plan.output_attrs = {"x", "x_again"};
  auto result = ExecutePlan(plan, source);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.rows()[0],
            (Tuple{Value::Int(3), Value::Int(3)}));
}

TEST(ExecutorTest, ErrorsOnUnboundInput) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema);
  SimulatedSource source(&schema, &instance);
  Plan plan;
  AccessCommand access;
  access.method = 1;  // requires input position 0
  access.output_table = "t";
  access.output_columns = {{"c", 1}};
  plan.commands.push_back(access);
  plan.output_table = "t";
  auto result = ExecutePlan(plan, source);
  EXPECT_FALSE(result.ok());
}

TEST(ExecutorTest, ErrorsOnBindingToNonInputPosition) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema);
  SimulatedSource source(&schema, &instance);
  Plan plan;
  AccessCommand access;
  access.method = 1;  // mt_s_by0: only position 0 is an input
  access.input = RaExpr::Singleton();
  access.input_binding = {{"b", 1}};  // position 1 is an output position
  access.output_table = "t";
  access.output_columns = {{"c", 1}};
  plan.commands.push_back(access);
  plan.output_table = "t";
  auto result = ExecutePlan(plan, source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("not an input"), std::string::npos);
}

TEST(ExecutorTest, ErrorsOnMissingInputAttribute) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema);
  SimulatedSource source(&schema, &instance);
  Plan plan;
  AccessCommand first;
  first.method = 0;
  first.output_table = "t0";
  first.output_columns = {{"a", 0}};
  plan.commands.push_back(first);
  AccessCommand second;
  second.method = 1;
  second.input = RaExpr::TempScan("t0");
  second.input_binding = {{"no_such_attr", 0}};
  second.output_table = "t1";
  second.output_columns = {{"c", 1}};
  plan.commands.push_back(second);
  plan.output_table = "t1";
  auto result = ExecutePlan(plan, source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("missing"), std::string::npos);
}

TEST(ExecutorTest, ErrorsOnConstantAtNonInputPosition) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema);
  SimulatedSource source(&schema, &instance);
  Plan plan;
  AccessCommand access;
  access.method = 1;  // mt_s_by0
  access.constant_inputs = {{1, Value::Int(100)}};  // 1 is not an input
  access.output_table = "t";
  access.output_columns = {{"c", 1}};
  plan.commands.push_back(access);
  plan.output_table = "t";
  auto result = ExecutePlan(plan, source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("binds constant"),
            std::string::npos);
}

TEST(ExecutorTest, DefaultExecutionReportsComplete) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema);
  SimulatedSource source(&schema, &instance);
  Plan plan;
  AccessCommand access;
  access.method = 0;
  access.output_table = "t";
  access.output_columns = {{"a", 0}};
  plan.commands.push_back(access);
  plan.output_table = "t";
  plan.output_attrs = {"a"};
  auto result = ExecutePlan(plan, source);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(result->degraded_accesses, 0);
  EXPECT_EQ(result->retry.attempts, 1u);
  EXPECT_EQ(result->retry.failures, 0u);
  EXPECT_TRUE(result->retry.backoff_schedule.empty());
}

TEST(AccessPairHashTest, SharedMethodPairsSpreadBuckets) {
  // Many pairs on one method used to collapse into clustered buckets because
  // the method contribution was a fixed XOR mask. A proper combine must give
  // (near-)distinct hashes for distinct bindings and distinct methods.
  std::unordered_set<size_t> hashes;
  AccessPairHash hash;
  constexpr int kBindings = 1000;
  for (AccessMethodId m = 0; m < 4; ++m) {
    for (int i = 0; i < kBindings; ++i) {
      hashes.insert(hash(AccessPair{m, Tuple{Value::Int(i)}}));
    }
  }
  // All 4000 pairs distinct; allow a handful of benign 64-bit collisions.
  EXPECT_GT(hashes.size(), 4u * kBindings - 4);
  // Same binding under different methods must not collide systematically.
  size_t h0 = hash(AccessPair{0, Tuple{Value::Int(7)}});
  size_t h1 = hash(AccessPair{1, Tuple{Value::Int(7)}});
  EXPECT_NE(h0, h1);
}

TEST(ExecutorTest, ErrorsOnMissingOutputTable) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema);
  SimulatedSource source(&schema, &instance);
  Plan plan;
  plan.output_table = "never_made";
  EXPECT_FALSE(ExecutePlan(plan, source).ok());
}

TEST(ExecutorTest, BooleanPlanOutputsNullaryRow) {
  Schema schema = MakeSchema();
  Instance instance = MakeInstance(schema);
  SimulatedSource source(&schema, &instance);
  Plan plan;
  AccessCommand access;
  access.method = 0;
  access.output_table = "t";
  access.output_columns = {{"a", 0}};
  plan.commands.push_back(access);
  plan.output_table = "t";  // output_attrs empty -> boolean semantics
  auto result = ExecutePlan(plan, source);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->output.attrs().empty());
  EXPECT_EQ(result->output.size(), 1u);
}

TEST(CostFunctionTest, SimpleCostSumsPerAccessCommand) {
  Schema schema = MakeSchema();
  Plan plan;
  AccessCommand a;
  a.method = 0;  // cost 2
  a.output_table = "t0";
  a.output_columns = {{"a", 0}};
  plan.commands.push_back(a);
  AccessCommand b;
  b.method = 1;  // cost 5
  b.output_table = "t1";
  b.output_columns = {{"c", 1}};
  plan.commands.push_back(b);
  plan.commands.push_back(QueryCommand{"t2", RaExpr::TempScan("t0")});
  plan.output_table = "t2";
  SimpleCostFunction cost(&schema);
  EXPECT_DOUBLE_EQ(cost.Cost(plan), 7.0);
  EXPECT_DOUBLE_EQ(cost.MethodCost(1), 5.0);

  WeightedAccessCostFunction weighted(&schema, {{0, 10.0}});
  EXPECT_DOUBLE_EQ(weighted.Cost(plan), 2.0 * 10 + 5.0);
}

TEST(PlanTest, LanguageClassification) {
  Plan spj;
  spj.commands.push_back(QueryCommand{
      "t", RaExpr::Join(RaExpr::TempScan("a"), RaExpr::TempScan("b"))});
  EXPECT_EQ(spj.Language(), PlanLanguage::kSpj);

  Plan uspj = spj;
  uspj.commands.push_back(QueryCommand{
      "u", RaExpr::Union(RaExpr::TempScan("a"), RaExpr::TempScan("b"))});
  EXPECT_EQ(uspj.Language(), PlanLanguage::kUspj);

  Plan neg = uspj;
  neg.commands.push_back(QueryCommand{
      "d", RaExpr::Difference(RaExpr::TempScan("a"), RaExpr::TempScan("b"))});
  EXPECT_EQ(neg.Language(), PlanLanguage::kUspjNeg);
}

}  // namespace
}  // namespace lcp
