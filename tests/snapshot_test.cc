#include "lcp/service/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/base/crc32.h"
#include "lcp/base/file_io.h"
#include "lcp/data/generator.h"
#include "lcp/data/query_eval.h"
#include "lcp/plan/serialize.h"
#include "lcp/plan/validate.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/source.h"
#include "lcp/schema/parser.h"
#include "lcp/service/canonical.h"
#include "lcp/service/service.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "lcp_" + name;
}

/// A profinfo-scenario fixture plus several α-distinct parsed queries, so a
/// single schema yields a multi-entry cache to snapshot.
struct Fixture {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<AccessibleSchema> accessible;
  std::unique_ptr<SimpleCostFunction> cost;
  std::unique_ptr<Instance> instance;
  std::vector<ConjunctiveQuery> queries;

  QueryService::SourceFactory Factory() const {
    const Schema* s = schema.get();
    const Instance* inst = instance.get();
    return [s, inst] { return std::make_unique<SimulatedSource>(s, inst); };
  }
};

Fixture MakeFixture() {
  auto scenario = MakeProfinfoScenario(false);
  EXPECT_TRUE(scenario.ok()) << scenario.status();
  Fixture fx;
  fx.schema = std::move(scenario->schema);
  fx.queries.push_back(scenario->query);
  auto accessible =
      AccessibleSchema::Build(*fx.schema, AccessibleVariant::kStandard);
  EXPECT_TRUE(accessible.ok()) << accessible.status();
  fx.accessible =
      std::make_unique<AccessibleSchema>(std::move(accessible).value());
  fx.cost = std::make_unique<SimpleCostFunction>(fx.schema.get());
  GeneratorOptions gen;
  gen.seed = 42;
  gen.facts_per_relation = 12;
  gen.domain_size = 15;
  auto instance = GenerateInstance(*fx.schema, gen);
  EXPECT_TRUE(instance.ok()) << instance.status();
  fx.instance = std::make_unique<Instance>(std::move(instance).value());
  // Distinct fingerprints over one schema (Udirect is freely accessible).
  for (const char* text : {
           "Q(e, l) :- Udirect(e, l)",
           "Q(l) :- Udirect(e, l)",
           "Q(e) :- Udirect(e, \"smith\")",
       }) {
    auto query = ParseQuery(*fx.schema, text);
    EXPECT_TRUE(query.ok()) << query.status();
    fx.queries.push_back(std::move(query).value());
  }
  return fx;
}

/// Plans `query` with an exhaustive proof search and returns the best plan.
Plan PlanFor(const Fixture& fx, const ConjunctiveQuery& query) {
  ProofSearch search(fx.accessible.get(), fx.cost.get());
  auto outcome = search.Run(query, SearchOptions{});
  EXPECT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->best.has_value());
  return outcome->best->plan;
}

std::set<Tuple> Rows(const QueryResponse& response) {
  return std::set<Tuple>(response.execution.output.rows().begin(),
                         response.execution.output.rows().end());
}

// ---------------------------------------------------------------------------
// Plan codec: exact round trips, structural equality, defensive decoding.
// ---------------------------------------------------------------------------

TEST(PlanCodecTest, RoundTripIsExactAcrossScenarios) {
  // Plans from several scenarios exercise every command/expression shape the
  // planner emits (free accesses, bound accesses, joins, selections over
  // constants, unions from multi-source detours).
  std::vector<Result<Scenario>> scenarios;
  scenarios.push_back(MakeProfinfoScenario(false));
  scenarios.push_back(MakeProfinfoScenario(true));
  scenarios.push_back(MakeTelephoneScenario());
  scenarios.push_back(MakeChainScenario(3));
  scenarios.push_back(MakeMultiSourceScenario(3));
  scenarios.push_back(MakeViewScenario(2));
  for (auto& scenario : scenarios) {
    ASSERT_TRUE(scenario.ok()) << scenario.status();
    auto accessible =
        AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
    ASSERT_TRUE(accessible.ok()) << accessible.status();
    SimpleCostFunction cost(scenario->schema.get());
    ProofSearch search(&*accessible, &cost);
    auto outcome = search.Run(scenario->query, SearchOptions{});
    ASSERT_TRUE(outcome.ok()) << scenario->name << ": " << outcome.status();
    ASSERT_TRUE(outcome->best.has_value()) << scenario->name;
    const Plan& plan = outcome->best->plan;

    std::string encoded;
    EncodePlan(plan, encoded);
    Result<Plan> decoded = DecodePlan(encoded);
    ASSERT_TRUE(decoded.ok()) << scenario->name << ": " << decoded.status();
    EXPECT_TRUE(*decoded == plan) << scenario->name;
    EXPECT_EQ(PlanStructuralHash(*decoded), PlanStructuralHash(plan));

    // The decoded plan is as valid as the original.
    EXPECT_TRUE(ValidatePlan(*decoded, *scenario->schema).ok())
        << scenario->name;

    // Determinism: re-encoding the decoded plan is byte-identical.
    std::string re_encoded;
    EncodePlan(*decoded, re_encoded);
    EXPECT_EQ(re_encoded, encoded) << scenario->name;
  }
}

TEST(PlanCodecTest, StructuralEqualityDetectsDifferences) {
  Fixture fx = MakeFixture();
  Plan a = PlanFor(fx, fx.queries[0]);
  Plan b = PlanFor(fx, fx.queries[1]);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_NE(PlanStructuralHash(a), PlanStructuralHash(b));

  Plan renamed_output = a;
  renamed_output.output_table = a.output_table + "_x";
  EXPECT_FALSE(a == renamed_output);
}

TEST(PlanCodecTest, EveryTruncationFailsCleanly) {
  Fixture fx = MakeFixture();
  std::string encoded;
  EncodePlan(PlanFor(fx, fx.queries[0]), encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    Result<Plan> decoded = DecodePlan(std::string_view(encoded).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncation at " << len
                               << " decoded as a full plan";
  }
  // Trailing garbage is rejected too (framing bugs must not pass silently).
  Result<Plan> padded = DecodePlan(encoded + std::string(1, '\0'));
  EXPECT_FALSE(padded.ok());
}

// ---------------------------------------------------------------------------
// Snapshot encode/decode at the buffer level.
// ---------------------------------------------------------------------------

constexpr uint64_t kEpoch = uint64_t{1} << 32;  // Schema epoch 1, avail 0.
constexpr uint64_t kSchemaFp = 0x1234abcd5678ef00ULL;

/// Builds a cache holding one planned entry per fixture query.
void FillCache(const Fixture& fx, PlanCache& cache) {
  for (const ConjunctiveQuery& query : fx.queries) {
    Plan plan = PlanFor(fx, query);
    QueryFingerprint fp = CanonicalizeQuery(query);
    cache.Insert(fp, kEpoch, std::move(plan), 1.0);
  }
}

TEST(SnapshotTest, RoundTripRestoresEveryEntry) {
  Fixture fx = MakeFixture();
  PlanCache cache(PlanCache::Options{});
  FillCache(fx, cache);
  ASSERT_EQ(cache.size(), fx.queries.size());

  SnapshotWriteStats write_stats;
  std::string snapshot =
      EncodeSnapshot(cache.Entries(), kEpoch, kSchemaFp, &write_stats);
  EXPECT_EQ(write_stats.entries_persisted, fx.queries.size());
  EXPECT_EQ(write_stats.bytes, snapshot.size());

  PlanCache restored(PlanCache::Options{});
  SnapshotLoadStats load_stats = DecodeSnapshotInto(
      snapshot, kSchemaFp, fx.accessible->base(), kEpoch, restored);
  EXPECT_TRUE(load_stats.header_ok);
  EXPECT_EQ(load_stats.entries_loaded, fx.queries.size());
  EXPECT_EQ(load_stats.entries_rejected_corrupt, 0u);
  EXPECT_EQ(load_stats.entries_rejected_stale, 0u);

  // Every restored entry is plan-identical to the original, under the same
  // recomputed fingerprint, at the caller's serving epoch.
  for (const ConjunctiveQuery& query : fx.queries) {
    QueryFingerprint fp = CanonicalizeQuery(query);
    auto original = cache.Lookup(fp, kEpoch);
    auto loaded = restored.Lookup(fp, kEpoch);
    ASSERT_NE(original, nullptr);
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(original->plan == loaded->plan);
    EXPECT_EQ(original->cost, loaded->cost);
    EXPECT_EQ(loaded->epoch, kEpoch);
    EXPECT_FALSE(loaded->detour);
  }
}

TEST(SnapshotTest, DetourAndStaleEpochEntriesAreNotPersisted) {
  Fixture fx = MakeFixture();
  PlanCache cache(PlanCache::Options{});
  Plan plan = PlanFor(fx, fx.queries[0]);
  QueryFingerprint fp0 = CanonicalizeQuery(fx.queries[0]);
  QueryFingerprint fp1 = CanonicalizeQuery(fx.queries[1]);
  QueryFingerprint fp2 = CanonicalizeQuery(fx.queries[2]);
  cache.Insert(fp0, kEpoch, plan, 1.0);
  cache.Insert(fp1, kEpoch, PlanFor(fx, fx.queries[1]), 1.0,
               /*detour=*/true);
  cache.Insert(fp2, kEpoch - 1, PlanFor(fx, fx.queries[2]), 1.0);

  SnapshotWriteStats stats;
  EncodeSnapshot(cache.Entries(), kEpoch, kSchemaFp, &stats);
  EXPECT_EQ(stats.entries_persisted, 1u);
  EXPECT_EQ(stats.entries_skipped_detour, 1u);
  EXPECT_EQ(stats.entries_skipped_epoch, 1u);
}

TEST(SnapshotTest, SchemaFingerprintMismatchRejectsWholeFile) {
  Fixture fx = MakeFixture();
  PlanCache cache(PlanCache::Options{});
  FillCache(fx, cache);
  std::string snapshot = EncodeSnapshot(cache.Entries(), kEpoch, kSchemaFp);

  PlanCache restored(PlanCache::Options{});
  SnapshotLoadStats stats = DecodeSnapshotInto(
      snapshot, kSchemaFp + 1, fx.accessible->base(), kEpoch, restored);
  EXPECT_FALSE(stats.header_ok);
  EXPECT_EQ(stats.entries_loaded, 0u);
  EXPECT_EQ(restored.size(), 0u);
}

TEST(SnapshotTest, TornTailRecoversTheValidPrefix) {
  Fixture fx = MakeFixture();
  PlanCache cache(PlanCache::Options{});
  FillCache(fx, cache);
  std::string snapshot = EncodeSnapshot(cache.Entries(), kEpoch, kSchemaFp);

  // Chop the last 3 bytes: the final frame is torn, everything before it is
  // intact — exactly what a crash mid-append (without the atomic rename)
  // would leave.
  std::string torn = snapshot.substr(0, snapshot.size() - 3);
  PlanCache restored(PlanCache::Options{});
  SnapshotLoadStats stats = DecodeSnapshotInto(
      torn, kSchemaFp, fx.accessible->base(), kEpoch, restored);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_EQ(stats.entries_loaded, fx.queries.size() - 1);
  EXPECT_EQ(stats.entries_rejected_corrupt, 1u);
  EXPECT_EQ(restored.size(), fx.queries.size() - 1);
}

TEST(SnapshotTest, FlippedPayloadByteSkipsOnlyThatEntry) {
  Fixture fx = MakeFixture();
  PlanCache cache(PlanCache::Options{});
  FillCache(fx, cache);
  std::string snapshot = EncodeSnapshot(cache.Entries(), kEpoch, kSchemaFp);

  // Flip one bit inside the *first* frame's payload (just past the header
  // and the 8-byte frame header): CRC catches it, later frames still load.
  std::string corrupt = snapshot;
  corrupt[8 + 1 + 8 + 8 + 2] ^= 0x40;
  PlanCache restored(PlanCache::Options{});
  SnapshotLoadStats stats = DecodeSnapshotInto(
      corrupt, kSchemaFp, fx.accessible->base(), kEpoch, restored);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_EQ(stats.entries_rejected_corrupt, 1u);
  EXPECT_EQ(stats.entries_loaded, fx.queries.size() - 1);
}

/// Seeded corruption fuzzing: random bit flips and truncations over a valid
/// snapshot must never crash the loader (ASan/UBSan jobs make this bite),
/// never load more entries than were written, and keep the books consistent.
/// LCP_SNAPSHOT_FUZZ_ITERS scales the seed count (CI nightly boosts it).
TEST(SnapshotTest, FuzzCorruptionNeverCrashesAndNeverOverloads) {
  Fixture fx = MakeFixture();
  PlanCache cache(PlanCache::Options{});
  FillCache(fx, cache);
  const std::string snapshot =
      EncodeSnapshot(cache.Entries(), kEpoch, kSchemaFp);
  const uint64_t total = fx.queries.size();

  const int iters = EnvInt("LCP_SNAPSHOT_FUZZ_ITERS", 200);
  const uint64_t base_seed =
      static_cast<uint64_t>(EnvInt("LCP_SNAPSHOT_FUZZ_SEED", 1));
  for (int iter = 0; iter < iters; ++iter) {
    std::mt19937_64 rng(base_seed + static_cast<uint64_t>(iter));
    std::string mutated = snapshot;
    // Mutation menu: truncate, flip bits, or both; occasionally splice in
    // garbage to stress frame resynchronization.
    const int mode = static_cast<int>(rng() % 4);
    if (mode == 0 || mode == 2) {
      mutated.resize(rng() % (mutated.size() + 1));
    }
    if (mode == 1 || mode == 2) {
      const int flips = 1 + static_cast<int>(rng() % 8);
      for (int f = 0; f < flips && !mutated.empty(); ++f) {
        mutated[rng() % mutated.size()] ^=
            static_cast<char>(1 << (rng() % 8));
      }
    }
    if (mode == 3 && !mutated.empty()) {
      const size_t at = rng() % mutated.size();
      const size_t len = rng() % 64;
      std::string garbage(len, '\0');
      for (char& c : garbage) c = static_cast<char>(rng());
      mutated.insert(at, garbage);
    }

    PlanCache restored(PlanCache::Options{});
    SnapshotLoadStats stats = DecodeSnapshotInto(
        mutated, kSchemaFp, fx.accessible->base(), kEpoch, restored);
    // The loader must degrade, never amplify: no more entries than written,
    // and every admitted entry really is resident.
    ASSERT_LE(stats.entries_loaded, total) << "seed " << base_seed + iter;
    ASSERT_LE(restored.size(), stats.entries_loaded)
        << "seed " << base_seed + iter;
    if (!stats.header_ok) {
      ASSERT_EQ(stats.entries_loaded, 0u) << "seed " << base_seed + iter;
    }
  }
}

// ---------------------------------------------------------------------------
// File-level: atomic writes, missing files, and service integration.
// ---------------------------------------------------------------------------

TEST(SnapshotFileTest, MissingFileIsACleanColdStart) {
  Fixture fx = MakeFixture();
  PlanCache cache(PlanCache::Options{});
  SnapshotLoadStats stats =
      LoadSnapshotFile(TempPath("does_not_exist.snap"), kSchemaFp,
                       fx.accessible->base(), kEpoch, cache);
  EXPECT_FALSE(stats.found);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SnapshotFileTest, WriteThenLoadRoundTrips) {
  Fixture fx = MakeFixture();
  PlanCache cache(PlanCache::Options{});
  FillCache(fx, cache);
  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(
      WriteSnapshotFile(path, cache.Entries(), kEpoch, kSchemaFp).ok());

  PlanCache restored(PlanCache::Options{});
  SnapshotLoadStats stats = LoadSnapshotFile(path, kSchemaFp,
                                             fx.accessible->base(), kEpoch,
                                             restored);
  EXPECT_TRUE(stats.found);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_EQ(stats.entries_loaded, fx.queries.size());
  std::remove(path.c_str());
}

/// The kill-restart differential test: a snapshot-warmed restart serves the
/// same workload identically to the never-restarted service — same rows,
/// zero proof searches, every request a cache hit.
TEST(SnapshotFileTest, KillRestartServesIdenticallyWithZeroSearches) {
  Fixture fx = MakeFixture();
  const std::string path = TempPath("kill_restart.snap");
  std::remove(path.c_str());

  ServiceOptions options;
  options.num_workers = 2;
  options.snapshot_path = path;

  std::vector<std::set<Tuple>> first_rows;
  {
    QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                         options);
    for (const ConjunctiveQuery& query : fx.queries) {
      QueryRequest request;
      request.query = query;
      QueryResponse response = service.Call(request);
      ASSERT_TRUE(response.status.ok()) << response.status;
      first_rows.push_back(Rows(response));
    }
    ServiceStats stats = service.SnapshotStats();
    EXPECT_EQ(stats.searches, fx.queries.size());
    service.Shutdown();  // kDrain writes the final snapshot.
    EXPECT_EQ(service.SnapshotStats().snapshots_written, 1u);
    EXPECT_EQ(service.SnapshotStats().snapshot_entries_persisted,
              fx.queries.size());
  }

  // "Kill" was the destructor; restart warm from the snapshot.
  QueryService restarted(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                         options);
  {
    ServiceStats stats = restarted.SnapshotStats();
    EXPECT_EQ(stats.snapshots_loaded, 1u);
    EXPECT_EQ(stats.snapshot_entries_loaded, fx.queries.size());
    EXPECT_EQ(stats.snapshot_entries_rejected_corrupt, 0u);
    EXPECT_EQ(stats.snapshot_entries_rejected_stale, 0u);
  }
  for (size_t i = 0; i < fx.queries.size(); ++i) {
    QueryRequest request;
    request.query = fx.queries[i];
    QueryResponse response = restarted.Call(request);
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_TRUE(response.cache_hit) << "query " << i
                                    << " should be warmed from the snapshot";
    EXPECT_EQ(Rows(response), first_rows[i]) << "query " << i;
  }
  ServiceStats stats = restarted.SnapshotStats();
  EXPECT_EQ(stats.searches, 0u)
      << "a snapshot-warmed restart must not re-prove the working set";
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, CorruptedSnapshotDegradesToColdStartWithCounters) {
  Fixture fx = MakeFixture();
  const std::string path = TempPath("corrupt.snap");
  std::remove(path.c_str());
  ServiceOptions options;
  options.snapshot_path = path;
  {
    QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                         options);
    for (const ConjunctiveQuery& query : fx.queries) {
      QueryRequest request;
      request.query = query;
      ASSERT_TRUE(service.Call(request).status.ok());
    }
  }  // Destructor drains and writes the snapshot.

  // Corrupt the tail on disk: simulates a torn write from a crashed process
  // that bypassed the atomic-rename path (e.g. a partial copy).
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  std::string torn = data->substr(0, data->size() - 5);
  ASSERT_TRUE(AtomicWriteFile(path, torn).ok());

  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       options);
  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.snapshots_loaded, 1u);
  EXPECT_EQ(stats.snapshot_entries_loaded, fx.queries.size() - 1);
  EXPECT_EQ(stats.snapshot_entries_rejected_corrupt, 1u);

  // No request errors: the lost entry just re-plans.
  for (const ConjunctiveQuery& query : fx.queries) {
    QueryRequest request;
    request.query = query;
    QueryResponse response = service.Call(request);
    EXPECT_TRUE(response.status.ok()) << response.status;
  }
  EXPECT_EQ(service.SnapshotStats().searches, 1u);
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, GarbageFileIsRejectedWholeAndServiceStartsCold) {
  Fixture fx = MakeFixture();
  const std::string path = TempPath("garbage.snap");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this is not a snapshot file at all, but it is long enough";
  }
  ServiceOptions options;
  options.snapshot_path = path;
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       options);
  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.snapshots_loaded, 0u);
  EXPECT_EQ(stats.snapshots_rejected, 1u);

  QueryRequest request;
  request.query = fx.queries[0];
  EXPECT_TRUE(service.Call(request).status.ok());
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, SchemaChangeInvalidatesSnapshotOnRestart) {
  Fixture fx = MakeFixture();
  const std::string path = TempPath("schema_change.snap");
  std::remove(path.c_str());
  ServiceOptions options;
  options.snapshot_path = path;
  {
    QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                         options);
    QueryRequest request;
    request.query = fx.queries[0];
    ASSERT_TRUE(service.Call(request).status.ok());
  }

  // Restart against a *different* schema (fresh fixture with an extra
  // relation): the stored fingerprint no longer matches, so the whole file
  // is rejected — plans proved under yesterday's constraints are not
  // trusted today.
  Fixture changed = MakeFixture();
  ASSERT_TRUE(changed.schema->AddRelation("Extra", 1).ok());
  auto accessible =
      AccessibleSchema::Build(*changed.schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();
  changed.accessible =
      std::make_unique<AccessibleSchema>(std::move(accessible).value());
  QueryService service(changed.accessible.get(), changed.cost.get(),
                       changed.Factory(), options);
  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.snapshots_loaded, 0u);
  EXPECT_EQ(stats.snapshots_rejected, 1u);
  EXPECT_EQ(service.cache().stats().entries, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, IntervalSnapshotsFireOnTheVirtualClock) {
  Fixture fx = MakeFixture();
  const std::string path = TempPath("interval.snap");
  std::remove(path.c_str());
  SharedVirtualClock clock(1000);
  ServiceOptions options;
  options.num_workers = 1;
  options.clock = &clock;
  options.snapshot_path = path;
  options.snapshot_interval_micros = 1'000'000;
  QueryService service(fx.accessible.get(), fx.cost.get(), fx.Factory(),
                       options);

  QueryRequest request;
  request.query = fx.queries[0];
  ASSERT_TRUE(service.Call(request).status.ok());
  EXPECT_EQ(service.SnapshotStats().snapshots_written, 0u)
      << "interval not yet elapsed";

  clock.Advance(2'000'000);
  request.query = fx.queries[1];
  ASSERT_TRUE(service.Call(request).status.ok());
  ServiceStats stats = service.SnapshotStats();
  EXPECT_EQ(stats.snapshots_written, 1u)
      << "completion past the due time writes exactly one snapshot";
  EXPECT_GE(stats.snapshot_entries_persisted, 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// PlanCache occupancy gauges (per-shard entries, approximate bytes).
// ---------------------------------------------------------------------------

TEST(PlanCacheGaugesTest, EntriesAndBytesTrackInsertAndEvict) {
  Fixture fx = MakeFixture();
  PlanCache::Options cache_options;
  cache_options.num_shards = 4;
  cache_options.capacity_per_shard = 8;
  PlanCache cache(cache_options);
  FillCache(fx, cache);

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, fx.queries.size());
  EXPECT_EQ(stats.shard_entries.size(), 4u);
  uint64_t across_shards = 0;
  for (uint64_t n : stats.shard_entries) across_shards += n;
  EXPECT_EQ(across_shards, stats.entries);
  EXPECT_GT(stats.approx_bytes, 0u);
  // The gauge approximates the snapshot size: same order of magnitude.
  std::string snapshot = EncodeSnapshot(cache.Entries(), kEpoch, kSchemaFp);
  EXPECT_GT(2 * stats.approx_bytes, snapshot.size());

  cache.EvictBelowEpoch(kEpoch + 1);
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.approx_bytes, 0u);
}

}  // namespace
}  // namespace lcp
