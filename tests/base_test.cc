#include <gtest/gtest.h>

#include "lcp/base/result.h"
#include "lcp/base/status.h"
#include "lcp/base/strings.h"

namespace lcp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad arity");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad arity");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad arity");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, ResilienceCodesHaveStableNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(DeadlineExceededError("chase budget").ToString(),
            "DEADLINE_EXCEEDED: chase budget");
  EXPECT_EQ(UnavailableError("breaker open").ToString(),
            "UNAVAILABLE: breaker open");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_EQ(CancelledError("caller went away").ToString(),
            "CANCELLED: caller went away");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  LCP_ASSIGN_OR_RETURN(int half, Half(x));
  LCP_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrJoin) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, ", "), "x, y, z");
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2}, "-"), "1-2");
  EXPECT_EQ(StrJoin(std::vector<int>{}, "-"), "");
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

}  // namespace
}  // namespace lcp
