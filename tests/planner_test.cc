#include "lcp/planner/proof_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lcp/data/query_eval.h"
#include "lcp/runtime/executor.h"
#include "lcp/base/strings.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

/// Runs `plan` on `instance` and returns the output rows as a set of tuples.
std::set<Tuple> RunPlan(const Plan& plan, const Schema& schema,
                        const Instance& instance) {
  SimulatedSource source(&schema, &instance);
  auto result = ExecutePlan(plan, source);
  EXPECT_TRUE(result.ok()) << result.status();
  std::set<Tuple> rows(result->output.rows().begin(),
                       result->output.rows().end());
  return rows;
}

std::set<Tuple> OracleRows(const ConjunctiveQuery& query,
                           const Instance& instance) {
  std::vector<Tuple> rows = EvaluateQuery(query, instance);
  return std::set<Tuple>(rows.begin(), rows.end());
}

TEST(ProofSearchTest, Example1FindsPlanAndAnswersCompletely) {
  auto scenario = MakeProfinfoScenario(/*boolean_query=*/false);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto accessible =
      AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();

  SimpleCostFunction cost(scenario->schema.get());
  ProofSearch search(&*accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 3;
  options.collect_exploration_log = true;
  auto outcome = search.Run(scenario->query, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->best.has_value())
      << "no plan found; log:\n"
      << StrJoin(outcome->exploration_log, "\n");

  const Plan& plan = outcome->best->plan;
  // The paper's plan: free access to Udirect, then a checking access to
  // Profinfo — two access commands.
  EXPECT_EQ(plan.NumAccessCommands(), 2);
  EXPECT_EQ(plan.Language(), PlanLanguage::kSpj);
  EXPECT_DOUBLE_EQ(outcome->best->cost, 2.0);

  // Execute against a concrete instance and compare with the oracle.
  Instance instance(scenario->schema.get());
  ASSERT_TRUE(instance
                  .AddFact("Profinfo", {Value::Int(1), Value::Int(101),
                                        Value::Str("smith")})
                  .ok());
  ASSERT_TRUE(instance
                  .AddFact("Profinfo", {Value::Int(2), Value::Int(102),
                                        Value::Str("jones")})
                  .ok());
  ASSERT_TRUE(instance
                  .AddFact("Profinfo", {Value::Int(4), Value::Int(104),
                                        Value::Str("smith")})
                  .ok());
  ASSERT_TRUE(
      instance.AddFact("Udirect", {Value::Int(1), Value::Str("smith")}).ok());
  ASSERT_TRUE(
      instance.AddFact("Udirect", {Value::Int(2), Value::Str("jones")}).ok());
  ASSERT_TRUE(
      instance.AddFact("Udirect", {Value::Int(3), Value::Str("smith")}).ok());
  ASSERT_TRUE(
      instance.AddFact("Udirect", {Value::Int(4), Value::Str("smith")}).ok());
  ASSERT_TRUE(SatisfiesConstraints(instance));

  EXPECT_EQ(RunPlan(plan, *scenario->schema, instance),
            OracleRows(scenario->query, instance));
}

TEST(ProofSearchTest, Example4BooleanQuery) {
  auto scenario = MakeProfinfoScenario(/*boolean_query=*/true);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto accessible =
      AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();

  auto found = FindAnyPlan(*accessible, scenario->query, 3);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_EQ(found->plan.NumAccessCommands(), 2);

  // Non-empty instance: the boolean plan must report non-empty.
  Instance instance(scenario->schema.get());
  ASSERT_TRUE(instance
                  .AddFact("Profinfo", {Value::Int(1), Value::Int(101),
                                        Value::Str("smith")})
                  .ok());
  ASSERT_TRUE(
      instance.AddFact("Udirect", {Value::Int(1), Value::Str("smith")}).ok());
  EXPECT_EQ(RunPlan(found->plan, *scenario->schema, instance).size(), 1u);

  // Empty instance: must report empty.
  Instance empty(scenario->schema.get());
  EXPECT_TRUE(RunPlan(found->plan, *scenario->schema, empty).empty());
}

TEST(ProofSearchTest, Example2TelephoneDirectories) {
  auto scenario = MakeTelephoneScenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto accessible =
      AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();

  auto found = FindAnyPlan(*accessible, scenario->query, 5);
  ASSERT_TRUE(found.ok()) << found.status();
  // The paper's plan: Ids, Names, Direct1, Direct2 — four accesses.
  EXPECT_EQ(found->plan.NumAccessCommands(), 4);

  // Build an instance satisfying the constraints and check completeness.
  Instance instance(scenario->schema.get());
  auto add_pair = [&](int64_t uname, int64_t addr, int64_t uid,
                      int64_t phone) {
    ASSERT_TRUE(instance
                    .AddFact("Direct1", {Value::Int(uname), Value::Int(addr),
                                         Value::Int(uid)})
                    .ok());
    ASSERT_TRUE(instance
                    .AddFact("Direct2", {Value::Int(uname), Value::Int(addr),
                                         Value::Int(phone)})
                    .ok());
    ASSERT_TRUE(instance.AddFact("Ids", {Value::Int(uid)}).ok());
    ASSERT_TRUE(instance.AddFact("Names", {Value::Int(uname)}).ok());
  };
  add_pair(10, 20, 30, 5551234);
  add_pair(11, 21, 31, 5555678);
  add_pair(12, 22, 32, 5559999);
  ASSERT_TRUE(SatisfiesConstraints(instance));

  EXPECT_EQ(RunPlan(found->plan, *scenario->schema, instance),
            OracleRows(scenario->query, instance));
}

TEST(ProofSearchTest, UnanswerableQueryFindsNoPlan) {
  // Profinfo requires an eid input and nothing reveals eids: no plan.
  Schema schema;
  auto profinfo = schema.AddRelation("Profinfo", 3);
  ASSERT_TRUE(profinfo.ok());
  ASSERT_TRUE(
      schema.AddAccessMethod("mt_profinfo", *profinfo, {0}).ok());
  ConjunctiveQuery query;
  query.name = "Q";
  query.atoms.push_back(
      Atom(*profinfo, {Term::Var("e"), Term::Var("o"), Term::Var("l")}));
  auto accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  auto found = FindAnyPlan(*accessible, query, 5);
  EXPECT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), StatusCode::kNotFound);
}

TEST(ProofSearchTest, Example5CostGuidedSearchFindsCheapestSource) {
  // Three directory sources with different access costs. The cheapest
  // complete plan accesses only the cheapest directory (Udirect2, cost 1)
  // and then checks Profinfo (cost 1).
  const double costs[] = {5.0, 1.0, 3.0};
  auto scenario = MakeMultiSourceScenario(3, costs, /*profinfo_cost=*/1.0);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto accessible =
      AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();

  SimpleCostFunction cost(scenario->schema.get());
  ProofSearch search(&*accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 4;
  options.keep_all_plans = true;
  auto outcome = search.Run(scenario->query, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->best.has_value());
  EXPECT_DOUBLE_EQ(outcome->best->cost, 2.0);
  EXPECT_EQ(outcome->best->plan.NumAccessCommands(), 2);
  // The cheapest plan's first access must use the cheapest directory.
  const auto* first =
      std::get_if<AccessCommand>(&outcome->best->plan.commands[0]);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(scenario->schema->access_method(first->method).name,
            "mt_udirect2");
  // Multiple distinct complete plans exist (different sources and source
  // combinations).
  EXPECT_GE(outcome->all_plans.size(), 2u);
}

TEST(ProofSearchTest, Example5Figure1ExplorationWithPaperHeuristic) {
  // With unit costs and the "free accesses first" heuristic, the first
  // complete proof found is Figure 1's n4: all three directories exposed,
  // then the checking access (the intersection plan, cost 4).
  auto scenario = MakeMultiSourceScenario(3);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto accessible =
      AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();

  SimpleCostFunction cost(scenario->schema.get());
  ProofSearch search(&*accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 4;
  options.candidate_order = CandidateOrder::kFreeAccessFirst;
  options.stop_at_first_plan = true;
  auto first = search.Run(scenario->query, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->best.has_value());
  EXPECT_EQ(first->best->plan.NumAccessCommands(), 4);
  EXPECT_DOUBLE_EQ(first->best->cost, 4.0);

  // Exhausting the space then finds the cheaper single-directory plan
  // (cost 2), and dominance pruning kills the reordered duplicate
  // configurations (the paper's n''' node). Cost pruning is disabled here
  // so the reordered nodes are actually reached (with unit costs they would
  // otherwise be cut by the cost bound first).
  SearchOptions full = options;
  full.stop_at_first_plan = false;
  full.prune_by_cost = false;
  auto outcome = search.Run(scenario->query, full);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->best.has_value());
  EXPECT_DOUBLE_EQ(outcome->best->cost, 2.0);
  EXPECT_GT(outcome->stats.pruned_dominance, 0);
}

TEST(ProofSearchTest, ChainScenarioNeedsChainLengthPlusOneAccesses) {
  for (int len = 1; len <= 3; ++len) {
    auto scenario = MakeChainScenario(len);
    ASSERT_TRUE(scenario.ok()) << scenario.status();
    auto accessible = AccessibleSchema::Build(*scenario->schema,
                                              AccessibleVariant::kStandard);
    ASSERT_TRUE(accessible.ok()) << accessible.status();
    // Too small a budget: no plan.
    EXPECT_FALSE(FindAnyPlan(*accessible, scenario->query, len).ok())
        << "chain length " << len;
    // Exactly enough: a plan with len + 1 accesses.
    auto found = FindAnyPlan(*accessible, scenario->query, len + 1);
    ASSERT_TRUE(found.ok()) << found.status() << " (chain length " << len
                            << ")";
    EXPECT_EQ(found->plan.NumAccessCommands(), len + 1);
  }
}

TEST(ProofSearchTest, ViewScenarioRewritesOverViews) {
  auto scenario = MakeViewScenario(2);  // B0..B3, views V0, V1.
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto accessible =
      AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();
  auto found = FindAnyPlan(*accessible, scenario->query, 3);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_EQ(found->plan.NumAccessCommands(), 2);

  // Execute on a small instance: the path join must be answered exactly.
  Instance instance(scenario->schema.get());
  // Path 1 -> 2 -> 3 -> 4 -> 5 plus a distractor edge.
  ASSERT_TRUE(instance.AddFact("B0", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(instance.AddFact("B1", {Value::Int(2), Value::Int(3)}).ok());
  ASSERT_TRUE(instance.AddFact("B2", {Value::Int(3), Value::Int(4)}).ok());
  ASSERT_TRUE(instance.AddFact("B3", {Value::Int(4), Value::Int(5)}).ok());
  ASSERT_TRUE(instance.AddFact("B2", {Value::Int(30), Value::Int(40)}).ok());
  ASSERT_TRUE(instance.AddFact("V0", {Value::Int(1), Value::Int(3)}).ok());
  ASSERT_TRUE(instance.AddFact("V1", {Value::Int(3), Value::Int(5)}).ok());
  // Satisfy the backward view constraints for the distractor B2 edge: B3
  // continuation plus view tuple.
  ASSERT_TRUE(instance.AddFact("B3", {Value::Int(40), Value::Int(50)}).ok());
  ASSERT_TRUE(instance.AddFact("V1", {Value::Int(30), Value::Int(50)}).ok());
  ASSERT_TRUE(SatisfiesConstraints(instance))
      << StrJoin(ViolatedConstraints(instance), ", ");

  EXPECT_EQ(RunPlan(found->plan, *scenario->schema, instance),
            OracleRows(scenario->query, instance));
}

}  // namespace
}  // namespace lcp
