// Tests for the interpolation subsystem (Theorem 4, Access Interpolation):
// the formula layer (polarities, BindPatt — reproducing the paper's
// worked BindPatt example), the finite model checker, the tableau prover,
// and the five clauses of the theorem on extracted interpolants.

#include "lcp/interp/tableau.h"

#include <gtest/gtest.h>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/interp/encode.h"
#include "lcp/interp/model_check.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

/// Signature with P(1), Q(1), R(2), S(3), U(3).
struct Sig {
  Schema schema;
  RelationId p, q, r, s, u;
  Sig() {
    p = schema.AddRelation("P", 1).value();
    q = schema.AddRelation("Q", 1).value();
    r = schema.AddRelation("R", 2).value();
    s = schema.AddRelation("S", 3).value();
    u = schema.AddRelation("U", 3).value();
  }
};

Term V(const char* name) { return Term::Var(name); }
Term C(int64_t v) { return Term::Const(v); }

TEST(FormulaTest, FreeVariablesRespectQuantifierScope) {
  Sig sig;
  // ∃x (R(x, y) ∧ P(x)): free = {y}.
  FormulaPtr f = Formula::Exists(
      {"x"}, Atom(sig.r, {V("x"), V("y")}),
      Formula::MakeAtom(Atom(sig.p, {V("x")})));
  EXPECT_EQ(f->FreeVariables(), (std::vector<std::string>{"y"}));
}

TEST(FormulaTest, PolaritiesMatchPaperConvention) {
  Sig sig;
  // ∀x (P(x) → ∃y (R(x,y) ∧ True)): P negative, R positive.
  FormulaPtr f = Formula::Forall(
      {"x"}, Atom(sig.p, {V("x")}),
      Formula::Exists({"y"}, Atom(sig.r, {V("x"), V("y")}), Formula::True()));
  std::set<RelationId> pos, neg;
  f->CollectPolarities(true, pos, neg);
  EXPECT_TRUE(neg.count(sig.p));
  EXPECT_TRUE(pos.count(sig.r));
  EXPECT_FALSE(pos.count(sig.p));
  EXPECT_FALSE(neg.count(sig.r));

  // Negation flips: ¬ of the above.
  pos.clear();
  neg.clear();
  Formula::Not(f)->CollectPolarities(true, pos, neg);
  EXPECT_TRUE(pos.count(sig.p));
  EXPECT_TRUE(neg.count(sig.r));
}

TEST(FormulaTest, BindPattReproducesThePaperExample) {
  // BindPatt(∃xy (Rxy ∧ ∀z (Sxyz → Uxyz)))
  //   = {(R, ∅), (S, {1,2}), (U, {1,2,3})} in the paper's 1-based positions;
  // 0-based here: {(R, {}), (S, {0,1}), (U, {0,1,2})}.
  Sig sig;
  FormulaPtr inner = Formula::Forall(
      {"z"}, Atom(sig.s, {V("x"), V("y"), V("z")}),
      Formula::MakeAtom(Atom(sig.u, {V("x"), V("y"), V("z")})));
  FormulaPtr f =
      Formula::Exists({"x", "y"}, Atom(sig.r, {V("x"), V("y")}), inner);
  BindingPatternSet expected = {
      {sig.r, {}},
      {sig.s, {0, 1}},
      {sig.u, {0, 1, 2}},
  };
  EXPECT_EQ(f->BindPatt(), expected);
}

TEST(ModelCheckTest, QuantifiersUseActiveDomainOfGuard) {
  Sig sig;
  Instance instance(&sig.schema);
  instance.AddFact(sig.p, {Value::Int(1)});
  instance.AddFact(sig.p, {Value::Int(2)});
  instance.AddFact(sig.q, {Value::Int(1)});

  // ∀x (P(x) → Q(x)): false (2 ∈ P \ Q).
  FormulaPtr all = Formula::Forall({"x"}, Atom(sig.p, {V("x")}),
                                   Formula::MakeAtom(Atom(sig.q, {V("x")})));
  EXPECT_FALSE(*EvaluateSentence(*all, instance));
  // ∃x (P(x) ∧ Q(x)): true.
  FormulaPtr some = Formula::Exists({"x"}, Atom(sig.p, {V("x")}),
                                    Formula::MakeAtom(Atom(sig.q, {V("x")})));
  EXPECT_TRUE(*EvaluateSentence(*some, instance));
  // Ground atom with constants.
  EXPECT_TRUE(*EvaluateSentence(*Formula::MakeAtom(Atom(sig.p, {C(2)})),
                                instance));
  EXPECT_FALSE(*EvaluateSentence(*Formula::MakeAtom(Atom(sig.q, {C(2)})),
                                 instance));
}

TEST(TableauTest, GroundPropositionalEntailments) {
  Sig sig;
  TableauOptions options;
  FormulaPtr pa = Formula::MakeAtom(Atom(sig.p, {C(1)}));
  FormulaPtr qa = Formula::MakeAtom(Atom(sig.q, {C(1)}));

  EXPECT_TRUE(*ProveEntailment(sig.schema, pa, pa, options));
  EXPECT_FALSE(*ProveEntailment(sig.schema, pa, qa, options));
  EXPECT_TRUE(*ProveEntailment(sig.schema, Formula::And({pa, qa}), qa,
                               options));
  EXPECT_TRUE(
      *ProveEntailment(sig.schema, pa, Formula::Or({pa, qa}), options));
  EXPECT_FALSE(
      *ProveEntailment(sig.schema, Formula::Or({pa, qa}), pa, options));
  // Modus ponens with a ground disjunction: P, (¬P ∨ Q) ⊨ Q.
  EXPECT_TRUE(*ProveEntailment(
      sig.schema,
      Formula::And({pa, Formula::Or({Formula::Not(pa), qa})}), qa, options));
}

TEST(TableauTest, InterpolantOfSharedAtom) {
  Sig sig;
  TableauOptions options;
  FormulaPtr pa = Formula::MakeAtom(Atom(sig.p, {C(1)}));
  FormulaPtr qa = Formula::MakeAtom(Atom(sig.q, {C(1)}));
  FormulaPtr ra = Formula::MakeAtom(Atom(sig.r, {C(1), C(2)}));
  // P ∧ Q ⊨ Q ∨ R: interpolant must mention only Q (the shared relation).
  auto result = ProveAndInterpolate(
      sig.schema, Formula::And({pa, qa}), Formula::Or({qa, ra}), options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->proved);
  std::set<RelationId> pos, neg;
  result->interpolant->CollectPolarities(true, pos, neg);
  EXPECT_TRUE(pos.count(sig.q));
  EXPECT_FALSE(pos.count(sig.p));
  EXPECT_FALSE(pos.count(sig.r));
  EXPECT_TRUE(neg.empty());
}

TEST(TableauTest, RuleEntailmentAndInterpolant) {
  Sig sig;
  TableauOptions options;
  // Premise: P(1) ∧ ∀x (P(x) → Q(x)).  Conclusion: Q(1).
  FormulaPtr rule = Formula::Forall(
      {"x"}, Atom(sig.p, {V("x")}),
      Formula::MakeAtom(Atom(sig.q, {V("x")})));
  FormulaPtr premise =
      Formula::And({Formula::MakeAtom(Atom(sig.p, {C(1)})), rule});
  FormulaPtr conclusion = Formula::MakeAtom(Atom(sig.q, {C(1)}));
  auto result =
      ProveAndInterpolate(sig.schema, premise, conclusion, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->proved);
  ASSERT_TRUE(result->skolem_free);
  // The interpolant is Q(1) (modulo simplification).
  EXPECT_EQ(result->interpolant->ToString(sig.schema), "Q(1)");

  // Theorem 4 clauses 1-3, checked with the prover itself:
  EXPECT_TRUE(
      *ProveEntailment(sig.schema, premise, result->interpolant, options));
  EXPECT_TRUE(*ProveEntailment(sig.schema, result->interpolant, conclusion,
                               options));
  std::set<Value> premise_consts = premise->Constants();
  std::set<Value> conclusion_consts = conclusion->Constants();
  for (const Value& v : result->interpolant->Constants()) {
    EXPECT_TRUE(premise_consts.count(v) > 0 &&
                conclusion_consts.count(v) > 0);
  }

  // Clause 4: BindPatt(interpolant) ⊆ BindPatt(premise) ∪ BindPatt(conclusion).
  BindingPatternSet allowed = premise->BindPatt();
  for (const BindingPattern& p : conclusion->BindPatt()) allowed.insert(p);
  for (const BindingPattern& p : result->interpolant->BindPatt()) {
    EXPECT_TRUE(allowed.count(p) > 0)
        << "binding pattern on relation " << p.first << " not allowed";
  }
}

TEST(TableauTest, ChainedRules) {
  Sig sig;
  TableauOptions options;
  // P(1), ∀x(P→Q), ∀x(Q→ exists y R(x,y)... keep it flat: Q(1) ⊨?
  FormulaPtr p_rule = Formula::Forall(
      {"x"}, Atom(sig.p, {V("x")}),
      Formula::MakeAtom(Atom(sig.q, {V("x")})));
  // Conclusion ∃x (Q(x) ∧ True).
  FormulaPtr conclusion = Formula::Exists({"x"}, Atom(sig.q, {V("x")}),
                                          Formula::True());
  FormulaPtr premise =
      Formula::And({Formula::MakeAtom(Atom(sig.p, {C(5)})), p_rule});
  auto result =
      ProveAndInterpolate(sig.schema, premise, conclusion, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->proved);
  // Lyndon: Q occurs positively in both sides, so only positively in the
  // interpolant.
  std::set<RelationId> pos, neg;
  result->interpolant->CollectPolarities(true, pos, neg);
  EXPECT_TRUE(neg.empty());
}

TEST(TableauTest, NonEntailmentStaysOpen) {
  Sig sig;
  TableauOptions options;
  FormulaPtr rule = Formula::Forall(
      {"x"}, Atom(sig.p, {V("x")}),
      Formula::MakeAtom(Atom(sig.q, {V("x")})));
  // Q(1) does not follow from P(2) and the rule.
  FormulaPtr premise =
      Formula::And({Formula::MakeAtom(Atom(sig.p, {C(2)})), rule});
  FormulaPtr conclusion = Formula::MakeAtom(Atom(sig.q, {C(1)}));
  auto result = ProveAndInterpolate(sig.schema, premise, conclusion, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->proved);
}

TEST(TableauTest, PaperExample3EntailmentIsProvable) {
  // Example 3: Q entails InferredAccQ with respect to the accessible schema
  // of Example 1. Premise: Q (as an ∃-sentence) ∧ all AcSch axioms;
  // conclusion: InferredAccQ as an ∃-sentence.
  Scenario scenario = MakeProfinfoScenario(/*boolean_query=*/true).value();
  auto acc = AccessibleSchema::Build(*scenario.schema,
                                     AccessibleVariant::kStandard)
                 .value();
  std::vector<FormulaPtr> parts;
  parts.push_back(QueryToSentence(scenario.query).value());
  for (const Tgd& tgd : acc.AllAxioms()) {
    parts.push_back(TgdToFormula(tgd).value());
  }
  FormulaPtr premise = Formula::And(std::move(parts));
  FormulaPtr conclusion =
      QueryToSentence(acc.InferredAccQuery(scenario.query)).value();
  TableauOptions options;
  options.max_steps = 200000;
  auto result =
      ProveAndInterpolate(acc.schema(), premise, conclusion, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->proved);

  // Removing the accessibility axioms breaks the entailment (within the
  // same budget): accesses are essential, not just the constraints.
  std::vector<FormulaPtr> weak_parts;
  weak_parts.push_back(QueryToSentence(scenario.query).value());
  for (const Tgd& tgd : acc.original_constraints()) {
    weak_parts.push_back(TgdToFormula(tgd).value());
  }
  for (const Tgd& tgd : acc.inferred_constraints()) {
    weak_parts.push_back(TgdToFormula(tgd).value());
  }
  auto weak = ProveAndInterpolate(acc.schema(),
                                  Formula::And(std::move(weak_parts)),
                                  conclusion, options);
  ASSERT_TRUE(weak.ok());
  EXPECT_FALSE(weak->proved);
}

TEST(TableauTest, InterpolantSoundOnFiniteModels) {
  // Spot-check clause 1/2 of Theorem 4 semantically: on finite instances,
  // premise → interpolant → conclusion.
  Sig sig;
  TableauOptions options;
  FormulaPtr rule = Formula::Forall(
      {"x"}, Atom(sig.p, {V("x")}),
      Formula::MakeAtom(Atom(sig.q, {V("x")})));
  FormulaPtr premise =
      Formula::And({Formula::MakeAtom(Atom(sig.p, {C(1)})), rule});
  FormulaPtr conclusion = Formula::MakeAtom(Atom(sig.q, {C(1)}));
  auto result = ProveAndInterpolate(sig.schema, premise, conclusion, options);
  ASSERT_TRUE(result.ok() && result->proved);

  for (int mask = 0; mask < 16; ++mask) {
    Instance instance(&sig.schema);
    if (mask & 1) instance.AddFact(sig.p, {Value::Int(1)});
    if (mask & 2) instance.AddFact(sig.q, {Value::Int(1)});
    if (mask & 4) instance.AddFact(sig.p, {Value::Int(2)});
    if (mask & 8) instance.AddFact(sig.q, {Value::Int(2)});
    bool premise_holds = *EvaluateSentence(*premise, instance);
    bool interpolant_holds =
        *EvaluateSentence(*result->interpolant, instance);
    bool conclusion_holds = *EvaluateSentence(*conclusion, instance);
    if (premise_holds) {
      EXPECT_TRUE(interpolant_holds) << "mask " << mask;
    }
    if (interpolant_holds) {
      EXPECT_TRUE(conclusion_holds) << "mask " << mask;
    }
  }
}

TEST(EncodeTest, TgdAndQueryEncodings) {
  Sig sig;
  Tgd tgd;
  tgd.body = {Atom(sig.r, {V("x"), V("y")})};
  tgd.head = {Atom(sig.s, {V("x"), V("y"), V("z")})};
  auto formula = TgdToFormula(tgd);
  ASSERT_TRUE(formula.ok());
  EXPECT_EQ((*formula)->kind(), Formula::Kind::kForall);
  EXPECT_EQ((*formula)->ToString(sig.schema),
            "forall x,y (R(x, y) -> exists z (S(x, y, z) & true))");

  ConjunctiveQuery query;
  query.atoms = {Atom(sig.p, {V("a")}), Atom(sig.q, {V("a")})};
  auto sentence = QueryToSentence(query);
  ASSERT_TRUE(sentence.ok());
  EXPECT_EQ((*sentence)->ToString(sig.schema),
            "exists a (P(a) & (Q(a) & true))");
}

}  // namespace
}  // namespace lcp
