// Parallel proof search: differential equivalence against the sequential
// driver, lifecycle/budget invariants, and the knobs' documented semantics.
//
// The load-bearing test is the randomized differential suite: for seeded
// scenarios, the sequential driver and the 2- and 4-worker parallel drivers,
// all run to exhaustion, must report the same optimal plan cost (plan
// identity may differ — ties and exploration order are not canonical under
// work stealing). LCP_PARALLEL_STRESS_ITERS scales the seed count (CI
// stress/TSan jobs).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/base/budget.h"
#include "lcp/base/clock.h"
#include "lcp/plan/cost.h"
#include "lcp/planner/proof_search.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

int StressIters(int default_iters) {
  if (const char* env = std::getenv("LCP_PARALLEL_STRESS_ITERS")) {
    return std::max(1, std::atoi(env));
  }
  return default_iters;
}

Result<SearchOutcome> RunScenario(const Scenario& scenario,
                                  const SearchOptions& options) {
  auto accessible =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard);
  if (!accessible.ok()) return accessible.status();
  SimpleCostFunction cost(&accessible->base());
  ProofSearch search(&*accessible, &cost);
  return search.Run(scenario.query, options);
}

/// Runs one scenario sequentially and with 2 and 4 workers; checks that all
/// three exhaust the space and agree on the optimal cost (or all find no
/// plan). Fills `sequential_out` (if non-null) for extra assertions.
void ExpectParallelAgreesWithSequential(const Scenario& scenario,
                                        SearchOptions options,
                                        SearchOutcome* sequential_out =
                                            nullptr) {
  options.parallelism = 1;
  auto sequential = RunScenario(scenario, options);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  EXPECT_TRUE(sequential->exhaustion.ok()) << sequential->exhaustion;
  for (int workers : {2, 4}) {
    options.parallelism = workers;
    auto parallel = RunScenario(scenario, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_TRUE(parallel->exhaustion.ok()) << parallel->exhaustion;
    ASSERT_EQ(sequential->best.has_value(), parallel->best.has_value())
        << scenario.name << " with " << workers << " workers";
    if (sequential->best.has_value()) {
      EXPECT_DOUBLE_EQ(sequential->best->cost, parallel->best->cost)
          << scenario.name << " with " << workers << " workers";
    }
    // Stats must be coherent: every worker's counters merged, no charge
    // lost. Expanding at least as many nodes as the plan has accesses is
    // the weakest sanity floor; the real check is that the counters are
    // consistent with each other.
    EXPECT_GE(parallel->stats.nodes_expanded, 0);
    EXPECT_GE(parallel->stats.nodes_created, 1);
    if (parallel->best.has_value()) {
      EXPECT_GE(parallel->stats.successes, 1);
    }
  }
  if (sequential_out != nullptr) *sequential_out = std::move(*sequential);
}

TEST(ParallelSearchTest, PaperScenariosAgree) {
  for (bool boolean_query : {false, true}) {
    auto scenario = MakeProfinfoScenario(boolean_query);
    ASSERT_TRUE(scenario.ok());
    SearchOutcome outcome;
    ExpectParallelAgreesWithSequential(*scenario, SearchOptions{}, &outcome);
    EXPECT_TRUE(outcome.best.has_value());
  }
  auto telephone = MakeTelephoneScenario();
  ASSERT_TRUE(telephone.ok());
  ExpectParallelAgreesWithSequential(*telephone, SearchOptions{});
}

TEST(ParallelSearchTest, DifferentialRandomizedScenarios) {
  // >= 100 scenarios by default: `iters` rounds of 2 scenarios, each
  // compared across three parallelism levels.
  const int iters = StressIters(50);
  std::mt19937 rng(20260806);
  for (int iter = 0; iter < iters; ++iter) {
    // Multi-source with randomized access costs: cost pruning and dominance
    // both bite, and the optimal source choice is seed-dependent.
    int num_sources = 2 + static_cast<int>(rng() % 4);
    std::vector<double> costs(num_sources);
    std::uniform_real_distribution<double> cost_dist(0.5, 8.0);
    for (double& c : costs) c = cost_dist(rng);
    double profinfo_cost = cost_dist(rng);
    auto multi =
        MakeMultiSourceScenario(num_sources, costs.data(), profinfo_cost);
    ASSERT_TRUE(multi.ok());
    SearchOptions options;
    options.max_access_commands = 2 + static_cast<int>(rng() % 3);
    options.candidate_order = (rng() % 2 == 0)
                                  ? CandidateOrder::kDerivationDepth
                                  : CandidateOrder::kFreeAccessFirst;
    options.prune_by_cost = rng() % 4 != 0;  // Mostly on, sometimes off.
    options.keep_all_plans = rng() % 2 == 0;
    ExpectParallelAgreesWithSequential(*multi, options);

    // Chain scenario: plans need several dependent accesses, so parallel
    // workers hand partially-expanded ancestors back and forth.
    auto chain = MakeChainScenario(1 + static_cast<int>(rng() % 4));
    ASSERT_TRUE(chain.ok());
    SearchOptions chain_options;
    chain_options.max_access_commands = 3 + static_cast<int>(rng() % 4);
    chain_options.candidate_order = options.candidate_order;
    ExpectParallelAgreesWithSequential(*chain, chain_options);
  }
}

TEST(ParallelSearchTest, ExplorationLogRejectedWhenParallel) {
  auto scenario = MakeProfinfoScenario(true);
  ASSERT_TRUE(scenario.ok());
  SearchOptions options;
  options.parallelism = 2;
  options.collect_exploration_log = true;
  auto outcome = RunScenario(*scenario, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  // parallelism == 1 keeps full log support.
  options.parallelism = 1;
  auto sequential = RunScenario(*scenario, options);
  ASSERT_TRUE(sequential.ok());
  EXPECT_FALSE(sequential->exploration_log.empty());
}

TEST(ParallelSearchTest, NodeCapOvershootBoundedByParallelism) {
  auto scenario = MakeMultiSourceScenario(6);
  ASSERT_TRUE(scenario.ok());
  SearchOptions options;
  options.parallelism = 4;
  options.max_nodes = 10;
  options.prune_by_cost = false;
  options.prune_by_dominance = false;
  auto outcome = RunScenario(*scenario, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->exhaustion.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(outcome->stats.nodes_created, options.max_nodes);
  // Each worker checks the cap before its next creation, so the documented
  // overshoot bound is `parallelism` nodes.
  EXPECT_LE(outcome->stats.nodes_created,
            options.max_nodes + options.parallelism);
}

TEST(ParallelSearchTest, BudgetNodeCapAnytime) {
  auto scenario = MakeMultiSourceScenario(6);
  ASSERT_TRUE(scenario.ok());
  SearchOptions options;
  options.parallelism = 4;
  options.prune_by_cost = false;
  options.prune_by_dominance = false;
  Budget budget;
  budget.set_node_cap(12);
  options.budget = &budget;
  auto outcome = RunScenario(*scenario, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->exhaustion.code(), StatusCode::kResourceExhausted);
  // At most one in-flight charge per worker can land after the cap trips.
  EXPECT_LE(budget.stats().nodes_charged, 12 + options.parallelism);
}

TEST(ParallelSearchTest, PreExpiredDeadlineYieldsAnytimeOutcome) {
  auto scenario = MakeMultiSourceScenario(4);
  ASSERT_TRUE(scenario.ok());
  SearchOptions options;
  options.parallelism = 4;
  Budget budget;
  SystemClock clock;
  budget.SetDeadline(&clock, -1);
  options.budget = &budget;
  auto outcome = RunScenario(*scenario, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->exhaustion.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(outcome->best.has_value());
}

TEST(ParallelSearchTest, CrossThreadCancellationStopsAllWorkers) {
  // A deliberately large space (no pruning, deep access budget) so the
  // search is still running when the cancel lands; if the machine is fast
  // enough to finish first, the test still checks the lifecycle contract
  // (Run returned with all workers joined and a coherent outcome).
  auto scenario = MakeMultiSourceScenario(9);
  ASSERT_TRUE(scenario.ok());
  SearchOptions options;
  options.parallelism = 4;
  options.max_access_commands = 9;
  options.prune_by_cost = false;
  options.prune_by_dominance = false;
  CancelToken token;
  Budget budget;
  budget.set_cancel_token(&token);
  options.budget = &budget;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel(StatusCode::kCancelled);
  });
  auto outcome = RunScenario(*scenario, options);
  canceller.join();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  if (!outcome->exhaustion.ok()) {
    EXPECT_EQ(outcome->exhaustion.code(), StatusCode::kCancelled);
  }
}

TEST(ParallelSearchTest, FirstPlanModeStopsWorkersPromptly) {
  auto scenario = MakeMultiSourceScenario(6);
  ASSERT_TRUE(scenario.ok());

  SearchOptions exhaustive;
  exhaustive.prune_by_cost = false;
  auto full = RunScenario(*scenario, exhaustive);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->best.has_value());

  SearchOptions first;
  first.parallelism = 4;
  first.stop_at_first_plan = true;
  first.prune_by_cost = false;
  auto outcome = RunScenario(*scenario, first);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->best.has_value());
  // The first success raises the stop flag; every worker exits at its next
  // poll point, so total expansions stay well below the exhaustive count.
  EXPECT_LT(outcome->stats.nodes_expanded, full->stats.nodes_expanded / 2);
}

TEST(ParallelSearchTest, FindAnyPlanParallel) {
  auto scenario = MakeProfinfoScenario(false);
  ASSERT_TRUE(scenario.ok());
  auto accessible = AccessibleSchema::Build(*scenario->schema,
                                            AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  auto found =
      FindAnyPlan(*accessible, scenario->query, /*max_access_commands=*/4,
                  /*parallelism=*/4);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_GE(found->plan.NumAccessCommands(), 1);
}

TEST(ParallelSearchTest, KeepAllPlansBestIsCheapest) {
  auto scenario = MakeMultiSourceScenario(5);
  ASSERT_TRUE(scenario.ok());
  SearchOptions options;
  options.parallelism = 4;
  options.keep_all_plans = true;
  options.prune_by_cost = false;
  auto outcome = RunScenario(*scenario, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->best.has_value());
  ASSERT_FALSE(outcome->all_plans.empty());
  double min_cost = outcome->all_plans[0].cost;
  for (const FoundPlan& plan : outcome->all_plans) {
    min_cost = std::min(min_cost, plan.cost);
  }
  EXPECT_DOUBLE_EQ(outcome->best->cost, min_cost);
}

TEST(ParallelSearchTest, ParallelismBelowOneRunsSequentially) {
  auto scenario = MakeProfinfoScenario(true);
  ASSERT_TRUE(scenario.ok());
  SearchOptions options;
  options.parallelism = 0;
  options.collect_exploration_log = true;  // Only legal sequentially.
  auto outcome = RunScenario(*scenario, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->exploration_log.empty());
}

}  // namespace
}  // namespace lcp
