// End-to-end property tests: for randomized instances that satisfy the
// schema constraints, a proof-derived plan must return exactly the oracle's
// answers (Theorem 5's completeness, checked empirically), and its source
// accesses must respect the binding patterns by construction.

#include <gtest/gtest.h>

#include <set>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/base/strings.h"
#include "lcp/data/generator.h"
#include "lcp/data/query_eval.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

struct IntegrationCase {
  std::string name;
  std::function<Result<Scenario>()> make;
  int max_access_commands;
  /// Facts seeded per relation before repair.
  int facts_per_relation;
};

class PlanCompletenessTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

std::vector<IntegrationCase> Cases() {
  return {
      {"profinfo", [] { return MakeProfinfoScenario(false); }, 3, 12},
      {"profinfo_bool", [] { return MakeProfinfoScenario(true); }, 3, 12},
      {"telephone", [] { return MakeTelephoneScenario(); }, 5, 8},
      {"multisource3", [] { return MakeMultiSourceScenario(3); }, 4, 10},
      {"chain2", [] { return MakeChainScenario(2); }, 3, 10},
      {"chain3", [] { return MakeChainScenario(3); }, 4, 8},
      {"views2", [] { return MakeViewScenario(2); }, 2, 10},
  };
}

TEST_P(PlanCompletenessTest, PlanMatchesOracleOnRandomInstances) {
  const IntegrationCase test_case = Cases()[std::get<0>(GetParam())];
  const uint64_t seed = std::get<1>(GetParam());

  auto scenario = test_case.make();
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  const Schema& schema = *scenario->schema;
  auto accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok()) << accessible.status();

  auto found =
      FindAnyPlan(*accessible, scenario->query, test_case.max_access_commands);
  ASSERT_TRUE(found.ok()) << test_case.name << ": " << found.status();

  GeneratorOptions options;
  options.seed = seed;
  options.facts_per_relation = test_case.facts_per_relation;
  options.domain_size = 15;  // Small domain -> plenty of joins.
  auto instance = GenerateInstance(schema, options);
  ASSERT_TRUE(instance.ok()) << instance.status();
  ASSERT_TRUE(SatisfiesConstraints(*instance))
      << StrJoin(ViolatedConstraints(*instance), ", ");

  SimulatedSource source(&schema, instance.operator->());
  auto run = ExecutePlan(found->plan, source);
  ASSERT_TRUE(run.ok()) << run.status();

  std::set<Tuple> plan_rows(run->output.rows().begin(),
                            run->output.rows().end());
  std::vector<Tuple> oracle = EvaluateQuery(scenario->query, *instance);
  std::set<Tuple> oracle_rows(oracle.begin(), oracle.end());
  EXPECT_EQ(plan_rows, oracle_rows)
      << test_case.name << " seed " << seed << ": plan returned "
      << plan_rows.size() << " rows, oracle " << oracle_rows.size();
}

INSTANTIATE_TEST_SUITE_P(
    AllScenariosAndSeeds, PlanCompletenessTest,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(1u, 7u, 42u, 1234u, 99999u)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return Cases()[std::get<0>(info.param)].name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// The optimal plan (not just any plan) is also complete, and both prunings
// preserve the optimum — checked across scenarios.
class PruningSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(PruningSoundnessTest, PruningsPreserveTheOptimum) {
  const IntegrationCase test_case = Cases()[GetParam()];
  auto scenario = test_case.make();
  ASSERT_TRUE(scenario.ok());
  auto accessible =
      AccessibleSchema::Build(*scenario->schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  SimpleCostFunction cost(scenario->schema.get());
  ProofSearch search(&*accessible, &cost);

  double costs[4];
  int nodes[4];
  int config_index = 0;
  for (bool prune_cost : {false, true}) {
    for (bool prune_dom : {false, true}) {
      SearchOptions options;
      options.max_access_commands = test_case.max_access_commands;
      options.prune_by_cost = prune_cost;
      options.prune_by_dominance = prune_dom;
      auto outcome = search.Run(scenario->query, options);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      ASSERT_TRUE(outcome->best.has_value());
      costs[config_index] = outcome->best->cost;
      nodes[config_index] = outcome->stats.nodes_created;
      ++config_index;
    }
  }
  EXPECT_DOUBLE_EQ(costs[0], costs[1]);
  EXPECT_DOUBLE_EQ(costs[0], costs[2]);
  EXPECT_DOUBLE_EQ(costs[0], costs[3]);
  // Pruning never explores more nodes than no pruning.
  EXPECT_LE(nodes[3], nodes[0]);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, PruningSoundnessTest,
                         ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return Cases()[info.param].name;
                         });

// The Example 5 motivation, measured: the 3-directory intersection plan
// costs more under the simple (per-command) cost function, but reduces the
// number of per-tuple calls into the expensive checking access — which is
// why §2 allows richer, monotone "black box" cost functions. Both plans
// must return identical (complete) answers.
TEST(AccessEfficiencyTest, IntersectionPlanTradesCommandsForBindings) {
  auto scenario = MakeMultiSourceScenario(3);
  ASSERT_TRUE(scenario.ok());
  const Schema& schema = *scenario->schema;
  auto accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard);
  ASSERT_TRUE(accessible.ok());
  SimpleCostFunction cost(&schema);
  ProofSearch search(&*accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 4;
  options.keep_all_plans = true;
  options.prune_by_cost = false;
  options.prune_by_dominance = false;
  auto outcome = search.Run(scenario->query, options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GE(outcome->all_plans.size(), 2u);

  GeneratorOptions gen;
  gen.facts_per_relation = 10;
  gen.domain_size = 12;
  auto instance = GenerateInstance(schema, gen);
  ASSERT_TRUE(instance.ok());

  // Execute the cheapest and the most expensive plan; the cheapest must
  // make no more distinct source calls.
  const FoundPlan* cheapest = &outcome->all_plans[0];
  const FoundPlan* priciest = &outcome->all_plans[0];
  for (const FoundPlan& plan : outcome->all_plans) {
    if (plan.cost < cheapest->cost) cheapest = &plan;
    if (plan.cost > priciest->cost) priciest = &plan;
  }
  SimulatedSource cheap_source(&schema, instance.operator->());
  SimulatedSource pricey_source(&schema, instance.operator->());
  auto cheap_run = ExecutePlan(cheapest->plan, cheap_source);
  auto pricey_run = ExecutePlan(priciest->plan, pricey_source);
  ASSERT_TRUE(cheap_run.ok() && pricey_run.ok());

  // Count distinct bindings fed into the restricted Profinfo method.
  AccessMethodId profinfo_method = *schema.AccessMethodByName("mt_profinfo");
  auto profinfo_bindings = [&](const SimulatedSource& source) {
    size_t count = 0;
    for (const AccessPair& pair : source.distinct_pairs()) {
      if (pair.method == profinfo_method) ++count;
    }
    return count;
  };
  // The intersection plan (more commands, higher simple cost) drives fewer
  // tuples into the checking access.
  EXPECT_GE(profinfo_bindings(cheap_source),
            profinfo_bindings(pricey_source));
  // And both are complete.
  std::set<Tuple> a(cheap_run->output.rows().begin(),
                    cheap_run->output.rows().end());
  std::set<Tuple> b(pricey_run->output.rows().begin(),
                    pricey_run->output.rows().end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace lcp
