#include <gtest/gtest.h>

#include "lcp/baseline/bucket.h"
#include "lcp/baseline/saturation.h"
#include "lcp/data/query_eval.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

TEST(SaturationTest, ConvergesAndAnswersSimpleSchema) {
  Scenario scenario = MakeProfinfoScenario(false).value();
  const Schema& schema = *scenario.schema;
  Instance instance(&schema);
  instance.AddFact("Profinfo",
                   {Value::Int(1), Value::Int(101), Value::Str("smith")});
  instance.AddFact("Udirect", {Value::Int(1), Value::Str("smith")});
  SimulatedSource source(&schema, &instance);
  SaturationOptions options;
  options.rounds = 3;
  auto result = RunSaturation(scenario.query, source, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers, EvaluateQuery(scenario.query, instance));
  EXPECT_GT(result->source_calls, 0u);
}

TEST(SaturationTest, MoreRoundsRetrieveMore) {
  Scenario scenario = MakeTelephoneScenario().value();
  const Schema& schema = *scenario.schema;
  Instance instance(&schema);
  instance.AddFact("Direct1", {Value::Int(1), Value::Int(2), Value::Int(3)});
  instance.AddFact("Direct2", {Value::Int(1), Value::Int(2), Value::Int(7)});
  instance.AddFact("Ids", {Value::Int(3)});
  instance.AddFact("Names", {Value::Int(1)});

  SaturationOptions two;
  two.rounds = 2;
  SimulatedSource source2(&schema, &instance);
  auto r2 = RunSaturation(scenario.query, source2, two);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->answers.empty());  // phone needs 3 hops

  SaturationOptions three;
  three.rounds = 3;
  SimulatedSource source3(&schema, &instance);
  auto r3 = RunSaturation(scenario.query, source3, three);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->answers.size(), 1u);
  EXPECT_GT(r3->source_calls, r2->source_calls);
}

TEST(SaturationTest, CallBudgetEnforced) {
  Scenario scenario = MakeTelephoneScenario().value();
  const Schema& schema = *scenario.schema;
  Instance instance(&schema);
  for (int i = 0; i < 30; ++i) {
    instance.AddFact("Ids", {Value::Int(i)});
    instance.AddFact("Names", {Value::Int(100 + i)});
  }
  SimulatedSource source(&schema, &instance);
  SaturationOptions options;
  options.rounds = 2;
  options.max_source_calls = 100;
  auto result = RunSaturation(scenario.query, source, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

class BucketFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.AddRelation("R", 2).value();
    schema_.AddRelation("S", 2).value();
  }
  ViewDefinition MakeView(const std::string& name,
                          const std::string& definition) {
    ViewDefinition view;
    int arity =
        static_cast<int>(ParseQuery(schema_, definition)->free_variables.size());
    view.view = schema_.AddRelation(name, arity).value();
    view.definition = ParseQuery(schema_, definition).value();
    return view;
  }
  Schema schema_;
};

TEST_F(BucketFixture, IdentityViewRewrites) {
  std::vector<ViewDefinition> views = {MakeView("V", "V(x, y) :- R(x, y)")};
  auto query = ParseQuery(schema_, "Q(a, b) :- R(a, b)");
  auto result = BucketRewrite(schema_, *query, views);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->has_value());
  EXPECT_EQ((*result)->atoms.size(), 1u);
  EXPECT_EQ((*result)->atoms[0].relation, views[0].view);
}

TEST_F(BucketFixture, JoinViewCoversTwoSubgoals) {
  std::vector<ViewDefinition> views = {
      MakeView("V", "V(x, z) :- R(x, y), S(y, z)")};
  auto query = ParseQuery(schema_, "Q(a, c) :- R(a, b), S(b, c)");
  auto result = BucketRewrite(schema_, *query, views);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->has_value());
  EXPECT_EQ((*result)->atoms.size(), 1u);
}

TEST_F(BucketFixture, ProjectionLosesInformation) {
  // V(x) :- R(x, y) cannot answer Q(a, b) :- R(a, b).
  std::vector<ViewDefinition> views = {MakeView("V", "V(x) :- R(x, y)")};
  auto query = ParseQuery(schema_, "Q(a, b) :- R(a, b)");
  auto result = BucketRewrite(schema_, *query, views);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_value());
}

TEST_F(BucketFixture, NoViewCoversRelation) {
  std::vector<ViewDefinition> views = {MakeView("V", "V(x, y) :- R(x, y)")};
  auto query = ParseQuery(schema_, "Q(a) :- S(a, b)");
  auto result = BucketRewrite(schema_, *query, views);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_value());
}

TEST_F(BucketFixture, ExpansionInlinesDefinitions) {
  std::vector<ViewDefinition> views = {
      MakeView("V", "V(x, z) :- R(x, y), S(y, z)")};
  ConjunctiveQuery rewriting;
  rewriting.name = "W";
  rewriting.free_variables = {"a", "c"};
  rewriting.atoms = {Atom(views[0].view, {Term::Var("a"), Term::Var("c")})};
  auto expanded = ExpandViews(rewriting, views);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->atoms.size(), 2u);
  EXPECT_EQ(expanded->atoms[0].relation, 0);  // R
  EXPECT_EQ(expanded->atoms[1].relation, 1);  // S
  // The shared existential variable is preserved across the two atoms.
  EXPECT_EQ(expanded->atoms[0].terms[1], expanded->atoms[1].terms[0]);
}

TEST_F(BucketFixture, OverlappingViewsDoNotCompose) {
  // The view-rewriting example's negative case, at unit-test scale:
  // V0 = B0 ⋈ B1, V1 = B1 ⋈ B2 cannot rewrite the path of length 3.
  Schema schema;
  schema.AddRelation("B0", 2).value();
  schema.AddRelation("B1", 2).value();
  schema.AddRelation("B2", 2).value();
  std::vector<ViewDefinition> views;
  for (int i = 0; i < 2; ++i) {
    ViewDefinition view;
    view.view = schema.AddRelation("V" + std::to_string(i), 2).value();
    view.definition =
        ParseQuery(schema, "V(x, z) :- B" + std::to_string(i) + "(x, y), B" +
                               std::to_string(i + 1) + "(y, z)")
            .value();
    views.push_back(std::move(view));
  }
  auto query = ParseQuery(
      schema, "Q(a, d) :- B0(a, b), B1(b, c), B2(c, d)");
  auto result = BucketRewrite(schema, *query, views);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_value());
}

}  // namespace
}  // namespace lcp
