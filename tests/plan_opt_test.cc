// The plan-IR optimizer (src/lcp/plan/opt/): per-pass unit tests, the
// seeded differential contract — an optimized plan computes exactly the
// same table as the plan it came from, on both execution engines — and the
// cost-monotonicity property the PassManager guarantees by construction.
// LCP_OPT_STRESS_ITERS scales the seeded suites (CI stress jobs).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/generator.h"
#include "lcp/plan/cardinality_cost.h"
#include "lcp/plan/opt/cse.h"
#include "lcp/plan/opt/dce.h"
#include "lcp/plan/opt/join_reorder.h"
#include "lcp/plan/opt/pass_manager.h"
#include "lcp/plan/opt/pushdown.h"
#include "lcp/plan/validate.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/service/service.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

using plan_opt::CsePass;
using plan_opt::DcePass;
using plan_opt::JoinReorderPass;
using plan_opt::OptimizeStats;
using plan_opt::OptimizerOptions;
using plan_opt::PassManager;
using plan_opt::PassStats;
using plan_opt::PushdownPass;

int StressIters(int fallback) {
  if (const char* env = std::getenv("LCP_OPT_STRESS_ITERS")) {
    return std::max(1, std::atoi(env));
  }
  return fallback;
}

Schema MakeSchema() {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  RelationId s = schema.AddRelation("S", 2).value();
  schema.AddAccessMethod("mt_r_free", r, {}, 2.0).value();
  schema.AddAccessMethod("mt_s_by0", s, {0}, 5.0).value();
  return schema;
}

Instance SmallInstance(const Schema& schema) {
  Instance instance(&schema);
  for (int i = 0; i < 8; ++i) {
    instance.AddFact(0, Tuple{Value::Int(i % 3), Value::Int(i % 4)});
    instance.AddFact(1, Tuple{Value::Int(i % 4), Value::Int(i * 10)});
  }
  return instance;
}

AccessCommand FreeAccess(AccessMethodId method, const std::string& table) {
  AccessCommand access;
  access.method = method;
  access.output_table = table;
  access.output_columns = {{"a", 0}, {"b", 1}};
  return access;
}

std::vector<Tuple> SortedRows(const Table& table) {
  std::vector<Tuple> rows = table.rows();
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// The differential contract: both plans produce the same attribute list
/// and the same set of rows, on both engines. Row *order* is deliberately
/// not compared — join reorder changes the canonical join output order.
void ExpectSameResults(const Plan& original, const Plan& optimized,
                       const Schema& schema, const Instance& instance,
                       int seed) {
  auto run = [&](const Plan& plan, ExecutionEngine engine) {
    SimulatedSource source(&schema, &instance);
    ExecutionOptions options;
    options.engine = engine;
    return ExecutePlan(plan, source, options);
  };
  auto orig_row = run(original, ExecutionEngine::kRowOracle);
  auto orig_vec = run(original, ExecutionEngine::kVectorized);
  auto opt_row = run(optimized, ExecutionEngine::kRowOracle);
  auto opt_vec = run(optimized, ExecutionEngine::kVectorized);
  ASSERT_TRUE(orig_row.ok()) << "seed " << seed << ": "
                             << orig_row.status().message();
  ASSERT_TRUE(orig_vec.ok()) << "seed " << seed;
  ASSERT_TRUE(opt_row.ok()) << "seed " << seed << ": "
                            << opt_row.status().message();
  ASSERT_TRUE(opt_vec.ok()) << "seed " << seed;
  EXPECT_EQ(orig_row->output.attrs(), opt_row->output.attrs())
      << "seed " << seed;
  EXPECT_EQ(orig_vec->output.attrs(), opt_vec->output.attrs())
      << "seed " << seed;
  const std::vector<Tuple> expected = SortedRows(orig_row->output);
  EXPECT_EQ(expected, SortedRows(orig_vec->output)) << "seed " << seed;
  EXPECT_EQ(expected, SortedRows(opt_row->output)) << "seed " << seed;
  EXPECT_EQ(expected, SortedRows(opt_vec->output)) << "seed " << seed;
}

// ---------------------------------------------------------------------------
// Per-pass unit tests.

TEST(CsePassTest, AliasesDuplicateAccessCommands) {
  Schema schema = MakeSchema();
  Plan plan;
  plan.commands.push_back(FreeAccess(0, "t0"));
  plan.commands.push_back(FreeAccess(0, "t1"));  // structurally identical
  plan.commands.push_back(QueryCommand{
      "t2", RaExpr::Join(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.output_table = "t2";
  plan.output_attrs = {"a", "b"};

  PassStats stats;
  EXPECT_TRUE(CsePass().Run(plan, schema, stats));
  EXPECT_EQ(stats.applications, 1);
  EXPECT_EQ(stats.expressions_rewritten, 1);
  // The duplicate stays (now dead); the join references only t0.
  ASSERT_EQ(plan.commands.size(), 3u);
  const auto& join = *std::get<QueryCommand>(plan.commands[2]).expr;
  EXPECT_EQ(join.children()[0]->table(), "t0");
  EXPECT_EQ(join.children()[1]->table(), "t0");
  EXPECT_TRUE(ValidatePlan(plan, schema).ok());
}

TEST(CsePassTest, MatchesModuloTempTableRenaming) {
  Schema schema = MakeSchema();
  Plan plan;
  plan.commands.push_back(FreeAccess(0, "t0"));
  plan.commands.push_back(FreeAccess(0, "t1"));
  // Structurally identical projections — but over differently-named inputs,
  // so only the alias substitution makes their keys collide.
  plan.commands.push_back(
      QueryCommand{"q0", RaExpr::Project(RaExpr::TempScan("t0"), {"a"})});
  plan.commands.push_back(
      QueryCommand{"q1", RaExpr::Project(RaExpr::TempScan("t1"), {"a"})});
  plan.commands.push_back(QueryCommand{
      "out", RaExpr::Union(RaExpr::TempScan("q0"), RaExpr::TempScan("q1"))});
  plan.output_table = "out";
  plan.output_attrs = {"a"};

  PassStats stats;
  EXPECT_TRUE(CsePass().Run(plan, schema, stats));
  EXPECT_EQ(stats.applications, 2);  // t1 -> t0, then q1 -> q0
  const auto& u = *std::get<QueryCommand>(plan.commands[4]).expr;
  EXPECT_EQ(u.children()[0]->table(), "q0");
  EXPECT_EQ(u.children()[1]->table(), "q0");

  // DCE then erases both duplicates.
  PassStats dce_stats;
  EXPECT_TRUE(DcePass().Run(plan, schema, dce_stats));
  EXPECT_EQ(dce_stats.commands_removed, 2);
  EXPECT_EQ(dce_stats.access_commands_removed, 1);
  EXPECT_EQ(plan.commands.size(), 3u);
  EXPECT_TRUE(ValidatePlan(plan, schema).ok());
}

TEST(DcePassTest, RemovesUnreferencedCommands) {
  Schema schema = MakeSchema();
  Plan plan;
  plan.commands.push_back(FreeAccess(0, "t0"));
  plan.commands.push_back(FreeAccess(0, "unused_access"));
  plan.commands.push_back(QueryCommand{
      "unused_query", RaExpr::Project(RaExpr::TempScan("t0"), {"a"})});
  plan.output_table = "t0";
  plan.output_attrs = {"a", "b"};

  PassStats stats;
  EXPECT_TRUE(DcePass().Run(plan, schema, stats));
  EXPECT_EQ(stats.commands_removed, 2);
  EXPECT_EQ(stats.access_commands_removed, 1);
  ASSERT_EQ(plan.commands.size(), 1u);
  EXPECT_TRUE(ValidatePlan(plan, schema).ok());

  // Idempotent: a second run finds nothing.
  PassStats again;
  EXPECT_FALSE(DcePass().Run(plan, schema, again));
}

TEST(PushdownPassTest, FoldsSelectionIntoAccess) {
  Schema schema = MakeSchema();
  Instance instance = SmallInstance(schema);
  Plan plan;
  plan.commands.push_back(FreeAccess(0, "t0"));
  plan.commands.push_back(QueryCommand{
      "t1",
      RaExpr::Select(RaExpr::TempScan("t0"),
                     {RaExpr::Condition::AttrEqConst("a", Value::Int(1)),
                      RaExpr::Condition::AttrEqAttr("a", "b")})});
  plan.output_table = "t1";
  plan.output_attrs = {"a", "b"};
  const Plan original = plan;

  PassStats stats;
  EXPECT_TRUE(PushdownPass().Run(plan, schema, stats));
  EXPECT_EQ(stats.selections_folded, 2);
  const auto& access = std::get<AccessCommand>(plan.commands[0]);
  ASSERT_EQ(access.position_constants.size(), 1u);
  EXPECT_EQ(access.position_constants[0].first, 0);
  ASSERT_EQ(access.position_equalities.size(), 1u);
  // The query command now scans the (pre-filtered) access output directly.
  EXPECT_EQ(std::get<QueryCommand>(plan.commands[1]).expr->op(),
            RaExpr::Op::kTempScan);
  EXPECT_TRUE(ValidatePlan(plan, schema).ok());
  ExpectSameResults(original, plan, schema, instance, /*seed=*/-1);
}

TEST(PushdownPassTest, DoesNotFoldWhenTableHasOtherReaders) {
  Schema schema = MakeSchema();
  Plan plan;
  plan.commands.push_back(FreeAccess(0, "t0"));
  plan.commands.push_back(QueryCommand{
      "t1", RaExpr::Select(RaExpr::TempScan("t0"),
                           {RaExpr::Condition::AttrEqConst("a",
                                                           Value::Int(1))})});
  // t0 is also consumed unfiltered: folding would change this reader.
  plan.commands.push_back(QueryCommand{
      "t2", RaExpr::Union(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.output_table = "t2";
  plan.output_attrs = {"a", "b"};

  PassStats stats;
  PushdownPass().Run(plan, schema, stats);
  EXPECT_EQ(stats.selections_folded, 0);
  EXPECT_TRUE(
      std::get<AccessCommand>(plan.commands[0]).position_constants.empty());
}

TEST(PushdownPassTest, NarrowsAccessInputToBoundColumns) {
  Schema schema = MakeSchema();
  Instance instance = SmallInstance(schema);
  Plan plan;
  plan.commands.push_back(FreeAccess(0, "t0"));
  AccessCommand keyed;
  keyed.method = 1;
  keyed.input = RaExpr::TempScan("t0");  // two columns, one consumed
  keyed.input_binding = {{"b", 0}};
  keyed.output_table = "t1";
  keyed.output_columns = {{"b", 0}, {"c", 1}};
  plan.commands.push_back(keyed);
  plan.output_table = "t1";
  plan.output_attrs = {"b", "c"};
  const Plan original = plan;

  PassStats stats;
  EXPECT_TRUE(PushdownPass().Run(plan, schema, stats));
  EXPECT_EQ(stats.inputs_narrowed, 1);
  const auto& access = std::get<AccessCommand>(plan.commands[1]);
  ASSERT_EQ(access.input->op(), RaExpr::Op::kProject);
  EXPECT_EQ(access.input->attrs(), std::vector<std::string>{"b"});
  EXPECT_TRUE(ValidatePlan(plan, schema).ok());
  ExpectSameResults(original, plan, schema, instance, /*seed=*/-1);

  // Already narrow: nothing more to do.
  PassStats again;
  EXPECT_FALSE(PushdownPass().Run(plan, schema, again));
}

TEST(JoinReorderPassTest, MovesSharedAttributesTogether) {
  Schema schema;
  RelationId a = schema.AddRelation("A", 2).value();
  RelationId b = schema.AddRelation("B", 2).value();
  RelationId c = schema.AddRelation("C", 2).value();
  schema.AddAccessMethod("free_a", a, {}).value();
  schema.AddAccessMethod("free_b", b, {}).value();
  schema.AddAccessMethod("free_c", c, {}).value();
  Instance instance(&schema);
  for (int i = 0; i < 6; ++i) {
    instance.AddFact(0, Tuple{Value::Int(i % 3), Value::Int(i)});
    instance.AddFact(1, Tuple{Value::Int(i % 2), Value::Int(i % 3)});
    instance.AddFact(2, Tuple{Value::Int(i), Value::Int(i % 2)});
  }

  auto access = [](AccessMethodId method, const std::string& table,
                   const std::string& x, const std::string& y) {
    AccessCommand cmd;
    cmd.method = method;
    cmd.output_table = table;
    cmd.output_columns = {{x, 0}, {y, 1}};
    return cmd;
  };
  Plan plan;
  plan.commands.push_back(access(0, "ta", "u", "v"));  // A(u, v)
  plan.commands.push_back(access(1, "tb", "w", "x"));  // B(w, x)
  plan.commands.push_back(access(2, "tc", "v", "w"));  // C(v, w)
  // ta ⋈ tb is a cartesian product; ta ⋈ tc shares v, then tb shares w.
  plan.commands.push_back(QueryCommand{
      "out",
      RaExpr::Join(RaExpr::Join(RaExpr::TempScan("ta"), RaExpr::TempScan("tb")),
                   RaExpr::TempScan("tc"))});
  plan.output_table = "out";
  plan.output_attrs = {"u", "x"};
  const Plan original = plan;

  PassStats stats;
  EXPECT_TRUE(JoinReorderPass().Run(plan, schema, stats));
  EXPECT_EQ(stats.joins_reordered, 1);
  // Rebuilt as Project[original attrs]((ta ⋈ tc) ⋈ tb).
  const auto& expr = *std::get<QueryCommand>(plan.commands[3]).expr;
  ASSERT_EQ(expr.op(), RaExpr::Op::kProject);
  const auto& top = *expr.children()[0];
  ASSERT_EQ(top.op(), RaExpr::Op::kJoin);
  EXPECT_EQ(top.children()[1]->table(), "tb");
  EXPECT_TRUE(ValidatePlan(plan, schema).ok());
  ExpectSameResults(original, plan, schema, instance, /*seed=*/-1);

  // Idempotent: the greedy order is stable under re-running.
  Plan once = plan;
  PassStats again;
  EXPECT_FALSE(JoinReorderPass().Run(plan, schema, again));
  (void)once;
}

// ---------------------------------------------------------------------------
// PassManager contracts.

TEST(PassManagerTest, PipelineCollapsesRedundantAccessesAndLowersCost) {
  Schema schema = MakeSchema();
  Instance instance = SmallInstance(schema);
  Plan plan;
  plan.commands.push_back(FreeAccess(0, "t0"));
  plan.commands.push_back(FreeAccess(0, "t1"));
  plan.commands.push_back(QueryCommand{
      "t2", RaExpr::Join(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.output_table = "t2";
  plan.output_attrs = {"a", "b"};

  SimpleCostFunction cost(&schema);
  PassManager manager;
  OptimizeStats stats;
  auto optimized = manager.Optimize(plan, schema, cost, &stats);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  EXPECT_TRUE(stats.changed);
  EXPECT_EQ(stats.access_commands_before, 2);
  EXPECT_EQ(stats.access_commands_after, 1);
  EXPECT_DOUBLE_EQ(stats.cost_before, 4.0);
  EXPECT_DOUBLE_EQ(stats.cost_after, 2.0);
  EXPECT_TRUE(ValidatePlan(*optimized, schema).ok());
  ExpectSameResults(plan, *optimized, schema, instance, /*seed=*/-1);
}

TEST(PassManagerTest, ErrorsOnInvalidInputPlan) {
  Schema schema = MakeSchema();
  Plan plan;
  plan.commands.push_back(
      QueryCommand{"t0", RaExpr::TempScan("never_defined")});
  plan.output_table = "t0";
  SimpleCostFunction cost(&schema);
  EXPECT_FALSE(PassManager().Optimize(plan, schema, cost).ok());
}

TEST(PassManagerTest, DisabledPassesDoNotRun) {
  Schema schema = MakeSchema();
  Plan plan;
  plan.commands.push_back(FreeAccess(0, "t0"));
  plan.commands.push_back(FreeAccess(0, "dead"));
  plan.output_table = "t0";
  plan.output_attrs = {"a", "b"};

  SimpleCostFunction cost(&schema);
  OptimizerOptions options;
  options.enable_cse = false;
  options.enable_pushdown = false;
  options.enable_dce = false;
  options.enable_join_reorder = false;
  OptimizeStats stats;
  auto optimized = PassManager(options).Optimize(plan, schema, cost, &stats);
  ASSERT_TRUE(optimized.ok());
  EXPECT_FALSE(stats.changed);
  EXPECT_TRUE(stats.passes.empty());
  EXPECT_EQ(optimized->commands.size(), 2u);
}

// ---------------------------------------------------------------------------
// Seeded differential + property suite over redundancy-heavy random plans.

/// Builds random always-valid plans that are deliberately wasteful: cloned
/// access commands, selections left above scans, full-width inputs into
/// keyed accesses, and shuffled join chains — exactly the shapes the passes
/// claim to clean up.
class RedundantPlanBuilder {
 public:
  explicit RedundantPlanBuilder(uint64_t seed) : prng_(seed) {}

  void BuildSchema(Schema& schema) {
    const int num_relations = 2 + static_cast<int>(Pick(3));
    for (int r = 0; r < num_relations; ++r) {
      const int arity = 1 + static_cast<int>(Pick(3));
      arities_.push_back(arity);
      RelationId rel =
          schema.AddRelation("R" + std::to_string(r), arity).value();
      free_methods_.push_back(
          schema.AddAccessMethod("free" + std::to_string(r), rel, {}, 2.0)
              .value());
      if (arity >= 2) {
        const int key = static_cast<int>(Pick(arity));
        keyed_methods_.push_back(
            schema.AddAccessMethod("keyed" + std::to_string(r), rel, {key}, 5.0)
                .value());
        keyed_key_pos_.push_back(key);
        keyed_arity_.push_back(arity);
      }
    }
  }

  Instance BuildInstance(const Schema& schema) {
    Instance instance(&schema);
    const int domain = 4 + static_cast<int>(Pick(6));
    for (size_t r = 0; r < arities_.size(); ++r) {
      const int rows = 1 + static_cast<int>(Pick(20));
      for (int i = 0; i < rows; ++i) {
        Tuple fact;
        for (int c = 0; c < arities_[r]; ++c) {
          fact.push_back(Value::Int(static_cast<int64_t>(Pick(domain))));
        }
        instance.AddFact(static_cast<RelationId>(r), std::move(fact));
      }
    }
    return instance;
  }

  Plan BuildPlan() {
    Plan plan;
    // Free accesses, each cloned with probability 1/2 (CSE + DCE bait).
    const int num_free = 1 + static_cast<int>(Pick(2));
    for (int i = 0; i < num_free; ++i) {
      const size_t m = Pick(free_methods_.size());
      AccessCommand access;
      access.method = free_methods_[m];
      access.output_table = NextTable();
      for (int p = 0; p < arities_[m]; ++p) {
        access.output_columns.emplace_back(Attr(m, p), p);
      }
      NoteTable(access.output_table, AttrsOf(access.output_columns));
      if (Coin(0.5)) {
        AccessCommand clone = access;
        clone.output_table = NextTable();
        NoteTable(clone.output_table, AttrsOf(clone.output_columns));
        plan.commands.push_back(std::move(clone));
      }
      plan.commands.push_back(std::move(access));
    }
    const int extra = 2 + static_cast<int>(Pick(4));
    for (int i = 0; i < extra; ++i) {
      switch (Pick(4)) {
        case 0: {  // selection left above a scan (pushdown bait)
          const std::string& table = tables_[Pick(tables_.size())];
          const std::vector<std::string>& attrs = table_attrs_[table];
          RaExpr::Condition cond = RaExpr::Condition::AttrEqConst(
              attrs[Pick(attrs.size())],
              Value::Int(static_cast<int64_t>(Pick(8))));
          QueryCommand query;
          query.output_table = NextTable();
          query.expr = RaExpr::Select(RaExpr::TempScan(table), {cond});
          NoteTable(query.output_table, attrs);
          plan.commands.push_back(std::move(query));
          break;
        }
        case 1: {  // keyed access fed the full table (narrowing bait)
          if (keyed_methods_.empty()) break;
          const size_t k = Pick(keyed_methods_.size());
          const std::string& table = tables_[Pick(tables_.size())];
          const std::vector<std::string>& attrs = table_attrs_[table];
          AccessCommand access;
          access.method = keyed_methods_[k];
          access.input = RaExpr::TempScan(table);
          access.input_binding = {{attrs[Pick(attrs.size())],
                                   keyed_key_pos_[k]}};
          access.output_table = NextTable();
          for (int p = 0; p < keyed_arity_[k]; ++p) {
            access.output_columns.emplace_back(
                "k" + std::to_string(next_table_) + "_" + std::to_string(p),
                p);
          }
          NoteTable(access.output_table, AttrsOf(access.output_columns));
          plan.commands.push_back(std::move(access));
          break;
        }
        case 2: {  // three-way join chain in arbitrary order (reorder bait)
          QueryCommand query;
          query.output_table = NextTable();
          const std::string& t0 = tables_[Pick(tables_.size())];
          const std::string& t1 = tables_[Pick(tables_.size())];
          const std::string& t2 = tables_[Pick(tables_.size())];
          query.expr = RaExpr::Join(
              RaExpr::Join(RaExpr::TempScan(t0), RaExpr::TempScan(t1)),
              RaExpr::TempScan(t2));
          std::vector<std::string> attrs = table_attrs_[t0];
          AppendNew(attrs, table_attrs_[t1]);
          AppendNew(attrs, table_attrs_[t2]);
          NoteTable(query.output_table, std::move(attrs));
          plan.commands.push_back(std::move(query));
          break;
        }
        default: {  // projection of a random table
          const std::string& table = tables_[Pick(tables_.size())];
          const std::vector<std::string>& attrs = table_attrs_[table];
          std::vector<std::string> kept;
          for (const std::string& a : attrs) {
            if (Coin(0.7)) kept.push_back(a);
          }
          if (kept.empty()) kept.push_back(attrs[Pick(attrs.size())]);
          QueryCommand query;
          query.output_table = NextTable();
          query.expr = RaExpr::Project(RaExpr::TempScan(table), kept);
          NoteTable(query.output_table, std::move(kept));
          plan.commands.push_back(std::move(query));
          break;
        }
      }
    }
    const std::string& out = tables_.back();
    const std::vector<std::string>& attrs = table_attrs_[out];
    std::vector<std::string> picked;
    for (const std::string& a : attrs) {
      if (Coin(0.8)) picked.push_back(a);
    }
    if (picked.empty()) picked.push_back(attrs[0]);
    plan.output_table = out;
    plan.output_attrs = std::move(picked);
    return plan;
  }

 private:
  size_t Pick(size_t n) { return static_cast<size_t>(prng_() % n); }
  bool Coin(double p) {
    return static_cast<double>(prng_() >> 11) * 0x1.0p-53 < p;
  }

  std::string NextTable() { return "t" + std::to_string(next_table_++); }

  /// Attribute names are shared across relations ("c0", "c1", ...), so
  /// joins between different relations' outputs actually have join keys.
  static std::string Attr(size_t relation, int pos) {
    (void)relation;
    return "c" + std::to_string(pos);
  }

  static std::vector<std::string> AttrsOf(
      const std::vector<std::pair<std::string, int>>& cols) {
    std::vector<std::string> attrs;
    attrs.reserve(cols.size());
    for (const auto& [attr, pos] : cols) attrs.push_back(attr);
    return attrs;
  }

  static void AppendNew(std::vector<std::string>& attrs,
                        const std::vector<std::string>& more) {
    for (const std::string& a : more) {
      if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
        attrs.push_back(a);
      }
    }
  }

  void NoteTable(const std::string& name, std::vector<std::string> attrs) {
    if (table_attrs_.emplace(name, std::move(attrs)).second) {
      tables_.push_back(name);
    }
  }

  std::mt19937_64 prng_;
  int next_table_ = 0;
  std::vector<int> arities_;
  std::vector<AccessMethodId> free_methods_;
  std::vector<AccessMethodId> keyed_methods_;
  std::vector<int> keyed_key_pos_;
  std::vector<int> keyed_arity_;
  std::vector<std::string> tables_;
  std::unordered_map<std::string, std::vector<std::string>> table_attrs_;
};

TEST(PlanOptDifferentialTest, RandomRedundantPlansStayEquivalent) {
  const int iters = StressIters(30);
  for (int seed = 0; seed < iters; ++seed) {
    RedundantPlanBuilder builder(static_cast<uint64_t>(seed) * 271 + 7);
    Schema schema;
    builder.BuildSchema(schema);
    Instance instance = builder.BuildInstance(schema);
    Plan plan = builder.BuildPlan();
    ASSERT_TRUE(ValidatePlan(plan, schema).ok()) << "seed " << seed;

    // Alternate the active cost model: the no-regression guard must hold
    // under any monotone cost function, not just the simple one.
    SimpleCostFunction simple(&schema);
    CardinalityEstimates estimates;
    estimates.default_cardinality = 50;
    CardinalityCostFunction cardinality(&schema, estimates);
    const CostFunction& cost =
        seed % 2 == 0 ? static_cast<const CostFunction&>(simple) : cardinality;

    PassManager manager;
    OptimizeStats stats;
    auto optimized = manager.Optimize(plan, schema, cost, &stats);
    ASSERT_TRUE(optimized.ok()) << "seed " << seed << ": "
                                << optimized.status().message();

    // Cost monotonicity + validity: the PassManager contract.
    EXPECT_TRUE(ValidatePlan(*optimized, schema).ok()) << "seed " << seed;
    EXPECT_LE(stats.cost_after, stats.cost_before + 1e-9) << "seed " << seed;
    EXPECT_LE(stats.commands_after, stats.commands_before) << "seed " << seed;
    EXPECT_LE(stats.access_commands_after, stats.access_commands_before)
        << "seed " << seed;
    // Under the simple model every pass is provably cost-non-increasing
    // (none of them adds an access command), so the guard never fires.
    // Under the cardinality model a fold can raise the *estimate* (the
    // estimator scores Select selectivity, not position filters) and the
    // guard is expected to discard exactly those outputs — so rejections
    // are legitimate there and only validity/monotonicity is asserted.
    if (seed % 2 == 0) {
      for (const PassStats& pass : stats.passes) {
        EXPECT_EQ(pass.rejected, 0)
            << "seed " << seed << ": pass " << pass.pass
            << " produced an invalid or costlier plan";
      }
    }

    ExpectSameResults(plan, *optimized, schema, instance, seed);
  }
}

TEST(PlanOptDifferentialTest, ProofSearchPlansStayEquivalent) {
  struct Case {
    Result<Scenario> (*make)();
    int budget;
  };
  auto profinfo = [] { return MakeProfinfoScenario(false); };
  auto telephone = [] { return MakeTelephoneScenario(); };
  auto multisource = [] { return MakeMultiSourceScenario(3); };
  auto chain = [] { return MakeChainScenario(3); };
  auto views = [] { return MakeViewScenario(2); };
  const Case cases[] = {{+profinfo, 3},
                        {+telephone, 5},
                        {+multisource, 4},
                        {+chain, 4},
                        {+views, 3}};
  for (const Case& c : cases) {
    auto scenario = c.make();
    ASSERT_TRUE(scenario.ok());
    auto accessible = AccessibleSchema::Build(*scenario->schema,
                                              AccessibleVariant::kStandard);
    ASSERT_TRUE(accessible.ok());
    SimpleCostFunction cost(scenario->schema.get());
    ProofSearch search(&*accessible, &cost);

    SearchOptions options;
    options.max_access_commands = c.budget;
    auto literal = search.Run(scenario->query, options);
    options.optimize_plans = true;
    auto optimized = search.Run(scenario->query, options);
    ASSERT_TRUE(literal.ok() && optimized.ok()) << scenario->name;
    ASSERT_TRUE(literal->best.has_value()) << scenario->name;
    ASSERT_TRUE(optimized->best.has_value()) << scenario->name;
    EXPECT_TRUE(optimized->optimized) << scenario->name;
    EXPECT_LE(optimized->best->cost, literal->best->cost) << scenario->name;
    EXPECT_TRUE(
        ValidatePlan(optimized->best->plan, *scenario->schema).ok())
        << scenario->name;

    GeneratorOptions gen;
    gen.facts_per_relation = 12;
    gen.seed = 7;
    auto instance = GenerateInstance(*scenario->schema, gen);
    ASSERT_TRUE(instance.ok()) << scenario->name;
    ExpectSameResults(literal->best->plan, optimized->best->plan,
                      *scenario->schema, *instance, /*seed=*/c.budget);
  }
}

TEST(PlanOptTest, SharedPassManagerIsThreadSafe) {
  // The serving path shares one const PassManager across workers; this is
  // the TSan target for that claim.
  const int iters = std::min(StressIters(8), 32);
  std::vector<Schema> schemas(iters);
  std::vector<Plan> plans;
  for (int i = 0; i < iters; ++i) {
    RedundantPlanBuilder builder(static_cast<uint64_t>(i) * 911 + 13);
    builder.BuildSchema(schemas[i]);
    plans.push_back(builder.BuildPlan());
  }
  PassManager manager;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < iters; ++i) {
          SimpleCostFunction cost(&schemas[i]);
          auto optimized = manager.Optimize(plans[i], schemas[i], cost);
          if (!optimized.ok() ||
              !ValidatePlan(*optimized, schemas[i]).ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      (void)t;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(PlanOptServiceTest, OptimizerStatsFlowThroughService) {
  auto scenario = MakeTelephoneScenario().value();
  auto accessible =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  SimpleCostFunction cost(scenario.schema.get());
  GeneratorOptions gen;
  gen.facts_per_relation = 10;
  auto instance = GenerateInstance(*scenario.schema, gen).value();

  ServiceOptions options;
  options.num_workers = 2;
  options.search.max_access_commands = 5;
  ASSERT_TRUE(options.optimize_plans);  // default on in the serving path
  QueryService service(
      &accessible, &cost,
      [&] { return std::make_unique<SimulatedSource>(scenario.schema.get(),
                                                     &instance); },
      options);

  QueryRequest request;
  request.query = scenario.query;
  QueryResponse first = service.Call(request);
  ASSERT_TRUE(first.status.ok()) << first.status.message();
  ASSERT_NE(first.plan, nullptr);
  EXPECT_TRUE(ValidatePlan(first.plan->plan, *scenario.schema).ok());

  QueryResponse second = service.Call(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);  // hits serve the pre-optimized plan

  ServiceStats stats = service.SnapshotStats();
  EXPECT_GE(stats.searches, 1u);
  // The optimizer only counts runs that changed the plan, and never more
  // than one per search.
  EXPECT_LE(stats.plans_optimized, stats.searches);
  service.Shutdown();
}

}  // namespace
}  // namespace lcp
