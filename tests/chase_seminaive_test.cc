// Differential tests for the semi-naïve (delta-driven) chase: the naive
// engine is the reference oracle. Randomized full-TGD programs are compared
// for exact fact-set equality; workload scenarios with existential TGDs are
// compared up to homomorphic equivalence over the invented nulls.

#include <algorithm>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lcp/base/strings.h"
#include "lcp/chase/engine.h"
#include "lcp/chase/matcher.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace lcp {
namespace {

struct ChaseRun {
  std::unique_ptr<TermArena> arena;
  ChaseConfig config;
  ChaseStats stats;
  size_t initial_facts = 0;
};

/// Seeds a fresh arena + config via `seed`, then chases `schema`'s
/// constraints to fixpoint under `mode`.
ChaseRun RunChase(const Schema& schema,
                  const std::function<void(TermArena&, ChaseConfig&)>& seed,
                  ChaseEvaluationMode mode, ChaseOptions options) {
  ChaseRun run;
  run.arena = std::make_unique<TermArena>();
  seed(*run.arena, run.config);
  run.initial_facts = run.config.size();
  ChaseEngine engine(&schema, run.arena.get());
  options.evaluation_mode = mode;
  auto stats = engine.Run(schema.constraints(), options, run.config);
  EXPECT_TRUE(stats.ok()) << stats.status();
  if (stats.ok()) run.stats = *stats;
  return run;
}

std::vector<std::pair<RelationId, std::vector<ChaseTermId>>> SortedFacts(
    const ChaseConfig& config) {
  std::vector<std::pair<RelationId, std::vector<ChaseTermId>>> facts;
  facts.reserve(config.size());
  for (const Fact& fact : config.facts()) {
    facts.emplace_back(fact.relation, fact.terms);
  }
  std::sort(facts.begin(), facts.end());
  return facts;
}

/// True if every fact of `a` maps into `b` under a substitution that fixes
/// constants and the shared initial facts' terms (both runs seed their
/// arenas identically, so initial term ids coincide) and renames the
/// invented nulls freely.
bool EmbedsInto(const ChaseRun& a, const ChaseRun& b) {
  std::unordered_set<ChaseTermId> fixed;
  for (size_t i = 0; i < a.initial_facts; ++i) {
    for (ChaseTermId t : a.config.facts()[i].terms) fixed.insert(t);
  }
  std::unordered_map<ChaseTermId, int> var_of;
  std::vector<PatternAtom> pattern;
  for (const Fact& fact : a.config.facts()) {
    PatternAtom atom;
    atom.relation = fact.relation;
    for (ChaseTermId t : fact.terms) {
      PatternAtom::Slot slot;
      if (TermArena::IsConstant(t) || fixed.count(t) > 0) {
        slot.is_variable = false;
        slot.term = t;
      } else {
        slot.is_variable = true;
        auto [it, inserted] = var_of.emplace(t, static_cast<int>(var_of.size()));
        slot.var_index = it->second;
      }
      atom.slots.push_back(slot);
    }
    pattern.push_back(std::move(atom));
  }
  std::vector<ChaseTermId> assignment(var_of.size(), kUnboundTerm);
  return HasHomomorphism(pattern, b.config, std::move(assignment));
}

/// Runs both modes on a scenario's canonical database and checks that they
/// agree: same fixpoint flag, same configuration size, and homomorphically
/// equivalent final configurations.
void ExpectModesAgree(const Scenario& scenario, ChaseOptions options,
                      bool expect_equal_firings = true) {
  SCOPED_TRACE(scenario.name);
  auto seed = [&](TermArena& arena, ChaseConfig& config) {
    CanonicalDatabase canonical = BuildCanonicalDatabase(scenario.query, arena);
    config = std::move(canonical.config);
  };
  ChaseRun naive =
      RunChase(*scenario.schema, seed, ChaseEvaluationMode::kNaive, options);
  ChaseRun delta = RunChase(*scenario.schema, seed,
                            ChaseEvaluationMode::kSemiNaive, options);
  EXPECT_EQ(naive.stats.reached_fixpoint, delta.stats.reached_fixpoint);
  EXPECT_EQ(naive.config.size(), delta.config.size());
  if (expect_equal_firings) {
    EXPECT_EQ(naive.stats.firings, delta.stats.firings);
  }
  EXPECT_TRUE(EmbedsInto(naive, delta));
  EXPECT_TRUE(EmbedsInto(delta, naive));
}

// ---------------------------------------------------------------------------
// Randomized full-TGD programs: no invented nulls, so the two modes must
// produce bit-identical fact sets and equal firing counts (single-atom full
// heads add exactly one fact per firing).
// ---------------------------------------------------------------------------

struct RandomProgram {
  std::unique_ptr<Schema> schema;
  /// EDB facts as constant payloads; interned per-arena at seed time so both
  /// runs get identical term ids.
  std::vector<std::pair<RelationId, std::vector<int>>> edb;
};

RandomProgram MakeRandomProgram(uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&](int n) { return static_cast<int>(rng() % n); };
  RandomProgram prog;
  prog.schema = std::make_unique<Schema>();

  const int num_rels = 3 + pick(3);  // 3..5 relations
  std::vector<RelationId> rels;
  std::vector<int> arity;
  for (int r = 0; r < num_rels; ++r) {
    arity.push_back(1 + pick(3));  // arity 1..3
    rels.push_back(
        prog.schema->AddRelation(StrCat("R", r), arity.back()).value());
  }

  const char* kVars[] = {"a", "b", "c", "d"};
  const int num_rules = 4 + pick(4);  // 4..7 rules
  for (int i = 0; i < num_rules; ++i) {
    const int body_atoms = 1 + pick(2);
    std::vector<std::string> body;
    std::vector<std::string> used_vars;
    for (int ba = 0; ba < body_atoms; ++ba) {
      int rel = pick(num_rels);
      std::vector<std::string> terms;
      for (int p = 0; p < arity[rel]; ++p) {
        const char* v = kVars[pick(4)];
        terms.push_back(v);
        if (std::find(used_vars.begin(), used_vars.end(), v) ==
            used_vars.end()) {
          used_vars.push_back(v);
        }
      }
      body.push_back(StrCat("R", rel, "(", StrJoin(terms, ", "), ")"));
    }
    // Full TGD: every head variable comes from the body.
    int head_rel = pick(num_rels);
    std::vector<std::string> head_terms;
    for (int p = 0; p < arity[head_rel]; ++p) {
      head_terms.push_back(used_vars[pick(static_cast<int>(used_vars.size()))]);
    }
    std::string text = StrCat(StrJoin(body, " & "), " -> R", head_rel, "(",
                              StrJoin(head_terms, ", "), ")");
    Tgd tgd = ParseTgd(*prog.schema, text).value();
    tgd.name = StrCat("rule", i);
    EXPECT_TRUE(prog.schema->AddConstraint(std::move(tgd)).ok()) << text;
  }

  const int num_facts = 6 + pick(10);
  for (int f = 0; f < num_facts; ++f) {
    int rel = pick(num_rels);
    std::vector<int> payload;
    for (int p = 0; p < arity[rel]; ++p) payload.push_back(pick(5));
    prog.edb.emplace_back(rels[rel], std::move(payload));
  }
  return prog;
}

TEST(SemiNaiveDifferentialTest, RandomFullTgdPrograms) {
  const uint32_t kPrograms = 12;
  for (uint32_t seed = 0; seed < kPrograms; ++seed) {
    SCOPED_TRACE(StrCat("program seed ", seed));
    RandomProgram prog = MakeRandomProgram(seed);
    auto seed_fn = [&](TermArena& arena, ChaseConfig& config) {
      for (const auto& [rel, payload] : prog.edb) {
        std::vector<ChaseTermId> terms;
        terms.reserve(payload.size());
        for (int v : payload) {
          terms.push_back(arena.InternConstant(Value::Int(v)));
        }
        config.Add(Fact(rel, std::move(terms)));
      }
    };
    ChaseOptions options;
    ChaseRun naive =
        RunChase(*prog.schema, seed_fn, ChaseEvaluationMode::kNaive, options);
    ChaseRun delta = RunChase(*prog.schema, seed_fn,
                              ChaseEvaluationMode::kSemiNaive, options);
    EXPECT_TRUE(naive.stats.reached_fixpoint);
    EXPECT_TRUE(delta.stats.reached_fixpoint);
    EXPECT_EQ(SortedFacts(naive.config), SortedFacts(delta.config));
    EXPECT_EQ(naive.stats.firings, delta.stats.firings);
    EXPECT_EQ(naive.stats.facts_added, delta.stats.facts_added);
  }
}

// ---------------------------------------------------------------------------
// Workload scenarios (existential TGDs): compare up to hom-equivalence.
// ---------------------------------------------------------------------------

TEST(SemiNaiveDifferentialTest, ChainScenarios) {
  for (int n : {1, 2, 3, 4, 6, 8, 12}) {
    ExpectModesAgree(MakeChainScenario(n).value(), ChaseOptions{});
  }
}

TEST(SemiNaiveDifferentialTest, ViewScenarios) {
  for (int m : {1, 2, 3}) {
    ExpectModesAgree(MakeViewScenario(m).value(), ChaseOptions{});
  }
}

TEST(SemiNaiveDifferentialTest, PaperExampleScenarios) {
  ExpectModesAgree(MakeProfinfoScenario(false).value(), ChaseOptions{});
  ExpectModesAgree(MakeProfinfoScenario(true).value(), ChaseOptions{});
  ExpectModesAgree(MakeTelephoneScenario().value(), ChaseOptions{});
  ExpectModesAgree(MakeMultiSourceScenario(3).value(), ChaseOptions{});
}

TEST(SemiNaiveDifferentialTest, CyclicGuardedScenario) {
  Scenario depth_capped = MakeCyclicGuardedScenario().value();
  ChaseOptions depth_options;
  depth_options.max_null_depth = 4;
  ExpectModesAgree(depth_capped, depth_options);

  Scenario blocked = MakeCyclicGuardedScenario().value();
  ChaseOptions blocking_options;
  blocking_options.use_guarded_blocking = true;
  blocking_options.max_firings = 10000;
  // Blocking decisions depend on enumeration order, so firing counts are
  // only required to agree within the blocking tolerance (hom-equivalence
  // and the fixpoint flag are still exact).
  ExpectModesAgree(blocked, blocking_options,
                   /*expect_equal_firings=*/false);
}

// ---------------------------------------------------------------------------
// Transitive closure (the bench scenario): semi-naïve must compute the same
// closure while enumerating asymptotically fewer triggers.
// ---------------------------------------------------------------------------

TEST(SemiNaiveDifferentialTest, TransitiveClosureWorkReduction) {
  const int n = 24;
  Schema schema;
  RelationId e = schema.AddRelation("E", 2).value();
  schema.AddRelation("T", 2).value();
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "E(x, y) -> T(x, y)")).ok());
  ASSERT_TRUE(
      schema.AddConstraint(*ParseTgd(schema, "T(x, y) & E(y, z) -> T(x, z)"))
          .ok());
  auto seed_fn = [&](TermArena& arena, ChaseConfig& config) {
    for (int i = 0; i < n; ++i) {
      config.Add(Fact(e, {arena.InternConstant(Value::Int(i)),
                          arena.InternConstant(Value::Int(i + 1))}));
    }
  };
  ChaseOptions options;
  ChaseRun naive =
      RunChase(schema, seed_fn, ChaseEvaluationMode::kNaive, options);
  ChaseRun delta =
      RunChase(schema, seed_fn, ChaseEvaluationMode::kSemiNaive, options);
  EXPECT_EQ(SortedFacts(naive.config), SortedFacts(delta.config));
  EXPECT_EQ(naive.stats.firings, delta.stats.firings);
  // The closure of a path of n edges has n*(n+1)/2 T-facts.
  EXPECT_EQ(delta.stats.facts_added, n * (n + 1) / 2);
  // The delta discipline enumerates each derivation O(1) times; the naive
  // oracle re-enumerates the whole join every round.
  EXPECT_LT(delta.stats.triggers_enumerated * 4,
            naive.stats.triggers_enumerated);
  EXPECT_GT(delta.stats.delta_enumerations, 0);
  EXPECT_GT(delta.stats.index_probes, 0);
}

}  // namespace
}  // namespace lcp
