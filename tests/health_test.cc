// Tests for the source-health registry (DESIGN.md §10): the per-method state
// machine (healthy -> degraded -> quarantined -> probing -> healthy), the
// availability epoch that keys the plan cache, the exclusion mask the planner
// consumes, and the registry's thread-safety contract.

#include "lcp/runtime/health.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "lcp/base/clock.h"
#include "lcp/schema/schema.h"

namespace lcp {
namespace {

Schema MakeSchema() {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  RelationId s = schema.AddRelation("S", 2).value();
  schema.AddAccessMethod("mt_r_free", r, {}, 2.0).value();
  schema.AddAccessMethod("mt_s_by0", s, {0}, 5.0).value();
  schema.AddAccessMethod("mt_s_free", s, {}, 50.0).value();
  return schema;
}

HealthOptions FastOptions(Clock* clock) {
  HealthOptions options;
  options.quarantine_after_consecutive = 3;
  options.quarantine_micros = 1000;
  options.quarantine_backoff = 2.0;
  options.max_quarantine_micros = 4000;
  options.clock = clock;
  return options;
}

const Tuple kBinding{Value::Int(7)};

TEST(SourceHealthRegistryTest, StartsHealthyWithEmptyMask) {
  Schema schema = MakeSchema();
  SharedVirtualClock clock;
  SourceHealthRegistry registry(&schema, FastOptions(&clock));

  EXPECT_TRUE(registry.ExcludedMethods().empty());
  EXPECT_EQ(registry.NumQuarantined(), 0u);
  EXPECT_EQ(registry.availability_epoch(), 1u);
  for (AccessMethodId m = 0; m < schema.num_access_methods(); ++m) {
    EXPECT_FALSE(registry.IsQuarantined(m));
    EXPECT_EQ(registry.Snapshot(m).state, MethodHealth::kHealthy);
  }
}

TEST(SourceHealthRegistryTest, EwmaFailuresDegradeBeforeQuarantine) {
  Schema schema = MakeSchema();
  SharedVirtualClock clock;
  HealthOptions options = FastOptions(&clock);
  options.quarantine_after_consecutive = 10;  // keep quarantine out of reach
  SourceHealthRegistry registry(&schema, options);

  // Default alpha 0.3, threshold 0.5: two straight failures push the EWMA to
  // 0.51 — degraded, but still serving (not excluded from planning).
  registry.RecordFailure(1, kBinding);
  EXPECT_EQ(registry.Snapshot(1).state, MethodHealth::kHealthy);
  registry.RecordFailure(1, kBinding);
  EXPECT_EQ(registry.Snapshot(1).state, MethodHealth::kDegraded);
  EXPECT_FALSE(registry.IsQuarantined(1));
  EXPECT_TRUE(registry.ExcludedMethods().empty());
  EXPECT_EQ(registry.availability_epoch(), 1u);

  // Successes decay the EWMA back below the threshold: healthy again.
  registry.RecordSuccess(1);
  registry.RecordSuccess(1);
  EXPECT_EQ(registry.Snapshot(1).state, MethodHealth::kHealthy);
}

TEST(SourceHealthRegistryTest, ConsecutiveFailuresQuarantineAndBumpEpoch) {
  Schema schema = MakeSchema();
  SharedVirtualClock clock;
  SourceHealthRegistry registry(&schema, FastOptions(&clock));

  registry.RecordFailure(1, kBinding);
  registry.RecordFailure(1, kBinding);
  EXPECT_FALSE(registry.IsQuarantined(1));
  registry.RecordFailure(1, kBinding);  // third consecutive: quarantined
  EXPECT_TRUE(registry.IsQuarantined(1));
  EXPECT_EQ(registry.Snapshot(1).state, MethodHealth::kQuarantined);
  EXPECT_EQ(registry.NumQuarantined(), 1u);
  EXPECT_EQ(registry.ExcludedMethods(), std::vector<AccessMethodId>{1});
  EXPECT_EQ(registry.availability_epoch(), 2u);
  EXPECT_EQ(registry.stats().quarantines, 1u);

  // A success interleaved between failures resets the consecutive counter.
  registry.RecordFailure(0, kBinding);
  registry.RecordFailure(0, kBinding);
  registry.RecordSuccess(0);
  registry.RecordFailure(0, kBinding);
  registry.RecordFailure(0, kBinding);
  EXPECT_FALSE(registry.IsQuarantined(0));
}

TEST(SourceHealthRegistryTest, StragglerFailuresDoNotReBumpEpoch) {
  Schema schema = MakeSchema();
  SharedVirtualClock clock;
  SourceHealthRegistry registry(&schema, FastOptions(&clock));

  for (int i = 0; i < 3; ++i) registry.RecordFailure(1, kBinding);
  const uint64_t epoch = registry.availability_epoch();
  // Requests planned before the quarantine keep failing on the method; the
  // mask did not change, so the epoch (and the cache keying) must not churn.
  registry.RecordFailure(1, kBinding);
  registry.RecordFailure(1, kBinding);
  EXPECT_EQ(registry.availability_epoch(), epoch);
  EXPECT_EQ(registry.stats().quarantines, 1u);
}

TEST(SourceHealthRegistryTest, QuarantineTimerReleasesOneProbe) {
  Schema schema = MakeSchema();
  SharedVirtualClock clock;
  SourceHealthRegistry registry(&schema, FastOptions(&clock));
  for (int i = 0; i < 3; ++i) registry.RecordFailure(1, kBinding);

  // Window not yet expired: nothing due.
  EXPECT_TRUE(registry.TakeDueProbes().empty());
  clock.Advance(1000);
  std::vector<SourceHealthRegistry::Probe> due = registry.TakeDueProbes();
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].method, 1);
  // The probe payload replays the last binding that actually failed.
  EXPECT_EQ(due[0].binding, kBinding);
  EXPECT_EQ(registry.Snapshot(1).state, MethodHealth::kProbing);
  // Half-open: the method stays excluded from planning while probing, and a
  // second claimant gets nothing.
  EXPECT_TRUE(registry.IsQuarantined(1));
  EXPECT_TRUE(registry.TakeDueProbes().empty());
  EXPECT_EQ(registry.stats().probes_sent, 1u);
}

TEST(SourceHealthRegistryTest, ProbeSuccessRecoversAndBumpsEpoch) {
  Schema schema = MakeSchema();
  SharedVirtualClock clock;
  SourceHealthRegistry registry(&schema, FastOptions(&clock));
  for (int i = 0; i < 3; ++i) registry.RecordFailure(1, kBinding);
  clock.Advance(1000);
  ASSERT_EQ(registry.TakeDueProbes().size(), 1u);
  const uint64_t epoch = registry.availability_epoch();

  registry.RecordSuccess(1);  // interpreted as the probe result
  EXPECT_EQ(registry.Snapshot(1).state, MethodHealth::kHealthy);
  EXPECT_FALSE(registry.IsQuarantined(1));
  EXPECT_TRUE(registry.ExcludedMethods().empty());
  // Recovery changes the mask: epoch bump makes detour plans unreachable.
  EXPECT_EQ(registry.availability_epoch(), epoch + 1);
  EXPECT_EQ(registry.stats().recoveries, 1u);
  // Failure memory is reset: the next wobble starts from a clean slate.
  EXPECT_EQ(registry.Snapshot(1).ewma_failure_rate, 0.0);
  EXPECT_EQ(registry.Snapshot(1).consecutive_failures, 0);
}

TEST(SourceHealthRegistryTest, ProbeFailureBacksOffWithoutEpochBump) {
  Schema schema = MakeSchema();
  SharedVirtualClock clock;
  SourceHealthRegistry registry(&schema, FastOptions(&clock));
  for (int i = 0; i < 3; ++i) registry.RecordFailure(1, kBinding);
  const uint64_t epoch = registry.availability_epoch();

  // First window: 1000us. Failed probe doubles it (2000), then 4000, then
  // clamps at max_quarantine_micros = 4000.
  int64_t expected_window = 1000;
  for (int round = 0; round < 4; ++round) {
    clock.Advance(expected_window);
    ASSERT_EQ(registry.TakeDueProbes().size(), 1u) << "round " << round;
    registry.RecordFailure(1, kBinding);  // probe failed
    EXPECT_EQ(registry.Snapshot(1).state, MethodHealth::kQuarantined);
    // Still excluded; the mask never changed, so the epoch must not move.
    EXPECT_EQ(registry.availability_epoch(), epoch) << "round " << round;
    expected_window = std::min<int64_t>(expected_window * 2, 4000);
    EXPECT_EQ(registry.Snapshot(1).quarantined_until,
              clock.NowMicros() + expected_window)
        << "round " << round;
  }
  EXPECT_EQ(registry.stats().probes_failed, 4u);
  EXPECT_EQ(registry.stats().probes_sent, 4u);

  // Eventually the source heals: success on the next probe recovers.
  clock.Advance(4000);
  ASSERT_EQ(registry.TakeDueProbes().size(), 1u);
  registry.RecordSuccess(1);
  EXPECT_FALSE(registry.IsQuarantined(1));
  EXPECT_EQ(registry.availability_epoch(), epoch + 1);
}

TEST(SourceHealthRegistryTest, IndependentMethodsTrackIndependently) {
  Schema schema = MakeSchema();
  SharedVirtualClock clock;
  SourceHealthRegistry registry(&schema, FastOptions(&clock));

  for (int i = 0; i < 3; ++i) registry.RecordFailure(0, kBinding);
  for (int i = 0; i < 3; ++i) registry.RecordFailure(2, kBinding);
  EXPECT_EQ(registry.NumQuarantined(), 2u);
  EXPECT_EQ(registry.ExcludedMethods(), (std::vector<AccessMethodId>{0, 2}));
  EXPECT_FALSE(registry.IsQuarantined(1));
  // Two independent mask changes: two epoch bumps.
  EXPECT_EQ(registry.availability_epoch(), 3u);

  clock.Advance(1000);
  EXPECT_EQ(registry.TakeDueProbes().size(), 2u);
}

/// TSan target: concurrent recorders, probers, and lock-free readers. The
/// assertions are deliberately weak — the test exists to race the mutex-held
/// state against IsQuarantined/availability_epoch readers.
TEST(SourceHealthRegistryTest, ConcurrentRecordersAndReadersAreSafe) {
  Schema schema = MakeSchema();
  SharedVirtualClock clock;
  HealthOptions options = FastOptions(&clock);
  options.quarantine_after_consecutive = 2;
  SourceHealthRegistry registry(&schema, options);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 500; ++i) {
        AccessMethodId m = static_cast<AccessMethodId>((t + i) % 3);
        if ((i + t) % 3 == 0) {
          registry.RecordSuccess(m);
        } else {
          registry.RecordFailure(m, kBinding);
        }
        (void)registry.IsQuarantined(m);
        (void)registry.availability_epoch();
        if (i % 50 == 0) {
          (void)registry.ExcludedMethods();
          (void)registry.TakeDueProbes();
        }
      }
    });
  }
  threads.emplace_back([&clock] {
    for (int i = 0; i < 200; ++i) clock.Advance(37);
  });
  for (std::thread& thread : threads) thread.join();

  // Conservation: every probe resolves as failed, recovered, or in flight.
  HealthStats stats = registry.stats();
  EXPECT_LE(stats.probes_failed + stats.recoveries, stats.probes_sent + 1);
  uint64_t recorded = 0;
  for (AccessMethodId m = 0; m < 3; ++m) {
    MethodHealthSnapshot snapshot = registry.Snapshot(m);
    recorded += snapshot.successes + snapshot.failures;
  }
  EXPECT_EQ(recorded, 4u * 500u);  // no record was lost or double-counted
}

}  // namespace
}  // namespace lcp
