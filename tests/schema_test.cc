#include "lcp/schema/schema.h"

#include <gtest/gtest.h>

#include "lcp/schema/parser.h"

namespace lcp {
namespace {

TEST(SchemaTest, AddAndLookupRelations) {
  Schema schema;
  auto r = schema.AddRelation("R", 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(schema.relation(*r).name, "R");
  EXPECT_EQ(schema.relation(*r).arity, 2);
  EXPECT_EQ(*schema.RelationByName("R"), *r);
  EXPECT_FALSE(schema.RelationByName("S").ok());
  EXPECT_FALSE(schema.AddRelation("R", 3).ok());  // duplicate
  EXPECT_FALSE(schema.AddRelation("Neg", -1).ok());
}

TEST(SchemaTest, AccessMethodValidation) {
  Schema schema;
  RelationId r = *schema.AddRelation("R", 2);
  EXPECT_TRUE(schema.AddAccessMethod("m1", r, {0}).ok());
  EXPECT_FALSE(schema.AddAccessMethod("m1", r, {1}).ok());   // dup name
  EXPECT_FALSE(schema.AddAccessMethod("m2", r, {2}).ok());   // out of range
  EXPECT_FALSE(schema.AddAccessMethod("m3", r, {0, 0}).ok());  // dup pos
  EXPECT_FALSE(schema.AddAccessMethod("m4", r, {}, 0.0).ok());  // zero cost
  EXPECT_FALSE(schema.AddAccessMethod("m5", 99, {}).ok());   // bad relation
  auto free = schema.AddAccessMethod("m6", r, {});
  ASSERT_TRUE(free.ok());
  EXPECT_TRUE(schema.access_method(*free).is_free_access());
  EXPECT_EQ(schema.MethodsOnRelation(r).size(), 2u);
}

TEST(SchemaTest, InputPositionsSorted) {
  Schema schema;
  RelationId r = *schema.AddRelation("R", 3);
  auto m = schema.AddAccessMethod("m", r, {2, 0});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(schema.access_method(*m).input_positions,
            (std::vector<int>{0, 2}));
}

TEST(SchemaTest, ConstantsDeduplicated) {
  Schema schema;
  schema.AddConstant(Value::Str("smith"));
  schema.AddConstant(Value::Str("smith"));
  schema.AddConstant(Value::Int(3));
  EXPECT_EQ(schema.constants().size(), 2u);
  EXPECT_TRUE(schema.IsSchemaConstant(Value::Int(3)));
  EXPECT_FALSE(schema.IsSchemaConstant(Value::Int(4)));
}

TEST(SchemaTest, ConstraintValidation) {
  Schema schema;
  RelationId r = *schema.AddRelation("R", 2);
  RelationId s = *schema.AddRelation("S", 1);
  Tgd good;
  good.body = {Atom(r, {Term::Var("x"), Term::Var("y")})};
  good.head = {Atom(s, {Term::Var("y")})};
  EXPECT_TRUE(schema.AddConstraint(good).ok());
  EXPECT_EQ(schema.constraints().size(), 1u);
  EXPECT_FALSE(schema.constraints()[0].name.empty());  // auto-named

  Tgd bad_arity;
  bad_arity.body = {Atom(r, {Term::Var("x")})};
  bad_arity.head = {Atom(s, {Term::Var("x")})};
  EXPECT_FALSE(schema.AddConstraint(bad_arity).ok());
}

TEST(SchemaTest, AllConstraintsGuarded) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  ASSERT_TRUE(schema.AddRelation("S", 2).ok());
  EXPECT_TRUE(schema.AllConstraintsGuarded());  // vacuous
  ASSERT_TRUE(schema.AddConstraint(*ParseTgd(schema, "R(x,y) -> S(y,z)")).ok());
  EXPECT_TRUE(schema.AllConstraintsGuarded());
  ASSERT_TRUE(
      schema.AddConstraint(*ParseTgd(schema, "R(x,y) & S(y,z) -> R(x,z)"))
          .ok());
  EXPECT_FALSE(schema.AllConstraintsGuarded());
}

TEST(ParserTest, ParseAtomForms) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 3).ok());
  auto atom = schema.ParseAtom("R(x, \"smith\", -42)");
  ASSERT_TRUE(atom.ok()) << atom.status();
  EXPECT_TRUE(atom->terms[0].is_variable());
  EXPECT_EQ(atom->terms[1].constant(), Value::Str("smith"));
  EXPECT_EQ(atom->terms[2].constant(), Value::Int(-42));
}

TEST(ParserTest, ParseAtomErrors) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 1).ok());
  EXPECT_FALSE(schema.ParseAtom("S(x)").ok());       // unknown relation
  EXPECT_FALSE(schema.ParseAtom("R(x, y)").ok());    // arity mismatch
  EXPECT_FALSE(schema.ParseAtom("R(x").ok());        // unterminated
  EXPECT_FALSE(schema.ParseAtom("R(\"x)").ok());     // unterminated string
  EXPECT_FALSE(schema.ParseAtom("(x)").ok());        // missing name
}

TEST(ParserTest, ParseZeroArityAtom) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("Nullary", 0).ok());
  auto atom = schema.ParseAtom("Nullary()");
  ASSERT_TRUE(atom.ok());
  EXPECT_TRUE(atom->terms.empty());
}

TEST(ParserTest, ParseTgdAndQuery) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  ASSERT_TRUE(schema.AddRelation("S", 2).ok());
  auto tgd = ParseTgd(schema, "R(x, y) & S(y, z) -> R(x, z)");
  ASSERT_TRUE(tgd.ok()) << tgd.status();
  EXPECT_EQ(tgd->body.size(), 2u);
  EXPECT_EQ(tgd->head.size(), 1u);

  auto query = ParseQuery(schema, "Q(x) :- R(x, y), S(y, x)");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->free_variables, (std::vector<std::string>{"x"}));
  EXPECT_EQ(query->atoms.size(), 2u);

  auto boolean = ParseQuery(schema, "Q() :- R(a, b)");
  ASSERT_TRUE(boolean.ok());
  EXPECT_TRUE(boolean->is_boolean());

  EXPECT_FALSE(ParseTgd(schema, "R(x, y)").ok());          // no arrow
  EXPECT_FALSE(ParseQuery(schema, "Q(x) R(x, y)").ok());   // no :-
  EXPECT_FALSE(ParseQuery(schema, "Q(z) :- R(x, y)").ok());  // unsafe
}

TEST(ParserTest, RoundTripPrinting) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  auto tgd = ParseTgd(schema, "R(x, y) -> R(y, z)");
  ASSERT_TRUE(tgd.ok());
  EXPECT_EQ(schema.TgdToString(*tgd), "R(x, y) -> R(y, z)");
  auto query = ParseQuery(schema, "Q(x) :- R(x, y)");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(schema.QueryToString(*query), "Q(x) :- R(x, y)");
}

// --- SchemaFingerprint (the plan-cache epoch key) --------------------------

Schema MakeFingerprintBase() {
  Schema schema;
  RelationId r = *schema.AddRelation("R", 2);
  schema.AddRelation("S", 2).value();
  schema.AddAccessMethod("m_r", r, {0}, 2.0).value();
  schema.AddConstant(Value::Str("smith"));
  EXPECT_TRUE(
      schema.AddConstraint(*ParseTgd(schema, "R(x, y) -> S(y, x)")).ok());
  return schema;
}

TEST(SchemaFingerprintTest, DeterministicAcrossIdenticalBuilds) {
  EXPECT_EQ(SchemaFingerprint(MakeFingerprintBase()),
            SchemaFingerprint(MakeFingerprintBase()));
}

TEST(SchemaFingerprintTest, EveryKindOfEditChangesIt) {
  const uint64_t base = SchemaFingerprint(MakeFingerprintBase());

  {
    Schema s = MakeFingerprintBase();
    s.AddRelation("T", 1).value();
    EXPECT_NE(SchemaFingerprint(s), base) << "new relation";
  }
  {
    Schema s = MakeFingerprintBase();
    s.AddAccessMethod("m_s", *s.RelationByName("S"), {}).value();
    EXPECT_NE(SchemaFingerprint(s), base) << "new access method";
  }
  {
    Schema s = MakeFingerprintBase();
    s.AddConstant(Value::Int(7));
    EXPECT_NE(SchemaFingerprint(s), base) << "new constant";
  }
  {
    Schema s = MakeFingerprintBase();
    ASSERT_TRUE(s.AddConstraint(*ParseTgd(s, "S(x, y) -> R(y, x)")).ok());
    EXPECT_NE(SchemaFingerprint(s), base) << "new constraint";
  }
}

TEST(SchemaFingerprintTest, ConstraintDetailsMatter) {
  // Same relations/methods, constraints differing only in atom structure or
  // variable identity must fingerprint apart — the cache invalidation key
  // has to see *any* constraint edit.
  auto build = [](const std::string& tgd_text) {
    Schema s;
    RelationId r = *s.AddRelation("R", 2);
    s.AddRelation("S", 2).value();
    s.AddAccessMethod("m_r", r, {0}).value();
    EXPECT_TRUE(s.AddConstraint(*ParseTgd(s, tgd_text)).ok());
    return SchemaFingerprint(s);
  };
  const uint64_t a = build("R(x, y) -> S(x, y)");
  EXPECT_NE(a, build("R(x, y) -> S(y, x)")) << "head variable order";
  EXPECT_NE(a, build("R(x, x) -> S(x, x)")) << "repeated variable";
  EXPECT_NE(a, build("R(x, y) -> S(x, z)")) << "existential head variable";
  EXPECT_NE(a, build("S(x, y) -> R(x, y)")) << "direction flipped";
}

TEST(SchemaFingerprintTest, MethodDetailsMatter) {
  auto build = [](std::vector<int> positions, double cost) {
    Schema s;
    RelationId r = *s.AddRelation("R", 2);
    s.AddAccessMethod("m", r, std::move(positions), cost).value();
    return SchemaFingerprint(s);
  };
  const uint64_t a = build({0}, 1.0);
  EXPECT_NE(a, build({1}, 1.0)) << "input position";
  EXPECT_NE(a, build({0, 1}, 1.0)) << "extra input position";
  EXPECT_NE(a, build({0}, 2.0)) << "method cost";
  EXPECT_NE(a, build({}, 1.0)) << "free access";
}

}  // namespace
}  // namespace lcp
