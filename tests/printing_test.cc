// Regression guards for the human-facing rendering paths: exploration
// dumps, plan listings, tables, facts, statuses. These strings appear in
// the examples and EXPERIMENTS.md, so format drift matters.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "lcp/base/strings.h"
#include "lcp/chase/config.h"
#include "lcp/chase/engine.h"
#include "lcp/plan/plan.h"
#include "lcp/ra/table.h"
#include "lcp/schema/parser.h"

namespace lcp {
namespace {

TEST(PrintingTest, StatusStreamsAsCodeAndMessage) {
  std::ostringstream os;
  os << NotFoundError("no plan");
  EXPECT_EQ(os.str(), "NOT_FOUND: no plan");
  os.str("");
  os << Status::Ok();
  EXPECT_EQ(os.str(), "OK");
}

TEST(PrintingTest, TableRendersAlignedColumns) {
  Table table({"eid", "lname"});
  table.Insert({Value::Int(1), Value::Str("smith")});
  table.Insert({Value::Int(12345), Value::Str("j")});
  std::string out = table.ToString();
  EXPECT_NE(out.find("eid"), std::string::npos);
  EXPECT_NE(out.find("\"smith\""), std::string::npos);
  // Header plus two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(PrintingTest, NullaryTableExplainsItself) {
  Table empty{std::vector<std::string>{}};
  EXPECT_NE(empty.ToString().find("empty nullary"), std::string::npos);
  Table nonempty{std::vector<std::string>{}};
  nonempty.Insert(Tuple{});
  EXPECT_NE(nonempty.ToString().find("one row"), std::string::npos);
}

TEST(PrintingTest, FactAndConfigRendering) {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  TermArena arena;
  ChaseTermId x = arena.NewNull("x", 0);
  ChaseTermId smith = arena.InternConstant(Value::Str("smith"));
  Fact fact(r, {x, smith});
  std::string rendered = FactToString(fact, schema, arena);
  EXPECT_EQ(rendered, StrCat("R(", arena.DisplayName(x), ", \"smith\")"));

  ChaseConfig config;
  config.Add(fact);
  std::string dump = config.ToString(schema, arena);
  EXPECT_NE(dump.find(rendered), std::string::npos);
}

TEST(PrintingTest, PlanListingShowsCommandsAndOutput) {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  schema.AddAccessMethod("mt_r", r, {0}).value();
  Plan plan;
  AccessCommand access;
  access.method = 0;
  access.constant_inputs = {{0, Value::Int(7)}};
  access.output_table = "t0";
  access.output_columns = {{"a", 0}, {"b", 1}};
  access.position_constants = {{1, Value::Int(9)}};
  plan.commands.push_back(access);
  plan.commands.push_back(QueryCommand{
      "t1", RaExpr::Project(RaExpr::TempScan("t0"), {"b"})});
  plan.output_table = "t1";
  plan.output_attrs = {"b"};
  std::string out = plan.ToString(schema);
  EXPECT_NE(out.find("t0 <- mt_r <- const{pos0=7}"), std::string::npos);
  EXPECT_NE(out.find("pos1=9"), std::string::npos);
  EXPECT_NE(out.find("t1 := project[b](scan(t0))"), std::string::npos);
  EXPECT_NE(out.find("output: t1[b]"), std::string::npos);
}

TEST(PrintingTest, PlanLanguageNames) {
  EXPECT_STREQ(PlanLanguageName(PlanLanguage::kSpj), "SPJ");
  EXPECT_STREQ(PlanLanguageName(PlanLanguage::kUspj), "USPJ");
  EXPECT_STREQ(PlanLanguageName(PlanLanguage::kUspjNeg), "USPJ^neg");
  EXPECT_STREQ(PlanLanguageName(PlanLanguage::kRa), "RA");
}

TEST(PrintingTest, TgdAutoNamingAndToString) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  Tgd tgd = ParseTgd(schema, "R(x, y) -> R(y, z)").value();
  // The raw (schema-less) rendering uses relation ids.
  EXPECT_EQ(tgd.ToString(), "R0(x, y) -> R0(y, z)");
}

}  // namespace
}  // namespace lcp
