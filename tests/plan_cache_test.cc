#include "lcp/service/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "lcp/base/strings.h"

namespace lcp {
namespace {

// Hand-built fingerprints: `hash` picks the shard, `key` is the map key, so
// tests can pin entries to one shard or spread them deliberately.
QueryFingerprint Fp(uint64_t hash, const std::string& key) {
  QueryFingerprint fp;
  fp.hash = hash;
  fp.key = key;
  return fp;
}

Plan NamedPlan(const std::string& name) {
  Plan plan;
  plan.output_table = name;
  return plan;
}

PlanCache::Options SingleShard(size_t capacity) {
  PlanCache::Options options;
  options.num_shards = 1;
  options.capacity_per_shard = capacity;
  return options;
}

TEST(PlanCacheTest, MissThenHit) {
  PlanCache cache(SingleShard(4));
  QueryFingerprint fp = Fp(1, "q1");
  EXPECT_EQ(cache.Lookup(fp, 1), nullptr);

  auto inserted = cache.Insert(fp, 1, NamedPlan("p1"), 10.0);
  ASSERT_NE(inserted, nullptr);
  EXPECT_EQ(inserted->plan.output_table, "p1");
  EXPECT_EQ(inserted->epoch, 1u);

  auto hit = cache.Lookup(fp, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->plan.output_table, "p1");
  EXPECT_EQ(cache.size(), 1u);

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(PlanCacheTest, LruEvictionOrderWithPromotion) {
  PlanCache cache(SingleShard(2));
  QueryFingerprint a = Fp(1, "a"), b = Fp(2, "b"), c = Fp(3, "c");
  cache.Insert(a, 1, NamedPlan("a"), 1.0);
  cache.Insert(b, 1, NamedPlan("b"), 1.0);
  // Promote a to MRU; b becomes the LRU victim.
  ASSERT_NE(cache.Lookup(a, 1), nullptr);
  cache.Insert(c, 1, NamedPlan("c"), 1.0);

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(b, 1), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(cache.Lookup(a, 1), nullptr);
  EXPECT_NE(cache.Lookup(c, 1), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PlanCacheTest, CostAwareAdmissionKeepsCheaperIncumbent) {
  PlanCache cache(SingleShard(4));
  QueryFingerprint fp = Fp(1, "q");
  cache.Insert(fp, 1, NamedPlan("cheap"), 5.0);

  // A costlier same-epoch plan must not clobber the incumbent.
  auto resident = cache.Insert(fp, 1, NamedPlan("expensive"), 50.0);
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(resident->plan.output_table, "cheap");
  EXPECT_DOUBLE_EQ(resident->cost, 5.0);
  EXPECT_EQ(cache.stats().admission_rejects, 1u);

  // A cheaper plan replaces it.
  resident = cache.Insert(fp, 1, NamedPlan("cheaper"), 2.0);
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(resident->plan.output_table, "cheaper");
  EXPECT_EQ(cache.stats().replacements, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, AdmissionRejectRefreshesRecency) {
  PlanCache cache(SingleShard(2));
  QueryFingerprint a = Fp(1, "a"), b = Fp(2, "b"), c = Fp(3, "c");
  cache.Insert(a, 1, NamedPlan("a"), 1.0);
  cache.Insert(b, 1, NamedPlan("b"), 1.0);
  // Rejected re-insert of `a` still refreshes its recency, so `b` is evicted.
  cache.Insert(a, 1, NamedPlan("a2"), 9.0);
  cache.Insert(c, 1, NamedPlan("c"), 1.0);
  EXPECT_NE(cache.Lookup(a, 1), nullptr);
  EXPECT_EQ(cache.Lookup(b, 1), nullptr);
}

TEST(PlanCacheTest, EpochMismatchIsStaleMissAndDropsEntry) {
  PlanCache cache(SingleShard(4));
  QueryFingerprint fp = Fp(1, "q");
  cache.Insert(fp, 1, NamedPlan("old"), 5.0);

  EXPECT_EQ(cache.Lookup(fp, 2), nullptr);
  EXPECT_EQ(cache.size(), 0u) << "stale entry should be dropped on lookup";
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.stale_misses, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // A new-epoch plan is admitted even when costlier than the dead one was.
  auto resident = cache.Insert(fp, 2, NamedPlan("new"), 50.0);
  EXPECT_EQ(resident->plan.output_table, "new");
  EXPECT_NE(cache.Lookup(fp, 2), nullptr);
}

TEST(PlanCacheTest, NewEpochInsertReplacesStaleResident) {
  PlanCache cache(SingleShard(4));
  QueryFingerprint fp = Fp(1, "q");
  cache.Insert(fp, 1, NamedPlan("old"), 1.0);
  // Cost-aware admission only protects same-epoch incumbents.
  auto resident = cache.Insert(fp, 2, NamedPlan("new"), 100.0);
  EXPECT_EQ(resident->plan.output_table, "new");
  EXPECT_EQ(resident->epoch, 2u);
}

TEST(PlanCacheTest, EvictBelowEpoch) {
  PlanCache cache(SingleShard(8));
  cache.Insert(Fp(1, "a"), 1, NamedPlan("a"), 1.0);
  cache.Insert(Fp(2, "b"), 1, NamedPlan("b"), 1.0);
  cache.Insert(Fp(3, "c"), 2, NamedPlan("c"), 1.0);

  cache.EvictBelowEpoch(2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.Lookup(Fp(1, "a"), 2), nullptr);
  EXPECT_NE(cache.Lookup(Fp(3, "c"), 2), nullptr);
}

TEST(PlanCacheTest, EntriesSpreadAcrossShards) {
  PlanCache::Options options;
  options.num_shards = 4;
  options.capacity_per_shard = 1;
  PlanCache cache(options);
  // Hashes 0..3 land in distinct shards, so all four fit despite the
  // per-shard capacity of one.
  for (uint64_t h = 0; h < 4; ++h) {
    cache.Insert(Fp(h, StrCat("q", h)), 1, NamedPlan(StrCat("p", h)), 1.0);
  }
  EXPECT_EQ(cache.size(), 4u);
  for (uint64_t h = 0; h < 4; ++h) {
    EXPECT_NE(cache.Lookup(Fp(h, StrCat("q", h)), 1), nullptr) << h;
  }
}

TEST(PlanCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  PlanCache::Options options;
  options.num_shards = 3;  // rounds to 4
  options.capacity_per_shard = 1;
  PlanCache cache(options);
  for (uint64_t h = 0; h < 4; ++h) {
    cache.Insert(Fp(h, StrCat("q", h)), 1, NamedPlan("p"), 1.0);
  }
  EXPECT_EQ(cache.size(), 4u);
}

TEST(PlanCacheTest, SharedPlanSurvivesEviction) {
  PlanCache cache(SingleShard(1));
  QueryFingerprint fp = Fp(1, "q");
  auto held = cache.Insert(fp, 1, NamedPlan("survivor"), 1.0);
  cache.Insert(Fp(2, "other"), 1, NamedPlan("other"), 1.0);  // evicts q

  EXPECT_EQ(cache.Lookup(fp, 1), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->plan.output_table, "survivor")
      << "a handed-out plan must outlive its cache entry";
}

TEST(PlanCacheTest, HashCollisionDistinctKeysDontAlias) {
  PlanCache cache(SingleShard(4));
  // Same 64-bit hash, different canonical keys: must be distinct entries.
  QueryFingerprint a = Fp(7, "key_a"), b = Fp(7, "key_b");
  cache.Insert(a, 1, NamedPlan("a"), 1.0);
  cache.Insert(b, 1, NamedPlan("b"), 1.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(a, 1)->plan.output_table, "a");
  EXPECT_EQ(cache.Lookup(b, 1)->plan.output_table, "b");
}

}  // namespace
}  // namespace lcp
