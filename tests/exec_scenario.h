// Shared scenario machinery for the execution differential suites
// (exec_vectorized_test.cc, exec_parallel_test.cc): a seeded generator of
// always-valid schema/instance/plan triples, the stress-iteration knob, and
// the bit-identical result assertion.

#ifndef LCP_TESTS_EXEC_SCENARIO_H_
#define LCP_TESTS_EXEC_SCENARIO_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lcp/runtime/executor.h"

namespace lcp {
namespace exec_testing {

inline int StressIters(int fallback) {
  if (const char* env = std::getenv("LCP_EXEC_STRESS_ITERS")) {
    return std::max(1, std::atoi(env));
  }
  return fallback;
}

/// Builds a random but always-valid scenario from a seed: schema first,
/// then an instance over it, then a plan whose expressions only reference
/// attributes their tables really have.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(uint64_t seed) : prng_(seed) {}

  void BuildSchema(Schema& schema) {
    const int num_relations = 2 + static_cast<int>(Pick(3));
    for (int r = 0; r < num_relations; ++r) {
      const int arity = 1 + static_cast<int>(Pick(3));
      arities_.push_back(arity);
      RelationId rel =
          schema.AddRelation("R" + std::to_string(r), arity).value();
      // Every relation gets a free method; wider ones also a keyed probe.
      free_methods_.push_back(
          schema.AddAccessMethod("free" + std::to_string(r), rel, {}, 2.0)
              .value());
      if (arity >= 2) {
        const int key = static_cast<int>(Pick(arity));
        keyed_methods_.push_back(
            schema
                .AddAccessMethod("keyed" + std::to_string(r), rel, {key}, 5.0)
                .value());
        keyed_key_pos_.push_back(key);
        keyed_arity_.push_back(arity);
      }
    }
  }

  Instance BuildInstance(const Schema& schema) {
    Instance instance(&schema);
    // Small value domain so keys collide: joins hit, dedups drop rows.
    const int domain = 4 + static_cast<int>(Pick(8));
    for (size_t r = 0; r < arities_.size(); ++r) {
      const int rows = static_cast<int>(Pick(30));
      for (int i = 0; i < rows; ++i) {
        Tuple fact;
        for (int c = 0; c < arities_[r]; ++c) {
          fact.push_back(Value::Int(static_cast<int64_t>(Pick(domain))));
        }
        instance.AddFact(static_cast<RelationId>(r), std::move(fact));
      }
    }
    return instance;
  }

  Plan BuildPlan() {
    Plan plan;
    int next_table = 0;
    // Seed the environment with 1-2 free accesses.
    const int num_free = 1 + static_cast<int>(Pick(2));
    for (int i = 0; i < num_free; ++i) {
      const size_t m = Pick(free_methods_.size());
      AccessCommand access;
      access.method = free_methods_[m];
      access.output_table = "t" + std::to_string(next_table++);
      access.output_columns = OutputColumns(arities_[m]);
      if (arities_[m] >= 2 && Coin(0.25)) {
        access.position_equalities = {{0, 1}};
      }
      if (Coin(0.25)) {
        access.position_constants = {
            {static_cast<int>(Pick(arities_[m])),
             Value::Int(static_cast<int64_t>(Pick(12)))}};
      }
      NoteTable(access.output_table, AttrsOf(access.output_columns));
      plan.commands.push_back(std::move(access));
    }
    // A few keyed accesses and middleware queries over what exists.
    const int extra = 2 + static_cast<int>(Pick(3));
    for (int i = 0; i < extra; ++i) {
      if (!keyed_methods_.empty() && Coin(0.6)) {
        const size_t k = Pick(keyed_methods_.size());
        AccessCommand access;
        access.method = keyed_methods_[k];
        // Bind one attribute of a random table to the key position; project
        // the input down to that attribute so the binding is unambiguous.
        const std::string& table = tables_[Pick(tables_.size())];
        const std::vector<std::string>& attrs = table_attrs_[table];
        const std::string attr = attrs[Pick(attrs.size())];
        access.input = RaExpr::Project(RaExpr::TempScan(table), {attr});
        access.input_binding = {{attr, keyed_key_pos_[k]}};
        access.output_table = "t" + std::to_string(next_table++);
        access.output_columns = OutputColumns(keyed_arity_[k]);
        NoteTable(access.output_table, AttrsOf(access.output_columns));
        plan.commands.push_back(std::move(access));
      } else {
        QueryCommand query;
        query.output_table = "t" + std::to_string(next_table++);
        TypedExpr e = RandomExpr(2);
        query.expr = e.expr;
        NoteTable(query.output_table, e.attrs);
        plan.commands.push_back(std::move(query));
      }
    }
    // Output: project the last table onto a subset of its attributes.
    const std::string& out = tables_.back();
    const std::vector<std::string>& attrs = table_attrs_[out];
    std::vector<std::string> picked;
    for (const std::string& a : attrs) {
      if (Coin(0.8)) picked.push_back(a);
    }
    if (picked.empty()) picked.push_back(attrs[0]);
    plan.output_table = out;
    plan.output_attrs = picked;
    return plan;
  }

 private:
  /// An expression plus the attribute list of its result, mirrored from the
  /// evaluator's rules so later commands can reference it safely.
  struct TypedExpr {
    RaExprPtr expr;
    std::vector<std::string> attrs;
  };

  size_t Pick(size_t n) { return static_cast<size_t>(prng_() % n); }
  bool Coin(double p) {
    return static_cast<double>(prng_() >> 11) * 0x1.0p-53 < p;
  }

  static std::vector<std::string> AttrsOf(
      const std::vector<std::pair<std::string, int>>& cols) {
    std::vector<std::string> attrs;
    attrs.reserve(cols.size());
    for (const auto& [attr, pos] : cols) attrs.push_back(attr);
    return attrs;
  }

  /// Output columns for an access over a relation of the given arity:
  /// every position at least once (attrs named p<pos>), occasionally a
  /// duplicated position under a second name.
  // GCC 12 emits a false-positive -Wrestrict from the inlined short-string
  // concatenation below at -O3 (same issue pragma'd in proof_search.cc).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
  std::vector<std::pair<std::string, int>> OutputColumns(int arity) {
    std::vector<std::pair<std::string, int>> cols;
    for (int p = 0; p < arity; ++p) {
      cols.emplace_back("p" + std::to_string(p), p);
    }
    if (Coin(0.2)) {
      const int p = static_cast<int>(Pick(arity));
      cols.emplace_back("d" + std::to_string(p), p);
    }
    return cols;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  TypedExpr RandomExpr(int depth) {
    const std::string& table = tables_[Pick(tables_.size())];
    TypedExpr e{RaExpr::TempScan(table), table_attrs_[table]};
    if (depth <= 0) return e;
    switch (Pick(6)) {
      case 0: {  // project to a random non-empty subset
        std::vector<std::string> kept;
        for (const std::string& a : e.attrs) {
          if (Coin(0.7)) kept.push_back(a);
        }
        if (kept.empty()) kept.push_back(e.attrs[Pick(e.attrs.size())]);
        return TypedExpr{RaExpr::Project(e.expr, kept), kept};
      }
      case 1: {  // select attr = const or attr = attr
        RaExpr::Condition c;
        c.lhs = e.attrs[Pick(e.attrs.size())];
        if (e.attrs.size() > 1 && Coin(0.5)) {
          c.kind = RaExpr::Condition::Kind::kAttrEqAttr;
          c.rhs_attr = e.attrs[Pick(e.attrs.size())];
        } else {
          c.kind = RaExpr::Condition::Kind::kAttrEqConst;
          c.rhs_const = Value::Int(static_cast<int64_t>(Pick(12)));
        }
        return TypedExpr{RaExpr::Select(e.expr, {c}), e.attrs};
      }
      case 2: {  // natural join with another scan; attrs = left ++ extras
        const std::string& other = tables_[Pick(tables_.size())];
        std::vector<std::string> attrs = e.attrs;
        for (const std::string& a : table_attrs_[other]) {
          bool in_left = false;
          for (const std::string& l : e.attrs) {
            if (l == a) {
              in_left = true;
              break;
            }
          }
          if (!in_left) attrs.push_back(a);
        }
        return TypedExpr{RaExpr::Join(e.expr, RaExpr::TempScan(other)),
                         std::move(attrs)};
      }
      case 3: {  // union with itself (attr sets trivially agree)
        return TypedExpr{RaExpr::Union(e.expr, RaExpr::TempScan(table)),
                         e.attrs};
      }
      case 4: {  // difference against a selection of itself
        RaExpr::Condition c;
        c.kind = RaExpr::Condition::Kind::kAttrEqConst;
        c.lhs = e.attrs[Pick(e.attrs.size())];
        c.rhs_const = Value::Int(static_cast<int64_t>(Pick(12)));
        return TypedExpr{
            RaExpr::Difference(e.expr,
                               RaExpr::Select(RaExpr::TempScan(table), {c})),
            e.attrs};
      }
      default: {  // rename one attribute to a fresh name
        const std::string from = e.attrs[Pick(e.attrs.size())];
        const std::string to = "rn" + std::to_string(Pick(4));
        std::vector<std::string> attrs = e.attrs;
        for (std::string& a : attrs) {
          if (a == from) {
            a = to;  // rename hits the first occurrence
            break;
          }
        }
        return TypedExpr{RaExpr::Rename(e.expr, {{from, to}}),
                         std::move(attrs)};
      }
    }
  }

  void NoteTable(const std::string& name, std::vector<std::string> attrs) {
    if (table_attrs_.emplace(name, std::move(attrs)).second) {
      tables_.push_back(name);
    }
  }

  std::mt19937_64 prng_;
  std::vector<int> arities_;
  std::vector<AccessMethodId> free_methods_;
  std::vector<AccessMethodId> keyed_methods_;
  std::vector<int> keyed_key_pos_;
  std::vector<int> keyed_arity_;
  std::vector<std::string> tables_;
  std::unordered_map<std::string, std::vector<std::string>> table_attrs_;
};

/// Asserts bit-identical execution results: same schema, same rows in the
/// same order, same completeness and retry accounting.
inline void ExpectIdentical(const ExecutionResult& row,
                            const ExecutionResult& vec, int seed) {
  EXPECT_EQ(row.output.attrs(), vec.output.attrs()) << "seed " << seed;
  ASSERT_EQ(row.output.size(), vec.output.size()) << "seed " << seed;
  EXPECT_EQ(row.output.rows(), vec.output.rows()) << "seed " << seed;
  EXPECT_EQ(row.complete, vec.complete) << "seed " << seed;
  EXPECT_EQ(row.degraded_accesses, vec.degraded_accesses) << "seed " << seed;
  EXPECT_EQ(row.source_calls, vec.source_calls) << "seed " << seed;
  EXPECT_EQ(row.access_commands, vec.access_commands) << "seed " << seed;
  EXPECT_EQ(row.retry.attempts, vec.retry.attempts) << "seed " << seed;
  EXPECT_EQ(row.retry.failures, vec.retry.failures) << "seed " << seed;
  EXPECT_EQ(row.retry.retries, vec.retry.retries) << "seed " << seed;
  EXPECT_EQ(row.retry.backoff_schedule, vec.retry.backoff_schedule)
      << "seed " << seed;
  EXPECT_EQ(row.retry.deadline_abandons, vec.retry.deadline_abandons)
      << "seed " << seed;
}

}  // namespace exec_testing
}  // namespace lcp

#endif  // LCP_TESTS_EXEC_SCENARIO_H_
