#include "lcp/service/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lcp/base/strings.h"
#include "lcp/logic/atom.h"
#include "lcp/logic/term.h"

namespace lcp {
namespace {

// --- targeted cases --------------------------------------------------------

ConjunctiveQuery MakeQuery(std::vector<std::string> free_vars,
                           std::vector<Atom> atoms) {
  ConjunctiveQuery q;
  q.free_variables = std::move(free_vars);
  q.atoms = std::move(atoms);
  return q;
}

TEST(CanonicalTest, RenamingExistentialsIsInvariant) {
  // Q(x) :- R(x, y), S(y, z)  ==  Q(x) :- R(x, b), S(b, c)
  ConjunctiveQuery a = MakeQuery(
      {"x"}, {Atom(0, {Term::Var("x"), Term::Var("y")}),
              Atom(1, {Term::Var("y"), Term::Var("z")})});
  ConjunctiveQuery b = MakeQuery(
      {"x"}, {Atom(0, {Term::Var("x"), Term::Var("b")}),
              Atom(1, {Term::Var("b"), Term::Var("c")})});
  EXPECT_EQ(CanonicalizeQuery(a), CanonicalizeQuery(b));
}

TEST(CanonicalTest, FreeVariablesMatchByPosition) {
  // Q(x, y) :- R(x, y)  ==  Q(a, b) :- R(a, b) ...
  ConjunctiveQuery a =
      MakeQuery({"x", "y"}, {Atom(0, {Term::Var("x"), Term::Var("y")})});
  ConjunctiveQuery b =
      MakeQuery({"a", "b"}, {Atom(0, {Term::Var("a"), Term::Var("b")})});
  EXPECT_EQ(CanonicalizeQuery(a), CanonicalizeQuery(b));
  // ... but != Q(y, x) :- R(x, y): the answer columns are swapped.
  ConjunctiveQuery c =
      MakeQuery({"y", "x"}, {Atom(0, {Term::Var("x"), Term::Var("y")})});
  EXPECT_NE(CanonicalizeQuery(a), CanonicalizeQuery(c));
}

TEST(CanonicalTest, AtomPermutationIsInvariant) {
  ConjunctiveQuery a = MakeQuery(
      {}, {Atom(0, {Term::Var("x"), Term::Var("y")}),
           Atom(1, {Term::Var("y"), Term::Const(3)}),
           Atom(2, {Term::Var("x")})});
  ConjunctiveQuery b = MakeQuery(
      {}, {Atom(2, {Term::Var("x")}),
           Atom(1, {Term::Var("y"), Term::Const(3)}),
           Atom(0, {Term::Var("x"), Term::Var("y")})});
  EXPECT_EQ(CanonicalizeQuery(a), CanonicalizeQuery(b));
}

TEST(CanonicalTest, SymmetricTiesNeedBacktracking) {
  // A directed 3-cycle is isomorphic to any rotation/renaming of itself;
  // every atom renders identically at the first step, so the tie-break has
  // to branch to find the common canonical order.
  ConjunctiveQuery cycle = MakeQuery(
      {}, {Atom(0, {Term::Var("x"), Term::Var("y")}),
           Atom(0, {Term::Var("y"), Term::Var("z")}),
           Atom(0, {Term::Var("z"), Term::Var("x")})});
  ConjunctiveQuery rotated = MakeQuery(
      {}, {Atom(0, {Term::Var("c"), Term::Var("a")}),
           Atom(0, {Term::Var("b"), Term::Var("c")}),
           Atom(0, {Term::Var("a"), Term::Var("b")})});
  EXPECT_EQ(CanonicalizeQuery(cycle), CanonicalizeQuery(rotated));

  // A path of length 3 has the same atom multiset shape at first glance but
  // is not isomorphic to the cycle.
  ConjunctiveQuery path = MakeQuery(
      {}, {Atom(0, {Term::Var("x"), Term::Var("y")}),
           Atom(0, {Term::Var("y"), Term::Var("z")}),
           Atom(0, {Term::Var("z"), Term::Var("w")})});
  EXPECT_NE(CanonicalizeQuery(cycle), CanonicalizeQuery(path));
}

TEST(CanonicalTest, RepeatedVariablesDistinguish) {
  ConjunctiveQuery diag = MakeQuery({}, {Atom(0, {Term::Var("x"), Term::Var("x")})});
  ConjunctiveQuery pair = MakeQuery({}, {Atom(0, {Term::Var("x"), Term::Var("y")})});
  EXPECT_NE(CanonicalizeQuery(diag), CanonicalizeQuery(pair));
}

TEST(CanonicalTest, ConstantsDistinguish) {
  ConjunctiveQuery a = MakeQuery({}, {Atom(0, {Term::Var("x"), Term::Const("smith")})});
  ConjunctiveQuery b = MakeQuery({}, {Atom(0, {Term::Var("x"), Term::Const("jones")})});
  ConjunctiveQuery c = MakeQuery({}, {Atom(0, {Term::Var("x"), Term::Var("y")})});
  EXPECT_NE(CanonicalizeQuery(a), CanonicalizeQuery(b));
  EXPECT_NE(CanonicalizeQuery(a), CanonicalizeQuery(c));
}

TEST(CanonicalTest, DuplicateAtomsCollapse) {
  ConjunctiveQuery once = MakeQuery({}, {Atom(0, {Term::Var("x"), Term::Var("y")})});
  ConjunctiveQuery twice = MakeQuery(
      {}, {Atom(0, {Term::Var("x"), Term::Var("y")}),
           Atom(0, {Term::Var("x"), Term::Var("y")})});
  EXPECT_EQ(CanonicalizeQuery(once), CanonicalizeQuery(twice));
}

TEST(CanonicalTest, FreeVariableCountInKey) {
  ConjunctiveQuery boolean_q = MakeQuery({}, {Atom(0, {Term::Var("x")})});
  ConjunctiveQuery unary_q = MakeQuery({"x"}, {Atom(0, {Term::Var("x")})});
  EXPECT_NE(CanonicalizeQuery(boolean_q), CanonicalizeQuery(unary_q));
}

// --- property test: 500 random renamed/permuted copies ---------------------

constexpr int kNumRelations = 4;
const int kArity[kNumRelations] = {1, 2, 3, 2};

ConjunctiveQuery RandomQuery(std::mt19937& rng) {
  std::uniform_int_distribution<int> num_atoms_dist(1, 6);
  std::uniform_int_distribution<int> rel_dist(0, kNumRelations - 1);
  std::uniform_int_distribution<int> var_dist(0, 5);
  std::uniform_int_distribution<int> kind_dist(0, 9);
  ConjunctiveQuery q;
  int num_atoms = num_atoms_dist(rng);
  for (int i = 0; i < num_atoms; ++i) {
    RelationId rel = rel_dist(rng);
    std::vector<Term> terms;
    for (int pos = 0; pos < kArity[rel]; ++pos) {
      int kind = kind_dist(rng);
      if (kind == 0) {
        terms.push_back(Term::Const(int64_t{1} + var_dist(rng) % 3));
      } else if (kind == 1) {
        terms.push_back(Term::Const("smith"));
      } else {
        terms.push_back(Term::Var(StrCat("v", var_dist(rng))));
      }
    }
    q.atoms.emplace_back(rel, std::move(terms));
  }
  // A random subset of the occurring variables becomes the answer tuple.
  std::vector<std::string> vars = CollectVariables(q.atoms);
  for (const std::string& v : vars) {
    if (kind_dist(rng) < 3) q.free_variables.push_back(v);
  }
  return q;
}

/// A bijectively renamed, atom-permuted copy: the α-equivalence transformer.
ConjunctiveQuery IsomorphicCopy(const ConjunctiveQuery& q, std::mt19937& rng) {
  std::vector<std::string> vars = CollectVariables(q.atoms);
  std::vector<int> perm(vars.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::unordered_map<std::string, std::string> rename;
  for (size_t i = 0; i < vars.size(); ++i) {
    rename.emplace(vars[i], StrCat("w", perm[i]));
  }
  ConjunctiveQuery copy;
  for (const std::string& v : q.free_variables) {
    // Order preserved; a free variable with no atom occurrence (an unsafe
    // query some mutants produce) has nothing to stay consistent with, so
    // its name can pass through.
    auto it = rename.find(v);
    copy.free_variables.push_back(it == rename.end() ? v : it->second);
  }
  for (const Atom& atom : q.atoms) {
    std::vector<Term> terms;
    for (const Term& t : atom.terms) {
      terms.push_back(t.is_variable() ? Term::Var(rename.at(t.var())) : t);
    }
    copy.atoms.emplace_back(atom.relation, std::move(terms));
  }
  std::shuffle(copy.atoms.begin(), copy.atoms.end(), rng);
  return copy;
}

TEST(CanonicalPropertyTest, RandomIsomorphicCopiesShareFingerprints) {
  std::mt19937 rng(20140622);  // Deterministic: PODS'14 opening day.
  for (int trial = 0; trial < 500; ++trial) {
    ConjunctiveQuery q = RandomQuery(rng);
    ConjunctiveQuery copy = IsomorphicCopy(q, rng);
    QueryFingerprint fq = CanonicalizeQuery(q);
    QueryFingerprint fc = CanonicalizeQuery(copy);
    ASSERT_EQ(fq, fc) << "trial " << trial << "\n  key(q)    = " << fq.key
                      << "\n  key(copy) = " << fc.key;
  }
}

TEST(CanonicalPropertyTest, NonIsomorphicMutationsNeverCollide) {
  std::mt19937 rng(19700101);
  for (int trial = 0; trial < 500; ++trial) {
    ConjunctiveQuery q = RandomQuery(rng);
    QueryFingerprint fq = CanonicalizeQuery(q);

    // Mutations guaranteed to leave the isomorphism class: a fresh constant
    // value, an atom over a relation id the query cannot otherwise contain,
    // and one more answer column than any renaming can produce.
    ConjunctiveQuery fresh_const = q;
    fresh_const.atoms[0].terms[0] = Term::Const(int64_t{999});
    ConjunctiveQuery extra_atom = q;
    extra_atom.atoms.push_back(Atom(kNumRelations, {Term::Var("zz")}));
    ConjunctiveQuery extra_free = q;
    extra_free.free_variables.push_back("zz_free");

    for (const ConjunctiveQuery* mutant :
         {&fresh_const, &extra_atom, &extra_free}) {
      QueryFingerprint fm = CanonicalizeQuery(*mutant);
      ASSERT_NE(fq, fm) << "trial " << trial << " key = " << fq.key;
      // And the mutant's isomorphic copies still agree with the mutant.
      ASSERT_EQ(fm, CanonicalizeQuery(IsomorphicCopy(*mutant, rng)))
          << "trial " << trial;
    }
  }
}

TEST(CanonicalPropertyTest, FingerprintIsStableAcrossCalls) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    ConjunctiveQuery q = RandomQuery(rng);
    QueryFingerprint a = CanonicalizeQuery(q);
    QueryFingerprint b = CanonicalizeQuery(q);
    ASSERT_EQ(a, b);
    ASSERT_EQ(a.hash, b.hash);
  }
}

}  // namespace
}  // namespace lcp
