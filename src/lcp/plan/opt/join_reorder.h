#ifndef LCP_PLAN_OPT_JOIN_REORDER_H_
#define LCP_PLAN_OPT_JOIN_REORDER_H_

#include "lcp/plan/opt/pass.h"

namespace lcp {
namespace plan_opt {

/// Greedy reorder of n-ary natural-join chains inside QueryCommand
/// expressions (access-command inputs are never touched — reordering must
/// not cross access boundaries). Each maximal kJoin tree is flattened to
/// its leaves; starting from the first leaf, the next leaf is always the
/// one sharing the most attributes with the set accumulated so far (ties
/// and zero-overlap fall back to original order), and the chain is rebuilt
/// left-deep. A Project onto the original attribute order is added on top
/// so the rewritten expression keeps an identical schema; natural join is
/// commutative and associative on sets of rows, so results are unchanged
/// while intermediate cartesian blowups shrink.
class JoinReorderPass : public PlanPass {
 public:
  const char* name() const override { return "join_reorder"; }
  bool Run(Plan& plan, const Schema& schema, PassStats& stats) const override;
};

}  // namespace plan_opt
}  // namespace lcp

#endif  // LCP_PLAN_OPT_JOIN_REORDER_H_
