#include "lcp/plan/opt/dce.h"

#include <string>
#include <unordered_set>
#include <variant>
#include <vector>

#include "lcp/plan/opt/ir_util.h"

namespace lcp {
namespace plan_opt {

bool DcePass::Run(Plan& plan, const Schema& /*schema*/,
                  PassStats& stats) const {
  std::unordered_set<std::string> live{plan.output_table};
  std::vector<bool> keep(plan.commands.size(), false);
  std::vector<std::string> referenced;
  for (size_t i = plan.commands.size(); i-- > 0;) {
    const Command& cmd = plan.commands[i];
    if (live.count(OutputTableOf(cmd)) == 0) continue;
    keep[i] = true;
    referenced.clear();
    AppendReferencedTables(cmd, referenced);
    live.insert(referenced.begin(), referenced.end());
  }

  std::vector<Command> kept;
  kept.reserve(plan.commands.size());
  for (size_t i = 0; i < plan.commands.size(); ++i) {
    if (keep[i]) {
      kept.push_back(std::move(plan.commands[i]));
      continue;
    }
    ++stats.commands_removed;
    if (std::holds_alternative<AccessCommand>(plan.commands[i])) {
      ++stats.access_commands_removed;
    }
  }
  if (kept.size() == plan.commands.size()) return false;
  plan.commands = std::move(kept);
  ++stats.applications;
  return true;
}

}  // namespace plan_opt
}  // namespace lcp
