#ifndef LCP_PLAN_OPT_DCE_H_
#define LCP_PLAN_OPT_DCE_H_

#include "lcp/plan/opt/pass.h"

namespace lcp {
namespace plan_opt {

/// Dead-command elimination: one backward liveness sweep from the plan's
/// output table. A command is live iff its output table is the plan output
/// or is scanned by a later live command; everything else — including the
/// duplicate producers CSE leaves behind — is dropped. Removing an access
/// command is where cost actually falls (query commands are free under the
/// shipped cost models).
class DcePass : public PlanPass {
 public:
  const char* name() const override { return "dce"; }
  bool Run(Plan& plan, const Schema& schema, PassStats& stats) const override;
};

}  // namespace plan_opt
}  // namespace lcp

#endif  // LCP_PLAN_OPT_DCE_H_
