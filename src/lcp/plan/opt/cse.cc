#include "lcp/plan/opt/cse.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <variant>

#include "lcp/plan/opt/ir_util.h"

namespace lcp {
namespace plan_opt {

bool CsePass::Run(Plan& plan, const Schema& /*schema*/,
                  PassStats& stats) const {
  // alias → representative output table. Representatives are themselves
  // canonical (inputs are substituted before keying), so no chain chasing
  // is ever needed.
  std::unordered_map<std::string, std::string> aliases;
  // structural command key → representative output table.
  std::unordered_map<std::string, std::string> seen;
  bool changed = false;

  for (Command& cmd : plan.commands) {
    RaExprPtr* input = nullptr;
    if (auto* access = std::get_if<AccessCommand>(&cmd)) {
      input = &access->input;
    } else {
      input = &std::get<QueryCommand>(cmd).expr;
    }
    if (*input != nullptr) {
      RaExprPtr substituted = SubstituteTables(*input, aliases);
      if (substituted != *input) {
        *input = std::move(substituted);
        ++stats.expressions_rewritten;
        changed = true;
      }
    }

    const std::string& out = OutputTableOf(cmd);
    auto [it, inserted] = seen.emplace(CommandKey(cmd), out);
    if (!inserted && it->second != out) {
      // Duplicate producer: identical attributes and rows as the
      // representative, so every later reference may use either.
      aliases[out] = it->second;
      ++stats.applications;
    }
  }

  auto alias = aliases.find(plan.output_table);
  if (alias != aliases.end()) {
    plan.output_table = alias->second;
    changed = true;
  }
  return changed;
}

}  // namespace plan_opt
}  // namespace lcp
