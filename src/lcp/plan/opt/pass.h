#ifndef LCP_PLAN_OPT_PASS_H_
#define LCP_PLAN_OPT_PASS_H_

#include <string>

#include "lcp/plan/plan.h"
#include "lcp/schema/schema.h"

namespace lcp {
namespace plan_opt {

/// Per-pass counters, accumulated across fixpoint iterations by the
/// PassManager. Counters that don't apply to a pass stay zero.
struct PassStats {
  std::string pass;

  /// Times the pass changed the plan (at most once per fixpoint iteration).
  int applications = 0;
  int commands_removed = 0;
  int access_commands_removed = 0;
  /// Expressions rewritten to reference a CSE representative table.
  int expressions_rewritten = 0;
  /// Post-access Select conjuncts folded into position filters.
  int selections_folded = 0;
  /// Access input expressions narrowed to the bound columns.
  int inputs_narrowed = 0;
  /// Join chains rebuilt in a different leaf order.
  int joins_reordered = 0;
  /// Pass outputs discarded by the manager (failed validation or raised
  /// cost). Always zero in a healthy build; counted so it is observable.
  int rejected = 0;

  double cost_before = 0.0;
  double cost_after = 0.0;
};

/// A plan-to-plan rewrite. Implementations must be stateless (a const pass
/// is shared across threads by the serving path) and may assume the input
/// plan passed ValidatePlan. Returns true iff `plan` was modified; the
/// PassManager re-validates and re-costs every modified output and discards
/// regressions, so passes should be correct but need not be paranoid.
class PlanPass {
 public:
  virtual ~PlanPass() = default;
  virtual const char* name() const = 0;
  virtual bool Run(Plan& plan, const Schema& schema, PassStats& stats) const = 0;
};

}  // namespace plan_opt
}  // namespace lcp

#endif  // LCP_PLAN_OPT_PASS_H_
