#ifndef LCP_PLAN_OPT_CSE_H_
#define LCP_PLAN_OPT_CSE_H_

#include "lcp/plan/opt/pass.h"

namespace lcp {
namespace plan_opt {

/// Common-subplan elimination. Hashes every command structurally (modulo
/// temp-table renaming: references are canonicalized through the alias map
/// before keying) and redirects all later references of a duplicate
/// command's output table to the first structurally-identical producer.
/// The duplicate command itself is left in place, now dead — dead-command
/// elimination removes it, which is where the cost reduction lands.
class CsePass : public PlanPass {
 public:
  const char* name() const override { return "cse"; }
  bool Run(Plan& plan, const Schema& schema, PassStats& stats) const override;
};

}  // namespace plan_opt
}  // namespace lcp

#endif  // LCP_PLAN_OPT_CSE_H_
