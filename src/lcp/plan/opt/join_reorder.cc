#include "lcp/plan/opt/join_reorder.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>
#include <variant>
#include <vector>

#include "lcp/plan/opt/ir_util.h"

namespace lcp {
namespace plan_opt {

namespace {

void FlattenJoin(const RaExprPtr& expr, std::vector<RaExprPtr>& leaves) {
  if (expr->op() == RaExpr::Op::kJoin) {
    FlattenJoin(expr->children()[0], leaves);
    FlattenJoin(expr->children()[1], leaves);
  } else {
    leaves.push_back(expr);
  }
}

RaExprPtr Rewrite(const RaExprPtr& expr, const AttrEnv& env, PassStats& stats);

RaExprPtr RewriteJoinChain(const RaExprPtr& expr, const AttrEnv& env,
                           PassStats& stats) {
  std::vector<RaExprPtr> leaves;
  FlattenJoin(expr, leaves);

  bool leaves_changed = false;
  for (RaExprPtr& leaf : leaves) {
    RaExprPtr rewritten = Rewrite(leaf, env, stats);
    leaves_changed = leaves_changed || rewritten != leaf;
    leaf = std::move(rewritten);
  }

  std::vector<std::vector<std::string>> leaf_attrs;
  leaf_attrs.reserve(leaves.size());
  for (const RaExprPtr& leaf : leaves) {
    Result<std::vector<std::string>> attrs = InferExprAttrs(*leaf, env);
    if (!attrs.ok()) return expr;  // Un-analyzable: leave the chain alone.
    leaf_attrs.push_back(std::move(attrs).value());
  }

  // Greedy order: grow from the first leaf, always appending the remaining
  // leaf that shares the most attributes with the set accumulated so far
  // (most join keys bound → smallest intermediate). Ties and zero overlap
  // fall back to original position, which keeps the pass deterministic and
  // a no-op on already-ordered chains.
  std::vector<size_t> order{0};
  std::unordered_set<std::string> current(leaf_attrs[0].begin(),
                                          leaf_attrs[0].end());
  std::vector<bool> used(leaves.size(), false);
  used[0] = true;
  while (order.size() < leaves.size()) {
    size_t best = leaves.size();
    int best_shared = -1;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (used[i]) continue;
      int shared = 0;
      for (const std::string& attr : leaf_attrs[i]) {
        if (current.count(attr)) ++shared;
      }
      if (shared > best_shared) {
        best_shared = shared;
        best = i;
      }
    }
    used[best] = true;
    order.push_back(best);
    current.insert(leaf_attrs[best].begin(), leaf_attrs[best].end());
  }

  bool identity = true;
  for (size_t i = 0; i < order.size(); ++i) identity = identity && order[i] == i;
  if (identity && !leaves_changed) return expr;

  // Natural join's output lists left attributes first, then unseen right
  // ones, so a left-deep rebuild in any leaf order covers the same set but
  // possibly in a different sequence; the original first-appearance order
  // is restored with a Project when the leaf order changed.
  std::vector<std::string> original_attrs;
  for (const std::vector<std::string>& attrs : leaf_attrs) {
    for (const std::string& attr : attrs) {
      if (std::find(original_attrs.begin(), original_attrs.end(), attr) ==
          original_attrs.end()) {
        original_attrs.push_back(attr);
      }
    }
  }
  RaExprPtr rebuilt = leaves[order[0]];
  for (size_t i = 1; i < order.size(); ++i) {
    rebuilt = RaExpr::Join(std::move(rebuilt), leaves[order[i]]);
  }
  if (!identity) {
    rebuilt = RaExpr::Project(std::move(rebuilt), std::move(original_attrs));
    ++stats.joins_reordered;
  }
  return rebuilt;
}

RaExprPtr Rewrite(const RaExprPtr& expr, const AttrEnv& env,
                  PassStats& stats) {
  if (expr == nullptr) return expr;
  if (expr->op() == RaExpr::Op::kJoin) {
    return RewriteJoinChain(expr, env, stats);
  }
  std::vector<RaExprPtr> children;
  children.reserve(expr->children().size());
  bool changed = false;
  for (const RaExprPtr& child : expr->children()) {
    RaExprPtr rewritten = Rewrite(child, env, stats);
    changed = changed || rewritten != child;
    children.push_back(std::move(rewritten));
  }
  if (!changed) return expr;
  switch (expr->op()) {
    case RaExpr::Op::kProject:
      return RaExpr::Project(std::move(children[0]), expr->attrs());
    case RaExpr::Op::kSelect:
      return RaExpr::Select(std::move(children[0]), expr->conditions());
    case RaExpr::Op::kUnion:
      return RaExpr::Union(std::move(children[0]), std::move(children[1]));
    case RaExpr::Op::kDifference:
      return RaExpr::Difference(std::move(children[0]), std::move(children[1]));
    case RaExpr::Op::kRename:
      return RaExpr::Rename(std::move(children[0]), expr->renames());
    default:
      return expr;
  }
}

}  // namespace

bool JoinReorderPass::Run(Plan& plan, const Schema& /*schema*/,
                          PassStats& stats) const {
  AttrEnv env;
  bool changed = false;
  for (Command& cmd : plan.commands) {
    if (auto* query = std::get_if<QueryCommand>(&cmd)) {
      RaExprPtr rewritten = Rewrite(query->expr, env, stats);
      if (rewritten != query->expr) {
        query->expr = std::move(rewritten);
        ++stats.applications;
        changed = true;
      }
    }
    NoteCommand(cmd, env);
  }
  return changed;
}

}  // namespace plan_opt
}  // namespace lcp
