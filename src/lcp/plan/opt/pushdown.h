#ifndef LCP_PLAN_OPT_PUSHDOWN_H_
#define LCP_PLAN_OPT_PUSHDOWN_H_

#include "lcp/plan/opt/pass.h"

namespace lcp {
namespace plan_opt {

/// Projection/selection pushdown around access commands.
///
/// Selection folding: when an access output table is scanned exactly once
/// in the whole plan and that occurrence is `Select(TempScan(T), conds)`,
/// the conjuncts are translated through the access's output-column mapping
/// into `position_equalities`/`position_constants` (filters the executor
/// applies to raw returned tuples, before the output mapping) and the
/// Select node disappears. Equivalent because each output attribute copies
/// exactly one returned position.
///
/// Input narrowing: an access input expression is wrapped in a Project onto
/// the attributes its `input_binding` actually consumes. The executor
/// dispatches one source call per *distinct* binding tuple, so dropping
/// unused columns (which only merges rows that bind identically) leaves the
/// dispatched call set — and hence the output table — unchanged.
class PushdownPass : public PlanPass {
 public:
  const char* name() const override { return "pushdown"; }
  bool Run(Plan& plan, const Schema& schema, PassStats& stats) const override;
};

}  // namespace plan_opt
}  // namespace lcp

#endif  // LCP_PLAN_OPT_PUSHDOWN_H_
