#ifndef LCP_PLAN_OPT_IR_UTIL_H_
#define LCP_PLAN_OPT_IR_UTIL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "lcp/base/result.h"
#include "lcp/plan/plan.h"
#include "lcp/ra/expr.h"

namespace lcp {
namespace plan_opt {

/// Attribute environment while walking a plan front-to-back: temp-table name
/// → attribute list. Passes maintain it incrementally with NoteCommand.
using AttrEnv = std::unordered_map<std::string, std::vector<std::string>>;

/// Attribute list a command's output table carries: the access's output
/// column names, or the inferred attribute set of the query expression.
/// Mirrors the inference rules of plan/validate.cc; fails on the same
/// inconsistencies.
Result<std::vector<std::string>> InferExprAttrs(const RaExpr& expr,
                                                const AttrEnv& env);

/// Records `cmd`'s output table and attributes into `env` (no-op on
/// inference failure — passes treat such plans as untransformable).
void NoteCommand(const Command& cmd, AttrEnv& env);

/// A canonical structural serialization of an expression: two expressions
/// with equal keys evaluate identically over the same environment. Temp
/// table names are serialized as-is, so callers canonicalize references
/// (SubstituteTables) before keying when they want equality modulo
/// temp-table renaming.
std::string ExprKey(const RaExpr& expr);

/// A canonical structural serialization of a whole command, *excluding* its
/// output table name: equal keys mean the two commands produce identical
/// tables (same attributes, same rows) over the same environment. Binding
/// lists and position filters are order-normalized; output columns are kept
/// in order (they fix the output schema).
std::string CommandKey(const Command& cmd);

/// Returns `expr` with every TempScan of a table in `renames` redirected to
/// its replacement. Shares unchanged subtrees with the input.
RaExprPtr SubstituteTables(
    const RaExprPtr& expr,
    const std::unordered_map<std::string, std::string>& renames);

/// Appends the names of all temp tables scanned by `cmd`'s expressions.
void AppendReferencedTables(const Command& cmd, std::vector<std::string>& out);

/// Number of TempScan occurrences of `table` across all commands of `plan`
/// (the plan output table itself is not counted).
int CountTableReferences(const Plan& plan, const std::string& table);

const std::string& OutputTableOf(const Command& cmd);

}  // namespace plan_opt
}  // namespace lcp

#endif  // LCP_PLAN_OPT_IR_UTIL_H_
