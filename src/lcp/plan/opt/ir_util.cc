#include "lcp/plan/opt/ir_util.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <variant>

#include "lcp/base/strings.h"

namespace lcp {
namespace plan_opt {

namespace {

bool Has(const std::vector<std::string>& attrs, const std::string& attr) {
  return std::find(attrs.begin(), attrs.end(), attr) != attrs.end();
}

/// Serializes one value unambiguously (type tag + payload length).
void KeyValue(std::ostringstream& os, const Value& v) {
  if (v.is_int()) {
    os << "i" << v.AsInt();
  } else {
    os << "s" << v.AsString().size() << ":" << v.AsString();
  }
}

void KeyName(std::ostringstream& os, const std::string& name) {
  os << name.size() << ":" << name;
}

void KeyExpr(std::ostringstream& os, const RaExpr& expr) {
  switch (expr.op()) {
    case RaExpr::Op::kTempScan:
      os << "T(";
      KeyName(os, expr.table());
      os << ")";
      return;
    case RaExpr::Op::kSingleton:
      os << "1";
      return;
    case RaExpr::Op::kProject:
      os << "P[";
      for (const std::string& a : expr.attrs()) KeyName(os, a);
      os << "](";
      KeyExpr(os, *expr.children()[0]);
      os << ")";
      return;
    case RaExpr::Op::kSelect: {
      os << "S[";
      for (const RaExpr::Condition& c : expr.conditions()) {
        if (c.kind == RaExpr::Condition::Kind::kAttrEqAttr) {
          os << "a";
          KeyName(os, c.lhs);
          KeyName(os, c.rhs_attr);
        } else {
          os << "c";
          KeyName(os, c.lhs);
          KeyValue(os, c.rhs_const);
        }
      }
      os << "](";
      KeyExpr(os, *expr.children()[0]);
      os << ")";
      return;
    }
    case RaExpr::Op::kJoin:
    case RaExpr::Op::kUnion:
    case RaExpr::Op::kDifference:
      os << (expr.op() == RaExpr::Op::kJoin
                 ? "J"
                 : expr.op() == RaExpr::Op::kUnion ? "U" : "D")
         << "(";
      KeyExpr(os, *expr.children()[0]);
      os << ",";
      KeyExpr(os, *expr.children()[1]);
      os << ")";
      return;
    case RaExpr::Op::kRename:
      os << "R[";
      for (const auto& [from, to] : expr.renames()) {
        KeyName(os, from);
        KeyName(os, to);
      }
      os << "](";
      KeyExpr(os, *expr.children()[0]);
      os << ")";
      return;
  }
}

}  // namespace

Result<std::vector<std::string>> InferExprAttrs(const RaExpr& expr,
                                                const AttrEnv& env) {
  switch (expr.op()) {
    case RaExpr::Op::kTempScan: {
      auto it = env.find(expr.table());
      if (it == env.end()) {
        return InvalidArgumentError(
            StrCat("scan of undefined temporary table ", expr.table()));
      }
      return it->second;
    }
    case RaExpr::Op::kSingleton:
      return std::vector<std::string>{};
    case RaExpr::Op::kProject: {
      LCP_ASSIGN_OR_RETURN(std::vector<std::string> child,
                           InferExprAttrs(*expr.children()[0], env));
      for (const std::string& attr : expr.attrs()) {
        if (!Has(child, attr)) {
          return InvalidArgumentError(
              StrCat("projection references missing attribute ", attr));
        }
      }
      return expr.attrs();
    }
    case RaExpr::Op::kSelect:
      return InferExprAttrs(*expr.children()[0], env);
    case RaExpr::Op::kJoin: {
      LCP_ASSIGN_OR_RETURN(std::vector<std::string> left,
                           InferExprAttrs(*expr.children()[0], env));
      LCP_ASSIGN_OR_RETURN(std::vector<std::string> right,
                           InferExprAttrs(*expr.children()[1], env));
      for (const std::string& attr : right) {
        if (!Has(left, attr)) left.push_back(attr);
      }
      return left;
    }
    case RaExpr::Op::kUnion:
    case RaExpr::Op::kDifference:
      return InferExprAttrs(*expr.children()[0], env);
    case RaExpr::Op::kRename: {
      LCP_ASSIGN_OR_RETURN(std::vector<std::string> child,
                           InferExprAttrs(*expr.children()[0], env));
      for (const auto& [from, to] : expr.renames()) {
        auto it = std::find(child.begin(), child.end(), from);
        if (it != child.end()) *it = to;
      }
      return child;
    }
  }
  return InternalError("unreachable RA op");
}

void NoteCommand(const Command& cmd, AttrEnv& env) {
  if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
    std::vector<std::string> attrs;
    attrs.reserve(access->output_columns.size());
    for (const auto& [attr, pos] : access->output_columns) {
      attrs.push_back(attr);
    }
    env[access->output_table] = std::move(attrs);
  } else {
    const QueryCommand& query = std::get<QueryCommand>(cmd);
    if (query.expr == nullptr) return;
    Result<std::vector<std::string>> attrs = InferExprAttrs(*query.expr, env);
    if (attrs.ok()) env[query.output_table] = std::move(attrs).value();
  }
}

std::string ExprKey(const RaExpr& expr) {
  std::ostringstream os;
  KeyExpr(os, expr);
  return os.str();
}

std::string CommandKey(const Command& cmd) {
  std::ostringstream os;
  if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
    os << "A" << access->method << "|";
    if (access->input != nullptr) KeyExpr(os, *access->input);
    os << "|";
    // Binding lists and position filters are sets semantically: normalize
    // their order so permuted but identical accesses collapse.
    auto bindings = access->input_binding;
    std::sort(bindings.begin(), bindings.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second < b.second
                                            : a.first < b.first;
              });
    for (const auto& [attr, pos] : bindings) {
      os << pos << "=";
      KeyName(os, attr);
    }
    os << "|";
    auto constants = access->constant_inputs;
    std::sort(constants.begin(), constants.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second < b.second;
              });
    for (const auto& [pos, value] : constants) {
      os << pos << "=";
      KeyValue(os, value);
    }
    os << "|";
    std::vector<std::pair<int, int>> equalities;
    for (const auto& [a, b] : access->position_equalities) {
      equalities.emplace_back(std::min(a, b), std::max(a, b));
    }
    std::sort(equalities.begin(), equalities.end());
    for (const auto& [a, b] : equalities) os << a << "~" << b << ";";
    os << "|";
    auto pos_constants = access->position_constants;
    std::sort(pos_constants.begin(), pos_constants.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second < b.second;
              });
    for (const auto& [pos, value] : pos_constants) {
      os << pos << "=";
      KeyValue(os, value);
    }
    os << "|";
    // Output columns stay in order: they fix the output table's schema.
    for (const auto& [attr, pos] : access->output_columns) {
      KeyName(os, attr);
      os << ":" << pos << ";";
    }
  } else {
    const QueryCommand& query = std::get<QueryCommand>(cmd);
    os << "Q|";
    if (query.expr != nullptr) KeyExpr(os, *query.expr);
  }
  return os.str();
}

RaExprPtr SubstituteTables(
    const RaExprPtr& expr,
    const std::unordered_map<std::string, std::string>& renames) {
  if (expr == nullptr || renames.empty()) return expr;
  switch (expr->op()) {
    case RaExpr::Op::kTempScan: {
      auto it = renames.find(expr->table());
      return it == renames.end() ? expr : RaExpr::TempScan(it->second);
    }
    case RaExpr::Op::kSingleton:
      return expr;
    default: {
      std::vector<RaExprPtr> children;
      children.reserve(expr->children().size());
      bool changed = false;
      for (const RaExprPtr& child : expr->children()) {
        RaExprPtr substituted = SubstituteTables(child, renames);
        changed = changed || substituted != child;
        children.push_back(std::move(substituted));
      }
      if (!changed) return expr;
      switch (expr->op()) {
        case RaExpr::Op::kProject:
          return RaExpr::Project(std::move(children[0]), expr->attrs());
        case RaExpr::Op::kSelect:
          return RaExpr::Select(std::move(children[0]), expr->conditions());
        case RaExpr::Op::kJoin:
          return RaExpr::Join(std::move(children[0]), std::move(children[1]));
        case RaExpr::Op::kUnion:
          return RaExpr::Union(std::move(children[0]), std::move(children[1]));
        case RaExpr::Op::kDifference:
          return RaExpr::Difference(std::move(children[0]),
                                    std::move(children[1]));
        case RaExpr::Op::kRename:
          return RaExpr::Rename(std::move(children[0]), expr->renames());
        default:
          return expr;  // kTempScan/kSingleton handled above.
      }
    }
  }
}

void AppendReferencedTables(const Command& cmd,
                            std::vector<std::string>& out) {
  const RaExprPtr* expr = nullptr;
  if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
    expr = &access->input;
  } else {
    expr = &std::get<QueryCommand>(cmd).expr;
  }
  if (*expr == nullptr) return;
  std::vector<std::string> referenced = (*expr)->ReferencedTables();
  out.insert(out.end(), referenced.begin(), referenced.end());
}

int CountTableReferences(const Plan& plan, const std::string& table) {
  int count = 0;
  std::vector<std::string> referenced;
  for (const Command& cmd : plan.commands) {
    referenced.clear();
    AppendReferencedTables(cmd, referenced);
    for (const std::string& name : referenced) {
      if (name == table) ++count;
    }
  }
  return count;
}

const std::string& OutputTableOf(const Command& cmd) {
  if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
    return access->output_table;
  }
  return std::get<QueryCommand>(cmd).output_table;
}

}  // namespace plan_opt
}  // namespace lcp
