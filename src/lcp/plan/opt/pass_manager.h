#ifndef LCP_PLAN_OPT_PASS_MANAGER_H_
#define LCP_PLAN_OPT_PASS_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "lcp/base/result.h"
#include "lcp/plan/cost.h"
#include "lcp/plan/opt/pass.h"
#include "lcp/plan/plan.h"
#include "lcp/schema/schema.h"

namespace lcp {
namespace plan_opt {

/// Which passes run, and how long the fixpoint loop may spin. Defaults run
/// everything; individual passes can be switched off for debugging or A/B
/// benchmarking.
struct OptimizerOptions {
  bool enable_cse = true;
  bool enable_pushdown = true;
  bool enable_dce = true;
  bool enable_join_reorder = true;
  /// Upper bound on fixpoint iterations (each iteration runs every enabled
  /// pass once); the loop exits early when an iteration changes nothing.
  int max_fixpoint_iterations = 4;
};

/// Aggregate result of one Optimize() call.
struct OptimizeStats {
  /// One entry per enabled pass, in pipeline order, counters summed across
  /// fixpoint iterations.
  std::vector<PassStats> passes;
  int fixpoint_iterations = 0;
  bool changed = false;
  double cost_before = 0.0;
  double cost_after = 0.0;
  int commands_before = 0;
  int commands_after = 0;
  int access_commands_before = 0;
  int access_commands_after = 0;

  /// Multi-line human-readable report (used by the service demo).
  std::string ToString() const;
};

/// Runs the pass pipeline over a plan until fixpoint. Every pass output is
/// re-checked with ValidatePlan and re-costed under `cost`; an output that
/// fails validation or costs more than its input is discarded (counted in
/// PassStats::rejected), so Optimize never returns a plan that is invalid
/// or costlier than its input. Errors only on an input plan that itself
/// fails validation. Stateless after construction: one const PassManager
/// is safely shared across threads.
class PassManager {
 public:
  explicit PassManager(const OptimizerOptions& options = {});

  Result<Plan> Optimize(const Plan& plan, const Schema& schema,
                        const CostFunction& cost,
                        OptimizeStats* stats = nullptr) const;

 private:
  OptimizerOptions options_;
  std::vector<std::unique_ptr<const PlanPass>> passes_;
};

}  // namespace plan_opt
}  // namespace lcp

#endif  // LCP_PLAN_OPT_PASS_MANAGER_H_
