#include "lcp/plan/opt/pass_manager.h"

#include <sstream>
#include <utility>

#include "lcp/plan/opt/cse.h"
#include "lcp/plan/opt/dce.h"
#include "lcp/plan/opt/join_reorder.h"
#include "lcp/plan/opt/pushdown.h"
#include "lcp/plan/validate.h"

namespace lcp {
namespace plan_opt {

namespace {

/// Slack for cost comparisons: the guard is "not worse", and the shipped
/// cost functions are sums of doubles, so exact equality is too strict.
constexpr double kCostEpsilon = 1e-9;

void Accumulate(PassStats& total, const PassStats& delta) {
  total.applications += delta.applications;
  total.commands_removed += delta.commands_removed;
  total.access_commands_removed += delta.access_commands_removed;
  total.expressions_rewritten += delta.expressions_rewritten;
  total.selections_folded += delta.selections_folded;
  total.inputs_narrowed += delta.inputs_narrowed;
  total.joins_reordered += delta.joins_reordered;
  total.rejected += delta.rejected;
}

}  // namespace

std::string OptimizeStats::ToString() const {
  std::ostringstream os;
  os << "optimizer: cost " << cost_before << " -> " << cost_after
     << ", commands " << commands_before << " -> " << commands_after
     << " (access " << access_commands_before << " -> "
     << access_commands_after << "), " << fixpoint_iterations
     << " fixpoint iteration(s)\n";
  for (const PassStats& pass : passes) {
    os << "  [" << pass.pass << "] applications=" << pass.applications
       << " removed=" << pass.commands_removed
       << " (access=" << pass.access_commands_removed << ")"
       << " rewrites=" << pass.expressions_rewritten
       << " folds=" << pass.selections_folded
       << " narrowed=" << pass.inputs_narrowed
       << " reordered=" << pass.joins_reordered
       << " rejected=" << pass.rejected << " cost " << pass.cost_before
       << " -> " << pass.cost_after << "\n";
  }
  return os.str();
}

PassManager::PassManager(const OptimizerOptions& options) : options_(options) {
  // Pipeline order: CSE first creates dead duplicates, pushdown shrinks
  // what survives, DCE sweeps both up, join reorder runs on the final
  // command set. The fixpoint loop catches cascades (e.g. commands made
  // identical only after their inputs were rewritten).
  if (options_.enable_cse) passes_.push_back(std::make_unique<CsePass>());
  if (options_.enable_pushdown) {
    passes_.push_back(std::make_unique<PushdownPass>());
  }
  if (options_.enable_dce) passes_.push_back(std::make_unique<DcePass>());
  if (options_.enable_join_reorder) {
    passes_.push_back(std::make_unique<JoinReorderPass>());
  }
}

Result<Plan> PassManager::Optimize(const Plan& plan, const Schema& schema,
                                   const CostFunction& cost,
                                   OptimizeStats* stats) const {
  LCP_RETURN_IF_ERROR(ValidatePlan(plan, schema));

  OptimizeStats local;
  OptimizeStats& out = stats != nullptr ? *stats : local;
  out = OptimizeStats{};
  out.cost_before = cost.Cost(plan);
  out.commands_before = static_cast<int>(plan.commands.size());
  out.access_commands_before = plan.NumAccessCommands();
  out.passes.reserve(passes_.size());
  for (const auto& pass : passes_) {
    PassStats ps;
    ps.pass = pass->name();
    out.passes.push_back(std::move(ps));
  }

  Plan current = plan;
  double current_cost = out.cost_before;
  int max_iters = options_.max_fixpoint_iterations < 1
                      ? 1
                      : options_.max_fixpoint_iterations;
  for (int iter = 0; iter < max_iters; ++iter) {
    ++out.fixpoint_iterations;
    bool iteration_changed = false;
    for (size_t i = 0; i < passes_.size(); ++i) {
      PassStats delta;
      const double entry_cost = current_cost;
      // Per-pass cost attribution: cost_before is pinned at the pass's
      // first run, and only savings from *this* pass's accepted runs are
      // subtracted from its cost_after — so (before - after) is the cost
      // drop this pass is responsible for, not the pipeline total.
      if (iter == 0) {
        out.passes[i].cost_before = entry_cost;
        out.passes[i].cost_after = entry_cost;
      }
      Plan candidate = current;
      bool pass_changed = passes_[i]->Run(candidate, schema, delta);
      if (pass_changed) {
        double candidate_cost = cost.Cost(candidate);
        if (ValidatePlan(candidate, schema).ok() &&
            candidate_cost <= current_cost + kCostEpsilon) {
          current = std::move(candidate);
          current_cost = candidate_cost;
          iteration_changed = true;
          out.changed = true;
          out.passes[i].cost_after -= entry_cost - current_cost;
        } else {
          delta = PassStats{};
          delta.rejected = 1;
        }
      }
      Accumulate(out.passes[i], delta);
    }
    if (!iteration_changed) break;
  }

  out.cost_after = current_cost;
  out.commands_after = static_cast<int>(current.commands.size());
  out.access_commands_after = current.NumAccessCommands();
  return current;
}

}  // namespace plan_opt
}  // namespace lcp
