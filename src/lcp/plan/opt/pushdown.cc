#include "lcp/plan/opt/pushdown.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>
#include <vector>

#include "lcp/plan/opt/ir_util.h"

namespace lcp {
namespace plan_opt {

namespace {

/// Rewrites the unique `Select(TempScan(table), conds)` node, if present,
/// to a bare `TempScan(table)`, returning the folded conjuncts through
/// `folded`. Leaves `expr` untouched (returns it unchanged) when the
/// pattern does not occur in this tree.
RaExprPtr FoldSelectOverScan(const RaExprPtr& expr, const std::string& table,
                             std::vector<RaExpr::Condition>* folded) {
  if (expr == nullptr) return expr;
  if (expr->op() == RaExpr::Op::kSelect &&
      expr->children()[0]->op() == RaExpr::Op::kTempScan &&
      expr->children()[0]->table() == table) {
    *folded = expr->conditions();
    return expr->children()[0];
  }
  std::vector<RaExprPtr> children;
  children.reserve(expr->children().size());
  bool changed = false;
  for (const RaExprPtr& child : expr->children()) {
    RaExprPtr rewritten = FoldSelectOverScan(child, table, folded);
    changed = changed || rewritten != child;
    children.push_back(std::move(rewritten));
  }
  if (!changed) return expr;
  switch (expr->op()) {
    case RaExpr::Op::kProject:
      return RaExpr::Project(std::move(children[0]), expr->attrs());
    case RaExpr::Op::kSelect:
      return RaExpr::Select(std::move(children[0]), expr->conditions());
    case RaExpr::Op::kJoin:
      return RaExpr::Join(std::move(children[0]), std::move(children[1]));
    case RaExpr::Op::kUnion:
      return RaExpr::Union(std::move(children[0]), std::move(children[1]));
    case RaExpr::Op::kDifference:
      return RaExpr::Difference(std::move(children[0]), std::move(children[1]));
    case RaExpr::Op::kRename:
      return RaExpr::Rename(std::move(children[0]), expr->renames());
    default:
      return expr;
  }
}

RaExprPtr* CommandExpr(Command& cmd) {
  if (auto* access = std::get_if<AccessCommand>(&cmd)) return &access->input;
  return &std::get<QueryCommand>(cmd).expr;
}

/// Translates Select conjuncts over an access output table into position
/// filters on the access itself. Returns false (leaving `access`
/// unmodified) if any attribute fails to map.
bool MapConditionsToPositions(const std::vector<RaExpr::Condition>& conds,
                              AccessCommand& access) {
  std::unordered_map<std::string, int> attr_pos;
  for (const auto& [attr, pos] : access.output_columns) attr_pos[attr] = pos;
  std::vector<std::pair<int, int>> equalities;
  std::vector<std::pair<int, Value>> constants;
  for (const RaExpr::Condition& cond : conds) {
    auto lhs = attr_pos.find(cond.lhs);
    if (lhs == attr_pos.end()) return false;
    if (cond.kind == RaExpr::Condition::Kind::kAttrEqAttr) {
      auto rhs = attr_pos.find(cond.rhs_attr);
      if (rhs == attr_pos.end()) return false;
      equalities.emplace_back(lhs->second, rhs->second);
    } else {
      constants.emplace_back(lhs->second, cond.rhs_const);
    }
  }
  access.position_equalities.insert(access.position_equalities.end(),
                                    equalities.begin(), equalities.end());
  access.position_constants.insert(access.position_constants.end(),
                                   constants.begin(), constants.end());
  return true;
}

}  // namespace

bool PushdownPass::Run(Plan& plan, const Schema& /*schema*/,
                       PassStats& stats) const {
  bool changed = false;

  // Selection folding.
  for (Command& producer : plan.commands) {
    auto* access = std::get_if<AccessCommand>(&producer);
    if (access == nullptr) continue;
    const std::string& table = access->output_table;
    if (table == plan.output_table) continue;
    if (CountTableReferences(plan, table) != 1) continue;
    for (Command& consumer : plan.commands) {
      RaExprPtr* expr = CommandExpr(consumer);
      if (*expr == nullptr) continue;
      std::vector<RaExpr::Condition> folded;
      RaExprPtr rewritten = FoldSelectOverScan(*expr, table, &folded);
      if (folded.empty()) continue;
      if (!MapConditionsToPositions(folded, *access)) break;
      *expr = std::move(rewritten);
      stats.selections_folded += static_cast<int>(folded.size());
      ++stats.applications;
      changed = true;
      break;  // The unique reference was handled.
    }
  }

  // Input narrowing, walking front-to-back to know each table's schema.
  AttrEnv env;
  for (Command& cmd : plan.commands) {
    auto* access = std::get_if<AccessCommand>(&cmd);
    if (access != nullptr && access->input != nullptr &&
        !access->input_binding.empty()) {
      Result<std::vector<std::string>> attrs =
          InferExprAttrs(*access->input, env);
      if (attrs.ok()) {
        std::unordered_set<std::string> bound;
        for (const auto& [attr, pos] : access->input_binding) {
          bound.insert(attr);
        }
        std::vector<std::string> narrow;
        for (const std::string& attr : attrs.value()) {
          if (bound.count(attr)) narrow.push_back(attr);
        }
        if (narrow.size() == bound.size() &&
            narrow.size() < attrs.value().size()) {
          access->input = RaExpr::Project(access->input, std::move(narrow));
          ++stats.inputs_narrowed;
          ++stats.applications;
          changed = true;
        }
      }
    }
    NoteCommand(cmd, env);
  }
  return changed;
}

}  // namespace plan_opt
}  // namespace lcp
