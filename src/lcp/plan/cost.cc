#include "lcp/plan/cost.h"

#include <variant>

namespace lcp {

double SimpleCostFunction::Cost(const Plan& plan) const {
  double total = 0;
  for (const Command& cmd : plan.commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      total += schema_->access_method(access->method).cost;
    }
  }
  return total;
}

double WeightedAccessCostFunction::Cost(const Plan& plan) const {
  double total = 0;
  for (const Command& cmd : plan.commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      const AccessMethod& method = schema_->access_method(access->method);
      double calls = 1.0;
      auto it = estimated_calls_.find(method.relation);
      if (it != estimated_calls_.end()) calls = it->second;
      total += method.cost * calls;
    }
  }
  return total;
}

}  // namespace lcp
