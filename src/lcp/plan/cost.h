#ifndef LCP_PLAN_COST_H_
#define LCP_PLAN_COST_H_

#include <unordered_map>

#include "lcp/plan/plan.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// A "black box" plan cost function (§2, "Cost"). Implementations must be
/// monotone: appending access commands never decreases the cost — the
/// cost-bound pruning in Algorithm 1 relies on this.
class CostFunction {
 public:
  virtual ~CostFunction() = default;
  virtual double Cost(const Plan& plan) const = 0;
};

/// The paper's simple cost function: each access method mt has a positive
/// cost c_mt and a plan costs the sum over its access commands of the
/// invoked method's cost (repeated methods charged per command).
class SimpleCostFunction : public CostFunction {
 public:
  explicit SimpleCostFunction(const Schema* schema) : schema_(schema) {}

  double Cost(const Plan& plan) const override;

  /// Cost of a single access command using `method`.
  double MethodCost(AccessMethodId method) const {
    return schema_->access_method(method).cost;
  }

 private:
  const Schema* schema_;
};

/// A refinement used in the benchmarks: like SimpleCostFunction but each
/// method's charge is weighted by an estimated number of per-tuple source
/// calls (caller-provided estimated input cardinality per relation).
/// Still monotone.
class WeightedAccessCostFunction : public CostFunction {
 public:
  WeightedAccessCostFunction(const Schema* schema,
                             std::unordered_map<RelationId, double>
                                 estimated_calls_per_access)
      : schema_(schema),
        estimated_calls_(std::move(estimated_calls_per_access)) {}

  double Cost(const Plan& plan) const override;

 private:
  const Schema* schema_;
  std::unordered_map<RelationId, double> estimated_calls_;
};

}  // namespace lcp

#endif  // LCP_PLAN_COST_H_
