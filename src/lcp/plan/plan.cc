#include "lcp/plan/plan.h"

#include <sstream>

#include "lcp/base/strings.h"
#include "lcp/plan/opt/ir_util.h"

namespace lcp {

const char* PlanLanguageName(PlanLanguage lang) {
  switch (lang) {
    case PlanLanguage::kSpj:
      return "SPJ";
    case PlanLanguage::kUspj:
      return "USPJ";
    case PlanLanguage::kUspjNeg:
      return "USPJ^neg";
    case PlanLanguage::kRa:
      return "RA";
  }
  return "?";
}

int Plan::NumAccessCommands() const {
  int count = 0;
  for (const Command& cmd : commands) {
    if (std::holds_alternative<AccessCommand>(cmd)) ++count;
  }
  return count;
}

PlanLanguage Plan::Language() const {
  bool uses_union = false;
  bool uses_difference = false;
  auto scan = [&](const RaExprPtr& expr) {
    if (expr == nullptr) return;
    if (expr->Uses(RaExpr::Op::kUnion)) uses_union = true;
    if (expr->Uses(RaExpr::Op::kDifference)) uses_difference = true;
  };
  for (const Command& cmd : commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      scan(access->input);
    } else {
      scan(std::get<QueryCommand>(cmd).expr);
    }
  }
  if (uses_difference) return PlanLanguage::kUspjNeg;
  if (uses_union) return PlanLanguage::kUspj;
  return PlanLanguage::kSpj;
}

std::string Plan::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (const Command& cmd : commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      const AccessMethod& method = schema.access_method(access->method);
      os << access->output_table << " <- " << method.name << " <- ";
      if (access->input != nullptr) {
        os << access->input->ToString();
      } else if (!access->constant_inputs.empty()) {
        std::vector<std::string> consts;
        for (const auto& [pos, value] : access->constant_inputs) {
          consts.push_back(StrCat("pos", pos, "=", value.ToString()));
        }
        os << "const{" << StrJoin(consts, ",") << "}";
      } else {
        os << "{}";
      }
      if (!access->position_equalities.empty() ||
          !access->position_constants.empty()) {
        os << " where";
        for (const auto& [a, b] : access->position_equalities) {
          os << " pos" << a << "=pos" << b;
        }
        for (const auto& [p, v] : access->position_constants) {
          os << " pos" << p << "=" << v.ToString();
        }
      }
      std::vector<std::string> cols;
      for (const auto& [attr, pos] : access->output_columns) {
        cols.push_back(StrCat(attr, ":", pos));
      }
      os << " out(" << StrJoin(cols, ",") << ")";
      os << "\n";
    } else {
      const QueryCommand& query = std::get<QueryCommand>(cmd);
      os << query.output_table << " := " << query.expr->ToString() << "\n";
    }
  }
  os << "output: " << output_table;
  if (!output_attrs.empty()) os << "[" << StrJoin(output_attrs, ",") << "]";
  os << "\n";
  return os.str();
}

namespace {

/// The full structural form of one command: plan_opt::CommandKey covers
/// everything except the output-table name (the optimizer compares commands
/// modulo renaming); equality of whole plans needs the name too, since later
/// commands reference it.
std::string FullCommandKey(const Command& cmd) {
  return StrCat(plan_opt::OutputTableOf(cmd), "<-", plan_opt::CommandKey(cmd));
}

}  // namespace

bool operator==(const Plan& a, const Plan& b) {
  if (a.output_table != b.output_table || a.output_attrs != b.output_attrs ||
      a.commands.size() != b.commands.size()) {
    return false;
  }
  for (size_t i = 0; i < a.commands.size(); ++i) {
    if (FullCommandKey(a.commands[i]) != FullCommandKey(b.commands[i])) {
      return false;
    }
  }
  return true;
}

uint64_t PlanStructuralHash(const Plan& plan) {
  // FNV-1a over the same canonical serialization operator== compares, with a
  // splitmix finisher; equal plans hash equal by construction.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& piece) {
    for (unsigned char c : piece) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // separator so adjacent pieces cannot alias
    h *= 0x100000001b3ULL;
  };
  for (const Command& cmd : plan.commands) mix(FullCommandKey(cmd));
  mix(plan.output_table);
  for (const std::string& attr : plan.output_attrs) mix(attr);
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace lcp
