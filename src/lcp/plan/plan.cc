#include "lcp/plan/plan.h"

#include <sstream>

#include "lcp/base/strings.h"

namespace lcp {

const char* PlanLanguageName(PlanLanguage lang) {
  switch (lang) {
    case PlanLanguage::kSpj:
      return "SPJ";
    case PlanLanguage::kUspj:
      return "USPJ";
    case PlanLanguage::kUspjNeg:
      return "USPJ^neg";
    case PlanLanguage::kRa:
      return "RA";
  }
  return "?";
}

int Plan::NumAccessCommands() const {
  int count = 0;
  for (const Command& cmd : commands) {
    if (std::holds_alternative<AccessCommand>(cmd)) ++count;
  }
  return count;
}

PlanLanguage Plan::Language() const {
  bool uses_union = false;
  bool uses_difference = false;
  auto scan = [&](const RaExprPtr& expr) {
    if (expr == nullptr) return;
    if (expr->Uses(RaExpr::Op::kUnion)) uses_union = true;
    if (expr->Uses(RaExpr::Op::kDifference)) uses_difference = true;
  };
  for (const Command& cmd : commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      scan(access->input);
    } else {
      scan(std::get<QueryCommand>(cmd).expr);
    }
  }
  if (uses_difference) return PlanLanguage::kUspjNeg;
  if (uses_union) return PlanLanguage::kUspj;
  return PlanLanguage::kSpj;
}

std::string Plan::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (const Command& cmd : commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      const AccessMethod& method = schema.access_method(access->method);
      os << access->output_table << " <- " << method.name << " <- ";
      if (access->input != nullptr) {
        os << access->input->ToString();
      } else if (!access->constant_inputs.empty()) {
        std::vector<std::string> consts;
        for (const auto& [pos, value] : access->constant_inputs) {
          consts.push_back(StrCat("pos", pos, "=", value.ToString()));
        }
        os << "const{" << StrJoin(consts, ",") << "}";
      } else {
        os << "{}";
      }
      if (!access->position_equalities.empty() ||
          !access->position_constants.empty()) {
        os << " where";
        for (const auto& [a, b] : access->position_equalities) {
          os << " pos" << a << "=pos" << b;
        }
        for (const auto& [p, v] : access->position_constants) {
          os << " pos" << p << "=" << v.ToString();
        }
      }
      std::vector<std::string> cols;
      for (const auto& [attr, pos] : access->output_columns) {
        cols.push_back(StrCat(attr, ":", pos));
      }
      os << " out(" << StrJoin(cols, ",") << ")";
      os << "\n";
    } else {
      const QueryCommand& query = std::get<QueryCommand>(cmd);
      os << query.output_table << " := " << query.expr->ToString() << "\n";
    }
  }
  os << "output: " << output_table;
  if (!output_attrs.empty()) os << "[" << StrJoin(output_attrs, ",") << "]";
  os << "\n";
  return os.str();
}

}  // namespace lcp
