#include "lcp/plan/validate.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "lcp/base/strings.h"

namespace lcp {

namespace {

using AttrSet = std::vector<std::string>;

bool Has(const AttrSet& attrs, const std::string& attr) {
  return std::find(attrs.begin(), attrs.end(), attr) != attrs.end();
}

/// Infers the attribute set of an RA expression over the known tables, or
/// fails on inconsistencies.
Result<AttrSet> InferAttrs(const RaExpr& expr,
                           const std::unordered_map<std::string, AttrSet>&
                               tables) {
  switch (expr.op()) {
    case RaExpr::Op::kTempScan: {
      auto it = tables.find(expr.table());
      if (it == tables.end()) {
        return InvalidArgumentError(
            StrCat("scan of undefined temporary table ", expr.table()));
      }
      return it->second;
    }
    case RaExpr::Op::kSingleton:
      return AttrSet{};
    case RaExpr::Op::kProject: {
      LCP_ASSIGN_OR_RETURN(AttrSet child,
                           InferAttrs(*expr.children()[0], tables));
      for (const std::string& attr : expr.attrs()) {
        if (!Has(child, attr)) {
          return InvalidArgumentError(
              StrCat("projection references missing attribute ", attr));
        }
      }
      return expr.attrs();
    }
    case RaExpr::Op::kSelect: {
      LCP_ASSIGN_OR_RETURN(AttrSet child,
                           InferAttrs(*expr.children()[0], tables));
      for (const RaExpr::Condition& c : expr.conditions()) {
        if (!Has(child, c.lhs)) {
          return InvalidArgumentError(
              StrCat("selection references missing attribute ", c.lhs));
        }
        if (c.kind == RaExpr::Condition::Kind::kAttrEqAttr &&
            !Has(child, c.rhs_attr)) {
          return InvalidArgumentError(
              StrCat("selection references missing attribute ", c.rhs_attr));
        }
      }
      return child;
    }
    case RaExpr::Op::kJoin: {
      LCP_ASSIGN_OR_RETURN(AttrSet left,
                           InferAttrs(*expr.children()[0], tables));
      LCP_ASSIGN_OR_RETURN(AttrSet right,
                           InferAttrs(*expr.children()[1], tables));
      for (const std::string& attr : right) {
        if (!Has(left, attr)) left.push_back(attr);
      }
      return left;
    }
    case RaExpr::Op::kUnion:
    case RaExpr::Op::kDifference: {
      LCP_ASSIGN_OR_RETURN(AttrSet left,
                           InferAttrs(*expr.children()[0], tables));
      LCP_ASSIGN_OR_RETURN(AttrSet right,
                           InferAttrs(*expr.children()[1], tables));
      if (left.size() != right.size()) {
        return InvalidArgumentError(
            "union/difference over different attribute sets");
      }
      for (const std::string& attr : right) {
        if (!Has(left, attr)) {
          return InvalidArgumentError(
              StrCat("union/difference operand missing attribute ", attr));
        }
      }
      return left;
    }
    case RaExpr::Op::kRename: {
      LCP_ASSIGN_OR_RETURN(AttrSet child,
                           InferAttrs(*expr.children()[0], tables));
      for (const auto& [from, to] : expr.renames()) {
        auto it = std::find(child.begin(), child.end(), from);
        if (it == child.end()) {
          return InvalidArgumentError(
              StrCat("rename of missing attribute ", from));
        }
        *it = to;
      }
      return child;
    }
  }
  return InternalError("unreachable RA op");
}

}  // namespace

Status ValidatePlan(const Plan& plan, const Schema& schema) {
  std::unordered_map<std::string, AttrSet> tables;
  for (const Command& cmd : plan.commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      if (access->method < 0 ||
          access->method >= schema.num_access_methods()) {
        return InvalidArgumentError(
            StrCat("unknown access method id ", access->method));
      }
      const AccessMethod& method = schema.access_method(access->method);
      const Relation& rel = schema.relation(method.relation);

      AttrSet input_attrs;
      if (access->input != nullptr) {
        LCP_ASSIGN_OR_RETURN(input_attrs, InferAttrs(*access->input, tables));
      }
      std::unordered_set<int> bound;
      for (const auto& [attr, pos] : access->input_binding) {
        if (!Has(input_attrs, attr)) {
          return InvalidArgumentError(
              StrCat("input binding references missing attribute ", attr,
                     " for method ", method.name));
        }
        if (!bound.insert(pos).second) {
          return InvalidArgumentError(
              StrCat("input position ", pos, " of method ", method.name,
                     " is bound twice"));
        }
      }
      for (const auto& [pos, value] : access->constant_inputs) {
        if (!bound.insert(pos).second) {
          return InvalidArgumentError(
              StrCat("input position ", pos, " of method ", method.name,
                     " is bound twice"));
        }
      }
      for (int pos : method.input_positions) {
        if (bound.count(pos) == 0) {
          return InvalidArgumentError(
              StrCat("input position ", pos, " of method ", method.name,
                     " is unbound"));
        }
      }
      AttrSet out_attrs;
      for (const auto& [attr, pos] : access->output_columns) {
        if (pos < 0 || pos >= rel.arity) {
          return InvalidArgumentError(
              StrCat("output column ", attr, " references position ", pos,
                     " outside ", rel.name));
        }
        if (Has(out_attrs, attr)) {
          return InvalidArgumentError(
              StrCat("duplicate output attribute ", attr));
        }
        out_attrs.push_back(attr);
      }
      for (const auto& [a, b] : access->position_equalities) {
        if (a < 0 || a >= rel.arity || b < 0 || b >= rel.arity) {
          return InvalidArgumentError("position equality out of range");
        }
      }
      for (const auto& [pos, value] : access->position_constants) {
        if (pos < 0 || pos >= rel.arity) {
          return InvalidArgumentError("position constant out of range");
        }
      }
      if (!tables.emplace(access->output_table, std::move(out_attrs)).second) {
        return InvalidArgumentError(
            StrCat("output table ", access->output_table,
                   " is produced twice"));
      }
    } else {
      const QueryCommand& query = std::get<QueryCommand>(cmd);
      if (query.expr == nullptr) {
        return InvalidArgumentError("query command without expression");
      }
      LCP_ASSIGN_OR_RETURN(AttrSet attrs, InferAttrs(*query.expr, tables));
      if (!tables.emplace(query.output_table, std::move(attrs)).second) {
        return InvalidArgumentError(
            StrCat("output table ", query.output_table,
                   " is produced twice"));
      }
    }
  }
  auto it = tables.find(plan.output_table);
  if (it == tables.end()) {
    return InvalidArgumentError(
        StrCat("output table ", plan.output_table, " is never produced"));
  }
  for (const std::string& attr : plan.output_attrs) {
    if (!Has(it->second, attr)) {
      return InvalidArgumentError(
          StrCat("output attribute ", attr, " missing from ",
                 plan.output_table));
    }
  }
  return Status::Ok();
}

}  // namespace lcp
