#ifndef LCP_PLAN_CARDINALITY_COST_H_
#define LCP_PLAN_CARDINALITY_COST_H_

#include <unordered_map>

#include "lcp/plan/cost.h"

namespace lcp {

/// Statistics feeding the cardinality-aware cost model: estimated extension
/// sizes per relation and a join overlap factor.
struct CardinalityEstimates {
  /// Estimated number of tuples a free (or fully-satisfiable) access to the
  /// relation returns. Relations absent from the map default to
  /// `default_cardinality`.
  std::unordered_map<RelationId, double> cardinality;
  double default_cardinality = 100.0;
  /// Multiplier applied per join: joining k temp tables is estimated at
  /// (product of sizes is wrong for keyed overlaps, so we use min * f^(k-1)
  /// with f < 1 modelling the "what fraction of one source also appears in
  /// the other" overlap of §1's directory discussion).
  double join_overlap = 0.5;
};

/// The paper's "generic cost function" made concrete (§2, §5): an access
/// command costs method.cost × (estimated number of distinct input
/// bindings), where input cardinalities are propagated through the
/// middleware commands using the estimates above. Monotone in appended
/// access commands (every command adds a positive charge), so both prunings
/// of Algorithm 1 remain sound.
///
/// Under this model the Example 5 intersection plans can beat the
/// single-directory plan: intersecting two directories first shrinks the
/// estimated input to the expensive checking access — which is exactly why
/// the paper insists these plans "are not variants of one another" and must
/// be found by proof exploration.
class CardinalityCostFunction : public CostFunction {
 public:
  CardinalityCostFunction(const Schema* schema, CardinalityEstimates estimates)
      : schema_(schema), estimates_(std::move(estimates)) {}

  double Cost(const Plan& plan) const override;

  /// Estimated row count of each temporary table after running `plan`
  /// (exposed for tests and for explain-style output).
  std::unordered_map<std::string, double> EstimateTables(
      const Plan& plan) const;

 private:
  double RelationCardinality(RelationId relation) const;

  const Schema* schema_;
  CardinalityEstimates estimates_;
};

}  // namespace lcp

#endif  // LCP_PLAN_CARDINALITY_COST_H_
