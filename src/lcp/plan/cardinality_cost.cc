#include "lcp/plan/cardinality_cost.h"

#include <algorithm>
#include <variant>

namespace lcp {

namespace {

/// Estimated size of an RA expression given temp-table estimates. Joins use
/// min(children) * overlap; union adds; difference keeps the left size;
/// select halves; the rest pass through.
double EstimateExpr(const RaExpr& expr,
                    const std::unordered_map<std::string, double>& tables,
                    double overlap) {
  switch (expr.op()) {
    case RaExpr::Op::kTempScan: {
      auto it = tables.find(expr.table());
      return it == tables.end() ? 0.0 : it->second;
    }
    case RaExpr::Op::kSingleton:
      return 1.0;
    case RaExpr::Op::kProject:
    case RaExpr::Op::kRename:
      return EstimateExpr(*expr.children()[0], tables, overlap);
    case RaExpr::Op::kSelect:
      return 0.5 * EstimateExpr(*expr.children()[0], tables, overlap);
    case RaExpr::Op::kJoin: {
      double l = EstimateExpr(*expr.children()[0], tables, overlap);
      double r = EstimateExpr(*expr.children()[1], tables, overlap);
      return std::min(l, r) * overlap + 1.0;
    }
    case RaExpr::Op::kUnion:
      return EstimateExpr(*expr.children()[0], tables, overlap) +
             EstimateExpr(*expr.children()[1], tables, overlap);
    case RaExpr::Op::kDifference:
      return EstimateExpr(*expr.children()[0], tables, overlap);
  }
  return 0.0;
}

}  // namespace

double CardinalityCostFunction::RelationCardinality(
    RelationId relation) const {
  auto it = estimates_.cardinality.find(relation);
  return it == estimates_.cardinality.end() ? estimates_.default_cardinality
                                            : it->second;
}

std::unordered_map<std::string, double>
CardinalityCostFunction::EstimateTables(const Plan& plan) const {
  std::unordered_map<std::string, double> tables;
  for (const Command& cmd : plan.commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      const AccessMethod& method = schema_->access_method(access->method);
      double bindings =
          access->input == nullptr
              ? 1.0
              : EstimateExpr(*access->input, tables, estimates_.join_overlap);
      double output = RelationCardinality(method.relation);
      if (!method.input_positions.empty()) {
        // A keyed access returns roughly one match per binding.
        output = std::min(output, bindings);
      }
      tables[access->output_table] = output;
    } else {
      const QueryCommand& query = std::get<QueryCommand>(cmd);
      tables[query.output_table] =
          EstimateExpr(*query.expr, tables, estimates_.join_overlap);
    }
  }
  return tables;
}

double CardinalityCostFunction::Cost(const Plan& plan) const {
  std::unordered_map<std::string, double> tables;
  double total = 0;
  for (const Command& cmd : plan.commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      const AccessMethod& method = schema_->access_method(access->method);
      double bindings =
          access->input == nullptr
              ? 1.0
              : EstimateExpr(*access->input, tables, estimates_.join_overlap);
      // Every access command charges at least one call.
      total += method.cost * std::max(1.0, bindings);
      double output = RelationCardinality(method.relation);
      if (!method.input_positions.empty()) {
        output = std::min(output, bindings);
      }
      tables[access->output_table] = output;
    } else {
      const QueryCommand& query = std::get<QueryCommand>(cmd);
      tables[query.output_table] =
          EstimateExpr(*query.expr, tables, estimates_.join_overlap);
    }
  }
  return total;
}

}  // namespace lcp
