#ifndef LCP_PLAN_VALIDATE_H_
#define LCP_PLAN_VALIDATE_H_

#include "lcp/base/status.h"
#include "lcp/plan/plan.h"

namespace lcp {

/// Statically validates a plan against a schema, without executing it:
///  - every access command references a known method, binds exactly its
///    input positions (via columns of its input expression or constants),
///    and its output columns reference valid positions;
///  - every RA expression only scans temporary tables already produced,
///    and projections/selections/renames/unions are attribute-consistent;
///  - the output table exists and exposes the declared output attributes.
/// Proof-generated plans always pass; the check exists for plans built or
/// transformed by hand (and is itself exercised by the test suite).
Status ValidatePlan(const Plan& plan, const Schema& schema);

}  // namespace lcp

#endif  // LCP_PLAN_VALIDATE_H_
