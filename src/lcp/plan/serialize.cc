#include "lcp/plan/serialize.h"

#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "lcp/base/strings.h"

namespace lcp {

namespace {

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

constexpr uint8_t kCmdAccess = 0;
constexpr uint8_t kCmdQuery = 1;

constexpr uint8_t kExprNull = 0xFF;  ///< Absent expression (input-free access).
constexpr uint8_t kValueInt = 0;
constexpr uint8_t kValueString = 1;
constexpr uint8_t kCondAttrEqAttr = 0;
constexpr uint8_t kCondAttrEqConst = 1;

/// Corrupt input must never drive allocation or recursion: nesting is capped
/// far above anything the planner emits, and every length is checked against
/// the bytes actually remaining.
constexpr int kMaxExprDepth = 256;

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutString(std::string& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

void PutValue(std::string& out, const Value& v) {
  if (v.is_int()) {
    PutU8(out, kValueInt);
    PutU64(out, static_cast<uint64_t>(v.AsInt()));
  } else {
    PutU8(out, kValueString);
    PutString(out, v.AsString());
  }
}

void PutExpr(std::string& out, const RaExprPtr& expr) {
  if (expr == nullptr) {
    PutU8(out, kExprNull);
    return;
  }
  PutU8(out, static_cast<uint8_t>(expr->op()));
  switch (expr->op()) {
    case RaExpr::Op::kTempScan:
      PutString(out, expr->table());
      return;
    case RaExpr::Op::kSingleton:
      return;
    case RaExpr::Op::kProject:
      PutU32(out, static_cast<uint32_t>(expr->attrs().size()));
      for (const std::string& attr : expr->attrs()) PutString(out, attr);
      PutExpr(out, expr->children()[0]);
      return;
    case RaExpr::Op::kSelect:
      PutU32(out, static_cast<uint32_t>(expr->conditions().size()));
      for (const RaExpr::Condition& c : expr->conditions()) {
        if (c.kind == RaExpr::Condition::Kind::kAttrEqAttr) {
          PutU8(out, kCondAttrEqAttr);
          PutString(out, c.lhs);
          PutString(out, c.rhs_attr);
        } else {
          PutU8(out, kCondAttrEqConst);
          PutString(out, c.lhs);
          PutValue(out, c.rhs_const);
        }
      }
      PutExpr(out, expr->children()[0]);
      return;
    case RaExpr::Op::kJoin:
    case RaExpr::Op::kUnion:
    case RaExpr::Op::kDifference:
      PutExpr(out, expr->children()[0]);
      PutExpr(out, expr->children()[1]);
      return;
    case RaExpr::Op::kRename:
      PutU32(out, static_cast<uint32_t>(expr->renames().size()));
      for (const auto& [from, to] : expr->renames()) {
        PutString(out, from);
        PutString(out, to);
      }
      PutExpr(out, expr->children()[0]);
      return;
  }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked forward reader over the input bytes.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Result<uint8_t> U8() {
    if (remaining() < 1) return Truncated("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> U32() {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::string> String() {
    LCP_ASSIGN_OR_RETURN(uint32_t size, U32());
    if (remaining() < size) return Truncated("string payload");
    std::string s(data_.substr(pos_, size));
    pos_ += size;
    return s;
  }

  /// A declared element count can never exceed the remaining byte count
  /// (every element is at least one byte), so corrupt counts are rejected
  /// before any reserve-style allocation.
  Result<uint32_t> Count(const char* what) {
    LCP_ASSIGN_OR_RETURN(uint32_t count, U32());
    if (count > remaining()) {
      return InvalidArgumentError(StrCat("plan codec: implausible ", what,
                                         " count ", count, " with ",
                                         remaining(), " bytes left"));
    }
    return count;
  }

 private:
  Status Truncated(const char* what) const {
    return InvalidArgumentError(
        StrCat("plan codec: truncated input reading ", what, " at offset ",
               pos_, " of ", data_.size()));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Result<Value> ReadValue(Cursor& cursor) {
  LCP_ASSIGN_OR_RETURN(uint8_t tag, cursor.U8());
  if (tag == kValueInt) {
    LCP_ASSIGN_OR_RETURN(uint64_t bits, cursor.U64());
    return Value::Int(static_cast<int64_t>(bits));
  }
  if (tag == kValueString) {
    LCP_ASSIGN_OR_RETURN(std::string s, cursor.String());
    return Value::Str(std::move(s));
  }
  return InvalidArgumentError(
      StrCat("plan codec: unknown value tag ", static_cast<int>(tag)));
}

Result<RaExprPtr> ReadExpr(Cursor& cursor, int depth) {
  if (depth > kMaxExprDepth) {
    return InvalidArgumentError(
        "plan codec: expression nesting exceeds the depth cap");
  }
  LCP_ASSIGN_OR_RETURN(uint8_t tag, cursor.U8());
  if (tag == kExprNull) return RaExprPtr(nullptr);
  switch (static_cast<RaExpr::Op>(tag)) {
    case RaExpr::Op::kTempScan: {
      LCP_ASSIGN_OR_RETURN(std::string table, cursor.String());
      return RaExpr::TempScan(std::move(table));
    }
    case RaExpr::Op::kSingleton:
      return RaExpr::Singleton();
    case RaExpr::Op::kProject: {
      LCP_ASSIGN_OR_RETURN(uint32_t n, cursor.Count("project attr"));
      std::vector<std::string> attrs;
      attrs.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        LCP_ASSIGN_OR_RETURN(std::string attr, cursor.String());
        attrs.push_back(std::move(attr));
      }
      LCP_ASSIGN_OR_RETURN(RaExprPtr child, ReadExpr(cursor, depth + 1));
      if (child == nullptr) {
        return InvalidArgumentError("plan codec: null child of project");
      }
      return RaExpr::Project(std::move(child), std::move(attrs));
    }
    case RaExpr::Op::kSelect: {
      LCP_ASSIGN_OR_RETURN(uint32_t n, cursor.Count("condition"));
      std::vector<RaExpr::Condition> conditions;
      conditions.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        LCP_ASSIGN_OR_RETURN(uint8_t kind, cursor.U8());
        if (kind == kCondAttrEqAttr) {
          LCP_ASSIGN_OR_RETURN(std::string lhs, cursor.String());
          LCP_ASSIGN_OR_RETURN(std::string rhs, cursor.String());
          conditions.push_back(
              RaExpr::Condition::AttrEqAttr(std::move(lhs), std::move(rhs)));
        } else if (kind == kCondAttrEqConst) {
          LCP_ASSIGN_OR_RETURN(std::string lhs, cursor.String());
          LCP_ASSIGN_OR_RETURN(Value v, ReadValue(cursor));
          conditions.push_back(
              RaExpr::Condition::AttrEqConst(std::move(lhs), std::move(v)));
        } else {
          return InvalidArgumentError(StrCat(
              "plan codec: unknown condition kind ", static_cast<int>(kind)));
        }
      }
      LCP_ASSIGN_OR_RETURN(RaExprPtr child, ReadExpr(cursor, depth + 1));
      if (child == nullptr) {
        return InvalidArgumentError("plan codec: null child of select");
      }
      return RaExpr::Select(std::move(child), std::move(conditions));
    }
    case RaExpr::Op::kJoin:
    case RaExpr::Op::kUnion:
    case RaExpr::Op::kDifference: {
      LCP_ASSIGN_OR_RETURN(RaExprPtr left, ReadExpr(cursor, depth + 1));
      LCP_ASSIGN_OR_RETURN(RaExprPtr right, ReadExpr(cursor, depth + 1));
      if (left == nullptr || right == nullptr) {
        return InvalidArgumentError(
            "plan codec: null child of binary operator");
      }
      if (tag == static_cast<uint8_t>(RaExpr::Op::kJoin)) {
        return RaExpr::Join(std::move(left), std::move(right));
      }
      if (tag == static_cast<uint8_t>(RaExpr::Op::kUnion)) {
        return RaExpr::Union(std::move(left), std::move(right));
      }
      return RaExpr::Difference(std::move(left), std::move(right));
    }
    case RaExpr::Op::kRename: {
      LCP_ASSIGN_OR_RETURN(uint32_t n, cursor.Count("rename"));
      std::vector<std::pair<std::string, std::string>> renames;
      renames.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        LCP_ASSIGN_OR_RETURN(std::string from, cursor.String());
        LCP_ASSIGN_OR_RETURN(std::string to, cursor.String());
        renames.emplace_back(std::move(from), std::move(to));
      }
      LCP_ASSIGN_OR_RETURN(RaExprPtr child, ReadExpr(cursor, depth + 1));
      if (child == nullptr) {
        return InvalidArgumentError("plan codec: null child of rename");
      }
      return RaExpr::Rename(std::move(child), std::move(renames));
    }
  }
  return InvalidArgumentError(
      StrCat("plan codec: unknown expression tag ", static_cast<int>(tag)));
}

Result<int32_t> ReadI32(Cursor& cursor) {
  LCP_ASSIGN_OR_RETURN(uint32_t bits, cursor.U32());
  return static_cast<int32_t>(bits);
}

Result<AccessCommand> ReadAccessCommand(Cursor& cursor) {
  AccessCommand access;
  LCP_ASSIGN_OR_RETURN(access.method, ReadI32(cursor));
  LCP_ASSIGN_OR_RETURN(access.input, ReadExpr(cursor, 0));
  LCP_ASSIGN_OR_RETURN(uint32_t bindings, cursor.Count("input binding"));
  access.input_binding.reserve(bindings);
  for (uint32_t i = 0; i < bindings; ++i) {
    LCP_ASSIGN_OR_RETURN(std::string attr, cursor.String());
    LCP_ASSIGN_OR_RETURN(int32_t pos, ReadI32(cursor));
    access.input_binding.emplace_back(std::move(attr), pos);
  }
  LCP_ASSIGN_OR_RETURN(uint32_t constants, cursor.Count("constant input"));
  access.constant_inputs.reserve(constants);
  for (uint32_t i = 0; i < constants; ++i) {
    LCP_ASSIGN_OR_RETURN(int32_t pos, ReadI32(cursor));
    LCP_ASSIGN_OR_RETURN(Value v, ReadValue(cursor));
    access.constant_inputs.emplace_back(pos, std::move(v));
  }
  LCP_ASSIGN_OR_RETURN(access.output_table, cursor.String());
  LCP_ASSIGN_OR_RETURN(uint32_t columns, cursor.Count("output column"));
  access.output_columns.reserve(columns);
  for (uint32_t i = 0; i < columns; ++i) {
    LCP_ASSIGN_OR_RETURN(std::string attr, cursor.String());
    LCP_ASSIGN_OR_RETURN(int32_t pos, ReadI32(cursor));
    access.output_columns.emplace_back(std::move(attr), pos);
  }
  LCP_ASSIGN_OR_RETURN(uint32_t equalities, cursor.Count("position equality"));
  access.position_equalities.reserve(equalities);
  for (uint32_t i = 0; i < equalities; ++i) {
    LCP_ASSIGN_OR_RETURN(int32_t a, ReadI32(cursor));
    LCP_ASSIGN_OR_RETURN(int32_t b, ReadI32(cursor));
    access.position_equalities.emplace_back(a, b);
  }
  LCP_ASSIGN_OR_RETURN(uint32_t pos_consts, cursor.Count("position constant"));
  access.position_constants.reserve(pos_consts);
  for (uint32_t i = 0; i < pos_consts; ++i) {
    LCP_ASSIGN_OR_RETURN(int32_t pos, ReadI32(cursor));
    LCP_ASSIGN_OR_RETURN(Value v, ReadValue(cursor));
    access.position_constants.emplace_back(pos, std::move(v));
  }
  return access;
}

}  // namespace

void EncodePlan(const Plan& plan, std::string& out) {
  PutU8(out, kPlanCodecVersion);
  PutU32(out, static_cast<uint32_t>(plan.commands.size()));
  for (const Command& cmd : plan.commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      PutU8(out, kCmdAccess);
      PutU32(out, static_cast<uint32_t>(access->method));
      PutExpr(out, access->input);
      PutU32(out, static_cast<uint32_t>(access->input_binding.size()));
      for (const auto& [attr, pos] : access->input_binding) {
        PutString(out, attr);
        PutU32(out, static_cast<uint32_t>(pos));
      }
      PutU32(out, static_cast<uint32_t>(access->constant_inputs.size()));
      for (const auto& [pos, v] : access->constant_inputs) {
        PutU32(out, static_cast<uint32_t>(pos));
        PutValue(out, v);
      }
      PutString(out, access->output_table);
      PutU32(out, static_cast<uint32_t>(access->output_columns.size()));
      for (const auto& [attr, pos] : access->output_columns) {
        PutString(out, attr);
        PutU32(out, static_cast<uint32_t>(pos));
      }
      PutU32(out, static_cast<uint32_t>(access->position_equalities.size()));
      for (const auto& [a, b] : access->position_equalities) {
        PutU32(out, static_cast<uint32_t>(a));
        PutU32(out, static_cast<uint32_t>(b));
      }
      PutU32(out, static_cast<uint32_t>(access->position_constants.size()));
      for (const auto& [pos, v] : access->position_constants) {
        PutU32(out, static_cast<uint32_t>(pos));
        PutValue(out, v);
      }
    } else {
      const QueryCommand& query = std::get<QueryCommand>(cmd);
      PutU8(out, kCmdQuery);
      PutString(out, query.output_table);
      PutExpr(out, query.expr);
    }
  }
  PutString(out, plan.output_table);
  PutU32(out, static_cast<uint32_t>(plan.output_attrs.size()));
  for (const std::string& attr : plan.output_attrs) PutString(out, attr);
}

Result<Plan> DecodePlan(std::string_view data) {
  Cursor cursor(data);
  LCP_ASSIGN_OR_RETURN(uint8_t version, cursor.U8());
  if (version != kPlanCodecVersion) {
    return InvalidArgumentError(StrCat("plan codec: unsupported version ",
                                       static_cast<int>(version),
                                       " (expected ",
                                       static_cast<int>(kPlanCodecVersion),
                                       ")"));
  }
  Plan plan;
  LCP_ASSIGN_OR_RETURN(uint32_t commands, cursor.Count("command"));
  plan.commands.reserve(commands);
  for (uint32_t i = 0; i < commands; ++i) {
    LCP_ASSIGN_OR_RETURN(uint8_t kind, cursor.U8());
    if (kind == kCmdAccess) {
      LCP_ASSIGN_OR_RETURN(AccessCommand access, ReadAccessCommand(cursor));
      plan.commands.emplace_back(std::move(access));
    } else if (kind == kCmdQuery) {
      QueryCommand query;
      LCP_ASSIGN_OR_RETURN(query.output_table, cursor.String());
      LCP_ASSIGN_OR_RETURN(query.expr, ReadExpr(cursor, 0));
      plan.commands.emplace_back(std::move(query));
    } else {
      return InvalidArgumentError(
          StrCat("plan codec: unknown command kind ", static_cast<int>(kind)));
    }
  }
  LCP_ASSIGN_OR_RETURN(plan.output_table, cursor.String());
  LCP_ASSIGN_OR_RETURN(uint32_t attrs, cursor.Count("output attr"));
  plan.output_attrs.reserve(attrs);
  for (uint32_t i = 0; i < attrs; ++i) {
    LCP_ASSIGN_OR_RETURN(std::string attr, cursor.String());
    plan.output_attrs.push_back(std::move(attr));
  }
  if (cursor.remaining() != 0) {
    return InvalidArgumentError(StrCat("plan codec: ", cursor.remaining(),
                                       " trailing bytes after plan"));
  }
  return plan;
}

}  // namespace lcp
