#ifndef LCP_PLAN_SERIALIZE_H_
#define LCP_PLAN_SERIALIZE_H_

#include <string>
#include <string_view>

#include "lcp/base/result.h"
#include "lcp/plan/plan.h"

namespace lcp {

/// Versioned binary codec for Plan — the persistence format behind the plan
/// cache's crash-safe snapshots (DESIGN.md §12). The encoding is
/// deterministic and round-trip exact: DecodePlan(EncodePlan(p)) == p
/// field-for-field (including binding-list order), so snapshot equivalence
/// can be asserted with Plan's operator==.
///
/// Layout (all integers little-endian, lengths u32-prefixed):
///   u8  version (kPlanCodecVersion)
///   u32 command count, then per command a u8 kind tag (access/query) and
///       the command's fields; RA expressions are a pre-order tree walk with
///       a u8 op tag per node.
///
/// The decoder is defensive, never trusting the input: every read is
/// bounds-checked, lengths are validated against the remaining bytes,
/// expression nesting is depth-capped, and any violation returns
/// kInvalidArgument — corrupt input can never crash or over-allocate. It
/// does *not* re-validate plan semantics against a schema; snapshot loading
/// runs ValidatePlan separately against the live schema.
inline constexpr uint8_t kPlanCodecVersion = 1;

/// Appends the encoding of `plan` to `out`.
void EncodePlan(const Plan& plan, std::string& out);

/// Decodes one plan from exactly `data` (trailing bytes are an error, so
/// framing bugs surface instead of silently truncating).
Result<Plan> DecodePlan(std::string_view data);

}  // namespace lcp

#endif  // LCP_PLAN_SERIALIZE_H_
