#ifndef LCP_PLAN_PLAN_H_
#define LCP_PLAN_PLAN_H_

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "lcp/logic/ids.h"
#include "lcp/logic/value.h"
#include "lcp/ra/expr.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// An access command T ← mt ← E (§2): evaluate the input expression E over
/// the temporary tables, feed each resulting tuple into access method `mt`,
/// and collect the returned source tuples into `output_table`.
struct AccessCommand {
  AccessMethodId method = kInvalidAccessMethod;

  /// Input expression; null for an input-free access (the paper's ∅
  /// convention) or when every input is supplied by `constant_inputs`.
  RaExprPtr input;
  /// b_in: pairs (input attribute of E, input position of mt).
  std::vector<std::pair<std::string, int>> input_binding;
  /// Input positions bound to schema constants rather than columns of E.
  std::vector<std::pair<int, Value>> constant_inputs;

  std::string output_table;
  /// b_out: output columns, each (attribute name, position of R it copies).
  /// A position may feed several attributes (duplication).
  std::vector<std::pair<std::string, int>> output_columns;
  /// Selections applied to returned tuples before the output mapping:
  /// position = position and position = constant (these arise from repeated
  /// chase constants / schema constants in exposed facts, §4).
  std::vector<std::pair<int, int>> position_equalities;
  std::vector<std::pair<int, Value>> position_constants;
};

/// A middleware query command T := E (§2).
struct QueryCommand {
  std::string output_table;
  RaExprPtr expr;
};

using Command = std::variant<AccessCommand, QueryCommand>;

/// Plan language classification (§2): SPJ ⊂ USPJ ⊂ USPJ¬ ⊂ RA.
enum class PlanLanguage { kSpj, kUspj, kUspjNeg, kRa };

const char* PlanLanguageName(PlanLanguage lang);

/// An RA-plan (§2): a sequence of access and middleware query commands with
/// a distinguished output table, whose listed attributes correspond
/// position-wise to the query's free variables.
struct Plan {
  std::vector<Command> commands;
  std::string output_table;
  std::vector<std::string> output_attrs;

  int NumAccessCommands() const;

  /// The most restrictive language the plan's expressions fall into.
  PlanLanguage Language() const;

  /// Human-readable listing, one command per line.
  std::string ToString(const Schema& schema) const;
};

/// Structural plan equality: same command sequence (each command compared by
/// its canonical structural key, so semantically-equal permutations of
/// binding lists and position filters compare equal), same per-command
/// output tables, and the same plan output table and attribute list. Two
/// equal plans evaluate identically over any source. This is what the
/// serialization round-trip and snapshot-equivalence tests assert, instead
/// of comparing ToString dumps.
bool operator==(const Plan& a, const Plan& b);
inline bool operator!=(const Plan& a, const Plan& b) { return !(a == b); }

/// A 64-bit digest of the structural form compared by operator==: equal
/// plans hash equal. Suitable for dedup tables and cheap inequality checks.
uint64_t PlanStructuralHash(const Plan& plan);

}  // namespace lcp

#endif  // LCP_PLAN_PLAN_H_
