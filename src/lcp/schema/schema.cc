#include "lcp/schema/schema.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>
#include <unordered_set>

#include "lcp/base/check.h"
#include "lcp/base/strings.h"

namespace lcp {

Result<RelationId> Schema::AddRelation(std::string name, int arity) {
  if (arity < 0) {
    return InvalidArgumentError(
        StrCat("relation ", name, " has negative arity"));
  }
  if (relation_by_name_.count(name) > 0) {
    return AlreadyExistsError(StrCat("relation ", name, " already exists"));
  }
  RelationId id = static_cast<RelationId>(relations_.size());
  relation_by_name_[name] = id;
  relations_.push_back(Relation{id, std::move(name), arity});
  methods_on_relation_.emplace_back();
  return id;
}

Result<AccessMethodId> Schema::AddAccessMethod(std::string name,
                                               RelationId relation,
                                               std::vector<int> input_positions,
                                               double cost) {
  if (relation < 0 || relation >= num_relations()) {
    return NotFoundError(StrCat("unknown relation id ", relation));
  }
  if (method_by_name_.count(name) > 0) {
    return AlreadyExistsError(StrCat("access method ", name,
                                     " already exists"));
  }
  if (cost <= 0) {
    return InvalidArgumentError(
        StrCat("access method ", name, " must have positive cost"));
  }
  std::sort(input_positions.begin(), input_positions.end());
  const int arity = relations_[relation].arity;
  for (size_t i = 0; i < input_positions.size(); ++i) {
    if (input_positions[i] < 0 || input_positions[i] >= arity) {
      return InvalidArgumentError(StrCat("access method ", name,
                                         ": input position ",
                                         input_positions[i],
                                         " out of range for arity ", arity));
    }
    if (i > 0 && input_positions[i] == input_positions[i - 1]) {
      return InvalidArgumentError(StrCat("access method ", name,
                                         ": duplicate input position ",
                                         input_positions[i]));
    }
  }
  AccessMethodId id = static_cast<AccessMethodId>(access_methods_.size());
  method_by_name_[name] = id;
  access_methods_.push_back(
      AccessMethod{id, std::move(name), relation, std::move(input_positions),
                   cost});
  methods_on_relation_[relation].push_back(id);
  return id;
}

void Schema::AddConstant(Value value) {
  if (!IsSchemaConstant(value)) constants_.push_back(std::move(value));
}

Status Schema::AddConstraint(Tgd tgd) {
  LCP_RETURN_IF_ERROR(ValidateTgd(tgd));
  if (tgd.name.empty()) {
    tgd.name = StrCat("tgd", constraints_.size());
  }
  constraints_.push_back(std::move(tgd));
  return Status::Ok();
}

const Relation& Schema::relation(RelationId id) const {
  LCP_CHECK(id >= 0 && id < num_relations()) << "bad relation id " << id;
  return relations_[id];
}

Result<RelationId> Schema::RelationByName(const std::string& name) const {
  auto it = relation_by_name_.find(name);
  if (it == relation_by_name_.end()) {
    return NotFoundError(StrCat("no relation named ", name));
  }
  return it->second;
}

const AccessMethod& Schema::access_method(AccessMethodId id) const {
  LCP_CHECK(id >= 0 && id < num_access_methods()) << "bad method id " << id;
  return access_methods_[id];
}

Result<AccessMethodId> Schema::AccessMethodByName(
    const std::string& name) const {
  auto it = method_by_name_.find(name);
  if (it == method_by_name_.end()) {
    return NotFoundError(StrCat("no access method named ", name));
  }
  return it->second;
}

const std::vector<AccessMethodId>& Schema::MethodsOnRelation(
    RelationId relation) const {
  LCP_CHECK(relation >= 0 && relation < num_relations());
  return methods_on_relation_[relation];
}

bool Schema::IsSchemaConstant(const Value& v) const {
  for (const Value& c : constants_) {
    if (c == v) return true;
  }
  return false;
}

bool Schema::AllConstraintsGuarded() const {
  for (const Tgd& tgd : constraints_) {
    if (!tgd.IsGuarded()) return false;
  }
  return true;
}

Status Schema::ValidateAtom(const Atom& atom) const {
  if (atom.relation < 0 || atom.relation >= num_relations()) {
    return NotFoundError(
        StrCat("atom uses unknown relation id ", atom.relation));
  }
  const Relation& rel = relations_[atom.relation];
  if (static_cast<int>(atom.terms.size()) != rel.arity) {
    return InvalidArgumentError(StrCat("atom over ", rel.name, " has ",
                                       atom.terms.size(),
                                       " terms, expected ", rel.arity));
  }
  return Status::Ok();
}

Status Schema::ValidateQuery(const ConjunctiveQuery& query) const {
  LCP_RETURN_IF_ERROR(query.Validate());
  for (const Atom& atom : query.atoms) {
    LCP_RETURN_IF_ERROR(ValidateAtom(atom));
  }
  return Status::Ok();
}

Status Schema::ValidateTgd(const Tgd& tgd) const {
  LCP_RETURN_IF_ERROR(tgd.Validate());
  for (const Atom& atom : tgd.body) LCP_RETURN_IF_ERROR(ValidateAtom(atom));
  for (const Atom& atom : tgd.head) LCP_RETURN_IF_ERROR(ValidateAtom(atom));
  return Status::Ok();
}

namespace {

void SkipSpace(const std::string& text, size_t& pos) {
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                  text[pos]))) {
    ++pos;
  }
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<Atom> Schema::ParseAtom(const std::string& text) const {
  size_t pos = 0;
  SkipSpace(text, pos);
  size_t name_start = pos;
  while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
  if (pos == name_start) {
    return InvalidArgumentError(StrCat("cannot parse atom: ", text));
  }
  std::string rel_name = text.substr(name_start, pos - name_start);
  LCP_ASSIGN_OR_RETURN(RelationId rel, RelationByName(rel_name));
  SkipSpace(text, pos);
  if (pos >= text.size() || text[pos] != '(') {
    return InvalidArgumentError(StrCat("expected '(' in atom: ", text));
  }
  ++pos;
  std::vector<Term> terms;
  SkipSpace(text, pos);
  if (pos < text.size() && text[pos] == ')') {
    ++pos;
  } else {
    while (true) {
      SkipSpace(text, pos);
      if (pos >= text.size()) {
        return InvalidArgumentError(StrCat("unterminated atom: ", text));
      }
      if (text[pos] == '"') {
        size_t end = text.find('"', pos + 1);
        if (end == std::string::npos) {
          return InvalidArgumentError(StrCat("unterminated string in: ", text));
        }
        terms.push_back(Term::Const(Value::Str(
            text.substr(pos + 1, end - pos - 1))));
        pos = end + 1;
      } else if (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                 text[pos] == '-') {
        size_t start = pos;
        if (text[pos] == '-') ++pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos]))) {
          ++pos;
        }
        terms.push_back(Term::Const(
            Value::Int(std::stoll(text.substr(start, pos - start)))));
      } else if (IsIdentChar(text[pos])) {
        size_t start = pos;
        while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
        terms.push_back(Term::Var(text.substr(start, pos - start)));
      } else {
        return InvalidArgumentError(
            StrCat("unexpected character '", text[pos], "' in atom: ", text));
      }
      SkipSpace(text, pos);
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ')') {
        ++pos;
        break;
      }
      return InvalidArgumentError(StrCat("expected ',' or ')' in: ", text));
    }
  }
  Atom atom(rel, std::move(terms));
  LCP_RETURN_IF_ERROR(ValidateAtom(atom));
  return atom;
}

std::string Schema::AtomToString(const Atom& atom) const {
  std::ostringstream os;
  if (atom.relation >= 0 && atom.relation < num_relations()) {
    os << relations_[atom.relation].name;
  } else {
    os << "R?" << atom.relation;
  }
  os << "(";
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) os << ", ";
    os << atom.terms[i];
  }
  os << ")";
  return os.str();
}

std::string Schema::TgdToString(const Tgd& tgd) const {
  std::vector<std::string> body, head;
  for (const Atom& a : tgd.body) body.push_back(AtomToString(a));
  for (const Atom& a : tgd.head) head.push_back(AtomToString(a));
  return StrCat(StrJoin(body, " & "), " -> ", StrJoin(head, " & "));
}

std::string Schema::QueryToString(const ConjunctiveQuery& query) const {
  std::vector<std::string> atoms;
  for (const Atom& a : query.atoms) atoms.push_back(AtomToString(a));
  return StrCat(query.name, "(", StrJoin(query.free_variables, ", "),
                ") :- ", StrJoin(atoms, ", "));
}

namespace {

// splitmix64 finalizer: the per-field mixer of the fingerprint.
uint64_t FingerprintMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-sensitive accumulator: h' = mix(h * prime + field). Field order is
// part of the fingerprint, so "R then S" differs from "S then R" (relation
// ids are positional, so that order matters semantically too).
void FingerprintAdd(uint64_t& h, uint64_t field) {
  h = FingerprintMix(h * 0x100000001b3ULL + field);
}

uint64_t FingerprintString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return FingerprintMix(h);
}

uint64_t FingerprintValue(const Value& v) {
  return v.is_int() ? FingerprintMix(static_cast<uint64_t>(v.AsInt()) ^
                                     0x5bf03635aef6a2d1ULL)
                    : FingerprintString(v.AsString());
}

void FingerprintAtom(uint64_t& h, const Atom& atom) {
  FingerprintAdd(h, static_cast<uint64_t>(static_cast<uint32_t>(atom.relation)));
  FingerprintAdd(h, atom.terms.size());
  for (const Term& t : atom.terms) {
    if (t.is_variable()) {
      FingerprintAdd(h, 0x1);
      FingerprintAdd(h, FingerprintString(t.var()));
    } else {
      FingerprintAdd(h, 0x2);
      FingerprintAdd(h, FingerprintValue(t.constant()));
    }
  }
}

}  // namespace

uint64_t SchemaFingerprint(const Schema& schema) {
  uint64_t h = 0x6c63705f65706f63ULL;  // "lcp_epoc"
  FingerprintAdd(h, schema.num_relations());
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const Relation& rel = schema.relation(r);
    FingerprintAdd(h, FingerprintString(rel.name));
    FingerprintAdd(h, static_cast<uint64_t>(rel.arity));
  }
  FingerprintAdd(h, schema.num_access_methods());
  for (AccessMethodId m = 0; m < schema.num_access_methods(); ++m) {
    const AccessMethod& method = schema.access_method(m);
    FingerprintAdd(h, FingerprintString(method.name));
    FingerprintAdd(h,
                   static_cast<uint64_t>(static_cast<uint32_t>(method.relation)));
    FingerprintAdd(h, method.input_positions.size());
    for (int pos : method.input_positions) {
      FingerprintAdd(h, static_cast<uint64_t>(pos));
    }
    uint64_t cost_bits;
    static_assert(sizeof(cost_bits) == sizeof(method.cost));
    std::memcpy(&cost_bits, &method.cost, sizeof(cost_bits));
    FingerprintAdd(h, cost_bits);
  }
  FingerprintAdd(h, schema.constants().size());
  for (const Value& c : schema.constants()) {
    FingerprintAdd(h, FingerprintValue(c));
  }
  FingerprintAdd(h, schema.constraints().size());
  for (const Tgd& tgd : schema.constraints()) {
    FingerprintAdd(h, FingerprintString(tgd.name));
    FingerprintAdd(h, tgd.body.size());
    for (const Atom& a : tgd.body) FingerprintAtom(h, a);
    FingerprintAdd(h, tgd.head.size());
    for (const Atom& a : tgd.head) FingerprintAtom(h, a);
  }
  return h;
}

}  // namespace lcp
