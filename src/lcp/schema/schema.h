#ifndef LCP_SCHEMA_SCHEMA_H_
#define LCP_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lcp/base/result.h"
#include "lcp/base/status.h"
#include "lcp/logic/atom.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/logic/ids.h"
#include "lcp/logic/tgd.h"
#include "lcp/logic/value.h"

namespace lcp {

/// A relation of the schema: a name and an arity. Positions are 0-based.
struct Relation {
  RelationId id = kInvalidRelation;
  std::string name;
  int arity = 0;
};

/// An access method on a relation: the positions that must be bound on
/// input (the "mandatory fields of the web form", §2) and a per-invocation
/// cost used by simple cost functions (§2, "Cost").
struct AccessMethod {
  AccessMethodId id = kInvalidAccessMethod;
  std::string name;
  RelationId relation = kInvalidRelation;
  /// Sorted, distinct 0-based input positions. Empty means free access.
  std::vector<int> input_positions;
  /// Positive cost charged per access command using this method.
  double cost = 1.0;

  bool is_free_access() const { return input_positions.empty(); }
};

/// A querying scenario (§2): relations, schema constants, access methods,
/// and TGD integrity constraints. Arbitrary first-order constraints are
/// handled separately by the `interp` subsystem; the chase-based planner
/// works on this TGD-based schema.
class Schema {
 public:
  Schema() = default;

  // --- construction -------------------------------------------------------

  /// Adds a relation; fails on duplicate name or negative arity.
  Result<RelationId> AddRelation(std::string name, int arity);

  /// Adds an access method on `relation`; fails if the relation is unknown,
  /// positions are out of range or duplicated, the cost is non-positive, or
  /// the method name is taken.
  Result<AccessMethodId> AddAccessMethod(std::string name, RelationId relation,
                                         std::vector<int> input_positions,
                                         double cost = 1.0);

  /// Registers `value` as a schema constant (idempotent).
  void AddConstant(Value value);

  /// Adds a TGD integrity constraint; fails if it mentions unknown relations
  /// or has arity mismatches.
  Status AddConstraint(Tgd tgd);

  // --- lookup -------------------------------------------------------------

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const Relation& relation(RelationId id) const;
  Result<RelationId> RelationByName(const std::string& name) const;

  int num_access_methods() const {
    return static_cast<int>(access_methods_.size());
  }
  const AccessMethod& access_method(AccessMethodId id) const;
  Result<AccessMethodId> AccessMethodByName(const std::string& name) const;
  /// Ids of all methods declared on `relation`, in declaration order.
  const std::vector<AccessMethodId>& MethodsOnRelation(RelationId relation)
      const;

  const std::vector<Tgd>& constraints() const { return constraints_; }
  const std::vector<Value>& constants() const { return constants_; }
  bool IsSchemaConstant(const Value& v) const;

  /// True if every constraint is a guarded TGD.
  bool AllConstraintsGuarded() const;

  // --- validation & convenience -------------------------------------------

  /// Checks that an atom/query/TGD is well-formed over this schema (known
  /// relations, matching arities).
  Status ValidateAtom(const Atom& atom) const;
  Status ValidateQuery(const ConjunctiveQuery& query) const;
  Status ValidateTgd(const Tgd& tgd) const;

  /// Parses "R(x, y, \"smith\", 3)" into an Atom: bare identifiers become
  /// variables, quoted strings and integers become constants.
  Result<Atom> ParseAtom(const std::string& text) const;

  std::string AtomToString(const Atom& atom) const;
  std::string TgdToString(const Tgd& tgd) const;
  std::string QueryToString(const ConjunctiveQuery& query) const;

 private:
  std::vector<Relation> relations_;
  std::unordered_map<std::string, RelationId> relation_by_name_;
  std::vector<AccessMethod> access_methods_;
  std::unordered_map<std::string, AccessMethodId> method_by_name_;
  std::vector<std::vector<AccessMethodId>> methods_on_relation_;
  std::vector<Tgd> constraints_;
  std::vector<Value> constants_;
};

/// A 64-bit structural fingerprint of a schema: relations (name, arity),
/// access methods (name, relation, input positions, cost), schema constants,
/// and TGD constraints (names, atom structure, variable identities). Any
/// edit — adding a relation or method, changing a cost or an input position,
/// adding or rewording a constraint — changes the fingerprint (w.h.p.).
/// Deterministic across processes; used as the plan-cache epoch key (see
/// src/lcp/service).
uint64_t SchemaFingerprint(const Schema& schema);

}  // namespace lcp

#endif  // LCP_SCHEMA_SCHEMA_H_
