#ifndef LCP_SCHEMA_PARSER_H_
#define LCP_SCHEMA_PARSER_H_

#include <string>

#include "lcp/base/result.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/logic/tgd.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// Parses a TGD of the form "A(x,y) & B(y) -> C(x,z)" over `schema`.
/// Variables in the head that do not occur in the body are existential.
Result<Tgd> ParseTgd(const Schema& schema, const std::string& text);

/// Parses a conjunctive query of the form "Q(x, y) :- A(x, z), B(z, y)".
/// The head lists the free (answer) variables; "Q() :- ..." is boolean.
Result<ConjunctiveQuery> ParseQuery(const Schema& schema,
                                    const std::string& text);

}  // namespace lcp

#endif  // LCP_SCHEMA_PARSER_H_
