#include "lcp/schema/parser.h"

#include <cctype>
#include <vector>

#include "lcp/base/strings.h"

namespace lcp {

namespace {

std::string Strip(const std::string& s) {
  size_t begin = 0, end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

/// Splits a conjunction on a separator occurring at paren depth 0.
std::vector<std::string> SplitConjunction(const std::string& text,
                                          char separator) {
  std::vector<std::string> parts;
  int depth = 0;
  bool in_string = false;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == separator && depth == 0) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  parts.push_back(text.substr(start));
  return parts;
}

Result<std::vector<Atom>> ParseConjunction(const Schema& schema,
                                           const std::string& text,
                                           char separator) {
  std::vector<Atom> atoms;
  for (const std::string& piece : SplitConjunction(text, separator)) {
    std::string trimmed = Strip(piece);
    if (trimmed.empty()) {
      return InvalidArgumentError(StrCat("empty conjunct in: ", text));
    }
    LCP_ASSIGN_OR_RETURN(Atom atom, schema.ParseAtom(trimmed));
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

}  // namespace

Result<Tgd> ParseTgd(const Schema& schema, const std::string& text) {
  size_t arrow = text.find("->");
  if (arrow == std::string::npos) {
    return InvalidArgumentError(StrCat("TGD missing '->': ", text));
  }
  Tgd tgd;
  LCP_ASSIGN_OR_RETURN(tgd.body,
                       ParseConjunction(schema, text.substr(0, arrow), '&'));
  LCP_ASSIGN_OR_RETURN(tgd.head,
                       ParseConjunction(schema, text.substr(arrow + 2), '&'));
  LCP_RETURN_IF_ERROR(schema.ValidateTgd(tgd));
  return tgd;
}

Result<ConjunctiveQuery> ParseQuery(const Schema& schema,
                                    const std::string& text) {
  size_t sep = text.find(":-");
  if (sep == std::string::npos) {
    return InvalidArgumentError(StrCat("query missing ':-': ", text));
  }
  std::string head = Strip(text.substr(0, sep));
  size_t open = head.find('(');
  size_t close = head.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return InvalidArgumentError(StrCat("malformed query head: ", head));
  }
  ConjunctiveQuery query;
  query.name = Strip(head.substr(0, open));
  std::string args = Strip(head.substr(open + 1, close - open - 1));
  if (!args.empty()) {
    for (const std::string& piece : SplitConjunction(args, ',')) {
      query.free_variables.push_back(Strip(piece));
    }
  }
  LCP_ASSIGN_OR_RETURN(query.atoms,
                       ParseConjunction(schema, text.substr(sep + 2), ','));
  LCP_RETURN_IF_ERROR(schema.ValidateQuery(query));
  return query;
}

}  // namespace lcp
