#ifndef LCP_ACCESSIBLE_ACCESSIBLE_SCHEMA_H_
#define LCP_ACCESSIBLE_ACCESSIBLE_SCHEMA_H_

#include <vector>

#include "lcp/base/result.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/logic/tgd.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// Which axiom system to generate (§3 of the paper).
enum class AccessibleVariant {
  /// AcSch(S0): characterizes USPJ-plans (Theorem 1); the system used by the
  /// SPJ proof-to-plan algorithm of §4 and by Algorithm 1 (§5).
  kStandard,
  /// AcSch¬(S0): adds negative accessibility axioms; characterizes
  /// USPJ¬-plans (Theorem 3).
  kNegative,
  /// AcSch↔(S0): adds the bidirectional axioms; characterizes RA-plans
  /// (Theorem 2).
  kBidirectional,
};

/// The role a relation of the accessible schema plays.
enum class AccessibleRelationKind {
  kBase,        ///< A relation of the original schema S0.
  kAccessed,    ///< AccessedR — facts explicitly retrieved via accesses.
  kInferred,    ///< InferredAccR — facts derivable from accessed facts.
  kAccessible,  ///< The unary relation accessible(x).
};

/// The Accessible Schema AcSch(S0) (§3): the original relations plus, for
/// each R, AccessedR and InferredAccR, plus the unary relation accessible,
/// together with the axioms that tie them together. Base relations keep
/// their ids from S0, so atoms over S0 remain valid over the accessible
/// schema.
///
/// The accessibility axioms themselves are exposed both structurally (the
/// planner's Algorithm 1 fires them as explicit "exposures") and as plain
/// TGD lists (used by the saturation baseline and the interpolation tests).
class AccessibleSchema {
 public:
  /// Builds the accessible schema for `base`, which must outlive the result.
  static Result<AccessibleSchema> Build(const Schema& base,
                                        AccessibleVariant variant);

  const Schema& schema() const { return schema_; }
  const Schema& base() const { return *base_; }
  AccessibleVariant variant() const { return variant_; }

  RelationId accessible_relation() const { return accessible_rel_; }
  RelationId AccessedOf(RelationId base_rel) const {
    return accessed_of_[base_rel];
  }
  RelationId InferredOf(RelationId base_rel) const {
    return inferred_of_[base_rel];
  }
  /// Returns the base relation a relation of the accessible schema copies,
  /// or kInvalidRelation for the `accessible` relation itself.
  RelationId BaseOf(RelationId rel) const { return base_of_[rel]; }
  AccessibleRelationKind KindOf(RelationId rel) const {
    return kind_of_[rel];
  }

  /// The original integrity constraints of S0 (over base relations).
  const std::vector<Tgd>& original_constraints() const {
    return original_constraints_;
  }
  /// Copies of the original constraints over the InferredAccR relations.
  const std::vector<Tgd>& inferred_constraints() const {
    return inferred_constraints_;
  }
  /// Defining axioms AccessedR(x⃗) → accessible(x_i), one per position.
  const std::vector<Tgd>& defining_axioms() const { return defining_axioms_; }
  /// Accessibility axioms, one per access method:
  ///   accessible(x_{j1}) ∧ ... ∧ R(x⃗) → AccessedR(x⃗)
  /// combined with AccessedR(x⃗) → InferredAccR(x⃗).
  const std::vector<Tgd>& accessibility_axioms() const {
    return accessibility_axioms_;
  }
  /// For kNegative: InferredAccR(x⃗) ∧ accessible(x_1) ∧ ... ∧
  /// accessible(x_n) → AccessedR(x⃗) ∧ R(x⃗)  (contrapositive form of the
  /// paper's negative accessibility axioms; only for R with some method).
  const std::vector<Tgd>& negative_axioms() const { return negative_axioms_; }
  /// For kBidirectional: InferredAccR(x⃗) ∧ accessible(inputs of mt) →
  /// AccessedR(x⃗) ∧ R(x⃗), one per method mt.
  const std::vector<Tgd>& bidirectional_axioms() const {
    return bidirectional_axioms_;
  }

  /// All axioms as one TGD list (used by the saturation baseline).
  std::vector<Tgd> AllAxioms() const;

  /// InferredAccQ (§3): each relation replaced by its InferredAcc copy, plus
  /// an accessible(x) atom for every free variable.
  ConjunctiveQuery InferredAccQuery(const ConjunctiveQuery& query) const;

 private:
  AccessibleSchema() = default;

  Schema schema_;
  const Schema* base_ = nullptr;
  AccessibleVariant variant_ = AccessibleVariant::kStandard;
  RelationId accessible_rel_ = kInvalidRelation;
  std::vector<RelationId> accessed_of_;
  std::vector<RelationId> inferred_of_;
  std::vector<RelationId> base_of_;
  std::vector<AccessibleRelationKind> kind_of_;
  std::vector<Tgd> original_constraints_;
  std::vector<Tgd> inferred_constraints_;
  std::vector<Tgd> defining_axioms_;
  std::vector<Tgd> accessibility_axioms_;
  std::vector<Tgd> negative_axioms_;
  std::vector<Tgd> bidirectional_axioms_;
};

}  // namespace lcp

#endif  // LCP_ACCESSIBLE_ACCESSIBLE_SCHEMA_H_
