#include "lcp/accessible/accessible_schema.h"

#include <string>

#include "lcp/base/check.h"
#include "lcp/base/strings.h"

namespace lcp {

namespace {

/// Fresh variables x0..x{n-1} for a relation of arity n.
std::vector<Term> FreshVars(int arity) {
  std::vector<Term> vars;
  vars.reserve(arity);
  for (int i = 0; i < arity; ++i) {
    vars.push_back(Term::Var(StrCat("x", i)));
  }
  return vars;
}

/// Rewrites an atom over base relations to the given relation map.
Atom MapAtom(const Atom& atom, const std::vector<RelationId>& rel_map) {
  Atom mapped = atom;
  mapped.relation = rel_map[atom.relation];
  return mapped;
}

Tgd MapTgd(const Tgd& tgd, const std::vector<RelationId>& rel_map,
           const std::string& name_suffix) {
  Tgd mapped;
  mapped.name = tgd.name + name_suffix;
  for (const Atom& a : tgd.body) mapped.body.push_back(MapAtom(a, rel_map));
  for (const Atom& a : tgd.head) mapped.head.push_back(MapAtom(a, rel_map));
  return mapped;
}

}  // namespace

Result<AccessibleSchema> AccessibleSchema::Build(const Schema& base,
                                                 AccessibleVariant variant) {
  AccessibleSchema acc;
  acc.base_ = &base;
  acc.variant_ = variant;

  const int n = base.num_relations();
  acc.accessed_of_.resize(n);
  acc.inferred_of_.resize(n);

  // Base relations first, preserving ids.
  for (RelationId r = 0; r < n; ++r) {
    const Relation& rel = base.relation(r);
    LCP_ASSIGN_OR_RETURN(RelationId id,
                         acc.schema_.AddRelation(rel.name, rel.arity));
    LCP_CHECK_EQ(id, r);
    acc.base_of_.push_back(r);
    acc.kind_of_.push_back(AccessibleRelationKind::kBase);
  }
  // Accessed and InferredAcc copies.
  for (RelationId r = 0; r < n; ++r) {
    const Relation& rel = base.relation(r);
    LCP_ASSIGN_OR_RETURN(
        acc.accessed_of_[r],
        acc.schema_.AddRelation(StrCat("Accessed", rel.name), rel.arity));
    acc.base_of_.push_back(r);
    acc.kind_of_.push_back(AccessibleRelationKind::kAccessed);
  }
  for (RelationId r = 0; r < n; ++r) {
    const Relation& rel = base.relation(r);
    LCP_ASSIGN_OR_RETURN(
        acc.inferred_of_[r],
        acc.schema_.AddRelation(StrCat("InferredAcc", rel.name), rel.arity));
    acc.base_of_.push_back(r);
    acc.kind_of_.push_back(AccessibleRelationKind::kInferred);
  }
  LCP_ASSIGN_OR_RETURN(acc.accessible_rel_,
                       acc.schema_.AddRelation("accessible", 1));
  acc.base_of_.push_back(kInvalidRelation);
  acc.kind_of_.push_back(AccessibleRelationKind::kAccessible);

  for (const Value& c : base.constants()) acc.schema_.AddConstant(c);

  // Original constraints (already over base ids, which are preserved).
  acc.original_constraints_ = base.constraints();

  // Inferred-accessible copies of the original constraints.
  for (const Tgd& tgd : base.constraints()) {
    acc.inferred_constraints_.push_back(
        MapTgd(tgd, acc.inferred_of_, "_inf"));
  }

  // Defining axioms: AccessedR(x⃗) → accessible(x_i).
  for (RelationId r = 0; r < n; ++r) {
    const Relation& rel = base.relation(r);
    for (int i = 0; i < rel.arity; ++i) {
      Tgd axiom;
      axiom.name = StrCat("def_", rel.name, "_", i);
      axiom.body.push_back(Atom(acc.accessed_of_[r], FreshVars(rel.arity)));
      axiom.head.push_back(
          Atom(acc.accessible_rel_, {Term::Var(StrCat("x", i))}));
      acc.defining_axioms_.push_back(std::move(axiom));
    }
  }

  // Accessibility axioms, one per method, fused with AccessedR → InferredAccR.
  for (AccessMethodId m = 0; m < base.num_access_methods(); ++m) {
    const AccessMethod& method = base.access_method(m);
    const Relation& rel = base.relation(method.relation);
    Tgd axiom;
    axiom.name = StrCat("access_", method.name);
    for (int pos : method.input_positions) {
      axiom.body.push_back(
          Atom(acc.accessible_rel_, {Term::Var(StrCat("x", pos))}));
    }
    axiom.body.push_back(Atom(method.relation, FreshVars(rel.arity)));
    axiom.head.push_back(
        Atom(acc.accessed_of_[method.relation], FreshVars(rel.arity)));
    axiom.head.push_back(
        Atom(acc.inferred_of_[method.relation], FreshVars(rel.arity)));
    acc.accessibility_axioms_.push_back(std::move(axiom));
  }

  if (variant == AccessibleVariant::kNegative) {
    // InferredAccR(x⃗) ∧ accessible(x_1..x_n) → AccessedR(x⃗) ∧ R(x⃗),
    // for relations R with at least one method (contrapositive of the
    // paper's negative accessibility axioms, in chase-friendly form).
    for (RelationId r = 0; r < n; ++r) {
      if (base.MethodsOnRelation(r).empty()) continue;
      const Relation& rel = base.relation(r);
      Tgd axiom;
      axiom.name = StrCat("negacc_", rel.name);
      axiom.body.push_back(Atom(acc.inferred_of_[r], FreshVars(rel.arity)));
      for (int i = 0; i < rel.arity; ++i) {
        axiom.body.push_back(
            Atom(acc.accessible_rel_, {Term::Var(StrCat("x", i))}));
      }
      axiom.head.push_back(Atom(acc.accessed_of_[r], FreshVars(rel.arity)));
      axiom.head.push_back(Atom(r, FreshVars(rel.arity)));
      acc.negative_axioms_.push_back(std::move(axiom));
    }
  }

  if (variant == AccessibleVariant::kBidirectional) {
    // InferredAccR(x⃗) ∧ accessible(inputs of mt) → AccessedR(x⃗) ∧ R(x⃗),
    // one per method (fused with AccessedR → R).
    for (AccessMethodId m = 0; m < base.num_access_methods(); ++m) {
      const AccessMethod& method = base.access_method(m);
      const Relation& rel = base.relation(method.relation);
      Tgd axiom;
      axiom.name = StrCat("biacc_", method.name);
      axiom.body.push_back(
          Atom(acc.inferred_of_[method.relation], FreshVars(rel.arity)));
      for (int pos : method.input_positions) {
        axiom.body.push_back(
            Atom(acc.accessible_rel_, {Term::Var(StrCat("x", pos))}));
      }
      axiom.head.push_back(
          Atom(acc.accessed_of_[method.relation], FreshVars(rel.arity)));
      axiom.head.push_back(Atom(method.relation, FreshVars(rel.arity)));
      acc.bidirectional_axioms_.push_back(std::move(axiom));
    }
  }

  // Register everything with the schema's own constraint list so that
  // generic tools (validation, printing) see a coherent schema.
  for (const Tgd& tgd : acc.original_constraints_) {
    LCP_RETURN_IF_ERROR(acc.schema_.AddConstraint(tgd));
  }
  for (const Tgd& tgd : acc.inferred_constraints_) {
    LCP_RETURN_IF_ERROR(acc.schema_.AddConstraint(tgd));
  }
  return acc;
}

std::vector<Tgd> AccessibleSchema::AllAxioms() const {
  std::vector<Tgd> all = original_constraints_;
  all.insert(all.end(), inferred_constraints_.begin(),
             inferred_constraints_.end());
  all.insert(all.end(), defining_axioms_.begin(), defining_axioms_.end());
  all.insert(all.end(), accessibility_axioms_.begin(),
             accessibility_axioms_.end());
  all.insert(all.end(), negative_axioms_.begin(), negative_axioms_.end());
  all.insert(all.end(), bidirectional_axioms_.begin(),
             bidirectional_axioms_.end());
  return all;
}

ConjunctiveQuery AccessibleSchema::InferredAccQuery(
    const ConjunctiveQuery& query) const {
  ConjunctiveQuery mapped;
  mapped.name = StrCat("InferredAcc", query.name);
  mapped.free_variables = query.free_variables;
  for (const Atom& atom : query.atoms) {
    mapped.atoms.push_back(MapAtom(atom, inferred_of_));
  }
  for (const std::string& v : query.free_variables) {
    mapped.atoms.push_back(Atom(accessible_rel_, {Term::Var(v)}));
  }
  return mapped;
}

}  // namespace lcp
