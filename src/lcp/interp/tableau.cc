#include "lcp/interp/tableau.h"

#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "lcp/base/check.h"
#include "lcp/base/strings.h"

namespace lcp {

FormulaPtr ToNnf(const FormulaPtr& formula, bool negate) {
  switch (formula->kind()) {
    case Formula::Kind::kTrue:
      return negate ? Formula::False() : Formula::True();
    case Formula::Kind::kFalse:
      return negate ? Formula::True() : Formula::False();
    case Formula::Kind::kAtom:
      return negate ? Formula::Not(formula) : formula;
    case Formula::Kind::kNot:
      return ToNnf(formula->parts()[0], !negate);
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<FormulaPtr> parts;
      for (const FormulaPtr& part : formula->parts()) {
        parts.push_back(ToNnf(part, negate));
      }
      bool conjunction = (formula->kind() == Formula::Kind::kAnd) != negate;
      return conjunction ? Formula::And(std::move(parts))
                         : Formula::Or(std::move(parts));
    }
    case Formula::Kind::kExists:
      return negate ? Formula::Forall(formula->vars(), formula->atom(),
                                      ToNnf(formula->body(), true))
                    : Formula::Exists(formula->vars(), formula->atom(),
                                      ToNnf(formula->body(), false));
    case Formula::Kind::kForall:
      return negate ? Formula::Exists(formula->vars(), formula->atom(),
                                      ToNnf(formula->body(), true))
                    : Formula::Forall(formula->vars(), formula->atom(),
                                      ToNnf(formula->body(), false));
  }
  return formula;
}

FormulaPtr SubstituteFormula(
    const FormulaPtr& formula,
    const std::unordered_map<std::string, Term>& mapping) {
  auto subst_atom = [&](const Atom& atom) {
    Atom out = atom;
    for (Term& t : out.terms) {
      if (t.is_variable()) {
        auto it = mapping.find(t.var());
        if (it != mapping.end()) t = it->second;
      }
    }
    return out;
  };
  switch (formula->kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return formula;
    case Formula::Kind::kAtom:
      return Formula::MakeAtom(subst_atom(formula->atom()));
    case Formula::Kind::kNot:
      return Formula::Not(SubstituteFormula(formula->parts()[0], mapping));
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<FormulaPtr> parts;
      for (const FormulaPtr& part : formula->parts()) {
        parts.push_back(SubstituteFormula(part, mapping));
      }
      return formula->kind() == Formula::Kind::kAnd
                 ? Formula::And(std::move(parts))
                 : Formula::Or(std::move(parts));
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      // Quantified variables shadow the substitution.
      std::unordered_map<std::string, Term> inner = mapping;
      for (const std::string& v : formula->vars()) inner.erase(v);
      FormulaPtr body = SubstituteFormula(formula->body(), inner);
      Atom guard = formula->atom();
      for (Term& t : guard.terms) {
        if (t.is_variable()) {
          auto it = inner.find(t.var());
          if (it != inner.end()) t = it->second;
        }
      }
      return formula->kind() == Formula::Kind::kExists
                 ? Formula::Exists(formula->vars(), std::move(guard),
                                   std::move(body))
                 : Formula::Forall(formula->vars(), std::move(guard),
                                   std::move(body));
    }
  }
  return formula;
}

namespace {

struct SignedFormula {
  FormulaPtr formula;
  bool left;  ///< true: descends from the premise; false: from ¬conclusion.
};

struct GroundLiteral {
  Atom atom;
  bool positive;
  bool left;
};

std::string AtomKey(const Atom& atom) {
  std::ostringstream os;
  os << atom.relation << "(";
  for (const Term& t : atom.terms) os << t.ToString() << ",";
  os << ")";
  return os.str();
}

FormulaPtr LiteralFormula(const GroundLiteral& lit) {
  FormulaPtr atom = Formula::MakeAtom(lit.atom);
  return lit.positive ? atom : Formula::Not(atom);
}

/// Light constant folding so interpolants read cleanly.
FormulaPtr Simplify(const FormulaPtr& formula) {
  if (formula->kind() == Formula::Kind::kAnd ||
      formula->kind() == Formula::Kind::kOr) {
    const bool conj = formula->kind() == Formula::Kind::kAnd;
    std::vector<FormulaPtr> parts;
    for (const FormulaPtr& raw : formula->parts()) {
      FormulaPtr part = Simplify(raw);
      if (part->kind() == Formula::Kind::kTrue) {
        if (conj) continue;
        return Formula::True();
      }
      if (part->kind() == Formula::Kind::kFalse) {
        if (conj) return Formula::False();
        continue;
      }
      parts.push_back(std::move(part));
    }
    return conj ? Formula::And(std::move(parts))
                : Formula::Or(std::move(parts));
  }
  return formula;
}

bool ContainsSkolemConstant(const Formula& formula) {
  for (const Value& v : formula.Constants()) {
    if (v.is_string() && v.AsString().rfind("@sk", 0) == 0) return true;
  }
  return false;
}

class Prover {
 public:
  Prover(const TableauOptions& options) : options_(options) {}

  int steps() const { return steps_; }

  /// Attempts to close the branch described by (todo, literals, universals).
  /// Returns the branch interpolant if closed, nullopt if the branch stays
  /// open (or the step budget runs out).
  Result<std::optional<FormulaPtr>> Refute(
      std::vector<SignedFormula> todo, std::vector<GroundLiteral> literals,
      std::vector<SignedFormula> universals,
      std::set<std::string> instantiated) {
    while (!todo.empty()) {
      if (++steps_ > options_.max_steps) return std::optional<FormulaPtr>();
      SignedFormula sf = todo.back();
      todo.pop_back();
      const Formula& f = *sf.formula;
      switch (f.kind()) {
        case Formula::Kind::kTrue:
          continue;
        case Formula::Kind::kFalse:
          // ⊥ from the premise side alone: interpolant ⊥; from the
          // negated-conclusion side: ⊤.
          return std::optional<FormulaPtr>(sf.left ? Formula::False()
                                                   : Formula::True());
        case Formula::Kind::kAtom:
        case Formula::Kind::kNot: {
          GroundLiteral lit;
          lit.left = sf.left;
          if (f.kind() == Formula::Kind::kAtom) {
            lit.atom = f.atom();
            lit.positive = true;
          } else {
            LCP_CHECK(f.parts()[0]->kind() == Formula::Kind::kAtom)
                << "input not in NNF";
            lit.atom = f.parts()[0]->atom();
            lit.positive = false;
          }
          for (const Term& t : lit.atom.terms) {
            if (t.is_variable()) {
              return InvalidArgumentError(
                  "tableau reached a non-ground literal; inputs must be "
                  "sentences with guard-covered quantified variables");
            }
          }
          // Closure against a complementary literal.
          for (const GroundLiteral& other : literals) {
            if (other.positive != lit.positive && other.atom == lit.atom) {
              FormulaPtr interpolant;
              if (lit.left && other.left) {
                interpolant = Formula::False();
              } else if (!lit.left && !other.left) {
                interpolant = Formula::True();
              } else {
                // Mixed closure: the premise-side literal interpolates.
                interpolant =
                    LiteralFormula(lit.left ? lit : other);
              }
              return std::optional<FormulaPtr>(std::move(interpolant));
            }
          }
          literals.push_back(std::move(lit));
          continue;
        }
        case Formula::Kind::kAnd:
          for (const FormulaPtr& part : f.parts()) {
            todo.push_back(SignedFormula{part, sf.left});
          }
          continue;
        case Formula::Kind::kOr: {
          // β-split: every disjunct must close; interpolants combine with
          // ∨ for a premise-side split and ∧ for a conclusion-side split.
          std::vector<FormulaPtr> interpolants;
          for (const FormulaPtr& part : f.parts()) {
            std::vector<SignedFormula> branch_todo = todo;
            branch_todo.push_back(SignedFormula{part, sf.left});
            LCP_ASSIGN_OR_RETURN(
                std::optional<FormulaPtr> sub,
                Refute(std::move(branch_todo), literals, universals,
                       instantiated));
            if (!sub.has_value()) return std::optional<FormulaPtr>();
            interpolants.push_back(std::move(*sub));
          }
          return std::optional<FormulaPtr>(
              sf.left ? Formula::Or(std::move(interpolants))
                      : Formula::And(std::move(interpolants)));
        }
        case Formula::Kind::kExists: {
          // δ-rule: witness the quantified variables with fresh constants.
          std::unordered_map<std::string, Term> mapping;
          for (const std::string& v : f.vars()) {
            mapping.emplace(
                v, Term::Const(Value::Str(StrCat("@sk", skolem_counter_++))));
          }
          Atom guard = f.atom();
          for (Term& t : guard.terms) {
            if (t.is_variable()) {
              auto it = mapping.find(t.var());
              if (it != mapping.end()) t = it->second;
            }
          }
          todo.push_back(
              SignedFormula{SubstituteFormula(f.body(), mapping), sf.left});
          todo.push_back(
              SignedFormula{Formula::MakeAtom(std::move(guard)), sf.left});
          continue;
        }
        case Formula::Kind::kForall:
          universals.push_back(std::move(sf));
          continue;
      }
    }

    // Saturation point: γ-rule. Instantiate some universal against a
    // positive guard-relation literal on the branch, split G(t⃗) → body(t⃗).
    for (const SignedFormula& u : universals) {
      const Formula& f = *u.formula;
      for (const GroundLiteral& lit : literals) {
        if (!lit.positive || lit.atom.relation != f.atom().relation) continue;
        std::unordered_map<std::string, Term> mapping;
        bool unifies = true;
        for (size_t i = 0; i < f.atom().terms.size() && unifies; ++i) {
          const Term& pattern = f.atom().terms[i];
          const Term& ground = lit.atom.terms[i];
          if (pattern.is_constant()) {
            unifies = (pattern == ground);
          } else {
            auto it = mapping.find(pattern.var());
            if (it == mapping.end()) {
              mapping.emplace(pattern.var(), ground);
            } else {
              unifies = (it->second == ground);
            }
          }
        }
        if (!unifies) continue;
        std::string key =
            StrCat(reinterpret_cast<uintptr_t>(u.formula.get()), "|",
                   AtomKey(lit.atom));
        if (instantiated.count(key) > 0) continue;
        if (++steps_ > options_.max_steps) return std::optional<FormulaPtr>();
        std::set<std::string> child_done = instantiated;
        child_done.insert(key);

        Atom ground_guard = f.atom();
        for (Term& t : ground_guard.terms) {
          if (t.is_variable()) t = mapping.at(t.var());
        }
        // Branch 1: ¬G(t⃗).
        LCP_ASSIGN_OR_RETURN(
            std::optional<FormulaPtr> neg_branch,
            Refute({SignedFormula{
                       Formula::Not(Formula::MakeAtom(ground_guard)), u.left}},
                   literals, universals, child_done));
        if (!neg_branch.has_value()) continue;  // Try other instantiations.
        // Branch 2: body(t⃗).
        LCP_ASSIGN_OR_RETURN(
            std::optional<FormulaPtr> pos_branch,
            Refute({SignedFormula{SubstituteFormula(f.body(), mapping),
                                  u.left}},
                   literals, universals, child_done));
        if (!pos_branch.has_value()) continue;  // Try other instantiations.
        std::vector<FormulaPtr> both = {std::move(*neg_branch),
                                        std::move(*pos_branch)};
        return std::optional<FormulaPtr>(
            u.left ? Formula::Or(std::move(both))
                   : Formula::And(std::move(both)));
      }
    }
    return std::optional<FormulaPtr>();  // Open branch.
  }

 private:
  const TableauOptions& options_;
  int steps_ = 0;
  int skolem_counter_ = 0;
};

}  // namespace

Result<InterpolationResult> ProveAndInterpolate(const Schema& schema,
                                                FormulaPtr premise,
                                                FormulaPtr conclusion,
                                                const TableauOptions& options) {
  (void)schema;
  Prover prover(options);
  std::vector<SignedFormula> todo = {
      SignedFormula{ToNnf(premise, false), true},
      SignedFormula{ToNnf(conclusion, true), false},
  };
  LCP_ASSIGN_OR_RETURN(std::optional<FormulaPtr> closed,
                       prover.Refute(std::move(todo), {}, {}, {}));
  InterpolationResult result;
  result.rule_applications = prover.steps();
  if (closed.has_value()) {
    result.proved = true;
    result.interpolant = Simplify(*closed);
    result.skolem_free = !ContainsSkolemConstant(*result.interpolant);
  }
  return result;
}

Result<bool> ProveEntailment(const Schema& schema, FormulaPtr premise,
                             FormulaPtr conclusion,
                             const TableauOptions& options) {
  LCP_ASSIGN_OR_RETURN(InterpolationResult result,
                       ProveAndInterpolate(schema, std::move(premise),
                                           std::move(conclusion), options));
  return result.proved;
}

}  // namespace lcp
