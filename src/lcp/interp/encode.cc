#include "lcp/interp/encode.h"

#include <functional>
#include <unordered_set>

#include "lcp/base/strings.h"

namespace lcp {

namespace {

/// Variables of `atom` not yet in `bound` (in order, deduplicated).
std::vector<std::string> NewVariables(
    const Atom& atom, const std::unordered_set<std::string>& bound) {
  std::vector<std::string> fresh;
  std::unordered_set<std::string> seen;
  for (const Term& t : atom.terms) {
    if (t.is_variable() && bound.count(t.var()) == 0 &&
        seen.insert(t.var()).second) {
      fresh.push_back(t.var());
    }
  }
  return fresh;
}

/// Builds the nested guarded quantifier chain over `atoms` (∀ chain for
/// bodies, ∃ chain for heads/queries) ending in `innermost`.
FormulaPtr Chain(const std::vector<Atom>& atoms, size_t index, bool forall,
                 std::unordered_set<std::string>& bound,
                 const std::function<FormulaPtr()>& innermost) {
  if (index == atoms.size()) return innermost();
  const Atom& atom = atoms[index];
  std::vector<std::string> fresh = NewVariables(atom, bound);
  for (const std::string& v : fresh) bound.insert(v);
  FormulaPtr rest = Chain(atoms, index + 1, forall, bound, innermost);
  for (const std::string& v : fresh) bound.erase(v);
  if (fresh.empty()) {
    // No new variables: express as a plain implication/conjunction via the
    // 0-ary quantifier forms, i.e. G → rest or G ∧ rest.
    FormulaPtr guard = Formula::MakeAtom(atom);
    return forall ? Formula::Or({Formula::Not(guard), rest})
                  : Formula::And({guard, rest});
  }
  return forall ? Formula::Forall(fresh, atom, rest)
                : Formula::Exists(fresh, atom, rest);
}

}  // namespace

Result<FormulaPtr> TgdToFormula(const Tgd& tgd) {
  LCP_RETURN_IF_ERROR(tgd.Validate());
  std::unordered_set<std::string> bound;
  FormulaPtr formula =
      Chain(tgd.body, 0, /*forall=*/true, bound, [&]() -> FormulaPtr {
        // Head: existential chain over the remaining atoms.
        std::unordered_set<std::string> head_bound;
        for (const std::string& v : CollectVariables(tgd.body)) {
          head_bound.insert(v);
        }
        return Chain(tgd.head, 0, /*forall=*/false, head_bound,
                     [] { return Formula::True(); });
      });
  return formula;
}

Result<FormulaPtr> QueryToSentence(const ConjunctiveQuery& query) {
  LCP_RETURN_IF_ERROR(query.Validate());
  std::unordered_set<std::string> bound;
  return Chain(query.atoms, 0, /*forall=*/false, bound,
               [] { return Formula::True(); });
}

}  // namespace lcp
