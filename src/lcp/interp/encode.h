#ifndef LCP_INTERP_ENCODE_H_
#define LCP_INTERP_ENCODE_H_

#include "lcp/base/result.h"
#include "lcp/interp/formula.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/logic/tgd.h"

namespace lcp {

/// Encodes a TGD as a relativized-quantifier sentence:
///   ∀x⃗₁ (B₁ → ∀x⃗₂ (B₂ → ... ∃y⃗ (H₁ ∧ ... ) ...)),
/// quantifying each variable at its first occurrence. Fails if some body
/// atom introduces no new variables to guard (rare; reorder the body).
Result<FormulaPtr> TgdToFormula(const Tgd& tgd);

/// Encodes a CQ as an ∃-sentence with relativized quantifiers, one per atom
/// in order (free variables of the query are also quantified — the result
/// is the boolean version of the query).
Result<FormulaPtr> QueryToSentence(const ConjunctiveQuery& query);

}  // namespace lcp

#endif  // LCP_INTERP_ENCODE_H_
