#ifndef LCP_INTERP_TABLEAU_H_
#define LCP_INTERP_TABLEAU_H_

#include <unordered_map>

#include "lcp/base/result.h"
#include "lcp/interp/formula.h"

namespace lcp {

struct TableauOptions {
  /// Budget on rule applications across the whole refutation.
  int max_steps = 20000;
};

/// Result of a ProveAndInterpolate call.
struct InterpolationResult {
  /// True if the tableau refuted premise ∧ ¬conclusion (entailment proved).
  bool proved = false;
  /// The Craig/Lyndon interpolant extracted from the refutation (only
  /// meaningful when proved). Access Interpolation (Theorem 4): it is
  /// entailed by the premise, entails the conclusion, and its relation
  /// polarities / constants / binding patterns are bounded by both sides.
  FormulaPtr interpolant;
  int rule_applications = 0;
  /// True when no δ-rule (Skolem) constant leaked into the interpolant.
  /// (Skolem constants would need to be re-quantified; the test suite
  /// exercises skolem-free cases.)
  bool skolem_free = true;
};

/// Signed-tableau prover for the relativized-quantifier formula language of
/// formula.h, with Maehara-style interpolant extraction: every node of the
/// refutation carries the side (premise / negated conclusion) it descends
/// from; branch closures produce atomic interpolants and β-splits combine
/// them with ∨ / ∧ according to the side of the split formula. This is the
/// proof-system backbone of the paper's Theorem 4 (the new component there,
/// the binding-pattern analysis, is checked by the test suite via
/// Formula::BindPatt on the extracted interpolants).
///
/// The γ-rule instantiates relativized universals against the guard
/// relation's positive literals on the branch, so the prover is complete
/// for the guarded-style entailments the paper works with, and bounded by
/// `max_steps` in general (first-order validity being undecidable).
Result<InterpolationResult> ProveAndInterpolate(const Schema& schema,
                                                FormulaPtr premise,
                                                FormulaPtr conclusion,
                                                const TableauOptions& options);

/// Entailment check without interpolation (same engine).
Result<bool> ProveEntailment(const Schema& schema, FormulaPtr premise,
                             FormulaPtr conclusion,
                             const TableauOptions& options);

/// Converts a formula to negation normal form (negating if `negate`).
/// Relativized quantifiers dualize: ¬∃x(G ∧ φ) = ∀x(G → ¬φ) and
/// ¬∀x(G → φ) = ∃x(G ∧ ¬φ).
FormulaPtr ToNnf(const FormulaPtr& formula, bool negate);

/// Capture-avoiding substitution of variables by constant terms.
FormulaPtr SubstituteFormula(
    const FormulaPtr& formula,
    const std::unordered_map<std::string, Term>& mapping);

}  // namespace lcp

#endif  // LCP_INTERP_TABLEAU_H_
