#ifndef LCP_INTERP_FORMULA_H_
#define LCP_INTERP_FORMULA_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lcp/logic/atom.h"
#include "lcp/logic/ids.h"
#include "lcp/schema/schema.h"

namespace lcp {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// A binding pattern (§3): a relation plus the set of positions that are
/// "inputs" under the straightforward inductive evaluation of the formula.
using BindingPattern = std::pair<RelationId, std::set<int>>;
using BindingPatternSet = std::set<BindingPattern>;

/// First-order formulas over a relational signature. Quantifiers are
/// *relativized* (guarded by an atom), following the paper's observation
/// that under active-domain semantics every formula can be brought into
/// this form and that BindPatt is defined exactly for such formulas:
///   Exists: ∃x⃗ (R(t⃗) ∧ φ)      Forall: ∀x⃗ (R(t⃗) → φ)
class Formula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,    ///< R(t⃗)
    kNot,     ///< ¬φ
    kAnd,     ///< φ ∧ ψ (n-ary)
    kOr,      ///< φ ∨ ψ (n-ary)
    kExists,  ///< ∃x⃗ (guard ∧ body)
    kForall,  ///< ∀x⃗ (guard → body)
  };

  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr MakeAtom(Atom atom);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr And(std::vector<FormulaPtr> parts);
  static FormulaPtr Or(std::vector<FormulaPtr> parts);
  static FormulaPtr Exists(std::vector<std::string> vars, Atom guard,
                           FormulaPtr body);
  static FormulaPtr Forall(std::vector<std::string> vars, Atom guard,
                           FormulaPtr body);

  Kind kind() const { return kind_; }
  const Atom& atom() const { return atom_; }          // kAtom / guard
  const std::vector<FormulaPtr>& parts() const { return parts_; }
  const std::vector<std::string>& vars() const { return vars_; }
  /// For kExists/kForall: the single child is the body; atom() is the guard.
  const FormulaPtr& body() const { return parts_[0]; }

  /// Free variables, in order of first occurrence.
  std::vector<std::string> FreeVariables() const;

  /// Relations occurring positively / negatively (paper's definition:
  /// under an even / odd number of negations; guards of ∀ count negative).
  void CollectPolarities(bool positive, std::set<RelationId>& pos,
                         std::set<RelationId>& neg) const;

  /// Constants occurring anywhere in the formula.
  std::set<Value> Constants() const;

  /// BindPatt(φ) per the paper's table. The formula language here is
  /// always relativized, so the result is always defined.
  BindingPatternSet BindPatt() const;

  std::string ToString(const Schema& schema) const;

 private:
  explicit Formula(Kind kind) : kind_(kind) {}

  Kind kind_;
  Atom atom_;
  std::vector<FormulaPtr> parts_;
  std::vector<std::string> vars_;
};

}  // namespace lcp

#endif  // LCP_INTERP_FORMULA_H_
