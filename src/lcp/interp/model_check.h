#ifndef LCP_INTERP_MODEL_CHECK_H_
#define LCP_INTERP_MODEL_CHECK_H_

#include "lcp/base/result.h"
#include "lcp/data/instance.h"
#include "lcp/data/query_eval.h"
#include "lcp/interp/formula.h"

namespace lcp {

/// Evaluates a formula on a finite instance under the given variable
/// binding (active-domain semantics: the relativized quantifiers range over
/// the guard relation's tuples). Fails if an atom's variable is unbound.
Result<bool> EvaluateFormula(const Formula& formula, const Instance& instance,
                             const Binding& binding);

/// Convenience: closed formulas.
Result<bool> EvaluateSentence(const Formula& formula,
                              const Instance& instance);

}  // namespace lcp

#endif  // LCP_INTERP_MODEL_CHECK_H_
