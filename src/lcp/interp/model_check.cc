#include "lcp/interp/model_check.h"

#include "lcp/base/strings.h"

namespace lcp {

namespace {

/// Matches `guard` against `tuple` extending `binding`; returns false on
/// clash. Newly bound variables are recorded for undo.
bool MatchGuard(const Atom& guard, const Tuple& tuple, Binding& binding,
                std::vector<std::string>& newly_bound) {
  for (size_t i = 0; i < guard.terms.size(); ++i) {
    const Term& t = guard.terms[i];
    if (t.is_constant()) {
      if (!(t.constant() == tuple[i])) return false;
      continue;
    }
    auto it = binding.find(t.var());
    if (it != binding.end()) {
      if (!(it->second == tuple[i])) return false;
    } else {
      binding.emplace(t.var(), tuple[i]);
      newly_bound.push_back(t.var());
    }
  }
  return true;
}

}  // namespace

Result<bool> EvaluateFormula(const Formula& formula, const Instance& instance,
                             const Binding& binding) {
  switch (formula.kind()) {
    case Formula::Kind::kTrue:
      return true;
    case Formula::Kind::kFalse:
      return false;
    case Formula::Kind::kAtom: {
      Tuple tuple;
      for (const Term& t : formula.atom().terms) {
        if (t.is_constant()) {
          tuple.push_back(t.constant());
        } else {
          auto it = binding.find(t.var());
          if (it == binding.end()) {
            return InvalidArgumentError(
                StrCat("unbound variable ", t.var(), " in atom"));
          }
          tuple.push_back(it->second);
        }
      }
      return instance.relation(formula.atom().relation).Contains(tuple);
    }
    case Formula::Kind::kNot: {
      LCP_ASSIGN_OR_RETURN(bool value,
                           EvaluateFormula(*formula.parts()[0], instance,
                                           binding));
      return !value;
    }
    case Formula::Kind::kAnd: {
      for (const FormulaPtr& part : formula.parts()) {
        LCP_ASSIGN_OR_RETURN(bool value,
                             EvaluateFormula(*part, instance, binding));
        if (!value) return false;
      }
      return true;
    }
    case Formula::Kind::kOr: {
      for (const FormulaPtr& part : formula.parts()) {
        LCP_ASSIGN_OR_RETURN(bool value,
                             EvaluateFormula(*part, instance, binding));
        if (value) return true;
      }
      return false;
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      const bool exists = formula.kind() == Formula::Kind::kExists;
      const RelationInstance& rel =
          instance.relation(formula.atom().relation);
      Binding extended = binding;
      // The quantified variables shadow outer bindings.
      for (const std::string& v : formula.vars()) extended.erase(v);
      for (const Tuple& tuple : rel.tuples()) {
        std::vector<std::string> newly_bound;
        bool matched =
            MatchGuard(formula.atom(), tuple, extended, newly_bound);
        if (matched) {
          LCP_ASSIGN_OR_RETURN(
              bool value,
              EvaluateFormula(*formula.body(), instance, extended));
          if (exists && value) return true;
          if (!exists && !value) return false;
        }
        for (const std::string& v : newly_bound) extended.erase(v);
      }
      return !exists;
    }
  }
  return InternalError("unreachable formula kind");
}

Result<bool> EvaluateSentence(const Formula& formula,
                              const Instance& instance) {
  return EvaluateFormula(formula, instance, Binding{});
}

}  // namespace lcp
