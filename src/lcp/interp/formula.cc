#include "lcp/interp/formula.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "lcp/base/check.h"
#include "lcp/base/strings.h"

namespace lcp {

FormulaPtr Formula::True() {
  return std::shared_ptr<Formula>(new Formula(Kind::kTrue));
}
FormulaPtr Formula::False() {
  return std::shared_ptr<Formula>(new Formula(Kind::kFalse));
}

FormulaPtr Formula::MakeAtom(Atom atom) {
  auto f = std::shared_ptr<Formula>(new Formula(Kind::kAtom));
  f->atom_ = std::move(atom);
  return f;
}

FormulaPtr Formula::Not(FormulaPtr child) {
  LCP_CHECK(child != nullptr);
  auto f = std::shared_ptr<Formula>(new Formula(Kind::kNot));
  f->parts_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> parts) {
  if (parts.empty()) return True();
  if (parts.size() == 1) return parts[0];
  auto f = std::shared_ptr<Formula>(new Formula(Kind::kAnd));
  f->parts_ = std::move(parts);
  return f;
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> parts) {
  if (parts.empty()) return False();
  if (parts.size() == 1) return parts[0];
  auto f = std::shared_ptr<Formula>(new Formula(Kind::kOr));
  f->parts_ = std::move(parts);
  return f;
}

FormulaPtr Formula::Exists(std::vector<std::string> vars, Atom guard,
                           FormulaPtr body) {
  auto f = std::shared_ptr<Formula>(new Formula(Kind::kExists));
  f->vars_ = std::move(vars);
  f->atom_ = std::move(guard);
  f->parts_ = {std::move(body)};
  return f;
}

FormulaPtr Formula::Forall(std::vector<std::string> vars, Atom guard,
                           FormulaPtr body) {
  auto f = std::shared_ptr<Formula>(new Formula(Kind::kForall));
  f->vars_ = std::move(vars);
  f->atom_ = std::move(guard);
  f->parts_ = {std::move(body)};
  return f;
}

namespace {
void CollectFree(const Formula& f,
                 std::unordered_set<std::string>& bound,
                 std::vector<std::string>& out,
                 std::unordered_set<std::string>& seen) {
  auto add_atom = [&](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_variable() && bound.find(t.var()) == bound.end() &&
          seen.insert(t.var()).second) {
        out.push_back(t.var());
      }
    }
  };
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return;
    case Formula::Kind::kAtom:
      add_atom(f.atom());
      return;
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const FormulaPtr& part : f.parts()) {
        CollectFree(*part, bound, out, seen);
      }
      return;
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      std::vector<std::string> newly;
      for (const std::string& v : f.vars()) {
        if (bound.insert(v).second) newly.push_back(v);
      }
      add_atom(f.atom());
      CollectFree(*f.body(), bound, out, seen);
      for (const std::string& v : newly) bound.erase(v);
      return;
    }
  }
}
}  // namespace

std::vector<std::string> Formula::FreeVariables() const {
  std::unordered_set<std::string> bound, seen;
  std::vector<std::string> out;
  CollectFree(*this, bound, out, seen);
  return out;
}

void Formula::CollectPolarities(bool positive, std::set<RelationId>& pos,
                                std::set<RelationId>& neg) const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kAtom:
      (positive ? pos : neg).insert(atom_.relation);
      return;
    case Kind::kNot:
      parts_[0]->CollectPolarities(!positive, pos, neg);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      for (const FormulaPtr& part : parts_) {
        part->CollectPolarities(positive, pos, neg);
      }
      return;
    case Kind::kExists:
      // ∃x (G ∧ φ): the guard occurs with the ambient polarity.
      (positive ? pos : neg).insert(atom_.relation);
      parts_[0]->CollectPolarities(positive, pos, neg);
      return;
    case Kind::kForall:
      // ∀x (G → φ) ≡ ∀x (¬G ∨ φ): the guard occurs with flipped polarity.
      (positive ? neg : pos).insert(atom_.relation);
      parts_[0]->CollectPolarities(positive, pos, neg);
      return;
  }
}

std::set<Value> Formula::Constants() const {
  std::set<Value> out;
  auto add_atom = [&](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_constant()) out.insert(t.constant());
    }
  };
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return out;
    case Kind::kAtom:
      add_atom(atom_);
      return out;
    default:
      break;
  }
  if (kind_ == Kind::kExists || kind_ == Kind::kForall) add_atom(atom_);
  for (const FormulaPtr& part : parts_) {
    for (const Value& v : part->Constants()) out.insert(v);
  }
  return out;
}

BindingPatternSet Formula::BindPatt() const {
  BindingPatternSet patterns;
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return patterns;
    case Kind::kAtom: {
      std::set<int> all;
      for (int i = 0; i < static_cast<int>(atom_.terms.size()); ++i) {
        all.insert(i);
      }
      patterns.insert({atom_.relation, all});
      return patterns;
    }
    case Kind::kNot:
      return parts_[0]->BindPatt();
    case Kind::kAnd:
    case Kind::kOr:
      for (const FormulaPtr& part : parts_) {
        for (const BindingPattern& p : part->BindPatt()) patterns.insert(p);
      }
      return patterns;
    case Kind::kExists:
    case Kind::kForall: {
      // {(R, {i | t_i ∉ x⃗})} — positions not bound by the quantifier.
      patterns = parts_[0]->BindPatt();
      std::set<int> inputs;
      for (int i = 0; i < static_cast<int>(atom_.terms.size()); ++i) {
        const Term& t = atom_.terms[i];
        bool quantified =
            t.is_variable() &&
            std::find(vars_.begin(), vars_.end(), t.var()) != vars_.end();
        if (!quantified) inputs.insert(i);
      }
      patterns.insert({atom_.relation, inputs});
      return patterns;
    }
  }
  return patterns;
}

std::string Formula::ToString(const Schema& schema) const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return schema.AtomToString(atom_);
    case Kind::kNot:
      return StrCat("~", parts_[0]->ToString(schema));
    case Kind::kAnd: {
      std::vector<std::string> ps;
      for (const FormulaPtr& part : parts_) ps.push_back(part->ToString(schema));
      return StrCat("(", StrJoin(ps, " & "), ")");
    }
    case Kind::kOr: {
      std::vector<std::string> ps;
      for (const FormulaPtr& part : parts_) ps.push_back(part->ToString(schema));
      return StrCat("(", StrJoin(ps, " | "), ")");
    }
    case Kind::kExists:
      return StrCat("exists ", StrJoin(vars_, ","), " (",
                    schema.AtomToString(atom_), " & ",
                    parts_[0]->ToString(schema), ")");
    case Kind::kForall:
      return StrCat("forall ", StrJoin(vars_, ","), " (",
                    schema.AtomToString(atom_), " -> ",
                    parts_[0]->ToString(schema), ")");
  }
  return "?";
}

}  // namespace lcp
