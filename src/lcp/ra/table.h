#ifndef LCP_RA_TABLE_H_
#define LCP_RA_TABLE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "lcp/data/instance.h"

namespace lcp {

/// A temporary (middleware) table: named attributes plus a duplicate-free
/// set of rows. Plans identify columns by attribute name; in proof-derived
/// plans the attribute names are the display names of chase constants (§4).
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> attrs) : attrs_(std::move(attrs)) {}

  const std::vector<std::string>& attrs() const { return attrs_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Index of `attr`, or -1 if absent.
  int AttrIndex(const std::string& attr) const;

  /// Inserts a row (set semantics); returns false on duplicate.
  bool Insert(Tuple row);

  bool ContainsRow(const Tuple& row) const {
    return dedup_.find(row) != dedup_.end();
  }

  /// Renders an aligned ASCII table (for examples and debugging).
  std::string ToString() const;

 private:
  std::vector<std::string> attrs_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> dedup_;
};

}  // namespace lcp

#endif  // LCP_RA_TABLE_H_
