#ifndef LCP_RA_TABLE_H_
#define LCP_RA_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lcp/data/instance.h"

namespace lcp {

/// A temporary (middleware) table: named attributes plus a duplicate-free
/// set of rows. Plans identify columns by attribute name; in proof-derived
/// plans the attribute names are the display names of chase constants (§4).
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> attrs) : attrs_(std::move(attrs)) {
    BuildAttrIndex();
  }

  const std::vector<std::string>& attrs() const { return attrs_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Index of `attr` (first occurrence), or -1 if absent. O(1): the
  /// attr → index map is built when the attribute list is set.
  int AttrIndex(const std::string& attr) const {
    auto it = attr_index_.find(attr);
    return it == attr_index_.end() ? -1 : it->second;
  }

  /// Pre-sizes row storage and the dedup index for `n` expected rows.
  void Reserve(size_t n);

  /// Inserts a row (set semantics); returns false on duplicate. The dedup
  /// index stores (hash, row index) pairs, not tuple copies: a duplicate
  /// probe hashes the candidate once and compares it against the rows
  /// already stored in `rows_`.
  bool Insert(Tuple row);

  bool ContainsRow(const Tuple& row) const;

  /// Renders an aligned ASCII table (for examples and debugging).
  std::string ToString() const;

 private:
  void BuildAttrIndex();

  std::vector<std::string> attrs_;
  /// First index of each attribute name (names may repeat; first one wins,
  /// matching the historic linear scan).
  std::unordered_map<std::string, int> attr_index_;
  std::vector<Tuple> rows_;
  /// Dedup index: tuple hash → indexes into rows_ (chained to survive hash
  /// collisions). Holds no tuple data of its own.
  std::unordered_multimap<size_t, uint32_t> dedup_;
};

}  // namespace lcp

#endif  // LCP_RA_TABLE_H_
