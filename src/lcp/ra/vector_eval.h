#ifndef LCP_RA_VECTOR_EVAL_H_
#define LCP_RA_VECTOR_EVAL_H_

#include <cstddef>
#include <string>
#include <unordered_map>

#include "lcp/base/result.h"
#include "lcp/ra/batch.h"
#include "lcp/ra/expr.h"
#include "lcp/ra/morsel.h"

namespace lcp {

/// Per-operator batch accounting for one plan execution under the
/// vectorized engine (the sibling of RetryStats on ExecutionResult). These
/// are the numbers the cost-model feedback loop reads: real batch sizes,
/// probe hit rates, and dedup pressure per executed plan.
struct ExecStats {
  size_t batches = 0;          ///< Operator output batches produced.
  size_t rows_in = 0;          ///< Rows flowing into operators.
  size_t rows_out = 0;         ///< Rows flowing out of operators.
  size_t probe_hits = 0;       ///< Hash-join probe matches.
  size_t dedup_drops = 0;      ///< Duplicates removed by batch dedup passes.
  size_t access_batches = 0;   ///< Batched source dispatches issued.
  size_t access_bindings = 0;  ///< Distinct bindings across those dispatches.
  size_t max_batch_rows = 0;   ///< Widest operator output batch observed.
  size_t morsels = 0;          ///< Cache-sized morsels launched in parallel.
  /// Partitions across parallel hash builds (join/difference builds and
  /// hash-partitioned dedup passes). 0 under exec_parallelism=1.
  size_t parallel_build_partitions = 0;
  size_t exec_workers = 0;     ///< Execution workers used (1 = sequential).
};

/// The vectorized middleware environment: columnar batches by table name,
/// all encoded against one shared TermPool.
using BatchEnv = std::unordered_map<std::string, ColumnBatch>;

/// Evaluates `expr` against `env` with set semantics, columnar batch at a
/// time: selections and projections are selection-vector filters, natural
/// join is a build/probe hash join over the shared key columns, and dedup
/// is a batch hash pass. Produces the same rows in the same canonical
/// first-appearance order as the row evaluator (EvaluateRa), which is the
/// bit-identical differential contract between the two engines.
///
/// `pool` is the shared dictionary (selection constants are interned into
/// it); `stats` (optional) accumulates per-operator batch accounting.
/// `morsels` (optional) turns on morsel-driven parallelism (DESIGN.md §13):
/// large batches are split into cache-sized morsels whose per-worker
/// outputs are concatenated in canonical order, so the result — rows,
/// order, and stats other than the morsel counters — is identical to the
/// sequential pass at any worker count.
Result<ColumnBatch> EvaluateRaVectorized(const RaExpr& expr,
                                         const BatchEnv& env, TermPool& pool,
                                         ExecStats* stats = nullptr,
                                         const MorselContext* morsels = nullptr);

/// Batch dedup that goes morsel-parallel for large inputs: a
/// hash-partitioned first-occurrence scan where every partition owner scans
/// rows in global order and flags survivors (equal rows share a hash, hence
/// a partition, so the flags match the sequential pass exactly). Falls back
/// to ColumnBatch::Deduplicated for small inputs or a null context. Also
/// used by the executor's access-output store.
ColumnBatch DeduplicatedMorsel(const ColumnBatch& batch,
                               const MorselContext* ctx, ExecStats* stats,
                               size_t* dropped);

}  // namespace lcp

#endif  // LCP_RA_VECTOR_EVAL_H_
