#ifndef LCP_RA_VECTOR_EVAL_H_
#define LCP_RA_VECTOR_EVAL_H_

#include <cstddef>
#include <string>
#include <unordered_map>

#include "lcp/base/result.h"
#include "lcp/ra/batch.h"
#include "lcp/ra/expr.h"

namespace lcp {

/// Per-operator batch accounting for one plan execution under the
/// vectorized engine (the sibling of RetryStats on ExecutionResult). These
/// are the numbers the cost-model feedback loop reads: real batch sizes,
/// probe hit rates, and dedup pressure per executed plan.
struct ExecStats {
  size_t batches = 0;          ///< Operator output batches produced.
  size_t rows_in = 0;          ///< Rows flowing into operators.
  size_t rows_out = 0;         ///< Rows flowing out of operators.
  size_t probe_hits = 0;       ///< Hash-join probe matches.
  size_t dedup_drops = 0;      ///< Duplicates removed by batch dedup passes.
  size_t access_batches = 0;   ///< Batched source dispatches issued.
  size_t access_bindings = 0;  ///< Distinct bindings across those dispatches.
  size_t max_batch_rows = 0;   ///< Widest operator output batch observed.
};

/// The vectorized middleware environment: columnar batches by table name,
/// all encoded against one shared TermPool.
using BatchEnv = std::unordered_map<std::string, ColumnBatch>;

/// Evaluates `expr` against `env` with set semantics, columnar batch at a
/// time: selections and projections are selection-vector filters, natural
/// join is a build/probe hash join over the shared key columns, and dedup
/// is a batch hash pass. Produces the same rows in the same canonical
/// first-appearance order as the row evaluator (EvaluateRa), which is the
/// bit-identical differential contract between the two engines.
///
/// `pool` is the shared dictionary (selection constants are interned into
/// it); `stats` (optional) accumulates per-operator batch accounting.
Result<ColumnBatch> EvaluateRaVectorized(const RaExpr& expr,
                                         const BatchEnv& env, TermPool& pool,
                                         ExecStats* stats = nullptr);

}  // namespace lcp

#endif  // LCP_RA_VECTOR_EVAL_H_
