#include "lcp/ra/batch.h"

#include <limits>
#include <utility>

#include "lcp/base/check.h"

namespace lcp {

TermCode TermPool::Intern(const Value& v) {
  auto it = codes_.find(v);
  if (it != codes_.end()) return it->second;
  LCP_CHECK_LT(values_.size(),
               static_cast<size_t>(std::numeric_limits<TermCode>::max()))
      << "term pool overflow";
  TermCode code = static_cast<TermCode>(values_.size());
  values_.push_back(v);
  codes_.emplace(values_.back(), code);
  return code;
}

ColumnBatch::ColumnBatch(std::vector<std::string> attrs)
    : attrs_(std::move(attrs)) {
  columns_.reserve(attrs_.size());
  auto empty = std::make_shared<const std::vector<TermCode>>();
  for (size_t i = 0; i < attrs_.size(); ++i) columns_.push_back(empty);
}

ColumnBatch ColumnBatch::FromDense(std::vector<std::string> attrs,
                                   std::vector<std::vector<TermCode>> columns,
                                   size_t num_rows) {
  LCP_CHECK_EQ(attrs.size(), columns.size());
  ColumnBatch batch;
  batch.attrs_ = std::move(attrs);
  batch.physical_rows_ = num_rows;
  batch.columns_.reserve(columns.size());
  for (auto& col : columns) {
    LCP_CHECK_EQ(col.size(), num_rows) << "ragged batch column";
    batch.columns_.push_back(
        std::make_shared<const std::vector<TermCode>>(std::move(col)));
  }
  return batch;
}

int ColumnBatch::AttrIndex(const std::string& attr) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

ColumnBatch ColumnBatch::Filtered(std::vector<uint32_t> live) const {
  ColumnBatch out;
  out.attrs_ = attrs_;
  out.columns_ = columns_;
  out.physical_rows_ = physical_rows_;
  out.has_selection_ = true;
  if (has_selection_) {
    // Compose: map live indices through the current selection.
    out.selection_.reserve(live.size());
    for (uint32_t i : live) out.selection_.push_back(selection_[i]);
  } else {
    out.selection_ = std::move(live);
  }
  return out;
}

ColumnBatch ColumnBatch::WithColumns(std::vector<std::string> attrs,
                                     const std::vector<int>& cols) const {
  LCP_CHECK_EQ(attrs.size(), cols.size());
  ColumnBatch out;
  out.attrs_ = std::move(attrs);
  out.columns_.reserve(cols.size());
  for (int c : cols) {
    LCP_CHECK(c >= 0 && static_cast<size_t>(c) < columns_.size());
    out.columns_.push_back(columns_[c]);
  }
  out.physical_rows_ = physical_rows_;
  out.has_selection_ = has_selection_;
  out.selection_ = selection_;
  return out;
}

size_t HashBatchRow(const ColumnBatch& batch, const std::vector<int>& cols,
                    size_t i) {
  size_t h = 0x811c9dc5;
  for (int c : cols) {
    h ^= static_cast<size_t>(batch.At(static_cast<size_t>(c), i)) +
         0x9e3779b97f4a7c15ULL;
    h *= 0x01000193;
  }
  return h;
}

namespace {

/// True if live rows `a` and `b` agree on every column in `cols`.
bool RowsEqual(const ColumnBatch& batch, const std::vector<int>& cols,
               size_t a, size_t b) {
  for (int c : cols) {
    const size_t col = static_cast<size_t>(c);
    if (batch.At(col, a) != batch.At(col, b)) return false;
  }
  return true;
}

}  // namespace

ColumnBatch ColumnBatch::Deduplicated(size_t* dropped) const {
  std::vector<int> all_cols(attrs_.size());
  for (size_t c = 0; c < attrs_.size(); ++c) all_cols[c] = static_cast<int>(c);
  const size_t n = num_rows();
  // Nullary batch: set semantics collapse to at most one row.
  if (attrs_.empty()) {
    if (dropped != nullptr) *dropped = n > 1 ? n - 1 : 0;
    if (n <= 1) return *this;
    return Filtered({0});
  }
  std::vector<uint32_t> keep;
  keep.reserve(n);
  RowHashIndex seen(n);  // kept live indexes, bucketed by row hash
  for (size_t i = 0; i < n; ++i) {
    const size_t h = HashBatchRow(*this, all_cols, i);
    bool dup = false;
    seen.ForEachCandidate(h, [&](uint32_t kept_row) {
      dup = RowsEqual(*this, all_cols, kept_row, i);
      return dup;
    });
    if (dup) continue;
    seen.Insert(h, static_cast<uint32_t>(i));
    keep.push_back(static_cast<uint32_t>(i));
  }
  if (dropped != nullptr) *dropped = n - keep.size();
  if (keep.size() == n) return *this;
  return Filtered(std::move(keep));
}

Table ColumnBatch::ToTable(const TermPool& pool) const {
  Table table(attrs_);
  const size_t n = num_rows();
  table.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple row;
    row.reserve(attrs_.size());
    for (size_t c = 0; c < attrs_.size(); ++c) {
      row.push_back(pool.Decode(At(c, i)));
    }
    table.Insert(std::move(row));
  }
  return table;
}

ColumnBatch ColumnBatch::FromTable(const Table& table, TermPool& pool) {
  std::vector<std::vector<TermCode>> columns(table.attrs().size());
  for (auto& col : columns) col.reserve(table.size());
  for (const Tuple& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      columns[c].push_back(pool.Intern(row[c]));
    }
  }
  return FromDense(table.attrs(), std::move(columns), table.size());
}

}  // namespace lcp
