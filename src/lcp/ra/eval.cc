#include "lcp/ra/eval.h"

#include <algorithm>

#include "lcp/base/strings.h"

namespace lcp {

namespace {

Result<Table> EvalProject(Table input, const std::vector<std::string>& attrs) {
  std::vector<int> indexes;
  for (const std::string& attr : attrs) {
    int idx = input.AttrIndex(attr);
    if (idx < 0) {
      return InvalidArgumentError(
          StrCat("project: attribute ", attr, " not found"));
    }
    indexes.push_back(idx);
  }
  Table out(attrs);
  out.Reserve(input.size());
  for (const Tuple& row : input.rows()) {
    Tuple projected;
    projected.reserve(indexes.size());
    for (int idx : indexes) projected.push_back(row[idx]);
    out.Insert(std::move(projected));
  }
  return out;
}

Result<Table> EvalSelect(Table input,
                         const std::vector<RaExpr::Condition>& conditions) {
  struct ResolvedCondition {
    bool attr_eq_attr;
    int lhs;
    int rhs;
    Value constant;
  };
  std::vector<ResolvedCondition> resolved;
  for (const RaExpr::Condition& c : conditions) {
    ResolvedCondition r;
    r.lhs = input.AttrIndex(c.lhs);
    if (r.lhs < 0) {
      return InvalidArgumentError(
          StrCat("select: attribute ", c.lhs, " not found"));
    }
    if (c.kind == RaExpr::Condition::Kind::kAttrEqAttr) {
      r.attr_eq_attr = true;
      r.rhs = input.AttrIndex(c.rhs_attr);
      if (r.rhs < 0) {
        return InvalidArgumentError(
            StrCat("select: attribute ", c.rhs_attr, " not found"));
      }
    } else {
      r.attr_eq_attr = false;
      r.rhs = -1;
      r.constant = c.rhs_const;
    }
    resolved.push_back(std::move(r));
  }
  Table out(input.attrs());
  out.Reserve(input.size());
  for (const Tuple& row : input.rows()) {
    bool keep = true;
    for (const ResolvedCondition& r : resolved) {
      if (r.attr_eq_attr ? (row[r.lhs] != row[r.rhs])
                         : (row[r.lhs] != r.constant)) {
        keep = false;
        break;
      }
    }
    if (keep) out.Insert(row);
  }
  return out;
}

/// Hash join on the shared attributes; degenerates to a cross product when
/// none are shared (as natural join should).
Result<Table> EvalJoin(const Table& left, const Table& right) {
  std::vector<std::pair<int, int>> shared;  // (left idx, right idx)
  std::vector<int> right_extra;             // right attrs not in left
  for (size_t j = 0; j < right.attrs().size(); ++j) {
    int li = left.AttrIndex(right.attrs()[j]);
    if (li >= 0) {
      shared.emplace_back(li, static_cast<int>(j));
    } else {
      right_extra.push_back(static_cast<int>(j));
    }
  }
  std::vector<std::string> out_attrs = left.attrs();
  for (int j : right_extra) out_attrs.push_back(right.attrs()[j]);
  Table out(std::move(out_attrs));

  out.Reserve(left.size());

  // Build a hash index on the right side keyed by the shared attributes.
  std::unordered_map<Tuple, std::vector<int>, TupleHash> index;
  index.reserve(right.size());
  for (size_t r = 0; r < right.rows().size(); ++r) {
    Tuple key;
    key.reserve(shared.size());
    for (const auto& [li, rj] : shared) key.push_back(right.rows()[r][rj]);
    index[std::move(key)].push_back(static_cast<int>(r));
  }
  for (const Tuple& lrow : left.rows()) {
    Tuple key;
    key.reserve(shared.size());
    for (const auto& [li, rj] : shared) key.push_back(lrow[li]);
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (int r : it->second) {
      Tuple row = lrow;
      for (int j : right_extra) row.push_back(right.rows()[r][j]);
      out.Insert(std::move(row));
    }
  }
  return out;
}

/// Returns the permutation mapping `from` attribute order to `to`, or an
/// error if the attribute sets differ.
Result<std::vector<int>> AlignAttrs(const std::vector<std::string>& to,
                                    const Table& from) {
  if (to.size() != from.attrs().size()) {
    return InvalidArgumentError("union/difference: attribute sets differ");
  }
  std::vector<int> perm;
  for (const std::string& attr : to) {
    int idx = from.AttrIndex(attr);
    if (idx < 0) {
      return InvalidArgumentError(
          StrCat("union/difference: attribute ", attr, " missing"));
    }
    perm.push_back(idx);
  }
  return perm;
}

}  // namespace

Result<Table> EvaluateRa(const RaExpr& expr, const TableEnv& env) {
  switch (expr.op()) {
    case RaExpr::Op::kTempScan: {
      auto it = env.find(expr.table());
      if (it == env.end()) {
        return NotFoundError(StrCat("no temporary table ", expr.table()));
      }
      return it->second;
    }
    case RaExpr::Op::kSingleton: {
      Table out{std::vector<std::string>{}};
      out.Insert(Tuple{});
      return out;
    }
    case RaExpr::Op::kProject: {
      LCP_ASSIGN_OR_RETURN(Table child, EvaluateRa(*expr.children()[0], env));
      return EvalProject(std::move(child), expr.attrs());
    }
    case RaExpr::Op::kSelect: {
      LCP_ASSIGN_OR_RETURN(Table child, EvaluateRa(*expr.children()[0], env));
      return EvalSelect(std::move(child), expr.conditions());
    }
    case RaExpr::Op::kJoin: {
      LCP_ASSIGN_OR_RETURN(Table left, EvaluateRa(*expr.children()[0], env));
      LCP_ASSIGN_OR_RETURN(Table right, EvaluateRa(*expr.children()[1], env));
      return EvalJoin(left, right);
    }
    case RaExpr::Op::kUnion: {
      LCP_ASSIGN_OR_RETURN(Table left, EvaluateRa(*expr.children()[0], env));
      LCP_ASSIGN_OR_RETURN(Table right, EvaluateRa(*expr.children()[1], env));
      LCP_ASSIGN_OR_RETURN(std::vector<int> perm,
                           AlignAttrs(left.attrs(), right));
      Table out = left;
      out.Reserve(left.size() + right.size());
      for (const Tuple& row : right.rows()) {
        Tuple aligned;
        aligned.reserve(perm.size());
        for (int idx : perm) aligned.push_back(row[idx]);
        out.Insert(std::move(aligned));
      }
      return out;
    }
    case RaExpr::Op::kDifference: {
      LCP_ASSIGN_OR_RETURN(Table left, EvaluateRa(*expr.children()[0], env));
      LCP_ASSIGN_OR_RETURN(Table right, EvaluateRa(*expr.children()[1], env));
      LCP_ASSIGN_OR_RETURN(std::vector<int> perm,
                           AlignAttrs(left.attrs(), right));
      Table negatives(left.attrs());
      negatives.Reserve(right.size());
      for (const Tuple& row : right.rows()) {
        Tuple aligned;
        aligned.reserve(perm.size());
        for (int idx : perm) aligned.push_back(row[idx]);
        negatives.Insert(std::move(aligned));
      }
      Table out(left.attrs());
      out.Reserve(left.size());
      for (const Tuple& row : left.rows()) {
        if (!negatives.ContainsRow(row)) out.Insert(row);
      }
      return out;
    }
    case RaExpr::Op::kRename: {
      LCP_ASSIGN_OR_RETURN(Table child, EvaluateRa(*expr.children()[0], env));
      std::vector<std::string> attrs = child.attrs();
      for (const auto& [from, to] : expr.renames()) {
        int idx = child.AttrIndex(from);
        if (idx < 0) {
          return InvalidArgumentError(
              StrCat("rename: attribute ", from, " not found"));
        }
        attrs[idx] = to;
      }
      Table out(std::move(attrs));
      out.Reserve(child.size());
      for (const Tuple& row : child.rows()) out.Insert(row);
      return out;
    }
  }
  return InternalError("unreachable RA op");
}

}  // namespace lcp
