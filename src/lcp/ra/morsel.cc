#include "lcp/ra/morsel.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include <unistd.h>

#include "lcp/base/check.h"

namespace lcp {

namespace {

/// Park timeout between steal scans: long enough to stay off the lock when
/// idle, short enough that a missed notify costs microseconds.
constexpr std::chrono::microseconds kParkTimeout(100);

}  // namespace

void MorselScheduler::WorkerLoop(int worker_id) {
  while (true) {
    if (auto async = async_tasks_.TrySteal()) {
      RunAsync(*async);
      continue;
    }
    if (auto task = deques_[worker_id].TryPopBottom()) {
      (*task)();
      continue;
    }
    bool ran = false;
    for (int w = 0; w < num_workers_; ++w) {
      if (w == worker_id) continue;
      if (auto task = deques_[w].TrySteal()) {
        (*task)();
        ran = true;
        break;
      }
    }
    if (ran) continue;
    if (shutdown_.load(std::memory_order_acquire)) return;
    gate_.Park(kParkTimeout);
  }
}

void MorselScheduler::ParallelFor(size_t count,
                                  const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || num_workers_ == 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }

  struct Join {
    std::atomic<size_t> remaining;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto join = std::make_shared<Join>();
  join->remaining.store(count, std::memory_order_relaxed);

  // Capturing `body` by reference is safe: ParallelFor returns only after
  // every task ran, and each task is destroyed right after it runs.
  for (size_t i = 0; i < count; ++i) {
    deques_[i % num_workers_].PushBottom([join, &body, i] {
      body(i);
      if (join->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(join->mu);
        join->cv.notify_all();
      }
    });
  }
  gate_.NotifyAll();

  // The driver participates: own deque LIFO first, then steal. When neither
  // yields work but iterations are still running elsewhere, wait on the
  // join latch (timed, so a racing notify is never lost for long).
  while (join->remaining.load(std::memory_order_acquire) > 0) {
    if (auto task = deques_[0].TryPopBottom()) {
      (*task)();
      continue;
    }
    bool ran = false;
    for (int w = 1; w < num_workers_; ++w) {
      if (auto task = deques_[w].TrySteal()) {
        (*task)();
        ran = true;
        break;
      }
    }
    if (ran) continue;
    std::unique_lock<std::mutex> lock(join->mu);
    join->cv.wait_for(lock, kParkTimeout, [&] {
      return join->remaining.load(std::memory_order_acquire) == 0;
    });
  }
}

MorselScheduler::Async MorselScheduler::SubmitAsync(std::function<void()> task) {
  LCP_CHECK(num_workers_ >= 2) << "async tasks need a non-driver worker";
  Async handle;
  handle.state_ = std::make_shared<Async::State>();
  handle.state_->fn = std::move(task);
  async_tasks_.PushBottom(handle.state_);
  gate_.NotifyAll();
  return handle;
}

void MorselScheduler::RunAsync(const std::shared_ptr<Async::State>& state) {
  state->fn();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->done = true;
  }
  state->cv.notify_all();
}

void MorselScheduler::Async::Wait() {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  lock.unlock();
  state_.reset();
}

size_t DeriveMorselRows() {
  long l2 = -1;
#if defined(_SC_LEVEL2_CACHE_SIZE)
  l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
  if (l2 <= 0) l2 = 1 << 21;  // no sysconf answer: assume a 2 MiB L2
  // A morsel touches a handful of 4-byte code columns on the way in and
  // out; budget half the L2 at ~32 bytes per row so two operators' morsels
  // can overlap without thrashing.
  const size_t rows = static_cast<size_t>(l2) / 2 / 32;
  return std::min<size_t>(65536, std::max<size_t>(1024, rows));
}

size_t ParallelMorsels(
    const MorselContext& ctx, size_t rows,
    const std::function<void(size_t, size_t, size_t)>& body) {
  const size_t mr = ctx.morsel_rows;
  const size_t morsels = mr == 0 ? 1 : (rows + mr - 1) / mr;
  if (ctx.scheduler == nullptr || morsels <= 1) {
    if (!ctx.Cancelled()) body(0, 0, rows);
    return 1;
  }
  ctx.scheduler->ParallelFor(morsels, [&](size_t m) {
    if (ctx.Cancelled()) return;
    body(m, m * mr, std::min(rows, (m + 1) * mr));
  });
  return morsels;
}

}  // namespace lcp
