#ifndef LCP_RA_EVAL_H_
#define LCP_RA_EVAL_H_

#include <string>
#include <unordered_map>

#include "lcp/base/result.h"
#include "lcp/ra/expr.h"
#include "lcp/ra/table.h"

namespace lcp {

/// The middleware environment: temporary tables by name.
using TableEnv = std::unordered_map<std::string, Table>;

/// Evaluates `expr` against `env` with set semantics. Fails on references
/// to missing tables/attributes or on union/difference over mismatched
/// attribute sets.
Result<Table> EvaluateRa(const RaExpr& expr, const TableEnv& env);

}  // namespace lcp

#endif  // LCP_RA_EVAL_H_
