#include "lcp/ra/table.h"

#include <algorithm>
#include <sstream>

#include "lcp/base/check.h"

namespace lcp {

void Table::BuildAttrIndex() {
  attr_index_.reserve(attrs_.size());
  for (size_t i = 0; i < attrs_.size(); ++i) {
    attr_index_.emplace(attrs_[i], static_cast<int>(i));
  }
}

void Table::Reserve(size_t n) {
  rows_.reserve(n);
  dedup_.reserve(n);
}

bool Table::Insert(Tuple row) {
  LCP_CHECK_EQ(row.size(), attrs_.size()) << "row width mismatch";
  const size_t h = TupleHash()(row);
  auto [begin, end] = dedup_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (rows_[it->second] == row) return false;
  }
  dedup_.emplace(h, static_cast<uint32_t>(rows_.size()));
  rows_.push_back(std::move(row));
  return true;
}

bool Table::ContainsRow(const Tuple& row) const {
  const size_t h = TupleHash()(row);
  auto [begin, end] = dedup_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (rows_[it->second] == row) return true;
  }
  return false;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(attrs_.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < attrs_.size(); ++i) widths[i] = attrs_[i].size();
  for (const Tuple& row : rows_) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      widths[i] = std::max(widths[i], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream os;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    os << (i ? " | " : "") << attrs_[i]
       << std::string(widths[i] - attrs_[i].size(), ' ');
  }
  os << "\n";
  for (const auto& line : cells) {
    for (size_t i = 0; i < line.size(); ++i) {
      os << (i ? " | " : "") << line[i]
         << std::string(widths[i] - line[i].size(), ' ');
    }
    os << "\n";
  }
  if (attrs_.empty()) {
    os << (rows_.empty() ? "(empty nullary table)\n"
                         : "(nullary table: one row)\n");
  }
  return os.str();
}

}  // namespace lcp
