#include "lcp/ra/expr.h"

#include <sstream>

#include "lcp/base/check.h"
#include "lcp/base/strings.h"

namespace lcp {

RaExpr::Condition RaExpr::Condition::AttrEqAttr(std::string a, std::string b) {
  Condition c;
  c.kind = Kind::kAttrEqAttr;
  c.lhs = std::move(a);
  c.rhs_attr = std::move(b);
  return c;
}

RaExpr::Condition RaExpr::Condition::AttrEqConst(std::string a, Value v) {
  Condition c;
  c.kind = Kind::kAttrEqConst;
  c.lhs = std::move(a);
  c.rhs_const = std::move(v);
  return c;
}

RaExprPtr RaExpr::TempScan(std::string table) {
  auto expr = std::shared_ptr<RaExpr>(new RaExpr(Op::kTempScan));
  expr->table_ = std::move(table);
  return expr;
}

RaExprPtr RaExpr::Project(RaExprPtr child, std::vector<std::string> attrs) {
  LCP_CHECK(child != nullptr);
  auto expr = std::shared_ptr<RaExpr>(new RaExpr(Op::kProject));
  expr->children_ = {std::move(child)};
  expr->attrs_ = std::move(attrs);
  return expr;
}

RaExprPtr RaExpr::Select(RaExprPtr child, std::vector<Condition> conditions) {
  LCP_CHECK(child != nullptr);
  auto expr = std::shared_ptr<RaExpr>(new RaExpr(Op::kSelect));
  expr->children_ = {std::move(child)};
  expr->conditions_ = std::move(conditions);
  return expr;
}

RaExprPtr RaExpr::Join(RaExprPtr left, RaExprPtr right) {
  LCP_CHECK(left != nullptr && right != nullptr);
  auto expr = std::shared_ptr<RaExpr>(new RaExpr(Op::kJoin));
  expr->children_ = {std::move(left), std::move(right)};
  return expr;
}

RaExprPtr RaExpr::Union(RaExprPtr left, RaExprPtr right) {
  LCP_CHECK(left != nullptr && right != nullptr);
  auto expr = std::shared_ptr<RaExpr>(new RaExpr(Op::kUnion));
  expr->children_ = {std::move(left), std::move(right)};
  return expr;
}

RaExprPtr RaExpr::Difference(RaExprPtr left, RaExprPtr right) {
  LCP_CHECK(left != nullptr && right != nullptr);
  auto expr = std::shared_ptr<RaExpr>(new RaExpr(Op::kDifference));
  expr->children_ = {std::move(left), std::move(right)};
  return expr;
}

RaExprPtr RaExpr::Rename(
    RaExprPtr child, std::vector<std::pair<std::string, std::string>> renames) {
  LCP_CHECK(child != nullptr);
  auto expr = std::shared_ptr<RaExpr>(new RaExpr(Op::kRename));
  expr->children_ = {std::move(child)};
  expr->renames_ = std::move(renames);
  return expr;
}

RaExprPtr RaExpr::Singleton() {
  return std::shared_ptr<RaExpr>(new RaExpr(Op::kSingleton));
}

namespace {
void CollectTables(const RaExpr& expr, std::vector<std::string>& out) {
  if (expr.op() == RaExpr::Op::kTempScan) out.push_back(expr.table());
  for (const RaExprPtr& child : expr.children()) CollectTables(*child, out);
}
}  // namespace

std::vector<std::string> RaExpr::ReferencedTables() const {
  std::vector<std::string> tables;
  CollectTables(*this, tables);
  return tables;
}

bool RaExpr::Uses(Op op) const {
  if (op_ == op) return true;
  for (const RaExprPtr& child : children_) {
    if (child->Uses(op)) return true;
  }
  return false;
}

std::string RaExpr::ToString() const {
  switch (op_) {
    case Op::kTempScan:
      return StrCat("scan(", table_, ")");
    case Op::kProject:
      return StrCat("project[", StrJoin(attrs_, ","), "](",
                    children_[0]->ToString(), ")");
    case Op::kSelect: {
      std::vector<std::string> conds;
      for (const Condition& c : conditions_) {
        if (c.kind == Condition::Kind::kAttrEqAttr) {
          conds.push_back(StrCat(c.lhs, "=", c.rhs_attr));
        } else {
          conds.push_back(StrCat(c.lhs, "=", c.rhs_const.ToString()));
        }
      }
      return StrCat("select[", StrJoin(conds, " & "), "](",
                    children_[0]->ToString(), ")");
    }
    case Op::kJoin:
      return StrCat("(", children_[0]->ToString(), " join ",
                    children_[1]->ToString(), ")");
    case Op::kUnion:
      return StrCat("(", children_[0]->ToString(), " union ",
                    children_[1]->ToString(), ")");
    case Op::kDifference:
      return StrCat("(", children_[0]->ToString(), " minus ",
                    children_[1]->ToString(), ")");
    case Op::kRename: {
      std::vector<std::string> pairs;
      for (const auto& [from, to] : renames_) {
        pairs.push_back(StrCat(from, "->", to));
      }
      return StrCat("rename[", StrJoin(pairs, ","), "](",
                    children_[0]->ToString(), ")");
    }
    case Op::kSingleton:
      return "singleton()";
  }
  return "?";
}

}  // namespace lcp
