#ifndef LCP_RA_EXPR_H_
#define LCP_RA_EXPR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lcp/logic/value.h"

namespace lcp {

class RaExpr;
using RaExprPtr = std::shared_ptr<const RaExpr>;

/// A relational algebra expression over temporary tables (§2: the
/// expressions appearing in access and middleware query commands). Join is
/// natural join on shared attribute names; Union/Difference align operands
/// by attribute name.
class RaExpr {
 public:
  enum class Op {
    kTempScan,    ///< Scan a temporary table by name.
    kProject,     ///< Keep `attrs`, in order (duplicates removed upstream).
    kSelect,      ///< Filter by conjunctive conditions.
    kJoin,        ///< Natural join of the two children.
    kUnion,       ///< Set union (same attribute set).
    kDifference,  ///< Set difference (same attribute set).
    kRename,      ///< Rename attributes (old -> new pairs).
    kSingleton,   ///< Nullary table with exactly one (empty) row.
  };

  /// One conjunct of a selection: attr = attr, or attr = constant.
  struct Condition {
    enum class Kind { kAttrEqAttr, kAttrEqConst };
    Kind kind = Kind::kAttrEqConst;
    std::string lhs;
    std::string rhs_attr;
    Value rhs_const;

    static Condition AttrEqAttr(std::string a, std::string b);
    static Condition AttrEqConst(std::string a, Value v);
  };

  // Factories (the only way to build expressions).
  static RaExprPtr TempScan(std::string table);
  static RaExprPtr Project(RaExprPtr child, std::vector<std::string> attrs);
  static RaExprPtr Select(RaExprPtr child, std::vector<Condition> conditions);
  static RaExprPtr Join(RaExprPtr left, RaExprPtr right);
  static RaExprPtr Union(RaExprPtr left, RaExprPtr right);
  static RaExprPtr Difference(RaExprPtr left, RaExprPtr right);
  static RaExprPtr Rename(
      RaExprPtr child,
      std::vector<std::pair<std::string, std::string>> renames);
  static RaExprPtr Singleton();

  Op op() const { return op_; }
  const std::string& table() const { return table_; }
  const std::vector<RaExprPtr>& children() const { return children_; }
  const std::vector<std::string>& attrs() const { return attrs_; }
  const std::vector<Condition>& conditions() const { return conditions_; }
  const std::vector<std::pair<std::string, std::string>>& renames() const {
    return renames_;
  }

  /// Names of the temporary tables scanned anywhere in the expression.
  std::vector<std::string> ReferencedTables() const;

  /// True if the expression (sub)tree uses the given operator.
  bool Uses(Op op) const;

  /// Compact one-line rendering, e.g. "project[eid_0](scan(t1))".
  std::string ToString() const;

 private:
  explicit RaExpr(Op op) : op_(op) {}

  Op op_;
  std::string table_;
  std::vector<RaExprPtr> children_;
  std::vector<std::string> attrs_;
  std::vector<Condition> conditions_;
  std::vector<std::pair<std::string, std::string>> renames_;
};

}  // namespace lcp

#endif  // LCP_RA_EXPR_H_
