#ifndef LCP_RA_BATCH_H_
#define LCP_RA_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lcp/data/instance.h"
#include "lcp/logic/value.h"
#include "lcp/ra/table.h"

namespace lcp {

/// Dictionary code of a term in a TermPool. Equal codes ⇔ equal Values, so
/// every middleware comparison (selection, join keys, dedup) is a 32-bit
/// integer compare instead of a Value variant compare.
using TermCode = uint32_t;

/// A dictionary-encoding term pool: interns Values once and hands out dense
/// 32-bit codes. One pool is shared by all batches of one plan execution;
/// decoding only happens at the row-Table conversion boundary.
class TermPool {
 public:
  /// Returns the code of `v`, interning it on first sight.
  TermCode Intern(const Value& v);

  const Value& Decode(TermCode code) const {
    LCP_CHECK_LT(static_cast<size_t>(code), values_.size());
    return values_[code];
  }

  size_t size() const { return values_.size(); }

 private:
  std::unordered_map<Value, TermCode, ValueHash> codes_;
  std::vector<Value> values_;
};

/// A columnar batch: named attributes over fixed-width TermCode vectors,
/// plus an optional selection vector. Columns are shared (copy-on-write by
/// convention: a materialized column is never mutated), so projection and
/// rename are O(#columns) pointer shuffles and selection is a new index
/// vector over the same storage.
///
/// Row order is part of the contract: live rows enumerate in a canonical
/// first-appearance order that mirrors the row engine's insertion order,
/// which is what makes the vectorized engine bit-identical to the row
/// oracle (same tables, same binding sequences — see DESIGN.md §9).
class ColumnBatch {
 public:
  using Column = std::shared_ptr<const std::vector<TermCode>>;

  ColumnBatch() = default;

  /// A batch with the given attributes and no rows (columns start empty).
  explicit ColumnBatch(std::vector<std::string> attrs);

  /// Builds a dense batch (no selection vector) from materialized columns.
  /// All columns must have length `num_rows`; a nullary batch (no columns)
  /// carries `num_rows` explicitly.
  static ColumnBatch FromDense(std::vector<std::string> attrs,
                               std::vector<std::vector<TermCode>> columns,
                               size_t num_rows);

  const std::vector<std::string>& attrs() const { return attrs_; }
  size_t num_attrs() const { return attrs_.size(); }

  /// Index of `attr` (first occurrence), or -1 if absent.
  int AttrIndex(const std::string& attr) const;

  /// Number of live rows (selection applied).
  size_t num_rows() const {
    return has_selection_ ? selection_.size() : physical_rows_;
  }
  bool empty() const { return num_rows() == 0; }
  bool has_selection() const { return has_selection_; }

  /// Code of live row `i` in column `col`.
  TermCode At(size_t col, size_t i) const {
    return (*columns_[col])[has_selection_ ? selection_[i] : i];
  }

  /// Restricts the batch to the live rows listed in `live` (indices into
  /// the current live enumeration, in the order they should survive).
  /// Shares column storage.
  ColumnBatch Filtered(std::vector<uint32_t> live) const;

  /// Reorders/renames columns: output column j is this batch's column
  /// `cols[j]` under the name `attrs[j]`. Shares storage and selection.
  ColumnBatch WithColumns(std::vector<std::string> attrs,
                          const std::vector<int>& cols) const;

  /// Keeps the first occurrence of every distinct live row (set semantics),
  /// preserving first-appearance order. Shares column storage. When
  /// `dropped` is non-null it receives the number of duplicates removed.
  ColumnBatch Deduplicated(size_t* dropped = nullptr) const;

  /// Decodes into an attribute-named row Table (the conversion boundary to
  /// the planner/service world). Live rows only, in live order.
  Table ToTable(const TermPool& pool) const;

  /// Encodes a row Table (already duplicate-free) into a dense batch.
  static ColumnBatch FromTable(const Table& table, TermPool& pool);

 private:
  std::vector<std::string> attrs_;
  std::vector<Column> columns_;
  size_t physical_rows_ = 0;
  bool has_selection_ = false;
  /// Physical row ids of the live rows, in live order.
  std::vector<uint32_t> selection_;
};

/// Hash of one live row of a batch across the given columns (FNV-style over
/// the codes). Used by dedup, difference, and the access-binding dedup.
size_t HashBatchRow(const ColumnBatch& batch, const std::vector<int>& cols,
                    size_t i);

/// Flat chained hash index over precomputed row hashes: a power-of-two
/// bucket array of chain heads plus per-entry next links. Unlike
/// unordered_multimap there is no per-entry heap node, which is what makes
/// the batch join/dedup passes cheap. Bucket candidates may include rows
/// with different hashes; callers verify with a full key/row comparison.
class RowHashIndex {
 public:
  explicit RowHashIndex(size_t expected_entries) {
    size_t buckets = 8;
    while (buckets < expected_entries + (expected_entries >> 1)) {
      buckets <<= 1;
    }
    mask_ = buckets - 1;
    heads_.assign(buckets, kNil);
    entries_.reserve(expected_entries);
  }

  void Insert(size_t hash, uint32_t row) {
    const size_t b = hash & mask_;
    entries_.push_back(Entry{heads_[b], row});
    heads_[b] = static_cast<int32_t>(entries_.size() - 1);
  }

  /// Number of buckets (a power of two), for partitioning the parallel
  /// build into contiguous bucket ranges (DESIGN.md §13).
  size_t bucket_count() const { return heads_.size(); }

  /// Partitioned parallel build, phase 1: pre-sizes the entry array for a
  /// dense one-entry-per-row build of `rows` rows. After this the index is
  /// populated with FillBucketRange only — mixing in Insert would corrupt
  /// the dense layout.
  void PrepareDense(size_t rows) { entries_.assign(rows, Entry{kNil, 0}); }

  /// Partitioned parallel build, phase 2: links every row whose bucket
  /// (hashes[row] & mask) falls in [bucket_begin, bucket_end), scanning
  /// rows in ascending order. Reproduces the sequential
  /// Insert-in-row-order layout bit for bit: entry i describes row i, next
  /// points at the previous row of the bucket, the head is the bucket's
  /// last row. Disjoint bucket ranges write disjoint entries and heads, so
  /// partitions run concurrently without atomics.
  void FillBucketRange(const std::vector<size_t>& hashes, size_t bucket_begin,
                       size_t bucket_end) {
    for (size_t row = 0; row < hashes.size(); ++row) {
      const size_t b = hashes[row] & mask_;
      if (b < bucket_begin || b >= bucket_end) continue;
      entries_[row] = Entry{heads_[b], static_cast<uint32_t>(row)};
      heads_[b] = static_cast<int32_t>(row);
    }
  }

  /// Calls fn(row) for every candidate in `hash`'s bucket, most recent
  /// first, until fn returns true (found) or the chain ends.
  template <typename Fn>
  void ForEachCandidate(size_t hash, Fn&& fn) const {
    for (int32_t e = heads_[hash & mask_]; e != kNil; e = entries_[e].next) {
      if (fn(entries_[e].row)) return;
    }
  }

 private:
  static constexpr int32_t kNil = -1;
  struct Entry {
    int32_t next;
    uint32_t row;
  };
  size_t mask_ = 0;
  std::vector<int32_t> heads_;
  std::vector<Entry> entries_;
};

}  // namespace lcp

#endif  // LCP_RA_BATCH_H_
