#include "lcp/ra/vector_eval.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "lcp/base/strings.h"

namespace lcp {

namespace {

/// Records one operator's output batch in the stats (no-op without stats).
void NoteBatch(ExecStats* stats, size_t rows_in, const ColumnBatch& out) {
  if (stats == nullptr) return;
  ++stats->batches;
  stats->rows_in += rows_in;
  stats->rows_out += out.num_rows();
  stats->max_batch_rows = std::max(stats->max_batch_rows, out.num_rows());
}

/// True if live rows `a` and `b` agree on every column.
bool LiveRowsEqual(const ColumnBatch& batch, size_t a, size_t b) {
  for (size_t c = 0; c < batch.num_attrs(); ++c) {
    if (batch.At(c, a) != batch.At(c, b)) return false;
  }
  return true;
}

/// Builds `index` over the `rn` rows of `batch` keyed by `cols`: the
/// partitioned parallel build for large batches (hash pass over morsels,
/// then one contiguous bucket range per partition owner — see
/// RowHashIndex::FillBucketRange), the sequential insert-in-row-order loop
/// otherwise. Both produce bit-identical bucket/entry layouts.
void BuildRowIndex(const ColumnBatch& batch, const std::vector<int>& cols,
                   size_t rn, RowHashIndex& index, const MorselContext* ctx,
                   ExecStats* stats) {
  if (ctx != nullptr && ctx->Parallel(rn)) {
    std::vector<size_t> hashes(rn);
    const size_t morsels =
        ParallelMorsels(*ctx, rn, [&](size_t, size_t begin, size_t end) {
          for (size_t r = begin; r < end; ++r) {
            hashes[r] = HashBatchRow(batch, cols, r);
          }
        });
    index.PrepareDense(rn);
    const size_t buckets = index.bucket_count();
    const size_t parts = std::min<size_t>(
        static_cast<size_t>(ctx->scheduler->num_workers()), buckets);
    ctx->scheduler->ParallelFor(parts, [&](size_t p) {
      if (ctx->Cancelled()) return;
      index.FillBucketRange(hashes, buckets * p / parts,
                            buckets * (p + 1) / parts);
    });
    if (stats != nullptr) {
      stats->morsels += morsels;
      stats->parallel_build_partitions += parts;
    }
  } else {
    for (size_t r = 0; r < rn; ++r) {
      index.Insert(HashBatchRow(batch, cols, r), static_cast<uint32_t>(r));
    }
  }
}

/// Concatenates per-morsel index lists in morsel order (= row order).
std::vector<uint32_t> ConcatParts(std::vector<std::vector<uint32_t>> parts,
                                  size_t reserve_hint) {
  std::vector<uint32_t> out;
  out.reserve(reserve_hint);
  for (std::vector<uint32_t>& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Result<ColumnBatch> EvalProject(const ColumnBatch& input,
                                const std::vector<std::string>& attrs,
                                const MorselContext* ctx, ExecStats* stats) {
  std::vector<int> indexes;
  indexes.reserve(attrs.size());
  for (const std::string& attr : attrs) {
    int idx = input.AttrIndex(attr);
    if (idx < 0) {
      return InvalidArgumentError(
          StrCat("project: attribute ", attr, " not found"));
    }
    indexes.push_back(idx);
  }
  ColumnBatch out = input.WithColumns(attrs, indexes);
  // A projection that keeps every distinct column of the input cannot
  // introduce duplicates; anything narrower needs a dedup pass.
  std::unordered_set<int> kept(indexes.begin(), indexes.end());
  if (kept.size() < input.num_attrs()) {
    size_t dropped = 0;
    out = DeduplicatedMorsel(out, ctx, stats, &dropped);
    if (stats != nullptr) stats->dedup_drops += dropped;
  }
  NoteBatch(stats, input.num_rows(), out);
  return out;
}

Result<ColumnBatch> EvalSelect(const ColumnBatch& input,
                               const std::vector<RaExpr::Condition>& conditions,
                               TermPool& pool, const MorselContext* ctx,
                               ExecStats* stats) {
  struct ResolvedCondition {
    bool attr_eq_attr;
    int lhs;
    int rhs;
    TermCode constant;
  };
  std::vector<ResolvedCondition> resolved;
  resolved.reserve(conditions.size());
  for (const RaExpr::Condition& c : conditions) {
    ResolvedCondition r;
    r.lhs = input.AttrIndex(c.lhs);
    if (r.lhs < 0) {
      return InvalidArgumentError(
          StrCat("select: attribute ", c.lhs, " not found"));
    }
    if (c.kind == RaExpr::Condition::Kind::kAttrEqAttr) {
      r.attr_eq_attr = true;
      r.rhs = input.AttrIndex(c.rhs_attr);
      if (r.rhs < 0) {
        return InvalidArgumentError(
            StrCat("select: attribute ", c.rhs_attr, " not found"));
      }
      r.constant = 0;
    } else {
      r.attr_eq_attr = false;
      r.rhs = -1;
      // Interning the test constant is how an unseen constant stays sound:
      // its fresh code matches no data code.
      r.constant = pool.Intern(c.rhs_const);
    }
    resolved.push_back(r);
  }
  const size_t n = input.num_rows();
  auto row_passes = [&](size_t i) {
    for (const ResolvedCondition& r : resolved) {
      const TermCode lhs = input.At(static_cast<size_t>(r.lhs), i);
      const TermCode rhs = r.attr_eq_attr
                               ? input.At(static_cast<size_t>(r.rhs), i)
                               : r.constant;
      if (lhs != rhs) return false;
    }
    return true;
  };
  std::vector<uint32_t> live;
  if (ctx != nullptr && ctx->Parallel(n)) {
    // Per-morsel survivor lists, concatenated in morsel order so the live
    // list is the same ascending row list the sequential scan produces.
    const size_t mr = ctx->morsel_rows;
    std::vector<std::vector<uint32_t>> parts((n + mr - 1) / mr);
    const size_t morsels =
        ParallelMorsels(*ctx, n, [&](size_t m, size_t begin, size_t end) {
          std::vector<uint32_t>& part = parts[m];
          part.reserve(end - begin);
          for (size_t i = begin; i < end; ++i) {
            if (row_passes(i)) part.push_back(static_cast<uint32_t>(i));
          }
        });
    if (stats != nullptr) stats->morsels += morsels;
    live = ConcatParts(std::move(parts), n);
  } else {
    live.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (row_passes(i)) live.push_back(static_cast<uint32_t>(i));
    }
  }
  ColumnBatch out = live.size() == n ? input : input.Filtered(std::move(live));
  NoteBatch(stats, n, out);
  return out;
}

/// Build/probe hash join on the shared attribute names; degenerates to a
/// cross product when none are shared (as natural join should). Builds on
/// the right, probes the left in live order, and emits matches in right
/// insertion order — the row evaluator's emission order exactly.
Result<ColumnBatch> EvalJoin(const ColumnBatch& left, const ColumnBatch& right,
                             const MorselContext* ctx, ExecStats* stats) {
  std::vector<int> shared_left;   // key columns on the left
  std::vector<int> shared_right;  // key columns on the right
  std::vector<int> right_extra;   // right attrs not in left
  for (size_t j = 0; j < right.attrs().size(); ++j) {
    int li = left.AttrIndex(right.attrs()[j]);
    if (li >= 0) {
      shared_left.push_back(li);
      shared_right.push_back(static_cast<int>(j));
    } else {
      right_extra.push_back(static_cast<int>(j));
    }
  }

  const size_t ln = left.num_rows();
  const size_t rn = right.num_rows();

  // Build side: right rows bucketed by key hash (flat chained index;
  // candidates are verified code-by-code, so hash collisions cost time,
  // never rows). Large build sides go through the partitioned parallel
  // build, which reproduces the sequential layout bit for bit.
  RowHashIndex index(rn);
  BuildRowIndex(right, shared_right, rn, index, ctx, stats);

  auto keys_match = [&](size_t l, size_t r) {
    for (size_t k = 0; k < shared_left.size(); ++k) {
      if (left.At(static_cast<size_t>(shared_left[k]), l) !=
          right.At(static_cast<size_t>(shared_right[k]), r)) {
        return false;
      }
    }
    return true;
  };

  // Probe: gather matching (left, right) live-row index pairs. Matches for
  // one probe key must come out in right insertion order; the multimap does
  // not guarantee that, so bucket candidates are collected and sorted (the
  // candidate list for one key is typically tiny). Parallel probes keep
  // per-morsel pair lists and concatenate them in morsel order — the exact
  // sequential emission order.
  std::vector<uint32_t> l_idx;
  std::vector<uint32_t> r_idx;
  auto probe_row = [&](size_t l, std::vector<uint32_t>& candidates,
                       std::vector<uint32_t>& ls, std::vector<uint32_t>& rs) {
    const size_t h = HashBatchRow(left, shared_left, l);
    candidates.clear();
    index.ForEachCandidate(h, [&](uint32_t r) {
      if (keys_match(l, r)) candidates.push_back(r);
      return false;  // collect every match in the bucket
    });
    std::sort(candidates.begin(), candidates.end());
    for (uint32_t r : candidates) {
      ls.push_back(static_cast<uint32_t>(l));
      rs.push_back(r);
    }
  };
  if (ctx != nullptr && ctx->Parallel(ln)) {
    const size_t mr = ctx->morsel_rows;
    const size_t count = (ln + mr - 1) / mr;
    std::vector<std::vector<uint32_t>> lparts(count);
    std::vector<std::vector<uint32_t>> rparts(count);
    const size_t morsels =
        ParallelMorsels(*ctx, ln, [&](size_t m, size_t begin, size_t end) {
          std::vector<uint32_t> candidates;
          for (size_t l = begin; l < end; ++l) {
            probe_row(l, candidates, lparts[m], rparts[m]);
          }
        });
    if (stats != nullptr) stats->morsels += morsels;
    l_idx = ConcatParts(std::move(lparts), ln);
    r_idx = ConcatParts(std::move(rparts), ln);
  } else {
    std::vector<uint32_t> candidates;
    for (size_t l = 0; l < ln; ++l) {
      probe_row(l, candidates, l_idx, r_idx);
    }
  }
  if (stats != nullptr) stats->probe_hits += l_idx.size();

  // Materialize the output: left columns then right extras, gathered.
  std::vector<std::string> out_attrs = left.attrs();
  for (int j : right_extra) out_attrs.push_back(right.attrs()[j]);
  std::vector<std::vector<TermCode>> out_cols(out_attrs.size());
  const size_t out_n = l_idx.size();
  if (ctx != nullptr && ctx->Parallel(out_n)) {
    for (auto& col : out_cols) col.assign(out_n, 0);
    const size_t morsels =
        ParallelMorsels(*ctx, out_n, [&](size_t, size_t begin, size_t end) {
          for (size_t c = 0; c < left.num_attrs(); ++c) {
            for (size_t i = begin; i < end; ++i) {
              out_cols[c][i] = left.At(c, l_idx[i]);
            }
          }
          for (size_t e = 0; e < right_extra.size(); ++e) {
            const size_t c = static_cast<size_t>(right_extra[e]);
            for (size_t i = begin; i < end; ++i) {
              out_cols[left.num_attrs() + e][i] = right.At(c, r_idx[i]);
            }
          }
        });
    if (stats != nullptr) stats->morsels += morsels;
  } else {
    for (auto& col : out_cols) col.reserve(out_n);
    for (size_t c = 0; c < left.num_attrs(); ++c) {
      for (size_t i = 0; i < out_n; ++i) {
        out_cols[c].push_back(left.At(c, l_idx[i]));
      }
    }
    for (size_t e = 0; e < right_extra.size(); ++e) {
      const size_t c = static_cast<size_t>(right_extra[e]);
      for (size_t i = 0; i < out_n; ++i) {
        out_cols[left.num_attrs() + e].push_back(right.At(c, r_idx[i]));
      }
    }
  }
  ColumnBatch out =
      ColumnBatch::FromDense(std::move(out_attrs), std::move(out_cols), out_n);
  // Joining two duplicate-free inputs cannot create duplicates: the output
  // row determines its (left row, right row) pair, so no dedup pass here.
  NoteBatch(stats, ln + rn, out);
  return out;
}

/// Returns the permutation mapping `from` attribute order to `to`, or an
/// error if the attribute sets differ (same contract as the row engine).
Result<std::vector<int>> AlignAttrs(const std::vector<std::string>& to,
                                    const ColumnBatch& from) {
  if (to.size() != from.attrs().size()) {
    return InvalidArgumentError("union/difference: attribute sets differ");
  }
  std::vector<int> perm;
  perm.reserve(to.size());
  for (const std::string& attr : to) {
    int idx = from.AttrIndex(attr);
    if (idx < 0) {
      return InvalidArgumentError(
          StrCat("union/difference: attribute ", attr, " missing"));
    }
    perm.push_back(idx);
  }
  return perm;
}

Result<ColumnBatch> EvalUnion(const ColumnBatch& left, const ColumnBatch& right,
                              const MorselContext* ctx, ExecStats* stats) {
  LCP_ASSIGN_OR_RETURN(std::vector<int> perm, AlignAttrs(left.attrs(), right));
  const size_t ln = left.num_rows();
  const size_t rn = right.num_rows();
  std::vector<std::vector<TermCode>> cols(left.num_attrs());
  if (ctx != nullptr && ctx->Parallel(ln + rn)) {
    for (auto& col : cols) col.assign(ln + rn, 0);
    const size_t morsels =
        ParallelMorsels(*ctx, ln + rn, [&](size_t, size_t begin, size_t end) {
          for (size_t c = 0; c < left.num_attrs(); ++c) {
            const size_t rc = static_cast<size_t>(perm[c]);
            for (size_t i = begin; i < end; ++i) {
              cols[c][i] = i < ln ? left.At(c, i) : right.At(rc, i - ln);
            }
          }
        });
    if (stats != nullptr) stats->morsels += morsels;
  } else {
    for (size_t c = 0; c < left.num_attrs(); ++c) {
      cols[c].reserve(ln + rn);
      for (size_t i = 0; i < ln; ++i) cols[c].push_back(left.At(c, i));
      const size_t rc = static_cast<size_t>(perm[c]);
      for (size_t i = 0; i < rn; ++i) cols[c].push_back(right.At(rc, i));
    }
  }
  size_t dropped = 0;
  ColumnBatch out = DeduplicatedMorsel(
      ColumnBatch::FromDense(left.attrs(), std::move(cols), ln + rn), ctx,
      stats, &dropped);
  if (stats != nullptr) stats->dedup_drops += dropped;
  NoteBatch(stats, ln + rn, out);
  return out;
}

Result<ColumnBatch> EvalDifference(const ColumnBatch& left,
                                   const ColumnBatch& right,
                                   const MorselContext* ctx,
                                   ExecStats* stats) {
  LCP_ASSIGN_OR_RETURN(std::vector<int> perm, AlignAttrs(left.attrs(), right));
  const size_t rn = right.num_rows();
  RowHashIndex negatives(rn);
  BuildRowIndex(right, perm, rn, negatives, ctx, stats);
  std::vector<int> left_cols(left.num_attrs());
  for (size_t c = 0; c < left.num_attrs(); ++c) {
    left_cols[c] = static_cast<int>(c);
  }
  auto in_right = [&](size_t l) {
    const size_t h = HashBatchRow(left, left_cols, l);
    bool found = false;
    negatives.ForEachCandidate(h, [&](uint32_t r) {
      bool equal = true;
      for (size_t c = 0; c < left.num_attrs(); ++c) {
        if (left.At(c, l) != right.At(static_cast<size_t>(perm[c]), r)) {
          equal = false;
          break;
        }
      }
      found = equal;
      return equal;
    });
    return found;
  };
  const size_t ln = left.num_rows();
  std::vector<uint32_t> live;
  if (ctx != nullptr && ctx->Parallel(ln)) {
    const size_t mr = ctx->morsel_rows;
    std::vector<std::vector<uint32_t>> parts((ln + mr - 1) / mr);
    const size_t morsels =
        ParallelMorsels(*ctx, ln, [&](size_t m, size_t begin, size_t end) {
          std::vector<uint32_t>& part = parts[m];
          for (size_t l = begin; l < end; ++l) {
            if (!in_right(l)) part.push_back(static_cast<uint32_t>(l));
          }
        });
    if (stats != nullptr) stats->morsels += morsels;
    live = ConcatParts(std::move(parts), ln);
  } else {
    live.reserve(ln);
    for (size_t l = 0; l < ln; ++l) {
      if (!in_right(l)) live.push_back(static_cast<uint32_t>(l));
    }
  }
  ColumnBatch out = live.size() == ln ? left : left.Filtered(std::move(live));
  // A duplicate-free left stays duplicate-free under filtering; only the
  // nullary case needs collapsing to set semantics.
  if (left.num_attrs() == 0) out = out.Deduplicated();
  NoteBatch(stats, ln + rn, out);
  return out;
}

Result<ColumnBatch> EvalRename(
    const ColumnBatch& child,
    const std::vector<std::pair<std::string, std::string>>& renames,
    ExecStats* stats) {
  std::vector<std::string> attrs = child.attrs();
  for (const auto& [from, to] : renames) {
    int idx = child.AttrIndex(from);
    if (idx < 0) {
      return InvalidArgumentError(
          StrCat("rename: attribute ", from, " not found"));
    }
    attrs[idx] = to;
  }
  std::vector<int> identity(child.num_attrs());
  for (size_t c = 0; c < child.num_attrs(); ++c) {
    identity[c] = static_cast<int>(c);
  }
  ColumnBatch out = child.WithColumns(std::move(attrs), identity);
  NoteBatch(stats, child.num_rows(), out);
  return out;
}

}  // namespace

ColumnBatch DeduplicatedMorsel(const ColumnBatch& batch,
                               const MorselContext* ctx, ExecStats* stats,
                               size_t* dropped) {
  const size_t n = batch.num_rows();
  if (ctx == nullptr || !ctx->Parallel(n) || batch.num_attrs() == 0 ||
      ctx->scheduler->num_workers() < 2) {
    return batch.Deduplicated(dropped);
  }
  std::vector<int> all_cols(batch.num_attrs());
  for (size_t c = 0; c < batch.num_attrs(); ++c) {
    all_cols[c] = static_cast<int>(c);
  }
  // Phase 1: row hashes, morsel-parallel.
  std::vector<size_t> hashes(n);
  const size_t morsels =
      ParallelMorsels(*ctx, n, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hashes[i] = HashBatchRow(batch, all_cols, i);
        }
      });
  // Phase 2: hash-partitioned first-occurrence scan. Each of the
  // (power-of-two, >= workers) partition owners scans all rows in global
  // order, handles only rows whose mixed hash lands in its partition, and
  // flags survivors. Equal rows share a hash, hence a partition, so the
  // keep flags equal the sequential pass's; distinct partitions write
  // distinct keep bytes, so no atomics are needed. The partition selector
  // uses the hash's high multiplied bits while the per-partition index
  // buckets use its low bits, keeping local chains short.
  size_t partitions = 2;
  while (partitions < static_cast<size_t>(ctx->scheduler->num_workers())) {
    partitions <<= 1;
  }
  int bits = 1;
  while ((static_cast<size_t>(1) << bits) < partitions) ++bits;
  const int shift = 64 - bits;
  std::vector<uint8_t> keep(n, 0);
  ctx->scheduler->ParallelFor(partitions, [&](size_t part) {
    if (ctx->Cancelled()) return;
    RowHashIndex local(n / partitions + 8);
    for (size_t i = 0; i < n; ++i) {
      const size_t h = hashes[i];
      if ((h * 0x9e3779b97f4a7c15ULL) >> shift != part) continue;
      bool dup = false;
      local.ForEachCandidate(h, [&](uint32_t kept_row) {
        dup = LiveRowsEqual(batch, kept_row, i);
        return dup;
      });
      if (dup) continue;
      local.Insert(h, static_cast<uint32_t>(i));
      keep[i] = 1;
    }
  });
  if (stats != nullptr) {
    stats->morsels += morsels;
    stats->parallel_build_partitions += partitions;
  }
  // Phase 3: the live list in ascending row order = first-appearance order.
  std::vector<uint32_t> live;
  live.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (keep[i] != 0) live.push_back(static_cast<uint32_t>(i));
  }
  if (dropped != nullptr) *dropped = n - live.size();
  if (live.size() == n) return batch;
  return batch.Filtered(std::move(live));
}

Result<ColumnBatch> EvaluateRaVectorized(const RaExpr& expr,
                                         const BatchEnv& env, TermPool& pool,
                                         ExecStats* stats,
                                         const MorselContext* morsels) {
  // Morsel-boundary cancellation: once the token trips, in-flight morsels
  // become no-ops and the whole evaluation unwinds here rather than
  // returning a partially-built batch.
  if (morsels != nullptr && morsels->Cancelled()) {
    return Status(morsels->cancel->code(),
                  "plan execution cancelled at morsel boundary");
  }
  switch (expr.op()) {
    case RaExpr::Op::kTempScan: {
      auto it = env.find(expr.table());
      if (it == env.end()) {
        return NotFoundError(StrCat("no temporary table ", expr.table()));
      }
      return it->second;
    }
    case RaExpr::Op::kSingleton: {
      return ColumnBatch::FromDense({}, {}, 1);
    }
    case RaExpr::Op::kProject: {
      LCP_ASSIGN_OR_RETURN(ColumnBatch child,
                           EvaluateRaVectorized(*expr.children()[0], env, pool,
                                                stats, morsels));
      return EvalProject(child, expr.attrs(), morsels, stats);
    }
    case RaExpr::Op::kSelect: {
      LCP_ASSIGN_OR_RETURN(ColumnBatch child,
                           EvaluateRaVectorized(*expr.children()[0], env, pool,
                                                stats, morsels));
      return EvalSelect(child, expr.conditions(), pool, morsels, stats);
    }
    case RaExpr::Op::kJoin: {
      LCP_ASSIGN_OR_RETURN(ColumnBatch left,
                           EvaluateRaVectorized(*expr.children()[0], env, pool,
                                                stats, morsels));
      LCP_ASSIGN_OR_RETURN(ColumnBatch right,
                           EvaluateRaVectorized(*expr.children()[1], env, pool,
                                                stats, morsels));
      return EvalJoin(left, right, morsels, stats);
    }
    case RaExpr::Op::kUnion: {
      LCP_ASSIGN_OR_RETURN(ColumnBatch left,
                           EvaluateRaVectorized(*expr.children()[0], env, pool,
                                                stats, morsels));
      LCP_ASSIGN_OR_RETURN(ColumnBatch right,
                           EvaluateRaVectorized(*expr.children()[1], env, pool,
                                                stats, morsels));
      return EvalUnion(left, right, morsels, stats);
    }
    case RaExpr::Op::kDifference: {
      LCP_ASSIGN_OR_RETURN(ColumnBatch left,
                           EvaluateRaVectorized(*expr.children()[0], env, pool,
                                                stats, morsels));
      LCP_ASSIGN_OR_RETURN(ColumnBatch right,
                           EvaluateRaVectorized(*expr.children()[1], env, pool,
                                                stats, morsels));
      return EvalDifference(left, right, morsels, stats);
    }
    case RaExpr::Op::kRename: {
      LCP_ASSIGN_OR_RETURN(ColumnBatch child,
                           EvaluateRaVectorized(*expr.children()[0], env, pool,
                                                stats, morsels));
      return EvalRename(child, expr.renames(), stats);
    }
  }
  return InternalError("unreachable RA op");
}

}  // namespace lcp
