#include "lcp/ra/vector_eval.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "lcp/base/strings.h"

namespace lcp {

namespace {

/// Records one operator's output batch in the stats (no-op without stats).
void NoteBatch(ExecStats* stats, size_t rows_in, const ColumnBatch& out) {
  if (stats == nullptr) return;
  ++stats->batches;
  stats->rows_in += rows_in;
  stats->rows_out += out.num_rows();
  stats->max_batch_rows = std::max(stats->max_batch_rows, out.num_rows());
}

Result<ColumnBatch> EvalProject(const ColumnBatch& input,
                                const std::vector<std::string>& attrs,
                                ExecStats* stats) {
  std::vector<int> indexes;
  indexes.reserve(attrs.size());
  for (const std::string& attr : attrs) {
    int idx = input.AttrIndex(attr);
    if (idx < 0) {
      return InvalidArgumentError(
          StrCat("project: attribute ", attr, " not found"));
    }
    indexes.push_back(idx);
  }
  ColumnBatch out = input.WithColumns(attrs, indexes);
  // A projection that keeps every distinct column of the input cannot
  // introduce duplicates; anything narrower needs a dedup pass.
  std::unordered_set<int> kept(indexes.begin(), indexes.end());
  if (kept.size() < input.num_attrs()) {
    size_t dropped = 0;
    out = out.Deduplicated(&dropped);
    if (stats != nullptr) stats->dedup_drops += dropped;
  }
  NoteBatch(stats, input.num_rows(), out);
  return out;
}

Result<ColumnBatch> EvalSelect(const ColumnBatch& input,
                               const std::vector<RaExpr::Condition>& conditions,
                               TermPool& pool, ExecStats* stats) {
  struct ResolvedCondition {
    bool attr_eq_attr;
    int lhs;
    int rhs;
    TermCode constant;
  };
  std::vector<ResolvedCondition> resolved;
  resolved.reserve(conditions.size());
  for (const RaExpr::Condition& c : conditions) {
    ResolvedCondition r;
    r.lhs = input.AttrIndex(c.lhs);
    if (r.lhs < 0) {
      return InvalidArgumentError(
          StrCat("select: attribute ", c.lhs, " not found"));
    }
    if (c.kind == RaExpr::Condition::Kind::kAttrEqAttr) {
      r.attr_eq_attr = true;
      r.rhs = input.AttrIndex(c.rhs_attr);
      if (r.rhs < 0) {
        return InvalidArgumentError(
            StrCat("select: attribute ", c.rhs_attr, " not found"));
      }
      r.constant = 0;
    } else {
      r.attr_eq_attr = false;
      r.rhs = -1;
      // Interning the test constant is how an unseen constant stays sound:
      // its fresh code matches no data code.
      r.constant = pool.Intern(c.rhs_const);
    }
    resolved.push_back(r);
  }
  const size_t n = input.num_rows();
  std::vector<uint32_t> live;
  live.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bool keep = true;
    for (const ResolvedCondition& r : resolved) {
      const TermCode lhs = input.At(static_cast<size_t>(r.lhs), i);
      const TermCode rhs = r.attr_eq_attr
                               ? input.At(static_cast<size_t>(r.rhs), i)
                               : r.constant;
      if (lhs != rhs) {
        keep = false;
        break;
      }
    }
    if (keep) live.push_back(static_cast<uint32_t>(i));
  }
  ColumnBatch out = live.size() == n ? input : input.Filtered(std::move(live));
  NoteBatch(stats, n, out);
  return out;
}

/// Build/probe hash join on the shared attribute names; degenerates to a
/// cross product when none are shared (as natural join should). Builds on
/// the right, probes the left in live order, and emits matches in right
/// insertion order — the row evaluator's emission order exactly.
Result<ColumnBatch> EvalJoin(const ColumnBatch& left, const ColumnBatch& right,
                             ExecStats* stats) {
  std::vector<int> shared_left;   // key columns on the left
  std::vector<int> shared_right;  // key columns on the right
  std::vector<int> right_extra;   // right attrs not in left
  for (size_t j = 0; j < right.attrs().size(); ++j) {
    int li = left.AttrIndex(right.attrs()[j]);
    if (li >= 0) {
      shared_left.push_back(li);
      shared_right.push_back(static_cast<int>(j));
    } else {
      right_extra.push_back(static_cast<int>(j));
    }
  }

  const size_t ln = left.num_rows();
  const size_t rn = right.num_rows();

  // Build side: right rows bucketed by key hash (flat chained index;
  // candidates are verified code-by-code, so hash collisions cost time,
  // never rows).
  RowHashIndex index(rn);
  for (size_t r = 0; r < rn; ++r) {
    index.Insert(HashBatchRow(right, shared_right, r),
                 static_cast<uint32_t>(r));
  }

  auto keys_match = [&](size_t l, size_t r) {
    for (size_t k = 0; k < shared_left.size(); ++k) {
      if (left.At(static_cast<size_t>(shared_left[k]), l) !=
          right.At(static_cast<size_t>(shared_right[k]), r)) {
        return false;
      }
    }
    return true;
  };

  // Probe: gather matching (left, right) live-row index pairs. Matches for
  // one probe key must come out in right insertion order; the multimap does
  // not guarantee that, so bucket candidates are collected and sorted (the
  // candidate list for one key is typically tiny).
  std::vector<uint32_t> l_idx;
  std::vector<uint32_t> r_idx;
  std::vector<uint32_t> candidates;
  for (size_t l = 0; l < ln; ++l) {
    const size_t h = HashBatchRow(left, shared_left, l);
    candidates.clear();
    index.ForEachCandidate(h, [&](uint32_t r) {
      if (keys_match(l, r)) candidates.push_back(r);
      return false;  // collect every match in the bucket
    });
    std::sort(candidates.begin(), candidates.end());
    for (uint32_t r : candidates) {
      l_idx.push_back(static_cast<uint32_t>(l));
      r_idx.push_back(r);
    }
  }
  if (stats != nullptr) stats->probe_hits += l_idx.size();

  // Materialize the output: left columns then right extras, gathered.
  std::vector<std::string> out_attrs = left.attrs();
  for (int j : right_extra) out_attrs.push_back(right.attrs()[j]);
  std::vector<std::vector<TermCode>> out_cols(out_attrs.size());
  const size_t out_n = l_idx.size();
  for (auto& col : out_cols) col.reserve(out_n);
  for (size_t c = 0; c < left.num_attrs(); ++c) {
    for (size_t i = 0; i < out_n; ++i) {
      out_cols[c].push_back(left.At(c, l_idx[i]));
    }
  }
  for (size_t e = 0; e < right_extra.size(); ++e) {
    const size_t c = static_cast<size_t>(right_extra[e]);
    for (size_t i = 0; i < out_n; ++i) {
      out_cols[left.num_attrs() + e].push_back(right.At(c, r_idx[i]));
    }
  }
  ColumnBatch out =
      ColumnBatch::FromDense(std::move(out_attrs), std::move(out_cols), out_n);
  // Joining two duplicate-free inputs cannot create duplicates: the output
  // row determines its (left row, right row) pair, so no dedup pass here.
  NoteBatch(stats, ln + rn, out);
  return out;
}

/// Returns the permutation mapping `from` attribute order to `to`, or an
/// error if the attribute sets differ (same contract as the row engine).
Result<std::vector<int>> AlignAttrs(const std::vector<std::string>& to,
                                    const ColumnBatch& from) {
  if (to.size() != from.attrs().size()) {
    return InvalidArgumentError("union/difference: attribute sets differ");
  }
  std::vector<int> perm;
  perm.reserve(to.size());
  for (const std::string& attr : to) {
    int idx = from.AttrIndex(attr);
    if (idx < 0) {
      return InvalidArgumentError(
          StrCat("union/difference: attribute ", attr, " missing"));
    }
    perm.push_back(idx);
  }
  return perm;
}

Result<ColumnBatch> EvalUnion(const ColumnBatch& left, const ColumnBatch& right,
                              ExecStats* stats) {
  LCP_ASSIGN_OR_RETURN(std::vector<int> perm, AlignAttrs(left.attrs(), right));
  const size_t ln = left.num_rows();
  const size_t rn = right.num_rows();
  std::vector<std::vector<TermCode>> cols(left.num_attrs());
  for (size_t c = 0; c < left.num_attrs(); ++c) {
    cols[c].reserve(ln + rn);
    for (size_t i = 0; i < ln; ++i) cols[c].push_back(left.At(c, i));
    const size_t rc = static_cast<size_t>(perm[c]);
    for (size_t i = 0; i < rn; ++i) cols[c].push_back(right.At(rc, i));
  }
  size_t dropped = 0;
  ColumnBatch out =
      ColumnBatch::FromDense(left.attrs(), std::move(cols), ln + rn)
          .Deduplicated(&dropped);
  if (stats != nullptr) stats->dedup_drops += dropped;
  NoteBatch(stats, ln + rn, out);
  return out;
}

Result<ColumnBatch> EvalDifference(const ColumnBatch& left,
                                   const ColumnBatch& right,
                                   ExecStats* stats) {
  LCP_ASSIGN_OR_RETURN(std::vector<int> perm, AlignAttrs(left.attrs(), right));
  const size_t rn = right.num_rows();
  RowHashIndex negatives(rn);
  for (size_t r = 0; r < rn; ++r) {
    negatives.Insert(HashBatchRow(right, perm, r), static_cast<uint32_t>(r));
  }
  std::vector<int> left_cols(left.num_attrs());
  for (size_t c = 0; c < left.num_attrs(); ++c) {
    left_cols[c] = static_cast<int>(c);
  }
  auto in_right = [&](size_t l) {
    const size_t h = HashBatchRow(left, left_cols, l);
    bool found = false;
    negatives.ForEachCandidate(h, [&](uint32_t r) {
      bool equal = true;
      for (size_t c = 0; c < left.num_attrs(); ++c) {
        if (left.At(c, l) != right.At(static_cast<size_t>(perm[c]), r)) {
          equal = false;
          break;
        }
      }
      found = equal;
      return equal;
    });
    return found;
  };
  const size_t ln = left.num_rows();
  std::vector<uint32_t> live;
  live.reserve(ln);
  for (size_t l = 0; l < ln; ++l) {
    if (!in_right(l)) live.push_back(static_cast<uint32_t>(l));
  }
  ColumnBatch out = live.size() == ln ? left : left.Filtered(std::move(live));
  // A duplicate-free left stays duplicate-free under filtering; only the
  // nullary case needs collapsing to set semantics.
  if (left.num_attrs() == 0) out = out.Deduplicated();
  NoteBatch(stats, ln + rn, out);
  return out;
}

Result<ColumnBatch> EvalRename(
    const ColumnBatch& child,
    const std::vector<std::pair<std::string, std::string>>& renames,
    ExecStats* stats) {
  std::vector<std::string> attrs = child.attrs();
  for (const auto& [from, to] : renames) {
    int idx = child.AttrIndex(from);
    if (idx < 0) {
      return InvalidArgumentError(
          StrCat("rename: attribute ", from, " not found"));
    }
    attrs[idx] = to;
  }
  std::vector<int> identity(child.num_attrs());
  for (size_t c = 0; c < child.num_attrs(); ++c) {
    identity[c] = static_cast<int>(c);
  }
  ColumnBatch out = child.WithColumns(std::move(attrs), identity);
  NoteBatch(stats, child.num_rows(), out);
  return out;
}

}  // namespace

Result<ColumnBatch> EvaluateRaVectorized(const RaExpr& expr,
                                         const BatchEnv& env, TermPool& pool,
                                         ExecStats* stats) {
  switch (expr.op()) {
    case RaExpr::Op::kTempScan: {
      auto it = env.find(expr.table());
      if (it == env.end()) {
        return NotFoundError(StrCat("no temporary table ", expr.table()));
      }
      return it->second;
    }
    case RaExpr::Op::kSingleton: {
      return ColumnBatch::FromDense({}, {}, 1);
    }
    case RaExpr::Op::kProject: {
      LCP_ASSIGN_OR_RETURN(
          ColumnBatch child,
          EvaluateRaVectorized(*expr.children()[0], env, pool, stats));
      return EvalProject(child, expr.attrs(), stats);
    }
    case RaExpr::Op::kSelect: {
      LCP_ASSIGN_OR_RETURN(
          ColumnBatch child,
          EvaluateRaVectorized(*expr.children()[0], env, pool, stats));
      return EvalSelect(child, expr.conditions(), pool, stats);
    }
    case RaExpr::Op::kJoin: {
      LCP_ASSIGN_OR_RETURN(
          ColumnBatch left,
          EvaluateRaVectorized(*expr.children()[0], env, pool, stats));
      LCP_ASSIGN_OR_RETURN(
          ColumnBatch right,
          EvaluateRaVectorized(*expr.children()[1], env, pool, stats));
      return EvalJoin(left, right, stats);
    }
    case RaExpr::Op::kUnion: {
      LCP_ASSIGN_OR_RETURN(
          ColumnBatch left,
          EvaluateRaVectorized(*expr.children()[0], env, pool, stats));
      LCP_ASSIGN_OR_RETURN(
          ColumnBatch right,
          EvaluateRaVectorized(*expr.children()[1], env, pool, stats));
      return EvalUnion(left, right, stats);
    }
    case RaExpr::Op::kDifference: {
      LCP_ASSIGN_OR_RETURN(
          ColumnBatch left,
          EvaluateRaVectorized(*expr.children()[0], env, pool, stats));
      LCP_ASSIGN_OR_RETURN(
          ColumnBatch right,
          EvaluateRaVectorized(*expr.children()[1], env, pool, stats));
      return EvalDifference(left, right, stats);
    }
    case RaExpr::Op::kRename: {
      LCP_ASSIGN_OR_RETURN(
          ColumnBatch child,
          EvaluateRaVectorized(*expr.children()[0], env, pool, stats));
      return EvalRename(child, expr.renames(), stats);
    }
  }
  return InternalError("unreachable RA op");
}

}  // namespace lcp
