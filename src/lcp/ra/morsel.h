#ifndef LCP_RA_MORSEL_H_
#define LCP_RA_MORSEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>

#include "lcp/base/budget.h"
#include "lcp/base/work_steal.h"

namespace lcp {

/// Morsel-driven task scheduler for one plan execution (DESIGN.md §13).
/// Built on the same work-stealing primitives as the parallel planner
/// (base/work_steal.h: owner-LIFO deques, IdleGate) rather than a second
/// thread-pool abstraction. Thread lifecycle is the caller's: the executor
/// wraps one plan in RunWorkers, worker 0 drives the plan and calls
/// ParallelFor/SubmitAsync, workers 1..n-1 sit in WorkerLoop until
/// Shutdown.
///
/// Only the driver may call ParallelFor and SubmitAsync, and only one
/// ParallelFor runs at a time — morsel parallelism is fork/join per
/// operator, never nested, which is what keeps the canonical-order
/// concatenation argument (and TSan) simple.
class MorselScheduler {
 public:
  explicit MorselScheduler(int num_workers)
      : num_workers_(num_workers), deques_(num_workers) {}

  int num_workers() const { return num_workers_; }

  /// Body for workers 1..n-1 under RunWorkers: drains async tasks first
  /// (a freed worker should take over a pending source dispatch so it
  /// overlaps with the driver's operator work), then its own deque, then
  /// steals. Returns once Shutdown() was called and no work remains.
  void WorkerLoop(int worker_id);

  /// Releases WorkerLoop workers. Driver-only, after the plan finished;
  /// queued work is drained before workers exit.
  void Shutdown() {
    shutdown_.store(true, std::memory_order_release);
    gate_.NotifyAll();
  }

  /// Driver-only fork/join: runs body(i) for every i in [0, count),
  /// distributed round-robin over all workers with the driver
  /// participating; returns only when every iteration has finished.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  /// Handle to a task submitted with SubmitAsync.
  class Async {
   public:
    Async() = default;
    bool valid() const { return state_ != nullptr; }
    /// Blocks until the task has run, then drops the handle.
    void Wait();

   private:
    friend class MorselScheduler;
    struct State {
      std::function<void()> fn;
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
    };
    std::shared_ptr<State> state_;
  };

  /// Driver-only: schedules `task` on a non-driver worker (the driver never
  /// inlines it, so a ParallelFor on the driver overlaps with the task).
  /// Requires num_workers >= 2.
  Async SubmitAsync(std::function<void()> task);

 private:
  using Task = std::function<void()>;

  void RunAsync(const std::shared_ptr<Async::State>& state);

  const int num_workers_;
  std::vector<WorkStealingDeque<Task>> deques_;
  /// Pending async tasks; popped only by worker ids >= 1.
  WorkStealingDeque<std::shared_ptr<Async::State>> async_tasks_;
  IdleGate gate_;
  std::atomic<bool> shutdown_{false};
};

/// Rows per morsel derived from the L2 data cache size: a morsel's working
/// set (a handful of code columns in and out) should stay cache-resident
/// across an operator's passes. Clamped to [1024, 65536] rows.
size_t DeriveMorselRows();

/// Per-execution morsel context threaded through the vectorized operators.
/// Null scheduler (or a batch smaller than one morsel) means the operator
/// takes its historic sequential path — which is also why
/// exec_parallelism=1 is byte-identical by construction.
struct MorselContext {
  MorselScheduler* scheduler = nullptr;
  size_t morsel_rows = 0;
  /// Cancel token polled at morsel boundaries: a tripped token makes
  /// remaining morsels no-ops and the driver aborts at its next check.
  const CancelToken* cancel = nullptr;

  bool Parallel(size_t rows) const {
    return scheduler != nullptr && morsel_rows > 0 && rows > morsel_rows;
  }
  bool Cancelled() const { return cancel != nullptr && cancel->cancelled(); }
};

/// Splits [0, rows) into morsel-sized ranges and runs
/// body(morsel, begin, end) for each on the scheduler (driver
/// participates). Morsel bodies are skipped once the cancel token trips —
/// the caller must check ctx.Cancelled() and discard the partial result.
/// Returns the number of morsels launched.
size_t ParallelMorsels(const MorselContext& ctx, size_t rows,
                       const std::function<void(size_t, size_t, size_t)>& body);

}  // namespace lcp

#endif  // LCP_RA_MORSEL_H_
