#ifndef LCP_PLANNER_PROOF_SEARCH_H_
#define LCP_PLANNER_PROOF_SEARCH_H_

#include <optional>
#include <string>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/base/budget.h"
#include "lcp/base/result.h"
#include "lcp/chase/engine.h"
#include "lcp/plan/cost.h"
#include "lcp/plan/opt/pass_manager.h"
#include "lcp/plan/plan.h"

namespace lcp {

/// Candidate-selection policy (§5, "Search order"): which candidate fact /
/// method pair to expose first at a node.
enum class CandidateOrder {
  /// Minimal derivation depth first (fact insertion order), then cheapest
  /// method. The default.
  kDerivationDepth,
  /// Input-free methods before input-requiring ones (the heuristic used in
  /// the paper's Figure 1 walkthrough, which explores all directory sources
  /// before the checking access), then derivation depth.
  kFreeAccessFirst,
};

/// Options for Algorithm 1 (§5): cost-guided depth-first exploration of
/// chase proofs, generating SPJ plans directly from the proofs.
struct SearchOptions {
  /// The threshold d: maximum number of access commands per plan.
  int max_access_commands = 6;
  /// Abort a branch whose partial plan already costs at least as much as the
  /// best complete plan (sound for monotone cost functions).
  bool prune_by_cost = true;
  /// Abort a node dominated by an existing node: the existing configuration
  /// has "at least as many useful facts" (a homomorphism over base +
  /// InferredAcc + accessible facts, fixing the query's free-variable
  /// constants) at no higher cost (§5, "Optimizations").
  bool prune_by_dominance = true;
  /// Stop at the first successful proof (plan existence check / Theorem 5
  /// mode) instead of exhausting the space.
  bool stop_at_first_plan = false;
  /// Record every successful plan, not just the cheapest.
  bool keep_all_plans = false;
  /// Hard cap on created search nodes.
  int max_nodes = 100000;
  /// Access methods the search must not use: candidates over these methods
  /// are dropped at enumeration time, in both the sequential and parallel
  /// drivers, so no returned plan ever contains an excluded method. This is
  /// the planner half of source-health failover (DESIGN.md §10): the
  /// serving layer passes the quarantined-method mask here and proof search
  /// re-routes through live alternatives — the paper's many-sound-plans
  /// property is exactly what makes such detours exist. Unknown ids are
  /// ignored; excluding every method of a needed relation yields kNotFound.
  std::vector<AccessMethodId> excluded_methods;
  /// Chase control for the root closure (original constraints, §5 "Original
  /// Schema Reasoning First") and the per-node closures (inferred
  /// accessible copies, "Fire Inferred Accessible Rules Immediately").
  ChaseOptions root_chase;
  ChaseOptions closure_chase;
  /// Record one human-readable line per node (Figure 1 style dumps).
  /// Requires parallelism == 1: the log is an ordered trace of a
  /// depth-first exploration, and a parallel exploration has no canonical
  /// order — Run returns kInvalidArgument when both are requested.
  bool collect_exploration_log = false;
  CandidateOrder candidate_order = CandidateOrder::kDerivationDepth;
  /// Number of search workers. 1 (the default) runs the original sequential
  /// depth-first driver — bit-for-bit the pre-parallelism behavior,
  /// including exploration-log support and deterministic node numbering.
  /// Values > 1 run a work-stealing parallel driver: workers expand nodes
  /// against a shared atomic incumbent bound (prune_by_cost uses the global
  /// cheapest plan) and a sharded concurrent dominance store. Guarantees
  /// versus the sequential driver:
  ///  - Run to exhaustion (exhaustion.ok()), it finds the same optimal
  ///    cost; the identity of the returned plan may differ when several
  ///    plans tie or the exploration order changes which one is found
  ///    first.
  ///  - The anytime contract is preserved: on budget exhaustion or
  ///    cancellation every worker winds down, all threads are joined before
  ///    Run returns, and the outcome carries the best plan found so far.
  ///  - Stats are coherent (merged after the workers quiesce), but
  ///    nodes_created may overshoot max_nodes by at most `parallelism`
  ///    (each worker checks the cap before, not atomically with, its next
  ///    creation); similarly a shared Budget's node cap can be overshot by
  ///    at most one in-flight charge per worker.
  /// Values < 1 are treated as 1.
  int parallelism = 1;
  /// Optional shared execution budget (wall-clock deadline + node/firing
  /// caps). The search checks it before every expansion and threads it into
  /// the root and per-node chase closures, so one budget bounds the whole
  /// planning episode. Exhaustion makes the search *anytime*: Run returns
  /// the best plan found so far with SearchOutcome::exhaustion set instead
  /// of failing. A CancelToken attached to the budget makes the episode
  /// cancellable from another thread through the same poll points (the
  /// QueryService relies on this for Cancel and abort shutdown); exhaustion
  /// then carries the token's code, and callers that no longer want the
  /// answer should discard the best-so-far plan. Not owned; null =
  /// unlimited.
  Budget* budget = nullptr;
  /// Run the plan-IR optimizer pipeline (plan/opt/, DESIGN.md §11) over
  /// every returned plan once the search (sequential or parallel) has
  /// finished: common-subplan elimination, projection/selection pushdown,
  /// dead-command elimination, and join reorder, each re-validated and
  /// guaranteed not to raise cost. `best->cost` is re-evaluated afterwards,
  /// so it can only drop. Off by default — proof-generated plans are often
  /// already minimal and differential harnesses may want the literal plan;
  /// the QueryService turns it on so cached plans are optimized once and
  /// served many times.
  bool optimize_plans = false;
  /// Pass selection and fixpoint bound when optimize_plans is set.
  plan_opt::OptimizerOptions optimizer;
};

struct SearchStats {
  int nodes_created = 0;
  int nodes_expanded = 0;
  int successes = 0;
  int pruned_cost = 0;
  int pruned_dominance = 0;
  int depth_limited = 0;
  int root_chase_firings = 0;
  int closure_firings = 0;
};

struct FoundPlan {
  Plan plan;
  double cost = 0;
};

struct SearchOutcome {
  /// The cheapest complete plan found, if any.
  std::optional<FoundPlan> best;
  /// Every complete plan found (only if keep_all_plans).
  std::vector<FoundPlan> all_plans;
  SearchStats stats;
  std::vector<std::string> exploration_log;
  /// Optimizer report for `best` when SearchOptions::optimize_plans ran
  /// (optimized == true); default-initialized otherwise.
  bool optimized = false;
  plan_opt::OptimizeStats optimize;
  /// Why the search stopped early, if it did (the anytime contract). OK
  /// means the proof space was exhausted and `best` is optimal within the
  /// access budget; kDeadlineExceeded / kResourceExhausted mean the time or
  /// node/firing budget ran out and `best` is only the cheapest plan found
  /// *so far* (possibly absent).
  Status exhaustion;
};

/// Algorithm 1 of the paper: searches the space of eager chase proofs that
/// Q entails InferredAccQ over AcSch(S0), maintaining for every proof node
/// the SPJ plan read off the proof (§4) and its cost, and returns the
/// lowest-cost plan within the access budget.
///
/// Constants appearing in the query are treated as schema constants
/// (accessible from the start), per the paper's convention.
class ProofSearch {
 public:
  /// `accessible` and `cost` must outlive the search. The cost function must
  /// be monotone if prune_by_cost is enabled.
  ProofSearch(const AccessibleSchema* accessible, const CostFunction* cost);

  /// Runs the search for `query` (a CQ over the base schema). Const and
  /// re-entrant: all search state (term arena, chase engine, node store)
  /// lives in a per-call context, so one ProofSearch may serve concurrent
  /// Run calls from multiple threads (the QueryService worker pool relies on
  /// this), provided the accessible schema and cost function are not
  /// mutated meanwhile. A Budget passed via `options` still belongs to one
  /// call at a time.
  Result<SearchOutcome> Run(const ConjunctiveQuery& query,
                            const SearchOptions& options) const;

 private:
  const AccessibleSchema* accessible_;
  const CostFunction* cost_;
};

/// Convenience wrapper: returns a (not necessarily optimal) plan for the
/// query if one exists within the access budget — the effective content of
/// Theorem 5 — or NOT_FOUND. `parallelism` > 1 searches with that many
/// workers in first-plan mode: the first success stops the whole pool
/// promptly (every other worker exits at its next poll point).
Result<FoundPlan> FindAnyPlan(const AccessibleSchema& accessible,
                              const ConjunctiveQuery& query,
                              int max_access_commands, int parallelism = 1);

}  // namespace lcp

#endif  // LCP_PLANNER_PROOF_SEARCH_H_
