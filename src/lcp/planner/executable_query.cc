#include "lcp/planner/executable_query.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "lcp/base/strings.h"
#include "lcp/ra/expr.h"

namespace lcp {

ExecutableQueryPtr ExecutableQuery::True() {
  return std::shared_ptr<ExecutableQuery>(new ExecutableQuery(Kind::kTrue));
}

ExecutableQueryPtr ExecutableQuery::Exists(AccessMethodId method,
                                           std::vector<ChaseTermId> fact_terms,
                                           ExecutableQueryPtr next) {
  auto node = std::shared_ptr<ExecutableQuery>(
      new ExecutableQuery(Kind::kExists));
  node->method_ = method;
  node->fact_terms_ = std::move(fact_terms);
  node->next_ = std::move(next);
  return node;
}

ExecutableQueryPtr ExecutableQuery::Forall(AccessMethodId method,
                                           std::vector<ChaseTermId> fact_terms,
                                           ExecutableQueryPtr next) {
  auto node = std::shared_ptr<ExecutableQuery>(
      new ExecutableQuery(Kind::kForall));
  node->method_ = method;
  node->fact_terms_ = std::move(fact_terms);
  node->next_ = std::move(next);
  return node;
}

int ExecutableQuery::depth() const {
  return kind_ == Kind::kTrue ? 0 : 1 + next_->depth();
}

bool ExecutableQuery::HasForall() const {
  if (kind_ == Kind::kTrue) return false;
  return kind_ == Kind::kForall || next_->HasForall();
}

std::string ExecutableQuery::ToString(const Schema& schema,
                                      const TermArena& arena) const {
  if (kind_ == Kind::kTrue) return "true";
  std::ostringstream os;
  os << (kind_ == Kind::kExists ? "exists" : "forall") << "["
     << schema.access_method(method_).name << ": ";
  const Relation& rel = schema.relation(schema.access_method(method_).relation);
  os << rel.name << "(";
  for (size_t i = 0; i < fact_terms_.size(); ++i) {
    if (i > 0) os << ", ";
    os << arena.DisplayName(fact_terms_[i]);
  }
  os << ")] . " << next_->ToString(schema, arena);
  return os.str();
}

namespace {

using TermBinding = std::unordered_map<ChaseTermId, Value>;

/// Resolves a chase term to a value under `binding`; constants resolve to
/// themselves. Returns nullptr when the term is an unbound null.
const Value* Resolve(ChaseTermId term, const TermBinding& binding,
                     const TermArena& arena) {
  if (TermArena::IsConstant(term)) return &arena.ConstantOf(term);
  auto it = binding.find(term);
  return it == binding.end() ? nullptr : &it->second;
}

Result<bool> EvalRec(const ExecutableQuery& query, SimulatedSource& source,
                     const TermArena& arena, TermBinding& binding) {
  if (query.kind() == ExecutableQuery::Kind::kTrue) return true;
  const AccessMethod& method =
      source.schema().access_method(query.method());
  Tuple inputs;
  for (int pos : method.input_positions) {
    const Value* v = Resolve(query.fact_terms()[pos], binding, arena);
    if (v == nullptr) {
      return FailedPreconditionError(
          "executable query accesses a method with an unbound input (the "
          "proof it came from was not eager)");
    }
    inputs.push_back(*v);
  }
  // Copy: recursion below re-enters the source, which may rehash its
  // internal structures.
  const std::vector<Tuple> tuples = source.Access(query.method(), inputs);

  if (query.kind() == ExecutableQuery::Kind::kExists) {
    for (const Tuple& w : tuples) {
      std::vector<ChaseTermId> newly_bound;
      bool consistent = true;
      for (size_t i = 0; i < w.size() && consistent; ++i) {
        ChaseTermId t = query.fact_terms()[i];
        const Value* v = Resolve(t, binding, arena);
        if (v != nullptr) {
          consistent = (*v == w[i]);
        } else {
          binding.emplace(t, w[i]);
          newly_bound.push_back(t);
        }
      }
      bool accepted = false;
      if (consistent) {
        LCP_ASSIGN_OR_RETURN(accepted,
                             EvalRec(*query.next(), source, arena, binding));
      }
      for (ChaseTermId t : newly_bound) binding.erase(t);
      if (accepted) return true;
    }
    return false;
  }

  // kForall: every returned tuple that joins with the binding must satisfy
  // the continuation; tuples that conflict are skipped (they witness other
  // facts). If nothing joins the node is vacuously true.
  for (const Tuple& w : tuples) {
    std::vector<ChaseTermId> newly_bound;
    bool consistent = true;
    for (size_t i = 0; i < w.size() && consistent; ++i) {
      ChaseTermId t = query.fact_terms()[i];
      const Value* v = Resolve(t, binding, arena);
      if (v != nullptr) {
        consistent = (*v == w[i]);
      } else {
        binding.emplace(t, w[i]);
        newly_bound.push_back(t);
      }
    }
    bool accepted = true;
    Status failure = Status::Ok();
    if (consistent) {
      auto result = EvalRec(*query.next(), source, arena, binding);
      if (!result.ok()) {
        failure = result.status();
      } else {
        accepted = *result;
      }
    }
    for (ChaseTermId t : newly_bound) binding.erase(t);
    if (!failure.ok()) return failure;
    if (consistent && !accepted) return false;
  }
  return true;
}

}  // namespace

Result<bool> EvaluateExecutable(const ExecutableQuery& query,
                                SimulatedSource& source,
                                const TermArena& arena) {
  TermBinding binding;
  return EvalRec(query, source, arena, binding);
}

namespace {

/// State threaded through compilation: the plan under construction and a
/// counter for fresh table names.
struct Compiler {
  const Schema& schema;
  const TermArena& arena;
  Plan plan;
  int counter = 0;

  std::string Fresh(const char* stem) {
    return StrCat("n", counter++, "_", stem);
  }

  /// Emits the access + fact-table commands shared by ∃ and ∀ nodes.
  /// Returns the fact table name and its attributes (the fact's distinct
  /// nulls, named by display name).
  Result<std::pair<std::string, std::vector<std::string>>> EmitAccess(
      const ExecutableQuery& node, const std::string& current,
      const std::vector<std::string>& attrs) {
    const AccessMethod& method = schema.access_method(node.method());
    const Relation& rel = schema.relation(method.relation);

    AccessCommand access;
    access.method = node.method();
    access.output_table = Fresh("raw");
    for (int i = 0; i < rel.arity; ++i) {
      access.output_columns.emplace_back(StrCat("#p", i), i);
    }
    std::vector<std::string> input_attrs;
    for (int pos : method.input_positions) {
      ChaseTermId t = node.fact_terms()[pos];
      if (TermArena::IsConstant(t)) {
        access.constant_inputs.emplace_back(pos, arena.ConstantOf(t));
        continue;
      }
      std::string attr = arena.DisplayName(t);
      if (std::find(attrs.begin(), attrs.end(), attr) == attrs.end()) {
        return FailedPreconditionError(
            StrCat("input term ", attr, " not bound before access to ",
                   method.name));
      }
      access.input_binding.emplace_back(attr, pos);
      if (std::find(input_attrs.begin(), input_attrs.end(), attr) ==
          input_attrs.end()) {
        input_attrs.push_back(attr);
      }
    }
    if (!input_attrs.empty()) {
      access.input = RaExpr::Project(RaExpr::TempScan(current), input_attrs);
    }
    std::string raw = access.output_table;
    plan.commands.push_back(std::move(access));

    // Shape the raw table into the fact's columns.
    RaExprPtr expr = RaExpr::TempScan(raw);
    std::vector<RaExpr::Condition> conds;
    std::unordered_map<ChaseTermId, int> first_pos;
    std::vector<std::pair<std::string, std::string>> renames;
    std::vector<std::string> fact_attrs;
    for (int i = 0; i < rel.arity; ++i) {
      ChaseTermId t = node.fact_terms()[i];
      std::string col = StrCat("#p", i);
      if (TermArena::IsConstant(t)) {
        conds.push_back(
            RaExpr::Condition::AttrEqConst(col, arena.ConstantOf(t)));
        continue;
      }
      auto it = first_pos.find(t);
      if (it != first_pos.end()) {
        conds.push_back(
            RaExpr::Condition::AttrEqAttr(col, StrCat("#p", it->second)));
      } else {
        first_pos.emplace(t, i);
        renames.emplace_back(col, arena.DisplayName(t));
        fact_attrs.push_back(arena.DisplayName(t));
      }
    }
    if (!conds.empty()) expr = RaExpr::Select(std::move(expr), std::move(conds));
    if (!renames.empty()) {
      expr = RaExpr::Rename(std::move(expr), std::move(renames));
    }
    expr = RaExpr::Project(std::move(expr), fact_attrs);
    std::string fact_table = Fresh("fact");
    plan.commands.push_back(QueryCommand{fact_table, std::move(expr)});
    return std::make_pair(fact_table, fact_attrs);
  }

  /// Compiles `node` relative to the current accepted-rows table; returns
  /// the name of the table holding the rows of `current` that the node
  /// accepts (same attributes as `current`).
  Result<std::string> Compile(const ExecutableQuery& node,
                              const std::string& current,
                              const std::vector<std::string>& attrs) {
    if (node.kind() == ExecutableQuery::Kind::kTrue) return current;

    LCP_ASSIGN_OR_RETURN(auto fact, EmitAccess(node, current, attrs));
    const auto& [fact_table, fact_attrs] = fact;

    if (node.kind() == ExecutableQuery::Kind::kExists) {
      // Extend the current rows with the matching source tuples, accept
      // recursively, then project back.
      std::string extended = Fresh("ext");
      plan.commands.push_back(QueryCommand{
          extended, RaExpr::Join(RaExpr::TempScan(current),
                                 RaExpr::TempScan(fact_table))});
      std::vector<std::string> extended_attrs = attrs;
      for (const std::string& attr : fact_attrs) {
        if (std::find(extended_attrs.begin(), extended_attrs.end(), attr) ==
            extended_attrs.end()) {
          extended_attrs.push_back(attr);
        }
      }
      LCP_ASSIGN_OR_RETURN(std::string accepted,
                           Compile(*node.next(), extended, extended_attrs));
      std::string projected = Fresh("acc");
      plan.commands.push_back(QueryCommand{
          projected, RaExpr::Project(RaExpr::TempScan(accepted), attrs)});
      return projected;
    }

    // kForall: rows whose fact is absent pass vacuously (difference);
    // rows whose fact is present must pass the continuation (union). This
    // compilation requires the fact to be fully bound by `attrs` (the
    // AcSch¬ case); a ∀-access binding fresh terms (possible with AcSch↔
    // proofs) would need relational division — evaluate such queries
    // directly instead.
    for (const std::string& attr : fact_attrs) {
      if (std::find(attrs.begin(), attrs.end(), attr) == attrs.end()) {
        return UnimplementedError(
            StrCat("universal access binds fresh term ", attr,
                   "; compile requires ground foralls (use "
                   "EvaluateExecutable)"));
      }
    }
    std::string matched = Fresh("match");
    plan.commands.push_back(QueryCommand{
        matched,
        RaExpr::Project(RaExpr::Join(RaExpr::TempScan(current),
                                     RaExpr::TempScan(fact_table)),
                        attrs)});
    std::string vacuous = Fresh("vac");
    plan.commands.push_back(QueryCommand{
        vacuous, RaExpr::Difference(RaExpr::TempScan(current),
                                    RaExpr::TempScan(matched))});
    LCP_ASSIGN_OR_RETURN(std::string accepted,
                         Compile(*node.next(), matched, attrs));
    std::string combined = Fresh("acc");
    plan.commands.push_back(QueryCommand{
        combined, RaExpr::Union(RaExpr::TempScan(vacuous),
                                RaExpr::TempScan(accepted))});
    return combined;
  }
};

}  // namespace

Result<Plan> CompileExecutable(const ExecutableQuery& query,
                               const Schema& schema, const TermArena& arena) {
  Compiler compiler{schema, arena, Plan{}, 0};
  // Boolean plans start from the one-row nullary table.
  std::string start = compiler.Fresh("start");
  compiler.plan.commands.push_back(QueryCommand{start, RaExpr::Singleton()});
  LCP_ASSIGN_OR_RETURN(std::string accepted,
                       compiler.Compile(query, start, {}));
  compiler.plan.output_table = std::move(accepted);
  return std::move(compiler.plan);
}

}  // namespace lcp
