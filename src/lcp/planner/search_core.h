#ifndef LCP_PLANNER_SEARCH_CORE_H_
#define LCP_PLANNER_SEARCH_CORE_H_

// Internal header: the node-expansion core of Algorithm 1, shared by the
// sequential depth-first driver (proof_search.cc) and the work-stealing
// parallel driver (parallel_search.cc). Not part of the public API —
// include lcp/planner/proof_search.h instead.

#include <string>
#include <unordered_set>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/base/result.h"
#include "lcp/chase/engine.h"
#include "lcp/chase/matcher.h"
#include "lcp/plan/cost.h"
#include "lcp/planner/proof_search.h"

namespace lcp {
namespace search_internal {

/// A (fact, method) pair that could be exposed by firing an accessibility
/// axiom (§5, "candidate for exposure"). Facts are identified by their index
/// in the root configuration (base facts never grow after the root closure,
/// because original-schema constraints fire only there).
struct Candidate {
  int fact_index;
  AccessMethodId method;
};

/// One node of the partial proof tree: a chase configuration over the
/// accessible schema plus the SPJ plan prefix read off the proof.
///
/// Ownership under parallel search: a node is *owned* by exactly one worker
/// at a time (hand-off goes through a work-stealing deque, which
/// synchronizes); only the owner touches the mutable cursor/removed
/// expansion state. The configuration is immutable once BuildChild
/// returns, so the dominance store and thieves may read it concurrently.
struct SearchNode {
  int id = 0;
  int parent = -1;
  ChaseConfig config;
  std::unordered_set<ChaseTermId> accessible_terms;
  /// Candidate indexes removed at this node (Algorithm 1, line 10). Not
  /// inherited: children recompute candidacy from their own configuration.
  std::unordered_set<int> removed;
  size_t cursor = 0;  ///< Next candidate index to consider.
  std::vector<Command> commands;
  std::string table;  ///< Running temporary table; empty before any access.
  std::vector<std::string> attrs;  ///< Its attributes (accessible nulls).
  double cost = 0;
  int accesses = 0;
  bool success = false;
  bool pruned = false;
  std::string label;  ///< "expose F via mt" (for exploration logs).
};

/// The driver-independent parts of Algorithm 1: root construction, candidate
/// iteration, node expansion (configuration update, inferred-accessible
/// closure, §4 proof-to-plan translation, cost), success detection, and the
/// dominance-probe pattern. Pruning *decisions* and node bookkeeping stay in
/// the drivers, which differ in how they share the incumbent bound and the
/// dominance set.
///
/// Thread model: construction and InitRoot are single-threaded; afterwards
/// every method is const and safe from concurrent workers (the arena it
/// owns is internally synchronized; each worker passes its own ChaseEngine
/// and SearchStats, and BuildChild/NextCandidate mutate only the node the
/// calling worker owns).
class SearchCore {
 public:
  SearchCore(const AccessibleSchema& acc, const CostFunction& cost,
             const ConjunctiveQuery& query, const SearchOptions& options);

  /// Builds the root node: canonical database of the query, root closure
  /// under the original constraints, schema/query constants marked
  /// accessible, the global candidate list, and the compiled InferredAccQ /
  /// inferred-constraint patterns. Call exactly once, before any workers
  /// start. Does not charge the budget — the driver owns node accounting.
  Result<SearchNode> InitRoot(ChaseEngine& engine, SearchStats& stats);

  /// Advances node.cursor past removed and non-fireable candidates; returns
  /// the next fireable candidate index, or -1 when the node is exhausted.
  int NextCandidate(SearchNode& node) const;

  bool CandidateFireable(const SearchNode& node, const Candidate& cand) const;

  bool CheckSuccess(const SearchNode& node) const;

  /// The §4 plan read off a successful node, with the free-variable
  /// projection appended, plus its cost.
  FoundPlan MakeFoundPlan(const SearchNode& node) const;

  /// Expands `parent` on `cand_index`: removes the sibling candidates this
  /// access also covers (Algorithm 1, line 10), then builds the child —
  /// configuration update, "fire inferred accessible rules immediately"
  /// closure, plan prefix, cost. Returns the child without making any
  /// pruning decision. Mutates only `parent` (which the caller owns) and
  /// `stats` (the caller's). Errors propagate (typically a budget-exhausted
  /// chase closure; drivers translate that into the anytime contract).
  Result<SearchNode> BuildChild(SearchNode& parent, int cand_index,
                                int child_id, ChaseEngine& engine,
                                SearchStats& stats) const;

  /// The dominance probe of `node` (§5, "Optimizations"): its base,
  /// InferredAcc, and accessible facts as a pattern with nulls as variables,
  /// except the query's free-variable constants, which stay fixed. A
  /// configuration that admits a homomorphism of this pattern (at no higher
  /// cost and no higher access count) dominates `node`.
  struct DominanceProbe {
    std::vector<PatternAtom> pattern;
    size_t num_vars = 0;
  };
  DominanceProbe MakeDominanceProbe(const SearchNode& node) const;

  /// Figure-1-style exploration-log line for `node`.
  std::string LogLine(const SearchNode& node, const std::string& status) const;

  const SearchOptions& options() const { return options_; }
  const Schema& schema() const { return acc_.schema(); }
  TermArena& arena() { return arena_; }

 private:
  void MarkAccessible(SearchNode& node, ChaseTermId term) const;
  Fact AccessedFact(const Fact& base_fact) const {
    return Fact(acc_.AccessedOf(base_fact.relation), base_fact.terms);
  }

  const AccessibleSchema& acc_;
  const CostFunction& cost_;
  const ConjunctiveQuery& query_;
  const SearchOptions& options_;
  /// Chase options with the shared budget threaded in.
  ChaseOptions root_chase_;
  ChaseOptions closure_chase_;

  TermArena arena_;
  std::vector<CompiledTgd> compiled_inferred_;
  std::vector<Candidate> all_candidates_;
  /// InferredAccQ compiled for success checks; free variables pre-bound to
  /// their canonical nulls.
  VariableTable query_vars_;
  std::vector<PatternAtom> query_pattern_;
  std::vector<ChaseTermId> query_assignment_template_;
  std::vector<ChaseTermId> free_var_terms_;
};

/// The work-stealing parallel driver (parallel_search.cc). Requires
/// options.parallelism > 1 and collect_exploration_log == false (the public
/// entry point enforces both).
Result<SearchOutcome> RunParallelSearch(const AccessibleSchema& accessible,
                                        const CostFunction& cost,
                                        const ConjunctiveQuery& query,
                                        const SearchOptions& options);

}  // namespace search_internal
}  // namespace lcp

#endif  // LCP_PLANNER_SEARCH_CORE_H_
