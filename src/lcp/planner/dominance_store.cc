#include "lcp/planner/dominance_store.h"

#include <mutex>
#include <utility>

#include "lcp/chase/fact.h"
#include "lcp/chase/term_arena.h"

namespace lcp {
namespace search_internal {

namespace {

size_t NextPow2(int n) {
  size_t p = 1;
  while (p < static_cast<size_t>(n)) p <<= 1;
  return p;
}

}  // namespace

uint64_t ConfigFingerprint(const ChaseConfig& config) {
  // Plain sum: commutative, so insertion order does not matter. Collisions
  // are harmless (see header) — this only picks a shard.
  FactHash hasher;
  uint64_t fp = 0;
  for (const Fact& fact : config.facts()) fp += hasher(fact);
  return fp;
}

ConcurrentDominanceStore::ConcurrentDominanceStore(int shard_count)
    : shards_(NextPow2(shard_count < 1 ? 1 : shard_count)) {}

void ConcurrentDominanceStore::Insert(
    uint64_t fingerprint, double cost, int accesses,
    std::shared_ptr<const ChaseConfig> config) {
  Shard& shard = shards_[ShardOf(fingerprint)];
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  shard.entries.push_back(
      Entry{fingerprint, cost, accesses, std::move(config)});
}

bool ConcurrentDominanceStore::IsDominated(
    const std::vector<PatternAtom>& pattern, size_t num_vars, double cost,
    int accesses) const {
  std::vector<std::shared_ptr<const ChaseConfig>> qualifying;
  for (const Shard& shard : shards_) {
    // Copy the qualifying entries out under the shared lock, then check
    // homomorphisms lock-free: a homomorphism check can take a while, and
    // holding even a shared lock across it would starve writers.
    {
      std::shared_lock<std::shared_mutex> lock(shard.mutex);
      for (const Entry& entry : shard.entries) {
        if (entry.cost > cost) continue;
        // The dominator must also be able to afford every extension the
        // child could (the access budget is a separate resource from cost).
        if (entry.accesses > accesses) continue;
        qualifying.push_back(entry.config);
      }
    }
    for (const auto& config : qualifying) {
      std::vector<ChaseTermId> assignment(num_vars, kUnboundTerm);
      if (HasHomomorphism(pattern, *config, std::move(assignment))) {
        return true;
      }
    }
    qualifying.clear();
  }
  return false;
}

size_t ConcurrentDominanceStore::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace search_internal
}  // namespace lcp
