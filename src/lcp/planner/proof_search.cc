#include "lcp/planner/proof_search.h"

#include <deque>
#include <utility>
#include <vector>

#include "lcp/base/strings.h"
#include "lcp/chase/matcher.h"
#include "lcp/planner/search_core.h"

namespace lcp {

namespace {

using search_internal::SearchCore;
using search_internal::SearchNode;

/// The sequential depth-first driver: the original Algorithm 1 loop, with
/// node expansion delegated to SearchCore (shared with the parallel driver
/// in parallel_search.cc). Exploration order, pruning decisions, node
/// numbering, stats, and logs are bit-for-bit the pre-parallelism behavior.
class SequentialContext {
 public:
  SequentialContext(const AccessibleSchema& acc, const CostFunction& cost,
                    const ConjunctiveQuery& query,
                    const SearchOptions& options)
      : core_(acc, cost, query, options),
        options_(options),
        engine_(&core_.schema(), &core_.arena()) {}

  Result<SearchOutcome> Run();

 private:
  Status InitRoot();
  /// Creates the child of `node` exposing `cand`; returns its id, or -1 if
  /// it was pruned.
  Result<int> Expand(int node_id, int cand_index);
  void RecordSuccess(SearchNode& node);
  bool IsDominated(const SearchNode& child) const;
  void Log(const SearchNode& node, const std::string& status);

  SearchCore core_;
  const SearchOptions& options_;
  ChaseEngine engine_;
  std::deque<SearchNode> nodes_;
  SearchOutcome outcome_;
};

Status SequentialContext::InitRoot() {
  LCP_ASSIGN_OR_RETURN(SearchNode root,
                       core_.InitRoot(engine_, outcome_.stats));
  nodes_.push_back(std::move(root));
  outcome_.stats.nodes_created = 1;
  // The root counts against the node budget like any other node.
  if (options_.budget != nullptr) (void)options_.budget->ChargeNode();
  Log(nodes_[0], "initial");
  return Status::Ok();
}

void SequentialContext::RecordSuccess(SearchNode& node) {
  node.success = true;
  ++outcome_.stats.successes;
  FoundPlan found = core_.MakeFoundPlan(node);
  if (options_.keep_all_plans) {
    outcome_.all_plans.push_back(found);
  }
  if (!outcome_.best.has_value() || found.cost < outcome_.best->cost) {
    outcome_.best = std::move(found);
  }
}

bool SequentialContext::IsDominated(const SearchNode& child) const {
  SearchCore::DominanceProbe probe = core_.MakeDominanceProbe(child);
  for (const SearchNode& other : nodes_) {
    if (other.id == child.id || other.pruned) continue;
    if (other.cost > child.cost) continue;
    // The dominator must also be able to afford every extension the child
    // could (the access budget is a separate resource from cost).
    if (other.accesses > child.accesses) continue;
    std::vector<ChaseTermId> assignment(probe.num_vars, kUnboundTerm);
    if (HasHomomorphism(probe.pattern, other.config, std::move(assignment))) {
      return true;
    }
  }
  return false;
}

Result<int> SequentialContext::Expand(int node_id, int cand_index) {
  LCP_ASSIGN_OR_RETURN(
      SearchNode child,
      core_.BuildChild(nodes_[node_id], cand_index,
                       static_cast<int>(nodes_.size()), engine_,
                       outcome_.stats));

  if (options_.prune_by_cost && outcome_.best.has_value() &&
      child.cost >= outcome_.best->cost) {
    child.pruned = true;
    ++outcome_.stats.pruned_cost;
    Log(child, "pruned(cost)");
    return -1;
  }
  if (options_.prune_by_dominance && IsDominated(child)) {
    child.pruned = true;
    ++outcome_.stats.pruned_dominance;
    Log(child, "pruned(dominated)");
    return -1;
  }

  bool success = core_.CheckSuccess(child);
  int child_id = child.id;
  nodes_.push_back(std::move(child));
  ++outcome_.stats.nodes_created;
  // Charge the node; the main loop's Check() notices an exceeded cap before
  // the next expansion, so at most one node overshoots the budget.
  if (options_.budget != nullptr) (void)options_.budget->ChargeNode();
  if (success) {
    RecordSuccess(nodes_.back());
    Log(nodes_.back(), StrCat("SUCCESS cost=", nodes_.back().cost));
  } else {
    Log(nodes_.back(), StrCat("cost=", nodes_.back().cost));
  }
  return child_id;
}

void SequentialContext::Log(const SearchNode& node,
                            const std::string& status) {
  if (!options_.collect_exploration_log) return;
  outcome_.exploration_log.push_back(core_.LogLine(node, status));
}

Result<SearchOutcome> SequentialContext::Run() {
  Status init = InitRoot();
  if (!init.ok()) {
    // Anytime contract: a budget that dies during the root closure yields an
    // empty best-effort outcome, not an error.
    if (options_.budget != nullptr && options_.budget->exhausted()) {
      outcome_.exhaustion = options_.budget->exhaustion();
      return std::move(outcome_);
    }
    return init;
  }
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    if (options_.budget != nullptr) {
      Status budget_status = options_.budget->Check();
      if (!budget_status.ok()) {
        outcome_.exhaustion = std::move(budget_status);
        break;
      }
    }
    int vid = stack.back();
    SearchNode& v = nodes_[vid];
    if (v.success) {
      stack.pop_back();
      continue;
    }
    int cand_index = core_.NextCandidate(v);
    if (cand_index < 0) {
      stack.pop_back();
      continue;
    }
    if (v.accesses >= options_.max_access_commands) {
      ++outcome_.stats.depth_limited;
      stack.pop_back();
      continue;
    }
    if (outcome_.stats.nodes_created >= options_.max_nodes) {
      outcome_.exhaustion = ResourceExhaustedError(
          StrCat("search node cap of ", options_.max_nodes, " reached"));
      break;
    }
    Result<int> expanded = Expand(vid, cand_index);
    if (!expanded.ok()) {
      // A chase closure interrupted by the shared budget stops the search
      // gracefully with whatever was found; genuine chase errors propagate.
      if (options_.budget != nullptr && options_.budget->exhausted()) {
        outcome_.exhaustion = options_.budget->exhaustion();
        break;
      }
      return expanded.status();
    }
    int child_id = *expanded;
    if (child_id >= 0 && !nodes_[child_id].success) {
      stack.push_back(child_id);
    }
    if (options_.stop_at_first_plan && outcome_.best.has_value()) break;
  }
  return std::move(outcome_);
}

}  // namespace

ProofSearch::ProofSearch(const AccessibleSchema* accessible,
                         const CostFunction* cost)
    : accessible_(accessible), cost_(cost) {
  LCP_CHECK(accessible != nullptr && cost != nullptr);
}

Result<SearchOutcome> ProofSearch::Run(const ConjunctiveQuery& query,
                                       const SearchOptions& options) const {
  LCP_RETURN_IF_ERROR(accessible_->base().ValidateQuery(query));
  if (accessible_->variant() != AccessibleVariant::kStandard) {
    return InvalidArgumentError(
        "ProofSearch (Algorithm 1) uses the standard AcSch axioms; build the "
        "accessible schema with AccessibleVariant::kStandard");
  }
  if (options.parallelism > 1 && options.collect_exploration_log) {
    return InvalidArgumentError(
        "collect_exploration_log requires parallelism == 1: the "
        "exploration log is an ordered depth-first trace, and a parallel "
        "exploration has no canonical order");
  }
  Result<SearchOutcome> result =
      options.parallelism > 1
          ? search_internal::RunParallelSearch(*accessible_, *cost_, query,
                                               options)
          : SequentialContext(*accessible_, *cost_, query, options).Run();
  if (!result.ok() || !options.optimize_plans) return result;

  // Post-search optimization (DESIGN.md §11) — one place covers both the
  // sequential and the work-stealing driver. Optimizer failures are never
  // search failures: the literal proof-derived plan is already correct, so
  // any rejection just serves it as-is.
  SearchOutcome outcome = std::move(result).value();
  plan_opt::PassManager manager(options.optimizer);
  if (outcome.best.has_value()) {
    Result<Plan> optimized = manager.Optimize(
        outcome.best->plan, accessible_->base(), *cost_, &outcome.optimize);
    if (optimized.ok()) {
      outcome.best->plan = std::move(optimized).value();
      outcome.best->cost = cost_->Cost(outcome.best->plan);
      outcome.optimized = true;
    }
  }
  for (FoundPlan& found : outcome.all_plans) {
    Result<Plan> optimized =
        manager.Optimize(found.plan, accessible_->base(), *cost_, nullptr);
    if (optimized.ok()) {
      found.plan = std::move(optimized).value();
      found.cost = cost_->Cost(found.plan);
    }
  }
  return outcome;
}

Result<FoundPlan> FindAnyPlan(const AccessibleSchema& accessible,
                              const ConjunctiveQuery& query,
                              int max_access_commands, int parallelism) {
  SimpleCostFunction cost(&accessible.base());
  ProofSearch search(&accessible, &cost);
  SearchOptions options;
  options.max_access_commands = max_access_commands;
  options.stop_at_first_plan = true;
  options.prune_by_cost = false;
  options.parallelism = parallelism;
  LCP_ASSIGN_OR_RETURN(SearchOutcome outcome, search.Run(query, options));
  if (!outcome.best.has_value()) {
    return NotFoundError(
        StrCat("no plan with at most ", max_access_commands,
               " access commands answers ", query.name));
  }
  return *outcome.best;
}

}  // namespace lcp
