#include "lcp/planner/proof_search.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "lcp/base/strings.h"
#include "lcp/chase/matcher.h"

namespace lcp {

namespace {

/// A (fact, method) pair that could be exposed by firing an accessibility
/// axiom (§5, "candidate for exposure"). Facts are identified by their index
/// in the root configuration (base facts never grow after the root closure,
/// because original-schema constraints fire only there).
struct Candidate {
  int fact_index;
  AccessMethodId method;
};

/// One node of the partial proof tree: a chase configuration over the
/// accessible schema plus the SPJ plan prefix read off the proof.
struct Node {
  int id = 0;
  int parent = -1;
  ChaseConfig config;
  std::unordered_set<ChaseTermId> accessible_terms;
  /// Candidate indexes removed at this node (Algorithm 1, line 10). Not
  /// inherited: children recompute candidacy from their own configuration.
  std::unordered_set<int> removed;
  size_t cursor = 0;  ///< Next candidate index to consider.
  std::vector<Command> commands;
  std::string table;  ///< Running temporary table; empty before any access.
  std::vector<std::string> attrs;  ///< Its attributes (accessible nulls).
  double cost = 0;
  int accesses = 0;
  bool success = false;
  bool pruned = false;
  std::string label;  ///< "expose F via mt" (for exploration logs).
};

class SearchContext {
 public:
  SearchContext(const AccessibleSchema& acc, const CostFunction& cost,
                const ConjunctiveQuery& query, const SearchOptions& options)
      : acc_(acc),
        cost_(cost),
        query_(query),
        options_(options),
        root_chase_(options.root_chase),
        closure_chase_(options.closure_chase),
        engine_(&acc.schema(), &arena_) {
    // One budget bounds the whole episode: the search loop and every chase
    // closure it runs charge against the same pool.
    if (options.budget != nullptr) {
      if (root_chase_.budget == nullptr) root_chase_.budget = options.budget;
      if (closure_chase_.budget == nullptr) {
        closure_chase_.budget = options.budget;
      }
    }
  }

  Result<SearchOutcome> Run();

 private:
  Status InitRoot();
  bool CandidateFireable(const Node& node, const Candidate& cand) const;
  /// Creates the child of `node` exposing `cand`; returns its id, or -1 if
  /// it was pruned.
  Result<int> Expand(int node_id, int cand_index);
  void MarkAccessible(Node& node, ChaseTermId term);
  bool CheckSuccess(Node& node);
  void RecordSuccess(Node& node);
  bool IsDominated(const Node& child) const;
  Fact AccessedFact(const Fact& base_fact) const {
    return Fact(acc_.AccessedOf(base_fact.relation), base_fact.terms);
  }
  void Log(const Node& node, const std::string& status);

  const AccessibleSchema& acc_;
  const CostFunction& cost_;
  const ConjunctiveQuery& query_;
  const SearchOptions& options_;
  /// Chase options with the shared budget threaded in.
  ChaseOptions root_chase_;
  ChaseOptions closure_chase_;

  TermArena arena_;
  ChaseEngine engine_;
  std::vector<CompiledTgd> compiled_inferred_;
  std::deque<Node> nodes_;
  std::vector<Candidate> all_candidates_;
  /// InferredAccQ compiled for success checks; free variables pre-bound to
  /// their canonical nulls.
  VariableTable query_vars_;
  std::vector<PatternAtom> query_pattern_;
  std::vector<ChaseTermId> query_assignment_template_;
  std::vector<ChaseTermId> free_var_terms_;
  SearchOutcome outcome_;
};

Status SearchContext::InitRoot() {
  // Canonical database of Q, then the root closure with the original
  // integrity constraints ("Original Schema Reasoning First").
  CanonicalDatabase canonical = BuildCanonicalDatabase(query_, arena_);
  Node root;
  root.id = 0;
  root.config = std::move(canonical.config);
  LCP_ASSIGN_OR_RETURN(
      ChaseStats root_stats,
      engine_.Run(acc_.original_constraints(), root_chase_, root.config));
  outcome_.stats.root_chase_firings = root_stats.firings;

  // Schema constants (and by our convention, the query's constants) are
  // accessible from the start.
  for (const Value& c : acc_.base().constants()) {
    MarkAccessible(root, arena_.InternConstant(c));
  }
  for (const Atom& atom : query_.atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_constant()) {
        MarkAccessible(root, arena_.InternConstant(t.constant()));
      }
    }
  }

  // Global candidate list: every (base fact, method-on-its-relation) pair,
  // ordered by derivation depth (fact insertion index) then method cost.
  for (int i = 0; i < static_cast<int>(root.config.facts().size()); ++i) {
    const Fact& fact = root.config.facts()[i];
    if (acc_.KindOf(fact.relation) != AccessibleRelationKind::kBase) continue;
    for (AccessMethodId m : acc_.base().MethodsOnRelation(fact.relation)) {
      all_candidates_.push_back(Candidate{i, m});
    }
  }
  std::stable_sort(
      all_candidates_.begin(), all_candidates_.end(),
      [&](const Candidate& a, const Candidate& b) {
        const AccessMethod& ma = acc_.base().access_method(a.method);
        const AccessMethod& mb = acc_.base().access_method(b.method);
        if (options_.candidate_order == CandidateOrder::kFreeAccessFirst) {
          bool fa = ma.is_free_access();
          bool fb = mb.is_free_access();
          if (fa != fb) return fa;
        }
        if (a.fact_index != b.fact_index) return a.fact_index < b.fact_index;
        if (ma.cost != mb.cost) return ma.cost < mb.cost;
        return a.method < b.method;
      });

  // Compile InferredAccQ for success detection.
  ConjunctiveQuery inferred_q = acc_.InferredAccQuery(query_);
  query_pattern_ = CompileAtoms(inferred_q.atoms, query_vars_, arena_);
  query_assignment_template_.assign(query_vars_.size(), kUnboundTerm);
  for (const std::string& v : query_.free_variables) {
    ChaseTermId term = canonical.var_to_term.at(v);
    query_assignment_template_[query_vars_.IndexOf(v)] = term;
    free_var_terms_.push_back(term);
  }

  // Compile the inferred-accessible copies of the constraints once.
  for (const Tgd& tgd : acc_.inferred_constraints()) {
    compiled_inferred_.push_back(CompileTgd(tgd, arena_));
  }

  root.label = "root";
  nodes_.push_back(std::move(root));
  outcome_.stats.nodes_created = 1;
  // The root counts against the node budget like any other node.
  if (options_.budget != nullptr) (void)options_.budget->ChargeNode();
  Log(nodes_[0], "initial");
  return Status::Ok();
}

void SearchContext::MarkAccessible(Node& node, ChaseTermId term) {
  if (!node.accessible_terms.insert(term).second) return;
  node.config.Add(Fact(acc_.accessible_relation(), {term}));
}

bool SearchContext::CandidateFireable(const Node& node,
                                      const Candidate& cand) const {
  // Callers filter node.removed; here we check the semantic conditions.
  const Fact& fact = node.config.facts()[cand.fact_index];
  if (node.config.Contains(AccessedFact(fact))) return false;
  const AccessMethod& method = acc_.base().access_method(cand.method);
  for (int pos : method.input_positions) {
    if (node.accessible_terms.count(fact.terms[pos]) == 0) return false;
  }
  return true;
}

bool SearchContext::CheckSuccess(Node& node) {
  std::vector<ChaseTermId> assignment = query_assignment_template_;
  return HasHomomorphism(query_pattern_, node.config, std::move(assignment));
}

// GCC 12's middle end, at some inlining depths, reports false-positive
// -Wrestrict / -Wmaybe-uninitialized warnings for std::variant<Command>
// relocations inside the commands.push_back calls in RecordSuccess and
// Expand (all AccessCommand members have default initializers; nothing here
// reads uninitialized state). Suppress narrowly around these functions to
// keep the build warning-clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

void SearchContext::RecordSuccess(Node& node) {
  node.success = true;
  ++outcome_.stats.successes;

  Plan plan;
  plan.commands = node.commands;
  if (!query_.free_variables.empty()) {
    std::vector<std::string> out_attrs;
    for (ChaseTermId term : free_var_terms_) {
      out_attrs.push_back(arena_.DisplayName(term));
    }
    std::string out_table = StrCat("t", node.id, "_out");
    plan.commands.push_back(QueryCommand{
        out_table, RaExpr::Project(RaExpr::TempScan(node.table), out_attrs)});
    plan.output_table = out_table;
    plan.output_attrs = out_attrs;
  } else {
    plan.output_table = node.table;
  }
  double cost = node.cost;
  if (options_.keep_all_plans) {
    outcome_.all_plans.push_back(FoundPlan{plan, cost});
  }
  if (!outcome_.best.has_value() || cost < outcome_.best->cost) {
    outcome_.best = FoundPlan{std::move(plan), cost};
  }
}

bool SearchContext::IsDominated(const Node& child) const {
  // Build the pattern: the child's base, InferredAcc, and accessible facts,
  // with nulls as variables except the query's free-variable constants,
  // which any dominating configuration must also realize identically.
  std::unordered_set<ChaseTermId> fixed(free_var_terms_.begin(),
                                        free_var_terms_.end());
  std::unordered_map<ChaseTermId, int> var_of;
  std::vector<PatternAtom> pattern;
  for (const Fact& fact : child.config.facts()) {
    AccessibleRelationKind kind = acc_.KindOf(fact.relation);
    if (kind == AccessibleRelationKind::kAccessed) continue;
    PatternAtom atom;
    atom.relation = fact.relation;
    for (ChaseTermId t : fact.terms) {
      PatternAtom::Slot slot;
      if (TermArena::IsConstant(t) || fixed.count(t) > 0) {
        slot.is_variable = false;
        slot.term = t;
      } else {
        slot.is_variable = true;
        auto [it, inserted] = var_of.emplace(t, static_cast<int>(var_of.size()));
        slot.var_index = it->second;
      }
      atom.slots.push_back(slot);
    }
    pattern.push_back(std::move(atom));
  }
  std::vector<ChaseTermId> assignment(var_of.size(), kUnboundTerm);
  for (const Node& other : nodes_) {
    if (other.id == child.id || other.pruned) continue;
    if (other.cost > child.cost) continue;
    // The dominator must also be able to afford every extension the child
    // could (the access budget is a separate resource from cost).
    if (other.accesses > child.accesses) continue;
    if (HasHomomorphism(pattern, other.config, assignment)) return true;
  }
  return false;
}

Result<int> SearchContext::Expand(int node_id, int cand_index) {
  ++outcome_.stats.nodes_expanded;
  const Candidate& cand = all_candidates_[cand_index];
  // Take copies up front: growing nodes_ may relocate elements (std::deque
  // keeps references stable, but keep the code robust to container swaps).
  const Fact exposed = nodes_[node_id].config.facts()[cand.fact_index];
  const AccessMethod& method = acc_.base().access_method(cand.method);

  // Facts induced by firing: all base facts over the same relation agreeing
  // with the exposed fact on the method's input positions, not yet accessed.
  // Seed the scan from the most selective positional-index bucket over the
  // method's input positions instead of the full relation extension.
  const std::vector<int>* candidates =
      &nodes_[node_id].config.FactsOf(exposed.relation);
  if (candidates->size() > ChaseConfig::kIndexProbeThreshold) {
    for (int pos : method.input_positions) {
      const std::vector<int>& bucket = nodes_[node_id].config.FactsWith(
          exposed.relation, pos, exposed.terms[pos]);
      if (bucket.size() < candidates->size()) candidates = &bucket;
    }
  }
  std::vector<Fact> induced;
  for (int idx : *candidates) {
    const Fact& d = nodes_[node_id].config.facts()[idx];
    bool agrees = true;
    for (int pos : method.input_positions) {
      if (d.terms[pos] != exposed.terms[pos]) {
        agrees = false;
        break;
      }
    }
    if (agrees && !nodes_[node_id].config.Contains(AccessedFact(d))) {
      induced.push_back(d);
    }
  }
  LCP_CHECK(!induced.empty());

  // Algorithm 1, line 10: the parent will not re-fire this same access for
  // any of the induced facts.
  for (int i = 0; i < static_cast<int>(all_candidates_.size()); ++i) {
    if (all_candidates_[i].method != cand.method) continue;
    const Fact& d =
        nodes_[node_id].config.facts()[all_candidates_[i].fact_index];
    if (d.relation != exposed.relation) continue;
    bool agrees = true;
    for (int pos : method.input_positions) {
      if (d.terms[pos] != exposed.terms[pos]) {
        agrees = false;
        break;
      }
    }
    if (agrees) nodes_[node_id].removed.insert(i);
  }

  Node child;
  child.id = static_cast<int>(nodes_.size());
  child.parent = node_id;
  child.config = nodes_[node_id].config;
  child.accessible_terms = nodes_[node_id].accessible_terms;
  child.commands = nodes_[node_id].commands;
  child.table = nodes_[node_id].table;
  child.attrs = nodes_[node_id].attrs;
  child.accesses = nodes_[node_id].accesses + 1;
  child.label =
      StrCat("expose ", FactToString(exposed, acc_.schema(), arena_), " via ",
             method.name);

  // --- configuration update ----------------------------------------------
  for (const Fact& d : induced) {
    child.config.Add(AccessedFact(d));
    child.config.Add(Fact(acc_.InferredOf(d.relation), d.terms));
    for (ChaseTermId t : d.terms) MarkAccessible(child, t);
  }
  // "Fire Inferred Accessible Rules Immediately": close under the
  // InferredAcc copies of the integrity constraints.
  LCP_ASSIGN_OR_RETURN(
      ChaseStats closure_stats,
      engine_.Run(compiled_inferred_, closure_chase_, child.config));
  outcome_.stats.closure_firings += closure_stats.firings;

  // --- plan update (§4 proof-to-plan translation) --------------------------
  const std::string parent_table = child.table;
  std::string raw = StrCat("t", child.id, "_raw");
  AccessCommand access;
  access.method = cand.method;
  access.output_table = raw;
  const Relation& rel = acc_.base().relation(exposed.relation);
  for (int i = 0; i < rel.arity; ++i) {
    access.output_columns.emplace_back(StrCat("#p", i), i);
  }
  std::vector<std::string> input_attrs;
  for (int pos : method.input_positions) {
    ChaseTermId t = exposed.terms[pos];
    if (TermArena::IsConstant(t)) {
      access.constant_inputs.emplace_back(pos, arena_.ConstantOf(t));
    } else {
      std::string attr = arena_.DisplayName(t);
      access.input_binding.emplace_back(attr, pos);
      if (std::find(input_attrs.begin(), input_attrs.end(), attr) ==
          input_attrs.end()) {
        input_attrs.push_back(attr);
      }
    }
  }
  if (!input_attrs.empty()) {
    LCP_CHECK(!parent_table.empty())
        << "accessible null inputs require a previous table";
    access.input =
        RaExpr::Project(RaExpr::TempScan(parent_table), input_attrs);
  }
  child.commands.push_back(std::move(access));

  // One derived table per induced fact, then one join command.
  std::vector<std::string> fact_tables;
  for (size_t fi = 0; fi < induced.size(); ++fi) {
    const Fact& d = induced[fi];
    RaExprPtr expr = RaExpr::TempScan(raw);
    std::vector<RaExpr::Condition> conds;
    std::unordered_map<ChaseTermId, int> first_pos;
    std::vector<std::pair<std::string, std::string>> renames;
    std::vector<std::string> proj;
    for (int i = 0; i < rel.arity; ++i) {
      ChaseTermId t = d.terms[i];
      std::string col = StrCat("#p", i);
      if (TermArena::IsConstant(t)) {
        conds.push_back(
            RaExpr::Condition::AttrEqConst(col, arena_.ConstantOf(t)));
        continue;
      }
      auto it = first_pos.find(t);
      if (it != first_pos.end()) {
        conds.push_back(
            RaExpr::Condition::AttrEqAttr(col, StrCat("#p", it->second)));
      } else {
        first_pos.emplace(t, i);
        std::string attr = arena_.DisplayName(t);
        renames.emplace_back(col, attr);
        proj.push_back(attr);
        if (std::find(child.attrs.begin(), child.attrs.end(), attr) ==
            child.attrs.end()) {
          child.attrs.push_back(attr);
        }
      }
    }
    if (!conds.empty()) expr = RaExpr::Select(std::move(expr), std::move(conds));
    if (!renames.empty()) {
      expr = RaExpr::Rename(std::move(expr), std::move(renames));
    }
    expr = RaExpr::Project(std::move(expr), std::move(proj));
    std::string table = StrCat("t", child.id, "_f", fi);
    child.commands.push_back(QueryCommand{table, std::move(expr)});
    fact_tables.push_back(std::move(table));
  }
  RaExprPtr joined =
      parent_table.empty() ? nullptr : RaExpr::TempScan(parent_table);
  for (const std::string& table : fact_tables) {
    RaExprPtr scan = RaExpr::TempScan(table);
    joined = joined ? RaExpr::Join(std::move(joined), std::move(scan))
                    : std::move(scan);
  }
  child.table = StrCat("t", child.id);
  child.commands.push_back(QueryCommand{child.table, std::move(joined)});

  // --- cost & pruning -------------------------------------------------------
  Plan partial;
  partial.commands = child.commands;
  partial.output_table = child.table;
  child.cost = cost_.Cost(partial);

  if (options_.prune_by_cost && outcome_.best.has_value() &&
      child.cost >= outcome_.best->cost) {
    child.pruned = true;
    ++outcome_.stats.pruned_cost;
    Log(child, "pruned(cost)");
    return -1;
  }
  if (options_.prune_by_dominance && IsDominated(child)) {
    child.pruned = true;
    ++outcome_.stats.pruned_dominance;
    Log(child, "pruned(dominated)");
    return -1;
  }

  bool success = CheckSuccess(child);
  int child_id = child.id;
  nodes_.push_back(std::move(child));
  ++outcome_.stats.nodes_created;
  // Charge the node; the main loop's Check() notices an exceeded cap before
  // the next expansion, so at most one node overshoots the budget.
  if (options_.budget != nullptr) (void)options_.budget->ChargeNode();
  if (success) {
    RecordSuccess(nodes_.back());
    Log(nodes_.back(), StrCat("SUCCESS cost=", nodes_.back().cost));
  } else {
    Log(nodes_.back(), StrCat("cost=", nodes_.back().cost));
  }
  return child_id;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

void SearchContext::Log(const Node& node, const std::string& status) {
  if (!options_.collect_exploration_log) return;
  outcome_.exploration_log.push_back(
      StrCat("n", node.id, (node.parent >= 0 ? StrCat(" <- n", node.parent)
                                             : std::string("")),
             " [", node.label, "] facts=", node.config.size(),
             " accesses=", node.accesses, " ", status));
}

Result<SearchOutcome> SearchContext::Run() {
  Status init = InitRoot();
  if (!init.ok()) {
    // Anytime contract: a budget that dies during the root closure yields an
    // empty best-effort outcome, not an error.
    if (options_.budget != nullptr && options_.budget->exhausted()) {
      outcome_.exhaustion = options_.budget->exhaustion();
      return std::move(outcome_);
    }
    return init;
  }
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    if (options_.budget != nullptr) {
      Status budget_status = options_.budget->Check();
      if (!budget_status.ok()) {
        outcome_.exhaustion = std::move(budget_status);
        break;
      }
    }
    int vid = stack.back();
    Node& v = nodes_[vid];
    if (v.success) {
      stack.pop_back();
      continue;
    }
    // Find the next fireable candidate at v.
    int cand_index = -1;
    while (v.cursor < all_candidates_.size()) {
      int i = static_cast<int>(v.cursor);
      ++v.cursor;
      if (v.removed.count(i) > 0) continue;
      if (CandidateFireable(v, all_candidates_[i])) {
        cand_index = i;
        break;
      }
    }
    if (cand_index < 0) {
      stack.pop_back();
      continue;
    }
    if (v.accesses >= options_.max_access_commands) {
      ++outcome_.stats.depth_limited;
      stack.pop_back();
      continue;
    }
    if (outcome_.stats.nodes_created >= options_.max_nodes) {
      outcome_.exhaustion = ResourceExhaustedError(
          StrCat("search node cap of ", options_.max_nodes, " reached"));
      break;
    }
    Result<int> expanded = Expand(vid, cand_index);
    if (!expanded.ok()) {
      // A chase closure interrupted by the shared budget stops the search
      // gracefully with whatever was found; genuine chase errors propagate.
      if (options_.budget != nullptr && options_.budget->exhausted()) {
        outcome_.exhaustion = options_.budget->exhaustion();
        break;
      }
      return expanded.status();
    }
    int child_id = *expanded;
    if (child_id >= 0 && !nodes_[child_id].success) {
      stack.push_back(child_id);
    }
    if (options_.stop_at_first_plan && outcome_.best.has_value()) break;
  }
  return std::move(outcome_);
}

}  // namespace

ProofSearch::ProofSearch(const AccessibleSchema* accessible,
                         const CostFunction* cost)
    : accessible_(accessible), cost_(cost) {
  LCP_CHECK(accessible != nullptr && cost != nullptr);
}

Result<SearchOutcome> ProofSearch::Run(const ConjunctiveQuery& query,
                                       const SearchOptions& options) const {
  LCP_RETURN_IF_ERROR(accessible_->base().ValidateQuery(query));
  if (accessible_->variant() != AccessibleVariant::kStandard) {
    return InvalidArgumentError(
        "ProofSearch (Algorithm 1) uses the standard AcSch axioms; build the "
        "accessible schema with AccessibleVariant::kStandard");
  }
  SearchContext context(*accessible_, *cost_, query, options);
  return context.Run();
}

Result<FoundPlan> FindAnyPlan(const AccessibleSchema& accessible,
                              const ConjunctiveQuery& query,
                              int max_access_commands) {
  SimpleCostFunction cost(&accessible.base());
  ProofSearch search(&accessible, &cost);
  SearchOptions options;
  options.max_access_commands = max_access_commands;
  options.stop_at_first_plan = true;
  options.prune_by_cost = false;
  LCP_ASSIGN_OR_RETURN(SearchOutcome outcome, search.Run(query, options));
  if (!outcome.best.has_value()) {
    return NotFoundError(
        StrCat("no plan with at most ", max_access_commands,
               " access commands answers ", query.name));
  }
  return *outcome.best;
}

}  // namespace lcp
