#ifndef LCP_PLANNER_NEGATION_SEARCH_H_
#define LCP_PLANNER_NEGATION_SEARCH_H_

#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/base/result.h"
#include "lcp/chase/engine.h"
#include "lcp/planner/executable_query.h"

namespace lcp {

/// One recorded firing of an AcSch¬ chase proof (§4, "Algorithm
/// Description"): a positive accessibility firing exposing a base fact, or
/// a negative accessibility firing exposing an inferred-accessible fact
/// (adding its base version to the configuration).
struct NegProofStep {
  bool negative = false;
  AccessMethodId method = kInvalidAccessMethod;
  /// The base-relation fact (terms over the shared arena).
  Fact fact;
};

struct NegSearchOptions {
  /// Maximum accessibility firings in a proof.
  int max_steps = 6;
  /// Node budget for the DFS.
  int max_nodes = 50000;
  /// Chase control for the closure after each firing.
  ChaseOptions closure_chase;
};

struct NegProofOutcome {
  std::vector<NegProofStep> steps;
  /// The executable FO query read off the proof by backward induction
  /// (Theorem 7). Pure-∃ proofs give ∃-chains; negative firings give
  /// ∀-nodes (USPJ¬ when compiled).
  ExecutableQueryPtr query;
  int nodes_explored = 0;
};

/// Searches for a chase proof of InferredAccQ from the boolean query Q
/// using the AcSch¬ axioms (Theorem 3: positive accessibility firings plus
/// negative firings requiring every position accessible) or the AcSch↔
/// axioms (Theorem 2: bidirectional firings keyed on a method's input
/// positions), and translates the first proof found into an executable
/// query via the backward-induction algorithm of §4. The accessible schema
/// selects the axiom system (kNegative or kBidirectional).
///
/// `arena` supplies the chase terms and must outlive the outcome (the
/// executable query's terms point into it). Note: AcSch↔ proofs can yield
/// ∀-accesses that bind fresh terms; those evaluate directly
/// (EvaluateExecutable) but require division to compile to a static plan —
/// CompileExecutable reports UNIMPLEMENTED for them.
Result<NegProofOutcome> FindNegativeProof(const AccessibleSchema& accessible,
                                          const ConjunctiveQuery& query,
                                          const NegSearchOptions& options,
                                          TermArena& arena);

}  // namespace lcp

#endif  // LCP_PLANNER_NEGATION_SEARCH_H_
