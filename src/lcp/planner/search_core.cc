#include "lcp/planner/search_core.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "lcp/base/strings.h"
#include "lcp/chase/matcher.h"

namespace lcp {
namespace search_internal {

SearchCore::SearchCore(const AccessibleSchema& acc, const CostFunction& cost,
                       const ConjunctiveQuery& query,
                       const SearchOptions& options)
    : acc_(acc),
      cost_(cost),
      query_(query),
      options_(options),
      root_chase_(options.root_chase),
      closure_chase_(options.closure_chase) {
  // One budget bounds the whole episode: the search loop and every chase
  // closure it runs charge against the same pool.
  if (options.budget != nullptr) {
    if (root_chase_.budget == nullptr) root_chase_.budget = options.budget;
    if (closure_chase_.budget == nullptr) {
      closure_chase_.budget = options.budget;
    }
  }
}

Result<SearchNode> SearchCore::InitRoot(ChaseEngine& engine,
                                        SearchStats& stats) {
  // Canonical database of Q, then the root closure with the original
  // integrity constraints ("Original Schema Reasoning First").
  CanonicalDatabase canonical = BuildCanonicalDatabase(query_, arena_);
  SearchNode root;
  root.id = 0;
  root.config = std::move(canonical.config);
  LCP_ASSIGN_OR_RETURN(
      ChaseStats root_stats,
      engine.Run(acc_.original_constraints(), root_chase_, root.config));
  stats.root_chase_firings = root_stats.firings;

  // Schema constants (and by our convention, the query's constants) are
  // accessible from the start.
  for (const Value& c : acc_.base().constants()) {
    MarkAccessible(root, arena_.InternConstant(c));
  }
  for (const Atom& atom : query_.atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_constant()) {
        MarkAccessible(root, arena_.InternConstant(t.constant()));
      }
    }
  }

  // Global candidate list: every (base fact, method-on-its-relation) pair,
  // ordered by derivation depth (fact insertion index) then method cost.
  // Methods on the exclusion mask (quarantined by the source-health
  // registry) never become candidates, so every plan read off a proof is
  // guaranteed to route around them — in both drivers, which share this
  // enumeration.
  std::vector<char> excluded(
      static_cast<size_t>(acc_.base().num_access_methods()), 0);
  for (AccessMethodId m : options_.excluded_methods) {
    if (m >= 0 && static_cast<size_t>(m) < excluded.size()) excluded[m] = 1;
  }
  for (int i = 0; i < static_cast<int>(root.config.facts().size()); ++i) {
    const Fact& fact = root.config.facts()[i];
    if (acc_.KindOf(fact.relation) != AccessibleRelationKind::kBase) continue;
    for (AccessMethodId m : acc_.base().MethodsOnRelation(fact.relation)) {
      if (excluded[m]) continue;
      all_candidates_.push_back(Candidate{i, m});
    }
  }
  std::stable_sort(
      all_candidates_.begin(), all_candidates_.end(),
      [&](const Candidate& a, const Candidate& b) {
        const AccessMethod& ma = acc_.base().access_method(a.method);
        const AccessMethod& mb = acc_.base().access_method(b.method);
        if (options_.candidate_order == CandidateOrder::kFreeAccessFirst) {
          bool fa = ma.is_free_access();
          bool fb = mb.is_free_access();
          if (fa != fb) return fa;
        }
        if (a.fact_index != b.fact_index) return a.fact_index < b.fact_index;
        if (ma.cost != mb.cost) return ma.cost < mb.cost;
        return a.method < b.method;
      });

  // Compile InferredAccQ for success detection.
  ConjunctiveQuery inferred_q = acc_.InferredAccQuery(query_);
  query_pattern_ = CompileAtoms(inferred_q.atoms, query_vars_, arena_);
  query_assignment_template_.assign(query_vars_.size(), kUnboundTerm);
  for (const std::string& v : query_.free_variables) {
    ChaseTermId term = canonical.var_to_term.at(v);
    query_assignment_template_[query_vars_.IndexOf(v)] = term;
    free_var_terms_.push_back(term);
  }

  // Compile the inferred-accessible copies of the constraints once.
  for (const Tgd& tgd : acc_.inferred_constraints()) {
    compiled_inferred_.push_back(CompileTgd(tgd, arena_));
  }

  root.label = "root";
  return root;
}

void SearchCore::MarkAccessible(SearchNode& node, ChaseTermId term) const {
  if (!node.accessible_terms.insert(term).second) return;
  node.config.Add(Fact(acc_.accessible_relation(), {term}));
}

int SearchCore::NextCandidate(SearchNode& node) const {
  while (node.cursor < all_candidates_.size()) {
    int i = static_cast<int>(node.cursor);
    ++node.cursor;
    if (node.removed.count(i) > 0) continue;
    if (CandidateFireable(node, all_candidates_[i])) return i;
  }
  return -1;
}

bool SearchCore::CandidateFireable(const SearchNode& node,
                                   const Candidate& cand) const {
  // Callers filter node.removed; here we check the semantic conditions.
  const Fact& fact = node.config.facts()[cand.fact_index];
  if (node.config.Contains(AccessedFact(fact))) return false;
  const AccessMethod& method = acc_.base().access_method(cand.method);
  for (int pos : method.input_positions) {
    if (node.accessible_terms.count(fact.terms[pos]) == 0) return false;
  }
  return true;
}

bool SearchCore::CheckSuccess(const SearchNode& node) const {
  std::vector<ChaseTermId> assignment = query_assignment_template_;
  return HasHomomorphism(query_pattern_, node.config, std::move(assignment));
}

// GCC 12's middle end, at some inlining depths, reports false-positive
// -Wrestrict / -Wmaybe-uninitialized warnings for std::variant<Command>
// relocations inside the commands.push_back calls in MakeFoundPlan and
// BuildChild (all AccessCommand members have default initializers; nothing
// here reads uninitialized state). Suppress narrowly around these functions
// to keep the build warning-clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

FoundPlan SearchCore::MakeFoundPlan(const SearchNode& node) const {
  Plan plan;
  plan.commands = node.commands;
  if (!query_.free_variables.empty()) {
    std::vector<std::string> out_attrs;
    for (ChaseTermId term : free_var_terms_) {
      out_attrs.push_back(arena_.DisplayName(term));
    }
    std::string out_table = StrCat("t", node.id, "_out");
    plan.commands.push_back(QueryCommand{
        out_table, RaExpr::Project(RaExpr::TempScan(node.table), out_attrs)});
    plan.output_table = out_table;
    plan.output_attrs = out_attrs;
  } else {
    plan.output_table = node.table;
  }
  return FoundPlan{std::move(plan), node.cost};
}

Result<SearchNode> SearchCore::BuildChild(SearchNode& parent, int cand_index,
                                          int child_id, ChaseEngine& engine,
                                          SearchStats& stats) const {
  ++stats.nodes_expanded;
  const Candidate& cand = all_candidates_[cand_index];
  // Take copies up front: the parent's containers must not be aliased while
  // the child is assembled.
  const Fact exposed = parent.config.facts()[cand.fact_index];
  const AccessMethod& method = acc_.base().access_method(cand.method);

  // Facts induced by firing: all base facts over the same relation agreeing
  // with the exposed fact on the method's input positions, not yet accessed.
  // Seed the scan from the most selective positional-index bucket over the
  // method's input positions instead of the full relation extension.
  const std::vector<int>* candidates = &parent.config.FactsOf(exposed.relation);
  if (candidates->size() > ChaseConfig::kIndexProbeThreshold) {
    for (int pos : method.input_positions) {
      const std::vector<int>& bucket =
          parent.config.FactsWith(exposed.relation, pos, exposed.terms[pos]);
      if (bucket.size() < candidates->size()) candidates = &bucket;
    }
  }
  std::vector<Fact> induced;
  for (int idx : *candidates) {
    const Fact& d = parent.config.facts()[idx];
    bool agrees = true;
    for (int pos : method.input_positions) {
      if (d.terms[pos] != exposed.terms[pos]) {
        agrees = false;
        break;
      }
    }
    if (agrees && !parent.config.Contains(AccessedFact(d))) {
      induced.push_back(d);
    }
  }
  LCP_CHECK(!induced.empty());

  // Algorithm 1, line 10: the parent will not re-fire this same access for
  // any of the induced facts.
  for (int i = 0; i < static_cast<int>(all_candidates_.size()); ++i) {
    if (all_candidates_[i].method != cand.method) continue;
    const Fact& d = parent.config.facts()[all_candidates_[i].fact_index];
    if (d.relation != exposed.relation) continue;
    bool agrees = true;
    for (int pos : method.input_positions) {
      if (d.terms[pos] != exposed.terms[pos]) {
        agrees = false;
        break;
      }
    }
    if (agrees) parent.removed.insert(i);
  }

  SearchNode child;
  child.id = child_id;
  child.parent = parent.id;
  child.config = parent.config;
  child.accessible_terms = parent.accessible_terms;
  child.commands = parent.commands;
  child.table = parent.table;
  child.attrs = parent.attrs;
  child.accesses = parent.accesses + 1;
  child.label =
      StrCat("expose ", FactToString(exposed, acc_.schema(), arena_), " via ",
             method.name);

  // --- configuration update ----------------------------------------------
  for (const Fact& d : induced) {
    child.config.Add(AccessedFact(d));
    child.config.Add(Fact(acc_.InferredOf(d.relation), d.terms));
    for (ChaseTermId t : d.terms) MarkAccessible(child, t);
  }
  // "Fire Inferred Accessible Rules Immediately": close under the
  // InferredAcc copies of the integrity constraints.
  LCP_ASSIGN_OR_RETURN(
      ChaseStats closure_stats,
      engine.Run(compiled_inferred_, closure_chase_, child.config));
  stats.closure_firings += closure_stats.firings;

  // --- plan update (§4 proof-to-plan translation) --------------------------
  const std::string parent_table = child.table;
  std::string raw = StrCat("t", child.id, "_raw");
  AccessCommand access;
  access.method = cand.method;
  access.output_table = raw;
  const Relation& rel = acc_.base().relation(exposed.relation);
  for (int i = 0; i < rel.arity; ++i) {
    access.output_columns.emplace_back(StrCat("#p", i), i);
  }
  std::vector<std::string> input_attrs;
  for (int pos : method.input_positions) {
    ChaseTermId t = exposed.terms[pos];
    if (TermArena::IsConstant(t)) {
      access.constant_inputs.emplace_back(pos, arena_.ConstantOf(t));
    } else {
      std::string attr = arena_.DisplayName(t);
      access.input_binding.emplace_back(attr, pos);
      if (std::find(input_attrs.begin(), input_attrs.end(), attr) ==
          input_attrs.end()) {
        input_attrs.push_back(attr);
      }
    }
  }
  if (!input_attrs.empty()) {
    LCP_CHECK(!parent_table.empty())
        << "accessible null inputs require a previous table";
    access.input =
        RaExpr::Project(RaExpr::TempScan(parent_table), input_attrs);
  }
  child.commands.push_back(std::move(access));

  // One derived table per induced fact, then one join command.
  std::vector<std::string> fact_tables;
  for (size_t fi = 0; fi < induced.size(); ++fi) {
    const Fact& d = induced[fi];
    RaExprPtr expr = RaExpr::TempScan(raw);
    std::vector<RaExpr::Condition> conds;
    std::unordered_map<ChaseTermId, int> first_pos;
    std::vector<std::pair<std::string, std::string>> renames;
    std::vector<std::string> proj;
    for (int i = 0; i < rel.arity; ++i) {
      ChaseTermId t = d.terms[i];
      std::string col = StrCat("#p", i);
      if (TermArena::IsConstant(t)) {
        conds.push_back(
            RaExpr::Condition::AttrEqConst(col, arena_.ConstantOf(t)));
        continue;
      }
      auto it = first_pos.find(t);
      if (it != first_pos.end()) {
        conds.push_back(
            RaExpr::Condition::AttrEqAttr(col, StrCat("#p", it->second)));
      } else {
        first_pos.emplace(t, i);
        std::string attr = arena_.DisplayName(t);
        renames.emplace_back(col, attr);
        proj.push_back(attr);
        if (std::find(child.attrs.begin(), child.attrs.end(), attr) ==
            child.attrs.end()) {
          child.attrs.push_back(attr);
        }
      }
    }
    if (!conds.empty()) expr = RaExpr::Select(std::move(expr), std::move(conds));
    if (!renames.empty()) {
      expr = RaExpr::Rename(std::move(expr), std::move(renames));
    }
    expr = RaExpr::Project(std::move(expr), std::move(proj));
    std::string table = StrCat("t", child.id, "_f", fi);
    child.commands.push_back(QueryCommand{table, std::move(expr)});
    fact_tables.push_back(std::move(table));
  }
  RaExprPtr joined =
      parent_table.empty() ? nullptr : RaExpr::TempScan(parent_table);
  for (const std::string& table : fact_tables) {
    RaExprPtr scan = RaExpr::TempScan(table);
    joined = joined ? RaExpr::Join(std::move(joined), std::move(scan))
                    : std::move(scan);
  }
  child.table = StrCat("t", child.id);
  child.commands.push_back(QueryCommand{child.table, std::move(joined)});

  // --- cost ----------------------------------------------------------------
  Plan partial;
  partial.commands = child.commands;
  partial.output_table = child.table;
  child.cost = cost_.Cost(partial);
  return child;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

SearchCore::DominanceProbe SearchCore::MakeDominanceProbe(
    const SearchNode& node) const {
  // Build the pattern: the node's base, InferredAcc, and accessible facts,
  // with nulls as variables except the query's free-variable constants,
  // which any dominating configuration must also realize identically.
  std::unordered_set<ChaseTermId> fixed(free_var_terms_.begin(),
                                        free_var_terms_.end());
  std::unordered_map<ChaseTermId, int> var_of;
  DominanceProbe probe;
  for (const Fact& fact : node.config.facts()) {
    AccessibleRelationKind kind = acc_.KindOf(fact.relation);
    if (kind == AccessibleRelationKind::kAccessed) continue;
    PatternAtom atom;
    atom.relation = fact.relation;
    for (ChaseTermId t : fact.terms) {
      PatternAtom::Slot slot;
      if (TermArena::IsConstant(t) || fixed.count(t) > 0) {
        slot.is_variable = false;
        slot.term = t;
      } else {
        slot.is_variable = true;
        auto [it, inserted] =
            var_of.emplace(t, static_cast<int>(var_of.size()));
        slot.var_index = it->second;
      }
      atom.slots.push_back(slot);
    }
    probe.pattern.push_back(std::move(atom));
  }
  probe.num_vars = var_of.size();
  return probe;
}

std::string SearchCore::LogLine(const SearchNode& node,
                                const std::string& status) const {
  return StrCat("n", node.id,
                (node.parent >= 0 ? StrCat(" <- n", node.parent)
                                  : std::string("")),
                " [", node.label, "] facts=", node.config.size(),
                " accesses=", node.accesses, " ", status);
}

}  // namespace search_internal
}  // namespace lcp
