#include "lcp/planner/negation_search.h"

#include <algorithm>
#include <unordered_set>

#include "lcp/base/strings.h"
#include "lcp/chase/matcher.h"

namespace lcp {

namespace {

/// Order-independent fingerprint of (configuration, accessible set) for
/// visited-state pruning. Hash collisions would merely prune a state, never
/// corrupt a found proof.
size_t StateFingerprint(const ChaseConfig& config) {
  size_t combined = 0;
  FactHash hasher;
  for (const Fact& fact : config.facts()) {
    combined ^= hasher(fact) * 0x9e3779b97f4a7c15ULL + 1;
  }
  return combined;
}

class NegSearcher {
 public:
  NegSearcher(const AccessibleSchema& acc, const ConjunctiveQuery& query,
              const NegSearchOptions& options, TermArena& arena)
      : acc_(acc),
        query_(query),
        options_(options),
        arena_(arena),
        engine_(&acc.schema(), &arena) {}

  Result<NegProofOutcome> Run() {
    CanonicalDatabase canonical = BuildCanonicalDatabase(query_, arena_);
    ChaseConfig config = std::move(canonical.config);

    // Root closure with the original constraints.
    LCP_ASSIGN_OR_RETURN(
        ChaseStats root_stats,
        engine_.Run(acc_.original_constraints(), options_.closure_chase,
                    config));
    (void)root_stats;

    std::unordered_set<ChaseTermId> accessible;
    for (const Value& c : acc_.base().constants()) {
      MarkAccessible(config, accessible, arena_.InternConstant(c));
    }
    for (const Atom& atom : query_.atoms) {
      for (const Term& t : atom.terms) {
        if (t.is_constant()) {
          MarkAccessible(config, accessible,
                         arena_.InternConstant(t.constant()));
        }
      }
    }

    // Compile InferredAccQ (boolean: no pre-bound free variables).
    ConjunctiveQuery inferred = acc_.InferredAccQuery(query_);
    query_pattern_ = CompileAtoms(inferred.atoms, query_vars_, arena_);

    for (const Tgd& tgd : acc_.inferred_constraints()) {
      compiled_inferred_.push_back(CompileTgd(tgd, arena_));
    }
    for (const Tgd& tgd : acc_.original_constraints()) {
      compiled_original_.push_back(CompileTgd(tgd, arena_));
    }

    std::vector<NegProofStep> steps;
    LCP_ASSIGN_OR_RETURN(bool found, Dfs(config, accessible, steps));
    if (!found) {
      return NotFoundError(
          StrCat("no AcSch-neg proof with at most ", options_.max_steps,
                 " accessibility firings for ", query_.name));
    }
    NegProofOutcome outcome;
    outcome.steps = std::move(found_steps_);
    outcome.nodes_explored = nodes_;
    // Backward induction (§4): fold the step list into an executable query.
    ExecutableQueryPtr q = ExecutableQuery::True();
    for (auto it = outcome.steps.rbegin(); it != outcome.steps.rend(); ++it) {
      q = it->negative
              ? ExecutableQuery::Forall(it->method, it->fact.terms, q)
              : ExecutableQuery::Exists(it->method, it->fact.terms, q);
    }
    outcome.query = std::move(q);
    return outcome;
  }

 private:
  void MarkAccessible(ChaseConfig& config,
                      std::unordered_set<ChaseTermId>& accessible,
                      ChaseTermId term) {
    if (accessible.insert(term).second) {
      config.Add(Fact(acc_.accessible_relation(), {term}));
    }
  }

  bool Matches(const ChaseConfig& config) {
    std::vector<ChaseTermId> assignment(query_vars_.size(), kUnboundTerm);
    return HasHomomorphism(query_pattern_, config, std::move(assignment));
  }

  /// Depth-first search over proof states; returns true when a proof was
  /// found (recorded in found_steps_).
  Result<bool> Dfs(const ChaseConfig& config,
                   const std::unordered_set<ChaseTermId>& accessible,
                   std::vector<NegProofStep>& steps) {
    if (Matches(config)) {
      found_steps_ = steps;
      return true;
    }
    if (static_cast<int>(steps.size()) >= options_.max_steps) return false;
    if (nodes_ >= options_.max_nodes) return false;
    ++nodes_;
    if (!visited_.insert(StateFingerprint(config)).second) return false;

    // Enumerate moves. Positive exposures first (they are what SPJ plans
    // use); negative firings after.
    struct Move {
      bool negative;
      AccessMethodId method;
      Fact fact;
    };
    std::vector<Move> moves;
    for (const Fact& fact : config.facts()) {
      AccessibleRelationKind kind = acc_.KindOf(fact.relation);
      if (kind == AccessibleRelationKind::kBase) {
        if (config.Contains(Fact(acc_.AccessedOf(fact.relation), fact.terms))) {
          continue;
        }
        for (AccessMethodId m : acc_.base().MethodsOnRelation(fact.relation)) {
          const AccessMethod& method = acc_.base().access_method(m);
          bool fireable = true;
          for (int pos : method.input_positions) {
            if (accessible.count(fact.terms[pos]) == 0) fireable = false;
          }
          if (fireable) moves.push_back(Move{false, m, fact});
        }
      } else if (kind == AccessibleRelationKind::kInferred) {
        RelationId base_rel = acc_.BaseOf(fact.relation);
        if (acc_.base().MethodsOnRelation(base_rel).empty()) continue;
        Fact base_fact(base_rel, fact.terms);
        if (config.Contains(base_fact)) continue;
        if (acc_.variant() == AccessibleVariant::kNegative) {
          // AcSch¬ (Theorem 3): the negative axiom needs *every* position
          // accessible; any method may realize the checking access.
          bool all_accessible = true;
          for (ChaseTermId t : fact.terms) {
            if (accessible.count(t) == 0) all_accessible = false;
          }
          if (!all_accessible) continue;
          for (AccessMethodId m : acc_.base().MethodsOnRelation(base_rel)) {
            moves.push_back(Move{true, m, base_fact});
          }
        } else {
          // AcSch↔ (Theorem 2): one bidirectional axiom per method, firing
          // as soon as that method's *input* positions are accessible; the
          // ∀-access may then bind the remaining positions.
          for (AccessMethodId m : acc_.base().MethodsOnRelation(base_rel)) {
            const AccessMethod& method = acc_.base().access_method(m);
            bool inputs_accessible = true;
            for (int pos : method.input_positions) {
              if (accessible.count(fact.terms[pos]) == 0) {
                inputs_accessible = false;
              }
            }
            if (inputs_accessible) moves.push_back(Move{true, m, base_fact});
          }
        }
      }
    }

    for (const Move& move : moves) {
      ChaseConfig child = config;
      std::unordered_set<ChaseTermId> child_accessible = accessible;
      child.Add(Fact(acc_.AccessedOf(move.fact.relation), move.fact.terms));
      child.Add(Fact(acc_.InferredOf(move.fact.relation), move.fact.terms));
      for (ChaseTermId t : move.fact.terms) {
        MarkAccessible(child, child_accessible, t);
      }
      if (move.negative) {
        // The negative firing puts the base fact into the configuration,
        // which can wake the original constraints.
        child.Add(move.fact);
        LCP_RETURN_IF_ERROR(
            engine_.Run(compiled_original_, options_.closure_chase, child)
                .status());
      }
      LCP_RETURN_IF_ERROR(
          engine_.Run(compiled_inferred_, options_.closure_chase, child)
              .status());
      steps.push_back(NegProofStep{move.negative, move.method, move.fact});
      LCP_ASSIGN_OR_RETURN(bool found, Dfs(child, child_accessible, steps));
      steps.pop_back();
      if (found) return true;
    }
    return false;
  }

  const AccessibleSchema& acc_;
  const ConjunctiveQuery& query_;
  const NegSearchOptions& options_;
  TermArena& arena_;
  ChaseEngine engine_;
  std::vector<CompiledTgd> compiled_inferred_;
  std::vector<CompiledTgd> compiled_original_;
  VariableTable query_vars_;
  std::vector<PatternAtom> query_pattern_;
  std::unordered_set<size_t> visited_;
  std::vector<NegProofStep> found_steps_;
  int nodes_ = 0;
};

}  // namespace

Result<NegProofOutcome> FindNegativeProof(const AccessibleSchema& accessible,
                                          const ConjunctiveQuery& query,
                                          const NegSearchOptions& options,
                                          TermArena& arena) {
  if (!query.is_boolean()) {
    return InvalidArgumentError(
        "the backward-induction algorithm is implemented for boolean "
        "queries (as in the paper's §4 presentation)");
  }
  if (accessible.variant() == AccessibleVariant::kStandard) {
    return InvalidArgumentError(
        "FindNegativeProof requires the kNegative (Theorem 3) or "
        "kBidirectional (Theorem 2) axiom system; use ProofSearch for "
        "AcSch-standard SPJ planning");
  }
  LCP_RETURN_IF_ERROR(accessible.base().ValidateQuery(query));
  NegSearcher searcher(accessible, query, options, arena);
  return searcher.Run();
}

}  // namespace lcp
