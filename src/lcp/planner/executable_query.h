#ifndef LCP_PLANNER_EXECUTABLE_QUERY_H_
#define LCP_PLANNER_EXECUTABLE_QUERY_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "lcp/base/result.h"
#include "lcp/chase/fact.h"
#include "lcp/chase/term_arena.h"
#include "lcp/plan/plan.h"
#include "lcp/runtime/source.h"

namespace lcp {

/// An executable FO query in the sense of §3/Theorem 7: a chain of
/// access-guarded quantifiers ending in True. Each node carries the chase
/// fact R(c⃗) its proof step exposed; at evaluation time the bound chase
/// terms supply the access inputs and the returned tuples bind (∃) or
/// constrain (∀) the remaining terms.
///
/// This is the output language of the backward-induction algorithm of §4
/// ("RA-plans for schemas with TGDs"): positive accessibility firings
/// become ∃-access nodes, negative firings become ∀-access nodes.
class ExecutableQuery {
 public:
  enum class Kind {
    kTrue,    ///< The empty continuation: always true.
    kExists,  ///< ∃w (access returns w unifying with the fact) ∧ next.
    kForall,  ///< ∀w (access returns w joining the binding) → next.
  };

  static std::shared_ptr<const ExecutableQuery> True();
  static std::shared_ptr<const ExecutableQuery> Exists(
      AccessMethodId method, std::vector<ChaseTermId> fact_terms,
      std::shared_ptr<const ExecutableQuery> next);
  static std::shared_ptr<const ExecutableQuery> Forall(
      AccessMethodId method, std::vector<ChaseTermId> fact_terms,
      std::shared_ptr<const ExecutableQuery> next);

  Kind kind() const { return kind_; }
  AccessMethodId method() const { return method_; }
  const std::vector<ChaseTermId>& fact_terms() const { return fact_terms_; }
  const std::shared_ptr<const ExecutableQuery>& next() const { return next_; }

  /// Number of access nodes in the chain.
  int depth() const;
  /// True if the chain contains a ∀-access (i.e. the compiled plan needs
  /// the difference operator: USPJ¬ instead of SPJ).
  bool HasForall() const;

  std::string ToString(const Schema& schema, const TermArena& arena) const;

 private:
  explicit ExecutableQuery(Kind kind) : kind_(kind) {}

  Kind kind_;
  AccessMethodId method_ = kInvalidAccessMethod;
  std::vector<ChaseTermId> fact_terms_;
  std::shared_ptr<const ExecutableQuery> next_;
};

using ExecutableQueryPtr = std::shared_ptr<const ExecutableQuery>;

/// Evaluates a boolean executable query against a source by making the
/// accesses top-down (Proposition 1 semantics). `arena` resolves constants
/// among the fact terms; labeled nulls start unbound.
Result<bool> EvaluateExecutable(const ExecutableQuery& query,
                                SimulatedSource& source,
                                const TermArena& arena);

/// Compiles a boolean executable query into a plan (Proposition 1): pure-∃
/// chains yield SPJ plans; chains with ∀-accesses yield USPJ¬ plans where
/// each universal step accepts rows whose fact is absent from the source
/// (difference) or whose continuation accepts them (union). The plan's
/// output is the boolean convention (non-empty nullary table = true).
Result<Plan> CompileExecutable(const ExecutableQuery& query,
                               const Schema& schema, const TermArena& arena);

}  // namespace lcp

#endif  // LCP_PLANNER_EXECUTABLE_QUERY_H_
