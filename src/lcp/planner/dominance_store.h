#ifndef LCP_PLANNER_DOMINANCE_STORE_H_
#define LCP_PLANNER_DOMINANCE_STORE_H_

// Internal header: the sharded concurrent dominance store used by the
// parallel proof-search driver. Not part of the public API.

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "lcp/chase/config.h"
#include "lcp/chase/matcher.h"

namespace lcp {
namespace search_internal {

/// Order-invariant fingerprint of a configuration's fact set (a commutative
/// combine of per-fact hashes). Used ONLY to route insertions across shards
/// so concurrent writers rarely contend on the same mutex — never as an
/// equality test: two configurations may collide, and pruning on fingerprint
/// equality would wrongly discard nodes.
uint64_t ConfigFingerprint(const ChaseConfig& config);

/// Reader-mostly concurrent set of "dominator candidates": the
/// configurations (plus their cost and access count) of every non-pruned
/// node created so far, across all workers. prune_by_dominance asks, for a
/// fresh child, whether any stored configuration with no higher cost and no
/// higher access count admits a homomorphism of the child's dominance probe
/// (§5, "Optimizations").
///
/// Concurrency contract:
///  - Insert takes one shard's exclusive lock; IsDominated takes each
///    shard's shared lock only long enough to copy the qualifying entries
///    out, then runs the (potentially slow) homomorphism checks lock-free
///    against the copied shared_ptrs, so writers are never blocked behind a
///    homomorphism check.
///  - Stored configurations must be immutable and prepared for concurrent
///    reads (ChaseConfig::PrepareForConcurrentReads) before insertion.
///  - Races are benign by construction: a check that misses a concurrently
///    inserted dominator only *loses a prune* (the child is explored
///    redundantly); it can never wrongly prune, because every entry it does
///    see was fully published. This is exactly the soundness direction the
///    search needs.
class ConcurrentDominanceStore {
 public:
  /// `shard_count` is rounded up to a power of two.
  explicit ConcurrentDominanceStore(int shard_count);

  ConcurrentDominanceStore(const ConcurrentDominanceStore&) = delete;
  ConcurrentDominanceStore& operator=(const ConcurrentDominanceStore&) = delete;

  /// Publishes a node's configuration as a dominator candidate. `config`
  /// must already be prepared for concurrent reads.
  void Insert(uint64_t fingerprint, double cost, int accesses,
              std::shared_ptr<const ChaseConfig> config);

  /// True if some stored entry with cost <= `cost` and accesses <=
  /// `accesses` admits a homomorphism of `pattern` (with `num_vars`
  /// pattern variables).
  bool IsDominated(const std::vector<PatternAtom>& pattern, size_t num_vars,
                   double cost, int accesses) const;

  size_t size() const;

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    double cost = 0;
    int accesses = 0;
    std::shared_ptr<const ChaseConfig> config;
  };
  struct Shard {
    mutable std::shared_mutex mutex;
    std::vector<Entry> entries;
  };

  size_t ShardOf(uint64_t fingerprint) const {
    return fingerprint & (shards_.size() - 1);
  }

  std::vector<Shard> shards_;
};

}  // namespace search_internal
}  // namespace lcp

#endif  // LCP_PLANNER_DOMINANCE_STORE_H_
