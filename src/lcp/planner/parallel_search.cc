// The work-stealing parallel driver for Algorithm 1. The sequential driver
// lives in proof_search.cc; both share SearchCore for node expansion. See
// DESIGN.md §8 for the full protocol write-up.
//
// Scheduling: each worker owns a deque of live nodes. A worker expands its
// current node one candidate at a time; a viable (non-pruned, non-success)
// child makes the worker push the *parent* back onto its own deque bottom
// and descend into the child — the same order the sequential driver's
// explicit stack produces — which leaves the parent (the larger remaining
// subtree) exposed for thieves, the classic work-first principle.
//
// Shared state and why the races are benign:
//  - Incumbent bound: best_cost_ is an atomic read with relaxed order on the
//    pruning fast path. A stale read is always >= the true bound, and with a
//    monotone cost function pruning only against a *larger* bound can only
//    keep nodes it could have pruned — never the reverse. Plan publication
//    (rare) goes through best_mutex_, which also moves best_cost_ downward.
//  - Dominance: the sharded store only ever *loses* prunes under races (see
//    dominance_store.h); it never wrongly prunes.
//  - Node ownership: exactly one worker owns a node at a time; the deque
//    mutex synchronizes hand-off. Configurations are immutable after
//    BuildChild and prepared for concurrent reads before entering the
//    dominance store.
//  - Termination: in_flight_ counts live nodes (in some deque or held by a
//    worker). It is incremented before a push makes a node stealable and
//    decremented only when a node's candidates are exhausted, so it reaches
//    zero exactly when the proof space is exhausted. Early stop (budget,
//    node cap, first plan, error) goes through stop_, which every worker
//    polls each iteration.

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "lcp/base/strings.h"
#include "lcp/base/work_steal.h"
#include "lcp/planner/dominance_store.h"
#include "lcp/planner/search_core.h"

namespace lcp {
namespace search_internal {

namespace {

class ParallelDriver {
 public:
  ParallelDriver(const AccessibleSchema& acc, const CostFunction& cost,
                 const ConjunctiveQuery& query, const SearchOptions& options)
      : core_(acc, cost, query, options),
        options_(options),
        num_workers_(options.parallelism),
        deques_(num_workers_),
        workers_(num_workers_),
        // ~4 shards per worker keeps insert contention low without making
        // the all-shard scan in IsDominated noticeable.
        store_(num_workers_ * 4 > 64 ? 64 : num_workers_ * 4) {}

  Result<SearchOutcome> Run() {
    Budget* budget = options_.budget;
    ChaseEngine root_engine(&core_.schema(), &core_.arena());
    Result<SearchNode> root = core_.InitRoot(root_engine, outcome_.stats);
    if (!root.ok()) {
      // Anytime contract: a budget that dies during the root closure yields
      // an empty best-effort outcome, not an error.
      if (budget != nullptr && budget->exhausted()) {
        outcome_.exhaustion = budget->exhaustion();
        return std::move(outcome_);
      }
      return root.status();
    }
    auto root_sp = std::make_shared<SearchNode>(std::move(*root));
    nodes_created_.store(1, std::memory_order_relaxed);
    next_node_id_.store(1, std::memory_order_relaxed);
    // The root counts against the node budget like any other node.
    if (budget != nullptr) (void)budget->ChargeNode();
    if (options_.prune_by_dominance) {
      root_sp->config.PrepareForConcurrentReads();
      store_.Insert(ConfigFingerprint(root_sp->config), root_sp->cost,
                    root_sp->accesses,
                    std::shared_ptr<const ChaseConfig>(root_sp,
                                                       &root_sp->config));
    }
    in_flight_.store(1, std::memory_order_relaxed);
    deques_[0].PushBottom(std::move(root_sp));

    RunWorkers(num_workers_, [this](int wid) { WorkerLoop(wid); });

    // All workers are joined: the shared state has quiesced.
    outcome_.stats.nodes_created =
        nodes_created_.load(std::memory_order_relaxed);
    for (const WorkerState& w : workers_) {
      outcome_.stats.nodes_expanded += w.stats.nodes_expanded;
      outcome_.stats.successes += w.stats.successes;
      outcome_.stats.pruned_cost += w.stats.pruned_cost;
      outcome_.stats.pruned_dominance += w.stats.pruned_dominance;
      outcome_.stats.depth_limited += w.stats.depth_limited;
      outcome_.stats.closure_firings += w.stats.closure_firings;
    }
    if (!fatal_.ok()) return fatal_;
    outcome_.exhaustion = exhaustion_;
    outcome_.best = std::move(best_);
    outcome_.all_plans = std::move(all_plans_);
    return std::move(outcome_);
  }

 private:
  struct alignas(64) WorkerState {
    SearchStats stats;
  };

  void WorkerLoop(int wid) {
    ChaseEngine engine(&core_.schema(), &core_.arena());
    SearchStats& stats = workers_[wid].stats;
    Budget* budget = options_.budget;
    std::shared_ptr<SearchNode> cur;
    while (true) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (cur == nullptr) {
        cur = ObtainWork(wid);
        if (cur == nullptr) {
          if (done_.load(std::memory_order_acquire) ||
              stop_.load(std::memory_order_acquire)) {
            break;
          }
          gate_.Park(std::chrono::microseconds(200));
          continue;
        }
      }
      if (budget != nullptr) {
        Status budget_status = budget->Check();
        if (!budget_status.ok()) {
          LatchExhaustion(std::move(budget_status));
          RequestStop();
          break;
        }
      }
      int cand_index = core_.NextCandidate(*cur);
      if (cand_index < 0) {
        FinishNode();
        cur.reset();
        continue;
      }
      if (cur->accesses >= options_.max_access_commands) {
        ++stats.depth_limited;
        FinishNode();
        cur.reset();
        continue;
      }
      // Checked per worker before each creation, so the global total can
      // overshoot the cap by at most `parallelism` nodes (documented in
      // proof_search.h).
      if (nodes_created_.load(std::memory_order_relaxed) >=
          options_.max_nodes) {
        LatchExhaustion(ResourceExhaustedError(StrCat(
            "search node cap of ", options_.max_nodes, " reached")));
        RequestStop();
        break;
      }
      int child_id = next_node_id_.fetch_add(1, std::memory_order_relaxed);
      Result<SearchNode> built =
          core_.BuildChild(*cur, cand_index, child_id, engine, stats);
      if (!built.ok()) {
        // A chase closure interrupted by the shared budget stops the search
        // gracefully with whatever was found; genuine chase errors
        // propagate.
        if (budget != nullptr && budget->exhausted()) {
          LatchExhaustion(budget->exhaustion());
        } else {
          LatchFatal(built.status());
        }
        RequestStop();
        break;
      }
      SearchNode child = std::move(*built);
      if (options_.prune_by_cost &&
          child.cost >= best_cost_.load(std::memory_order_relaxed)) {
        ++stats.pruned_cost;
        continue;
      }
      if (options_.prune_by_dominance) {
        SearchCore::DominanceProbe probe = core_.MakeDominanceProbe(child);
        if (store_.IsDominated(probe.pattern, probe.num_vars, child.cost,
                               child.accesses)) {
          ++stats.pruned_dominance;
          continue;
        }
      }
      child.success = core_.CheckSuccess(child);
      auto sp = std::make_shared<SearchNode>(std::move(child));
      nodes_created_.fetch_add(1, std::memory_order_relaxed);
      // Charge the node; every worker's Check() notices an exceeded cap
      // before its next expansion.
      if (budget != nullptr) (void)budget->ChargeNode();
      if (options_.prune_by_dominance) {
        // Successful nodes are dominators too (as in the sequential
        // driver's node store).
        sp->config.PrepareForConcurrentReads();
        store_.Insert(ConfigFingerprint(sp->config), sp->cost, sp->accesses,
                      std::shared_ptr<const ChaseConfig>(sp, &sp->config));
      }
      if (sp->success) {
        ++stats.successes;
        PublishPlan(core_.MakeFoundPlan(*sp));
        if (options_.stop_at_first_plan) {
          RequestStop();
          break;
        }
        continue;  // Keep expanding the current node's other candidates.
      }
      // Descend into the child; expose the parent (the larger remaining
      // subtree) for stealing. The increment must precede the push so no
      // idle worker can observe empty deques with in_flight_ == 0 while the
      // parent is in transit.
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      deques_[wid].PushBottom(std::move(cur));
      if (gate_.HasIdlers()) gate_.NotifyOne();
      cur = std::move(sp);
    }
  }

  std::shared_ptr<SearchNode> ObtainWork(int wid) {
    if (std::optional<std::shared_ptr<SearchNode>> own =
            deques_[wid].TryPopBottom()) {
      return std::move(*own);
    }
    for (int i = 1; i < num_workers_; ++i) {
      if (std::optional<std::shared_ptr<SearchNode>> stolen =
              deques_[(wid + i) % num_workers_].TrySteal()) {
        return std::move(*stolen);
      }
    }
    return nullptr;
  }

  /// Called when a node's candidates are exhausted: it leaves the live set.
  void FinishNode() {
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_.store(true, std::memory_order_release);
      gate_.NotifyAll();
    }
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    gate_.NotifyAll();
  }

  void PublishPlan(FoundPlan found) {
    std::lock_guard<std::mutex> lock(best_mutex_);
    if (options_.keep_all_plans) all_plans_.push_back(found);
    if (!best_.has_value() || found.cost < best_->cost) {
      best_cost_.store(found.cost, std::memory_order_relaxed);
      best_ = std::move(found);
    }
  }

  void LatchExhaustion(Status status) {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (exhaustion_.ok()) exhaustion_ = std::move(status);
  }

  void LatchFatal(Status status) {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (fatal_.ok()) fatal_ = std::move(status);
  }

  SearchCore core_;
  const SearchOptions& options_;
  const int num_workers_;

  std::vector<WorkStealingDeque<std::shared_ptr<SearchNode>>> deques_;
  std::vector<WorkerState> workers_;
  IdleGate gate_;
  ConcurrentDominanceStore store_;

  /// Live nodes: in some deque or held by a worker.
  std::atomic<int> in_flight_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> done_{false};
  std::atomic<int> nodes_created_{0};
  /// Node-id allocator; pruned children leave id gaps, which is fine — ids
  /// only need to be unique (they name plan tables).
  std::atomic<int> next_node_id_{0};

  /// The incumbent bound, read lock-free on the pruning fast path. Only
  /// ever decreases; writes go through best_mutex_.
  std::atomic<double> best_cost_{std::numeric_limits<double>::infinity()};
  std::mutex best_mutex_;
  std::optional<FoundPlan> best_;
  std::vector<FoundPlan> all_plans_;

  std::mutex status_mutex_;
  Status exhaustion_;
  Status fatal_;

  SearchOutcome outcome_;
};

}  // namespace

Result<SearchOutcome> RunParallelSearch(const AccessibleSchema& accessible,
                                        const CostFunction& cost,
                                        const ConjunctiveQuery& query,
                                        const SearchOptions& options) {
  LCP_CHECK(options.parallelism > 1);
  ParallelDriver driver(accessible, cost, query, options);
  return driver.Run();
}

}  // namespace search_internal
}  // namespace lcp
