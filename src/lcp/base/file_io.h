#ifndef LCP_BASE_FILE_IO_H_
#define LCP_BASE_FILE_IO_H_

#include <string>
#include <string_view>

#include "lcp/base/result.h"
#include "lcp/base/status.h"

namespace lcp {

/// Reads the entire file at `path` into a string. kNotFound when the file
/// does not exist (callers that treat a missing snapshot as a cold start
/// branch on the code); kUnavailable for any other I/O failure.
Result<std::string> ReadFileToString(const std::string& path);

/// Durably replaces the file at `path` with `data`: writes to a temporary
/// sibling (`path` + ".tmp.<pid>"), fsyncs it, atomically renames it over
/// `path`, and best-effort fsyncs the parent directory so the rename itself
/// survives a power cut. Readers therefore observe either the old file or
/// the complete new one — never a partial write under the final name. A
/// crash mid-write leaves at worst a stale `.tmp` sibling, which the next
/// successful write replaces.
Status AtomicWriteFile(const std::string& path, std::string_view data);

}  // namespace lcp

#endif  // LCP_BASE_FILE_IO_H_
