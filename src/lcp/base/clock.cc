#include "lcp/base/clock.h"

#include <chrono>
#include <thread>

namespace lcp {

int64_t SystemClock::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepMicros(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

SystemClock* SystemClock::Instance() {
  static SystemClock clock;
  return &clock;
}

}  // namespace lcp
