#include "lcp/base/crc32.h"

#include <array>

namespace lcp {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace lcp
