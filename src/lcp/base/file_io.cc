#include "lcp/base/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "lcp/base/strings.h"

namespace lcp {

namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  const int err = errno;
  return UnavailableError(StrCat(op, " ", path, ": ", std::strerror(err)));
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return NotFoundError(StrCat("no such file: ", path));
    }
    return ErrnoStatus("open", path);
  }
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read", path);
    }
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string temp = StrCat(path, ".tmp.", ::getpid());
  const int fd =
      ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", temp);
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoStatus("write", temp);
      ::close(fd);
      ::unlink(temp.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  // The data must be on disk before the rename makes it reachable under the
  // final name, or a crash could publish a torn file.
  if (::fsync(fd) != 0) {
    Status status = ErrnoStatus("fsync", temp);
    ::close(fd);
    ::unlink(temp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    Status status = ErrnoStatus("close", temp);
    ::unlink(temp.c_str());
    return status;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    Status status = ErrnoStatus("rename", temp);
    ::unlink(temp.c_str());
    return status;
  }
  // Durability of the rename itself: fsync the parent directory. Failure here
  // is not fatal — the data file is complete; only crash-durability of the
  // directory entry is weakened — so this is best-effort.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::Ok();
}

}  // namespace lcp
