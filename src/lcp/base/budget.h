#ifndef LCP_BASE_BUDGET_H_
#define LCP_BASE_BUDGET_H_

#include <atomic>
#include <cstdint>

#include "lcp/base/clock.h"
#include "lcp/base/status.h"

namespace lcp {

/// A thread-safe, latching cancellation flag: Cancel() may be called from
/// any thread (a service's Cancel(ticket) or abort shutdown); the owning
/// planning/execution thread observes it through Budget::Check and the
/// executor's access loop at their natural poll points. The first Cancel
/// wins and fixes the status code reported to the worker (kCancelled for a
/// caller cancellation, kUnavailable for an abort shutdown, ...); later
/// calls are no-ops.
class CancelToken {
 public:
  void Cancel(StatusCode code = StatusCode::kCancelled) {
    int expected = 0;
    code_.compare_exchange_strong(expected, static_cast<int>(code),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
  }
  bool cancelled() const {
    return code_.load(std::memory_order_acquire) != 0;
  }
  /// kOk while not cancelled; the first Cancel's code afterwards.
  StatusCode code() const {
    return static_cast<StatusCode>(code_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<int> code_{0};
};

/// Accounting attached to a Budget. Shared across every component the budget
/// is threaded through (ProofSearch nodes, ChaseEngine firings).
struct BudgetStats {
  long long nodes_charged = 0;
  long long firings_charged = 0;
  long long deadline_checks = 0;
  bool deadline_hit = false;
  bool node_cap_hit = false;
  bool firing_cap_hit = false;
  bool cancelled = false;
};

/// A cooperative execution budget: an optional wall-clock deadline (on a
/// pluggable Clock, so tests run in virtual time) plus optional caps on
/// search nodes and chase firings. One Budget instance is shared by a whole
/// planning episode — the proof search and every chase closure it runs
/// charge against the same pool.
///
/// Exhaustion is *latched*: the first failing Charge*/Check call fixes the
/// returned status, and every later call returns the same status. Callers
/// poll at their natural cancellation points and wind down when a non-OK
/// status appears; anytime callers (ProofSearch) convert kDeadlineExceeded
/// into a best-effort result instead of an error.
///
/// Not thread-safe: a budget belongs to one planning thread.
class Budget {
 public:
  /// Unlimited budget: every check passes.
  Budget() = default;

  /// Arms the deadline at `clock->NowMicros() + budget_micros`. A negative
  /// budget means "already expired" (useful in tests).
  void SetDeadline(Clock* clock, int64_t budget_micros);
  void set_node_cap(long long cap) { node_cap_ = cap; }
  void set_firing_cap(long long cap) { firing_cap_ = cap; }

  /// Cooperative cancellation: all subsequent checks fail with `status`.
  void Cancel(Status status);

  /// Attaches a cross-thread cancellation token: every Charge*/Check call
  /// polls it, and a tripped token latches as the exhaustion status (with
  /// the token's code). This is how another thread cancels a planning
  /// episode in flight — the Budget itself stays single-owner; only the
  /// token is shared. Not owned; must outlive the budget's use.
  void set_cancel_token(const CancelToken* token) { cancel_token_ = token; }

  /// Records one search-node expansion / chase firing, then re-evaluates the
  /// limits. Returns OK or the (latched) exhaustion status.
  Status ChargeNode();
  Status ChargeFiring();

  /// Re-evaluates limits without charging anything. The cheap fast-path for
  /// inner loops: when no deadline is armed and no cap was hit this is a few
  /// branches, no clock read.
  Status Check();

  bool exhausted() const { return !exhaustion_.ok(); }
  /// The latched exhaustion status (OK while the budget has room).
  const Status& exhaustion() const { return exhaustion_; }
  const BudgetStats& stats() const { return stats_; }

 private:
  Status Evaluate();

  Clock* clock_ = nullptr;
  const CancelToken* cancel_token_ = nullptr;
  int64_t deadline_micros_ = -1;  ///< Absolute; -1 = no deadline.
  long long node_cap_ = -1;       ///< -1 = unlimited.
  long long firing_cap_ = -1;
  Status exhaustion_;
  BudgetStats stats_;
};

}  // namespace lcp

#endif  // LCP_BASE_BUDGET_H_
