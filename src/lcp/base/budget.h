#ifndef LCP_BASE_BUDGET_H_
#define LCP_BASE_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "lcp/base/clock.h"
#include "lcp/base/status.h"

namespace lcp {

/// A thread-safe, latching cancellation flag: Cancel() may be called from
/// any thread (a service's Cancel(ticket) or abort shutdown); the owning
/// planning/execution thread observes it through Budget::Check and the
/// executor's access loop at their natural poll points. The first Cancel
/// wins and fixes the status code reported to the worker (kCancelled for a
/// caller cancellation, kUnavailable for an abort shutdown, ...); later
/// calls are no-ops.
class CancelToken {
 public:
  void Cancel(StatusCode code = StatusCode::kCancelled) {
    int expected = 0;
    code_.compare_exchange_strong(expected, static_cast<int>(code),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
  }
  bool cancelled() const {
    return code_.load(std::memory_order_acquire) != 0;
  }
  /// kOk while not cancelled; the first Cancel's code afterwards.
  StatusCode code() const {
    return static_cast<StatusCode>(code_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<int> code_{0};
};

/// Accounting attached to a Budget. Shared across every component the budget
/// is threaded through (ProofSearch nodes, ChaseEngine firings). Snapshots
/// taken while charges are still in flight are internally consistent per
/// field but not across fields.
struct BudgetStats {
  long long nodes_charged = 0;
  long long firings_charged = 0;
  long long deadline_checks = 0;
  bool deadline_hit = false;
  bool node_cap_hit = false;
  bool firing_cap_hit = false;
  bool cancelled = false;
};

/// A cooperative execution budget: an optional wall-clock deadline (on a
/// pluggable Clock, so tests run in virtual time) plus optional caps on
/// search nodes and chase firings. One Budget instance is shared by a whole
/// planning episode — the proof search and every chase closure it runs
/// charge against the same pool.
///
/// Exhaustion is *latched*: the first failing Charge*/Check call fixes the
/// returned status, and every later call returns the same status. Callers
/// poll at their natural cancellation points and wind down when a non-OK
/// status appears; anytime callers (ProofSearch) convert kDeadlineExceeded
/// into a best-effort result instead of an error.
///
/// Thread model: Charge*/Check/Cancel and the cancel-token poll are safe
/// from any number of concurrent threads (the parallel proof search charges
/// one shared budget from every worker); counters are atomic and the latch
/// is first-writer-wins. Configuration — SetDeadline, set_node_cap,
/// set_firing_cap, set_cancel_token — must happen before the budget is
/// shared, and exhaustion()/stats() are exact only once concurrent chargers
/// have quiesced (e.g. after the search joined its workers). With caps and
/// concurrent chargers, up to one in-flight charge per thread can land
/// after the cap trips; callers that need a hard global bound check the
/// latch before acting (ProofSearch documents an overshoot of at most its
/// parallelism).
class Budget {
 public:
  /// Unlimited budget: every check passes.
  Budget() = default;

  /// Arms the deadline at `clock->NowMicros() + budget_micros`. A negative
  /// budget means "already expired" (useful in tests).
  void SetDeadline(Clock* clock, int64_t budget_micros);
  void set_node_cap(long long cap) { node_cap_ = cap; }
  void set_firing_cap(long long cap) { firing_cap_ = cap; }

  /// Cooperative cancellation: all subsequent checks fail with `status`.
  /// Safe from any thread; the first non-OK latch (cancel or exhaustion)
  /// wins.
  void Cancel(Status status);

  /// Attaches a cross-thread cancellation token: every Charge*/Check call
  /// polls it, and a tripped token latches as the exhaustion status (with
  /// the token's code). This is how another thread cancels a planning
  /// episode in flight. Not owned; must outlive the budget's use.
  void set_cancel_token(const CancelToken* token) { cancel_token_ = token; }

  /// Records one search-node expansion / chase firing, then re-evaluates the
  /// limits. Returns OK or the (latched) exhaustion status.
  Status ChargeNode();
  Status ChargeFiring();

  /// Re-evaluates limits without charging anything. The cheap fast-path for
  /// inner loops: when no deadline is armed and no cap was hit this is a few
  /// atomic loads, no clock read.
  Status Check();

  bool exhausted() const {
    return latched_.load(std::memory_order_acquire);
  }
  /// The latched exhaustion status; OK while the budget has room. Stable
  /// (never changes again) once exhausted() has returned true.
  const Status& exhaustion() const {
    if (latched_.load(std::memory_order_acquire)) return exhaustion_;
    return ok_;
  }
  /// Field-consistent snapshot of the accounting counters.
  BudgetStats stats() const;

 private:
  Status Evaluate();
  /// First-writer-wins latch; returns the (possibly pre-existing) latched
  /// status.
  Status Latch(Status status, bool from_cancel);

  Clock* clock_ = nullptr;
  const CancelToken* cancel_token_ = nullptr;
  int64_t deadline_micros_ = -1;  ///< Absolute; -1 = no deadline.
  long long node_cap_ = -1;       ///< -1 = unlimited.
  long long firing_cap_ = -1;

  std::atomic<long long> nodes_charged_{0};
  std::atomic<long long> firings_charged_{0};
  std::atomic<long long> deadline_checks_{0};
  std::atomic<bool> deadline_hit_{false};
  std::atomic<bool> node_cap_hit_{false};
  std::atomic<bool> firing_cap_hit_{false};
  std::atomic<bool> cancelled_{false};

  /// exhaustion_ is written exactly once, under latch_mutex_, before the
  /// release store to latched_; after that it is immutable, so lock-free
  /// readers that observed latched_ == true may alias it freely.
  std::atomic<bool> latched_{false};
  std::mutex latch_mutex_;
  Status exhaustion_;
  const Status ok_;
};

}  // namespace lcp

#endif  // LCP_BASE_BUDGET_H_
