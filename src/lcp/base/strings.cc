#include "lcp/base/strings.h"

namespace lcp {

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

}  // namespace lcp
