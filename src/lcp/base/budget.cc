#include "lcp/base/budget.h"

#include <algorithm>

#include "lcp/base/check.h"
#include "lcp/base/strings.h"

namespace lcp {

void Budget::SetDeadline(Clock* clock, int64_t budget_micros) {
  LCP_CHECK(clock != nullptr);
  clock_ = clock;
  // Clamp to 0 so a negative budget means "already expired" even when the
  // clock itself reads near 0 (-1 would disarm the deadline instead).
  deadline_micros_ = std::max<int64_t>(clock->NowMicros() + budget_micros, 0);
}

void Budget::Cancel(Status status) {
  LCP_CHECK(!status.ok()) << "Budget::Cancel needs a non-OK status";
  stats_.cancelled = true;
  if (exhaustion_.ok()) exhaustion_ = std::move(status);
}

Status Budget::Evaluate() {
  if (!exhaustion_.ok()) return exhaustion_;
  if (cancel_token_ != nullptr && cancel_token_->cancelled()) {
    stats_.cancelled = true;
    exhaustion_ = Status(cancel_token_->code(), "budget cancelled via token");
    return exhaustion_;
  }
  if (node_cap_ >= 0 && stats_.nodes_charged > node_cap_) {
    stats_.node_cap_hit = true;
    exhaustion_ = ResourceExhaustedError(
        StrCat("budget node cap of ", node_cap_, " exceeded"));
    return exhaustion_;
  }
  if (firing_cap_ >= 0 && stats_.firings_charged > firing_cap_) {
    stats_.firing_cap_hit = true;
    exhaustion_ = ResourceExhaustedError(
        StrCat("budget firing cap of ", firing_cap_, " exceeded"));
    return exhaustion_;
  }
  if (deadline_micros_ >= 0) {
    ++stats_.deadline_checks;
    if (clock_->NowMicros() >= deadline_micros_) {
      stats_.deadline_hit = true;
      exhaustion_ = DeadlineExceededError("budget deadline exceeded");
      return exhaustion_;
    }
  }
  return Status::Ok();
}

Status Budget::ChargeNode() {
  ++stats_.nodes_charged;
  return Evaluate();
}

Status Budget::ChargeFiring() {
  ++stats_.firings_charged;
  return Evaluate();
}

Status Budget::Check() { return Evaluate(); }

}  // namespace lcp
