#include "lcp/base/budget.h"

#include <algorithm>
#include <utility>

#include "lcp/base/check.h"
#include "lcp/base/strings.h"

namespace lcp {

void Budget::SetDeadline(Clock* clock, int64_t budget_micros) {
  LCP_CHECK(clock != nullptr);
  clock_ = clock;
  // Clamp to 0 so a negative budget means "already expired" even when the
  // clock itself reads near 0 (-1 would disarm the deadline instead).
  deadline_micros_ = std::max<int64_t>(clock->NowMicros() + budget_micros, 0);
}

Status Budget::Latch(Status status, bool from_cancel) {
  std::lock_guard<std::mutex> lock(latch_mutex_);
  if (!latched_.load(std::memory_order_relaxed)) {
    if (from_cancel) cancelled_.store(true, std::memory_order_relaxed);
    exhaustion_ = std::move(status);
    latched_.store(true, std::memory_order_release);
  }
  return exhaustion_;
}

void Budget::Cancel(Status status) {
  LCP_CHECK(!status.ok()) << "Budget::Cancel needs a non-OK status";
  // Record the cancel attempt even when exhaustion latched first (the
  // historic behavior: stats().cancelled reports the *request*).
  cancelled_.store(true, std::memory_order_relaxed);
  (void)Latch(std::move(status), /*from_cancel=*/true);
}

Status Budget::Evaluate() {
  if (latched_.load(std::memory_order_acquire)) return exhaustion_;
  if (cancel_token_ != nullptr && cancel_token_->cancelled()) {
    return Latch(Status(cancel_token_->code(), "budget cancelled via token"),
                 /*from_cancel=*/true);
  }
  if (node_cap_ >= 0 &&
      nodes_charged_.load(std::memory_order_relaxed) > node_cap_) {
    node_cap_hit_.store(true, std::memory_order_relaxed);
    return Latch(ResourceExhaustedError(
                     StrCat("budget node cap of ", node_cap_, " exceeded")),
                 /*from_cancel=*/false);
  }
  if (firing_cap_ >= 0 &&
      firings_charged_.load(std::memory_order_relaxed) > firing_cap_) {
    firing_cap_hit_.store(true, std::memory_order_relaxed);
    return Latch(
        ResourceExhaustedError(
            StrCat("budget firing cap of ", firing_cap_, " exceeded")),
        /*from_cancel=*/false);
  }
  if (deadline_micros_ >= 0) {
    deadline_checks_.fetch_add(1, std::memory_order_relaxed);
    if (clock_->NowMicros() >= deadline_micros_) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      return Latch(DeadlineExceededError("budget deadline exceeded"),
                   /*from_cancel=*/false);
    }
  }
  return Status::Ok();
}

Status Budget::ChargeNode() {
  nodes_charged_.fetch_add(1, std::memory_order_relaxed);
  return Evaluate();
}

Status Budget::ChargeFiring() {
  firings_charged_.fetch_add(1, std::memory_order_relaxed);
  return Evaluate();
}

Status Budget::Check() { return Evaluate(); }

BudgetStats Budget::stats() const {
  BudgetStats snapshot;
  snapshot.nodes_charged = nodes_charged_.load(std::memory_order_relaxed);
  snapshot.firings_charged = firings_charged_.load(std::memory_order_relaxed);
  snapshot.deadline_checks = deadline_checks_.load(std::memory_order_relaxed);
  snapshot.deadline_hit = deadline_hit_.load(std::memory_order_relaxed);
  snapshot.node_cap_hit = node_cap_hit_.load(std::memory_order_relaxed);
  snapshot.firing_cap_hit = firing_cap_hit_.load(std::memory_order_relaxed);
  snapshot.cancelled = cancelled_.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace lcp
