#ifndef LCP_BASE_CRC32_H_
#define LCP_BASE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lcp {

/// CRC-32 (the reflected IEEE 802.3 polynomial 0xEDB88320) over `data`.
/// `seed` lets callers chain incremental updates: Crc32(b, Crc32(a)) equals
/// Crc32(a+b). Used by the snapshot store to frame cache entries so a torn
/// write or a flipped byte is detected per entry instead of poisoning the
/// whole load (DESIGN.md §12).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace lcp

#endif  // LCP_BASE_CRC32_H_
