#ifndef LCP_BASE_WORK_STEAL_H_
#define LCP_BASE_WORK_STEAL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace lcp {

/// One worker's double-ended work queue for work-stealing schedulers. The
/// owner treats the *bottom* (back) as a LIFO stack — push and pop there to
/// keep depth-first locality — while thieves take from the *top* (front),
/// which in a tree-shaped search holds the shallowest, largest-subtree
/// items.
///
/// The implementation is a mutex around a std::deque rather than a lock-free
/// Chase-Lev deque: the intended work items are proof-search nodes whose
/// expansion costs microseconds to milliseconds, so an uncontended lock per
/// transfer is noise, and the mutex keeps the structure trivially correct
/// under TSan. Swap in a lock-free deque later if a workload with
/// fine-grained items ever shows up in a profile.
template <typename T>
class WorkStealingDeque {
 public:
  void PushBottom(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    items_.push_back(std::move(item));
  }

  /// Owner-side pop (LIFO).
  std::optional<T> TryPopBottom() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.back()));
    items_.pop_back();
    return item;
  }

  /// Thief-side pop (FIFO).
  std::optional<T> TrySteal() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.empty();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<T> items_;
};

/// Parks idle workers between steal attempts. Producers call NotifyOne/All
/// after publishing work; Park bounds the wait with a timeout so a missed
/// notification (push raced the park decision) costs one timeout, not a
/// hang — callers re-scan the deques and their termination condition on
/// every wakeup. HasIdlers() lets producers skip the notify syscall
/// entirely on the common nobody-is-parked path.
class IdleGate {
 public:
  void Park(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    ++idlers_;
    cv_.wait_for(lock, timeout);
    --idlers_;
  }

  bool HasIdlers() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return idlers_ > 0;
  }

  void NotifyOne() {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_one();
  }

  void NotifyAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_all();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int idlers_ = 0;
};

/// Runs `body(worker_id)` on `num_workers` workers: ids 1..n-1 on fresh
/// threads, id 0 on the calling thread (so a single-worker "pool" never
/// spawns), then joins everything before returning. The body must provide
/// its own termination condition; exceptions must not escape it.
inline void RunWorkers(int num_workers,
                       const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(num_workers > 1 ? num_workers - 1 : 0);
  for (int id = 1; id < num_workers; ++id) {
    threads.emplace_back([&body, id] { body(id); });
  }
  body(0);
  for (std::thread& t : threads) t.join();
}

}  // namespace lcp

#endif  // LCP_BASE_WORK_STEAL_H_
