#ifndef LCP_BASE_STATUS_H_
#define LCP_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace lcp {

/// Canonical error codes, modeled after the usual RPC/status conventions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  /// A time budget (deadline) ran out before the operation completed. Anytime
  /// operations pair this code with their best partial result (see Budget and
  /// SearchOutcome::exhaustion).
  kDeadlineExceeded = 9,
  /// A source (or a circuit breaker guarding it) refused the call; typically
  /// transient and safe to retry with backoff.
  kUnavailable = 10,
  /// The operation was cancelled, typically by the caller (see CancelToken
  /// and QueryService::Cancel). Distinct from kDeadlineExceeded: the request
  /// was abandoned deliberately, not timed out.
  kCancelled = 11,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. The library does not use exceptions;
/// every fallible operation reports failure through `Status` (or `Result<T>`,
/// which couples a `Status` with a payload).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience factories for the common error codes.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnavailableError(std::string message);
Status CancelledError(std::string message);

/// Propagates a non-OK status to the caller. Usable in functions returning
/// `Status` or `Result<T>`.
#define LCP_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::lcp::Status lcp_status_tmp_ = (expr);        \
    if (!lcp_status_tmp_.ok()) {                   \
      return lcp_status_tmp_;                      \
    }                                              \
  } while (false)

}  // namespace lcp

#endif  // LCP_BASE_STATUS_H_
