#ifndef LCP_BASE_RESULT_H_
#define LCP_BASE_RESULT_H_

#include <optional>
#include <utility>

#include "lcp/base/check.h"
#include "lcp/base/status.h"

namespace lcp {

/// Holds either a value of type `T` or a non-OK `Status` explaining why no
/// value is available. Analogous to absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success) or a status (failure), so
  /// `return value;` and `return SomeError(...);` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    LCP_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LCP_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    LCP_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    LCP_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define LCP_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  LCP_ASSIGN_OR_RETURN_IMPL_(LCP_CONCAT_(lcp_result_, __LINE__), lhs, rexpr)

#define LCP_CONCAT_INNER_(a, b) a##b
#define LCP_CONCAT_(a, b) LCP_CONCAT_INNER_(a, b)

#define LCP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

}  // namespace lcp

#endif  // LCP_BASE_RESULT_H_
