#ifndef LCP_BASE_STRINGS_H_
#define LCP_BASE_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace lcp {

namespace internal_strings {
inline void AppendPieces(std::ostringstream&) {}
template <typename T, typename... Rest>
void AppendPieces(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  AppendPieces(os, rest...);
}
}  // namespace internal_strings

/// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal_strings::AppendPieces(os, args...);
  return os.str();
}

/// Joins the elements of `parts` with `sep`, streaming each element.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) os << sep;
    first = false;
    os << part;
  }
  return os.str();
}

/// Splits `text` on `delimiter`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

}  // namespace lcp

#endif  // LCP_BASE_STRINGS_H_
