#ifndef LCP_BASE_CHECK_H_
#define LCP_BASE_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace lcp {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the LCP_CHECK macros below; invariant violations are
/// programmer errors, not recoverable conditions.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Helps the compiler understand that the streaming expression below is dead
// when the condition holds.
struct Voidify {
  void operator&&(const CheckFailure&) const {}
};

}  // namespace internal_check
}  // namespace lcp

/// Aborts with a message if `condition` is false. Additional context can be
/// streamed: LCP_CHECK(x > 0) << "x was " << x;
#define LCP_CHECK(condition)                                               \
  (condition) ? (void)0                                                    \
              : ::lcp::internal_check::Voidify() &&                        \
                    ::lcp::internal_check::CheckFailure(__FILE__, __LINE__, \
                                                        #condition)

#define LCP_CHECK_EQ(a, b) LCP_CHECK((a) == (b))
#define LCP_CHECK_NE(a, b) LCP_CHECK((a) != (b))
#define LCP_CHECK_LT(a, b) LCP_CHECK((a) < (b))
#define LCP_CHECK_LE(a, b) LCP_CHECK((a) <= (b))
#define LCP_CHECK_GT(a, b) LCP_CHECK((a) > (b))
#define LCP_CHECK_GE(a, b) LCP_CHECK((a) >= (b))

#endif  // LCP_BASE_CHECK_H_
