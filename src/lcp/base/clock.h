#ifndef LCP_BASE_CLOCK_H_
#define LCP_BASE_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace lcp {

/// A pluggable monotonic time source. All deadline / backoff machinery
/// (RetryPolicy, Budget, FaultInjectingSource latency simulation) goes
/// through this interface so tests and benchmarks can run in deterministic
/// virtual time while production uses the real steady clock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic timestamp in microseconds. The epoch is arbitrary; only
  /// differences are meaningful.
  virtual int64_t NowMicros() = 0;

  /// Blocks (or simulates blocking) for `micros` microseconds. Retry backoff
  /// waits are issued through this call, so a virtual clock observes the
  /// full backoff schedule without any real sleeping.
  virtual void SleepMicros(int64_t micros) = 0;
};

/// Wall-clock implementation on std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() override;
  void SleepMicros(int64_t micros) override;

  /// Process-wide instance used as the default when no clock is injected.
  static SystemClock* Instance();
};

/// Deterministic manual-advance clock for tests and benchmarks. SleepMicros
/// advances the virtual time instead of blocking, and an optional
/// auto-advance moves time forward on every NowMicros read, which lets
/// deadline expiry be exercised inside otherwise instantaneous loops.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() override {
    int64_t now = now_;
    now_ += auto_advance_;
    return now;
  }
  void SleepMicros(int64_t micros) override {
    if (micros > 0) now_ += micros;
  }

  void Advance(int64_t micros) { now_ += micros; }
  /// Every NowMicros() read additionally advances time by `micros`.
  void set_auto_advance(int64_t micros) { auto_advance_ = micros; }

 private:
  int64_t now_;
  int64_t auto_advance_ = 0;
};

/// Thread-safe deterministic clock for multi-threaded tests (the service
/// chaos harness): many worker threads read and sleep on it while a driver
/// thread advances time. Unlike VirtualClock it is safe to share across
/// threads; like it, SleepMicros advances virtual time instead of blocking,
/// so backoff schedules and injected latency are observed instantly. The
/// *sequence* of reads across threads is scheduler-dependent, but time is
/// monotone and every advance is atomic.
class SharedVirtualClock : public Clock {
 public:
  explicit SharedVirtualClock(int64_t start_micros = 0)
      : now_(start_micros) {}

  int64_t NowMicros() override {
    return now_.load(std::memory_order_acquire);
  }
  void SleepMicros(int64_t micros) override {
    if (micros > 0) now_.fetch_add(micros, std::memory_order_acq_rel);
  }

  void Advance(int64_t micros) {
    if (micros > 0) now_.fetch_add(micros, std::memory_order_acq_rel);
  }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace lcp

#endif  // LCP_BASE_CLOCK_H_
