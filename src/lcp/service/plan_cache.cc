#include "lcp/service/plan_cache.h"

#include <utility>

#include "lcp/plan/serialize.h"

namespace lcp {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Serialized footprint of one entry: the binary plan encoding plus the
/// canonical key plus the snapshot frame's fixed overhead (length + CRC +
/// epoch/cost/key-length fields, ~32 bytes). Computed once per insert —
/// inserts happen at most once per proof search, so the encoding pass is
/// noise next to the search it follows.
size_t ApproxEntryBytes(const Plan& plan, const std::string& key) {
  std::string encoded;
  EncodePlan(plan, encoded);
  return encoded.size() + key.size() + 32;
}

}  // namespace

PlanCache::PlanCache(const Options& options) {
  size_t shards = RoundUpToPowerOfTwo(options.num_shards == 0
                                          ? size_t{1}
                                          : options.num_shards);
  shard_mask_ = shards - 1;
  capacity_per_shard_ =
      options.capacity_per_shard == 0 ? size_t{1} : options.capacity_per_shard;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    const QueryFingerprint& fingerprint, uint64_t epoch, bool count_stats) {
  Shard& shard = ShardFor(fingerprint);
  std::shared_ptr<const CachedPlan> found;
  bool stale = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(fingerprint.key);
    if (it != shard.map.end()) {
      if (it->second->plan->epoch == epoch) {
        // Promote to most-recently-used.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        found = it->second->plan;
      } else {
        // Planned under a different schema epoch: dead weight, drop it now.
        shard.approx_bytes -= it->second->plan->approx_bytes;
        shard.lru.erase(it->second);
        shard.map.erase(it);
        stale = true;
      }
    }
  }
  if (count_stats) {
    if (found != nullptr) {
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (stale) stale_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return found;
}

std::shared_ptr<const CachedPlan> PlanCache::Insert(
    const QueryFingerprint& fingerprint, uint64_t epoch, Plan plan,
    double cost, bool detour) {
  size_t approx_bytes = ApproxEntryBytes(plan, fingerprint.key);
  auto entry = std::make_shared<const CachedPlan>(CachedPlan{
      fingerprint, epoch, std::move(plan), cost, detour, approx_bytes});
  Shard& shard = ShardFor(fingerprint);
  uint64_t evicted = 0;
  std::shared_ptr<const CachedPlan> resident;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(fingerprint.key);
    if (it != shard.map.end()) {
      const CachedPlan& incumbent = *it->second->plan;
      if (incumbent.epoch == epoch && incumbent.cost <= cost) {
        // Cost-aware admission: never replace a cheaper (or equally cheap)
        // plan of the same epoch with a costlier one. Refresh recency so the
        // good plan stays hot.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        admission_rejects_.fetch_add(1, std::memory_order_relaxed);
        return it->second->plan;
      }
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      shard.approx_bytes -= it->second->plan->approx_bytes;
      shard.approx_bytes += entry->approx_bytes;
      it->second->plan = entry;
      replacements_.fetch_add(1, std::memory_order_relaxed);
      return entry;
    }
    shard.lru.push_front(Entry{entry});
    shard.map.emplace(fingerprint.key, shard.lru.begin());
    shard.approx_bytes += entry->approx_bytes;
    while (shard.lru.size() > capacity_per_shard_) {
      shard.approx_bytes -= shard.lru.back().plan->approx_bytes;
      shard.map.erase(shard.lru.back().plan->fingerprint.key);
      shard.lru.pop_back();
      ++evicted;
    }
    resident = entry;
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  return resident;
}

void PlanCache::EvictBelowEpoch(uint64_t epoch) {
  uint64_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->plan->epoch < epoch) {
        shard->approx_bytes -= it->plan->approx_bytes;
        shard->map.erase(it->plan->fingerprint.key);
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  }
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stale_misses = stale_misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.replacements = replacements_.load(std::memory_order_relaxed);
  s.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.shard_entries.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    s.shard_entries.push_back(shard->lru.size());
    s.entries += shard->lru.size();
    s.approx_bytes += shard->approx_bytes;
  }
  return s;
}

std::vector<std::shared_ptr<const CachedPlan>> PlanCache::Entries() const {
  std::vector<std::shared_ptr<const CachedPlan>> out;
  out.reserve(size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const Entry& entry : shard->lru) out.push_back(entry.plan);
  }
  return out;
}

}  // namespace lcp
