#include "lcp/service/canonical.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "lcp/base/strings.h"
#include "lcp/logic/term.h"

namespace lcp {

namespace {

/// Above this many recursive steps the tie-break search stops branching and
/// finishes greedily (first minimal candidate only). Only pathologically
/// symmetric queries get near it; the result stays a deterministic, exact
/// description of the query — worst case some α-equivalent inputs map to
/// different keys and miss cache sharing.
constexpr int kMaxSearchSteps = 20000;

class Canonicalizer {
 public:
  explicit Canonicalizer(const ConjunctiveQuery& query) {
    for (size_t i = 0; i < query.free_variables.size(); ++i) {
      free_index_.emplace(query.free_variables[i], static_cast<int>(i));
    }
    // Conjunction is idempotent: exact duplicate atoms cannot change the
    // query's semantics or its plans, so drop them before ordering.
    for (const Atom& atom : query.atoms) {
      if (std::find(atoms_.begin(), atoms_.end(), atom) == atoms_.end()) {
        atoms_.push_back(atom);
      }
    }
  }

  std::vector<std::string> Run() {
    std::vector<bool> used(atoms_.size(), false);
    std::unordered_map<std::string, int> numbering;
    std::vector<std::string> prefix;
    prefix.reserve(atoms_.size());
    Search(used, numbering, 0, prefix);
    return best_;
  }

 private:
  /// Renders `atom` under `numbering`; existential variables not yet
  /// numbered get tentative numbers next_e, next_e+1, ... in order of first
  /// occurrence within the atom (recorded in `newly_numbered`).
  std::string Render(const Atom& atom,
                     const std::unordered_map<std::string, int>& numbering,
                     int next_e,
                     std::vector<std::string>* newly_numbered) const {
    std::string out = StrCat("R", atom.relation, "(");
    std::unordered_map<std::string, int> tentative;
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      if (i > 0) out += ",";
      if (t.is_constant()) {
        out += StrCat("c:", t.constant().ToString());
        continue;
      }
      auto free_it = free_index_.find(t.var());
      if (free_it != free_index_.end()) {
        out += StrCat("f", free_it->second);
        continue;
      }
      auto it = numbering.find(t.var());
      int number;
      if (it != numbering.end()) {
        number = it->second;
      } else {
        auto [tent_it, inserted] = tentative.emplace(
            t.var(), next_e + static_cast<int>(tentative.size()));
        number = tent_it->second;
        if (inserted && newly_numbered != nullptr) {
          newly_numbered->push_back(t.var());
        }
      }
      out += StrCat("e", number);
    }
    out += ")";
    return out;
  }

  void Search(std::vector<bool>& used,
              std::unordered_map<std::string, int>& numbering, int next_e,
              std::vector<std::string>& prefix) {
    ++steps_;
    size_t depth = prefix.size();
    if (depth == atoms_.size()) {
      if (best_.empty() || prefix < best_) best_ = prefix;
      return;
    }
    // Prune against the best complete rendering: once the current prefix is
    // lexicographically greater than the best's prefix, no completion can
    // win. (A *smaller* prefix always wins, whatever comes later.)
    if (!best_.empty() &&
        std::lexicographical_compare(best_.begin(), best_.begin() + depth,
                                     prefix.begin(), prefix.end())) {
      return;
    }

    // Render every unused atom and keep only the lexicographically minimal
    // candidates; exact rendering ties are genuinely isomorphic choices and
    // each must be explored (unless the step cap forces greed).
    std::string min_render;
    std::vector<int> min_atoms;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (used[i]) continue;
      std::string r = Render(atoms_[i], numbering, next_e, nullptr);
      if (min_atoms.empty() || r < min_render) {
        min_render = std::move(r);
        min_atoms.assign(1, static_cast<int>(i));
      } else if (r == min_render) {
        min_atoms.push_back(static_cast<int>(i));
      }
    }
    if (steps_ > kMaxSearchSteps) min_atoms.resize(1);

    for (int atom_index : min_atoms) {
      std::vector<std::string> newly;
      std::string line =
          Render(atoms_[atom_index], numbering, next_e, &newly);
      used[atom_index] = true;
      for (size_t k = 0; k < newly.size(); ++k) {
        numbering.emplace(newly[k], next_e + static_cast<int>(k));
      }
      prefix.push_back(std::move(line));
      Search(used, numbering, next_e + static_cast<int>(newly.size()), prefix);
      prefix.pop_back();
      for (const std::string& v : newly) numbering.erase(v);
      used[atom_index] = false;
    }
  }

  std::unordered_map<std::string, int> free_index_;
  std::vector<Atom> atoms_;
  std::vector<std::string> best_;
  int steps_ = 0;
};

uint64_t HashKey(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

QueryFingerprint CanonicalizeQuery(const ConjunctiveQuery& query) {
  Canonicalizer canonicalizer(query);
  std::vector<std::string> lines = canonicalizer.Run();
  QueryFingerprint fp;
  fp.key = StrCat("F", query.free_variables.size(), ";", StrJoin(lines, ";"));
  fp.hash = HashKey(fp.key);
  return fp;
}

uint64_t FingerprintKeyHash(const std::string& key) { return HashKey(key); }

}  // namespace lcp
