#ifndef LCP_SERVICE_SNAPSHOT_H_
#define LCP_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lcp/base/status.h"
#include "lcp/schema/schema.h"
#include "lcp/service/plan_cache.h"

namespace lcp {

/// Persistent plan-cache snapshots (DESIGN.md §12): a point-in-time dump of
/// the cache's serving-epoch entries that a restarted process loads to skip
/// re-proving every working-set query from cold.
///
/// File layout (all integers little-endian):
///
///   header   8 bytes magic "LCPSNAP\0"
///            u8  format version (kSnapshotVersion)
///            u64 schema fingerprint (SchemaFingerprint of the base schema)
///   entry*   u32 payload length
///            u32 CRC32 of the payload bytes
///            payload: u32 key length, canonical fingerprint key bytes,
///                     u64 plan cost (IEEE-754 bit pattern),
///                     binary plan encoding (plan/serialize.h) to end
///
/// Trust model — the loader assumes the file may be torn, bit-flipped, or
/// written by a different schema, and must degrade to a cold start rather
/// than crash or admit a wrong plan:
///   - bad magic/version, or a schema fingerprint that differs from the live
///     schema's, rejects the whole file (one stale counter tick, no entries);
///   - a CRC mismatch skips that entry and resumes at the next frame;
///   - a frame length overrunning the remaining bytes (torn tail from a
///     crash mid-write) skips the suffix;
///   - every surviving plan is re-decoded defensively and re-validated with
///     ValidatePlan against the *live* schema before admission, and its
///     fingerprint hash is recomputed from the key (never trusted from disk).
///
/// Entries are admitted under the caller's current serving epoch: a snapshot
/// load is indistinguishable from the same plans having just been produced
/// by proof search, so epoch bumps and cost-aware admission behave normally.
inline constexpr uint8_t kSnapshotVersion = 1;
inline constexpr char kSnapshotMagic[8] = {'L', 'C', 'P', 'S',
                                           'N', 'A', 'P', '\0'};

struct SnapshotWriteStats {
  uint64_t entries_persisted = 0;
  /// Failover-detour plans are never persisted: a fresh process has fresh
  /// source-health state, so a detour around an outage that may have healed
  /// would pin degraded plans past their reason to exist.
  uint64_t entries_skipped_detour = 0;
  /// Entries admitted under a different (stale) epoch than the one being
  /// snapshotted; they would fail validation or mislead on load.
  uint64_t entries_skipped_epoch = 0;
  uint64_t bytes = 0;  ///< Encoded snapshot size.
};

struct SnapshotLoadStats {
  bool found = false;      ///< A snapshot file existed and was readable.
  bool header_ok = false;  ///< Magic, version, and schema fingerprint match.
  uint64_t entries_loaded = 0;
  uint64_t entries_rejected_corrupt = 0;  ///< CRC/frame/decode failures.
  uint64_t entries_rejected_stale = 0;    ///< Failed ValidatePlan vs live schema.
  uint64_t bytes = 0;  ///< File size as read.
};

/// Encodes a snapshot of `entries` (as returned by PlanCache::Entries) taken
/// at `serving_epoch` under a schema whose fingerprint is
/// `schema_fingerprint`. Detour plans and entries from other epochs are
/// skipped (see SnapshotWriteStats). Buffer-level so tests can fuzz the
/// encoding without touching the filesystem.
std::string EncodeSnapshot(
    const std::vector<std::shared_ptr<const CachedPlan>>& entries,
    uint64_t serving_epoch, uint64_t schema_fingerprint,
    SnapshotWriteStats* stats = nullptr);

/// Decodes `data` and admits every surviving entry into `cache` under
/// `serving_epoch`, validating each plan against `schema` first. Never
/// fails: corruption only moves counters. `found` is set by the file-level
/// loader, not here.
SnapshotLoadStats DecodeSnapshotInto(std::string_view data,
                                     uint64_t schema_fingerprint,
                                     const Schema& schema,
                                     uint64_t serving_epoch, PlanCache& cache);

/// EncodeSnapshot + crash-safe file replacement (write to a temp file, fsync,
/// atomically rename over `path`): a crash at any point leaves either the
/// old snapshot or the new one, never a mix. Returns non-OK only on I/O
/// failure.
Status WriteSnapshotFile(
    const std::string& path,
    const std::vector<std::shared_ptr<const CachedPlan>>& entries,
    uint64_t serving_epoch, uint64_t schema_fingerprint,
    SnapshotWriteStats* stats = nullptr);

/// Reads `path` (a missing or unreadable file is a silent cold start:
/// `found` stays false) and decodes it into `cache`.
SnapshotLoadStats LoadSnapshotFile(const std::string& path,
                                   uint64_t schema_fingerprint,
                                   const Schema& schema,
                                   uint64_t serving_epoch, PlanCache& cache);

}  // namespace lcp

#endif  // LCP_SERVICE_SNAPSHOT_H_
