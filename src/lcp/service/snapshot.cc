#include "lcp/service/snapshot.h"

#include <cstring>
#include <utility>

#include "lcp/base/crc32.h"
#include "lcp/base/file_io.h"
#include "lcp/base/result.h"
#include "lcp/plan/serialize.h"
#include "lcp/plan/validate.h"
#include "lcp/service/canonical.h"

namespace lcp {

namespace {

void PutU32(uint32_t v, std::string& out) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

constexpr size_t kHeaderSize = sizeof(kSnapshotMagic) + 1 + 8;
constexpr size_t kFrameHeaderSize = 8;  // u32 length + u32 CRC.

/// One decoded entry payload, before schema validation.
struct DecodedEntry {
  std::string key;
  double cost = 0;
  Plan plan;
};

/// Parses a CRC-verified payload. Returns kInvalidArgument on any structural
/// violation — the CRC passing only proves the bytes are what the writer
/// wrote, not that a hostile or version-skewed writer wrote sense.
Result<DecodedEntry> ParsePayload(std::string_view payload) {
  if (payload.size() < 4) {
    return Status(StatusCode::kInvalidArgument, "entry payload too short");
  }
  uint32_t key_len = GetU32(payload.data());
  payload.remove_prefix(4);
  if (payload.size() < static_cast<size_t>(key_len) + 8) {
    return Status(StatusCode::kInvalidArgument, "entry key overruns payload");
  }
  DecodedEntry entry;
  entry.key.assign(payload.data(), key_len);
  payload.remove_prefix(key_len);
  uint64_t cost_bits = GetU64(payload.data());
  payload.remove_prefix(8);
  std::memcpy(&entry.cost, &cost_bits, sizeof(entry.cost));
  Result<Plan> plan = DecodePlan(payload);
  if (!plan.ok()) return plan.status();
  entry.plan = std::move(*plan);
  return entry;
}

}  // namespace

std::string EncodeSnapshot(
    const std::vector<std::shared_ptr<const CachedPlan>>& entries,
    uint64_t serving_epoch, uint64_t schema_fingerprint,
    SnapshotWriteStats* stats) {
  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  out.push_back(static_cast<char>(kSnapshotVersion));
  PutU64(schema_fingerprint, out);
  SnapshotWriteStats local;
  std::string payload;
  for (const auto& entry : entries) {
    if (entry == nullptr) continue;
    if (entry->detour) {
      ++local.entries_skipped_detour;
      continue;
    }
    if (entry->epoch != serving_epoch) {
      ++local.entries_skipped_epoch;
      continue;
    }
    payload.clear();
    PutU32(static_cast<uint32_t>(entry->fingerprint.key.size()), payload);
    payload.append(entry->fingerprint.key);
    uint64_t cost_bits = 0;
    std::memcpy(&cost_bits, &entry->cost, sizeof(cost_bits));
    PutU64(cost_bits, payload);
    EncodePlan(entry->plan, payload);
    PutU32(static_cast<uint32_t>(payload.size()), out);
    PutU32(Crc32(payload), out);
    out.append(payload);
    ++local.entries_persisted;
  }
  local.bytes = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

SnapshotLoadStats DecodeSnapshotInto(std::string_view data,
                                     uint64_t schema_fingerprint,
                                     const Schema& schema,
                                     uint64_t serving_epoch,
                                     PlanCache& cache) {
  SnapshotLoadStats stats;
  stats.bytes = data.size();
  if (data.size() < kHeaderSize ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0 ||
      static_cast<uint8_t>(data[sizeof(kSnapshotMagic)]) != kSnapshotVersion ||
      GetU64(data.data() + sizeof(kSnapshotMagic) + 1) != schema_fingerprint) {
    // Wrong file type, format version skew, or a snapshot from a different
    // schema: nothing in it can be trusted to plan today's queries. Whole
    // file rejected; the caller degrades to a cold start.
    return stats;
  }
  stats.header_ok = true;
  data.remove_prefix(kHeaderSize);
  while (!data.empty()) {
    if (data.size() < kFrameHeaderSize) {
      // Torn frame header: crash mid-write truncated the tail.
      ++stats.entries_rejected_corrupt;
      break;
    }
    uint32_t length = GetU32(data.data());
    uint32_t stored_crc = GetU32(data.data() + 4);
    data.remove_prefix(kFrameHeaderSize);
    if (length > data.size()) {
      // Either a torn tail or a flipped bit in the length field; there is no
      // way to find the next frame boundary, so skip the suffix.
      ++stats.entries_rejected_corrupt;
      break;
    }
    std::string_view payload = data.substr(0, length);
    data.remove_prefix(length);
    if (Crc32(payload) != stored_crc) {
      ++stats.entries_rejected_corrupt;
      continue;  // This frame's bounds were plausible; try the next one.
    }
    Result<DecodedEntry> entry = ParsePayload(payload);
    if (!entry.ok()) {
      ++stats.entries_rejected_corrupt;
      continue;
    }
    if (!ValidatePlan(entry->plan, schema).ok()) {
      // Structurally intact but wrong for the live schema (the fingerprint
      // matched, so this means fingerprint collision or semantic drift the
      // fingerprint doesn't cover). Never admit a plan that can't execute.
      ++stats.entries_rejected_stale;
      continue;
    }
    QueryFingerprint fingerprint;
    fingerprint.key = std::move(entry->key);
    fingerprint.hash = FingerprintKeyHash(fingerprint.key);
    cache.Insert(fingerprint, serving_epoch, std::move(entry->plan),
                 entry->cost, /*detour=*/false);
    ++stats.entries_loaded;
  }
  return stats;
}

Status WriteSnapshotFile(
    const std::string& path,
    const std::vector<std::shared_ptr<const CachedPlan>>& entries,
    uint64_t serving_epoch, uint64_t schema_fingerprint,
    SnapshotWriteStats* stats) {
  std::string encoded =
      EncodeSnapshot(entries, serving_epoch, schema_fingerprint, stats);
  return AtomicWriteFile(path, encoded);
}

SnapshotLoadStats LoadSnapshotFile(const std::string& path,
                                   uint64_t schema_fingerprint,
                                   const Schema& schema,
                                   uint64_t serving_epoch, PlanCache& cache) {
  Result<std::string> data = ReadFileToString(path);
  if (!data.ok()) return SnapshotLoadStats{};
  SnapshotLoadStats stats =
      DecodeSnapshotInto(*data, schema_fingerprint, schema, serving_epoch,
                         cache);
  stats.found = true;
  return stats;
}

}  // namespace lcp
