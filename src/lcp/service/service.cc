#include "lcp/service/service.h"

#include <utility>

#include "lcp/base/strings.h"
#include "lcp/service/canonical.h"

namespace lcp {

QueryService::QueryService(const AccessibleSchema* accessible,
                           const CostFunction* cost,
                           SourceFactory source_factory,
                           ServiceOptions options)
    : accessible_(accessible),
      cost_(cost),
      source_factory_(std::move(source_factory)),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : SystemClock::Instance()),
      search_(accessible, cost),
      cache_(options_.cache),
      epoch_(1),
      schema_fingerprint_(SchemaFingerprint(accessible->base())) {
  // Per-request budgets are armed in Serve; a caller-supplied budget in the
  // template would be shared across threads, which Budget forbids.
  options_.search.budget = nullptr;
  int workers = options_.num_workers < 1 ? 1 : options_.num_workers;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

std::future<QueryResponse> QueryService::Submit(QueryRequest request) {
  Job job;
  job.request = std::move(request);
  job.enqueue_micros = clock_->NowMicros();
  std::future<QueryResponse> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutting_down_) {
      QueryResponse response;
      response.status =
          FailedPreconditionError("QueryService is shutting down");
      job.promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back(std::move(job));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  queue_cv_.notify_one();
  return future;
}

QueryResponse QueryService::Call(QueryRequest request) {
  return Submit(std::move(request)).get();
}

uint64_t QueryService::RefreshSchema() {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  uint64_t fingerprint = SchemaFingerprint(accessible_->base());
  if (fingerprint != schema_fingerprint_.load(std::memory_order_relaxed)) {
    schema_fingerprint_.store(fingerprint, std::memory_order_release);
    uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
    epoch_.store(next, std::memory_order_release);
    epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
    cache_.EvictBelowEpoch(next);
  }
  return epoch_.load(std::memory_order_relaxed);
}

uint64_t QueryService::BumpEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
  epoch_.store(next, std::memory_order_release);
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
  cache_.EvictBelowEpoch(next);
  return next;
}

ServiceStats QueryService::SnapshotStats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.searches = searches_.load(std::memory_order_relaxed);
  s.executions = executions_.load(std::memory_order_relaxed);
  s.epoch_bumps = epoch_bumps_.load(std::memory_order_relaxed);
  s.queue_micros = queue_micros_.load(std::memory_order_relaxed);
  s.plan_micros = plan_micros_.load(std::memory_order_relaxed);
  s.exec_micros = exec_micros_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  return s;
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void QueryService::WorkerLoop() {
  // Each worker owns a private source: AccessSource implementations keep
  // per-connection state (lazy indexes, accounting) and are not thread-safe.
  std::unique_ptr<AccessSource> source;
  if (source_factory_ != nullptr) source = source_factory_();
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and drained.
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job.promise.set_value(
        Serve(job.request, source.get(), job.enqueue_micros));
  }
}

QueryResponse QueryService::Serve(const QueryRequest& request,
                                  AccessSource* source,
                                  int64_t enqueue_micros) {
  QueryResponse response;
  const int64_t start = clock_->NowMicros();
  response.queue_micros = start - enqueue_micros;
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  response.epoch = epoch;

  QueryFingerprint fingerprint = CanonicalizeQuery(request.query);
  const bool lookup_cache = options_.cache_enabled && !request.skip_cache;
  std::shared_ptr<const CachedPlan> plan;
  if (lookup_cache) plan = cache_.Lookup(fingerprint, epoch);
  if (plan != nullptr) {
    response.cache_hit = true;
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    searches_.fetch_add(1, std::memory_order_relaxed);
    SearchOptions search_options = options_.search;
    Budget budget;
    const int64_t budget_micros = request.planning_budget_micros >= 0
                                      ? request.planning_budget_micros
                                      : options_.planning_budget_micros;
    if (budget_micros >= 0) {
      budget.SetDeadline(clock_, budget_micros);
      search_options.budget = &budget;
    }
    Result<SearchOutcome> outcome = search_.Run(request.query, search_options);
    if (!outcome.ok()) {
      response.status = outcome.status();
    } else if (!outcome->best.has_value()) {
      // Distinguish "provably no plan" from "budget ran out first".
      response.status = outcome->exhaustion.ok()
                            ? NotFoundError(StrCat(
                                  "no plan with at most ",
                                  search_options.max_access_commands,
                                  " access commands answers ",
                                  request.query.name))
                            : outcome->exhaustion;
    } else if (options_.cache_enabled) {
      // Offered even for skip_cache requests: a freshly planned result can
      // still serve future hits. Cost-aware admission keeps the cheapest.
      plan = cache_.Insert(fingerprint, epoch,
                           std::move(outcome->best->plan),
                           outcome->best->cost);
    } else {
      plan = std::make_shared<const CachedPlan>(
          CachedPlan{std::move(fingerprint), epoch,
                     std::move(outcome->best->plan), outcome->best->cost});
    }
  }
  const int64_t planned = clock_->NowMicros();
  response.plan_micros = planned - start;

  if (response.status.ok() && plan != nullptr) {
    response.plan = plan;
    if (request.execute) {
      if (source == nullptr) {
        response.status = FailedPreconditionError(
            "execute requested but the service has no source factory");
      } else {
        ExecutionOptions exec_options = options_.execution;
        if (exec_options.clock == nullptr) exec_options.clock = clock_;
        Result<ExecutionResult> run =
            ExecutePlan(plan->plan, *source, exec_options);
        if (!run.ok()) {
          response.status = run.status();
        } else {
          response.execution = std::move(run).value();
          response.executed = true;
          executions_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      response.exec_micros = clock_->NowMicros() - planned;
    }
  }

  completed_.fetch_add(1, std::memory_order_relaxed);
  if (!response.status.ok()) failed_.fetch_add(1, std::memory_order_relaxed);
  queue_micros_.fetch_add(response.queue_micros, std::memory_order_relaxed);
  plan_micros_.fetch_add(response.plan_micros, std::memory_order_relaxed);
  exec_micros_.fetch_add(response.exec_micros, std::memory_order_relaxed);
  return response;
}

}  // namespace lcp
