#include "lcp/service/service.h"

#include <algorithm>
#include <utility>

#include "lcp/base/strings.h"
#include "lcp/service/canonical.h"
#include "lcp/service/snapshot.h"

namespace lcp {

namespace {

/// Cache entries are keyed by a combined epoch: schema epoch in the high
/// bits, source-availability epoch in the low bits (DESIGN.md §10). The
/// schema epoch advances a handful of times per process lifetime and the
/// availability epoch once per quarantine/recovery transition, so 32 bits
/// each is comfortable headroom.
constexpr int kAvailabilityEpochBits = 32;
constexpr uint64_t kAvailabilityEpochMask =
    (uint64_t{1} << kAvailabilityEpochBits) - 1;

}  // namespace

QueryService::Job::~Job() {
  if (resolved) return;
  // Backstop for the lifecycle invariant "every submitted future resolves
  // exactly once": if some path ever drops a pending job, the caller gets a
  // definite kInternal response instead of a std::future_error. A moved-from
  // or already-satisfied promise throws std::future_error here; both mean
  // there is nothing left to resolve.
  QueryResponse response;
  response.status =
      InternalError("request dropped without a response (service bug)");
  try {
    promise.set_value(std::move(response));
  } catch (const std::future_error&) {
  }
}

void QueryService::ResolveJob(Job& job, QueryResponse response) {
  if (job.resolved) return;
  job.resolved = true;
  job.promise.set_value(std::move(response));
}

QueryService::QueryService(const AccessibleSchema* accessible,
                           const CostFunction* cost,
                           SourceFactory source_factory,
                           ServiceOptions options)
    : accessible_(accessible),
      cost_(cost),
      source_factory_(std::move(source_factory)),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : SystemClock::Instance()),
      search_(accessible, cost),
      cache_(options_.cache),
      epoch_(1),
      schema_fingerprint_(SchemaFingerprint(accessible->base())) {
  // Per-request budgets are armed in Serve; a caller-supplied budget in the
  // template would be shared across threads, which Budget forbids.
  options_.search.budget = nullptr;
  options_.search.parallelism =
      options_.planner_parallelism < 1 ? 1 : options_.planner_parallelism;
  options_.execution.exec_parallelism =
      options_.exec_parallelism < 1 ? 1 : options_.exec_parallelism;
  if (options_.search.parallelism > 1) {
    // Unsupported under parallel search; dropping it here beats failing
    // every request with kInvalidArgument.
    options_.search.collect_exploration_log = false;
  }
  // The service-level optimizer knobs are authoritative: cached plans are
  // optimized once at planning time and served on every later hit.
  options_.search.optimize_plans = options_.optimize_plans;
  options_.search.optimizer = options_.optimizer;
  if (options_.failover_enabled && source_factory_ != nullptr) {
    // Plan-only services get no registry: with no executor feedback there is
    // nothing to learn and no probe to send.
    if (options_.health.clock == nullptr) options_.health.clock = clock_;
    health_ = std::make_unique<SourceHealthRegistry>(&accessible_->base(),
                                                     options_.health);
  }
  // Warm restart: rehydrate the cache before any worker can serve, so the
  // very first request already probes a warmed cache. Corruption of any kind
  // degrades to a cold start (counters record what was rejected).
  LoadSnapshotAtStartup();
  if (!options_.snapshot_path.empty() && options_.cache_enabled &&
      options_.snapshot_interval_micros > 0) {
    next_snapshot_at_.store(
        clock_->NowMicros() + options_.snapshot_interval_micros,
        std::memory_order_relaxed);
  }
  int workers = options_.num_workers < 1 ? 1 : options_.num_workers;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

Status QueryService::ValidateRequest(const QueryRequest& request) const {
  // Schema::ValidateQuery covers unknown relations and arity mismatches;
  // ConjunctiveQuery::Validate (called by it) covers empty bodies and
  // unsafe/repeated head variables. All of it is a client error at this
  // boundary, so the edge reports one canonical code.
  Status status = accessible_->base().ValidateQuery(request.query);
  if (!status.ok()) {
    return InvalidArgumentError(StrCat("invalid query ", request.query.name,
                                       ": ", status.message()));
  }
  return Status::Ok();
}

SubmitHandle QueryService::Submit(QueryRequest request) {
  Job job;
  job.request = std::move(request);
  job.enqueue_micros = clock_->NowMicros();
  job.cancel = std::make_shared<CancelToken>();
  SubmitHandle handle;
  handle.future = job.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  Status valid = ValidateRequest(job.request);
  if (!valid.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    QueryResponse response;
    response.status = std::move(valid);
    ResolveJob(job, std::move(response));
    return handle;
  }
  if (job.request.deadline_micros >= 0) {
    job.deadline_at = job.enqueue_micros + job.request.deadline_micros;
  }

  Job dropped;
  bool have_dropped = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutting_down_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      QueryResponse response;
      response.status =
          FailedPreconditionError("QueryService is shutting down");
      ResolveJob(job, std::move(response));
      return handle;
    }
    if (options_.max_queue_depth > 0 &&
        queue_.size() >= options_.max_queue_depth) {
      if (options_.shed_policy == ShedPolicy::kRejectNew) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        QueryResponse response;
        response.status = ResourceExhaustedError(
            StrCat("queue full (max_queue_depth=", options_.max_queue_depth,
                   "); request rejected"));
        ResolveJob(job, std::move(response));
        return handle;
      }
      dropped = std::move(queue_.front());
      queue_.pop_front();
      have_dropped = true;
    }
    job.ticket = next_ticket_++;
    handle.ticket = job.ticket;
    queue_.push_back(std::move(job));
    const uint64_t depth = queue_.size();
    if (depth > queue_depth_high_water_.load(std::memory_order_relaxed)) {
      queue_depth_high_water_.store(depth, std::memory_order_relaxed);
    }
  }
  if (have_dropped) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    QueryResponse response;
    response.status = ResourceExhaustedError(
        "shed by drop-oldest admission (queue full)");
    response.queue_micros = clock_->NowMicros() - dropped.enqueue_micros;
    ResolveJob(dropped, std::move(response));
  }
  queue_cv_.notify_one();
  return handle;
}

QueryResponse QueryService::Call(QueryRequest request) {
  return Submit(std::move(request)).future.get();
}

bool QueryService::Cancel(uint64_t ticket) {
  if (ticket == 0) return false;
  Job victim;
  bool queued = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->ticket == ticket) {
        victim = std::move(*it);
        queue_.erase(it);
        queued = true;
        break;
      }
    }
    if (!queued) {
      auto it = inflight_.find(ticket);
      if (it == inflight_.end()) return false;
      // In flight: trip the token; the worker winds down at its next budget
      // or access poll and resolves the future itself (counted as a
      // completed-with-kCancelled request, not as `cancelled`).
      it->second->Cancel(StatusCode::kCancelled);
      return true;
    }
  }
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  QueryResponse response;
  response.status = CancelledError("request cancelled while queued");
  response.queue_micros = clock_->NowMicros() - victim.enqueue_micros;
  ResolveJob(victim, std::move(response));
  return true;
}

uint64_t QueryService::RefreshSchema() {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  uint64_t fingerprint = SchemaFingerprint(accessible_->base());
  if (fingerprint != schema_fingerprint_.load(std::memory_order_relaxed)) {
    schema_fingerprint_.store(fingerprint, std::memory_order_release);
    uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
    epoch_.store(next, std::memory_order_release);
    epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
    // Entries are keyed by the combined serving epoch, whose high bits are
    // the schema epoch: everything below the new schema epoch's band is
    // stale regardless of availability epoch.
    cache_.EvictBelowEpoch(next << kAvailabilityEpochBits);
    // In-flight coalitions were searching for a dead epoch's plan: wake
    // their followers so each re-plans under the new epoch.
    coalescer_.InvalidateBelow(next << kAvailabilityEpochBits);
  }
  return epoch_.load(std::memory_order_relaxed);
}

uint64_t QueryService::BumpEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
  epoch_.store(next, std::memory_order_release);
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
  cache_.EvictBelowEpoch(next << kAvailabilityEpochBits);
  coalescer_.InvalidateBelow(next << kAvailabilityEpochBits);
  return next;
}

uint64_t QueryService::ServingEpoch(uint64_t schema_epoch) const {
  const uint64_t avail =
      health_ != nullptr ? health_->availability_epoch() : 0;
  return (schema_epoch << kAvailabilityEpochBits) |
         (avail & kAvailabilityEpochMask);
}

ServiceStats QueryService::SnapshotStats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.searches = searches_.load(std::memory_order_relaxed);
  s.executions = executions_.load(std::memory_order_relaxed);
  s.access_batches = access_batches_.load(std::memory_order_relaxed);
  s.access_bindings = access_bindings_.load(std::memory_order_relaxed);
  s.exec_morsels = exec_morsels_.load(std::memory_order_relaxed);
  s.exec_build_partitions =
      exec_build_partitions_.load(std::memory_order_relaxed);
  s.exec_workers =
      static_cast<uint64_t>(options_.execution.exec_parallelism);
  s.epoch_bumps = epoch_bumps_.load(std::memory_order_relaxed);
  s.plans_optimized = plans_optimized_.load(std::memory_order_relaxed);
  s.optimizer_commands_removed =
      optimizer_commands_removed_.load(std::memory_order_relaxed);
  s.optimizer_access_commands_removed =
      optimizer_access_commands_removed_.load(std::memory_order_relaxed);
  s.optimizer_cost_saved_milli =
      optimizer_cost_saved_milli_.load(std::memory_order_relaxed);
  s.queue_depth_high_water =
      queue_depth_high_water_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.degraded_responses = degraded_responses_.load(std::memory_order_relaxed);
  if (health_ != nullptr) {
    const HealthStats health = health_->stats();
    s.quarantines = health.quarantines;
    s.probes_sent = health.probes_sent;
    s.probes_failed = health.probes_failed;
    s.recoveries = health.recoveries;
    s.methods_quarantined = health_->NumQuarantined();
    s.availability_epoch = health_->availability_epoch();
  }
  s.snapshots_written = snapshots_written_.load(std::memory_order_relaxed);
  s.snapshot_write_failures =
      snapshot_write_failures_.load(std::memory_order_relaxed);
  s.snapshot_entries_persisted =
      snapshot_entries_persisted_.load(std::memory_order_relaxed);
  s.snapshots_loaded = snapshots_loaded_.load(std::memory_order_relaxed);
  s.snapshots_rejected = snapshots_rejected_.load(std::memory_order_relaxed);
  s.snapshot_entries_loaded =
      snapshot_entries_loaded_.load(std::memory_order_relaxed);
  s.snapshot_entries_rejected_corrupt =
      snapshot_entries_rejected_corrupt_.load(std::memory_order_relaxed);
  s.snapshot_entries_rejected_stale =
      snapshot_entries_rejected_stale_.load(std::memory_order_relaxed);
  s.coalesced_leaders = coalesced_leaders_.load(std::memory_order_relaxed);
  s.coalesced_followers = coalesced_followers_.load(std::memory_order_relaxed);
  s.coalition_handoffs = coalition_handoffs_.load(std::memory_order_relaxed);
  s.coalesced_waiting = coalescer_.waiting();
  s.queue_micros = queue_micros_.load(std::memory_order_relaxed);
  s.plan_micros = plan_micros_.load(std::memory_order_relaxed);
  s.exec_micros = exec_micros_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  return s;
}

void QueryService::LoadSnapshotAtStartup() {
  if (options_.snapshot_path.empty() || !options_.cache_enabled) return;
  const SnapshotLoadStats loaded = LoadSnapshotFile(
      options_.snapshot_path, schema_fingerprint_.load(std::memory_order_relaxed),
      accessible_->base(), ServingEpoch(epoch_.load(std::memory_order_relaxed)),
      cache_);
  if (!loaded.found) return;  // Cold start: no file yet (or unreadable).
  if (!loaded.header_ok) {
    // Wrong magic/version or a different schema: the whole file is useless,
    // but that is a normal cold start, not an error.
    snapshots_rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  snapshots_loaded_.fetch_add(1, std::memory_order_relaxed);
  snapshot_entries_loaded_.fetch_add(loaded.entries_loaded,
                                     std::memory_order_relaxed);
  snapshot_entries_rejected_corrupt_.fetch_add(loaded.entries_rejected_corrupt,
                                               std::memory_order_relaxed);
  snapshot_entries_rejected_stale_.fetch_add(loaded.entries_rejected_stale,
                                             std::memory_order_relaxed);
}

bool QueryService::WriteSnapshot() {
  if (options_.snapshot_path.empty() || !options_.cache_enabled) return false;
  // One writer at a time; the rename at the end is atomic, so a reader (a
  // restarting process) always sees a complete file.
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  SnapshotWriteStats stats;
  const Status status = WriteSnapshotFile(
      options_.snapshot_path, cache_.Entries(),
      ServingEpoch(epoch_.load(std::memory_order_acquire)),
      schema_fingerprint_.load(std::memory_order_acquire), &stats);
  if (!status.ok()) {
    snapshot_write_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  snapshot_entries_persisted_.fetch_add(stats.entries_persisted,
                                        std::memory_order_relaxed);
  return true;
}

void QueryService::MaybeWriteSnapshot() {
  int64_t due = next_snapshot_at_.load(std::memory_order_relaxed);
  if (due < 0) return;  // Interval snapshots disabled.
  const int64_t now = clock_->NowMicros();
  if (now < due) return;
  // The CAS elects exactly one writer per interval; losers see a future due
  // time and return without touching the snapshot mutex.
  if (!next_snapshot_at_.compare_exchange_strong(
          due, now + options_.snapshot_interval_micros,
          std::memory_order_relaxed)) {
    return;
  }
  WriteSnapshot();
}

size_t QueryService::QueueDepth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

void QueryService::Shutdown(ShutdownMode mode) {
  std::vector<Job> aborted;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    shutting_down_ = true;
    if (mode == ShutdownMode::kAbort) {
      while (!queue_.empty()) {
        aborted.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      // In-flight requests wind down cooperatively: their budgets and the
      // executor's access loop poll the token, so no new source access
      // starts after this point — that is what bounds the join below.
      for (auto& entry : inflight_) {
        entry.second->Cancel(StatusCode::kUnavailable);
      }
    }
  }
  for (Job& job : aborted) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    QueryResponse response;
    response.status =
        UnavailableError("service shut down before the request was served");
    response.queue_micros = clock_->NowMicros() - job.enqueue_micros;
    ResolveJob(job, std::move(response));
  }
  queue_cv_.notify_all();
  // Exactly one caller joins the workers; concurrent callers block here
  // until the join completes (a second joiner racing the first on the same
  // std::thread objects is undefined behavior).
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Drain shutdown persists the final cache state exactly once, after the
  // workers are quiescent — the snapshot sees everything the last request
  // planned. Abort shutdown skips it: an abort is for getting out fast, and
  // the previous interval/drain snapshot is still on disk and still valid.
  // The flag also settles the decision for the destructor's implicit drain,
  // so an explicit abort is never overruled by a later Shutdown() call.
  if (!final_snapshot_written_) {
    final_snapshot_written_ = true;
    if (mode == ShutdownMode::kDrain && !options_.snapshot_path.empty() &&
        options_.cache_enabled) {
      WriteSnapshot();
    }
  }
}

void QueryService::WorkerLoop() {
  // Each worker owns a private source: AccessSource implementations keep
  // per-connection state (lazy indexes, accounting) and are not thread-safe.
  std::unique_ptr<AccessSource> source;
  if (source_factory_ != nullptr) source = source_factory_();
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and drained (or aborted).
      job = std::move(queue_.front());
      queue_.pop_front();
      // Registered under the same lock as the dequeue, so Cancel and abort
      // shutdown always find a live request either queued or in flight —
      // never in between.
      inflight_[job.ticket] = job.cancel;
    }
    const int64_t now = clock_->NowMicros();
    if (job.deadline_at >= 0 && now >= job.deadline_at) {
      // Expired while queued: shed without planning. The `searches` counter
      // must not move for these — queue wait is never free, and overload
      // must not buy proof searches nobody is waiting for.
      shed_.fetch_add(1, std::memory_order_relaxed);
      QueryResponse response;
      response.status = DeadlineExceededError(
          StrCat("deadline expired after ", now - job.enqueue_micros,
                 "us in queue; shed without planning"));
      response.epoch = epoch_.load(std::memory_order_acquire);
      response.queue_micros = now - job.enqueue_micros;
      ResolveJob(job, std::move(response));
    } else {
      ResolveJob(job, Serve(job, source.get()));
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      inflight_.erase(job.ticket);
    }
    // Interval snapshots piggyback on request completion: an idle service
    // writes nothing (its cache is not changing), and no dedicated thread is
    // needed. The due check is one relaxed load on the common path.
    MaybeWriteSnapshot();
  }
}

void QueryService::RunDueProbes(AccessSource& source) {
  for (const SourceHealthRegistry::Probe& probe : health_->TakeDueProbes()) {
    // Replay the last binding that actually failed on the method (half-open
    // semantics: the registry admits one probe per expired window). Success
    // re-admits the method and bumps the availability epoch; failure re-arms
    // the quarantine with a backed-off window.
    Result<AccessOutcome> outcome =
        source.TryAccess(probe.method, probe.binding);
    if (outcome.ok()) {
      health_->RecordSuccess(probe.method);
    } else {
      health_->RecordFailure(probe.method, probe.binding);
    }
  }
}

std::shared_ptr<const CachedPlan> QueryService::PlanAndCache(
    const Job& job, const QueryFingerprint& fingerprint,
    uint64_t serving_epoch, bool allow_primary_fallback,
    QueryResponse& response) {
  const QueryRequest& request = job.request;
  std::vector<AccessMethodId> excluded;
  if (health_ != nullptr) excluded = health_->ExcludedMethods();
  bool detour = !excluded.empty();
  for (;;) {
    searches_.fetch_add(1, std::memory_order_relaxed);
    SearchOptions search_options = options_.search;
    if (detour) search_options.excluded_methods = excluded;
    Budget budget;
    budget.set_cancel_token(job.cancel.get());
    // The planning budget is the smaller of the configured per-request
    // budget and the time remaining under the end-to-end deadline: queue
    // wait (and, on a failover re-plan, the failed execution) has already
    // been charged against the request.
    int64_t budget_micros = request.planning_budget_micros >= 0
                                ? request.planning_budget_micros
                                : options_.planning_budget_micros;
    if (job.deadline_at >= 0) {
      const int64_t remaining =
          std::max<int64_t>(job.deadline_at - clock_->NowMicros(), 0);
      budget_micros = budget_micros < 0 ? remaining
                                        : std::min(budget_micros, remaining);
    }
    if (budget_micros >= 0) budget.SetDeadline(clock_, budget_micros);
    response.planning_budget_micros = budget_micros;
    search_options.budget = &budget;
    Result<SearchOutcome> outcome = search_.Run(request.query, search_options);
    if (job.cancel != nullptr && job.cancel->cancelled()) {
      // Cancelled mid-planning: discard any best-so-far plan — the caller
      // no longer wants it, and a truncated search must not poison the
      // cache.
      response.status =
          Status(job.cancel->code(), "request cancelled during planning");
      return nullptr;
    }
    if (!outcome.ok()) {
      response.status = outcome.status();
      return nullptr;
    }
    if (!outcome->best.has_value()) {
      if (detour && allow_primary_fallback && outcome->exhaustion.ok()) {
        // Provably no plan avoids the quarantined methods. Re-plan over the
        // full method set: the primary plan fails with an honest
        // kUnavailable at execution instead of a misleading kNotFound, and
        // keeps failing fast from the cache until a probe heals the outage.
        detour = false;
        continue;
      }
      // Distinguish "provably no plan" from "budget ran out first".
      response.status = outcome->exhaustion.ok()
                            ? NotFoundError(StrCat(
                                  "no plan with at most ",
                                  search_options.max_access_commands,
                                  " access commands answers ",
                                  request.query.name))
                            : outcome->exhaustion;
      return nullptr;
    }
    if (outcome->optimized && outcome->optimize.changed) {
      plans_optimized_.fetch_add(1, std::memory_order_relaxed);
      optimizer_commands_removed_.fetch_add(
          static_cast<uint64_t>(outcome->optimize.commands_before -
                                outcome->optimize.commands_after),
          std::memory_order_relaxed);
      optimizer_access_commands_removed_.fetch_add(
          static_cast<uint64_t>(outcome->optimize.access_commands_before -
                                outcome->optimize.access_commands_after),
          std::memory_order_relaxed);
      const double saved =
          outcome->optimize.cost_before - outcome->optimize.cost_after;
      if (saved > 0) {
        optimizer_cost_saved_milli_.fetch_add(
            static_cast<uint64_t>(saved * 1000.0 + 0.5),
            std::memory_order_relaxed);
      }
    }
    if (options_.cache_enabled) {
      // Offered even for skip_cache requests: a freshly planned result can
      // still serve future hits. Cost-aware admission keeps the cheapest.
      return cache_.Insert(fingerprint, serving_epoch,
                           std::move(outcome->best->plan),
                           outcome->best->cost, detour);
    }
    return std::make_shared<const CachedPlan>(
        CachedPlan{fingerprint, serving_epoch, std::move(outcome->best->plan),
                   outcome->best->cost, detour});
  }
}

std::shared_ptr<const CachedPlan> QueryService::PlanCoalesced(
    const Job& job, const QueryFingerprint& fingerprint,
    uint64_t& serving_epoch, QueryResponse& response) {
  if (!options_.coalescing_enabled || job.request.skip_cache) {
    return PlanAndCache(job, fingerprint, serving_epoch,
                        /*allow_primary_fallback=*/true, response);
  }
  // Outer loop: one iteration per coalition joined. Re-entered only when an
  // epoch bump invalidated the previous coalition mid-wait; the bound is a
  // backstop against pathological epoch churn, after which the request
  // plans solo rather than spinning.
  for (int round = 0; round < 16; ++round) {
    RequestCoalescer::Ticket ticket =
        coalescer_.JoinOrLead(fingerprint.key, serving_epoch);
    bool act_as_leader = ticket.leader;
    bool invalidated = false;
    while (!act_as_leader) {
      RequestCoalescer::WaitResult wait =
          coalescer_.Wait(ticket.flight, [&]() {
            if (job.cancel != nullptr && job.cancel->cancelled()) return true;
            return job.deadline_at >= 0 &&
                   clock_->NowMicros() >= job.deadline_at;
          });
      switch (wait.outcome) {
        case RequestCoalescer::Outcome::kPlan:
          // The leader's search fed this request; the follower now executes
          // its own instance of the shared plan under its own deadline.
          coalesced_followers_.fetch_add(1, std::memory_order_relaxed);
          return wait.plan;
        case RequestCoalescer::Outcome::kStatus:
          // A definite property of the query (e.g. no plan exists), not of
          // the leader's request: honest to propagate without re-searching.
          coalesced_followers_.fetch_add(1, std::memory_order_relaxed);
          response.status = wait.status;
          return nullptr;
        case RequestCoalescer::Outcome::kDetached:
          response.status =
              (job.cancel != nullptr && job.cancel->cancelled())
                  ? Status(job.cancel->code(),
                           "request cancelled while waiting for coalesced "
                           "plan")
                  : DeadlineExceededError(
                        "deadline expired while waiting for coalesced plan");
          return nullptr;
        case RequestCoalescer::Outcome::kInvalidated:
          invalidated = true;
          break;
        case RequestCoalescer::Outcome::kPromoted:
          coalition_handoffs_.fetch_add(1, std::memory_order_relaxed);
          // Promotion hands this follower the leader obligations — but its
          // own cancel/deadline may be why it woke. A dead promotee hands
          // off again immediately instead of searching for nobody.
          if (job.cancel != nullptr && job.cancel->cancelled()) {
            coalescer_.Abandon(ticket.flight);
            response.status = Status(job.cancel->code(),
                                     "request cancelled while coalesced");
            return nullptr;
          }
          if (job.deadline_at >= 0 &&
              clock_->NowMicros() >= job.deadline_at) {
            coalescer_.Abandon(ticket.flight);
            response.status = DeadlineExceededError(
                "deadline expired while waiting for coalesced plan");
            return nullptr;
          }
          act_as_leader = true;
          break;
      }
      if (invalidated) break;
    }
    if (invalidated) {
      // The serving epoch moved while we waited; whatever the old leader
      // finds can no longer serve. Re-resolve and re-join under the new
      // epoch (the cache re-check below covers a plan already landed there).
      response.epoch = epoch_.load(std::memory_order_acquire);
      serving_epoch = ServingEpoch(response.epoch);
      continue;
    }
    // Leader path. Between this request's cache miss and its join, a
    // previous coalition may have resolved and dissolved — re-check the
    // cache before paying a search, and feed any hit to our followers.
    if (options_.cache_enabled) {
      std::shared_ptr<const CachedPlan> cached =
          cache_.Lookup(fingerprint, serving_epoch, /*count_stats=*/false);
      if (cached != nullptr) {
        response.cache_hit = true;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        coalescer_.PublishPlan(ticket.flight, cached);
        return cached;
      }
    }
    coalesced_leaders_.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<const CachedPlan> plan =
        PlanAndCache(job, fingerprint, serving_epoch,
                     /*allow_primary_fallback=*/true, response);
    if (plan != nullptr) {
      coalescer_.PublishPlan(ticket.flight, plan);
      return plan;
    }
    // Leader-specific aborts (this request's cancel or budget/deadline) say
    // nothing about the query — hand the search to a follower. Everything
    // else (kNotFound, kInvalidArgument, internal errors) is a definite
    // outcome every follower should share.
    const StatusCode code = response.status.code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      coalescer_.Abandon(ticket.flight);
    } else {
      coalescer_.PublishStatus(ticket.flight, response.status);
    }
    return nullptr;
  }
  return PlanAndCache(job, fingerprint, serving_epoch,
                      /*allow_primary_fallback=*/true, response);
}

QueryResponse QueryService::Serve(const Job& job, AccessSource* source) {
  const QueryRequest& request = job.request;
  QueryResponse response;
  const int64_t start = clock_->NowMicros();
  response.queue_micros = start - job.enqueue_micros;
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  response.epoch = epoch;

  // A cancellation (or abort shutdown) that raced the dequeue: resolve
  // without planning.
  if (job.cancel != nullptr && job.cancel->cancelled()) {
    response.status =
        Status(job.cancel->code(), "request abandoned before planning began");
  }

  // Recovery probes run before the epoch-keyed cache lookup, so this very
  // request already plans against the post-probe availability mask (a healed
  // method's cheap plan wins immediately). The lock-free gauge keeps the
  // healthy path at one relaxed load.
  if (response.status.ok() && health_ != nullptr && source != nullptr &&
      health_->NumQuarantined() > 0) {
    RunDueProbes(*source);
  }
  uint64_t serving_epoch = ServingEpoch(epoch);

  std::shared_ptr<const CachedPlan> plan;
  QueryFingerprint fingerprint;
  const bool lookup_cache = options_.cache_enabled && !request.skip_cache;
  if (response.status.ok()) {
    fingerprint = CanonicalizeQuery(request.query);
    if (lookup_cache) plan = cache_.Lookup(fingerprint, serving_epoch);
    if (plan != nullptr) {
      response.cache_hit = true;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      plan = PlanCoalesced(job, fingerprint, serving_epoch, response);
    }
  }
  const int64_t planned = clock_->NowMicros();
  response.plan_micros = planned - start;

  if (response.status.ok() && plan != nullptr) {
    response.plan = plan;
    if (request.execute) {
      if (source == nullptr) {
        response.status = FailedPreconditionError(
            "execute requested but the service has no source factory");
      } else {
        for (int attempt = 0;; ++attempt) {
          ExecutionOptions exec_options = options_.execution;
          if (exec_options.clock == nullptr) exec_options.clock = clock_;
          exec_options.cancel = job.cancel.get();
          if (health_ != nullptr) exec_options.health = health_.get();
          if (job.deadline_at >= 0) {
            // Execution gets only what the end-to-end deadline has left.
            const int64_t remaining =
                std::max<int64_t>(job.deadline_at - clock_->NowMicros(), 0);
            int64_t& plan_deadline = exec_options.retry.plan_deadline_micros;
            plan_deadline = plan_deadline < 0
                                ? remaining
                                : std::min(plan_deadline, remaining);
          }
          Result<ExecutionResult> run =
              ExecutePlan(plan->plan, *source, exec_options);
          if (job.cancel != nullptr && job.cancel->cancelled()) {
            // Cancelled mid-execution: even if the plan happened to finish,
            // the caller no longer wants the answer — report the token's
            // status so cancellation is observable deterministically.
            response.status = Status(job.cancel->code(),
                                     "request cancelled during execution");
            break;
          }
          if (run.ok()) {
            response.execution = std::move(run).value();
            response.executed = true;
            executions_.fetch_add(1, std::memory_order_relaxed);
            access_batches_.fetch_add(response.execution.exec.access_batches,
                                      std::memory_order_relaxed);
            access_bindings_.fetch_add(response.execution.exec.access_bindings,
                                       std::memory_order_relaxed);
            exec_morsels_.fetch_add(response.execution.exec.morsels,
                                    std::memory_order_relaxed);
            exec_build_partitions_.fetch_add(
                response.execution.exec.parallel_build_partitions,
                std::memory_order_relaxed);
            break;
          }
          // Failover (DESIGN.md §10): at most one in-request re-plan, only
          // for kUnavailable, and only when the failed execution actually
          // changed the availability mask (the executor's health feedback
          // quarantined something) — under an unchanged mask a re-plan would
          // rebuild the same plan.
          if (attempt > 0 || health_ == nullptr ||
              run.status().code() != StatusCode::kUnavailable ||
              ServingEpoch(epoch) == serving_epoch) {
            response.status = run.status();
            break;
          }
          const Status primary_failure = run.status();
          serving_epoch = ServingEpoch(epoch);
          failovers_.fetch_add(1, std::memory_order_relaxed);
          response.failed_over = true;
          std::shared_ptr<const CachedPlan> fallback;
          if (lookup_cache) fallback = cache_.Lookup(fingerprint, serving_epoch);
          if (fallback == nullptr) {
            fallback = PlanAndCache(job, fingerprint, serving_epoch,
                                    /*allow_primary_fallback=*/false, response);
          }
          if (fallback == nullptr) {
            // No detour exists: the original execution failure is the honest
            // answer (a re-plan kNotFound would read as "the query has no
            // plan"). Cancellation and budget expiry keep their own codes.
            if (response.status.code() == StatusCode::kNotFound) {
              response.status = primary_failure;
            }
            break;
          }
          plan = fallback;
          response.plan = plan;
        }
      }
      response.exec_micros = clock_->NowMicros() - planned;
    }
  }

  // A detour plan answers exactly, just possibly at higher cost than the
  // quarantined primary — mark the response so callers and stats can see it.
  if (response.status.ok() && response.plan != nullptr &&
      response.plan->detour) {
    response.degraded = true;
    degraded_responses_.fetch_add(1, std::memory_order_relaxed);
  }

  completed_.fetch_add(1, std::memory_order_relaxed);
  if (!response.status.ok()) failed_.fetch_add(1, std::memory_order_relaxed);
  queue_micros_.fetch_add(response.queue_micros, std::memory_order_relaxed);
  plan_micros_.fetch_add(response.plan_micros, std::memory_order_relaxed);
  exec_micros_.fetch_add(response.exec_micros, std::memory_order_relaxed);
  return response;
}

}  // namespace lcp
