#ifndef LCP_SERVICE_SERVICE_H_
#define LCP_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/base/clock.h"
#include "lcp/base/result.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/plan/cost.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/service/plan_cache.h"

namespace lcp {

/// Construction-time knobs of a QueryService.
struct ServiceOptions {
  /// Fixed worker pool size; at least 1.
  int num_workers = 4;
  PlanCache::Options cache;
  /// Set false to plan every request from scratch (benchmark baseline).
  bool cache_enabled = true;
  /// Template for every planning episode. Its `budget` pointer is ignored:
  /// budgets are per-request (see planning_budget_micros).
  SearchOptions search;
  /// Template for every execution. Its `clock` is overridden by `clock`
  /// below when null.
  ExecutionOptions execution;
  /// Per-request planning budget on `clock`; -1 = unlimited. A request that
  /// exhausts it still returns the best plan found so far (anytime), or
  /// kDeadlineExceeded if none was found.
  int64_t planning_budget_micros = -1;
  /// Clock for latency accounting, budgets, and execution backoff;
  /// null = process SystemClock.
  Clock* clock = nullptr;
};

/// One query-answering request.
struct QueryRequest {
  ConjunctiveQuery query;
  /// False = plan-only (no source access); the response carries the plan.
  bool execute = true;
  /// Overrides ServiceOptions::planning_budget_micros when >= 0.
  int64_t planning_budget_micros = -1;
  /// Bypass the plan cache for this request (always re-plan; the result is
  /// still offered to the cache).
  bool skip_cache = false;
};

/// The answer to one request.
struct QueryResponse {
  /// OK when a plan was found (and, if requested, executed). kNotFound when
  /// no plan exists within the access budget; kDeadlineExceeded when the
  /// planning budget expired before any plan was found; execution errors
  /// propagate as-is.
  Status status;
  /// The plan that was served (null if status is not OK). Shared with the
  /// cache: immutable, safe to hold indefinitely.
  std::shared_ptr<const CachedPlan> plan;
  bool cache_hit = false;
  /// Valid iff `executed`.
  ExecutionResult execution;
  bool executed = false;
  /// Schema epoch the request was served under.
  uint64_t epoch = 0;
  /// Per-phase latencies on the service clock.
  int64_t queue_micros = 0;
  int64_t plan_micros = 0;
  int64_t exec_micros = 0;
};

/// Lock-free snapshot of service-level counters (cumulative; relaxed reads,
/// monotone but not cross-counter consistent). Cache-level counters live in
/// PlanCacheStats.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;         ///< Completed with a non-OK status.
  uint64_t cache_hits = 0;
  uint64_t searches = 0;       ///< Proof searches actually run.
  uint64_t executions = 0;
  uint64_t epoch_bumps = 0;
  /// Totals for deriving means; on the service clock.
  int64_t queue_micros = 0;
  int64_t plan_micros = 0;
  int64_t exec_micros = 0;
  PlanCacheStats cache;

  double CacheHitRate() const {
    uint64_t lookups = cache.hits + cache.misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache.hits) / lookups;
  }
};

/// A concurrent query-answering service: a fixed worker pool that serves
/// plan-then-execute requests end-to-end, amortizing proof search through
/// the canonicalizing PlanCache. This is the serving regime the paper's
/// cost-guided proof search is built for — the expensive reasoning happens
/// once per query *shape* per schema epoch; every α-equivalent request
/// afterwards pays one fingerprint and one cache probe.
///
/// Thread model: Submit is safe from any thread and never blocks on
/// planning; workers pull from a FIFO queue. Each worker owns a private
/// AccessSource built by the factory (sources are stateful and not
/// thread-safe), while the AccessibleSchema, CostFunction, and ProofSearch
/// are shared read-only (ProofSearch::Run is const and re-entrant).
///
/// Schema epochs: the service fingerprints the base schema at construction.
/// After mutating the schema or its constraints (which callers must do only
/// while no planning is in flight — the schema itself is not guarded),
/// call RefreshSchema(); if the fingerprint changed, the epoch advances and
/// all cached plans become unreachable (and are eagerly evicted).
class QueryService {
 public:
  /// A factory producing one private AccessSource per worker thread. May be
  /// null when every request is plan-only (execute = false).
  using SourceFactory = std::function<std::unique_ptr<AccessSource>()>;

  /// `accessible` and `cost` must outlive the service.
  QueryService(const AccessibleSchema* accessible, const CostFunction* cost,
               SourceFactory source_factory, ServiceOptions options);

  /// Drains in-flight work and joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues a request; the future resolves when a worker has served it.
  /// After Shutdown, resolves immediately with kFailedPrecondition.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Convenience: Submit + wait.
  QueryResponse Call(QueryRequest request);

  /// Re-fingerprints the base schema; if it changed, advances the epoch and
  /// evicts all stale plans. Returns the current epoch. Safe to call
  /// concurrently with Submit, but the *schema mutation itself* must have
  /// happened with planning quiesced (see class comment).
  uint64_t RefreshSchema();

  /// Test/ops hook: unconditionally advances the epoch (as if the schema
  /// changed), invalidating every cached plan. Returns the new epoch.
  uint64_t BumpEpoch();

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t schema_fingerprint() const {
    return schema_fingerprint_.load(std::memory_order_acquire);
  }

  /// Lock-free stats snapshot (service counters + cache counters).
  ServiceStats SnapshotStats() const;

  const PlanCache& cache() const { return cache_; }

  /// Stops accepting requests, drains the queue, joins workers. Idempotent.
  void Shutdown();

 private:
  struct Job {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    int64_t enqueue_micros = 0;
  };

  void WorkerLoop();
  QueryResponse Serve(const QueryRequest& request, AccessSource* source,
                      int64_t enqueue_micros);

  const AccessibleSchema* accessible_;
  const CostFunction* cost_;
  SourceFactory source_factory_;
  ServiceOptions options_;
  Clock* clock_;
  ProofSearch search_;
  PlanCache cache_;

  std::atomic<uint64_t> epoch_;
  std::atomic<uint64_t> schema_fingerprint_;
  /// Serializes RefreshSchema/BumpEpoch (epoch reads stay lock-free).
  std::mutex epoch_mutex_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> searches_{0};
  std::atomic<uint64_t> executions_{0};
  std::atomic<uint64_t> epoch_bumps_{0};
  std::atomic<int64_t> queue_micros_{0};
  std::atomic<int64_t> plan_micros_{0};
  std::atomic<int64_t> exec_micros_{0};
};

}  // namespace lcp

#endif  // LCP_SERVICE_SERVICE_H_
