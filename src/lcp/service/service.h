#ifndef LCP_SERVICE_SERVICE_H_
#define LCP_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/base/budget.h"
#include "lcp/base/clock.h"
#include "lcp/base/result.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/plan/cost.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/runtime/health.h"
#include "lcp/service/coalesce.h"
#include "lcp/service/plan_cache.h"

namespace lcp {

/// What Submit does when the queue is at max_queue_depth.
enum class ShedPolicy {
  /// Fast-fail the *new* request with kResourceExhausted, without queueing.
  /// The default: admission latency stays microseconds under overload.
  kRejectNew,
  /// Admit the new request and evict the *oldest* queued one, resolving its
  /// future with kResourceExhausted. Prefers fresh work when stale queued
  /// requests have likely outlived their callers.
  kDropOldest,
};

/// How Shutdown treats work that has not completed yet.
enum class ShutdownMode {
  /// Stop admitting, serve everything already queued, then join. The
  /// default, and the destructor's behavior.
  kDrain,
  /// Stop admitting, fail every queued request with kUnavailable, trip the
  /// cancel token of every in-flight request (planning and execution wind
  /// down at their next budget/access poll), then join. The join is bounded
  /// by cooperative cancellation: no new source access starts once the
  /// token is tripped.
  kAbort,
};

/// Construction-time knobs of a QueryService.
struct ServiceOptions {
  /// Fixed worker pool size; at least 1.
  int num_workers = 4;
  PlanCache::Options cache;
  /// Set false to plan every request from scratch (benchmark baseline).
  bool cache_enabled = true;
  /// Template for every planning episode. Its `budget` pointer is ignored:
  /// budgets are per-request (see planning_budget_micros).
  SearchOptions search;
  /// Proof-search workers per planning episode (SearchOptions::parallelism);
  /// overrides `search.parallelism`. The total planning thread count is
  /// num_workers * planner_parallelism — keep the product near the core
  /// count. Values < 1 are treated as 1. When > 1, the exploration log is
  /// disabled on the search template (unsupported under parallel search).
  int planner_parallelism = 1;
  /// Execution workers per request (ExecutionOptions::exec_parallelism);
  /// overrides `execution.exec_parallelism`. The total execution thread
  /// count is num_workers * exec_parallelism — keep the product near the
  /// core count. Values < 1 are treated as 1 (the historic single-threaded
  /// engine, byte-identical results either way; see DESIGN.md §13).
  int exec_parallelism = 1;
  /// Template for every execution. Its `clock` is overridden by `clock`
  /// below when null. `execution.engine` selects the execution engine for
  /// all requests: kVectorized (columnar batches, the default) or
  /// kRowOracle (tuple-at-a-time differential oracle) — both are
  /// bit-identical in results and statuses, so the knob only trades speed.
  ExecutionOptions execution;
  /// Per-request planning budget on `clock`; -1 = unlimited. A request that
  /// exhausts it still returns the best plan found so far (anytime), or
  /// kDeadlineExceeded if none was found. An end-to-end request deadline
  /// (QueryRequest::deadline_micros) tightens this further: the effective
  /// planning budget is the smaller of this and the time remaining at
  /// dequeue.
  int64_t planning_budget_micros = -1;
  /// Admission control: maximum number of *queued* (not yet dequeued)
  /// requests; 0 = unbounded (the historic default). When the bound is hit,
  /// `shed_policy` decides who pays.
  size_t max_queue_depth = 0;
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  /// Clock for latency accounting, budgets, and execution backoff;
  /// null = process SystemClock.
  Clock* clock = nullptr;
  /// Source-health tracking and alternate-plan failover (DESIGN.md §10).
  /// When true (and the service executes — a source factory was given), the
  /// service maintains a SourceHealthRegistry fed by executor outcomes,
  /// plans around quarantined access methods, re-plans once in-request when
  /// an execution fails with kUnavailable, and replays recovery probes when
  /// quarantine windows expire. False = the historic behavior: failures
  /// surface directly and every request plans over the full method set.
  bool failover_enabled = true;
  /// Knobs of the health registry (EWMA smoothing, quarantine thresholds and
  /// windows). `health.clock` defaults to the service clock when null.
  HealthOptions health;
  /// Run the plan-IR optimizer pipeline (plan/opt/, DESIGN.md §11) on every
  /// freshly planned query before cache admission, so warm hits serve
  /// pre-optimized plans and the admission decision sees the optimized cost.
  /// On by default: optimization is validated per pass, can only lower cost,
  /// and its one-time latency is amortized over every hit. Overrides
  /// `search.optimize_plans`.
  bool optimize_plans = true;
  /// Pass selection and fixpoint bound when optimize_plans is set
  /// (overrides `search.optimizer`).
  plan_opt::OptimizerOptions optimizer;
  /// Crash-safe warm restarts (DESIGN.md §12): when non-empty (and the cache
  /// is enabled), the service loads a plan-cache snapshot from this path at
  /// construction — every loaded plan is CRC-checked, defensively decoded,
  /// and re-validated against the live schema; a corrupt, truncated, or
  /// schema-stale file degrades to a cold start, never an error — and writes
  /// one atomically on Shutdown(kDrain). Empty = no persistence.
  std::string snapshot_path;
  /// When > 0 (and snapshot_path is set), additionally writes a snapshot in
  /// the background roughly every this many clock micros, piggybacked on
  /// request completion (an idle service writes nothing — nothing changed).
  /// 0 = shutdown-only snapshots.
  int64_t snapshot_interval_micros = 0;
  /// Single-flight request coalescing (DESIGN.md §12): concurrent cache
  /// misses on the same canonical fingerprint share one proof search — one
  /// leader plans, followers wait for the published plan and then execute
  /// their own instances under their own deadlines and cancel tokens. Off =
  /// the historic behavior (every miss searches). skip_cache requests always
  /// bypass coalescing: they explicitly demand a fresh search.
  bool coalescing_enabled = true;
};

/// One query-answering request.
struct QueryRequest {
  ConjunctiveQuery query;
  /// False = plan-only (no source access); the response carries the plan.
  bool execute = true;
  /// Overrides ServiceOptions::planning_budget_micros when >= 0.
  int64_t planning_budget_micros = -1;
  /// End-to-end deadline for the whole request, as a budget in clock micros
  /// measured from Submit; -1 = none. Queue wait is *not* free: a request
  /// whose deadline expires while queued is shed as kDeadlineExceeded
  /// without running proof search, and one dequeued with little time left
  /// gets only the remaining time as its planning budget and execution plan
  /// deadline.
  int64_t deadline_micros = -1;
  /// Bypass the plan cache for this request (always re-plan; the result is
  /// still offered to the cache).
  bool skip_cache = false;
};

/// The answer to one request.
struct QueryResponse {
  /// OK when a plan was found (and, if requested, executed). kNotFound when
  /// no plan exists within the access budget; kDeadlineExceeded when the
  /// planning budget or end-to-end deadline expired first; kCancelled when
  /// the request was cancelled; kResourceExhausted when admission control
  /// shed it; kInvalidArgument when the query failed boundary validation;
  /// execution errors propagate as-is.
  Status status;
  /// The plan that was served (null if status is not OK). Shared with the
  /// cache: immutable, safe to hold indefinitely.
  std::shared_ptr<const CachedPlan> plan;
  bool cache_hit = false;
  /// Valid iff `executed`.
  ExecutionResult execution;
  bool executed = false;
  /// Schema epoch the request was served under.
  uint64_t epoch = 0;
  /// True when the served plan is a failover detour: it was planned with one
  /// or more quarantined access methods excluded, so a cheaper primary plan
  /// may exist once the outage heals. The answer itself is exact — degraded
  /// refers to plan cost, not result completeness.
  bool degraded = false;
  /// True when this request's first execution failed with kUnavailable and
  /// the service re-planned around the newly quarantined methods in-request.
  bool failed_over = false;
  /// Per-phase latencies on the service clock.
  int64_t queue_micros = 0;
  int64_t plan_micros = 0;
  int64_t exec_micros = 0;
  /// The planning budget actually granted when a proof search ran
  /// (micros; -1 = unlimited). With an end-to-end deadline this is at most
  /// the time remaining after queue wait — observable proof that queue wait
  /// was charged against the request.
  int64_t planning_budget_micros = -1;
};

/// Lock-free snapshot of service-level counters (cumulative; relaxed reads,
/// monotone but not cross-counter consistent). Cache-level counters live in
/// PlanCacheStats.
///
/// Lifecycle conservation: every submitted request resolves in exactly one
/// of four ways, so after quiescence
///   submitted == completed + rejected + shed + cancelled.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;      ///< Served by a worker (OK or failed).
  uint64_t failed = 0;         ///< Completed with a non-OK status.
  uint64_t rejected = 0;       ///< Fast-failed at the Submit edge (validation,
                               ///< full queue under kRejectNew, shutdown).
  uint64_t shed = 0;           ///< Evicted after queueing (drop-oldest,
                               ///< deadline expired in queue, abort shutdown).
  uint64_t cancelled = 0;      ///< Cancelled while queued (in-flight cancels
                               ///< complete with kCancelled instead).
  uint64_t cache_hits = 0;
  uint64_t searches = 0;       ///< Proof searches actually run.
  uint64_t executions = 0;
  /// Plan-IR optimizer totals over freshly planned queries (zero when
  /// ServiceOptions::optimize_plans is off).
  uint64_t plans_optimized = 0;             ///< Optimizer runs that changed the plan.
  uint64_t optimizer_commands_removed = 0;  ///< Commands eliminated in total.
  uint64_t optimizer_access_commands_removed = 0;
  /// Total cost removed by the optimizer, in 1/1000 cost units (counters are
  /// integers; the shipped cost models are sums of method costs, so
  /// milli-units lose nothing in practice).
  uint64_t optimizer_cost_saved_milli = 0;
  /// Batched-dispatch totals across executions (vectorized and row engines
  /// both dispatch accesses in batches): TryAccessBatch calls issued and
  /// bindings carried by them.
  uint64_t access_batches = 0;
  uint64_t access_bindings = 0;
  /// Morsel-parallel execution totals (DESIGN.md §13): cache-sized morsels
  /// launched and hash-build partitions filled across executions. Zero
  /// under exec_parallelism=1.
  uint64_t exec_morsels = 0;
  uint64_t exec_build_partitions = 0;
  /// Execution workers per request (the configured exec_parallelism).
  uint64_t exec_workers = 0;
  uint64_t epoch_bumps = 0;
  uint64_t queue_depth_high_water = 0;  ///< Deepest queue ever observed.
  /// Source-health and failover counters (zero when failover is disabled).
  uint64_t failovers = 0;           ///< In-request re-plans after kUnavailable.
  uint64_t degraded_responses = 0;  ///< OK responses served by detour plans.
  uint64_t quarantines = 0;         ///< Methods entering quarantine (cumulative).
  uint64_t probes_sent = 0;         ///< Recovery probes replayed against sources.
  uint64_t probes_failed = 0;       ///< Probes that re-armed the quarantine.
  uint64_t recoveries = 0;          ///< Probes that re-admitted a method.
  uint64_t methods_quarantined = 0;  ///< Currently excluded methods (gauge).
  uint64_t availability_epoch = 0;   ///< Current availability epoch (gauge).
  /// Plan-cache persistence counters (all zero when snapshots are disabled).
  uint64_t snapshots_written = 0;
  uint64_t snapshot_write_failures = 0;     ///< I/O failures (non-fatal).
  uint64_t snapshot_entries_persisted = 0;  ///< Entries across all writes.
  uint64_t snapshots_loaded = 0;      ///< Files accepted (header valid).
  uint64_t snapshots_rejected = 0;    ///< Files found but rejected whole
                                      ///< (bad magic/version/schema).
  uint64_t snapshot_entries_loaded = 0;
  uint64_t snapshot_entries_rejected_corrupt = 0;  ///< CRC/frame/decode.
  uint64_t snapshot_entries_rejected_stale = 0;    ///< Failed ValidatePlan.
  /// Single-flight coalescing counters (zero when coalescing is disabled).
  /// Coalition leaders that paid a proof search on behalf of their flight
  /// (a leader whose post-join cache re-check hits is a cache hit instead).
  uint64_t coalesced_leaders = 0;
  /// Requests served by another request's search outcome — a shared plan or
  /// a definite status — with no search of their own. Counted at delivery,
  /// so every completed request lands in exactly one of cache_hits,
  /// searches, or coalesced_followers.
  uint64_t coalesced_followers = 0;
  uint64_t coalition_handoffs = 0;   ///< Followers promoted after the leader
                                     ///< abandoned (cancel/deadline).
  uint64_t coalesced_waiting = 0;    ///< Gauge: followers parked on an
                                     ///< in-flight coalition right now.
  /// Totals for deriving means; on the service clock.
  int64_t queue_micros = 0;
  int64_t plan_micros = 0;
  int64_t exec_micros = 0;
  PlanCacheStats cache;

  double CacheHitRate() const {
    uint64_t lookups = cache.hits + cache.misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache.hits) / lookups;
  }
};

/// What Submit hands back: the future plus a ticket for Cancel. Tickets are
/// unique for the lifetime of the service and never reused; ticket 0 means
/// the request was rejected at the edge and never entered the queue (its
/// future is already resolved).
struct SubmitHandle {
  uint64_t ticket = 0;
  std::future<QueryResponse> future;
};

/// A concurrent query-answering service: a fixed worker pool that serves
/// plan-then-execute requests end-to-end, amortizing proof search through
/// the canonicalizing PlanCache. This is the serving regime the paper's
/// cost-guided proof search is built for — the expensive reasoning happens
/// once per query *shape* per schema epoch; every α-equivalent request
/// afterwards pays one fingerprint and one cache probe.
///
/// Thread model: Submit is safe from any thread and never blocks on
/// planning; workers pull from a FIFO queue. Each worker owns a private
/// AccessSource built by the factory (sources are stateful and not
/// thread-safe), while the AccessibleSchema, CostFunction, and ProofSearch
/// are shared read-only (ProofSearch::Run is const and re-entrant).
///
/// Request lifecycle (see DESIGN.md §7): a request is *rejected* at the
/// Submit edge (malformed query, full queue under kRejectNew, shutdown),
/// *shed* after queueing (drop-oldest eviction, deadline expired in queue,
/// abort shutdown), *cancelled* while queued, or *completed* by a worker —
/// and its future resolves exactly once with a definite Status in every
/// case, including destruction mid-flight.
///
/// Schema epochs: the service fingerprints the base schema at construction.
/// After mutating the schema or its constraints (which callers must do only
/// while no planning is in flight — the schema itself is not guarded),
/// call RefreshSchema(); if the fingerprint changed, the epoch advances and
/// all cached plans become unreachable (and are eagerly evicted).
class QueryService {
 public:
  /// A factory producing one private AccessSource per worker thread. May be
  /// null when every request is plan-only (execute = false).
  using SourceFactory = std::function<std::unique_ptr<AccessSource>()>;

  /// `accessible` and `cost` must outlive the service.
  QueryService(const AccessibleSchema* accessible, const CostFunction* cost,
               SourceFactory source_factory, ServiceOptions options);

  /// Drains in-flight work and joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Validates and enqueues a request; the future resolves when a worker has
  /// served it (or admission control / Cancel / Shutdown resolved it
  /// earlier). Malformed queries (unknown relations, arity mismatches,
  /// unsafe head variables) fast-fail with kInvalidArgument; a full queue
  /// fast-fails with kResourceExhausted under kRejectNew; after Shutdown,
  /// resolves immediately with kFailedPrecondition.
  SubmitHandle Submit(QueryRequest request);

  /// Convenience: Submit + wait.
  QueryResponse Call(QueryRequest request);

  /// Cancels the request behind `ticket`. A still-queued request resolves
  /// immediately with kCancelled (and never reaches a worker); an in-flight
  /// request has its budget's cancel token tripped, so planning and
  /// execution wind down at their next poll point and the future resolves
  /// with kCancelled shortly after. Returns true if the ticket was live
  /// (queued or in flight), false if it is unknown or already resolved.
  bool Cancel(uint64_t ticket);

  /// Re-fingerprints the base schema; if it changed, advances the epoch and
  /// evicts all stale plans. Returns the current epoch. Safe to call
  /// concurrently with Submit, but the *schema mutation itself* must have
  /// happened with planning quiesced (see class comment).
  uint64_t RefreshSchema();

  /// Test/ops hook: unconditionally advances the epoch (as if the schema
  /// changed), invalidating every cached plan. Returns the new epoch.
  uint64_t BumpEpoch();

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t schema_fingerprint() const {
    return schema_fingerprint_.load(std::memory_order_acquire);
  }

  /// Lock-free stats snapshot (service counters + cache counters).
  ServiceStats SnapshotStats() const;

  /// Writes a plan-cache snapshot to ServiceOptions::snapshot_path now
  /// (atomically: temp file + fsync + rename). Returns true on success,
  /// false when persistence is disabled or the write failed (counted in
  /// snapshot_write_failures). Safe from any thread; concurrent writers
  /// serialize. Also called automatically on the snapshot interval and on
  /// Shutdown(kDrain).
  bool WriteSnapshot();

  /// Current number of queued (not yet dequeued) requests. Takes the queue
  /// lock; intended for ops probes and tests, not hot paths.
  size_t QueueDepth() const;

  const PlanCache& cache() const { return cache_; }

  /// The source-health registry, or null when failover is disabled or the
  /// service is plan-only. Exposed for tests and ops probes; the registry is
  /// thread-safe.
  const SourceHealthRegistry* health() const { return health_.get(); }

  /// Stops accepting requests and joins the workers. kDrain (default)
  /// serves everything already queued first; kAbort fails queued requests
  /// with kUnavailable and cancels in-flight ones. Idempotent and safe to
  /// call from several threads concurrently: exactly one caller joins, the
  /// others block until the join completes.
  void Shutdown(ShutdownMode mode = ShutdownMode::kDrain);

 private:
  struct Job {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    std::shared_ptr<CancelToken> cancel;
    uint64_t ticket = 0;
    int64_t enqueue_micros = 0;
    /// Absolute end-to-end deadline on the service clock; -1 = none.
    int64_t deadline_at = -1;
    /// Guards against double resolution; ~Job resolves a still-pending
    /// promise with kInternal as a last-resort backstop, so no early-return
    /// path can ever leave a caller blocked on a broken promise.
    bool resolved = false;

    Job() = default;
    Job(Job&&) = default;
    Job& operator=(Job&&) = default;
    ~Job();
  };

  /// Resolves `job`'s promise exactly once (later calls are no-ops).
  static void ResolveJob(Job& job, QueryResponse response);

  /// Boundary validation: a malformed query is a client error reported as
  /// kInvalidArgument at the edge, never an LCP_CHECK crash in the planner.
  Status ValidateRequest(const QueryRequest& request) const;

  void WorkerLoop();
  QueryResponse Serve(const Job& job, AccessSource* source);

  /// The epoch cached plans are keyed under: schema epoch in the high 32
  /// bits, source-availability epoch in the low 32 (DESIGN.md §10). A schema
  /// change or a quarantine/recovery transition each make prior entries
  /// unreachable; the combined value stays monotone, so EvictBelowEpoch
  /// semantics are preserved.
  uint64_t ServingEpoch(uint64_t schema_epoch) const;

  /// Replays due recovery probes (quarantine windows that expired on the
  /// service clock) against this worker's source and reports the outcomes
  /// back to the registry. Called at the top of Serve so the current request
  /// already plans against the post-probe availability mask.
  void RunDueProbes(AccessSource& source);

  /// One planning episode for `fingerprint`: applies the current exclusion
  /// mask, runs proof search under the request's remaining budget, and
  /// offers the plan to the cache under `serving_epoch`. When the exclusion
  /// mask is non-empty and no detour plan exists, falls back to an
  /// unrestricted search iff `allow_primary_fallback` — the resulting
  /// primary plan fails honestly with kUnavailable at execution rather than
  /// reporting a misleading kNotFound. Returns null with `response.status`
  /// set on failure.
  std::shared_ptr<const CachedPlan> PlanAndCache(
      const Job& job, const QueryFingerprint& fingerprint,
      uint64_t serving_epoch, bool allow_primary_fallback,
      QueryResponse& response);

  /// PlanAndCache behind the single-flight coalescer (DESIGN.md §12): joins
  /// or leads the coalition for (fingerprint, serving_epoch). Leaders search
  /// and publish; followers wait, detaching on their own cancel/deadline and
  /// taking over (promotion) when the leader abandons. `serving_epoch` is
  /// a reference because an epoch bump mid-flight re-resolves it. Falls
  /// through to plain PlanAndCache when coalescing is off or the request
  /// skips the cache.
  std::shared_ptr<const CachedPlan> PlanCoalesced(
      const Job& job, const QueryFingerprint& fingerprint,
      uint64_t& serving_epoch, QueryResponse& response);

  /// Loads the snapshot at construction (counters record the outcome; any
  /// corruption degrades to a cold start).
  void LoadSnapshotAtStartup();

  /// Piggybacked on request completion: writes a snapshot when the interval
  /// has elapsed. Exactly one worker wins the due-time CAS; the rest return
  /// immediately.
  void MaybeWriteSnapshot();

  const AccessibleSchema* accessible_;
  const CostFunction* cost_;
  SourceFactory source_factory_;
  ServiceOptions options_;
  Clock* clock_;
  ProofSearch search_;
  PlanCache cache_;
  /// Null when failover is disabled or no source factory was given (plan-only
  /// services have no executor feedback to learn from).
  std::unique_ptr<SourceHealthRegistry> health_;
  RequestCoalescer coalescer_;

  std::atomic<uint64_t> epoch_;
  std::atomic<uint64_t> schema_fingerprint_;
  /// Serializes RefreshSchema/BumpEpoch (epoch reads stay lock-free).
  std::mutex epoch_mutex_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  /// Cancel tokens of dequeued-but-unfinished requests, by ticket; guarded
  /// by queue_mutex_. Cancel and abort shutdown trip tokens through here.
  std::unordered_map<uint64_t, std::shared_ptr<CancelToken>> inflight_;
  uint64_t next_ticket_ = 1;
  bool shutting_down_ = false;
  /// Serializes the join in Shutdown: exactly one caller joins the workers;
  /// concurrent callers block here until it is done (fixes the historic
  /// double-join race).
  std::mutex join_mutex_;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> searches_{0};
  std::atomic<uint64_t> executions_{0};
  std::atomic<uint64_t> access_batches_{0};
  std::atomic<uint64_t> access_bindings_{0};
  std::atomic<uint64_t> exec_morsels_{0};
  std::atomic<uint64_t> exec_build_partitions_{0};
  std::atomic<uint64_t> epoch_bumps_{0};
  std::atomic<uint64_t> plans_optimized_{0};
  std::atomic<uint64_t> optimizer_commands_removed_{0};
  std::atomic<uint64_t> optimizer_access_commands_removed_{0};
  std::atomic<uint64_t> optimizer_cost_saved_milli_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> degraded_responses_{0};
  std::atomic<uint64_t> queue_depth_high_water_{0};
  std::atomic<int64_t> queue_micros_{0};
  std::atomic<int64_t> plan_micros_{0};
  std::atomic<int64_t> exec_micros_{0};

  std::atomic<uint64_t> snapshots_written_{0};
  std::atomic<uint64_t> snapshot_write_failures_{0};
  std::atomic<uint64_t> snapshot_entries_persisted_{0};
  std::atomic<uint64_t> snapshots_loaded_{0};
  std::atomic<uint64_t> snapshots_rejected_{0};
  std::atomic<uint64_t> snapshot_entries_loaded_{0};
  std::atomic<uint64_t> snapshot_entries_rejected_corrupt_{0};
  std::atomic<uint64_t> snapshot_entries_rejected_stale_{0};
  std::atomic<uint64_t> coalesced_leaders_{0};
  std::atomic<uint64_t> coalesced_followers_{0};
  std::atomic<uint64_t> coalition_handoffs_{0};
  /// Next interval snapshot's due time on the service clock; workers race on
  /// a CAS so exactly one pays the write.
  std::atomic<int64_t> next_snapshot_at_{-1};
  /// Serializes snapshot writes (interval + explicit + shutdown).
  std::mutex snapshot_mutex_;
  /// Set once the drain-shutdown snapshot has been written (guarded by
  /// join_mutex_, like the join it rides on).
  bool final_snapshot_written_ = false;
};

}  // namespace lcp

#endif  // LCP_SERVICE_SERVICE_H_
