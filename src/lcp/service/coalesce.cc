#include "lcp/service/coalesce.h"

#include <chrono>
#include <condition_variable>
#include <utility>
#include <vector>

namespace lcp {

/// Coalition lifecycle. All transitions happen under `mutex`:
///
///   kPlanning ──PublishPlan──────▶ kResolvedPlan    (followers: kPlan)
///      │     ──PublishStatus────▶ kResolvedStatus  (followers: kStatus)
///      │     ──Abandon, waiters──▶ kLeaderless ──first waking follower──▶
///      │                                            back to kPlanning
///      │                                            (that follower: kPromoted)
///      └──Abandon, no waiters / InvalidateBelow──▶ kInvalidated
///
/// Followers poll `should_detach` between condition-variable waits, so a
/// follower's own cancel or deadline exits only that follower.
struct RequestCoalescer::Flight {
  enum class State : uint8_t {
    kPlanning,
    kLeaderless,
    kResolvedPlan,
    kResolvedStatus,
    kInvalidated,
  };

  std::string key;
  /// Immutable after construction; readable without `mutex`.
  uint64_t epoch = 0;

  std::mutex mutex;
  std::condition_variable cv;
  State state = State::kPlanning;
  std::shared_ptr<const CachedPlan> plan;
  Status status;
  size_t waiters = 0;
};

namespace {

/// How long a follower sleeps between detach-condition polls when no state
/// transition wakes it. Transitions notify the condition variable, so this
/// bounds only the latency of noticing the follower's *own* cancel/deadline.
constexpr std::chrono::milliseconds kDetachPollInterval{2};

}  // namespace

RequestCoalescer::Ticket RequestCoalescer::JoinOrLead(const std::string& key,
                                                      uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = flights_.find(key);
  if (it != flights_.end()) {
    std::shared_ptr<Flight> flight = it->second;
    if (flight->epoch == epoch) {
      std::lock_guard<std::mutex> flight_lock(flight->mutex);
      ++flight->waiters;
      return Ticket{/*leader=*/false, std::move(flight)};
    }
    // The resident coalition is planning for a dead epoch; its plan can no
    // longer serve anyone. Wake its followers (they re-plan fresh) and take
    // over the slot.
    {
      std::lock_guard<std::mutex> flight_lock(flight->mutex);
      flight->state = Flight::State::kInvalidated;
    }
    flight->cv.notify_all();
    flights_.erase(it);
  }
  auto flight = std::make_shared<Flight>();
  flight->key = key;
  flight->epoch = epoch;
  flights_.emplace(key, flight);
  return Ticket{/*leader=*/true, std::move(flight)};
}

void RequestCoalescer::PublishPlan(const std::shared_ptr<Flight>& flight,
                                   std::shared_ptr<const CachedPlan> plan) {
  // Drop the table entry first so a racing JoinOrLead either caught this
  // flight (and gets the plan below) or starts fresh — and a fresh leader's
  // first move is a cache re-check, so the plan is still shared.
  Erase(flight);
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    if (flight->state == Flight::State::kInvalidated) return;
    flight->plan = std::move(plan);
    flight->state = Flight::State::kResolvedPlan;
  }
  flight->cv.notify_all();
}

void RequestCoalescer::PublishStatus(const std::shared_ptr<Flight>& flight,
                                     Status status) {
  Erase(flight);
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    if (flight->state == Flight::State::kInvalidated) return;
    flight->status = std::move(status);
    flight->state = Flight::State::kResolvedStatus;
  }
  flight->cv.notify_all();
}

void RequestCoalescer::Abandon(const std::shared_ptr<Flight>& flight) {
  bool dissolve = false;
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    if (flight->state == Flight::State::kInvalidated) {
      dissolve = true;
    } else if (flight->waiters == 0) {
      // Nobody to promote; the coalition dissolves so the next request for
      // this key leads its own flight.
      flight->state = Flight::State::kInvalidated;
      dissolve = true;
    } else {
      flight->state = Flight::State::kLeaderless;
    }
  }
  flight->cv.notify_all();
  if (dissolve) Erase(flight);
}

RequestCoalescer::WaitResult RequestCoalescer::Wait(
    const std::shared_ptr<Flight>& flight,
    const std::function<bool()>& should_detach) {
  std::unique_lock<std::mutex> lock(flight->mutex);
  for (;;) {
    switch (flight->state) {
      case Flight::State::kResolvedPlan:
        --flight->waiters;
        return WaitResult{Outcome::kPlan, flight->plan, Status()};
      case Flight::State::kResolvedStatus:
        --flight->waiters;
        return WaitResult{Outcome::kStatus, nullptr, flight->status};
      case Flight::State::kInvalidated:
        --flight->waiters;
        return WaitResult{Outcome::kInvalidated, nullptr, Status()};
      case Flight::State::kLeaderless:
        // First to wake takes over the leader obligations on this same
        // flight (even if its own cancel fired — the promoted caller
        // re-checks and Abandons again, handing off to the next follower).
        flight->state = Flight::State::kPlanning;
        --flight->waiters;
        return WaitResult{Outcome::kPromoted, nullptr, Status()};
      case Flight::State::kPlanning:
        break;
    }
    if (should_detach && should_detach()) {
      --flight->waiters;
      return WaitResult{Outcome::kDetached, nullptr, Status()};
    }
    flight->cv.wait_for(lock, kDetachPollInterval);
  }
}

void RequestCoalescer::InvalidateBelow(uint64_t epoch) {
  std::vector<std::shared_ptr<Flight>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = flights_.begin(); it != flights_.end();) {
      if (it->second->epoch < epoch) {
        doomed.push_back(it->second);
        it = flights_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::shared_ptr<Flight>& flight : doomed) {
    {
      std::lock_guard<std::mutex> lock(flight->mutex);
      flight->state = Flight::State::kInvalidated;
    }
    flight->cv.notify_all();
  }
}

size_t RequestCoalescer::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flights_.size();
}

size_t RequestCoalescer::waiting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& entry : flights_) {
    std::lock_guard<std::mutex> flight_lock(entry.second->mutex);
    total += entry.second->waiters;
  }
  return total;
}

void RequestCoalescer::Erase(const std::shared_ptr<Flight>& flight) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = flights_.find(flight->key);
  if (it != flights_.end() && it->second == flight) flights_.erase(it);
}

}  // namespace lcp
