#ifndef LCP_SERVICE_PLAN_CACHE_H_
#define LCP_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "lcp/plan/plan.h"
#include "lcp/service/canonical.h"

namespace lcp {

/// An immutable cached planning result. Handed out as
/// shared_ptr<const CachedPlan> so a reader can keep executing a plan that
/// was concurrently evicted or superseded.
struct CachedPlan {
  QueryFingerprint fingerprint;
  /// The epoch the plan was admitted under. The service keys entries by a
  /// *combined* epoch — schema epoch in the high bits, source-availability
  /// epoch in the low bits (DESIGN.md §10) — so either a schema change or a
  /// quarantine/recovery transition makes the entry unreachable. Raw-epoch
  /// callers (tests, direct users) are unaffected: the cache only compares
  /// epochs for equality and order.
  uint64_t epoch = 0;
  Plan plan;
  double cost = 0;
  /// True when the plan was produced with a non-empty excluded-method mask —
  /// a failover detour around quarantined sources. Responses served from it
  /// are marked degraded: a cheaper primary plan may exist once the outage
  /// heals (the epoch bump on recovery makes this entry unreachable then).
  bool detour = false;
  /// Approximate resident/persisted footprint of this entry: the binary plan
  /// encoding plus the canonical key plus fixed framing overhead, computed
  /// once at insertion. Powers PlanCacheStats::approx_bytes, which sizes
  /// snapshots before they are written.
  size_t approx_bytes = 0;
};

/// Point-in-time counter snapshot. All counters are cumulative since
/// construction and updated with relaxed atomics (the snapshot is lock-free
/// and monotone, not cross-counter consistent).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;             ///< All lookups that returned nullptr.
  uint64_t stale_misses = 0;       ///< Misses that dropped an old-epoch entry.
  uint64_t inserts = 0;            ///< New entries admitted.
  uint64_t replacements = 0;       ///< Inserts superseding a resident entry.
  uint64_t admission_rejects = 0;  ///< Kept a cheaper same-epoch incumbent.
  uint64_t evictions = 0;          ///< LRU capacity evictions.
  uint64_t invalidations = 0;      ///< Entries dropped by EvictBelowEpoch.
  /// Occupancy gauges (unlike the counters above, these take each shard's
  /// mutex briefly — stats() is an ops/test probe, not a hot path). Sizing a
  /// snapshot is the motivating consumer: `approx_bytes` is the sum of the
  /// per-entry serialized footprints, so it predicts the snapshot file size.
  uint64_t entries = 0;               ///< Total resident entries.
  uint64_t approx_bytes = 0;          ///< Sum of CachedPlan::approx_bytes.
  std::vector<uint64_t> shard_entries;  ///< Resident entries per shard.
};

/// A sharded, epoch-aware LRU cache from canonical query fingerprints to
/// plans — the serving layer's amortization of proof search (the paper's
/// plans depend only on the query shape and the schema, never on the data).
///
/// Concurrency: lookups and inserts touch exactly one shard, guarded by that
/// shard's mutex; distinct fingerprints spread across shards by hash, so N
/// worker threads contend only when they race on α-equivalent queries.
/// Counters are lock-free atomics.
///
/// Epochs: each resident entry records the schema epoch it was planned
/// under. A lookup under a different epoch is a miss that also drops the
/// stale entry — constraint or access-method changes invalidate by
/// construction, with no stop-the-world flush. EvictBelowEpoch additionally
/// reclaims all stale entries eagerly.
///
/// Admission is cost-aware: inserting a plan for a key that already holds a
/// *cheaper* same-epoch plan is rejected (the incumbent is refreshed
/// instead), so a budget-truncated anytime search can never clobber a
/// better plan found by an earlier, luckier request.
class PlanCache {
 public:
  struct Options {
    /// Rounded up to a power of two; at least 1.
    size_t num_shards = 8;
    /// Max entries per shard; at least 1.
    size_t capacity_per_shard = 128;
  };

  explicit PlanCache(const Options& options);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `fingerprint` at `epoch` and promotes it to
  /// most-recently-used, or nullptr on miss (including an epoch mismatch,
  /// which drops the stale entry). Pass `count_stats = false` for internal
  /// re-checks (e.g. a coalition leader closing the miss-to-join race) so a
  /// single request never counts two lookups against the hit rate.
  std::shared_ptr<const CachedPlan> Lookup(const QueryFingerprint& fingerprint,
                                           uint64_t epoch,
                                           bool count_stats = true);

  /// Inserts `plan` under (fingerprint, epoch), evicting the shard's LRU
  /// entry if at capacity. Returns the resident entry for the key after the
  /// call: the new plan, or the kept cheaper same-epoch incumbent. `detour`
  /// marks a failover plan (see CachedPlan::detour).
  std::shared_ptr<const CachedPlan> Insert(const QueryFingerprint& fingerprint,
                                           uint64_t epoch, Plan plan,
                                           double cost, bool detour = false);

  /// Drops every entry whose epoch is strictly below `epoch`. O(size); call
  /// after a schema change if stale entries should release memory eagerly
  /// rather than lazily on their next lookup.
  void EvictBelowEpoch(uint64_t epoch);

  /// Total resident entries (sums shard sizes; takes each shard mutex).
  size_t size() const;

  /// Counter snapshot. Counters are read lock-free; the occupancy gauges
  /// (entries / approx_bytes / shard_entries) take each shard's mutex
  /// briefly, so this is an ops/test probe rather than a hot-path call.
  PlanCacheStats stats() const;

  /// Copies every resident entry's shared_ptr, all shards and all epochs,
  /// in shard order (MRU first within a shard). The snapshot writer's
  /// enumeration point; callers filter by epoch and detour themselves. Each
  /// shard is locked only while it is copied, so entries inserted or evicted
  /// concurrently may or may not appear — fine for a best-effort snapshot.
  std::vector<std::shared_ptr<const CachedPlan>> Entries() const;

 private:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
  };
  /// Keyed by the full canonical key (hash pre-checked via the map's hasher,
  /// string equality guards against 64-bit collisions).
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    /// Running sum of the resident entries' CachedPlan::approx_bytes,
    /// maintained at insert/replace/evict under `mutex`.
    size_t approx_bytes = 0;
  };

  Shard& ShardFor(const QueryFingerprint& fingerprint) {
    return *shards_[fingerprint.hash & shard_mask_];
  }

  size_t shard_mask_ = 0;
  size_t capacity_per_shard_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stale_misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> replacements_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace lcp

#endif  // LCP_SERVICE_PLAN_CACHE_H_
