#ifndef LCP_SERVICE_COALESCE_H_
#define LCP_SERVICE_COALESCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "lcp/base/status.h"
#include "lcp/service/plan_cache.h"

namespace lcp {

/// Single-flight coalescing of concurrent proof searches (DESIGN.md §12).
///
/// When N requests for the same canonical fingerprint miss the cache at the
/// same time, only the first — the coalition *leader* — runs the proof
/// search; the other N-1 become *followers* and block until the leader
/// publishes the plan (or a definite failure). Each follower then executes
/// its own plan instance under its own deadline and cancel token — only the
/// planning work is shared, never the response.
///
/// Coalitions are keyed by (canonical key, serving epoch): an epoch bump
/// mid-flight invalidates the coalition, because the plan being searched for
/// was requested under a schema/availability state that no longer serves.
///
/// Leader failure semantics distinguish *leader-specific* aborts from
/// *definite* outcomes:
///   - the leader's own cancel or deadline says nothing about the query, so
///     the leader Abandon()s and the first waking follower is promoted to
///     run its own search (kPromoted);
///   - a definite planning failure (e.g. no access path exists) is published
///     and propagated to every follower (kStatus) — N requests for an
///     unplannable query still cost one search.
/// A follower's cancel or deadline detaches only that follower (kDetached);
/// the coalition survives for the rest.
///
/// The coalescer owns no threads: leaders and followers run on the service's
/// workers, and every transition happens under the flight's mutex.
class RequestCoalescer {
 public:
  /// Opaque shared state of one in-flight coalition.
  struct Flight;

  struct Ticket {
    /// True: the caller must run the search and then call exactly one of
    /// PublishPlan / PublishStatus / Abandon. False: the caller must call
    /// Wait.
    bool leader = false;
    std::shared_ptr<Flight> flight;
  };

  enum class Outcome : uint8_t {
    kPlan,         ///< Leader published a plan; execute it.
    kStatus,       ///< Leader published a definite failure; propagate it.
    kPromoted,     ///< Leader abandoned; this follower is the new leader.
    kDetached,     ///< This follower's own cancel/deadline fired.
    kInvalidated,  ///< Serving epoch moved mid-flight; re-plan fresh.
  };

  struct WaitResult {
    Outcome outcome = Outcome::kInvalidated;
    std::shared_ptr<const CachedPlan> plan;  ///< Set iff kPlan.
    Status status;                           ///< Set iff kStatus.
  };

  RequestCoalescer() = default;
  RequestCoalescer(const RequestCoalescer&) = delete;
  RequestCoalescer& operator=(const RequestCoalescer&) = delete;

  /// Joins the in-flight coalition for (key, epoch), creating it (and making
  /// the caller its leader) if none exists. An existing coalition for the
  /// key at a *different* epoch is invalidated and replaced.
  Ticket JoinOrLead(const std::string& key, uint64_t epoch);

  /// Leader: hands `plan` to every waiting follower and dissolves the
  /// coalition. No-op if the coalition was already invalidated.
  void PublishPlan(const std::shared_ptr<Flight>& flight,
                   std::shared_ptr<const CachedPlan> plan);

  /// Leader: propagates a definite failure to every follower. Only use for
  /// outcomes that are properties of the query (it cannot be planned), not
  /// of this request (its deadline); for the latter use Abandon.
  void PublishStatus(const std::shared_ptr<Flight>& flight, Status status);

  /// Leader: steps down without a result (cancelled / out of budget). The
  /// first follower to wake is promoted (its Wait returns kPromoted and it
  /// takes over the leader obligations on the same flight); with no
  /// followers the coalition dissolves.
  void Abandon(const std::shared_ptr<Flight>& flight);

  /// Follower: blocks until the leader resolves the flight, this follower is
  /// promoted, the epoch is invalidated, or `should_detach` returns true
  /// (polled; covers the follower's own cancel token and deadline).
  WaitResult Wait(const std::shared_ptr<Flight>& flight,
                  const std::function<bool()>& should_detach);

  /// Invalidates every coalition whose epoch is below `epoch`: waiting
  /// followers wake with kInvalidated and the leader's eventual publish
  /// becomes a no-op. Called on schema refresh and availability bumps.
  void InvalidateBelow(uint64_t epoch);

  /// In-flight coalitions (test/ops probe).
  size_t inflight() const;

  /// Followers currently parked across all coalitions (test/ops probe;
  /// takes the table and per-flight locks).
  size_t waiting() const;

 private:
  /// Drops `flight` from the table if it is still the resident coalition for
  /// its key (a replacement may already have taken the slot).
  void Erase(const std::shared_ptr<Flight>& flight);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace lcp

#endif  // LCP_SERVICE_COALESCE_H_
