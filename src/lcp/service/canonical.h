#ifndef LCP_SERVICE_CANONICAL_H_
#define LCP_SERVICE_CANONICAL_H_

#include <cstdint>
#include <string>

#include "lcp/logic/conjunctive_query.h"

namespace lcp {

/// A variable-renaming-invariant fingerprint of a conjunctive query. Two
/// queries that differ only by a bijective renaming of their variables
/// and/or a permutation of their atoms (with free variables matched by
/// answer *position*, so the output columns line up) canonicalize to the
/// same fingerprint and therefore share one plan-cache entry: a plan's
/// access/join structure depends only on this α-equivalence class.
///
/// `key` is the full canonical form — it identifies the class exactly, so
/// equal keys mean isomorphic queries (no hash-collision false sharing).
/// `hash` is a 64-bit digest of `key` used for shard selection and fast
/// inequality.
struct QueryFingerprint {
  uint64_t hash = 0;
  std::string key;

  friend bool operator==(const QueryFingerprint& a, const QueryFingerprint& b) {
    return a.hash == b.hash && a.key == b.key;
  }
  friend bool operator!=(const QueryFingerprint& a, const QueryFingerprint& b) {
    return !(a == b);
  }
};

struct QueryFingerprintHash {
  size_t operator()(const QueryFingerprint& fp) const {
    return static_cast<size_t>(fp.hash);
  }
};

/// Computes the canonical fingerprint of `query` (§"Canonicalization" of
/// DESIGN.md). The algorithm:
///
///   1. Free variables are numbered by answer position (F0, F1, ...) — they
///      are distinguished constants of the canonical form.
///   2. Exact duplicate atoms are dropped (conjunction is idempotent).
///   3. The atom order and the numbering E0, E1, ... of the existential
///      variables are chosen together by a deterministic backtracking
///      search: atoms are emitted one at a time, each candidate rendered
///      under the numbering-so-far (new existentials numbered tentatively
///      in order of appearance), only candidates with the lexicographically
///      minimal rendering are pursued, and ties — genuinely isomorphic
///      prefixes — branch. The smallest complete rendering wins.
///
/// The search is exact (true canonical labeling) for the query sizes this
/// library plans — worst-case exponential only on highly symmetric queries,
/// for which a branch cap degrades gracefully to a deterministic greedy
/// choice: the result is then still a valid fingerprint of the query (equal
/// keys still imply isomorphism); only some cache sharing may be missed.
QueryFingerprint CanonicalizeQuery(const ConjunctiveQuery& query);

/// The 64-bit digest CanonicalizeQuery stores in QueryFingerprint::hash,
/// computed from the canonical key alone. Exposed so a persisted cache entry
/// (which stores only the key) can be rehydrated into a fingerprint whose
/// hash is guaranteed consistent with live canonicalization — the snapshot
/// loader must never trust a stored hash it can recompute.
uint64_t FingerprintKeyHash(const std::string& key);

}  // namespace lcp

#endif  // LCP_SERVICE_CANONICAL_H_
