#include "lcp/logic/atom.h"

#include <sstream>
#include <unordered_set>

namespace lcp {

std::string Atom::ToString() const {
  std::ostringstream os;
  os << "R" << relation << "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) os << ", ";
    os << terms[i];
  }
  os << ")";
  return os.str();
}

std::vector<std::string> CollectVariables(const std::vector<Atom>& atoms) {
  std::vector<std::string> vars;
  std::unordered_set<std::string> seen;
  for (const Atom& atom : atoms) {
    for (const Term& term : atom.terms) {
      if (term.is_variable() && seen.insert(term.var()).second) {
        vars.push_back(term.var());
      }
    }
  }
  return vars;
}

}  // namespace lcp
