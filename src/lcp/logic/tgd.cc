#include "lcp/logic/tgd.h"

#include <sstream>
#include <unordered_set>

#include "lcp/base/strings.h"

namespace lcp {

std::vector<std::string> Tgd::FrontierVariables() const {
  std::vector<std::string> body_vars = CollectVariables(body);
  std::unordered_set<std::string> head_vars;
  for (const std::string& v : CollectVariables(head)) head_vars.insert(v);
  std::vector<std::string> frontier;
  for (const std::string& v : body_vars) {
    if (head_vars.count(v) > 0) frontier.push_back(v);
  }
  return frontier;
}

std::vector<std::string> Tgd::ExistentialVariables() const {
  std::unordered_set<std::string> body_vars;
  for (const std::string& v : CollectVariables(body)) body_vars.insert(v);
  std::vector<std::string> existential;
  for (const std::string& v : CollectVariables(head)) {
    if (body_vars.count(v) == 0) existential.push_back(v);
  }
  return existential;
}

bool Tgd::IsGuarded() const {
  std::vector<std::string> body_vars = CollectVariables(body);
  for (const Atom& atom : body) {
    std::unordered_set<std::string> atom_vars;
    for (const Term& t : atom.terms) {
      if (t.is_variable()) atom_vars.insert(t.var());
    }
    bool guards_all = true;
    for (const std::string& v : body_vars) {
      if (atom_vars.count(v) == 0) {
        guards_all = false;
        break;
      }
    }
    if (guards_all) return true;
  }
  return body.empty();
}

namespace {
bool IsPlainAtom(const Atom& atom) {
  std::unordered_set<std::string> seen;
  for (const Term& t : atom.terms) {
    if (t.is_constant()) return false;
    if (!seen.insert(t.var()).second) return false;
  }
  return true;
}
}  // namespace

bool Tgd::IsInclusionDependency() const {
  return body.size() == 1 && head.size() == 1 && IsPlainAtom(body[0]) &&
         IsPlainAtom(head[0]);
}

Status Tgd::Validate() const {
  if (body.empty()) {
    return InvalidArgumentError(StrCat("TGD ", name, " has empty body"));
  }
  if (head.empty()) {
    return InvalidArgumentError(StrCat("TGD ", name, " has empty head"));
  }
  return Status::Ok();
}

std::string Tgd::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) os << " & ";
    os << body[i].ToString();
  }
  os << " -> ";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) os << " & ";
    os << head[i].ToString();
  }
  return os.str();
}

}  // namespace lcp
