#include "lcp/logic/containment.h"

#include "lcp/base/check.h"
#include "lcp/chase/engine.h"
#include "lcp/chase/matcher.h"

namespace lcp {

bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  LCP_CHECK_EQ(q1.free_variables.size(), q2.free_variables.size())
      << "containment requires equal arity";
  TermArena arena;
  CanonicalDatabase canonical = BuildCanonicalDatabase(q1, arena);
  VariableTable vars;
  std::vector<PatternAtom> pattern = CompileAtoms(q2.atoms, vars, arena);
  std::vector<ChaseTermId> assignment(vars.size(), kUnboundTerm);
  for (size_t i = 0; i < q2.free_variables.size(); ++i) {
    int idx = vars.IndexOf(q2.free_variables[i]);
    ChaseTermId target = canonical.var_to_term.at(q1.free_variables[i]);
    if (assignment[idx] != kUnboundTerm && assignment[idx] != target) {
      return false;  // q2 repeats a free variable that q1 does not.
    }
    assignment[idx] = target;
  }
  return HasHomomorphism(pattern, canonical.config, std::move(assignment));
}

bool AreEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return IsContainedIn(q1, q2) && IsContainedIn(q2, q1);
}

}  // namespace lcp
