#ifndef LCP_LOGIC_IDS_H_
#define LCP_LOGIC_IDS_H_

#include <cstdint>

namespace lcp {

/// Dense identifier of a relation within a Schema.
using RelationId = int32_t;
/// Dense identifier of an access method within a Schema.
using AccessMethodId = int32_t;

inline constexpr RelationId kInvalidRelation = -1;
inline constexpr AccessMethodId kInvalidAccessMethod = -1;

}  // namespace lcp

#endif  // LCP_LOGIC_IDS_H_
