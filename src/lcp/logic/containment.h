#ifndef LCP_LOGIC_CONTAINMENT_H_
#define LCP_LOGIC_CONTAINMENT_H_

#include "lcp/logic/conjunctive_query.h"

namespace lcp {

/// Classical CQ containment (Chandra–Merlin): q1 ⊆ q2 iff there is a
/// homomorphism from q2 into the canonical database of q1 mapping q2's
/// free variables to q1's (position-wise). Requires both queries to have
/// the same number of free variables.
bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// q1 ≡ q2 (containment both ways).
bool AreEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

}  // namespace lcp

#endif  // LCP_LOGIC_CONTAINMENT_H_
