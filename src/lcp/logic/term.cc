#include "lcp/logic/term.h"

namespace lcp {

std::string Term::ToString() const {
  if (is_variable()) return var_;
  return value_.ToString();
}

std::ostream& operator<<(std::ostream& os, const Term& term) {
  return os << term.ToString();
}

}  // namespace lcp
