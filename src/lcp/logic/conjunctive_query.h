#ifndef LCP_LOGIC_CONJUNCTIVE_QUERY_H_
#define LCP_LOGIC_CONJUNCTIVE_QUERY_H_

#include <string>
#include <vector>

#include "lcp/base/status.h"
#include "lcp/logic/atom.h"

namespace lcp {

/// A conjunctive query Q(x⃗) = ∃y⃗ (A1 ∧ ... ∧ An). The variables listed in
/// `free_variables` are the answer variables, in output order; all other
/// variables of the atoms are existentially quantified.
struct ConjunctiveQuery {
  std::string name = "Q";
  std::vector<std::string> free_variables;
  std::vector<Atom> atoms;

  bool is_boolean() const { return free_variables.empty(); }

  /// Returns the distinct variables of the query (free first, then
  /// existential in order of first occurrence).
  std::vector<std::string> AllVariables() const;

  /// Checks safety: every free variable occurs in some atom, atoms are
  /// non-empty, and no free variable is repeated in the answer list.
  Status Validate() const;
};

}  // namespace lcp

#endif  // LCP_LOGIC_CONJUNCTIVE_QUERY_H_
