#include "lcp/logic/conjunctive_query.h"

#include <algorithm>
#include <unordered_set>

#include "lcp/base/strings.h"

namespace lcp {

std::vector<std::string> ConjunctiveQuery::AllVariables() const {
  std::vector<std::string> vars = free_variables;
  std::unordered_set<std::string> seen(free_variables.begin(),
                                       free_variables.end());
  for (const std::string& v : CollectVariables(atoms)) {
    if (seen.insert(v).second) vars.push_back(v);
  }
  return vars;
}

Status ConjunctiveQuery::Validate() const {
  if (atoms.empty()) {
    return InvalidArgumentError(StrCat("query ", name, " has no atoms"));
  }
  std::vector<std::string> body_vars = CollectVariables(atoms);
  std::unordered_set<std::string> body_set(body_vars.begin(), body_vars.end());
  std::unordered_set<std::string> seen_free;
  for (const std::string& v : free_variables) {
    if (!seen_free.insert(v).second) {
      return InvalidArgumentError(
          StrCat("query ", name, ": repeated free variable ", v));
    }
    if (body_set.find(v) == body_set.end()) {
      return InvalidArgumentError(
          StrCat("query ", name, ": free variable ", v,
                 " does not occur in any atom (unsafe)"));
    }
  }
  return Status::Ok();
}

}  // namespace lcp
