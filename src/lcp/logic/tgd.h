#ifndef LCP_LOGIC_TGD_H_
#define LCP_LOGIC_TGD_H_

#include <string>
#include <vector>

#include "lcp/base/status.h"
#include "lcp/logic/atom.h"

namespace lcp {

/// A tuple-generating dependency ∀x⃗ φ(x⃗) → ∃y⃗ ρ(x⃗, y⃗), where φ (the
/// body) and ρ (the head) are conjunctions of relational atoms, possibly
/// with constants (§2 of the paper).
struct Tgd {
  std::string name;
  std::vector<Atom> body;
  std::vector<Atom> head;

  /// Variables shared between body and head (the frontier x⃗).
  std::vector<std::string> FrontierVariables() const;
  /// Head variables not occurring in the body (the existential y⃗).
  std::vector<std::string> ExistentialVariables() const;

  /// A TGD is guarded if some body atom contains all body variables.
  bool IsGuarded() const;

  /// An inclusion dependency has a single body atom and a single head atom,
  /// no constants, and no repeated variables within either atom.
  bool IsInclusionDependency() const;

  /// Checks well-formedness: non-empty body and head.
  Status Validate() const;

  std::string ToString() const;
};

}  // namespace lcp

#endif  // LCP_LOGIC_TGD_H_
