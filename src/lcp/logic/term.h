#ifndef LCP_LOGIC_TERM_H_
#define LCP_LOGIC_TERM_H_

#include <ostream>
#include <string>
#include <utility>

#include "lcp/logic/value.h"

namespace lcp {

/// A term of a query or dependency: a named variable or a constant value.
class Term {
 public:
  enum class Kind { kVariable, kConstant };

  static Term Var(std::string name) {
    return Term(Kind::kVariable, std::move(name), Value());
  }
  static Term Const(Value value) {
    return Term(Kind::kConstant, "", std::move(value));
  }
  static Term Const(int64_t v) { return Const(Value::Int(v)); }
  static Term Const(const char* v) { return Const(Value::Str(v)); }

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }

  /// Variable name; only meaningful when is_variable().
  const std::string& var() const { return var_; }
  /// Constant value; only meaningful when is_constant().
  const Value& constant() const { return value_; }

  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.var_ == b.var_ && a.value_ == b.value_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

 private:
  Term(Kind kind, std::string var, Value value)
      : kind_(kind), var_(std::move(var)), value_(std::move(value)) {}

  Kind kind_;
  std::string var_;
  Value value_;
};

std::ostream& operator<<(std::ostream& os, const Term& term);

}  // namespace lcp

#endif  // LCP_LOGIC_TERM_H_
