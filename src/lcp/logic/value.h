#ifndef LCP_LOGIC_VALUE_H_
#define LCP_LOGIC_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace lcp {

/// A database value: either a 64-bit integer or a string. Values are used
/// both as schema constants (the fixed test values a querier may use, §2 of
/// the paper) and as the data stored in instances.
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Renders the value for debugging: integers bare, strings quoted.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.rep_ < b.rep_;
  }

  size_t Hash() const;

 private:
  std::variant<int64_t, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace lcp

#endif  // LCP_LOGIC_VALUE_H_
