#include "lcp/logic/value.h"

#include <sstream>

namespace lcp {

std::string Value::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

size_t Value::Hash() const {
  if (is_int()) {
    return std::hash<int64_t>()(AsInt()) * 0x9e3779b97f4a7c15ULL;
  }
  return std::hash<std::string>()(AsString());
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  if (value.is_int()) {
    os << value.AsInt();
  } else {
    os << '"' << value.AsString() << '"';
  }
  return os;
}

}  // namespace lcp
