#ifndef LCP_LOGIC_ATOM_H_
#define LCP_LOGIC_ATOM_H_

#include <string>
#include <vector>

#include "lcp/logic/ids.h"
#include "lcp/logic/term.h"

namespace lcp {

/// A relational atom R(t1, ..., tn), where each ti is a variable or a
/// constant. The relation is referenced by id; resolving names requires the
/// owning Schema.
struct Atom {
  RelationId relation = kInvalidRelation;
  std::vector<Term> terms;

  Atom() = default;
  Atom(RelationId rel, std::vector<Term> args)
      : relation(rel), terms(std::move(args)) {}

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation == b.relation && a.terms == b.terms;
  }

  /// Renders as "R3(x, "smith")" using a relation-name callback; see
  /// Schema::AtomToString for the named form.
  std::string ToString() const;
};

/// Collects the distinct variable names of `atoms` in order of first
/// occurrence.
std::vector<std::string> CollectVariables(const std::vector<Atom>& atoms);

}  // namespace lcp

#endif  // LCP_LOGIC_ATOM_H_
