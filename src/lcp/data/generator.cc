#include "lcp/data/generator.h"

#include <random>
#include <string>
#include <unordered_map>

#include "lcp/base/strings.h"
#include "lcp/data/query_eval.h"

namespace lcp {

namespace {

/// Monotonically growing supply of invented values, disjoint from the
/// generator's base domain.
class ValueInventor {
 public:
  explicit ValueInventor(int64_t start) : next_(start) {}
  Value Fresh() { return Value::Int(next_++); }

 private:
  int64_t next_;
};

/// One repair pass: fires every currently-violated trigger once. Returns the
/// number of facts added (0 means the instance satisfies all constraints).
int RepairPass(Instance& instance, ValueInventor& inventor, int budget) {
  int added = 0;
  for (const Tgd& tgd : instance.schema().constraints()) {
    // Collect violating frontier bindings first: mutating the instance while
    // FindMatches iterates would invalidate the scan.
    std::vector<Binding> violations;
    FindMatches(tgd.body, instance, Binding{}, [&](const Binding& binding) {
      Binding frontier;
      for (const std::string& v : tgd.FrontierVariables()) {
        frontier.emplace(v, binding.at(v));
      }
      bool satisfied = false;
      FindMatches(tgd.head, instance, frontier, [&](const Binding&) {
        satisfied = true;
        return false;
      });
      if (!satisfied) violations.push_back(std::move(frontier));
      return true;
    });
    for (Binding& frontier : violations) {
      if (added >= budget) return added;
      // Re-check: an earlier firing in this pass may have satisfied it.
      bool satisfied = false;
      FindMatches(tgd.head, instance, frontier, [&](const Binding&) {
        satisfied = true;
        return false;
      });
      if (satisfied) continue;
      for (const std::string& v : tgd.ExistentialVariables()) {
        frontier.emplace(v, inventor.Fresh());
      }
      for (const Atom& atom : tgd.head) {
        Tuple tuple;
        tuple.reserve(atom.terms.size());
        for (const Term& t : atom.terms) {
          tuple.push_back(t.is_constant() ? t.constant()
                                          : frontier.at(t.var()));
        }
        if (instance.AddFact(atom.relation, std::move(tuple))) ++added;
      }
    }
  }
  return added;
}

}  // namespace

Status RepairInstance(Instance& instance, int max_new_facts) {
  ValueInventor inventor(1000000000);  // Disjoint from typical test domains.
  int total_added = 0;
  while (true) {
    int added = RepairPass(instance, inventor, max_new_facts - total_added);
    total_added += added;
    if (added == 0) return Status::Ok();
    if (total_added >= max_new_facts) {
      return ResourceExhaustedError(
          StrCat("instance repair exceeded ", max_new_facts,
                 " invented facts (non-terminating TGD set?)"));
    }
  }
}

Result<Instance> GenerateInstance(const Schema& schema,
                                  const GeneratorOptions& options) {
  Instance instance(&schema);
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int64_t> pick(0, options.domain_size - 1);
  for (RelationId rel = 0; rel < schema.num_relations(); ++rel) {
    const int arity = schema.relation(rel).arity;
    for (int i = 0; i < options.facts_per_relation; ++i) {
      Tuple tuple;
      tuple.reserve(arity);
      for (int j = 0; j < arity; ++j) tuple.push_back(Value::Int(pick(rng)));
      instance.AddFact(rel, std::move(tuple));
    }
  }
  if (options.repair) {
    LCP_RETURN_IF_ERROR(RepairInstance(instance, options.max_repair_facts));
  }
  return instance;
}

}  // namespace lcp
