#ifndef LCP_DATA_GENERATOR_H_
#define LCP_DATA_GENERATOR_H_

#include <cstdint>

#include "lcp/base/result.h"
#include "lcp/data/instance.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// Options for random instance generation.
struct GeneratorOptions {
  /// Facts drawn uniformly per relation before repair.
  int facts_per_relation = 10;
  /// Values are integers in [0, domain_size); repair may invent larger ones.
  int domain_size = 20;
  uint64_t seed = 42;
  /// If true, chase the instance with the schema's TGDs (inventing fresh
  /// values for existentials) until all constraints hold.
  bool repair = true;
  /// Abort repair after this many invented facts (guards non-terminating
  /// TGD sets).
  int max_repair_facts = 100000;
};

/// Generates a random instance of `schema`, optionally repaired to satisfy
/// its TGD constraints by value-level chasing (fresh values play the role of
/// labeled nulls). Fails with RESOURCE_EXHAUSTED if repair exceeds the cap.
Result<Instance> GenerateInstance(const Schema& schema,
                                  const GeneratorOptions& options);

/// Repairs an existing instance in place (the value-level chase described
/// above). Fails with RESOURCE_EXHAUSTED if the cap is exceeded, in which
/// case the instance is left partially repaired.
Status RepairInstance(Instance& instance, int max_new_facts);

}  // namespace lcp

#endif  // LCP_DATA_GENERATOR_H_
