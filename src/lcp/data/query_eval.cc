#include "lcp/data/query_eval.h"

#include <algorithm>
#include <unordered_set>

namespace lcp {

namespace {

/// Recursive backtracking join over the atoms, in the given order. A more
/// sophisticated evaluator would pick a join order; for the oracle role
/// (ground truth in tests/benchmarks on moderate instances) left-to-right
/// with early binding propagation is sufficient.
bool MatchFrom(const std::vector<Atom>& atoms, size_t index,
               const Instance& instance, Binding& binding,
               const std::function<bool(const Binding&)>& on_match) {
  if (index == atoms.size()) {
    return on_match(binding);
  }
  const Atom& atom = atoms[index];
  const RelationInstance& rel = instance.relation(atom.relation);
  for (const Tuple& tuple : rel.tuples()) {
    // Check consistency of `tuple` against the atom under `binding`.
    std::vector<std::string> newly_bound;
    bool consistent = true;
    for (size_t i = 0; i < atom.terms.size() && consistent; ++i) {
      const Term& term = atom.terms[i];
      if (term.is_constant()) {
        consistent = (term.constant() == tuple[i]);
        continue;
      }
      auto it = binding.find(term.var());
      if (it != binding.end()) {
        consistent = (it->second == tuple[i]);
      } else {
        binding.emplace(term.var(), tuple[i]);
        newly_bound.push_back(term.var());
      }
    }
    bool keep_going = true;
    if (consistent) {
      keep_going = MatchFrom(atoms, index + 1, instance, binding, on_match);
    }
    for (const std::string& v : newly_bound) binding.erase(v);
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace

void FindMatches(const std::vector<Atom>& atoms, const Instance& instance,
                 const Binding& partial,
                 const std::function<bool(const Binding&)>& on_match) {
  Binding binding = partial;
  MatchFrom(atoms, 0, instance, binding, on_match);
}

std::vector<Tuple> EvaluateQuery(const ConjunctiveQuery& query,
                                 const Instance& instance) {
  std::vector<Tuple> answers;
  std::unordered_set<Tuple, TupleHash> seen;
  FindMatches(query.atoms, instance, Binding{},
              [&](const Binding& binding) {
                Tuple answer;
                answer.reserve(query.free_variables.size());
                for (const std::string& v : query.free_variables) {
                  answer.push_back(binding.at(v));
                }
                if (seen.insert(answer).second) {
                  answers.push_back(std::move(answer));
                }
                return true;
              });
  return answers;
}

namespace {

/// True if the TGD head has a witness extending `frontier_binding`.
bool HeadSatisfied(const Tgd& tgd, const Instance& instance,
                   const Binding& frontier_binding) {
  bool found = false;
  FindMatches(tgd.head, instance, frontier_binding, [&](const Binding&) {
    found = true;
    return false;  // Stop at the first witness.
  });
  return found;
}

}  // namespace

bool SatisfiesConstraints(const Instance& instance) {
  return ViolatedConstraints(instance).empty();
}

std::vector<std::string> ViolatedConstraints(const Instance& instance) {
  std::vector<std::string> violated;
  for (const Tgd& tgd : instance.schema().constraints()) {
    bool violation_found = false;
    FindMatches(tgd.body, instance, Binding{}, [&](const Binding& binding) {
      // Restrict to the frontier: head matching may not reuse bindings of
      // body variables that do not occur in the head.
      Binding frontier;
      for (const std::string& v : tgd.FrontierVariables()) {
        frontier.emplace(v, binding.at(v));
      }
      if (!HeadSatisfied(tgd, instance, frontier)) {
        violation_found = true;
        return false;
      }
      return true;
    });
    if (violation_found) violated.push_back(tgd.name);
  }
  return violated;
}

}  // namespace lcp
