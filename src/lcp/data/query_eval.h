#ifndef LCP_DATA_QUERY_EVAL_H_
#define LCP_DATA_QUERY_EVAL_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lcp/data/instance.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/logic/tgd.h"

namespace lcp {

/// A variable binding produced while matching a conjunction of atoms.
using Binding = std::unordered_map<std::string, Value>;

/// Enumerates all homomorphisms of `atoms` into `instance` extending
/// `partial`; invokes `on_match` for each. If `on_match` returns false the
/// enumeration stops early.
void FindMatches(const std::vector<Atom>& atoms, const Instance& instance,
                 const Binding& partial,
                 const std::function<bool(const Binding&)>& on_match);

/// Reference ("oracle") evaluator: Q(I) with full access to the instance,
/// ignoring access restrictions. Returns the distinct answer tuples, in
/// free-variable order. For a boolean query, returns either zero tuples or
/// one empty tuple.
std::vector<Tuple> EvaluateQuery(const ConjunctiveQuery& query,
                                 const Instance& instance);

/// True if `instance` satisfies every TGD constraint of its schema.
bool SatisfiesConstraints(const Instance& instance);

/// Lists the names of violated constraints (each at most once).
std::vector<std::string> ViolatedConstraints(const Instance& instance);

}  // namespace lcp

#endif  // LCP_DATA_QUERY_EVAL_H_
