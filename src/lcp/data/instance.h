#ifndef LCP_DATA_INSTANCE_H_
#define LCP_DATA_INSTANCE_H_

#include <cstddef>
#include <initializer_list>
#include <unordered_set>
#include <vector>

#include "lcp/base/check.h"
#include "lcp/base/status.h"
#include "lcp/logic/ids.h"
#include "lcp/logic/value.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// A database tuple.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x811c9dc5;
    for (const Value& v : t) {
      h ^= v.Hash();
      h *= 0x01000193;
    }
    return h;
  }
};

/// The extension of one relation: a duplicate-free bag of tuples with
/// insertion order preserved (useful for deterministic tests).
class RelationInstance {
 public:
  explicit RelationInstance(int arity = 0) : arity_(arity) {}

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Inserts `tuple`; returns false if it was already present.
  bool Insert(Tuple tuple);
  bool Contains(const Tuple& tuple) const {
    return dedup_.find(tuple) != dedup_.end();
  }

 private:
  int arity_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> dedup_;
};

/// A database instance for a Schema: one RelationInstance per relation.
/// The instance does not enforce the schema's integrity constraints; use
/// `SatisfiesConstraints` (query_eval.h) or the generator's repair mode.
class Instance {
 public:
  explicit Instance(const Schema* schema);

  const Schema& schema() const { return *schema_; }

  RelationInstance& relation(RelationId id) {
    LCP_CHECK(id >= 0 && id < static_cast<RelationId>(relations_.size()));
    return relations_[id];
  }
  const RelationInstance& relation(RelationId id) const {
    LCP_CHECK(id >= 0 && id < static_cast<RelationId>(relations_.size()));
    return relations_[id];
  }

  /// Inserts a fact; returns false if already present. CHECK-fails on arity
  /// mismatch.
  bool AddFact(RelationId rel, Tuple tuple);
  /// Convenience for literals: AddFact("Profinfo", {Value::Str("smith"), ...}).
  Status AddFact(const std::string& relation_name,
                 std::initializer_list<Value> values);

  /// Total number of facts across all relations.
  size_t TotalFacts() const;

 private:
  const Schema* schema_;
  std::vector<RelationInstance> relations_;
};

}  // namespace lcp

#endif  // LCP_DATA_INSTANCE_H_
