#include "lcp/data/instance.h"

#include <utility>

#include "lcp/base/strings.h"

namespace lcp {

bool RelationInstance::Insert(Tuple tuple) {
  LCP_CHECK_EQ(static_cast<int>(tuple.size()), arity_)
      << "tuple arity mismatch";
  if (!dedup_.insert(tuple).second) return false;
  tuples_.push_back(std::move(tuple));
  return true;
}

Instance::Instance(const Schema* schema) : schema_(schema) {
  LCP_CHECK(schema != nullptr);
  relations_.reserve(schema->num_relations());
  for (RelationId id = 0; id < schema->num_relations(); ++id) {
    relations_.emplace_back(schema->relation(id).arity);
  }
}

bool Instance::AddFact(RelationId rel, Tuple tuple) {
  return relation(rel).Insert(std::move(tuple));
}

Status Instance::AddFact(const std::string& relation_name,
                         std::initializer_list<Value> values) {
  LCP_ASSIGN_OR_RETURN(RelationId rel, schema_->RelationByName(relation_name));
  Tuple tuple(values);
  if (static_cast<int>(tuple.size()) != schema_->relation(rel).arity) {
    return InvalidArgumentError(StrCat("fact over ", relation_name, " has ",
                                       tuple.size(), " values, expected ",
                                       schema_->relation(rel).arity));
  }
  AddFact(rel, std::move(tuple));
  return Status::Ok();
}

size_t Instance::TotalFacts() const {
  size_t total = 0;
  for (const RelationInstance& rel : relations_) total += rel.size();
  return total;
}

}  // namespace lcp
