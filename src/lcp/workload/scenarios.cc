#include "lcp/workload/scenarios.h"

#include <utility>

#include "lcp/base/strings.h"
#include "lcp/schema/parser.h"

namespace lcp {

namespace {

Result<Scenario> Finish(std::string name, std::unique_ptr<Schema> schema,
                        const std::string& query_text) {
  Scenario scenario;
  scenario.name = std::move(name);
  LCP_ASSIGN_OR_RETURN(scenario.query, ParseQuery(*schema, query_text));
  scenario.schema = std::move(schema);
  return scenario;
}

}  // namespace

Result<Scenario> MakeProfinfoScenario(bool boolean_query) {
  auto schema = std::make_unique<Schema>();
  LCP_ASSIGN_OR_RETURN(RelationId profinfo,
                       schema->AddRelation("Profinfo", 3));
  LCP_ASSIGN_OR_RETURN(RelationId udirect, schema->AddRelation("Udirect", 2));
  LCP_RETURN_IF_ERROR(
      schema->AddAccessMethod("mt_profinfo", profinfo, {0}).status());
  LCP_RETURN_IF_ERROR(
      schema->AddAccessMethod("mt_udirect", udirect, {}).status());
  schema->AddConstant(Value::Str("smith"));
  LCP_ASSIGN_OR_RETURN(
      Tgd ref, ParseTgd(*schema, "Profinfo(e, o, l) -> Udirect(e, l)"));
  ref.name = "profinfo_to_udirect";
  LCP_RETURN_IF_ERROR(schema->AddConstraint(std::move(ref)));
  return Finish(
      boolean_query ? "example4_boolean" : "example1_smith", std::move(schema),
      boolean_query ? "Q() :- Profinfo(eid, onum, lname)"
                    : "Q(eid) :- Profinfo(eid, onum, \"smith\")");
}

Result<Scenario> MakeTelephoneScenario() {
  auto schema = std::make_unique<Schema>();
  LCP_ASSIGN_OR_RETURN(RelationId direct1, schema->AddRelation("Direct1", 3));
  LCP_ASSIGN_OR_RETURN(RelationId ids, schema->AddRelation("Ids", 1));
  LCP_ASSIGN_OR_RETURN(RelationId direct2, schema->AddRelation("Direct2", 3));
  LCP_ASSIGN_OR_RETURN(RelationId names, schema->AddRelation("Names", 1));
  // Direct1(uname, addr, uid) requires uname and uid.
  LCP_RETURN_IF_ERROR(
      schema->AddAccessMethod("mt_direct1", direct1, {0, 2}).status());
  LCP_RETURN_IF_ERROR(schema->AddAccessMethod("mt_ids", ids, {}).status());
  // Direct2(uname, addr, phone) requires uname and addr.
  LCP_RETURN_IF_ERROR(
      schema->AddAccessMethod("mt_direct2", direct2, {0, 1}).status());
  LCP_RETURN_IF_ERROR(schema->AddAccessMethod("mt_names", names, {}).status());
  // The overlap constraints of Example 2: Direct1's uids are listed in Ids,
  // Direct2's unames in Names, and the directories reference each other on
  // (uname, addr). The Direct2 → Direct1 direction is what makes the
  // query completely answerable: every directory-2 entry is reachable
  // through directory 1.
  const char* constraints[] = {
      "Direct1(u, a, i) -> Ids(i)",
      "Direct1(u, a, i) -> Names(u)",
      "Direct1(u, a, i) -> Direct2(u, a, p)",
      "Direct2(u, a, p) -> Names(u)",
      "Direct2(u, a, p) -> Direct1(u, a, i)",
  };
  for (const char* text : constraints) {
    LCP_ASSIGN_OR_RETURN(Tgd tgd, ParseTgd(*schema, text));
    LCP_RETURN_IF_ERROR(schema->AddConstraint(std::move(tgd)));
  }
  return Finish("example2_telephone", std::move(schema),
                "Q(phone) :- Direct2(uname, addr, phone)");
}

Result<Scenario> MakeMultiSourceScenario(int num_sources,
                                         const double* source_costs,
                                         double profinfo_cost) {
  auto schema = std::make_unique<Schema>();
  LCP_ASSIGN_OR_RETURN(RelationId profinfo,
                       schema->AddRelation("Profinfo", 3));
  // Figure 1 feeds mt_Profinfo from a table with attributes (eid, lname):
  // the method's inputs are the two positions the directories expose.
  LCP_RETURN_IF_ERROR(
      schema->AddAccessMethod("mt_profinfo", profinfo, {0, 2}, profinfo_cost)
          .status());
  for (int i = 1; i <= num_sources; ++i) {
    LCP_ASSIGN_OR_RETURN(RelationId udirect,
                         schema->AddRelation(StrCat("Udirect", i), 2));
    double cost = source_costs != nullptr ? source_costs[i - 1] : 1.0;
    LCP_RETURN_IF_ERROR(
        schema->AddAccessMethod(StrCat("mt_udirect", i), udirect, {}, cost)
            .status());
    LCP_ASSIGN_OR_RETURN(
        Tgd ref, ParseTgd(*schema, StrCat("Profinfo(e, o, l) -> Udirect", i,
                                          "(e, l)")));
    ref.name = StrCat("profinfo_to_udirect", i);
    LCP_RETURN_IF_ERROR(schema->AddConstraint(std::move(ref)));
  }
  return Finish(StrCat("example5_multisource_", num_sources),
                std::move(schema), "Q() :- Profinfo(eid, onum, lname)");
}

Result<Scenario> MakeChainScenario(int chain_length) {
  auto schema = std::make_unique<Schema>();
  // R0(a, b): the queried relation, requires b as input.
  // Chain: Ri(a, b) -> R{i+1}(b, c) for i < n, and Rn is freely accessible;
  // walking the chain from the free end yields values for position 1.
  std::vector<RelationId> rels;
  for (int i = 0; i <= chain_length; ++i) {
    LCP_ASSIGN_OR_RETURN(RelationId r,
                         schema->AddRelation(StrCat("R", i), 2));
    rels.push_back(r);
  }
  LCP_RETURN_IF_ERROR(schema->AddAccessMethod("mt_R0", rels[0], {1}).status());
  for (int i = 1; i < chain_length; ++i) {
    LCP_RETURN_IF_ERROR(
        schema->AddAccessMethod(StrCat("mt_R", i), rels[i], {1}).status());
  }
  if (chain_length >= 1) {
    LCP_RETURN_IF_ERROR(
        schema->AddAccessMethod(StrCat("mt_R", chain_length),
                                rels[chain_length], {})
            .status());
  }
  for (int i = 0; i < chain_length; ++i) {
    LCP_ASSIGN_OR_RETURN(
        Tgd tgd, ParseTgd(*schema, StrCat("R", i, "(a, b) -> R", i + 1,
                                          "(b, c)")));
    tgd.name = StrCat("chain", i);
    LCP_RETURN_IF_ERROR(schema->AddConstraint(std::move(tgd)));
  }
  return Finish(StrCat("chain_", chain_length), std::move(schema),
                "Q(a) :- R0(a, b)");
}

Result<Scenario> MakeViewScenario(int num_views) {
  // 2 * num_views base relations; view V_i joins the disjoint pair
  // (B_{2i}, B_{2i+1}). Non-overlapping pairs compose, so the path query is
  // rewritable as V_0 ⋈ ... ⋈ V_{m-1}; overlapping pairs would (correctly)
  // not be.
  const int num_base = 2 * num_views;
  auto schema = std::make_unique<Schema>();
  for (int i = 0; i < num_base; ++i) {
    LCP_RETURN_IF_ERROR(schema->AddRelation(StrCat("B", i), 2).status());
  }
  for (int i = 0; i < num_views; ++i) {
    LCP_ASSIGN_OR_RETURN(RelationId v,
                         schema->AddRelation(StrCat("V", i), 2));
    LCP_RETURN_IF_ERROR(
        schema->AddAccessMethod(StrCat("mt_V", i), v, {}).status());
    // Both inclusion directions of the view definition
    // V_i(x, z) === ∃y B_{2i}(x, y) ∧ B_{2i+1}(y, z).
    LCP_ASSIGN_OR_RETURN(
        Tgd fwd, ParseTgd(*schema, StrCat("B", 2 * i, "(x, y) & B", 2 * i + 1,
                                          "(y, z) -> V", i, "(x, z)")));
    fwd.name = StrCat("view", i, "_fwd");
    LCP_RETURN_IF_ERROR(schema->AddConstraint(std::move(fwd)));
    LCP_ASSIGN_OR_RETURN(
        Tgd bwd, ParseTgd(*schema, StrCat("V", i, "(x, z) -> B", 2 * i,
                                          "(x, y) & B", 2 * i + 1,
                                          "(y, z)")));
    bwd.name = StrCat("view", i, "_bwd");
    LCP_RETURN_IF_ERROR(schema->AddConstraint(std::move(bwd)));
  }
  // Query: the full path join over the base relations.
  std::vector<std::string> atoms;
  for (int i = 0; i < num_base; ++i) {
    atoms.push_back(StrCat("B", i, "(y", i, ", y", i + 1, ")"));
  }
  return Finish(StrCat("views_", num_views), std::move(schema),
                StrCat("Q(y0, y", num_base, ") :- ", StrJoin(atoms, ", ")));
}

Result<Scenario> MakeCyclicGuardedScenario() {
  auto schema = std::make_unique<Schema>();
  LCP_ASSIGN_OR_RETURN(RelationId r, schema->AddRelation("R", 2));
  LCP_ASSIGN_OR_RETURN(RelationId s, schema->AddRelation("S", 2));
  LCP_RETURN_IF_ERROR(schema->AddAccessMethod("mt_R", r, {}).status());
  LCP_RETURN_IF_ERROR(schema->AddAccessMethod("mt_S", s, {0}).status());
  LCP_ASSIGN_OR_RETURN(Tgd t1, ParseTgd(*schema, "R(x, y) -> S(y, z)"));
  t1.name = "r_to_s";
  LCP_RETURN_IF_ERROR(schema->AddConstraint(std::move(t1)));
  LCP_ASSIGN_OR_RETURN(Tgd t2, ParseTgd(*schema, "S(x, y) -> R(y, z)"));
  t2.name = "s_to_r";
  LCP_RETURN_IF_ERROR(schema->AddConstraint(std::move(t2)));
  return Finish("cyclic_guarded", std::move(schema), "Q(x) :- R(x, y)");
}

}  // namespace lcp
