#ifndef LCP_WORKLOAD_SCENARIOS_H_
#define LCP_WORKLOAD_SCENARIOS_H_

#include <memory>
#include <string>

#include "lcp/base/result.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// A self-contained querying scenario: a schema plus a query over it.
/// The schema is heap-allocated so that objects holding pointers into it
/// (accessible schemas, instances) stay valid as the scenario moves.
struct Scenario {
  std::string name;
  std::unique_ptr<Schema> schema;
  ConjunctiveQuery query;
};

/// Example 1 / Example 4 of the paper: Profinfo(eid, onum, lname) behind an
/// eid-input method; Udirect(eid, lname) freely accessible; referential
/// constraint Profinfo → Udirect; schema constant "smith".
/// If `boolean_query` the query is Example 4's ∃ Profinfo(...); otherwise
/// Example 1's "ids of faculty named smith".
Result<Scenario> MakeProfinfoScenario(bool boolean_query);

/// Example 2: two telephone directories. Direct1(uname, addr, uid) requires
/// uname+uid; Ids(uid) free; Direct2(uname, addr, phone) requires
/// uname+addr; Names(uname) free; constraints Direct1→Ids (uid),
/// Direct2→Names (uname), Direct1→Direct2 (uname, addr). Query: all phones
/// in Direct2.
Result<Scenario> MakeTelephoneScenario();

/// Example 5 / Figure 1: Profinfo(eid, onum, lname) whose access method
/// requires eid and lname (the attributes the directories expose — Figure 1
/// feeds it a table with exactly those columns), plus `num_sources` freely
/// accessible directories Udirect_i with constraints Profinfo → Udirect_i.
/// Boolean query ∃ Profinfo(...).
/// `source_costs[i]` (if non-null, length num_sources) sets the per-access
/// cost of the i-th directory; Profinfo's method costs `profinfo_cost`.
Result<Scenario> MakeMultiSourceScenario(int num_sources,
                                         const double* source_costs = nullptr,
                                         double profinfo_cost = 1.0);

/// A chain scenario for scaling studies: relations R0..Rn, query over R0
/// only; R0 requires an input that can only be obtained by walking free
/// accesses down the chain R0 → R1 → ... → Rn (referential constraints).
/// Longer chains need more accesses.
Result<Scenario> MakeChainScenario(int chain_length);

/// Answering-queries-using-views (Theorem 6): 2*num_views inaccessible base
/// relations B0..B{2m-1}; view V_i defined as the join of the disjoint pair
/// (B_{2i}, B_{2i+1}); all views freely accessible. The query is the path
/// join of all base relations, rewritable as V_0 ⋈ ... ⋈ V_{m-1}. Used by
/// the view-rewriting benchmark and tests.
Result<Scenario> MakeViewScenario(int num_views);

/// A cyclic guarded-TGD scenario for the blocking benchmark: R(x,y) →
/// ∃z S(y,z), S(x,y) → ∃z R(y,z), query over R with restricted access.
Result<Scenario> MakeCyclicGuardedScenario();

}  // namespace lcp

#endif  // LCP_WORKLOAD_SCENARIOS_H_
