#ifndef LCP_RUNTIME_FAULTS_H_
#define LCP_RUNTIME_FAULTS_H_

#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lcp/base/clock.h"
#include "lcp/runtime/source.h"

namespace lcp {

/// Fault behaviour of one access method (or the profile-wide default).
/// Rates are probabilities in [0, 1]; draws come from the wrapper's seeded
/// PRNG, so a fixed (seed, profile, access sequence) reproduces the exact
/// same fault schedule.
struct MethodFaults {
  /// Probability that an access fails transiently (kUnavailable). A retry of
  /// the same access re-rolls, so bounded retries eventually succeed with
  /// overwhelming probability for rates < 1.
  double transient_failure_rate = 0.0;
  /// Simulated service latency charged to the clock per access attempt:
  /// base plus a uniform draw in [0, jitter].
  int64_t latency_base_micros = 0;
  int64_t latency_jitter_micros = 0;
  /// Probability that a *successful* access returns only a prefix of its
  /// rows (partial result). Truncated outcomes are flagged so the executor
  /// can mark the execution degraded.
  double truncation_rate = 0.0;
  /// Fraction of rows kept when a truncation fires (floor, at least one row
  /// dropped for the outcome to count as truncated).
  double truncation_keep_fraction = 0.5;
};

/// Deterministic fault model for a whole source: per-method overrides over a
/// default, plus a set of permanently unreachable methods.
struct FaultProfile {
  MethodFaults defaults;
  std::unordered_map<AccessMethodId, MethodFaults> per_method;
  /// Methods that fail every access with kUnavailable (hard outage). Retry
  /// cannot help; circuit breakers exist to stop paying for these.
  std::unordered_set<AccessMethodId> permanent_outages;

  const MethodFaults& ForMethod(AccessMethodId method) const {
    auto it = per_method.find(method);
    return it == per_method.end() ? defaults : it->second;
  }
};

struct FaultStats {
  size_t attempts = 0;            ///< TryAccess calls seen by the wrapper.
  size_t injected_failures = 0;   ///< Transient kUnavailable injections.
  size_t outage_rejections = 0;   ///< Rejections from permanent outages.
  size_t truncations = 0;         ///< Outcomes returned truncated.
  int64_t simulated_latency_micros = 0;
};

/// Wraps a SimulatedSource with deterministic fault injection: transient
/// failures, simulated latency (charged to a pluggable Clock so virtual-time
/// tests observe it), permanent outages, and truncated results. The PRNG is
/// seeded explicitly; identical seed + profile + access sequence yields a
/// byte-identical fault schedule, which is what makes the randomized
/// fault/no-fault differential tests reproducible.
class FaultInjectingSource : public AccessSource {
 public:
  /// `base` must outlive the wrapper. `clock` may be null when the profile
  /// simulates no latency; defaults to the process SystemClock.
  FaultInjectingSource(SimulatedSource* base, FaultProfile profile,
                       uint64_t seed, Clock* clock = nullptr);

  Result<AccessOutcome> TryAccess(AccessMethodId method,
                                  const Tuple& inputs) override;

  /// Batched access with per-binding fault accounting: one PRNG draw
  /// sequence per binding, in binding order — exactly the draws the same
  /// bindings would consume through sequential TryAccess calls, so seeded
  /// fault schedules are identical across the row and vectorized engines.
  /// Truncated answers are copied (the truncation scratch is per access);
  /// full answers point into the stable base-source index.
  void TryAccessBatch(AccessMethodId method, const std::vector<Tuple>& bindings,
                      std::vector<BatchEntryOutcome>& outcomes) override;

  const Schema& schema() const override { return base_->schema(); }
  SimulatedSource& base() { return *base_; }
  const FaultStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FaultStats{}; }

  // --- outage schedule -----------------------------------------------------
  // Deterministic mid-run outages on the pluggable clock: an outage can
  // begin at a scheduled instant (FailFrom) and a permanent outage — whether
  // scheduled or listed in FaultProfile::permanent_outages — can heal at one
  // (RecoverAt). With a virtual clock this makes the quarantine / recovery-
  // probe cycle of the source-health registry fully deterministic: the
  // driver advances time past the boundary and the next access observes it.

  /// Every access to `method` at clock time >= `at_micros` fails with
  /// kUnavailable (until a scheduled recovery, if any).
  void FailFrom(AccessMethodId method, int64_t at_micros);

  /// Accesses to `method` at clock time >= `at_micros` stop failing from the
  /// outage (profile-listed or scheduled). Transient faults still apply.
  void RecoverAt(AccessMethodId method, int64_t at_micros);

 private:
  /// Uniform double in [0, 1) from the top 53 bits of the PRNG — avoids
  /// std::uniform_real_distribution, whose draw sequence is not pinned down
  /// by the standard.
  double NextUnit() {
    return static_cast<double>(prng_() >> 11) * 0x1.0p-53;
  }

  /// True iff `method` is in outage at clock time `now`, honoring the
  /// schedule above.
  bool OutageActive(AccessMethodId method, int64_t now) const;

  SimulatedSource* base_;
  FaultProfile profile_;
  std::mt19937_64 prng_;
  Clock* clock_;
  FaultStats stats_;
  std::vector<Tuple> truncated_scratch_;
  std::unordered_map<AccessMethodId, int64_t> fail_from_;
  std::unordered_map<AccessMethodId, int64_t> recover_at_;
};

}  // namespace lcp

#endif  // LCP_RUNTIME_FAULTS_H_
